package drbac_test

// Benchmark harness: one benchmark per paper artifact.
//
//	Table 1   -> BenchmarkTable1BaseProof
//	Table 2   -> BenchmarkTable2AttributeAggregation
//	Table 3   -> BenchmarkTable3CaseStudyProof
//	Figure 1  -> BenchmarkFigure1WalletOps
//	Figure 2  -> BenchmarkFigure2DistributedProof
//	§4.2.3    -> BenchmarkSearchDirectionality, BenchmarkAttributePruning
//	§6        -> BenchmarkRevocationSchemes
//	§3.1.3    -> BenchmarkSeparability
//
// plus micro-benchmarks for the credential primitives. Run with
//
//	go test -bench=. -benchmem

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drbac"
	"drbac/internal/baseline"
	"drbac/internal/clock"
	"drbac/internal/cluster"
	"drbac/internal/core"
	"drbac/internal/dht"
	"drbac/internal/logstore"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/revocation"
	"drbac/internal/sim"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

// benchWorld holds the Table 1 principals for the micro and table benches.
type benchWorld struct {
	ids map[string]*drbac.Identity
	dir *drbac.MemDirectory
	now time.Time
}

func newBenchWorld(b *testing.B) *benchWorld {
	b.Helper()
	w := &benchWorld{
		ids: make(map[string]*drbac.Identity),
		dir: drbac.NewDirectory(),
		now: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
	}
	for i, name := range []string{"BigISP", "AirNet", "Mark", "Sheila", "Maria"} {
		seed := make([]byte, 32)
		seed[0] = byte(i + 1)
		id, err := drbac.IdentityFromSeed(name, seed)
		if err != nil {
			b.Fatal(err)
		}
		w.ids[name] = id
		w.dir.Add(id.Entity())
	}
	return w
}

func (w *benchWorld) issue(b *testing.B, text string) *drbac.Delegation {
	b.Helper()
	parsed, err := drbac.ParseDelegation(text, w.dir)
	if err != nil {
		b.Fatal(err)
	}
	var issuer *drbac.Identity
	for _, id := range w.ids {
		if id.ID() == parsed.Issuer.ID() {
			issuer = id
		}
	}
	d, err := drbac.Issue(issuer, parsed.Template, w.now)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkTable1BaseProof measures assembling and validating the Table 1
// proof Maria => BigISP.member (one third-party delegation plus its
// two-step support proof).
func BenchmarkTable1BaseProof(b *testing.B) {
	w := newBenchWorld(b)
	d1 := w.issue(b, "[Mark -> BigISP.memberServices] BigISP")
	d2 := w.issue(b, "[BigISP.memberServices -> BigISP.member'] BigISP")
	d3 := w.issue(b, "[Maria -> BigISP.member] Mark")
	sup, err := drbac.NewProof(drbac.ProofStep{Delegation: d1}, drbac.ProofStep{Delegation: d2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proof, err := drbac.NewProof(drbac.ProofStep{Delegation: d3, Support: []*drbac.Proof{sup}})
		if err != nil {
			b.Fatal(err)
		}
		if err := proof.Validate(drbac.ValidateOptions{At: w.now}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2AttributeAggregation measures aggregating the Table 2
// valued-attribute chain and checking a constraint against it.
func BenchmarkTable2AttributeAggregation(b *testing.B) {
	w := newBenchWorld(b)
	dA := w.issue(b, "[Maria -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20 and AirNet.hours *= 0.3] AirNet")
	dB := w.issue(b, "[AirNet.member -> AirNet.access with AirNet.BW <= 200] AirNet")
	pA, _ := drbac.NewProof(drbac.ProofStep{Delegation: dA})
	pB, _ := drbac.NewProof(drbac.ProofStep{Delegation: dB})
	proof, err := pA.Concat(pB)
	if err != nil {
		b.Fatal(err)
	}
	bw := drbac.AttributeRef{Namespace: w.ids["AirNet"].ID(), Name: "BW"}
	cons := []drbac.Constraint{{Attr: bw, Base: math.Inf(1), Minimum: 50}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ag, err := proof.Aggregate()
		if err != nil {
			b.Fatal(err)
		}
		if !cons[0].Satisfied(ag) {
			b.Fatal("constraint should hold")
		}
		if ag.Value(bw, math.Inf(1)) != 100 {
			b.Fatal("wrong aggregation")
		}
	}
}

// BenchmarkTable3CaseStudyProof measures the full §5 authorization against
// a single wallet already holding all six delegations: the server-side
// cost of Maria's access decision once credentials are local.
func BenchmarkTable3CaseStudyProof(b *testing.B) {
	w := newBenchWorld(b)
	wal := drbac.NewWallet(drbac.WalletConfig{Directory: w.dir})
	d3 := w.issue(b, "[Sheila -> AirNet.mktg] AirNet")
	d4 := w.issue(b, "[AirNet.mktg -> AirNet.member'] AirNet")
	sup, _ := drbac.NewProof(drbac.ProofStep{Delegation: d3}, drbac.ProofStep{Delegation: d4})
	for _, d := range []*drbac.Delegation{
		w.issue(b, "[Maria -> BigISP.member] BigISP"),
		w.issue(b, "[AirNet.member -> AirNet.access with AirNet.BW <= 200] AirNet"),
	} {
		if err := wal.Publish(d); err != nil {
			b.Fatal(err)
		}
	}
	d2 := w.issue(b, "[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20 and AirNet.hours *= 0.3] Sheila")
	if err := wal.Publish(d2, sup); err != nil {
		b.Fatal(err)
	}
	q := drbac.Query{
		Subject: drbac.SubjectEntity(w.ids["Maria"].ID()),
		Object:  drbac.NewRole(w.ids["AirNet"].ID(), "access"),
	}
	bw := drbac.AttributeRef{Namespace: w.ids["AirNet"].ID(), Name: "BW"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proof, err := wal.QueryDirect(q)
		if err != nil {
			b.Fatal(err)
		}
		ag, err := proof.Aggregate()
		if err != nil {
			b.Fatal(err)
		}
		if ag.Value(bw, math.Inf(1)) != 100 {
			b.Fatal("wrong outcome")
		}
	}
}

// BenchmarkFigure1WalletOps measures the three wallet primitives of
// Figure 1 against the two-delegation A => C.c wallet.
func BenchmarkFigure1WalletOps(b *testing.B) {
	w := newBenchWorld(b)
	// Reuse principals: BigISP as A's namespace holder etc. Build the
	// figure's two-delegation wallet.
	dAB := w.issue(b, "[Maria -> BigISP.b] BigISP")
	dBC := w.issue(b, "[BigISP.b -> AirNet.c] AirNet")
	subject := drbac.SubjectEntity(w.ids["Maria"].ID())
	object := drbac.NewRole(w.ids["AirNet"].ID(), "c")

	b.Run("publish", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wal := drbac.NewWallet(drbac.WalletConfig{Directory: w.dir})
			if err := wal.Publish(dAB); err != nil {
				b.Fatal(err)
			}
			if err := wal.Publish(dBC); err != nil {
				b.Fatal(err)
			}
		}
	})
	wal := drbac.NewWallet(drbac.WalletConfig{Directory: w.dir})
	if err := wal.Publish(dAB); err != nil {
		b.Fatal(err)
	}
	if err := wal.Publish(dBC); err != nil {
		b.Fatal(err)
	}
	b.Run("query-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wal.QueryDirect(drbac.Query{Subject: subject, Object: object}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("query-subject", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := wal.QuerySubject(subject, nil); len(got) != 2 {
				b.Fatal("wrong result count")
			}
		}
	})
	b.Run("query-object", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := wal.QueryObject(object, nil); len(got) != 2 {
				b.Fatal("wrong result count")
			}
		}
	})
	b.Run("monitor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mon, err := wal.Monitor(drbac.Query{Subject: subject, Object: object}, nil)
			if err != nil {
				b.Fatal(err)
			}
			mon.Close()
		}
	})
}

// BenchmarkFigure2DistributedProof measures the end-to-end §5 flow: three
// wallets, discovery across them, proof assembly, attribute aggregation.
func BenchmarkFigure2DistributedProof(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunCaseStudy()
		if err != nil {
			b.Fatal(err)
		}
		if res.BW != 100 || res.Storage != 30 || res.Hours != 18 {
			b.Fatal("wrong case-study outcome")
		}
	}
}

// BenchmarkSearchDirectionality sweeps EXP-S1: search effort by direction
// on the adversarial out-tree (b=3).
func BenchmarkSearchDirectionality(b *testing.B) {
	for _, depth := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("b3/d%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				points, err := sim.RunDirectionality(3, depth)
				if err != nil {
					b.Fatal(err)
				}
				out := points[0]
				b.ReportMetric(float64(out.Forward.EdgesExplored), "fwd-edges")
				b.ReportMetric(float64(out.Reverse.EdgesExplored), "rev-edges")
				b.ReportMetric(float64(out.Bidi.EdgesExplored), "bidi-edges")
			}
		})
	}
}

// BenchmarkAttributePruning sweeps EXP-S2: pruned vs unpruned search effort.
func BenchmarkAttributePruning(b *testing.B) {
	for _, width := range []int{10, 20} {
		b.Run(fmt.Sprintf("w%d/d8", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt, err := sim.RunPruning(width, 8)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(pt.PrunedEdges), "pruned-edges")
				b.ReportMetric(float64(pt.UnprunedEdges), "unpruned-edges")
			}
		})
	}
}

// BenchmarkRevocationSchemes runs EXP-S3 per scheme over a long session.
func BenchmarkRevocationSchemes(b *testing.B) {
	params := revocation.Params{
		Clients: 4, Credentials: 8, Steps: 500, PollEvery: 5, CRLEvery: 10,
		RevokeAt: []int{103},
	}
	for _, scheme := range []revocation.Scheme{revocation.OCSP, revocation.CRL, revocation.Subscription} {
		b.Run(string(scheme), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := revocation.Run(scheme, params)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Messages), "messages")
				b.ReportMetric(float64(res.Bytes), "bytes")
			}
		})
	}
}

// BenchmarkHierarchicalCache runs EXP-S5: home-wallet traffic flat vs
// behind a caching proxy.
func BenchmarkHierarchicalCache(b *testing.B) {
	for _, clients := range []int{4, 16} {
		b.Run(fmt.Sprintf("clients%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt, err := sim.RunProxyExperiment(clients)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(pt.FlatHomeMessages), "flat-msgs")
				b.ReportMetric(float64(pt.HierHomeMessages), "hier-msgs")
			}
		})
	}
}

// BenchmarkSeparability runs EXP-S4 per idiom.
func BenchmarkSeparability(b *testing.B) {
	s := baseline.Scenario{Partners: 4, Privileges: 4, MembersPerPartner: 2}
	b.Run("drbac", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := baseline.DRBAC(s)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(out.RolesCreated), "roles")
		}
	})
	b.Run("phantom", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := baseline.PhantomRole(s)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(out.RolesCreated), "roles")
		}
	})
}

// BenchmarkProofValidateColdWarm measures EXP-S8: full validation of the
// Table 3 proof (five Ed25519 signatures: three primary steps plus Sheila's
// two-step support chain) under the verified-signature memo.
//
//	serial  — no memo; every signature verifies inline, the pre-memo cost.
//	cold    — a fresh memo per iteration: the parallel prime pass verifies
//	          all five signatures across the worker pool, so this bounds
//	          the first-ever validation of a proof.
//	warm    — one memo primed once: every signature check is a sharded
//	          hash lookup. The steady-state cost of re-validating proofs,
//	          which is what wallets do on every query and monitor firing.
func BenchmarkProofValidateColdWarm(b *testing.B) {
	w := newBenchWorld(b)
	d1 := w.issue(b, "[Maria -> BigISP.member] BigISP")
	d3 := w.issue(b, "[Sheila -> AirNet.mktg] AirNet")
	d4 := w.issue(b, "[AirNet.mktg -> AirNet.member'] AirNet")
	sup, err := drbac.NewProof(drbac.ProofStep{Delegation: d3}, drbac.ProofStep{Delegation: d4})
	if err != nil {
		b.Fatal(err)
	}
	d2 := w.issue(b, "[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20] Sheila")
	d5 := w.issue(b, "[AirNet.member -> AirNet.access with AirNet.BW <= 200] AirNet")
	proof, err := drbac.NewProof(
		drbac.ProofStep{Delegation: d1},
		drbac.ProofStep{Delegation: d2, Support: []*drbac.Proof{sup}},
		drbac.ProofStep{Delegation: d5},
	)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := proof.Validate(drbac.ValidateOptions{At: w.now}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := drbac.ValidateOptions{At: w.now, SigVerifier: drbac.NewSigCache(0)}
			if err := proof.Validate(opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		opts := drbac.ValidateOptions{At: w.now, SigVerifier: drbac.NewSigCache(0)}
		if err := proof.Validate(opts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := proof.Validate(opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchIssueMany mints n distinct delegations [User -> Org.r<i>] Org from a
// fixed seed pair, for store benchmarks that need bulk resident state.
func benchIssueMany(b *testing.B, n int) []*core.Delegation {
	b.Helper()
	orgSeed, userSeed := make([]byte, 32), make([]byte, 32)
	orgSeed[0], userSeed[0] = 1, 2
	org, err := core.IdentityFromSeed("Org", orgSeed)
	if err != nil {
		b.Fatal(err)
	}
	user, err := core.IdentityFromSeed("User", userSeed)
	if err != nil {
		b.Fatal(err)
	}
	dir := core.NewDirectory(org.Entity(), user.Entity())
	now := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	ds := make([]*core.Delegation, n)
	for i := range ds {
		parsed, err := core.ParseDelegation(fmt.Sprintf("[User -> Org.r%d] Org", i), dir)
		if err != nil {
			b.Fatal(err)
		}
		ds[i], err = core.Issue(org, parsed.Template, now)
		if err != nil {
			b.Fatal(err)
		}
	}
	return ds
}

// BenchmarkStoreWriteAmplification measures EXP-R2: bytes written to disk
// per published delegation with 10k bundles already resident — the legacy
// JSON store against the segmented log store. The JSON store rewrites the
// whole state file on every mutation, so its per-publish cost scales with
// resident state; the log store appends one frame. Each iteration re-puts
// one of a small pool of extra delegations, so the resident set stays flat
// across b.N. Reported as bytes/op alongside ns/op (which is fsync-bound
// for both stores).
func BenchmarkStoreWriteAmplification(b *testing.B) {
	const resident = 10_000
	const pool = 64
	all := benchIssueMany(b, resident+pool)
	residentDs, fresh := all[:resident], all[resident:]

	b.Run("json-10k", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "state.json")
		// Seed by writing the state file directly — identical to what 10k
		// puts would leave, without 10k full-file rewrites of setup.
		bundles := make([]wallet.StoredBundle, len(residentDs))
		for i, d := range residentDs {
			bundles[i] = wallet.StoredBundle{Delegation: d}
		}
		state := struct {
			Seq     uint64                `json:"seq"`
			Bundles []wallet.StoredBundle `json:"bundles"`
		}{Seq: uint64(len(bundles)), Bundles: bundles}
		data, err := json.Marshal(state)
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o600); err != nil {
			b.Fatal(err)
		}
		st, err := wallet.OpenFileStore(path)
		if err != nil {
			b.Fatal(err)
		}
		seq := st.Seq()
		var total int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seq++
			if err := st.PutDelegation(seq, fresh[i%pool], nil); err != nil {
				b.Fatal(err)
			}
			// Every put rewrites the full file; its new size is exactly the
			// bytes this op wrote.
			fi, err := os.Stat(path)
			if err != nil {
				b.Fatal(err)
			}
			total += fi.Size()
		}
		b.ReportMetric(float64(total)/float64(b.N), "bytes/op")
	})

	b.Run("log-10k", func(b *testing.B) {
		dir := filepath.Join(b.TempDir(), "state")
		st, err := logstore.Open(dir, logstore.Options{CompactInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		// Seed concurrently so group commit amortizes the per-batch fsync;
		// resident puts have distinct IDs, so order is irrelevant.
		const workers = 16
		var seq atomic.Uint64
		var wg sync.WaitGroup
		errCh := make(chan error, workers)
		chunk := (len(residentDs) + workers - 1) / workers
		for lo := 0; lo < len(residentDs); lo += chunk {
			ds := residentDs[lo:min(lo+chunk, len(residentDs))]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, d := range ds {
					if err := st.PutDelegation(seq.Add(1), d, nil); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errCh:
			b.Fatal(err)
		default:
		}
		segBytes := func() int64 {
			entries, err := os.ReadDir(dir)
			if err != nil {
				b.Fatal(err)
			}
			var sum int64
			for _, e := range entries {
				fi, err := e.Info()
				if err != nil {
					b.Fatal(err)
				}
				sum += fi.Size()
			}
			return sum
		}
		start := segBytes()
		n := seq.Load()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n++
			if err := st.PutDelegation(n, fresh[i%pool], nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		// Appends are cumulative: directory growth is exactly the bytes
		// written by the measured puts (plus header frames on rolls).
		b.ReportMetric(float64(segBytes()-start)/float64(b.N), "bytes/op")
	})
}

// --- credential primitive micro-benchmarks --------------------------------

func BenchmarkIssueDelegation(b *testing.B) {
	w := newBenchWorld(b)
	parsed, err := drbac.ParseDelegation("[Maria -> BigISP.member] BigISP", w.dir)
	if err != nil {
		b.Fatal(err)
	}
	issuer := w.ids["BigISP"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := drbac.Issue(issuer, parsed.Template, w.now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyDelegation(b *testing.B) {
	w := newBenchWorld(b)
	d := w.issue(b, "[Maria -> BigISP.member] BigISP")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseDelegation(b *testing.B) {
	w := newBenchWorld(b)
	const text = "[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20] Sheila"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := drbac.ParseDelegation(text, w.dir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderDelegation(b *testing.B) {
	w := newBenchWorld(b)
	d := w.issue(b, "[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20] Sheila")
	pr := drbac.Printer{Dir: w.dir}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := pr.Delegation(d); out == "" {
			b.Fatal("empty rendering")
		}
	}
}

// BenchmarkObservabilityTraced measures EXP-S7b: the serial hot-cache query
// cost as the observability stack deepens. bare is the uninstrumented
// wallet (EXP-S7's baseline); metrics adds the registry (counters + latency
// histogram per query); traced adds the retained-trace collector and the
// query SLO (per query: one atomic slow-threshold load, one SLO window
// observe); traced-span additionally runs every query under a root span
// retained by the collector, pricing the full span lifecycle — start, end,
// rollup, ring insert — that a discovery pays per hop.
func BenchmarkObservabilityTraced(b *testing.B) {
	w := newBenchWorld(b)
	dAB := w.issue(b, "[Maria -> BigISP.b] BigISP")
	dBC := w.issue(b, "[BigISP.b -> AirNet.c] AirNet")
	q := drbac.Query{
		Subject: drbac.SubjectEntity(w.ids["Maria"].ID()),
		Object:  drbac.NewRole(w.ids["AirNet"].ID(), "c"),
	}
	build := func(b *testing.B, o *drbac.Obs) *drbac.Wallet {
		b.Helper()
		wal := drbac.NewWallet(drbac.WalletConfig{Directory: w.dir, Obs: o})
		if err := wal.Publish(dAB); err != nil {
			b.Fatal(err)
		}
		if err := wal.Publish(dBC); err != nil {
			b.Fatal(err)
		}
		if _, err := wal.QueryDirect(q); err != nil {
			b.Fatal(err)
		}
		return wal
	}
	traced := func() *drbac.Obs {
		o := drbac.NewObs(nil, drbac.NewMetricsRegistry())
		o.SetCollector(drbac.NewTraceCollector(o.Registry(), drbac.TraceCollectorConfig{SampleRate: 1}))
		o.RegisterSLO(drbac.NewLatencySLO(o.Registry(), "query", 5*time.Millisecond, 0, 0))
		return o
	}
	for _, bench := range []struct {
		name string
		obs  func() *drbac.Obs
		span bool
	}{
		{"bare", func() *drbac.Obs { return nil }, false},
		{"metrics", func() *drbac.Obs { return drbac.NewObs(nil, drbac.NewMetricsRegistry()) }, false},
		{"traced", traced, false},
		{"traced-span", traced, true},
	} {
		b.Run(bench.name, func(b *testing.B) {
			o := bench.obs()
			wal := build(b, o)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if bench.span {
					sp := o.StartSpan(drbac.NewTraceID(), "bench.query")
					if _, err := wal.QueryDirect(q); err != nil {
						b.Fatal(err)
					}
					sp.End()
					continue
				}
				if _, err := wal.QueryDirect(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWalletParallelQuery measures multi-core direct-query throughput
// over the same two-delegation wallet as BenchmarkFigure1WalletOps, so
// ns/op compares directly against the serial query-direct number. hot-cache
// serves memoized answers (§6 coherent caching); cold-cache disables
// memoization so every query re-runs the sharded graph search; the serial
// variants pin the single-goroutine cost of each mode.
func BenchmarkWalletParallelQuery(b *testing.B) {
	w := newBenchWorld(b)
	dAB := w.issue(b, "[Maria -> BigISP.b] BigISP")
	dBC := w.issue(b, "[BigISP.b -> AirNet.c] AirNet")
	q := drbac.Query{
		Subject: drbac.SubjectEntity(w.ids["Maria"].ID()),
		Object:  drbac.NewRole(w.ids["AirNet"].ID(), "c"),
	}
	build := func(b *testing.B, disableCache bool) *drbac.Wallet {
		b.Helper()
		wal := drbac.NewWallet(drbac.WalletConfig{Directory: w.dir, DisableProofCache: disableCache})
		if err := wal.Publish(dAB); err != nil {
			b.Fatal(err)
		}
		if err := wal.Publish(dBC); err != nil {
			b.Fatal(err)
		}
		if _, err := wal.QueryDirect(q); err != nil { // warm (primes the cache when on)
			b.Fatal(err)
		}
		return wal
	}
	for _, bench := range []struct {
		name         string
		disableCache bool
		parallel     bool
	}{
		{"hot-cache", false, true},
		{"cold-cache", true, true},
		{"hot-cache-serial", false, false},
		{"cold-cache-serial", true, false},
	} {
		b.Run(bench.name, func(b *testing.B) {
			wal := build(b, bench.disableCache)
			b.ResetTimer()
			if bench.parallel {
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if _, err := wal.QueryDirect(q); err != nil {
							b.Fatal(err)
						}
					}
				})
				return
			}
			for i := 0; i < b.N; i++ {
				if _, err := wal.QueryDirect(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// wireBench serves one wallet holding the Figure 1 two-delegation chain and
// dials it once per codec, for the EXP-W1 remote-path benchmarks.
type wireBench struct {
	w       *benchWorld
	client  *remote.Client
	subject core.Subject
	object  core.Role
	fresh   []*core.Delegation
}

func newWireBench(b *testing.B, codec string) *wireBench {
	b.Helper()
	pol, err := transport.ParseWireMode(codec)
	if err != nil {
		b.Fatal(err)
	}
	w := newBenchWorld(b)
	clk := clock.NewFake(w.now)
	net := transport.NewMemNetwork()
	owner := w.ids["BigISP"]
	wal := wallet.New(wallet.Config{Owner: owner, Clock: clk, Directory: w.dir})
	ln, err := net.ListenCodec("wallet.bigisp", owner, pol)
	if err != nil {
		b.Fatal(err)
	}
	srv := remote.Serve(wal, ln)
	b.Cleanup(srv.Close)
	wb := &wireBench{w: w}
	for _, text := range []string{"[Maria -> BigISP.b] BigISP", "[BigISP.b -> AirNet.c] AirNet"} {
		if err := wal.Publish(w.issue(b, text)); err != nil {
			b.Fatal(err)
		}
	}
	wb.subject = core.SubjectEntity(w.ids["Maria"].ID())
	wb.object = core.NewRole(w.ids["AirNet"].ID(), "c")
	c, err := remote.Dial(context.Background(), net.DialerCodec(w.ids["Maria"], pol), "wallet.bigisp")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	if got := c.WireCodec(); got != codec {
		b.Fatalf("negotiated %q, want %q", got, codec)
	}
	wb.client = c
	return wb
}

// mint prepares n distinct publishable delegations ahead of the timer.
func (wb *wireBench) mint(b *testing.B, n int) {
	b.Helper()
	wb.fresh = make([]*core.Delegation, n)
	for i := range wb.fresh {
		wb.fresh[i] = wb.w.issue(b, fmt.Sprintf("[Maria -> BigISP.r%d] BigISP", i))
	}
}

// BenchmarkQueryDirect prices the full remote query round trip — encode
// request, transport framing, server decode, wallet lookup, proof encode,
// client decode — under each wire codec (EXP-W1). The wallet's hot proof
// cache keeps the graph-search cost constant, so the codec is the variable.
func BenchmarkQueryDirect(b *testing.B) {
	for _, codec := range []string{transport.CodecJSON, transport.CodecBinary} {
		b.Run(codec, func(b *testing.B) {
			wb := newWireBench(b, codec)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := wb.client.QueryDirect(ctx, wb.subject, wb.object, nil, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPublish prices the remote publish round trip per codec (EXP-W1):
// each iteration ships one signed delegation and waits for the ack. It
// cycles a pre-published pool so the wallet's verified-signature memo (§PR5,
// EXP-S8 warm) absorbs the ed25519 verify — steady-state republish, where
// the wire codec rather than the 56µs signature check is the variable.
// First-publish cost (memo cold) is BenchmarkVerifyDelegation's job.
func BenchmarkPublish(b *testing.B) {
	const pool = 64
	for _, codec := range []string{transport.CodecJSON, transport.CodecBinary} {
		b.Run(codec, func(b *testing.B) {
			wb := newWireBench(b, codec)
			wb.mint(b, pool)
			ctx := context.Background()
			for _, d := range wb.fresh { // prime wallet + signature memo
				if err := wb.client.Publish(ctx, d, nil, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := wb.client.Publish(ctx, wb.fresh[i%pool], nil, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// shardedBench is an N-shard wallet cluster on an in-memory network for
// the §12 benchmarks: one served shard wallet per map entry behind a
// routing gateway.
type shardedBench struct {
	b   *testing.B
	dir *core.MemDirectory
	clk *clock.Fake
	net *transport.MemNetwork
	ids map[string]*core.Identity
	m   *cluster.Map
	gw  *cluster.Wallet
}

func newShardedBench(b *testing.B, shards int) *shardedBench {
	b.Helper()
	sc := &shardedBench{
		b:   b,
		dir: core.NewDirectory(),
		clk: clock.NewFake(time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)),
		net: transport.NewMemNetwork(),
		ids: make(map[string]*core.Identity),
	}
	groups := make([][]string, shards)
	for i := range groups {
		groups[i] = []string{fmt.Sprintf("shard%d", i)}
	}
	m, err := cluster.Uniform(groups)
	if err != nil {
		b.Fatal(err)
	}
	sc.m = m
	for _, s := range m.Shards {
		owner := sc.ident(fmt.Sprintf("shard%d-owner", s.ID))
		w := wallet.New(wallet.Config{Owner: owner, Clock: sc.clk, Directory: sc.dir})
		node, err := cluster.NewNode(s.ID, m, nil)
		if err != nil {
			b.Fatal(err)
		}
		ln, err := sc.net.Listen(s.Addrs[0], owner)
		if err != nil {
			b.Fatal(err)
		}
		srv := remote.ServeOptions(w, ln, remote.Options{Cluster: node})
		b.Cleanup(srv.Close)
	}
	sc.gw = sc.newGateway()
	return sc
}

// newGateway builds an extra gateway over the cluster (cold assembly
// cache); the caller owns its Close.
func (sc *shardedBench) newGateway() *cluster.Wallet {
	sc.b.Helper()
	gate := sc.ident("gate")
	gw, err := cluster.NewWallet(cluster.WalletConfig{
		Map:      sc.m,
		Dialer:   sc.net.Dialer(gate),
		Identity: gate,
		Clock:    sc.clk,
	})
	if err != nil {
		sc.b.Fatal(err)
	}
	sc.b.Cleanup(gw.Close)
	return gw
}

func (sc *shardedBench) ident(name string) *core.Identity {
	if id, ok := sc.ids[name]; ok {
		return id
	}
	seed := sha256.Sum256([]byte("drbac-bench:" + name))
	id, err := core.IdentityFromSeed(name, seed[:])
	if err != nil {
		sc.b.Fatal(err)
	}
	sc.ids[name] = id
	sc.dir.Add(id.Entity())
	return id
}

func (sc *shardedBench) deleg(text string) *core.Delegation {
	sc.b.Helper()
	parsed, err := core.ParseDelegation(text, sc.dir)
	if err != nil {
		sc.b.Fatal(err)
	}
	var issuer *core.Identity
	for _, id := range sc.ids {
		if id.ID() == parsed.Issuer.ID() {
			issuer = id
		}
	}
	if issuer == nil {
		sc.b.Fatalf("no identity for issuer of %q", text)
	}
	d, err := core.Issue(issuer, parsed.Template, sc.clk.Now())
	if err != nil {
		sc.b.Fatal(err)
	}
	return d
}

// BenchmarkShardedPublish measures the routed publish path (§12): hash
// the subject, pick the owning shard, one wire round trip, admission at
// the shard. The shard count varies only the routing fan-out, so the
// per-op numbers should be near-flat; aggregate scaling under a durable
// commit is EXP-C1's job (coalition-sim -exp cluster).
func BenchmarkShardedPublish(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sc := newShardedBench(b, shards)
			sc.ident("Org")
			delegs := make([]*core.Delegation, b.N)
			for i := range delegs {
				user := fmt.Sprintf("user%d", i)
				sc.ident(user)
				delegs[i] = sc.deleg(fmt.Sprintf("[%s -> Org.member] Org", user))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sc.gw.Publish(delegs[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCrossShardProof measures end-to-end proof assembly for a
// three-link chain spanning shards: cold pays the scatter/fetch rounds,
// warm answers from the gateway's TTL-coherent assembly cache.
func BenchmarkCrossShardProof(b *testing.B) {
	sc := newShardedBench(b, 4)
	for _, name := range []string{"A", "B", "C", "Maria"} {
		sc.ident(name)
	}
	for _, text := range []string{
		"[Maria -> A.member] A",
		"[A.member -> B.guest] B",
		"[B.guest -> C.vip] C",
	} {
		if err := sc.gw.Publish(sc.deleg(text)); err != nil {
			b.Fatal(err)
		}
	}
	subject, err := core.ParseSubject("Maria", sc.dir)
	if err != nil {
		b.Fatal(err)
	}
	object, err := core.ParseRole("C.vip", sc.dir)
	if err != nil {
		b.Fatal(err)
	}
	q := wallet.Query{Subject: subject, Object: object}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			gw := sc.newGateway()
			b.StartTimer()
			if _, err := gw.QueryDirect(q); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			gw.Close()
			b.StartTimer()
		}
	})
	b.Run("warm", func(b *testing.B) {
		if _, err := sc.gw.QueryDirect(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sc.gw.QueryDirect(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// dhtBenchNode is one DHT participant for BenchmarkDHTResolve: a served
// wallet answering dht-* plus the node and pool behind it.
type dhtBenchNode struct {
	node  *dht.Node
	peers *peer.Manager
	owner *core.Identity
	addr  string
}

func newDHTBenchNode(b *testing.B, net *transport.MemNetwork, clk *clock.Fake, name, addr string, serve bool) *dhtBenchNode {
	b.Helper()
	seed := sha256.Sum256([]byte("drbac-bench-dht:" + name))
	owner, err := core.IdentityFromSeed(name, seed[:])
	if err != nil {
		b.Fatal(err)
	}
	peers := peer.NewManager(peer.Config{
		Dialer:      net.Dialer(owner),
		Clock:       clk,
		CallTimeout: 5 * time.Second,
	})
	node, err := dht.NewNode(dht.Config{Identity: owner, Addr: addr, Peers: peers, Clock: clk, K: 8})
	if err != nil {
		b.Fatal(err)
	}
	if serve {
		ln, err := net.Listen(addr, owner)
		if err != nil {
			b.Fatal(err)
		}
		w := wallet.New(wallet.Config{Owner: owner, Clock: clk})
		srv := remote.ServeOptions(w, ln, remote.Options{DHT: node})
		b.Cleanup(srv.Close)
	}
	b.Cleanup(peers.Close)
	return &dhtBenchNode{node: node, peers: peers, owner: owner, addr: addr}
}

// BenchmarkDHTResolve prices entity→wallet resolution through the DHT
// (§13) against the static address book it replaces. static is the
// baseline map lookup; dht/cached hits the client's verified-record
// cache (the steady-state path between TTL expiries); dht/miss resolves
// a never-before-seen entity — a full iterative find-value across the
// coalition with warm routing buckets.
func BenchmarkDHTResolve(b *testing.B) {
	ctx := context.Background()
	clk := clock.NewFake(time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC))
	net := transport.NewMemNetwork()
	coalition := make([]*dhtBenchNode, 4)
	for i := range coalition {
		coalition[i] = newDHTBenchNode(b, net, clk, fmt.Sprintf("member%d", i), fmt.Sprintf("wallet.m%d", i), true)
	}
	seedAddr := coalition[0].addr
	for _, m := range coalition[1:] {
		if err := m.node.Bootstrap(ctx, []string{seedAddr}); err != nil {
			b.Fatal(err)
		}
	}
	home := coalition[1]
	if err := home.node.Announce(ctx, home.owner, []string{home.addr}); err != nil {
		b.Fatal(err)
	}
	client := newDHTBenchNode(b, net, clk, "client", "wallet.client.unreachable", false)
	if err := client.node.Bootstrap(ctx, []string{seedAddr}); err != nil {
		b.Fatal(err)
	}

	b.Run("static", func(b *testing.B) {
		book := map[core.EntityID][]string{home.owner.ID(): {home.addr}}
		for i := 0; i < b.N; i++ {
			addrs, ok := book[home.owner.ID()]
			if !ok || len(addrs) == 0 {
				b.Fatal("static book miss")
			}
		}
	})

	b.Run("dht/cached", func(b *testing.B) {
		if _, err := client.node.Resolve(ctx, home.owner.ID()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.node.Resolve(ctx, home.owner.ID()); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("dht/miss", func(b *testing.B) {
		ents := make([]core.EntityID, b.N)
		for i := range ents {
			name := fmt.Sprintf("bench-user-%d", i)
			seed := sha256.Sum256([]byte("drbac-bench-dht:" + name))
			id, err := core.IdentityFromSeed(name, seed[:])
			if err != nil {
				b.Fatal(err)
			}
			if err := home.node.Announce(ctx, id, []string{home.addr}); err != nil {
				b.Fatal(err)
			}
			ents[i] = id.ID()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.node.Resolve(ctx, ents[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
