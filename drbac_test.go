package drbac_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"drbac"
)

// newCoalition builds the paper's principals through the public API only.
func newCoalition(t *testing.T) (ids map[string]*drbac.Identity, dir *drbac.MemDirectory) {
	t.Helper()
	ids = make(map[string]*drbac.Identity)
	dir = drbac.NewDirectory()
	for _, name := range []string{"BigISP", "AirNet", "Mark", "Sheila", "Maria"} {
		id, err := drbac.NewIdentity(name)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
		dir.Add(id.Entity())
	}
	return ids, dir
}

func issue(t *testing.T, ids map[string]*drbac.Identity, dir drbac.Directory, text string) *drbac.Delegation {
	t.Helper()
	parsed, err := drbac.ParseDelegation(text, dir)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	var issuer *drbac.Identity
	for _, id := range ids {
		if id.ID() == parsed.Issuer.ID() {
			issuer = id
		}
	}
	if issuer == nil {
		t.Fatalf("no identity for issuer of %q", text)
	}
	d, err := drbac.Issue(issuer, parsed.Template, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPublicAPITable1Flow(t *testing.T) {
	ids, dir := newCoalition(t)
	w := drbac.NewWallet(drbac.WalletConfig{Directory: dir})

	for _, text := range []string{
		"[Mark -> BigISP.memberServices] BigISP",
		"[BigISP.memberServices -> BigISP.member'] BigISP",
		"[Maria -> BigISP.member] Mark",
	} {
		if err := w.Publish(issue(t, ids, dir, text)); err != nil {
			t.Fatalf("publish %q: %v", text, err)
		}
	}
	proof, err := w.QueryDirect(drbac.Query{
		Subject: drbac.SubjectEntity(ids["Maria"].ID()),
		Object:  drbac.NewRole(ids["BigISP"].ID(), "member"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out := (drbac.Printer{Dir: dir}).Proof(proof); out == "" {
		t.Fatal("empty rendering")
	}
}

func TestPublicAPIDistributedCoalitionOverTCP(t *testing.T) {
	ids, dir := newCoalition(t)
	now := time.Now()
	clk := drbac.SystemClock()
	_ = clk

	// AirNet's home wallet over real TCP.
	airNetWallet := drbac.NewWallet(drbac.WalletConfig{Owner: ids["AirNet"], Directory: dir})
	ln, err := drbac.ListenTCP("127.0.0.1:0", ids["AirNet"])
	if err != nil {
		t.Fatal(err)
	}
	srv := drbac.ServeWallet(airNetWallet, ln)
	defer srv.Close()

	if err := airNetWallet.Publish(issue(t, ids, dir, "[BigISP.member -> AirNet.access with AirNet.BW <= 100] AirNet")); err != nil {
		t.Fatal(err)
	}

	// The relying server holds Maria's membership locally and discovers
	// the rest via the tag book.
	local := drbac.NewWallet(drbac.WalletConfig{Directory: dir})
	if err := local.Publish(issue(t, ids, dir, "[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	memberRole := drbac.NewRole(ids["BigISP"].ID(), "member")
	bw := drbac.AttributeRef{Namespace: ids["AirNet"].ID(), Name: "BW"}

	proof, err := drbac.Discover(context.Background(), local, &drbac.TCPDialer{Identity: ids["Maria"]}, drbac.Query{
		Subject: drbac.SubjectEntity(ids["Maria"].ID()),
		Object:  drbac.NewRole(ids["AirNet"].ID(), "access"),
		Constraints: []drbac.Constraint{
			{Attr: bw, Base: math.Inf(1), Minimum: 50},
		},
	}, map[drbac.Subject]drbac.DiscoveryTag{
		drbac.SubjectRole(memberRole): {
			Home:    ln.Addr(),
			TTL:     30 * time.Second,
			Subject: drbac.SubjectSearch,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.Validate(drbac.ValidateOptions{At: now}); err != nil {
		t.Fatal(err)
	}
	ag, err := proof.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if got := ag.Value(bw, math.Inf(1)); got != 100 {
		t.Fatalf("BW = %v", got)
	}
}

func TestPublicAPIMonitoring(t *testing.T) {
	ids, dir := newCoalition(t)
	w := drbac.NewWallet(drbac.WalletConfig{Directory: dir})
	d := issue(t, ids, dir, "[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	events := make(chan drbac.MonitorEvent, 1)
	mon, err := w.Monitor(drbac.Query{
		Subject: drbac.SubjectEntity(ids["Maria"].ID()),
		Object:  drbac.NewRole(ids["BigISP"].ID(), "member"),
	}, func(ev drbac.MonitorEvent) { events <- ev })
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if err := w.Revoke(d.ID(), ids["BigISP"].ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Kind != drbac.MonitorInvalidated {
			t.Fatalf("event = %v", ev.Kind)
		}
	case <-time.After(time.Second):
		t.Fatal("no monitor event")
	}
	_, err = w.QueryDirect(drbac.Query{
		Subject: drbac.SubjectEntity(ids["Maria"].ID()),
		Object:  drbac.NewRole(ids["BigISP"].ID(), "member"),
	})
	if !errors.Is(err, drbac.ErrNoProof) {
		t.Fatalf("want ErrNoProof, got %v", err)
	}
}

func TestPublicAPIFakeClockExpiry(t *testing.T) {
	ids, dir := newCoalition(t)
	start := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	clk := drbac.NewFakeClock(start)
	w := drbac.NewWallet(drbac.WalletConfig{Directory: dir, Clock: clk})

	parsed, err := drbac.ParseDelegation("[Maria -> BigISP.member] BigISP <expiry:2026-07-06T13:00:00Z>", dir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := drbac.Issue(ids["BigISP"], parsed.Template, start)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	q := drbac.Query{
		Subject: drbac.SubjectEntity(ids["Maria"].ID()),
		Object:  drbac.NewRole(ids["BigISP"].ID(), "member"),
	}
	if _, err := w.QueryDirect(q); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Hour)
	if _, err := w.QueryDirect(q); !errors.Is(err, drbac.ErrNoProof) {
		t.Fatalf("expired credential still proves: %v", err)
	}
}
