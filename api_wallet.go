package drbac

import (
	"drbac/internal/clock"
	"drbac/internal/graph"
	"drbac/internal/subs"
	"drbac/internal/wallet"
)

// Wallet-layer re-exports: the credential repository (§4.1), proof
// monitors (§4.2.2), and the subscription event model.
type (
	// Wallet is a dRBAC credential repository.
	Wallet = wallet.Wallet
	// WalletConfig parameterizes a wallet.
	WalletConfig = wallet.Config
	// Query is an authorization question against a wallet.
	Query = wallet.Query
	// Monitor continuously tracks a proof's validity.
	Monitor = wallet.Monitor
	// MonitorEvent reports a monitored relationship changing.
	MonitorEvent = wallet.MonitorEvent
	// MonitorEventKind classifies monitor events.
	MonitorEventKind = wallet.MonitorEventKind
	// Event is a delegation status update.
	Event = subs.Event
	// EventKind classifies delegation status updates.
	EventKind = subs.EventKind
	// Clock is the injectable time source wallets run on.
	Clock = clock.Clock
	// FakeClock is a manually advanced clock for tests and simulations.
	FakeClock = clock.Fake
	// SearchDirection selects forward, reverse, or bidirectional search.
	SearchDirection = graph.Direction
	// SearchStats accumulates search effort counters.
	SearchStats = graph.Stats
	// WalletStore is the wallet's pluggable system of record.
	WalletStore = wallet.Store
	// WalletStats snapshots wallet state and proof-cache counters.
	WalletStats = wallet.Stats
	// ProofCacheStats reports proof-cache hit/miss/invalidation counters.
	ProofCacheStats = wallet.CacheStats
)

// Monitor and event constants.
const (
	MonitorReproved    = wallet.MonitorReproved
	MonitorInvalidated = wallet.MonitorInvalidated

	EventRevoked   = subs.Revoked
	EventExpired   = subs.Expired
	EventRenewed   = subs.Renewed
	EventStale     = subs.Stale
	EventPublished = subs.Published

	SearchForward       = graph.Forward
	SearchReverse       = graph.Reverse
	SearchBidirectional = graph.Bidirectional
)

// NewWallet constructs an empty wallet.
func NewWallet(cfg WalletConfig) *Wallet { return wallet.New(cfg) }

// NewMemStore returns an empty in-memory wallet store, the default system
// of record.
func NewMemStore() WalletStore { return wallet.NewMemStore() }

// OpenFileStore opens (or creates) a JSON file-backed wallet store at path.
// Every mutation persists atomically, so a wallet rebuilt on the store after
// a restart serves the same proofs and keeps refusing revoked credentials.
func OpenFileStore(path string) (WalletStore, error) { return wallet.OpenFileStore(path) }

// SystemClock returns the real wall clock.
func SystemClock() Clock { return clock.System{} }

// NewFakeClock returns a manually advanced clock pinned at start.
var NewFakeClock = clock.NewFake
