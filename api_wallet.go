package drbac

import (
	"io"
	"log/slog"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/graph"
	"drbac/internal/logstore"
	"drbac/internal/obs"
	"drbac/internal/sigcache"
	"drbac/internal/subs"
	"drbac/internal/wallet"
)

// Wallet-layer re-exports: the credential repository (§4.1), proof
// monitors (§4.2.2), and the subscription event model.
type (
	// Wallet is a dRBAC credential repository.
	Wallet = wallet.Wallet
	// WalletConfig parameterizes a wallet.
	WalletConfig = wallet.Config
	// Query is an authorization question against a wallet.
	Query = wallet.Query
	// Monitor continuously tracks a proof's validity.
	Monitor = wallet.Monitor
	// MonitorEvent reports a monitored relationship changing.
	MonitorEvent = wallet.MonitorEvent
	// MonitorEventKind classifies monitor events.
	MonitorEventKind = wallet.MonitorEventKind
	// Event is a delegation status update.
	Event = subs.Event
	// EventKind classifies delegation status updates.
	EventKind = subs.EventKind
	// Clock is the injectable time source wallets run on.
	Clock = clock.Clock
	// FakeClock is a manually advanced clock for tests and simulations.
	FakeClock = clock.Fake
	// SearchDirection selects forward, reverse, or bidirectional search.
	SearchDirection = graph.Direction
	// SearchStats accumulates search effort counters.
	SearchStats = graph.Stats
	// WalletStore is the wallet's pluggable system of record.
	WalletStore = wallet.Store
	// WalletStats snapshots wallet state and proof-cache counters.
	WalletStats = wallet.Stats
	// ProofCacheStats reports proof-cache hit/miss/invalidation counters.
	ProofCacheStats = wallet.CacheStats
	// SigCache is a sharded verified-signature memo; wallets, proxies, and
	// replicas route delegation signature checks through one.
	SigCache = sigcache.Cache
	// SigCacheStats reports a signature memo's hit/miss/eviction counters.
	SigCacheStats = sigcache.Stats
	// SigVerifier routes signature checks through a verification memo;
	// set it in ValidateOptions to parallelize and memoize proof
	// validation. *SigCache implements it.
	SigVerifier = core.SigVerifier
	// Obs bundles a structured logger and a metrics registry; components
	// accept one (nil disables instrumentation).
	Obs = obs.Obs
	// MetricsRegistry is a name-keyed collection of counters, gauges, and
	// latency histograms.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry's instruments.
	MetricsSnapshot = obs.Snapshot
	// HistogramSnapshot is a point-in-time copy of one latency histogram.
	HistogramSnapshot = obs.HistogramSnapshot
	// TraceCollector retains completed traces in a bounded ring with tail
	// sampling: slow and erred traces always survive, the rest are
	// head-sampled. Attach one to an Obs with SetCollector.
	TraceCollector = obs.Collector
	// TraceCollectorConfig tunes a TraceCollector (capacity, slow
	// threshold, head-sampling rate).
	TraceCollectorConfig = obs.CollectorConfig
	// TraceSpan is one timed operation within a trace; spans started from
	// an Obs nest via StartChild and land in the trace collector on End.
	TraceSpan = obs.Span
	// SpanRecord is a completed span as retained by the collector.
	SpanRecord = obs.SpanRecord
	// LatencySLO tracks a latency objective: windowed p50/p99/p999 gauges
	// plus total/breach counters and an error-budget burn gauge.
	LatencySLO = obs.SLO
)

// Monitor and event constants.
const (
	MonitorReproved    = wallet.MonitorReproved
	MonitorInvalidated = wallet.MonitorInvalidated

	EventRevoked   = subs.Revoked
	EventExpired   = subs.Expired
	EventRenewed   = subs.Renewed
	EventStale     = subs.Stale
	EventPublished = subs.Published

	SearchForward       = graph.Forward
	SearchReverse       = graph.Reverse
	SearchBidirectional = graph.Bidirectional
)

// NewWallet constructs an empty wallet.
func NewWallet(cfg WalletConfig) *Wallet { return wallet.New(cfg) }

// NewSigCache returns a verified-signature memo bounded to roughly capacity
// entries; 0 means the default capacity.
func NewSigCache(capacity int) *SigCache { return sigcache.New(capacity) }

// SharedSigCache returns the process-wide signature memo that wallets use
// by default. Signatures are immutable, so sharing it is always safe.
func SharedSigCache() *SigCache { return sigcache.Shared() }

// NewMemStore returns an empty in-memory wallet store, the default system
// of record.
func NewMemStore() WalletStore { return wallet.NewMemStore() }

// OpenFileStore opens (or creates) a JSON file-backed wallet store at path.
// Every mutation persists atomically, so a wallet rebuilt on the store after
// a restart serves the same proofs and keeps refusing revoked credentials.
func OpenFileStore(path string) (WalletStore, error) { return wallet.OpenFileStore(path) }

// OpenLogStore opens (or creates) a segmented append-only wallet store in
// the directory at path (SPEC §11): O(one record) disk work per mutation
// with background compaction, where the file store rewrites all resident
// state. Close the returned store when done; a wallet does not close its
// store. The store also ships its segments for replica bootstrap.
func OpenLogStore(path string) (*logstore.Store, error) {
	return logstore.Open(path, logstore.Options{})
}

// SystemClock returns the real wall clock.
func SystemClock() Clock { return clock.System{} }

// NewFakeClock returns a manually advanced clock pinned at start.
var NewFakeClock = clock.NewFake

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewObs bundles a logger and a registry; either may be nil.
func NewObs(log *slog.Logger, reg *MetricsRegistry) *Obs { return obs.New(log, reg) }

// NewObsLogger builds a leveled slog logger writing text (or JSON) records
// to w — the logging convention every instrumented component shares.
func NewObsLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	return obs.NewLogger(w, level, jsonFormat)
}

// NewTraceID mints a trace identifier for a top-level operation; pass it in
// Query.TraceID so local and remote wallets log under the same trace.
func NewTraceID() string { return obs.NewTraceID() }

// NewTraceCollector builds a retained-trace collector registering its
// drbac_trace_* metrics on reg (nil disables them). Attach it with
// Obs.SetCollector before constructing the components to be traced.
func NewTraceCollector(reg *MetricsRegistry, cfg TraceCollectorConfig) *TraceCollector {
	return obs.NewCollector(reg, cfg)
}

// NewLatencySLO builds a latency SLO named name (drbac_slo_<name>_*) with
// the given breach threshold, registering its gauges and counters on reg.
// objective 0 means 99%; window 0 means the last 1024 observations.
// Register it with Obs.RegisterSLO before constructing the wallet so the
// wallet resolves it at construction.
func NewLatencySLO(reg *MetricsRegistry, name string, threshold time.Duration, objective float64, window int) *LatencySLO {
	return obs.NewSLO(reg, name, threshold, objective, window)
}
