package drbac

import (
	"drbac/internal/clock"
	"drbac/internal/graph"
	"drbac/internal/subs"
	"drbac/internal/wallet"
)

// Wallet-layer re-exports: the credential repository (§4.1), proof
// monitors (§4.2.2), and the subscription event model.
type (
	// Wallet is a dRBAC credential repository.
	Wallet = wallet.Wallet
	// WalletConfig parameterizes a wallet.
	WalletConfig = wallet.Config
	// Query is an authorization question against a wallet.
	Query = wallet.Query
	// Monitor continuously tracks a proof's validity.
	Monitor = wallet.Monitor
	// MonitorEvent reports a monitored relationship changing.
	MonitorEvent = wallet.MonitorEvent
	// MonitorEventKind classifies monitor events.
	MonitorEventKind = wallet.MonitorEventKind
	// Event is a delegation status update.
	Event = subs.Event
	// EventKind classifies delegation status updates.
	EventKind = subs.EventKind
	// Clock is the injectable time source wallets run on.
	Clock = clock.Clock
	// FakeClock is a manually advanced clock for tests and simulations.
	FakeClock = clock.Fake
	// SearchDirection selects forward, reverse, or bidirectional search.
	SearchDirection = graph.Direction
	// SearchStats accumulates search effort counters.
	SearchStats = graph.Stats
)

// Monitor and event constants.
const (
	MonitorReproved    = wallet.MonitorReproved
	MonitorInvalidated = wallet.MonitorInvalidated

	EventRevoked = subs.Revoked
	EventExpired = subs.Expired
	EventRenewed = subs.Renewed
	EventStale   = subs.Stale

	SearchForward       = graph.Forward
	SearchReverse       = graph.Reverse
	SearchBidirectional = graph.Bidirectional
)

// NewWallet constructs an empty wallet.
func NewWallet(cfg WalletConfig) *Wallet { return wallet.New(cfg) }

// SystemClock returns the real wall clock.
func SystemClock() Clock { return clock.System{} }

// NewFakeClock returns a manually advanced clock pinned at start.
var NewFakeClock = clock.NewFake
