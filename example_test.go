package drbac_test

import (
	"fmt"
	"math"
	"time"

	"drbac"
)

// exampleIdentities builds deterministic identities so example output is
// stable.
func exampleIdentities(names ...string) (map[string]*drbac.Identity, *drbac.MemDirectory) {
	ids := make(map[string]*drbac.Identity, len(names))
	dir := drbac.NewDirectory()
	for i, name := range names {
		seed := make([]byte, 32)
		seed[0] = byte(i + 1)
		id, err := drbac.IdentityFromSeed(name, seed)
		if err != nil {
			panic(err)
		}
		ids[name] = id
		dir.Add(id.Entity())
	}
	return ids, dir
}

func exampleIssue(ids map[string]*drbac.Identity, dir drbac.Directory, text string) *drbac.Delegation {
	parsed, err := drbac.ParseDelegation(text, dir)
	if err != nil {
		panic(err)
	}
	var issuer *drbac.Identity
	for _, id := range ids {
		if id.ID() == parsed.Issuer.ID() {
			issuer = id
		}
	}
	d, err := drbac.Issue(issuer, parsed.Template, time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC))
	if err != nil {
		panic(err)
	}
	return d
}

// ExampleParseDelegation shows the paper's Table 1 third-party form round-
// tripping through the parser and printer.
func ExampleParseDelegation() {
	ids, dir := exampleIdentities("BigISP", "Mark", "Maria")
	d := exampleIssue(ids, dir, "[Maria -> BigISP.member] Mark")
	fmt.Println(d.Kind())
	fmt.Println(drbac.Printer{Dir: dir}.Delegation(d))
	// Output:
	// third-party
	// [Maria -> BigISP.member] Mark
}

// ExampleWallet_QueryDirect proves Maria holds BigISP.member from the three
// Table 1 delegations.
func ExampleWallet_QueryDirect() {
	ids, dir := exampleIdentities("BigISP", "Mark", "Maria")
	w := drbac.NewWallet(drbac.WalletConfig{Directory: dir})
	for _, text := range []string{
		"[Mark -> BigISP.memberServices] BigISP",
		"[BigISP.memberServices -> BigISP.member'] BigISP",
		"[Maria -> BigISP.member] Mark",
	} {
		if err := w.Publish(exampleIssue(ids, dir, text)); err != nil {
			panic(err)
		}
	}
	proof, err := w.QueryDirect(drbac.Query{
		Subject: drbac.SubjectEntity(ids["Maria"].ID()),
		Object:  drbac.NewRole(ids["BigISP"].ID(), "member"),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("chain length %d with %d support proof(s)\n",
		proof.Len(), len(proof.Steps[0].Support))
	// Output:
	// chain length 1 with 1 support proof(s)
}

// ExampleProof_Aggregate reproduces the §5 valued-attribute outcomes.
func ExampleProof_Aggregate() {
	ids, dir := exampleIdentities("AirNet", "Maria")
	w := drbac.NewWallet(drbac.WalletConfig{Directory: dir})
	for _, text := range []string{
		"[Maria -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20 and AirNet.hours *= 0.3] AirNet",
		"[AirNet.member -> AirNet.access with AirNet.BW <= 200] AirNet",
	} {
		if err := w.Publish(exampleIssue(ids, dir, text)); err != nil {
			panic(err)
		}
	}
	proof, err := w.QueryDirect(drbac.Query{
		Subject: drbac.SubjectEntity(ids["Maria"].ID()),
		Object:  drbac.NewRole(ids["AirNet"].ID(), "access"),
	})
	if err != nil {
		panic(err)
	}
	ag, err := proof.Aggregate()
	if err != nil {
		panic(err)
	}
	airNet := ids["AirNet"].ID()
	fmt.Println("BW:", ag.Value(drbac.AttributeRef{Namespace: airNet, Name: "BW"}, math.Inf(1)))
	fmt.Println("storage:", ag.Value(drbac.AttributeRef{Namespace: airNet, Name: "storage"}, 50))
	fmt.Println("hours:", ag.Value(drbac.AttributeRef{Namespace: airNet, Name: "hours"}, 60))
	// Output:
	// BW: 100
	// storage: 30
	// hours: 18
}

// ExampleWallet_Monitor shows continuous monitoring reacting to a
// revocation.
func ExampleWallet_Monitor() {
	ids, dir := exampleIdentities("BigISP", "Maria")
	w := drbac.NewWallet(drbac.WalletConfig{Directory: dir})
	d := exampleIssue(ids, dir, "[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		panic(err)
	}
	events := make(chan drbac.MonitorEvent, 1)
	mon, err := w.Monitor(drbac.Query{
		Subject: drbac.SubjectEntity(ids["Maria"].ID()),
		Object:  drbac.NewRole(ids["BigISP"].ID(), "member"),
	}, func(ev drbac.MonitorEvent) { events <- ev })
	if err != nil {
		panic(err)
	}
	defer mon.Close()
	if err := w.Revoke(d.ID(), ids["BigISP"].ID()); err != nil {
		panic(err)
	}
	fmt.Println("monitor:", (<-events).Kind)
	fmt.Println("still valid:", mon.Valid())
	// Output:
	// monitor: invalidated
	// still valid: false
}
