package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"drbac/internal/obs"
	"drbac/internal/wallet"
)

// TestDebugMux drives the -http endpoint set: /healthz golden output,
// /metrics exposition, and the pprof index.
func TestDebugMux(t *testing.T) {
	reg := obs.NewRegistry()
	o := obs.New(nil, reg)
	w := wallet.New(wallet.Config{Obs: o})
	reg.Counter("drbac_server_requests_total").Add(17)

	srv := httptest.NewServer(newDebugMux(o, w, "primary", nil))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	if ctype != "application/json" {
		t.Errorf("/healthz content-type = %q", ctype)
	}
	want := `{"status":"ok","role":"primary","delegations":0,"revoked":0,"ttlTracked":0,"watches":0,"seq":0}` + "\n"
	if body != want {
		t.Errorf("/healthz body = %q, want %q", body, want)
	}

	code, body, ctype = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ctype)
	}
	for _, line := range []string{
		"# TYPE drbac_server_requests_total counter",
		"drbac_server_requests_total 17",
		"# TYPE drbac_wallet_delegations gauge",
		"drbac_wallet_delegations 0",
		// The signature memo may be the process-wide shared one, so assert
		// only that its gauges are exported, not their (global) values.
		"# TYPE drbac_sigcache_hits gauge",
		"# TYPE drbac_sigcache_size gauge",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("/metrics missing %q in:\n%s", line, body)
		}
	}

	code, _, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
}
