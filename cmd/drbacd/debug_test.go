package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"drbac/internal/obs"
	"drbac/internal/wallet"
)

// TestDebugMux drives the -http endpoint set: /healthz golden output,
// /metrics exposition, and the pprof index.
func TestDebugMux(t *testing.T) {
	reg := obs.NewRegistry()
	o := obs.New(nil, reg)
	w := wallet.New(wallet.Config{Obs: o})
	reg.Counter("drbac_server_requests_total").Add(17)

	srv := httptest.NewServer(newDebugMux(o, w, "primary", nil, nil, 0, nil))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	if ctype != "application/json" {
		t.Errorf("/healthz content-type = %q", ctype)
	}
	want := `{"status":"ok","role":"primary","delegations":0,"revoked":0,"ttlTracked":0,"watches":0,"seq":0}` + "\n"
	if body != want {
		t.Errorf("/healthz body = %q, want %q", body, want)
	}

	code, body, ctype = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ctype)
	}
	for _, line := range []string{
		"# TYPE drbac_server_requests_total counter",
		"drbac_server_requests_total 17",
		"# TYPE drbac_wallet_delegations gauge",
		"drbac_wallet_delegations 0",
		// The signature memo may be the process-wide shared one, so assert
		// only that its gauges are exported, not their (global) values.
		"# TYPE drbac_sigcache_hits gauge",
		"# TYPE drbac_sigcache_size gauge",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("/metrics missing %q in:\n%s", line, body)
		}
	}

	code, _, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
}

// TestReadyz drives the readiness probe: ready by default, 503 with a JSON
// reason once the store reports a durability failure.
func TestReadyz(t *testing.T) {
	o := obs.New(nil, obs.NewRegistry())
	w := wallet.New(wallet.Config{Obs: o})

	var storeErr error
	health := func() error { return storeErr }
	srv := httptest.NewServer(newDebugMux(o, w, "primary", nil, health, 30*time.Second, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz status = %d, want 200", resp.StatusCode)
	}
	if got, want := string(body), `{"ready":true}`+"\n"; got != want {
		t.Errorf("/readyz body = %q, want %q", got, want)
	}

	storeErr = errors.New("commit fsync: disk gone")
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz status = %d, want 503", resp.StatusCode)
	}
	var r struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Ready || !strings.Contains(r.Reason, "disk gone") {
		t.Errorf("/readyz = %+v, want not ready with the store reason", r)
	}
}

// TestNotReadyNil covers the probe's nil inputs: a primary on a store
// without failure detection is always ready.
func TestNotReadyNil(t *testing.T) {
	if reason := notReady(nil, nil, 0, nil); reason != "" {
		t.Errorf("notReady(nil, nil, 0, nil) = %q, want ready", reason)
	}
}

// TestDebugTracesMounted checks that a collector-enabled daemon serves the
// retained-trace endpoints and a collector-less one does not.
func TestDebugTracesMounted(t *testing.T) {
	o := obs.New(nil, obs.NewRegistry())
	o.SetCollector(obs.NewCollector(o.Registry(), obs.CollectorConfig{SampleRate: 1}))
	w := wallet.New(wallet.Config{Obs: o})

	id := obs.NewTraceID()
	sp := o.StartSpan(id, "discovery")
	sp.End()

	srv := httptest.NewServer(newDebugMux(o, w, "primary", nil, nil, 0, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces/%s status = %d: %s", id, resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"root":"discovery"`) {
		t.Errorf("trace detail missing root span: %s", body)
	}

	bare := httptest.NewServer(newDebugMux(obs.New(nil, obs.NewRegistry()), w, "primary", nil, nil, 0, nil))
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("collector-less /debug/traces status = %d, want 404", resp.StatusCode)
	}
}
