// Command drbacd runs a dRBAC wallet server: a credential repository
// answering publication, query, subscription, and revocation requests over
// the authenticated TCP transport (§4).
//
// Usage:
//
//	drbacd -key bigisp.key -listen 127.0.0.1:7100 [-load bundles/] [-strict]
//	       [-replica-of host:port[,host:port...]]
//	       [-http 127.0.0.1:7190] [-log-level debug] [-log-json]
//
// With -replica-of the daemon runs as a read-only follower replica (§9): it
// bootstraps from the upstream wallet's snapshot, applies its changelog
// stream in sequence order, and refuses publish/revoke requests while
// serving queries — a horizontally scaled read path for a busy home wallet.
//
// The -load directory may contain delegation bundle files (as written by
// `drbac delegate`) that are published into the wallet at startup, in
// filename order, so support proofs can precede their dependents.
//
// The optional -http listener serves operational endpoints: /metrics
// (Prometheus text), /healthz (JSON wallet summary), and /debug/pprof.
// All logging is structured (log/slog); -log-level debug adds the
// per-request audit records and proof-search spans.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"drbac/internal/core"
	"drbac/internal/keyfile"
	"drbac/internal/logstore"
	"drbac/internal/obs"
	"drbac/internal/remote"
	"drbac/internal/replica"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "drbacd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("drbacd", flag.ContinueOnError)
	keyPath := fs.String("key", "", "wallet operator identity file")
	listen := fs.String("listen", "127.0.0.1:7100", "listen address")
	load := fs.String("load", "", "directory of delegation bundles to publish at startup")
	state := fs.String("state", "", "wallet state path: restored at startup, persisted on every publication and revocation")
	storeKind := fs.String("store", "json", `durable format for -state: "json" (single-file snapshot, rewritten per mutation) or "log" (segmented append-only log with compaction; a legacy json file at the path is migrated in place once, keeping a .bak)`)
	replicaOf := fs.String("replica-of", "", "run as a read-only follower replica of the wallet at host:port[,host:port...] (§9); mutations are refused")
	strict := fs.Bool("strict", false, "require attribute-assignment rights")
	sweep := fs.Duration("sweep", 10*time.Second, "expiry/staleness sweep interval")
	httpAddr := fs.String("http", "", "debug listen address serving /metrics, /healthz, /debug/pprof (empty disables)")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := fs.Bool("log-json", false, "write logs as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keyPath == "" {
		return fmt.Errorf("-key is required")
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, level, *logJSON)
	o := obs.New(logger, obs.NewRegistry())

	f, err := keyfile.ReadIdentity(*keyPath)
	if err != nil {
		return err
	}
	owner, err := f.Identity()
	if err != nil {
		return err
	}

	w, closeStore, err := openWallet(owner, *state, *storeKind, *strict, o)
	if err != nil {
		return err
	}
	defer closeStore()
	if *state != "" {
		logger.Info("state restored",
			"delegations", w.Len(), "revocations", len(w.RevokedIDs()),
			"seq", w.Seq(), "path", *state, "store", *storeKind)
	}
	if *load != "" {
		n, err := loadBundles(w, *load)
		if err != nil {
			return err
		}
		logger.Info("bundles loaded", "delegations", n, "dir", *load)
	}

	role := "primary"
	var follower *replica.Follower
	if *replicaOf != "" {
		role = "replica"
		follower, err = replica.Start(replica.Config{
			Local:  w,
			Addrs:  remote.SplitAddrs(*replicaOf),
			Dialer: &transport.TCPDialer{Identity: owner},
			Obs:    o,
		})
		if err != nil {
			return err
		}
		defer follower.Close()
		logger.Info("replicating", "upstream", *replicaOf)
	}

	ln, err := transport.ListenTCP(*listen, owner)
	if err != nil {
		return err
	}
	srv := remote.ServeOptions(w, ln, remote.Options{
		Obs:      o,
		Role:     role,
		ReadOnly: follower != nil,
	})
	defer srv.Close()
	logger.Info("serving",
		"owner", owner.Name(), "id", owner.ID().Short(), "addr", ln.Addr(), "role", role)

	if *httpAddr != "" {
		dln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		hsrv := &http.Server{Handler: newDebugMux(o, w, role, follower)}
		defer hsrv.Close()
		go func() {
			if err := hsrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "error", err)
			}
		}()
		logger.Info("debug listener", "addr", dln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ticker := time.NewTicker(*sweep)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if n := w.SweepExpired(); n > 0 {
				logger.Info("swept expired delegations", "count", n)
			}
			if n := w.SweepStaleCache(); n > 0 {
				logger.Info("swept stale cached delegations", "count", n)
			}
		case <-ctx.Done():
			logger.Info("shutting down")
			return nil
		}
	}
}

// health is the /healthz payload: liveness plus the wallet-state summary an
// operator checks first. Replication fields appear only on a replica.
type health struct {
	Status      string `json:"status"`
	Role        string `json:"role"`
	Delegations int    `json:"delegations"`
	Revoked     int    `json:"revoked"`
	TTLTracked  int    `json:"ttlTracked"`
	Watches     int    `json:"watches"`
	Seq         uint64 `json:"seq"`
	AppliedSeq  uint64 `json:"appliedSeq,omitempty"`
	LagSeconds  int64  `json:"lagSeconds,omitempty"`
	Resyncs     int64  `json:"resyncs,omitempty"`
	Upstream    string `json:"upstream,omitempty"`
	Connected   *bool  `json:"upstreamConnected,omitempty"`
}

// newDebugMux builds the -http endpoint set: Prometheus metrics, a JSON
// health summary, and the standard pprof handlers. follower is nil on a
// primary.
func newDebugMux(o *obs.Obs, w *wallet.Wallet, role string, follower *replica.Follower) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MetricsHandler(o.Registry()))
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		st := w.Stats()
		h := health{
			Status:      "ok",
			Role:        role,
			Delegations: st.Delegations,
			Revoked:     st.Revoked,
			TTLTracked:  st.TTLTracked,
			Watches:     st.Watches,
			Seq:         w.Seq(),
		}
		if follower != nil {
			rs := follower.Status()
			h.AppliedSeq = rs.AppliedSeq
			h.LagSeconds = rs.LagSeconds
			h.Resyncs = rs.Resyncs
			h.Upstream = rs.Upstream
			h.Connected = &rs.Connected
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(h)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// openWallet builds the daemon's wallet. With a state path the wallet sits
// on a durable store: every publication and revocation persists before the
// request is acknowledged, and a restarted daemon replays the store —
// including the revocation set, so previously revoked credentials stay
// refused — at construction. storeKind selects the format: "json" is the
// legacy single-file snapshot, "log" the segmented append-only log. The
// returned closer flushes and releases the store; call it at shutdown.
func openWallet(owner *core.Identity, statePath, storeKind string, strict bool, o *obs.Obs) (*wallet.Wallet, func(), error) {
	cfg := wallet.Config{Owner: owner, StrictAttributes: strict, Obs: o}
	closer := func() {}
	switch storeKind {
	case "json":
		if statePath != "" {
			st, err := wallet.OpenFileStore(statePath)
			if err != nil {
				return nil, nil, err
			}
			cfg.Store = st
		}
	case "log":
		if statePath == "" {
			return nil, nil, fmt.Errorf("-store=log requires -state")
		}
		st, err := openLogStore(statePath, o.Registry())
		if err != nil {
			return nil, nil, err
		}
		cfg.Store = st
		closer = func() { _ = st.Close() }
	default:
		return nil, nil, fmt.Errorf("unknown -store %q (want json or log)", storeKind)
	}
	return wallet.New(cfg), closer, nil
}

// openLogStore opens the segmented log store at path, migrating a legacy
// JSON state file found there first. Migration is crash-safe and idempotent:
// the log is seeded in a .migrating directory, the original file moves to
// .bak, and the directory renames into place — reopening after a crash in
// any window either redoes the seeding from the still-present file or
// finishes the final rename.
func openLogStore(path string, reg *obs.Registry) (*logstore.Store, error) {
	fi, err := os.Stat(path)
	switch {
	case err == nil && !fi.IsDir():
		if err := migrateJSONToLog(path); err != nil {
			return nil, fmt.Errorf("migrating %s to a log store: %w", path, err)
		}
	case os.IsNotExist(err):
		// A crash after the file moved to .bak but before the seeded
		// directory renamed into place leaves only the .migrating dir:
		// seeding completed (the rename only happens after a clean close),
		// so finishing the rename completes the migration.
		if mfi, merr := os.Stat(path + ".migrating"); merr == nil && mfi.IsDir() {
			if err := os.Rename(path+".migrating", path); err != nil {
				return nil, fmt.Errorf("finishing interrupted migration of %s: %w", path, err)
			}
			if err := wallet.SyncDir(filepath.Dir(path)); err != nil {
				return nil, err
			}
		}
	case err != nil:
		return nil, err
	}
	return logstore.Open(path, logstore.Options{Registry: reg})
}

// migrateJSONToLog seeds a fresh log store from a legacy JSON state file
// and swaps it into the file's place, leaving the original as .bak.
func migrateJSONToLog(path string) error {
	fst, err := wallet.OpenFileStore(path)
	if err != nil {
		return err
	}
	tmp := path + ".migrating"
	// A half-seeded directory from an earlier crash is redone from scratch;
	// the original file is still authoritative.
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	ls, err := logstore.Open(tmp, logstore.Options{CompactInterval: -1})
	if err != nil {
		return err
	}
	revs := fst.Revocations()
	sort.Slice(revs, func(i, j int) bool { return revs[i].ID < revs[j].ID })
	bundles := fst.Bundles()
	sort.Slice(bundles, func(i, j int) bool {
		return bundles[i].Delegation.ID() < bundles[j].Delegation.ID()
	})
	// Seed seqs end exactly at the old store's high-water mark (or the
	// mutation count if it never recorded one), so wallet changelog numbers
	// never regress across the migration.
	seq := uint64(0)
	if n := uint64(len(revs) + len(bundles)); fst.Seq() > n {
		seq = fst.Seq() - n
	}
	for _, r := range revs {
		seq++
		if _, err := ls.AddRevocation(seq, r.ID, r.At); err != nil {
			_ = ls.Close()
			return err
		}
	}
	for _, b := range bundles {
		seq++
		if err := ls.PutDelegation(seq, b.Delegation, b.Support); err != nil {
			_ = ls.Close()
			return err
		}
	}
	if err := ls.Close(); err != nil {
		return err
	}
	if err := os.Rename(path, path+".bak"); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return wallet.SyncDir(filepath.Dir(path))
}

func loadBundles(w *wallet.Wallet, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	n := 0
	for _, name := range names {
		b, err := keyfile.ReadBundle(filepath.Join(dir, name))
		if err != nil {
			return n, fmt.Errorf("load %s: %w", name, err)
		}
		if err := w.Publish(b.Delegation, b.Support...); err != nil {
			return n, fmt.Errorf("publish %s: %w", name, err)
		}
		n++
	}
	return n, nil
}
