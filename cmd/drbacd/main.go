// Command drbacd runs a dRBAC wallet server: a credential repository
// answering publication, query, subscription, and revocation requests over
// the authenticated TCP transport (§4).
//
// Usage:
//
//	drbacd -key bigisp.key -listen 127.0.0.1:7100 [-load bundles/] [-strict]
//
// The -load directory may contain delegation bundle files (as written by
// `drbac delegate`) that are published into the wallet at startup, in
// filename order, so support proofs can precede their dependents.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"drbac/internal/keyfile"
	"drbac/internal/remote"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "drbacd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("drbacd", flag.ContinueOnError)
	keyPath := fs.String("key", "", "wallet operator identity file")
	listen := fs.String("listen", "127.0.0.1:7100", "listen address")
	load := fs.String("load", "", "directory of delegation bundles to publish at startup")
	state := fs.String("state", "", "wallet state file: restored at startup, saved on shutdown and every sweep")
	strict := fs.Bool("strict", false, "require attribute-assignment rights")
	sweep := fs.Duration("sweep", 10*time.Second, "expiry/staleness sweep interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keyPath == "" {
		return fmt.Errorf("-key is required")
	}
	f, err := keyfile.ReadIdentity(*keyPath)
	if err != nil {
		return err
	}
	owner, err := f.Identity()
	if err != nil {
		return err
	}

	w := wallet.New(wallet.Config{Owner: owner, StrictAttributes: *strict})
	if *state != "" {
		if n, err := keyfile.LoadWallet(*state, w); err == nil {
			fmt.Printf("restored %d delegations from %s\n", n, *state)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	if *load != "" {
		n, err := loadBundles(w, *load)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d delegations from %s\n", n, *load)
	}

	ln, err := transport.ListenTCP(*listen, owner)
	if err != nil {
		return err
	}
	srv := remote.Serve(w, ln)
	defer srv.Close()
	fmt.Printf("drbacd: wallet of %s (%s) serving on %s\n", owner.Name(), owner.ID().Short(), ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*sweep)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if n := w.SweepExpired(); n > 0 {
				fmt.Printf("swept %d expired delegations\n", n)
			}
			if n := w.SweepStaleCache(); n > 0 {
				fmt.Printf("swept %d stale cached delegations\n", n)
			}
			if *state != "" {
				if err := keyfile.SaveWallet(*state, w); err != nil {
					fmt.Fprintf(os.Stderr, "drbacd: save state: %v\n", err)
				}
			}
		case <-stop:
			if *state != "" {
				if err := keyfile.SaveWallet(*state, w); err != nil {
					fmt.Fprintf(os.Stderr, "drbacd: save state: %v\n", err)
				}
			}
			fmt.Println("shutting down")
			return nil
		}
	}
}

func loadBundles(w *wallet.Wallet, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	n := 0
	for _, name := range names {
		b, err := keyfile.ReadBundle(filepath.Join(dir, name))
		if err != nil {
			return n, fmt.Errorf("load %s: %w", name, err)
		}
		if err := w.Publish(b.Delegation, b.Support...); err != nil {
			return n, fmt.Errorf("publish %s: %w", name, err)
		}
		n++
	}
	return n, nil
}
