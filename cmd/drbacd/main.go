// Command drbacd runs a dRBAC wallet server: a credential repository
// answering publication, query, subscription, and revocation requests over
// the authenticated TCP transport (§4).
//
// Usage:
//
//	drbacd -key bigisp.key -listen 127.0.0.1:7100 [-load bundles/] [-strict]
//
// The -load directory may contain delegation bundle files (as written by
// `drbac delegate`) that are published into the wallet at startup, in
// filename order, so support proofs can precede their dependents.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"drbac/internal/core"
	"drbac/internal/keyfile"
	"drbac/internal/remote"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "drbacd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("drbacd", flag.ContinueOnError)
	keyPath := fs.String("key", "", "wallet operator identity file")
	listen := fs.String("listen", "127.0.0.1:7100", "listen address")
	load := fs.String("load", "", "directory of delegation bundles to publish at startup")
	state := fs.String("state", "", "wallet state file: restored at startup, rewritten on every publication and revocation")
	strict := fs.Bool("strict", false, "require attribute-assignment rights")
	sweep := fs.Duration("sweep", 10*time.Second, "expiry/staleness sweep interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keyPath == "" {
		return fmt.Errorf("-key is required")
	}
	f, err := keyfile.ReadIdentity(*keyPath)
	if err != nil {
		return err
	}
	owner, err := f.Identity()
	if err != nil {
		return err
	}

	w, err := openWallet(owner, *state, *strict)
	if err != nil {
		return err
	}
	if *state != "" {
		fmt.Printf("restored %d delegations (%d revocations) from %s\n",
			w.Len(), len(w.RevokedIDs()), *state)
	}
	if *load != "" {
		n, err := loadBundles(w, *load)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d delegations from %s\n", n, *load)
	}

	ln, err := transport.ListenTCP(*listen, owner)
	if err != nil {
		return err
	}
	srv := remote.Serve(w, ln)
	defer srv.Close()
	fmt.Printf("drbacd: wallet of %s (%s) serving on %s\n", owner.Name(), owner.ID().Short(), ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*sweep)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if n := w.SweepExpired(); n > 0 {
				fmt.Printf("swept %d expired delegations\n", n)
			}
			if n := w.SweepStaleCache(); n > 0 {
				fmt.Printf("swept %d stale cached delegations\n", n)
			}
		case <-stop:
			fmt.Println("shutting down")
			return nil
		}
	}
}

// openWallet builds the daemon's wallet. With a state path the wallet sits
// on a file-backed store: every publication and revocation persists before
// the request is acknowledged, and a restarted daemon replays the file —
// including the revocation set, so previously revoked credentials stay
// refused — at construction. No separate save step exists anymore.
func openWallet(owner *core.Identity, statePath string, strict bool) (*wallet.Wallet, error) {
	cfg := wallet.Config{Owner: owner, StrictAttributes: strict}
	if statePath != "" {
		st, err := wallet.OpenFileStore(statePath)
		if err != nil {
			return nil, err
		}
		cfg.Store = st
	}
	return wallet.New(cfg), nil
}

func loadBundles(w *wallet.Wallet, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	n := 0
	for _, name := range names {
		b, err := keyfile.ReadBundle(filepath.Join(dir, name))
		if err != nil {
			return n, fmt.Errorf("load %s: %w", name, err)
		}
		if err := w.Publish(b.Delegation, b.Support...); err != nil {
			return n, fmt.Errorf("publish %s: %w", name, err)
		}
		n++
	}
	return n, nil
}
