// Command drbacd runs a dRBAC wallet server: a credential repository
// answering publication, query, subscription, and revocation requests over
// the authenticated TCP transport (§4).
//
// Usage:
//
//	drbacd -key bigisp.key -listen 127.0.0.1:7100 [-load bundles/] [-strict]
//	       [-wire auto|json|binary]
//	       [-replica-of host:port[,host:port...]]
//	       [-shard-of map.json -shard-id 0]
//	       [-gateway-of map.json]
//	       [-dht [-bootstrap host:port[,host:port]] [-announce host:port[,host:port]]]
//	       [-http 127.0.0.1:7190] [-log-level debug] [-log-json]
//
// With -replica-of the daemon runs as a read-only follower replica (§9): it
// bootstraps from the upstream wallet's snapshot, applies its changelog
// stream in sequence order, and refuses publish/revoke requests while
// serving queries — a horizontally scaled read path for a busy home wallet.
//
// With -shard-of the daemon serves one shard of a consistent-hash wallet
// cluster (§12): the map file names every shard's replica group, -shard-id
// this member's shard. The server advertises the map epoch on connect and
// refuses mis-routed or stale-epoch mutations with redirects carrying the
// fresh map. The file is re-read when its mtime changes (on the -sweep
// cadence) and newer epochs adopted live, so a reshard is a map-file
// rollout; /readyz reports an unreadable or unadoptable map as not-ready.
//
// With -gateway-of the daemon serves the whole cluster as one logical
// wallet (§12.3): mutations route to the owning shard, object queries
// scatter-gather across shards, and direct queries assemble cross-shard
// proof chains. The gateway holds no durable state of its own — only a
// TTL-coherent assembly cache — so -state, -load, -replica-of, and
// -shard-of are rejected alongside it. The map file is watched exactly
// like a member's.
//
// With -dht the daemon joins the coalition's decentralized discovery and
// membership layer (§13): it serves dht-*/gossip-* requests, announces a
// signed provider record for its owner entity (the -announce addresses,
// defaulting to -listen) on startup and on shard-map adoption, bootstraps
// through the -bootstrap seed wallets (none starts a lone seed), and fans
// gossip liveness verdicts into every peer pool so a dead member trips
// circuit breakers coalition-wide. A gateway's shard map may then name
// members as dht:<entity-fingerprint> instead of host:port; such entries
// are resolved through the DHT at dial time.
//
// The -load directory may contain delegation bundle files (as written by
// `drbac delegate`) that are published into the wallet at startup, in
// filename order, so support proofs can precede their dependents.
//
// The optional -http listener serves operational endpoints: /metrics
// (Prometheus text), /healthz (liveness: JSON wallet summary), /readyz
// (readiness: 503 with a reason while the store is failing or a replica is
// disconnected/lagging), /debug/traces (retained trace list and per-trace
// span trees), and /debug/pprof. All logging is structured (log/slog);
// -log-level debug adds the per-request audit records and proof-search
// spans, and queries at or above -trace-slow log at warn regardless of
// level.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"drbac/internal/cluster"
	"drbac/internal/core"
	"drbac/internal/keyfile"
	"drbac/internal/logstore"
	"drbac/internal/obs"
	"drbac/internal/remote"
	"drbac/internal/replica"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "drbacd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("drbacd", flag.ContinueOnError)
	keyPath := fs.String("key", "", "wallet operator identity file")
	listen := fs.String("listen", "127.0.0.1:7100", "listen address")
	load := fs.String("load", "", "directory of delegation bundles to publish at startup")
	state := fs.String("state", "", "wallet state path: restored at startup, persisted on every publication and revocation")
	storeKind := fs.String("store", "json", `durable format for -state: "json" (single-file snapshot, rewritten per mutation) or "log" (segmented append-only log with compaction; a legacy json file at the path is migrated in place once, keeping a .bak)`)
	replicaOf := fs.String("replica-of", "", "run as a read-only follower replica of the wallet at host:port[,host:port...] (§9); mutations are refused")
	shardOf := fs.String("shard-of", "", "serve one shard of a wallet cluster: path of the shard map file (JSON, re-read on mtime change); requires -shard-id")
	shardID := fs.Int("shard-id", -1, "this member's shard ID in the -shard-of map")
	gatewayOf := fs.String("gateway-of", "", "serve a routing gateway over the whole wallet cluster in the given shard map file (JSON, re-read on mtime change); excludes -shard-of, -replica-of, -load, -state")
	strict := fs.Bool("strict", false, "require attribute-assignment rights")
	sweep := fs.Duration("sweep", 10*time.Second, "expiry/staleness sweep interval")
	httpAddr := fs.String("http", "", "debug listen address serving /metrics, /healthz, /readyz, /debug/traces, /debug/pprof (empty disables)")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := fs.Bool("log-json", false, "write logs as JSON instead of text")
	traceRetain := fs.Int("trace-retain", 256, "completed traces retained for /debug/traces; 0 disables the trace collector")
	traceSlow := fs.Duration("trace-slow", 250*time.Millisecond, "duration at or above which a trace or query counts as slow: slow traces are always retained and slow queries logged at warn")
	traceSample := fs.Float64("trace-sample", 1.0, "head-sampling rate (0..1) for traces that are neither slow nor erred; slow and erred traces are retained regardless")
	sloQueryP99 := fs.Duration("slo-query-p99", 5*time.Millisecond, "query-latency SLO threshold backing the drbac_slo_query_* gauges and burn counters; 0 disables")
	sloPublishP99 := fs.Duration("slo-publish-p99", 25*time.Millisecond, "publish-latency SLO threshold backing the drbac_slo_publish_* gauges and burn counters; 0 disables")
	readyMaxLag := fs.Duration("ready-max-lag", 30*time.Second, "replica lag at which /readyz starts reporting 503; 0 disables the lag check")
	wireMode := fs.String("wire", "auto", `wire codec policy for every connection this daemon serves or dials: "auto" negotiates per peer (binary preferred, JSON fallback for old peers), "json" speaks only JSON, "binary" requires the binary codec and refuses peers without it`)
	dhtOn := fs.Bool("dht", false, "participate in the coalition DHT and gossip membership: serve dht-*/gossip-* requests, announce this wallet's provider record, and gate peer pools on gossip liveness verdicts")
	bootstrap := fs.String("bootstrap", "", "comma-separated seed wallet addresses to join the DHT and gossip ring through (requires -dht; empty starts a lone seed)")
	announce := fs.String("announce", "", "comma-separated addresses published in this wallet's DHT provider record (requires -dht; default: the -listen address)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keyPath == "" {
		return fmt.Errorf("-key is required")
	}
	if !*dhtOn && (*bootstrap != "" || *announce != "") {
		return fmt.Errorf("-bootstrap and -announce require -dht")
	}
	if *shardOf != "" && *shardID < 0 {
		return fmt.Errorf("-shard-of requires -shard-id")
	}
	if *shardOf == "" && *shardID >= 0 {
		return fmt.Errorf("-shard-id requires -shard-of")
	}
	if *gatewayOf != "" && (*shardOf != "" || *replicaOf != "" || *load != "" || *state != "") {
		return fmt.Errorf("-gateway-of cannot be combined with -shard-of, -replica-of, -load, or -state")
	}
	wirePol, err := transport.ParseWireMode(*wireMode)
	if err != nil {
		return err
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, level, *logJSON)
	o := obs.New(logger, obs.NewRegistry())
	if *traceRetain > 0 {
		o.SetCollector(obs.NewCollector(o.Registry(), obs.CollectorConfig{
			Capacity:      *traceRetain,
			SlowThreshold: *traceSlow,
			SampleRate:    *traceSample,
		}))
	}
	// SLOs must exist before the wallet is built: the wallet resolves them
	// once at construction.
	if *sloQueryP99 > 0 {
		o.RegisterSLO(obs.NewSLO(o.Registry(), "query", *sloQueryP99, 0, 0))
	}
	if *sloPublishP99 > 0 {
		o.RegisterSLO(obs.NewSLO(o.Registry(), "publish", *sloPublishP99, 0, 0))
	}
	build := obs.RegisterBuildInfo(o.Registry())

	f, err := keyfile.ReadIdentity(*keyPath)
	if err != nil {
		return err
	}
	owner, err := f.Identity()
	if err != nil {
		return err
	}

	var (
		w           *wallet.Wallet
		closeStore  = func() {}
		storeHealth func() error
		gw          *cluster.Wallet
		shardWatch  *shardMapWatcher
		rt          *dhtRuntime
	)
	if *dhtOn {
		// Before the cluster pieces: a gateway resolves dht:<fingerprint>
		// shard members through this node.
		rt, err = startDHT(owner, *listen, *announce, *bootstrap, wirePol, o)
		if err != nil {
			return err
		}
		defer rt.close()
		logger.Info("dht member", "id", rt.node.Self().ID.Short(),
			"announce", rt.addrs, "bootstrap", rt.seeds)
	}
	if *gatewayOf == "" {
		w, closeStore, storeHealth, err = openWallet(owner, *state, *storeKind, *strict, o)
		if err != nil {
			return err
		}
		if *state != "" {
			logger.Info("state restored",
				"delegations", w.Len(), "revocations", len(w.RevokedIDs()),
				"seq", w.Seq(), "path", *state, "store", *storeKind)
		}
		if *load != "" {
			n, err := loadBundles(w, *load)
			if err != nil {
				return err
			}
			logger.Info("bundles loaded", "delegations", n, "dir", *load)
		}
	}
	defer closeStore()

	role := "primary"
	var follower *replica.Follower
	if *replicaOf != "" {
		role = "replica"
		follower, err = replica.Start(replica.Config{
			Local:  w,
			Addrs:  remote.SplitAddrs(*replicaOf),
			Dialer: &transport.TCPDialer{Identity: owner, Codec: wirePol},
			Obs:    o,
		})
		if err != nil {
			return err
		}
		defer follower.Close()
		logger.Info("replicating", "upstream", *replicaOf)
	}

	var node *cluster.Node
	if *shardOf != "" {
		node, shardWatch, err = newShardMember(*shardOf, *shardID, o)
		if err != nil {
			return err
		}
		role = fmt.Sprintf("shard-%d", *shardID)
		logger.Info("cluster member",
			"shard", *shardID, "epoch", node.Current().Epoch,
			"shards", len(node.Current().Shards), "map", *shardOf)
	}
	if *gatewayOf != "" {
		gw, shardWatch, err = newClusterGateway(*gatewayOf, owner, wirePol, o, rt)
		if err != nil {
			return err
		}
		defer gw.Close()
		if rt != nil {
			rt.addVerdictPool(gw.Router().Peers())
		}
		role = "gateway"
		// The gateway's local wallet is its TTL-coherent assembly cache:
		// it backs /healthz and the staleness sweeps below.
		w = gw.Local()
		logger.Info("cluster gateway",
			"epoch", gw.Router().Epoch(), "shards", len(gw.Router().Current().Shards),
			"map", *gatewayOf)
	}

	ln, err := transport.ListenTCP(*listen, owner)
	if err != nil {
		return err
	}
	ln.Codec = wirePol
	var (
		guard remote.ClusterGuard
		svc   wallet.Service = w
	)
	if node != nil {
		guard = node
	}
	if gw != nil {
		guard, svc = gw.Guard(), gw
	}
	opts := remote.Options{
		Obs:      o,
		Role:     role,
		ReadOnly: follower != nil,
		Cluster:  guard,
	}
	if rt != nil {
		opts.DHT = rt.node
		opts.Gossip = rt.gossip
		opts.DHTStats = rt.stats
	}
	srv := remote.ServeOptions(svc, ln, opts)
	defer srv.Close()
	if rt != nil {
		// Join and announce once the server answers dht-* requests, so
		// peers contacted during bootstrap can immediately query us back.
		rt.join()
		if shardWatch != nil {
			shardWatch.onAdopt = rt.reannounce
		}
	}
	logger.Info("serving",
		"owner", owner.Name(), "id", owner.ID().Short(), "addr", ln.Addr(), "role", role,
		"version", build["version"], "go", build["goversion"])

	if *httpAddr != "" {
		dln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		hsrv := &http.Server{Handler: newDebugMux(o, w, role, follower, storeHealth, *readyMaxLag, shardWatch)}
		defer hsrv.Close()
		go func() {
			if err := hsrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "error", err)
			}
		}()
		logger.Info("debug listener", "addr", dln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ticker := time.NewTicker(*sweep)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if n := w.SweepExpired(); n > 0 {
				logger.Info("swept expired delegations", "count", n)
			}
			if n := w.SweepStaleCache(); n > 0 {
				logger.Info("swept stale cached delegations", "count", n)
			}
			if shardWatch != nil {
				shardWatch.poll(o)
			}
		case <-ctx.Done():
			logger.Info("shutting down")
			return nil
		}
	}
}

// health is the /healthz payload: liveness plus the wallet-state summary an
// operator checks first. Replication fields appear only on a replica.
type health struct {
	Status      string `json:"status"`
	Role        string `json:"role"`
	Delegations int    `json:"delegations"`
	Revoked     int    `json:"revoked"`
	TTLTracked  int    `json:"ttlTracked"`
	Watches     int    `json:"watches"`
	Seq         uint64 `json:"seq"`
	AppliedSeq  uint64 `json:"appliedSeq,omitempty"`
	LagSeconds  int64  `json:"lagSeconds,omitempty"`
	Resyncs     int64  `json:"resyncs,omitempty"`
	Upstream    string `json:"upstream,omitempty"`
	Connected   *bool  `json:"upstreamConnected,omitempty"`
}

// readiness is the /readyz payload. Liveness (/healthz) answers "is the
// process up"; readiness answers "should this wallet be taking traffic" —
// no while the durable store has failed an fsync or compaction, or while a
// replica is disconnected from its upstream or lagging beyond maxLag.
type readiness struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
}

// notReady explains why the daemon should be out of rotation, or "" when it
// is ready. storeHealth is nil for stores without failure detection;
// shardWatch is nil outside a cluster.
func notReady(follower *replica.Follower, storeHealth func() error, maxLag time.Duration, shardWatch *shardMapWatcher) string {
	if storeHealth != nil {
		if err := storeHealth(); err != nil {
			return "store: " + err.Error()
		}
	}
	if follower != nil {
		rs := follower.Status()
		if !rs.Connected {
			return "replica: upstream disconnected"
		}
		if maxLag > 0 && rs.LagSeconds > int64(maxLag/time.Second) {
			return fmt.Sprintf("replica: lag %ds exceeds %s", rs.LagSeconds, maxLag)
		}
	}
	if reason := shardWatch.notReady(); reason != "" {
		return reason
	}
	return ""
}

// newDebugMux builds the -http endpoint set: Prometheus metrics, a JSON
// health summary, the readiness probe, retained traces, and the standard
// pprof handlers. follower is nil on a primary; storeHealth is nil when the
// store has no failure detection (memory, json).
func newDebugMux(o *obs.Obs, w *wallet.Wallet, role string, follower *replica.Follower, storeHealth func() error, readyMaxLag time.Duration, shardWatch *shardMapWatcher) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MetricsHandler(o.Registry()))
	mux.HandleFunc("/readyz", func(rw http.ResponseWriter, _ *http.Request) {
		reason := notReady(follower, storeHealth, readyMaxLag, shardWatch)
		rw.Header().Set("Content-Type", "application/json")
		if reason != "" {
			rw.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(rw).Encode(readiness{Ready: reason == "", Reason: reason})
	})
	if col := o.TraceCollector(); col != nil {
		th := obs.TracesHandler(col)
		mux.Handle("/debug/traces", th)
		mux.Handle("/debug/traces/", th)
	}
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		st := w.Stats()
		h := health{
			Status:      "ok",
			Role:        role,
			Delegations: st.Delegations,
			Revoked:     st.Revoked,
			TTLTracked:  st.TTLTracked,
			Watches:     st.Watches,
			Seq:         w.Seq(),
		}
		if follower != nil {
			rs := follower.Status()
			h.AppliedSeq = rs.AppliedSeq
			h.LagSeconds = rs.LagSeconds
			h.Resyncs = rs.Resyncs
			h.Upstream = rs.Upstream
			h.Connected = &rs.Connected
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(h)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// openWallet builds the daemon's wallet. With a state path the wallet sits
// on a durable store: every publication and revocation persists before the
// request is acknowledged, and a restarted daemon replays the store —
// including the revocation set, so previously revoked credentials stay
// refused — at construction. storeKind selects the format: "json" is the
// legacy single-file snapshot, "log" the segmented append-only log. The
// returned closer flushes and releases the store; call it at shutdown. The
// returned health func reports store failures (fsync, compaction) for the
// readiness probe; nil when the store kind has no failure detection.
func openWallet(owner *core.Identity, statePath, storeKind string, strict bool, o *obs.Obs) (*wallet.Wallet, func(), func() error, error) {
	cfg := wallet.Config{Owner: owner, StrictAttributes: strict, Obs: o}
	closer := func() {}
	var health func() error
	switch storeKind {
	case "json":
		if statePath != "" {
			st, err := wallet.OpenFileStore(statePath)
			if err != nil {
				return nil, nil, nil, err
			}
			cfg.Store = st
		}
	case "log":
		if statePath == "" {
			return nil, nil, nil, fmt.Errorf("-store=log requires -state")
		}
		st, err := openLogStore(statePath, o)
		if err != nil {
			return nil, nil, nil, err
		}
		cfg.Store = st
		closer = func() { _ = st.Close() }
		health = st.Health
	default:
		return nil, nil, nil, fmt.Errorf("unknown -store %q (want json or log)", storeKind)
	}
	return wallet.New(cfg), closer, health, nil
}

// openLogStore opens the segmented log store at path, migrating a legacy
// JSON state file found there first. Migration is crash-safe and idempotent:
// the log is seeded in a .migrating directory, the original file moves to
// .bak, and the directory renames into place — reopening after a crash in
// any window either redoes the seeding from the still-present file or
// finishes the final rename.
func openLogStore(path string, o *obs.Obs) (*logstore.Store, error) {
	fi, err := os.Stat(path)
	switch {
	case err == nil && !fi.IsDir():
		if err := migrateJSONToLog(path); err != nil {
			return nil, fmt.Errorf("migrating %s to a log store: %w", path, err)
		}
	case os.IsNotExist(err):
		// A crash after the file moved to .bak but before the seeded
		// directory renamed into place leaves only the .migrating dir:
		// seeding completed (the rename only happens after a clean close),
		// so finishing the rename completes the migration.
		if mfi, merr := os.Stat(path + ".migrating"); merr == nil && mfi.IsDir() {
			if err := os.Rename(path+".migrating", path); err != nil {
				return nil, fmt.Errorf("finishing interrupted migration of %s: %w", path, err)
			}
			if err := wallet.SyncDir(filepath.Dir(path)); err != nil {
				return nil, err
			}
		}
	case err != nil:
		return nil, err
	}
	return logstore.Open(path, logstore.Options{Obs: o})
}

// migrateJSONToLog seeds a fresh log store from a legacy JSON state file
// and swaps it into the file's place, leaving the original as .bak.
func migrateJSONToLog(path string) error {
	fst, err := wallet.OpenFileStore(path)
	if err != nil {
		return err
	}
	tmp := path + ".migrating"
	// A half-seeded directory from an earlier crash is redone from scratch;
	// the original file is still authoritative.
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	ls, err := logstore.Open(tmp, logstore.Options{CompactInterval: -1})
	if err != nil {
		return err
	}
	revs := fst.Revocations()
	sort.Slice(revs, func(i, j int) bool { return revs[i].ID < revs[j].ID })
	bundles := fst.Bundles()
	sort.Slice(bundles, func(i, j int) bool {
		return bundles[i].Delegation.ID() < bundles[j].Delegation.ID()
	})
	// Seed seqs end exactly at the old store's high-water mark (or the
	// mutation count if it never recorded one), so wallet changelog numbers
	// never regress across the migration.
	seq := uint64(0)
	if n := uint64(len(revs) + len(bundles)); fst.Seq() > n {
		seq = fst.Seq() - n
	}
	for _, r := range revs {
		seq++
		if _, err := ls.AddRevocation(seq, r.ID, r.At); err != nil {
			_ = ls.Close()
			return err
		}
	}
	for _, b := range bundles {
		seq++
		if err := ls.PutDelegation(seq, b.Delegation, b.Support); err != nil {
			_ = ls.Close()
			return err
		}
	}
	if err := ls.Close(); err != nil {
		return err
	}
	if err := os.Rename(path, path+".bak"); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return wallet.SyncDir(filepath.Dir(path))
}

func loadBundles(w *wallet.Wallet, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	n := 0
	for _, name := range names {
		b, err := keyfile.ReadBundle(filepath.Join(dir, name))
		if err != nil {
			return n, fmt.Errorf("load %s: %w", name, err)
		}
		if err := w.Publish(b.Delegation, b.Support...); err != nil {
			return n, fmt.Errorf("publish %s: %w", name, err)
		}
		n++
	}
	return n, nil
}
