// Shard-cluster membership for drbacd: -shard-of names a shard map file
// and -shard-id this member's shard. The daemon then serves under a
// cluster guard (epoch advertised on connect, mis-routed or stale-epoch
// mutations refused with redirects) and re-reads the map file whenever its
// mtime changes, adopting newer epochs live — resharding is a map-file
// rollout, not a restart.
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"drbac/internal/cluster"
	"drbac/internal/core"
	"drbac/internal/obs"
	"drbac/internal/transport"
)

// mapAdopter is the piece of cluster state a map-file rollout feeds:
// both a member's *cluster.Node and a gateway's *cluster.Router adopt
// strictly-newer maps and expose the one they serve under.
type mapAdopter interface {
	Adopt(*cluster.Map) bool
	Current() *cluster.Map
}

// shardMapWatcher tracks the on-disk shard map backing a cluster
// participant. Its poll runs on the daemon's sweep ticker; its health
// feeds /readyz — a participant whose map file is unreadable,
// unparsable, or ahead of what it could adopt (e.g. the new map dropped
// this member's shard) should be out of rotation until an operator
// intervenes.
type shardMapWatcher struct {
	path    string
	adopter mapAdopter
	// onAdopt, if set, fires after a newer map is adopted from the file —
	// the DHT re-announce hook (set once before the sweep loop starts).
	onAdopt func()

	mu        sync.Mutex
	mtime     time.Time
	fileEpoch uint64 // epoch last seen in the file, adopted or not
	err       error  // last read/parse failure, nil when healthy
}

// readMapFile loads and validates the shard map at path.
func readMapFile(flagName, path string) (*cluster.Map, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", flagName, err)
	}
	m, err := cluster.ParseMap(raw)
	if err != nil {
		return nil, fmt.Errorf("%s %s: %w", flagName, path, err)
	}
	return m, nil
}

// newMapWatcher builds a watcher over path feeding the given adopter.
func newMapWatcher(path string, epoch uint64, adopter mapAdopter) *shardMapWatcher {
	sw := &shardMapWatcher{path: path, adopter: adopter, fileEpoch: epoch}
	if fi, err := os.Stat(path); err == nil {
		sw.mtime = fi.ModTime()
	}
	return sw
}

// newShardMember loads the map file and builds the member's cluster node
// plus its file watcher.
func newShardMember(path string, id int, o *obs.Obs) (*cluster.Node, *shardMapWatcher, error) {
	m, err := readMapFile("-shard-of", path)
	if err != nil {
		return nil, nil, err
	}
	node, err := cluster.NewNode(id, m, o)
	if err != nil {
		return nil, nil, err
	}
	return node, newMapWatcher(path, m.Epoch, node), nil
}

// newClusterGateway loads the map file and builds a routing gateway over
// the cluster plus its file watcher. The gateway dials shards as the
// daemon's own identity.
func newClusterGateway(path string, owner *core.Identity, wirePol transport.CodecPolicy, o *obs.Obs, rt *dhtRuntime) (*cluster.Wallet, *shardMapWatcher, error) {
	m, err := readMapFile("-gateway-of", path)
	if err != nil {
		return nil, nil, err
	}
	cfg := cluster.WalletConfig{
		Map:      m,
		Dialer:   &transport.TCPDialer{Identity: owner, Codec: wirePol},
		Identity: owner,
		Obs:      o,
	}
	if rt != nil {
		// dht:<fingerprint> replica-group members resolve through the
		// daemon's DHT node. Guarded so a nil runtime never becomes a
		// typed-nil interface.
		cfg.Directory = rt.node
	}
	gw, err := cluster.NewWallet(cfg)
	if err != nil {
		return nil, nil, err
	}
	return gw, newMapWatcher(path, m.Epoch, gw.Router()), nil
}

// poll re-reads the map file when its mtime moved and adopts strictly
// newer maps. Failures are recorded for the readiness probe, not fatal:
// the member keeps serving under its installed map.
func (sw *shardMapWatcher) poll(o *obs.Obs) {
	fi, err := os.Stat(sw.path)
	if err != nil {
		sw.setErr(fmt.Errorf("stat: %w", err))
		return
	}
	sw.mu.Lock()
	unchanged := fi.ModTime().Equal(sw.mtime)
	sw.mu.Unlock()
	if unchanged {
		return
	}
	raw, err := os.ReadFile(sw.path)
	if err != nil {
		sw.setErr(fmt.Errorf("read: %w", err))
		return
	}
	m, err := cluster.ParseMap(raw)
	if err != nil {
		sw.setErr(fmt.Errorf("parse: %w", err))
		return
	}
	adopted := sw.adopter.Adopt(m)
	sw.mu.Lock()
	sw.mtime = fi.ModTime()
	sw.fileEpoch = m.Epoch
	sw.err = nil
	sw.mu.Unlock()
	if adopted {
		o.Log().Info("shard map adopted from file",
			"path", sw.path, "epoch", m.Epoch, "shards", len(m.Shards))
		if sw.onAdopt != nil {
			sw.onAdopt()
		}
	}
}

func (sw *shardMapWatcher) setErr(err error) {
	sw.mu.Lock()
	sw.err = err
	sw.mu.Unlock()
}

// notReady reports why this member should be out of rotation, "" when
// healthy: the map file failed its last poll, or the file carries an epoch
// the member could not adopt (a rolled-out map that no longer names this
// shard), leaving it serving stale routing state.
func (sw *shardMapWatcher) notReady() string {
	if sw == nil {
		return ""
	}
	sw.mu.Lock()
	err, fileEpoch := sw.err, sw.fileEpoch
	sw.mu.Unlock()
	if err != nil {
		return fmt.Sprintf("cluster: shard map %s unfetchable: %v", sw.path, err)
	}
	if cur := sw.adopter.Current().Epoch; fileEpoch > cur {
		return fmt.Sprintf("cluster: shard map stale: file epoch %d not adopted (serving %d)", fileEpoch, cur)
	}
	return ""
}
