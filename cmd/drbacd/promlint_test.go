package main

import (
	"bytes"
	"testing"
	"time"

	"drbac/internal/logstore"
	"drbac/internal/obs"
	"drbac/internal/wallet"
)

// TestPrometheusExpositionLints assembles a registry the way the daemon
// does — wallet instruments, a durable log store, the trace collector,
// both SLOs, and the build-info gauge — and runs the exposition through
// the promlint-style checker: every metric must carry HELP and TYPE,
// names and labels must be legal, counters must end in _total, and
// histogram bucket ladders must be ascending, cumulative, and +Inf-capped.
// This is the golden gate keeping new instruments scrape-clean.
func TestPrometheusExpositionLints(t *testing.T) {
	reg := obs.NewRegistry()
	o := obs.New(nil, reg)
	o.SetCollector(obs.NewCollector(reg, obs.CollectorConfig{SampleRate: 1}))
	o.RegisterSLO(obs.NewSLO(reg, "query", 5*time.Millisecond, 0, 0))
	o.RegisterSLO(obs.NewSLO(reg, "publish", 25*time.Millisecond, 0, 0))
	obs.RegisterBuildInfo(reg)

	st, err := logstore.Open(t.TempDir(), logstore.Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	w := wallet.New(wallet.Config{Obs: o, Store: st})

	// Drive a little traffic so counters, the latency histogram, the SLO
	// windows, and the trace collector all have samples.
	if _, err := w.QueryDirect(wallet.Query{}); err == nil {
		t.Fatal("empty query should fail")
	}
	sp := o.StartSpan(obs.NewTraceID(), "discovery")
	sp.End()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, problem := range obs.LintExposition(buf.Bytes()) {
		t.Errorf("lint: %s", problem)
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", buf.String())
	}
}
