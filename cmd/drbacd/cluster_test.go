package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"drbac/internal/cluster"
	"drbac/internal/obs"
	"drbac/internal/wallet"
)

// writeMap writes m to path with a distinct mtime so the watcher's
// mtime-change detection always fires.
func writeMap(t *testing.T, path string, m *cluster.Map, stamp time.Time) {
	t.Helper()
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, stamp, stamp); err != nil {
		t.Fatal(err)
	}
}

// TestShardMapWatcher drives the -shard-of lifecycle: a member comes up
// ready, adopts a newer map rolled out to the file, reports a map it
// cannot adopt (its shard dropped) as not-ready, and reports a corrupted
// file as unfetchable — all through /readyz.
func TestShardMapWatcher(t *testing.T) {
	o := obs.New(nil, obs.NewRegistry())
	w := wallet.New(wallet.Config{Obs: o})
	path := filepath.Join(t.TempDir(), "map.json")
	base := time.Now().Add(-time.Hour)

	m1, err := cluster.Uniform([][]string{{"s0"}, {"s1"}})
	if err != nil {
		t.Fatal(err)
	}
	writeMap(t, path, m1, base)

	node, sw, err := newShardMember(path, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newDebugMux(o, w, "shard-0", nil, nil, 0, sw))
	defer srv.Close()

	ready := func() (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		var r struct {
			Ready  bool   `json:"ready"`
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatalf("readyz body %q: %v", body, err)
		}
		return resp.StatusCode, r.Reason
	}

	if code, reason := ready(); code != http.StatusOK || reason != "" {
		t.Fatalf("fresh member: /readyz = %d %q, want ready", code, reason)
	}

	// Roll out a split: epoch 2, shard 0 still a member -> adopted live.
	m2, err := m1.Split(1, 2, []string{"s2"})
	if err != nil {
		t.Fatal(err)
	}
	writeMap(t, path, m2, base.Add(time.Minute))
	sw.poll(o)
	if got := node.Current().Epoch; got != m2.Epoch {
		t.Fatalf("node epoch %d after rollout, want %d", got, m2.Epoch)
	}
	if code, reason := ready(); code != http.StatusOK || reason != "" {
		t.Fatalf("after adoption: /readyz = %d %q, want ready", code, reason)
	}

	// Roll out a map that drops shard 0: the member cannot adopt it and
	// must take itself out of rotation.
	m3 := &cluster.Map{Epoch: m2.Epoch + 1}
	for _, s := range m2.Shards {
		if s.ID == 0 {
			continue
		}
		m3.Shards = append(m3.Shards, s)
	}
	for _, p := range m2.Points {
		if p.Shard == 0 {
			p.Shard = 1
		}
		m3.Points = append(m3.Points, p)
	}
	writeMap(t, path, m3, base.Add(2*time.Minute))
	sw.poll(o)
	if got := node.Current().Epoch; got != m2.Epoch {
		t.Fatalf("node adopted a map dropping its shard (epoch %d)", got)
	}
	if code, reason := ready(); code != http.StatusServiceUnavailable || !strings.Contains(reason, "stale") {
		t.Fatalf("dropped shard: /readyz = %d %q, want 503 with a stale reason", code, reason)
	}

	// A corrupted file is unfetchable; the member keeps serving its
	// installed map but reports not-ready.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, base.Add(3*time.Minute), base.Add(3*time.Minute)); err != nil {
		t.Fatal(err)
	}
	sw.poll(o)
	if code, reason := ready(); code != http.StatusServiceUnavailable || !strings.Contains(reason, "unfetchable") {
		t.Fatalf("corrupt file: /readyz = %d %q, want 503 unfetchable", code, reason)
	}

	// The rollout is fixed with a valid adoptable map: ready again.
	m4 := m2.Clone()
	m4.Epoch = m3.Epoch + 1
	writeMap(t, path, m4, base.Add(4*time.Minute))
	sw.poll(o)
	if got := node.Current().Epoch; got != m4.Epoch {
		t.Fatalf("node epoch %d after repair, want %d", got, m4.Epoch)
	}
	if code, reason := ready(); code != http.StatusOK || reason != "" {
		t.Fatalf("after repair: /readyz = %d %q, want ready", code, reason)
	}
}

func TestRunShardFlagValidation(t *testing.T) {
	dir := t.TempDir()
	key := filepath.Join(dir, "k.key")
	if err := run([]string{"-key", key, "-shard-of", filepath.Join(dir, "map.json")}); err == nil ||
		!strings.Contains(err.Error(), "-shard-id") {
		t.Errorf("run without -shard-id: %v, want the pairing error", err)
	}
	if err := run([]string{"-key", key, "-shard-id", "0"}); err == nil ||
		!strings.Contains(err.Error(), "-shard-of") {
		t.Errorf("run without -shard-of: %v, want the pairing error", err)
	}
	mapPath := filepath.Join(dir, "map.json")
	for _, extra := range [][]string{
		{"-shard-of", mapPath, "-shard-id", "0"},
		{"-replica-of", "127.0.0.1:1"},
		{"-load", dir},
		{"-state", filepath.Join(dir, "state.json")},
	} {
		args := append([]string{"-key", key, "-gateway-of", mapPath}, extra...)
		if err := run(args); err == nil || !strings.Contains(err.Error(), "-gateway-of") {
			t.Errorf("run %v: %v, want the -gateway-of conflict error", extra, err)
		}
	}
}
