// Decentralized discovery for drbacd: -dht starts a Kademlia-style DHT
// participant plus a SWIM gossip member alongside the wallet server. The
// daemon announces its operator entity's signed provider record into the
// DHT (on startup and again whenever a shard-map rollout is adopted), so
// other wallets can find this one knowing only its entity fingerprint and
// one bootstrap seed — no static address book. Gossip liveness verdicts
// fan into every peer pool's circuit gates, so a member the cluster agrees
// is dead fails fast everywhere until it refutes.
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"drbac/internal/core"
	"drbac/internal/dht"
	"drbac/internal/gossip"
	"drbac/internal/obs"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/transport"
	"drbac/internal/wire"
)

// bootstrapTimeout bounds the startup join against the seed nodes; the
// daemon serves regardless of the outcome (a lone first node has nobody
// to join) and the republish loop keeps retrying the announcement.
const bootstrapTimeout = 30 * time.Second

// dhtRuntime bundles the daemon's DHT node, gossip member, their private
// connection pools, and the verdict fan-out.
type dhtRuntime struct {
	node   *dht.Node
	gossip *gossip.Node
	// dhtPeers backs the DHT node's outbound RPCs; it receives gossip
	// verdicts. gossipPeers backs the gossip probes and must NOT — probes
	// to a down-marked member are how recovery is observed.
	dhtPeers    *peer.Manager
	gossipPeers *peer.Manager

	owner *core.Identity
	addrs []string // addresses announced in the provider record
	seeds []string
	o     *obs.Obs

	mu    sync.Mutex
	pools []*peer.Manager // verdict fan-out targets
}

// startDHT builds and starts the DHT and gossip nodes. announce is the
// comma-separated address list to publish ("" means the listen address);
// bootstrap the seed list ("" starts a lone seed node).
func startDHT(owner *core.Identity, listen, announce, bootstrap string, wirePol transport.CodecPolicy, o *obs.Obs) (*dhtRuntime, error) {
	addrs := remote.SplitAddrs(announce)
	if len(addrs) == 0 {
		addrs = []string{listen}
	}
	rt := &dhtRuntime{
		owner:       owner,
		addrs:       addrs,
		seeds:       remote.SplitAddrs(bootstrap),
		o:           o,
		dhtPeers:    peer.NewManager(peer.Config{Dialer: &transport.TCPDialer{Identity: owner, Codec: wirePol}, Obs: o}),
		gossipPeers: peer.NewManager(peer.Config{Dialer: &transport.TCPDialer{Identity: owner, Codec: wirePol}, Obs: o}),
	}
	node, err := dht.NewNode(dht.Config{
		Identity: owner,
		Addr:     addrs[0],
		Peers:    rt.dhtPeers,
		Obs:      o,
	})
	if err != nil {
		rt.closePools()
		return nil, err
	}
	rt.node = node
	g, err := gossip.NewNode(gossip.Config{
		SelfAddr:  addrs[0],
		Peers:     rt.gossipPeers,
		Obs:       o,
		OnVerdict: rt.verdict,
	})
	if err != nil {
		rt.closePools()
		return nil, err
	}
	rt.gossip = g
	rt.addVerdictPool(rt.dhtPeers)
	node.Start()
	g.Start()
	return rt, nil
}

// join runs the startup bootstrap in the background: learn the seeds,
// populate buckets via a self-lookup, join the gossip ring, and publish
// the operator entity's provider record. Failures are logged, not fatal —
// the first node of a coalition has no one to join.
func (rt *dhtRuntime) join() {
	rt.gossip.Join(rt.seeds)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), bootstrapTimeout)
		defer cancel()
		if len(rt.seeds) > 0 {
			if err := rt.node.Bootstrap(ctx, rt.seeds); err != nil {
				rt.o.Log().Warn("dht bootstrap failed; serving as lone seed", "error", err)
			}
		}
		rt.announce(ctx)
	}()
}

// announce (re)publishes the operator entity's provider record. The DHT
// node bumps the record seq each call, so re-announcing after a map-epoch
// change supersedes the previous record everywhere.
func (rt *dhtRuntime) announce(ctx context.Context) {
	if err := rt.node.Announce(ctx, rt.owner, rt.addrs); err != nil {
		rt.o.Log().Warn("dht announce failed; republish loop will retry",
			"entity", rt.owner.ID().Short(), "error", err)
		return
	}
	rt.o.Log().Info("dht announced",
		"entity", rt.owner.ID().Short(), "addrs", fmt.Sprintf("%v", rt.addrs))
}

// reannounce is the map-adoption hook: a rollout often accompanies member
// address changes, so the served-entity record is refreshed immediately
// instead of waiting out the republish interval.
func (rt *dhtRuntime) reannounce() {
	ctx, cancel := context.WithTimeout(context.Background(), bootstrapTimeout)
	defer cancel()
	rt.announce(ctx)
}

// addVerdictPool registers a peer pool to receive gossip liveness
// verdicts via SetRemoteDown.
func (rt *dhtRuntime) addVerdictPool(p *peer.Manager) {
	if p == nil {
		return
	}
	rt.mu.Lock()
	rt.pools = append(rt.pools, p)
	rt.mu.Unlock()
}

// verdict fans a gossip liveness transition into every registered pool:
// dead gates the member's address (fast-fail, no dial), alive clears the
// gate and any locally tripped breaker.
func (rt *dhtRuntime) verdict(addr string, alive bool) {
	rt.mu.Lock()
	pools := append([]*peer.Manager(nil), rt.pools...)
	rt.mu.Unlock()
	for _, p := range pools {
		p.SetRemoteDown(addr, !alive)
	}
}

// stats merges the DHT node's counters with the gossip membership counts
// into the stats response's dht section.
func (rt *dhtRuntime) stats() *wire.DHTStats {
	s := rt.node.Stats()
	s.GossipAlive, s.GossipSuspect, s.GossipDead = rt.gossip.Counts()
	return s
}

func (rt *dhtRuntime) closePools() {
	rt.dhtPeers.Close()
	rt.gossipPeers.Close()
}

// close tears the runtime down: loops first, then the pools.
func (rt *dhtRuntime) close() {
	rt.gossip.Close()
	rt.node.Close()
	rt.closePools()
}
