package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/keyfile"
	"drbac/internal/wallet"
)

func writeBundles(t *testing.T, dir string) (first, second core.DelegationID) {
	t.Helper()
	org, err := core.NewIdentity("Org")
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewIdentity("User")
	if err != nil {
		t.Fatal(err)
	}
	entDir := core.NewDirectory(org.Entity(), user.Entity())
	issue := func(text string) *core.Delegation {
		parsed, err := core.ParseDelegation(text, entDir)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.Issue(org, parsed.Template, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1 := issue("[User -> Org.member] Org")
	d2 := issue("[Org.member -> Org.reader] Org")
	if err := keyfile.WriteBundle(filepath.Join(dir, "01_member.json"), keyfile.Bundle{Delegation: d1}); err != nil {
		t.Fatal(err)
	}
	if err := keyfile.WriteBundle(filepath.Join(dir, "02_reader.json"), keyfile.Bundle{Delegation: d2}); err != nil {
		t.Fatal(err)
	}
	// A non-JSON file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a bundle"), 0o644); err != nil {
		t.Fatal(err)
	}
	return d1.ID(), d2.ID()
}

func TestLoadBundles(t *testing.T) {
	dir := t.TempDir()
	id1, id2 := writeBundles(t, dir)
	w := wallet.New(wallet.Config{})
	n, err := loadBundles(w, dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d, want 2", n)
	}
	if !w.Contains(id1) || !w.Contains(id2) {
		t.Fatal("bundles not published")
	}
}

func TestLoadBundlesErrors(t *testing.T) {
	w := wallet.New(wallet.Config{})
	if _, err := loadBundles(w, filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing directory accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBundles(w, dir); err == nil {
		t.Fatal("malformed bundle accepted")
	}
}

// TestStateSurvivesRestart simulates a daemon restart: a wallet opened on a
// -state file must serve the same proofs afterwards and keep refusing
// delegations revoked before the restart, with no explicit save step.
func TestStateSurvivesRestart(t *testing.T) {
	org, err := core.NewIdentity("Org")
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewIdentity("User")
	if err != nil {
		t.Fatal(err)
	}
	entDir := core.NewDirectory(org.Entity(), user.Entity())
	issue := func(text string) *core.Delegation {
		parsed, err := core.ParseDelegation(text, entDir)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.Issue(org, parsed.Template, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	member := issue("[User -> Org.member] Org")
	reader := issue("[Org.member -> Org.reader] Org")
	doomed := issue("[User -> Org.writer] Org")

	statePath := filepath.Join(t.TempDir(), "state.json")
	w1, close1, _, err := openWallet(org, statePath, "json", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*core.Delegation{member, reader, doomed} {
		if err := w1.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Revoke(doomed.ID(), org.ID()); err != nil {
		t.Fatal(err)
	}
	// No shutdown hook: the store persists every mutation synchronously.
	close1()

	w2, close2, _, err := openWallet(org, statePath, "json", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer close2()
	q := wallet.Query{
		Subject: core.SubjectEntity(user.ID()),
		Object:  core.Role{Namespace: org.ID(), Name: "reader"}, // via Org.member
	}
	if _, err := w2.QueryDirect(q); err != nil {
		t.Fatalf("restarted wallet cannot re-prove chain: %v", err)
	}
	if !w2.IsRevoked(doomed.ID()) {
		t.Fatal("revocation forgotten across restart")
	}
	if w2.Contains(doomed.ID()) {
		t.Fatal("revoked delegation restored into the graph")
	}
	if err := w2.Publish(doomed); err == nil {
		t.Fatal("restarted wallet accepted a previously revoked delegation")
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing -key accepted")
	}
	if err := run([]string{"-key", filepath.Join(t.TempDir(), "missing.key")}); err == nil {
		t.Fatal("missing key file accepted")
	}
}

// TestMigrateJSONToLogStore drives the one-shot -store=log migration: a
// daemon's legacy JSON state opens as a log store with identical wallet
// state and a non-regressing changelog seq, the original file survives as
// .bak, and re-opening (migration already done) is a no-op — including
// after the two crash windows the rename scheme leaves.
func TestMigrateJSONToLogStore(t *testing.T) {
	org, err := core.NewIdentity("Org")
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewIdentity("User")
	if err != nil {
		t.Fatal(err)
	}
	entDir := core.NewDirectory(org.Entity(), user.Entity())
	issue := func(text string) *core.Delegation {
		parsed, err := core.ParseDelegation(text, entDir)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.Issue(org, parsed.Template, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	member := issue("[User -> Org.member] Org")
	doomed := issue("[User -> Org.writer] Org")

	statePath := filepath.Join(t.TempDir(), "state.json")
	w1, close1, _, err := openWallet(org, statePath, "json", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*core.Delegation{member, doomed} {
		if err := w1.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Revoke(doomed.ID(), org.ID()); err != nil {
		t.Fatal(err)
	}
	seqBefore := w1.Seq()
	close1()

	// First -store=log open migrates.
	w2, close2, _, err := openWallet(org, statePath, "log", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(statePath); err != nil || !fi.IsDir() {
		t.Fatalf("state path is not a log directory after migration (err=%v)", err)
	}
	if _, err := os.Stat(statePath + ".bak"); err != nil {
		t.Fatalf("original JSON state not kept as .bak: %v", err)
	}
	if !w2.Contains(member.ID()) || !w2.IsRevoked(doomed.ID()) {
		t.Fatal("migrated wallet lost state")
	}
	if w2.Seq() < seqBefore {
		t.Fatalf("migration regressed the changelog seq: %d -> %d", seqBefore, w2.Seq())
	}
	if err := w2.Publish(issue("[User -> Org.reader] Org")); err != nil {
		t.Fatal(err)
	}
	postSeq := w2.Seq()
	close2()

	// Second open: already a log store, no migration, state intact.
	w3, close3, _, err := openWallet(org, statePath, "log", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w3.Len() != 2 || !w3.IsRevoked(doomed.ID()) || w3.Seq() != postSeq {
		t.Fatalf("re-opened log store diverged: len=%d seq=%d want len=2 seq=%d",
			w3.Len(), w3.Seq(), postSeq)
	}
	close3()

	// Crash window A: a half-seeded .migrating directory next to a JSON
	// file. The file is authoritative; migration redoes the seeding.
	pathA := filepath.Join(t.TempDir(), "state.json")
	wA, closeA, _, err := openWallet(org, pathA, "json", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	memberA := issue("[User -> Org.a] Org")
	if err := wA.Publish(memberA); err != nil {
		t.Fatal(err)
	}
	closeA()
	if err := os.MkdirAll(pathA+".migrating", 0o700); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pathA+".migrating", "00000001.seg"), []byte("torn"), 0o600); err != nil {
		t.Fatal(err)
	}
	wA2, closeA2, _, err := openWallet(org, pathA, "log", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !wA2.Contains(memberA.ID()) {
		t.Fatal("half-seeded migration leftover corrupted the redo")
	}
	closeA2()

	// Crash window B: the rename to .bak happened but the seeded directory
	// never renamed into place. Opening finishes the rename.
	pathB := filepath.Join(t.TempDir(), "state.json")
	wB, closeB, _, err := openWallet(org, pathB, "json", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	memberB := issue("[User -> Org.b] Org")
	if err := wB.Publish(memberB); err != nil {
		t.Fatal(err)
	}
	closeB()
	if err := migrateJSONToLog(pathB); err != nil {
		t.Fatal(err)
	}
	// Undo the final rename to reconstruct the window.
	if err := os.Rename(pathB, pathB+".migrating"); err != nil {
		t.Fatal(err)
	}
	wB2, closeB2, _, err := openWallet(org, pathB, "log", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !wB2.Contains(memberB.ID()) {
		t.Fatal("interrupted-rename recovery lost state")
	}
	closeB2()
}

// TestOpenWalletStoreKindValidation pins the -store flag contract.
func TestOpenWalletStoreKindValidation(t *testing.T) {
	org, err := core.NewIdentity("Org")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := openWallet(org, "", "log", false, nil); err == nil {
		t.Fatal("-store=log without -state accepted")
	}
	if _, _, _, err := openWallet(org, "", "bolt", false, nil); err == nil {
		t.Fatal("unknown store kind accepted")
	}
	w, closer, _, err := openWallet(org, "", "json", false, nil)
	if err != nil || w == nil {
		t.Fatalf("stateless json wallet: %v", err)
	}
	closer()
}
