package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/keyfile"
	"drbac/internal/wallet"
)

func writeBundles(t *testing.T, dir string) (first, second core.DelegationID) {
	t.Helper()
	org, err := core.NewIdentity("Org")
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewIdentity("User")
	if err != nil {
		t.Fatal(err)
	}
	entDir := core.NewDirectory(org.Entity(), user.Entity())
	issue := func(text string) *core.Delegation {
		parsed, err := core.ParseDelegation(text, entDir)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.Issue(org, parsed.Template, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1 := issue("[User -> Org.member] Org")
	d2 := issue("[Org.member -> Org.reader] Org")
	if err := keyfile.WriteBundle(filepath.Join(dir, "01_member.json"), keyfile.Bundle{Delegation: d1}); err != nil {
		t.Fatal(err)
	}
	if err := keyfile.WriteBundle(filepath.Join(dir, "02_reader.json"), keyfile.Bundle{Delegation: d2}); err != nil {
		t.Fatal(err)
	}
	// A non-JSON file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a bundle"), 0o644); err != nil {
		t.Fatal(err)
	}
	return d1.ID(), d2.ID()
}

func TestLoadBundles(t *testing.T) {
	dir := t.TempDir()
	id1, id2 := writeBundles(t, dir)
	w := wallet.New(wallet.Config{})
	n, err := loadBundles(w, dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d, want 2", n)
	}
	if !w.Contains(id1) || !w.Contains(id2) {
		t.Fatal("bundles not published")
	}
}

func TestLoadBundlesErrors(t *testing.T) {
	w := wallet.New(wallet.Config{})
	if _, err := loadBundles(w, filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing directory accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBundles(w, dir); err == nil {
		t.Fatal("malformed bundle accepted")
	}
}

// TestStateSurvivesRestart simulates a daemon restart: a wallet opened on a
// -state file must serve the same proofs afterwards and keep refusing
// delegations revoked before the restart, with no explicit save step.
func TestStateSurvivesRestart(t *testing.T) {
	org, err := core.NewIdentity("Org")
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewIdentity("User")
	if err != nil {
		t.Fatal(err)
	}
	entDir := core.NewDirectory(org.Entity(), user.Entity())
	issue := func(text string) *core.Delegation {
		parsed, err := core.ParseDelegation(text, entDir)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.Issue(org, parsed.Template, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	member := issue("[User -> Org.member] Org")
	reader := issue("[Org.member -> Org.reader] Org")
	doomed := issue("[User -> Org.writer] Org")

	statePath := filepath.Join(t.TempDir(), "state.json")
	w1, err := openWallet(org, statePath, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*core.Delegation{member, reader, doomed} {
		if err := w1.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Revoke(doomed.ID(), org.ID()); err != nil {
		t.Fatal(err)
	}
	// No shutdown hook: the store persists every mutation synchronously.

	w2, err := openWallet(org, statePath, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := wallet.Query{
		Subject: core.SubjectEntity(user.ID()),
		Object:  core.Role{Namespace: org.ID(), Name: "reader"}, // via Org.member
	}
	if _, err := w2.QueryDirect(q); err != nil {
		t.Fatalf("restarted wallet cannot re-prove chain: %v", err)
	}
	if !w2.IsRevoked(doomed.ID()) {
		t.Fatal("revocation forgotten across restart")
	}
	if w2.Contains(doomed.ID()) {
		t.Fatal("revoked delegation restored into the graph")
	}
	if err := w2.Publish(doomed); err == nil {
		t.Fatal("restarted wallet accepted a previously revoked delegation")
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing -key accepted")
	}
	if err := run([]string{"-key", filepath.Join(t.TempDir(), "missing.key")}); err == nil {
		t.Fatal("missing key file accepted")
	}
}
