// Command benchdiff is the repo's benchmark-regression gate. It has two
// modes sharing one JSON format:
//
//	go test -run '^$' -bench . -benchmem -count 3 . | benchdiff -emit -out BENCH_2026-08-06.json
//	benchdiff -baseline BENCH_baseline.json -current BENCH_2026-08-06.json -threshold 25
//
// Emit mode parses standard `go test -bench` output and writes one record
// per benchmark. Repeated samples of the same benchmark (from -count N)
// collapse to the minimum ns/op: the fastest run is the least polluted by
// scheduler noise, so minima compare far more stably across CI hosts than
// means. B/op and allocs/op are deterministic per build and taken from the
// same fastest sample.
//
// Compare mode diffs two emitted files and fails (exit 1) when any
// benchmark present in both regresses more than -threshold percent in
// ns/op, or — with -alloc-threshold — more than that many percent in
// allocs/op. Allocation counts are deterministic per build, so the alloc
// gate can be far tighter than the timing gate; benchmarks whose baseline
// reports no allocation data (no -benchmem columns) are exempt from it.
// Benchmarks that appear only on one side are reported but never fail the
// gate, so adding or retiring benchmarks doesn't break CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Result is one benchmark's figures, named without the -GOMAXPROCS suffix.
type Result struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// File is the emitted JSON document.
type File struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	emit := fs.Bool("emit", false, "parse `go test -bench` output on stdin and write JSON")
	out := fs.String("out", "", "emit mode: output file (default stdout)")
	baseline := fs.String("baseline", "", "compare mode: baseline JSON file")
	current := fs.String("current", "", "compare mode: current JSON file")
	threshold := fs.Float64("threshold", 25, "compare mode: max tolerated ns/op regression, percent")
	allocThreshold := fs.Float64("alloc-threshold", -1, "compare mode: max tolerated allocs/op regression, percent (negative disables the alloc gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *emit:
		return runEmit(stdin, stdout, *out)
	case *baseline != "" && *current != "":
		return runCompare(stdout, *baseline, *current, *threshold, *allocThreshold)
	default:
		return fmt.Errorf("need -emit, or -baseline and -current")
	}
}

// benchLine matches e.g.
//
//	BenchmarkProofValidate/warm-8  12345  987.6 ns/op  120 B/op  3 allocs/op
//
// The -benchmem columns are optional: benchmarks that set bytes reported
// via b.SetBytes interleave an MB/s column, which the tail pattern skips.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9]+) B/op\s+([0-9]+) allocs/op)?`)

func parseBench(r io.Reader) ([]Result, error) {
	best := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		res := Result{Name: m[1], NsOp: ns}
		if m[3] != "" {
			res.BOp, _ = strconv.ParseInt(m[3], 10, 64)
			res.AllocsOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if prev, ok := best[res.Name]; !ok || res.NsOp < prev.NsOp {
			best[res.Name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(best))
	for _, r := range best {
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results, nil
}

func runEmit(stdin io.Reader, stdout io.Writer, outPath string) error {
	results, err := parseBench(stdin)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(File{Benchmarks: results}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

func readFile(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]Result, len(f.Benchmarks))
	for _, r := range f.Benchmarks {
		byName[r.Name] = r
	}
	return byName, nil
}

func runCompare(stdout io.Writer, basePath, curPath string, threshold, allocThreshold float64) error {
	base, err := readFile(basePath)
	if err != nil {
		return err
	}
	cur, err := readFile(curPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(stdout, "only in baseline: %s\n", name)
			continue
		}
		delta := 0.0
		if b.NsOp > 0 {
			delta = (c.NsOp - b.NsOp) / b.NsOp * 100
		}
		status := "ok"
		if delta > threshold {
			status = "REGRESSION"
			regressions = append(regressions, name)
		}
		fmt.Fprintf(stdout, "%-60s %12.1f -> %12.1f ns/op  %+7.1f%%  %s\n",
			name, b.NsOp, c.NsOp, delta, status)
		// The alloc gate only applies where the baseline recorded -benchmem
		// data: a zero-alloc baseline gates on any new allocation at all.
		if allocThreshold >= 0 && (b.AllocsOp > 0 || b.BOp > 0) {
			allocDelta := 0.0
			switch {
			case b.AllocsOp > 0:
				allocDelta = float64(c.AllocsOp-b.AllocsOp) / float64(b.AllocsOp) * 100
			case c.AllocsOp > 0:
				allocDelta = 100
			}
			allocStatus := "ok"
			if allocDelta > allocThreshold {
				allocStatus = "ALLOC REGRESSION"
				regressions = append(regressions, name+" (allocs)")
			}
			fmt.Fprintf(stdout, "%-60s %12d -> %12d allocs/op %+6.1f%%  %s\n",
				"", b.AllocsOp, c.AllocsOp, allocDelta, allocStatus)
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Fprintf(stdout, "new benchmark (not gated): %s\n", name)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond the gate: %v",
			len(regressions), regressions)
	}
	if allocThreshold >= 0 {
		fmt.Fprintf(stdout, "no ns/op regression beyond %.0f%% or allocs/op regression beyond %.0f%% across %d benchmark(s)\n",
			threshold, allocThreshold, len(names))
	} else {
		fmt.Fprintf(stdout, "no ns/op regression beyond %.0f%% across %d benchmark(s)\n",
			threshold, len(names))
	}
	return nil
}
