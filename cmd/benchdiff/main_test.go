package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: drbac
cpu: Fake CPU @ 3.00GHz
BenchmarkProofValidateColdWarm/cold-8         	     100	   52000 ns/op	    4096 B/op	      64 allocs/op
BenchmarkProofValidateColdWarm/cold-8         	     100	   50000 ns/op	    4096 B/op	      64 allocs/op
BenchmarkProofValidateColdWarm/warm-8         	   10000	    9000.5 ns/op	     512 B/op	       8 allocs/op
BenchmarkTable3CaseStudyProof-8               	    5000	   31000 ns/op
PASS
ok  	drbac	4.2s
`

func TestParseBenchCollapsesToMinimum(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	cold, ok := byName["BenchmarkProofValidateColdWarm/cold"]
	if !ok {
		t.Fatalf("cold benchmark missing from %v", results)
	}
	if cold.NsOp != 50000 {
		t.Errorf("cold ns/op = %v, want the 50000 minimum of two samples", cold.NsOp)
	}
	if cold.BOp != 4096 || cold.AllocsOp != 64 {
		t.Errorf("cold mem figures = %d B/op, %d allocs/op", cold.BOp, cold.AllocsOp)
	}
	warm := byName["BenchmarkProofValidateColdWarm/warm"]
	if warm.NsOp != 9000.5 {
		t.Errorf("warm ns/op = %v", warm.NsOp)
	}
	// A benchmark without -benchmem columns still parses.
	if _, ok := byName["BenchmarkTable3CaseStudyProof"]; !ok {
		t.Error("memless benchmark line not parsed")
	}
	// Names are sorted for stable diffs of committed baselines.
	for i := 1; i < len(results); i++ {
		if results[i-1].Name >= results[i].Name {
			t.Errorf("results not sorted: %q before %q", results[i-1].Name, results[i].Name)
		}
	}
}

func writeBenchJSON(t *testing.T, dir, name, ns string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	content := `{"benchmarks":[{"name":"BenchmarkX","ns_op":` + ns + `,"b_op":10,"allocs_op":1}]}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeBenchJSON(t, dir, "base.json", "1000")
	cur := writeBenchJSON(t, dir, "cur.json", "1200")
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-threshold", "25"}, nil, &out); err != nil {
		t.Fatalf("20%% slowdown under a 25%% threshold failed: %v\n%s", err, out.String())
	}
}

func TestCompareBeyondThresholdFails(t *testing.T) {
	dir := t.TempDir()
	base := writeBenchJSON(t, dir, "base.json", "1000")
	cur := writeBenchJSON(t, dir, "cur.json", "1300")
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur, "-threshold", "25"}, nil, &out)
	if err == nil {
		t.Fatalf("30%% slowdown under a 25%% threshold passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("report does not flag the regression:\n%s", out.String())
	}
}

func writeAllocJSON(t *testing.T, dir, name string, ns float64, allocs int64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	content := fmt.Sprintf(
		`{"benchmarks":[{"name":"BenchmarkX","ns_op":%g,"b_op":64,"allocs_op":%d}]}`, ns, allocs)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareAllocGateFailsOnAllocGrowth(t *testing.T) {
	dir := t.TempDir()
	base := writeAllocJSON(t, dir, "base.json", 1000, 10)
	cur := writeAllocJSON(t, dir, "cur.json", 1000, 12) // +20% allocs, ns flat
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur,
		"-threshold", "25", "-alloc-threshold", "10"}, nil, &out)
	if err == nil {
		t.Fatalf("20%% alloc growth under a 10%% alloc threshold passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ALLOC REGRESSION") {
		t.Errorf("report does not flag the alloc regression:\n%s", out.String())
	}
}

func TestCompareAllocGateWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeAllocJSON(t, dir, "base.json", 1000, 10)
	cur := writeAllocJSON(t, dir, "cur.json", 1000, 11) // +10%, at the limit
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur,
		"-threshold", "25", "-alloc-threshold", "10"}, nil, &out); err != nil {
		t.Fatalf("10%% alloc growth at a 10%% alloc threshold failed: %v\n%s", err, out.String())
	}
}

func TestCompareAllocGateDisabledByDefault(t *testing.T) {
	dir := t.TempDir()
	base := writeAllocJSON(t, dir, "base.json", 1000, 10)
	cur := writeAllocJSON(t, dir, "cur.json", 1000, 100)
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, nil, &out); err != nil {
		t.Fatalf("alloc gate fired without -alloc-threshold: %v\n%s", err, out.String())
	}
}

func TestCompareAllocGateSkipsMemlessBaselines(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cur := filepath.Join(dir, "cur.json")
	// Baseline predates -benchmem: no alloc data, so the gate must not fire
	// even though the current file reports allocations.
	if err := os.WriteFile(base, []byte(
		`{"benchmarks":[{"name":"BenchmarkX","ns_op":1000}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur, []byte(
		`{"benchmarks":[{"name":"BenchmarkX","ns_op":1000,"b_op":64,"allocs_op":50}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur,
		"-alloc-threshold", "0"}, nil, &out); err != nil {
		t.Fatalf("alloc gate fired on a memless baseline: %v\n%s", err, out.String())
	}
}

func TestCompareIgnoresAddedAndRemovedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cur := filepath.Join(dir, "cur.json")
	if err := os.WriteFile(base, []byte(
		`{"benchmarks":[{"name":"BenchmarkOld","ns_op":100}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur, []byte(
		`{"benchmarks":[{"name":"BenchmarkNew","ns_op":99999}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, nil, &out); err != nil {
		t.Fatalf("disjoint benchmark sets failed the gate: %v\n%s", err, out.String())
	}
	for _, want := range []string{"only in baseline: BenchmarkOld", "new benchmark (not gated): BenchmarkNew"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestEmitRoundTripsThroughCompare(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := run([]string{"-emit", "-out", path},
		strings.NewReader(sampleBenchOutput), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// A file compared against itself never regresses.
	var out bytes.Buffer
	if err := run([]string{"-baseline", path, "-current", path}, nil, &out); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, out.String())
	}
}

func TestEmitRejectsEmptyInput(t *testing.T) {
	err := run([]string{"-emit"}, strings.NewReader("no benchmarks here\n"), &bytes.Buffer{})
	if err == nil {
		t.Fatal("emit with no benchmark lines succeeded")
	}
}
