package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"drbac/internal/keyfile"
)

// TestExportFingerprint pins the -fingerprint output: exactly the full
// lowercase-hex entity fingerprint, the form dht:<fingerprint> shard-map
// entries take.
func TestExportFingerprint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "id.key")
	f, err := keyfile.GenerateIdentity("Exportee")
	if err != nil {
		t.Fatal(err)
	}
	if err := keyfile.WriteIdentity(path, f); err != nil {
		t.Fatal(err)
	}
	id, err := f.Identity()
	if err != nil {
		t.Fatal(err)
	}

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := cmdExport([]string{"-key", path, "-fingerprint"})
	os.Stdout = old
	w.Close()
	out := make([]byte, 256)
	n, _ := r.Read(out)
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	got := strings.TrimSpace(string(out[:n]))
	if got != string(id.ID()) {
		t.Errorf("export -fingerprint printed %q, want %q", got, id.ID())
	}
	if len(got) != 64 {
		t.Errorf("fingerprint length = %d, want 64 hex digits", len(got))
	}
}
