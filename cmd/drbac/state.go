package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"drbac/internal/logstore"
	"drbac/internal/wallet"
)

// stateInfo is the offline summary of a daemon -state path, shared by the
// text and -json renderings.
type stateInfo struct {
	Path        string                 `json:"path"`
	Store       string                 `json:"store"` // "json" or "log"
	Seq         uint64                 `json:"seq"`
	Bundles     int                    `json:"bundles"`
	Revocations int                    `json:"revocations"`
	Segments    []logstore.SegmentInfo `json:"segments,omitempty"`
}

// inspectState classifies the state path by shape: a directory is a
// segmented log store, a regular file is the legacy JSON store.
func inspectState(path string) (stateInfo, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return stateInfo{}, err
	}
	if fi.IsDir() {
		info, err := logstore.Inspect(path)
		if err != nil {
			return stateInfo{}, err
		}
		return stateInfo{
			Path:        path,
			Store:       "log",
			Seq:         info.Seq,
			Bundles:     info.Bundles,
			Revocations: info.Revocations,
			Segments:    info.Segments,
		}, nil
	}
	st, err := wallet.OpenFileStore(path)
	if err != nil {
		return stateInfo{}, err
	}
	return stateInfo{
		Path:        path,
		Store:       "json",
		Seq:         st.Seq(),
		Bundles:     len(st.Bundles()),
		Revocations: len(st.Revocations()),
	}, nil
}

// cmdState inspects a daemon state path without starting a daemon: store
// kind, bundle and revocation counts, the seq high-water mark, and for log
// stores the per-segment layout. It only reads the path, so it is safe to
// run against a live daemon's state.
func cmdState(args []string) error {
	fs := flag.NewFlagSet("state", flag.ContinueOnError)
	statePath := fs.String("state", "", "daemon state path (JSON file or log directory)")
	asJSON := fs.Bool("json", false, "emit the summary as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := *statePath
	if path == "" && fs.NArg() == 1 {
		path = fs.Arg(0)
	}
	if path == "" {
		return errors.New("state: -state (or a positional path) is required")
	}
	info, err := inspectState(path)
	if err != nil {
		return err
	}
	if *asJSON {
		data, err := json.MarshalIndent(info, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	renderState(os.Stdout, info)
	return nil
}

// renderState pretty-prints the summary; log stores get a per-segment table.
func renderState(w io.Writer, info stateInfo) {
	fmt.Fprintf(w, "state %s\n", info.Path)
	fmt.Fprintf(w, "  store        %s\n", info.Store)
	fmt.Fprintf(w, "  seq          %d\n", info.Seq)
	fmt.Fprintf(w, "  bundles      %d\n", info.Bundles)
	fmt.Fprintf(w, "  revocations  %d\n", info.Revocations)
	if len(info.Segments) == 0 {
		return
	}
	fmt.Fprintf(w, "segments\n")
	for _, seg := range info.Segments {
		fmt.Fprintf(w, "  %-14s %-9s records=%-5d bytes=%-8d seq=%d..%d",
			seg.Name, seg.Status, seg.Records, seg.Bytes, seg.MinSeq, seg.MaxSeq)
		if seg.TornBytes > 0 {
			fmt.Fprintf(w, " torn=%d", seg.TornBytes)
		}
		fmt.Fprintln(w)
	}
}
