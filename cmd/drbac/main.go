// Command drbac is the dRBAC command-line tool: key generation, delegation
// issuance in the paper's concrete syntax, local verification, and remote
// wallet operations (publish, query, revoke) over the authenticated TCP
// transport.
//
// Usage:
//
//	drbac keygen   -name Alice -out alice.key
//	drbac export   -key alice.key            # directory entry JSON on stdout
//	drbac delegate -key bigisp.key -entities dir.json \
//	               -text "[Maria -> BigISP.member] BigISP" -out member.json
//	drbac show     -entities dir.json -in member.json
//	drbac verify   -entities dir.json -in member.json [-strict]
//	drbac publish  -key maria.key -addr host:port -in member.json [-ttl 30]
//	drbac query    -key maria.key -addr host:port -entities dir.json \
//	               -subject Maria -object BigISP.member
//	drbac revoke   -key bigisp.key -addr host:port -id <delegation-id>
//	drbac monitor  -key maria.key -addr host:port -id <delegation-id> [-count 1] [-wait 30s]
//	drbac stats    -key maria.key -addr host:port [-json]
//	drbac state    -state /var/lib/drbac/state [-json]   # offline, no daemon
//
// Every network command takes -timeout (default 30s), bounding the whole
// operation — dial, handshake, and RPCs — via context cancellation. The
// DRBAC_TIMEOUT environment variable supplies the default when the flag is
// not given. Ctrl-C cancels an in-flight operation immediately.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"drbac/internal/core"
	"drbac/internal/keyfile"
	"drbac/internal/obs"
	"drbac/internal/remote"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wallet"
	"drbac/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "drbac:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: drbac <keygen|export|delegate|show|verify|publish|query|revoke|monitor|stats|trace|state|shardmap> [flags]")
	}
	// Ctrl-C / SIGTERM cancels whatever network operation is in flight.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "keygen":
		return cmdKeygen(rest)
	case "export":
		return cmdExport(rest)
	case "delegate":
		return cmdDelegate(rest)
	case "show":
		return cmdShow(rest)
	case "verify":
		return cmdVerify(rest)
	case "publish":
		return cmdPublish(ctx, rest)
	case "query":
		return cmdQuery(ctx, rest)
	case "revoke":
		return cmdRevoke(ctx, rest)
	case "monitor":
		return cmdMonitor(ctx, rest)
	case "stats":
		return cmdStats(ctx, rest)
	case "trace":
		return cmdTrace(ctx, rest)
	case "state":
		return cmdState(rest)
	case "shardmap":
		return cmdShardmap(rest)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// defaultTimeout bounds a network command when neither -timeout nor
// DRBAC_TIMEOUT says otherwise.
const defaultTimeout = 30 * time.Second

// timeoutFlag registers -timeout on fs. Resolution order: an explicitly
// given -timeout wins, then the DRBAC_TIMEOUT environment variable, then
// the 30s default. Call resolveTimeout after fs.Parse.
func timeoutFlag(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", defaultTimeout,
		"overall deadline for the operation (falls back to $DRBAC_TIMEOUT)")
}

func resolveTimeout(fs *flag.FlagSet, flagVal time.Duration) (time.Duration, error) {
	explicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "timeout" {
			explicit = true
		}
	})
	if explicit {
		return flagVal, nil
	}
	if env := os.Getenv("DRBAC_TIMEOUT"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			return 0, fmt.Errorf("invalid DRBAC_TIMEOUT %q: %w", env, err)
		}
		return d, nil
	}
	return flagVal, nil
}

// opContext applies the resolved timeout to the command's base context.
// A zero or negative timeout means no deadline (the signal context still
// cancels on Ctrl-C).
func opContext(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

func cmdKeygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ContinueOnError)
	name := fs.String("name", "", "entity display name")
	out := fs.String("out", "", "identity file to write")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *out == "" {
		return errors.New("keygen: -name and -out are required")
	}
	f, err := keyfile.GenerateIdentity(*name)
	if err != nil {
		return err
	}
	if err := keyfile.WriteIdentity(*out, f); err != nil {
		return err
	}
	id, err := f.Identity()
	if err != nil {
		return err
	}
	fmt.Printf("created %s: %s (fingerprint %s)\n", *out, id.Name(), id.ID().Short())
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	key := fs.String("key", "", "identity file")
	fp := fs.Bool("fingerprint", false, "print only the full hex entity fingerprint (e.g. for dht:<fingerprint> shard-map entries)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	id, err := loadIdentity(*key)
	if err != nil {
		return err
	}
	if *fp {
		fmt.Println(id.ID())
		return nil
	}
	entry := keyfile.DirectoryEntry{Name: id.Name(), Key: id.Entity().Key}
	data, err := json.MarshalIndent(entry, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func cmdDelegate(args []string) error {
	fs := flag.NewFlagSet("delegate", flag.ContinueOnError)
	key := fs.String("key", "", "issuer identity file")
	entities := fs.String("entities", "", "directory file")
	text := fs.String("text", "", "delegation in paper syntax")
	out := fs.String("out", "", "bundle file to write")
	supportFiles := fs.String("support", "", "comma-free list: repeat -support is unsupported; pass one bundle path whose proof supports this delegation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *key == "" || *entities == "" || *text == "" || *out == "" {
		return errors.New("delegate: -key, -entities, -text, -out are required")
	}
	issuer, err := loadIdentity(*key)
	if err != nil {
		return err
	}
	dir, _, err := keyfile.ReadDirectory(*entities)
	if err != nil {
		return err
	}
	parsed, err := core.ParseDelegation(*text, dir)
	if err != nil {
		return err
	}
	if parsed.Issuer.ID() != issuer.ID() {
		return fmt.Errorf("delegation names issuer %s but key file is %s", parsed.Issuer.Name, issuer.Name())
	}
	d, err := core.Issue(issuer, parsed.Template, time.Now())
	if err != nil {
		return err
	}
	bundle := keyfile.Bundle{Delegation: d}
	if *supportFiles != "" {
		sb, err := keyfile.ReadBundle(*supportFiles)
		if err != nil {
			return err
		}
		p, err := core.NewProof(core.ProofStep{Delegation: sb.Delegation, Support: sb.Support})
		if err != nil {
			return err
		}
		bundle.Support = append(bundle.Support, p)
	}
	if err := keyfile.WriteBundle(*out, bundle); err != nil {
		return err
	}
	fmt.Printf("issued %s (%s)\n", d.ID().Short(), d.Kind())
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	entities := fs.String("entities", "", "directory file (optional)")
	in := fs.String("in", "", "bundle file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("show: -in is required")
	}
	var dir core.Directory
	if *entities != "" {
		d, _, err := keyfile.ReadDirectory(*entities)
		if err != nil {
			return err
		}
		dir = d
	}
	b, err := keyfile.ReadBundle(*in)
	if err != nil {
		return err
	}
	pr := core.Printer{Dir: dir}
	fmt.Printf("id:   %s\nkind: %s\ntext: %s\n", b.Delegation.ID(), b.Delegation.Kind(), pr.Delegation(b.Delegation))
	for i, sp := range b.Support {
		fmt.Printf("support %d: %s => %s\n", i+1, pr.Subject(sp.Subject), pr.Role(sp.Object))
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	in := fs.String("in", "", "bundle file")
	strict := fs.Bool("strict", false, "require attribute-assignment rights")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("verify: -in is required")
	}
	b, err := keyfile.ReadBundle(*in)
	if err != nil {
		return err
	}
	// A throwaway wallet performs full publication-grade validation.
	w := wallet.New(wallet.Config{StrictAttributes: *strict})
	if err := w.Publish(b.Delegation, b.Support...); err != nil {
		return fmt.Errorf("INVALID: %w", err)
	}
	fmt.Printf("OK: %s verifies (%s)\n", b.Delegation.ID().Short(), b.Delegation.Kind())
	return nil
}

func cmdPublish(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("publish", flag.ContinueOnError)
	key := fs.String("key", "", "identity file for transport auth")
	addr := fs.String("addr", "", "wallet address host:port[,host:port...] (first reachable wins)")
	in := fs.String("in", "", "bundle file")
	ttl := fs.Int("ttl", 0, "cache TTL seconds (0 = permanent)")
	timeout := timeoutFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *key == "" || *addr == "" || *in == "" {
		return errors.New("publish: -key, -addr, -in are required")
	}
	d, err := resolveTimeout(fs, *timeout)
	if err != nil {
		return err
	}
	ctx, cancel := opContext(ctx, d)
	defer cancel()
	b, err := keyfile.ReadBundle(*in)
	if err != nil {
		return err
	}
	at, err := withRedirects(ctx, *key, *addr, func(client *remote.Client) error {
		return client.Publish(ctx, b.Delegation, b.Support, time.Duration(*ttl)*time.Second)
	})
	if err != nil {
		return err
	}
	fmt.Printf("published %s to %s\n", b.Delegation.ID().Short(), at)
	return nil
}

func cmdQuery(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	key := fs.String("key", "", "identity file for transport auth")
	addr := fs.String("addr", "", "wallet address host:port[,host:port...] (first reachable wins)")
	entities := fs.String("entities", "", "directory file")
	subject := fs.String("subject", "", "entity name or role")
	object := fs.String("object", "", "role")
	timeout := timeoutFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *key == "" || *addr == "" || *entities == "" || *subject == "" || *object == "" {
		return errors.New("query: -key, -addr, -entities, -subject, -object are required")
	}
	d, err := resolveTimeout(fs, *timeout)
	if err != nil {
		return err
	}
	ctx, cancel := opContext(ctx, d)
	defer cancel()
	dir, _, err := keyfile.ReadDirectory(*entities)
	if err != nil {
		return err
	}
	subj, err := core.ParseSubject(*subject, dir)
	if err != nil {
		return err
	}
	obj, err := core.ParseRole(*object, dir)
	if err != nil {
		return err
	}
	client, err := dial(ctx, *key, *addr)
	if err != nil {
		return err
	}
	defer client.Close()
	// Mint a trace ID so the serving wallet can retain its spans for this
	// query — a slow or failed one is then fetchable via `drbac trace`.
	proof, err := client.QueryDirectTraced(ctx, obs.TraceContext{TraceID: obs.NewTraceID()}, subj, obj, nil, 0)
	if err != nil {
		return err
	}
	if err := proof.Validate(core.ValidateOptions{At: time.Now()}); err != nil {
		return fmt.Errorf("returned proof does not validate: %w", err)
	}
	fmt.Print(core.Printer{Dir: dir}.Proof(proof))
	return nil
}

func cmdRevoke(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("revoke", flag.ContinueOnError)
	key := fs.String("key", "", "issuer identity file")
	addr := fs.String("addr", "", "wallet address host:port[,host:port...] (first reachable wins)")
	id := fs.String("id", "", "delegation ID")
	timeout := timeoutFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *key == "" || *addr == "" || *id == "" {
		return errors.New("revoke: -key, -addr, -id are required")
	}
	d, err := resolveTimeout(fs, *timeout)
	if err != nil {
		return err
	}
	ctx, cancel := opContext(ctx, d)
	defer cancel()
	at, err := withRedirects(ctx, *key, *addr, func(client *remote.Client) error {
		return client.Revoke(ctx, core.DelegationID(*id))
	})
	if err != nil {
		return err
	}
	fmt.Printf("revoked %s at %s\n", core.DelegationID(*id).Short(), at)
	return nil
}

func loadIdentity(path string) (*core.Identity, error) {
	if path == "" {
		return nil, errors.New("missing -key")
	}
	f, err := keyfile.ReadIdentity(path)
	if err != nil {
		return nil, err
	}
	return f.Identity()
}

// withRedirects dials addr and runs op against it, following shard-cluster
// redirects: a mis-routed mutation is refused with the owning shard's
// replica group, so the CLI re-dials there and retries — self-healing
// against a stale shard address without any cluster configuration. Hops
// are bounded; each redirect is reported on stderr. Returns the address
// group the operation finally ran against.
func withRedirects(ctx context.Context, keyPath, addr string, op func(*remote.Client) error) (string, error) {
	client, err := dial(ctx, keyPath, addr)
	if err != nil {
		return addr, err
	}
	defer func() { client.Close() }()
	for hop := 0; ; hop++ {
		err = op(client)
		var rd *remote.RedirectError
		if err == nil || !errors.As(err, &rd) || hop >= 3 || len(rd.Redirect.Addrs) == 0 {
			return addr, err
		}
		next := strings.Join(rd.Redirect.Addrs, ",")
		fmt.Fprintf(os.Stderr, "redirected to shard %d (%s)\n", rd.Redirect.Shard, next)
		client.Close()
		client, err = dial(ctx, keyPath, next)
		if err != nil {
			return next, err
		}
		addr = next
	}
}

// dial connects to the first reachable address in addr, which may be a
// comma-separated replica group ("primary,replica1,…"): reads served by any
// member are as trustworthy as the primary's, since every proof carries its
// own signatures (§9).
func dial(ctx context.Context, keyPath, addr string) (*remote.Client, error) {
	id, err := loadIdentity(keyPath)
	if err != nil {
		return nil, err
	}
	c, chosen, err := remote.DialAny(ctx, &transport.TCPDialer{Identity: id}, remote.SplitAddrs(addr))
	if err != nil {
		return nil, err
	}
	if chosen != addr {
		fmt.Fprintf(os.Stderr, "connected to %s\n", chosen)
	}
	return c, nil
}

// cmdStats fetches a remote wallet's state summary and metrics snapshot
// over the wire protocol's stats message and renders it.
func cmdStats(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	key := fs.String("key", "", "identity file for transport auth")
	addr := fs.String("addr", "", "wallet address host:port[,host:port...] (first reachable wins)")
	asJSON := fs.Bool("json", false, "emit the raw snapshot as JSON")
	timeout := timeoutFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *key == "" || *addr == "" {
		return errors.New("stats: -key and -addr are required")
	}
	d, err := resolveTimeout(fs, *timeout)
	if err != nil {
		return err
	}
	ctx, cancel := opContext(ctx, d)
	defer cancel()
	client, err := dial(ctx, *key, *addr)
	if err != nil {
		return err
	}
	defer client.Close()
	resp, err := client.Stats(ctx)
	if err != nil {
		return err
	}
	if *asJSON {
		data, err := json.MarshalIndent(resp, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	renderStats(os.Stdout, *addr, resp)
	return nil
}

// renderStats pretty-prints a stats response: the wallet summary first, then
// every metric the remote registry holds, names sorted.
func renderStats(w io.Writer, addr string, resp wire.StatsResp) {
	fmt.Fprintf(w, "wallet %s\n", addr)
	if resp.Role != "" {
		fmt.Fprintf(w, "  role         %s\n", resp.Role)
	}
	fmt.Fprintf(w, "  seq          %d\n", resp.Seq)
	fmt.Fprintf(w, "  delegations  %d\n", resp.Delegations)
	fmt.Fprintf(w, "  revoked      %d\n", resp.Revoked)
	fmt.Fprintf(w, "  ttl-tracked  %d\n", resp.TTLTracked)
	fmt.Fprintf(w, "  watches      %d\n", resp.Watches)
	fmt.Fprintf(w, "proof cache\n")
	fmt.Fprintf(w, "  hits         %d\n", resp.CacheHits)
	fmt.Fprintf(w, "  misses       %d\n", resp.CacheMisses)
	fmt.Fprintf(w, "  invalidated  %d\n", resp.CacheInvalidations)
	fmt.Fprintf(w, "  entries      %d\n", resp.CacheEntries)
	fmt.Fprintf(w, "  negatives    %d\n", resp.CacheNegatives)
	fmt.Fprintf(w, "sig cache\n")
	fmt.Fprintf(w, "  hits         %d\n", resp.SigCacheHits)
	fmt.Fprintf(w, "  misses       %d\n", resp.SigCacheMisses)
	fmt.Fprintf(w, "  evictions    %d\n", resp.SigCacheEvictions)
	fmt.Fprintf(w, "  size         %d\n", resp.SigCacheSize)
	if c := resp.Cluster; c != nil {
		fmt.Fprintf(w, "cluster\n")
		fmt.Fprintf(w, "  epoch        %d\n", c.Epoch)
		if c.Shard < 0 {
			fmt.Fprintf(w, "  shard        gateway\n")
		} else {
			fmt.Fprintf(w, "  shard        %d\n", c.Shard)
		}
		fmt.Fprintf(w, "  shards       %d\n", c.Shards)
		fmt.Fprintf(w, "  redirects    %d\n", c.Redirects)
		fmt.Fprintf(w, "  scatters     %d\n", c.Scatters)
		for _, name := range sortedNames(c.Routes) {
			fmt.Fprintf(w, "  routed->%-4s %d\n", name, c.Routes[name])
		}
	}
	if d := resp.DHT; d != nil {
		fmt.Fprintf(w, "dht\n")
		fmt.Fprintf(w, "  id           %s\n", d.ID)
		fmt.Fprintf(w, "  bucket-peers %d\n", d.BucketPeers)
		fmt.Fprintf(w, "  records      %d\n", d.ProviderRecords)
		fmt.Fprintf(w, "  announced    %d\n", d.Announced)
		fmt.Fprintf(w, "  lookups      %d\n", d.Lookups)
		fmt.Fprintf(w, "  stores       %d\n", d.Stores)
		fmt.Fprintf(w, "  refused      %d\n", d.StoresRefused)
		fmt.Fprintf(w, "gossip\n")
		fmt.Fprintf(w, "  alive        %d\n", d.GossipAlive)
		fmt.Fprintf(w, "  suspect      %d\n", d.GossipSuspect)
		fmt.Fprintf(w, "  dead         %d\n", d.GossipDead)
	}
	if ws := resp.Wire; ws != nil {
		fmt.Fprintf(w, "wire codec (connection: %s)\n", ws.ConnCodec)
		fmt.Fprintf(w, "  json frames  %d enc / %d dec (%d / %d bytes)\n",
			ws.JSONFramesEncoded, ws.JSONFramesDecoded, ws.JSONBytesEncoded, ws.JSONBytesDecoded)
		fmt.Fprintf(w, "  bin frames   %d enc / %d dec (%d / %d bytes)\n",
			ws.BinaryFramesEncoded, ws.BinaryFramesDecoded, ws.BinaryBytesEncoded, ws.BinaryBytesDecoded)
		fmt.Fprintf(w, "  intern       %d hits / %d misses\n", ws.InternHits, ws.InternMisses)
		fmt.Fprintf(w, "  pool         %d gets / %d puts / %d discards / %d news\n",
			ws.Pool.Gets, ws.Pool.Puts, ws.Pool.Discards, ws.Pool.News)
	}
	if len(resp.Metrics.Counters) > 0 {
		fmt.Fprintf(w, "counters\n")
		for _, name := range sortedNames(resp.Metrics.Counters) {
			fmt.Fprintf(w, "  %-44s %d\n", name, resp.Metrics.Counters[name])
		}
	}
	if len(resp.Metrics.Gauges) > 0 {
		fmt.Fprintf(w, "gauges\n")
		for _, name := range sortedNames(resp.Metrics.Gauges) {
			fmt.Fprintf(w, "  %-44s %d\n", name, resp.Metrics.Gauges[name])
		}
	}
	if len(resp.Metrics.Histograms) > 0 {
		fmt.Fprintf(w, "histograms\n")
		for _, name := range sortedNames(resp.Metrics.Histograms) {
			h := resp.Metrics.Histograms[name]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(w, "  %-44s count=%d mean=%.3fms\n", name, h.Count, mean*1000)
		}
	}
	if len(resp.Metrics.Infos) > 0 {
		fmt.Fprintf(w, "info\n")
		for _, name := range sortedNames(resp.Metrics.Infos) {
			labels := resp.Metrics.Infos[name]
			fmt.Fprintf(w, "  %-44s", name)
			for _, k := range sortedNames(labels) {
				fmt.Fprintf(w, " %s=%s", k, labels[k])
			}
			fmt.Fprintln(w)
		}
	}
}

// cmdTrace fetches one retained trace's spans from every listed wallet and
// renders the merged cross-wallet waterfall. A distributed discovery leaves
// its spans scattered — the originating query span and its rpc children on
// one wallet, the serve spans on the wallets it contacted — so the CLI
// re-assembles what no single /debug/traces endpoint can show.
func cmdTrace(ctx context.Context, args []string) error {
	// The trace ID is positional (flag parsing stops at the first
	// non-flag), accepted before or after the flags.
	var id string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		id, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	key := fs.String("key", "", "identity file for transport auth")
	addr := fs.String("addr", "", "wallet addresses host:port[,host:port...]; each is queried and the spans merged")
	asJSON := fs.Bool("json", false, "emit the merged span tree as JSON")
	timeout := timeoutFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if id == "" {
		id = fs.Arg(0)
	}
	if id == "" {
		return errors.New("trace: usage: drbac trace <trace-id> -key <file> -addr <addr[,addr...]>")
	}
	if *key == "" || *addr == "" {
		return errors.New("trace: -key and -addr are required")
	}
	d, err := resolveTimeout(fs, *timeout)
	if err != nil {
		return err
	}
	ctx, cancel := opContext(ctx, d)
	defer cancel()
	ident, err := loadIdentity(*key)
	if err != nil {
		return err
	}
	dialer := &transport.TCPDialer{Identity: ident}
	var spans []obs.SpanRecord
	seen := make(map[string]bool)
	found := 0
	for _, a := range remote.SplitAddrs(*addr) {
		c, err := remote.Dial(ctx, dialer, a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %s unreachable: %v\n", a, err)
			continue
		}
		resp, err := c.Trace(ctx, id)
		c.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %s: %v\n", a, err)
			continue
		}
		if resp.Found {
			found++
		}
		for _, sp := range resp.Spans {
			if seen[sp.SpanID] {
				continue
			}
			seen[sp.SpanID] = true
			if sp.Attrs == nil {
				sp.Attrs = make(map[string]string)
			}
			sp.Attrs["from"] = a
			spans = append(spans, sp)
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace %s: not retained by any of the %d wallet(s) — it may have been sampled out or evicted", id, len(remote.SplitAddrs(*addr)))
	}
	if *asJSON {
		data, err := json.MarshalIndent(obs.BuildSpanTree(spans), "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	renderTrace(os.Stdout, id, found, spans)
	return nil
}

// renderTrace prints the merged waterfall: one line per span, offset from
// the earliest span start, indented by tree depth. Offsets across wallets
// are subject to clock skew, so a remote serve span can print a slightly
// earlier offset than its parent rpc span.
func renderTrace(w io.Writer, id string, wallets int, spans []obs.SpanRecord) {
	var t0 time.Time
	var total int64
	for _, sp := range spans {
		if t0.IsZero() || sp.Start.Before(t0) {
			t0 = sp.Start
		}
	}
	for _, sp := range spans {
		if end := sp.Start.Sub(t0).Microseconds() + sp.DurationUS; end > total {
			total = end
		}
	}
	fmt.Fprintf(w, "trace %s  spans=%d  wallets=%d  duration=%.3fms\n",
		id, len(spans), wallets, float64(total)/1000)
	var walk func(nodes []*obs.SpanNode, depth int)
	walk = func(nodes []*obs.SpanNode, depth int) {
		for _, n := range nodes {
			off := float64(n.Start.Sub(t0).Microseconds()) / 1000
			fmt.Fprintf(w, "  %9.3f  +%9.3f  %s%s", off, float64(n.DurationUS)/1000,
				strings.Repeat("  ", depth), n.Name)
			for _, k := range sortedNames(n.Attrs) {
				if k == "from" {
					continue
				}
				fmt.Fprintf(w, " %s=%s", k, n.Attrs[k])
			}
			if from := n.Attrs["from"]; from != "" {
				fmt.Fprintf(w, "  [%s]", from)
			}
			if n.Err != "" {
				fmt.Fprintf(w, "  ERROR: %s", n.Err)
			}
			fmt.Fprintln(w)
			walk(n.Children, depth+1)
		}
	}
	walk(obs.BuildSpanTree(spans), 0)
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// cmdMonitor subscribes to a delegation's status at a remote wallet
// (§4.2.2) and prints pushed updates until count events arrive or the wait
// deadline passes.
func cmdMonitor(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("monitor", flag.ContinueOnError)
	key := fs.String("key", "", "identity file for transport auth")
	addr := fs.String("addr", "", "wallet address host:port[,host:port...] (first reachable wins)")
	id := fs.String("id", "", "delegation ID")
	count := fs.Int("count", 1, "exit after this many status events")
	wait := fs.Duration("wait", 30*time.Second, "maximum time to wait")
	timeout := timeoutFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *key == "" || *addr == "" || *id == "" {
		return errors.New("monitor: -key, -addr, -id are required")
	}
	// -timeout bounds the setup RPCs (dial, subscribe); -wait bounds how
	// long we then listen for pushes.
	d, err := resolveTimeout(fs, *timeout)
	if err != nil {
		return err
	}
	setupCtx, cancelSetup := opContext(ctx, d)
	defer cancelSetup()
	client, err := dial(setupCtx, *key, *addr)
	if err != nil {
		return err
	}
	defer client.Close()

	events := make(chan subs.Event, 16)
	cancel, err := client.Subscribe(setupCtx, core.DelegationID(*id), func(ev subs.Event) {
		events <- ev
	})
	if err != nil {
		return err
	}
	defer cancel()
	fmt.Printf("monitoring %s at %s (%d event(s), up to %v)\n",
		core.DelegationID(*id).Short(), *addr, *count, *wait)

	deadline := time.After(*wait)
	for seen := 0; seen < *count; {
		select {
		case ev := <-events:
			seen++
			fmt.Printf("%s delegation %s: %s\n",
				ev.At.Format(time.RFC3339), ev.Delegation.Short(), ev.Kind)
		case <-deadline:
			return fmt.Errorf("monitor: timed out after %v with %d event(s)", *wait, seen)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
