package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/logstore"
	"drbac/internal/wallet"
)

func issueTestDelegations(t *testing.T, n int) []*core.Delegation {
	t.Helper()
	org, err := core.NewIdentity("Org")
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewIdentity("User")
	if err != nil {
		t.Fatal(err)
	}
	dir := core.NewDirectory(org.Entity(), user.Entity())
	out := make([]*core.Delegation, 0, n)
	for i := 0; i < n; i++ {
		text := "[User -> Org.role" + string(rune('a'+i)) + "] Org"
		parsed, err := core.ParseDelegation(text, dir)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.Issue(org, parsed.Template, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

func TestInspectStateJSONFile(t *testing.T) {
	ds := issueTestDelegations(t, 2)
	path := filepath.Join(t.TempDir(), "state.json")
	st, err := wallet.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutDelegation(1, ds[0], nil); err != nil {
		t.Fatal(err)
	}
	if err := st.PutDelegation(2, ds[1], nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddRevocation(3, ds[1].ID(), time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteDelegation(3, ds[1].ID()); err != nil {
		t.Fatal(err)
	}

	info, err := inspectState(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Store != "json" || info.Bundles != 1 || info.Revocations != 1 || info.Seq != 3 {
		t.Fatalf("json inspect: %+v", info)
	}
	if len(info.Segments) != 0 {
		t.Fatalf("json store reported segments: %+v", info.Segments)
	}
	var buf bytes.Buffer
	renderState(&buf, info)
	out := buf.String()
	for _, want := range []string{"store        json", "seq          3", "bundles      1", "revocations  1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "segments") {
		t.Errorf("json render shows segment table:\n%s", out)
	}
}

func TestInspectStateLogDir(t *testing.T) {
	ds := issueTestDelegations(t, 4)
	dir := filepath.Join(t.TempDir(), "state")
	st, err := logstore.Open(dir, logstore.Options{CompactInterval: -1, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range ds {
		if err := st.PutDelegation(uint64(i+1), d, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.AddRevocation(5, ds[0].ID(), time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteDelegation(5, ds[0].ID()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := inspectState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Store != "log" || info.Bundles != 3 || info.Revocations != 1 || info.Seq != 5 {
		t.Fatalf("log inspect: %+v", info)
	}
	if len(info.Segments) < 2 {
		t.Fatalf("1KiB segments over 4 bundles should have rolled: %+v", info.Segments)
	}
	if got := info.Segments[len(info.Segments)-1].Status; got != "active" {
		t.Fatalf("last segment status %q, want active", got)
	}
	var buf bytes.Buffer
	renderState(&buf, info)
	out := buf.String()
	for _, want := range []string{"store        log", "segments", "active", "sealed"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCmdStateErrors(t *testing.T) {
	if err := cmdState(nil); err == nil {
		t.Fatal("missing path accepted")
	}
	if err := cmdState([]string{"-state", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("nonexistent path accepted")
	}
}
