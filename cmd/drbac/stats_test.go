package main

import (
	"bytes"
	"testing"

	"drbac/internal/obs"
	"drbac/internal/wire"
)

func TestRenderStatsGolden(t *testing.T) {
	resp := wire.StatsResp{
		Role:               "replica",
		Seq:                42,
		Delegations:        3,
		Revoked:            1,
		TTLTracked:         2,
		Watches:            0,
		CacheHits:          10,
		CacheMisses:        4,
		CacheInvalidations: 1,
		CacheEntries:       5,
		CacheNegatives:     2,
		SigCacheHits:       12,
		SigCacheMisses:     6,
		SigCacheEvictions:  1,
		SigCacheSize:       5,
		Metrics: obs.Snapshot{
			Counters: map[string]int64{
				"drbac_wallet_query_direct_total": 14,
				"drbac_server_requests_total":     20,
			},
			Gauges: map[string]int64{"drbac_wallet_delegations": 3},
			Histograms: map[string]obs.HistogramSnapshot{
				"drbac_wallet_query_seconds": {Count: 4, Sum: 0.008},
			},
		},
	}
	var buf bytes.Buffer
	renderStats(&buf, "wallet.example:7100", resp)
	want := `wallet wallet.example:7100
  role         replica
  seq          42
  delegations  3
  revoked      1
  ttl-tracked  2
  watches      0
proof cache
  hits         10
  misses       4
  invalidated  1
  entries      5
  negatives    2
sig cache
  hits         12
  misses       6
  evictions    1
  size         5
counters
  drbac_server_requests_total                  20
  drbac_wallet_query_direct_total              14
gauges
  drbac_wallet_delegations                     3
histograms
  drbac_wallet_query_seconds                   count=4 mean=2.000ms
`
	if buf.String() != want {
		t.Errorf("renderStats output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestRenderStatsOmitsEmptySections(t *testing.T) {
	var buf bytes.Buffer
	renderStats(&buf, "w", wire.StatsResp{})
	out := buf.String()
	for _, section := range []string{"counters", "gauges", "histograms"} {
		if bytes.Contains([]byte(out), []byte(section)) {
			t.Errorf("empty snapshot rendered section %q:\n%s", section, out)
		}
	}
}

func TestRenderStatsClusterSection(t *testing.T) {
	resp := wire.StatsResp{
		Cluster: &wire.ClusterStats{
			Epoch:     3,
			Shard:     -1,
			Shards:    4,
			Routes:    map[string]int64{"0": 7, "1": 5, "2": 9},
			Redirects: 2,
			Scatters:  11,
		},
	}
	var buf bytes.Buffer
	renderStats(&buf, "gw.example:7100", resp)
	want := `cluster
  epoch        3
  shard        gateway
  shards       4
  redirects    2
  scatters     11
  routed->0    7
  routed->1    5
  routed->2    9
`
	if !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Errorf("renderStats cluster section:\n%s\nwant to contain:\n%s", buf.String(), want)
	}

	// A member renders its numeric shard ID.
	resp.Cluster.Shard = 2
	buf.Reset()
	renderStats(&buf, "shard2.example:7100", resp)
	if !bytes.Contains(buf.Bytes(), []byte("  shard        2\n")) {
		t.Errorf("member stats lack the shard line:\n%s", buf.String())
	}

	// No cluster section outside a cluster.
	buf.Reset()
	renderStats(&buf, "w", wire.StatsResp{})
	if bytes.Contains(buf.Bytes(), []byte("cluster")) {
		t.Errorf("non-cluster stats rendered a cluster section:\n%s", buf.String())
	}
}

func TestRenderStatsDHTSection(t *testing.T) {
	resp := wire.StatsResp{
		DHT: &wire.DHTStats{
			ID:              "8b2f1c44",
			BucketPeers:     5,
			ProviderRecords: 2,
			Lookups:         17,
			Stores:          9,
			StoresRefused:   1,
			Announced:       1,
			GossipAlive:     4,
			GossipSuspect:   1,
			GossipDead:      2,
		},
	}
	var buf bytes.Buffer
	renderStats(&buf, "seed.example:7100", resp)
	want := `dht
  id           8b2f1c44
  bucket-peers 5
  records      2
  announced    1
  lookups      17
  stores       9
  refused      1
gossip
  alive        4
  suspect      1
  dead         2
`
	if !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Errorf("renderStats dht section:\n%s\nwant to contain:\n%s", buf.String(), want)
	}

	// No dht section when the wallet doesn't serve the DHT.
	buf.Reset()
	renderStats(&buf, "w", wire.StatsResp{})
	if bytes.Contains(buf.Bytes(), []byte("dht")) {
		t.Errorf("non-dht stats rendered a dht section:\n%s", buf.String())
	}
}
