package main

import (
	"path/filepath"
	"strings"
	"testing"

	"drbac/internal/cluster"
)

func TestShardmapInitSplitShow(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "map.json")

	if err := cmdShardmap([]string{"init", "-group", "s0a,s0b", "-group", "s1", "-out", path}); err != nil {
		t.Fatalf("init: %v", err)
	}
	m, err := readShardMap(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 1 || len(m.Shards) != 2 {
		t.Fatalf("init wrote epoch %d / %d shards, want 1 / 2", m.Epoch, len(m.Shards))
	}
	if s, ok := m.ShardByID(0); !ok || len(s.Addrs) != 2 {
		t.Fatalf("shard 0 = %+v, want a two-member replica group", s)
	}

	path2 := filepath.Join(dir, "map2.json")
	if err := cmdShardmap([]string{"split", "-in", path, "-shard", "0", "-new-id", "2", "-group", "s2", "-out", path2}); err != nil {
		t.Fatalf("split: %v", err)
	}
	m2, err := readShardMap(path2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Epoch != m.Epoch+1 || len(m2.Shards) != 3 {
		t.Fatalf("split wrote epoch %d / %d shards, want %d / 3", m2.Epoch, len(m2.Shards), m.Epoch+1)
	}
	// Untouched shards keep their exact ring points across the split.
	pointsOf := func(m *cluster.Map, id int) map[uint64]bool {
		out := make(map[uint64]bool)
		for _, p := range m.Points {
			if p.Shard == id {
				out[p.Hash] = true
			}
		}
		return out
	}
	for h := range pointsOf(m2, 1) {
		if !pointsOf(m, 1)[h] {
			t.Fatalf("split moved a point (%d) of the untouched shard 1", h)
		}
	}

	if err := cmdShardmap([]string{"show", "-in", path2}); err != nil {
		t.Fatalf("show: %v", err)
	}
	if err := cmdShardmap([]string{"bogus"}); err == nil || !strings.Contains(err.Error(), "unknown action") {
		t.Errorf("bogus action: %v, want unknown-action error", err)
	}
}
