// drbac shardmap — author and inspect cluster shard maps (SPEC §12).
// A shard map is the unit of cluster configuration: drbacd members load
// it via -shard-of and re-read it on mtime change, so `init` stands a
// cluster up and `split` + a file rollout reshard it live.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"drbac/internal/cluster"
	"drbac/internal/core"
	"drbac/internal/keyfile"
)

// groupList collects repeated -group flags, each one replica group
// ("addr" or "addr,addr").
type groupList [][]string

func (g *groupList) String() string { return fmt.Sprintf("%v", [][]string(*g)) }

func (g *groupList) Set(v string) error {
	var addrs []string
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return errors.New("empty replica group")
	}
	*g = append(*g, addrs)
	return nil
}

func cmdShardmap(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: drbac shardmap <init|split|show|owner> [flags]")
	}
	switch args[0] {
	case "init":
		return shardmapInit(args[1:])
	case "split":
		return shardmapSplit(args[1:])
	case "show":
		return shardmapShow(args[1:])
	case "owner":
		return shardmapOwner(args[1:])
	default:
		return fmt.Errorf("shardmap: unknown action %q (want init, split, show, owner)", args[0])
	}
}

func shardmapInit(args []string) error {
	fs := flag.NewFlagSet("shardmap init", flag.ContinueOnError)
	var groups groupList
	fs.Var(&groups, "group", "replica group for the next shard, \"addr[,addr...]\" (repeat per shard)")
	out := fs.String("out", "", "shard map file to write")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(groups) == 0 || *out == "" {
		return errors.New("shardmap init: at least one -group and -out are required")
	}
	m, err := cluster.Uniform(groups)
	if err != nil {
		return err
	}
	if err := writeShardMap(*out, m); err != nil {
		return err
	}
	fmt.Printf("wrote %s: epoch %d, %d shard(s)\n", *out, m.Epoch, len(m.Shards))
	return nil
}

func shardmapSplit(args []string) error {
	fs := flag.NewFlagSet("shardmap split", flag.ContinueOnError)
	in := fs.String("in", "", "shard map file to split")
	shard := fs.Int("shard", -1, "source shard ID to split")
	newID := fs.Int("new-id", -1, "ID of the shard carved out of -shard")
	var groups groupList
	fs.Var(&groups, "group", "replica group of the new shard, \"addr[,addr...]\"")
	out := fs.String("out", "", "file for the bumped-epoch map (may equal -in)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *shard < 0 || *newID < 0 || len(groups) != 1 || *out == "" {
		return errors.New("shardmap split: -in, -shard, -new-id, one -group, and -out are required")
	}
	m, err := readShardMap(*in)
	if err != nil {
		return err
	}
	next, err := m.Split(*shard, *newID, groups[0])
	if err != nil {
		return err
	}
	if err := writeShardMap(*out, next); err != nil {
		return err
	}
	fmt.Printf("wrote %s: epoch %d, %d shard(s); shard %d carved out of shard %d\n",
		*out, next.Epoch, len(next.Shards), *newID, *shard)
	fmt.Println("roll the file out to every member and gateway; members adopt it on the next sweep")
	return nil
}

func shardmapShow(args []string) error {
	fs := flag.NewFlagSet("shardmap show", flag.ContinueOnError)
	in := fs.String("in", "", "shard map file to inspect")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("shardmap show: -in is required")
	}
	m, err := readShardMap(*in)
	if err != nil {
		return err
	}
	fmt.Printf("shard map %s\n", *in)
	fmt.Printf("  epoch   %d\n", m.Epoch)
	fmt.Printf("  shards  %d\n", len(m.Shards))
	points := make(map[int]int)
	for _, p := range m.Points {
		points[p.Shard]++
	}
	ids := make([]int, 0, len(m.Shards))
	for _, s := range m.Shards {
		ids = append(ids, s.ID)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s, _ := m.ShardByID(id)
		fmt.Printf("  shard %-3d points=%-3d addrs=%s\n", id, points[id], strings.Join(s.Addrs, ","))
	}
	return nil
}

func shardmapOwner(args []string) error {
	fs := flag.NewFlagSet("shardmap owner", flag.ContinueOnError)
	in := fs.String("in", "", "shard map file")
	entities := fs.String("entities", "", "directory file")
	subject := fs.String("subject", "", "entity name or role whose home shard to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *entities == "" || *subject == "" {
		return errors.New("shardmap owner: -in, -entities, -subject are required")
	}
	m, err := readShardMap(*in)
	if err != nil {
		return err
	}
	dir, _, err := keyfile.ReadDirectory(*entities)
	if err != nil {
		return err
	}
	subj, err := core.ParseSubject(*subject, dir)
	if err != nil {
		return err
	}
	s := m.Owner(cluster.RouteKey(subj))
	fmt.Printf("subject %s -> shard %d (%s) at epoch %d\n",
		*subject, s.ID, strings.Join(s.Addrs, ","), m.Epoch)
	return nil
}

func readShardMap(path string) (*cluster.Map, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return cluster.ParseMap(raw)
}

func writeShardMap(path string, m *cluster.Map) error {
	raw, err := m.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
