package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"drbac/internal/obs"
)

// TestRenderTraceGolden renders a merged two-wallet waterfall: the
// originating discovery span with its rpc child fetched from one wallet,
// the remote serve span (parented under the rpc span) from another.
func TestRenderTraceGolden(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	spans := []obs.SpanRecord{
		{
			TraceID: "abc", SpanID: "s1", Name: "discovery", Root: true,
			Start: t0, DurationUS: 12000,
			Attrs: map[string]string{"from": "a:7100", "subject": "Maria"},
		},
		{
			TraceID: "abc", SpanID: "s2", ParentID: "s1", Name: "rpc:direct",
			Start: t0.Add(2 * time.Millisecond), DurationUS: 8000,
			Attrs: map[string]string{"from": "a:7100", "wallet": "BigISP"},
		},
		{
			TraceID: "abc", SpanID: "s3", ParentID: "s2", Name: "serve:query-direct", Root: true,
			Start: t0.Add(3 * time.Millisecond), DurationUS: 6000,
			Err:   "no proof",
			Attrs: map[string]string{"from": "b:7200"},
		},
	}
	var buf bytes.Buffer
	renderTrace(&buf, "abc", 2, spans)
	want := `trace abc  spans=3  wallets=2  duration=12.000ms
      0.000  +   12.000  discovery subject=Maria  [a:7100]
      2.000  +    8.000    rpc:direct wallet=BigISP  [a:7100]
      3.000  +    6.000      serve:query-direct  [b:7200]  ERROR: no proof
`
	if buf.String() != want {
		t.Errorf("renderTrace output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestRenderTraceOrphan keeps spans whose parent was not retained visible
// at the top level instead of dropping them.
func TestRenderTraceOrphan(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	spans := []obs.SpanRecord{
		{TraceID: "abc", SpanID: "s9", ParentID: "missing", Name: "serve:query-direct",
			Start: t0, DurationUS: 1000},
	}
	var buf bytes.Buffer
	renderTrace(&buf, "abc", 1, spans)
	if !strings.Contains(buf.String(), "serve:query-direct") {
		t.Errorf("orphan span not rendered:\n%s", buf.String())
	}
}

// TestCmdTraceUsage rejects a call without a trace ID.
func TestCmdTraceUsage(t *testing.T) {
	err := cmdTrace(context.Background(), []string{"-key", "k", "-addr", "a"})
	if err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("cmdTrace without id = %v, want usage error", err)
	}
}
