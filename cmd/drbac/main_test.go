package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/keyfile"
	"drbac/internal/remote"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

// cliEnv drives the CLI's run() function against temp files and an
// in-process TCP wallet server.
type cliEnv struct {
	t   *testing.T
	dir string
}

func newCLIEnv(t *testing.T) *cliEnv {
	t.Helper()
	return &cliEnv{t: t, dir: t.TempDir()}
}

func (e *cliEnv) path(name string) string { return filepath.Join(e.dir, name) }

func (e *cliEnv) run(args ...string) error { return run(args) }

func (e *cliEnv) must(args ...string) {
	e.t.Helper()
	if err := e.run(args...); err != nil {
		e.t.Fatalf("drbac %v: %v", args, err)
	}
}

// keygenAll creates identities and a shared directory file.
func (e *cliEnv) keygenAll(names ...string) {
	e.t.Helper()
	var entries []keyfile.DirectoryEntry
	for _, name := range names {
		key := e.path(name + ".key")
		e.must("keygen", "-name", name, "-out", key)
		f, err := keyfile.ReadIdentity(key)
		if err != nil {
			e.t.Fatal(err)
		}
		id, err := f.Identity()
		if err != nil {
			e.t.Fatal(err)
		}
		entries = append(entries, keyfile.DirectoryEntry{Name: name, Key: id.Entity().Key})
	}
	if err := keyfile.WriteDirectory(e.path("dir.json"), entries); err != nil {
		e.t.Fatal(err)
	}
}

func (e *cliEnv) identity(name string) *core.Identity {
	e.t.Helper()
	f, err := keyfile.ReadIdentity(e.path(name + ".key"))
	if err != nil {
		e.t.Fatal(err)
	}
	id, err := f.Identity()
	if err != nil {
		e.t.Fatal(err)
	}
	return id
}

func TestCLIUsageErrors(t *testing.T) {
	e := newCLIEnv(t)
	if err := e.run(); err == nil {
		t.Fatal("no-arg run accepted")
	}
	if err := e.run("frobnicate"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := e.run("keygen"); err == nil {
		t.Fatal("keygen without flags accepted")
	}
	if err := e.run("delegate", "-key", e.path("nope.key")); err == nil {
		t.Fatal("delegate without flags accepted")
	}
	if err := e.run("verify"); err == nil {
		t.Fatal("verify without -in accepted")
	}
}

func TestCLIDelegateShowVerify(t *testing.T) {
	e := newCLIEnv(t)
	e.keygenAll("BigISP", "Mark", "Maria")

	e.must("delegate",
		"-key", e.path("BigISP.key"),
		"-entities", e.path("dir.json"),
		"-text", "[Mark -> BigISP.memberServices] BigISP",
		"-out", e.path("ms.json"))
	e.must("show", "-entities", e.path("dir.json"), "-in", e.path("ms.json"))
	e.must("verify", "-in", e.path("ms.json"))

	// A delegation whose named issuer doesn't match the key is rejected.
	if err := e.run("delegate",
		"-key", e.path("Mark.key"),
		"-entities", e.path("dir.json"),
		"-text", "[Maria -> BigISP.member] BigISP",
		"-out", e.path("bad.json")); err == nil {
		t.Fatal("issuer/key mismatch accepted")
	}

	// Verifying a tampered bundle fails.
	raw, err := os.ReadFile(e.path("ms.json"))
	if err != nil {
		t.Fatal(err)
	}
	var b map[string]any
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	deleg, ok := b["delegation"].(map[string]any)
	if !ok {
		t.Fatal("bundle shape unexpected")
	}
	obj, ok := deleg["object"].(map[string]any)
	if !ok {
		t.Fatal("bundle object shape unexpected")
	}
	obj["Name"] = "admin"
	tampered, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(e.path("tampered.json"), tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := e.run("verify", "-in", e.path("tampered.json")); err == nil {
		t.Fatal("tampered bundle verified")
	}
}

func TestCLIRemoteFlow(t *testing.T) {
	e := newCLIEnv(t)
	e.keygenAll("BigISP", "Mark", "Maria")

	// Issue the support chain and the third-party membership.
	e.must("delegate", "-key", e.path("BigISP.key"), "-entities", e.path("dir.json"),
		"-text", "[Mark -> BigISP.memberServices] BigISP", "-out", e.path("01.json"))
	e.must("delegate", "-key", e.path("BigISP.key"), "-entities", e.path("dir.json"),
		"-text", "[BigISP.memberServices -> BigISP.member'] BigISP", "-out", e.path("02.json"))
	e.must("delegate", "-key", e.path("Mark.key"), "-entities", e.path("dir.json"),
		"-text", "[Maria -> BigISP.member] Mark", "-out", e.path("03.json"))

	// Serve BigISP's wallet in-process on a real TCP port.
	owner := e.identity("BigISP")
	w := wallet.New(wallet.Config{Owner: owner})
	ln, err := transport.ListenTCP("127.0.0.1:0", owner)
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.Serve(w, ln)
	defer srv.Close()
	addr := ln.Addr()

	// Publish support first (self-certified), then the third-party grant:
	// the server wallet derives its support chain.
	e.must("publish", "-key", e.path("BigISP.key"), "-addr", addr, "-in", e.path("01.json"))
	e.must("publish", "-key", e.path("BigISP.key"), "-addr", addr, "-in", e.path("02.json"))
	e.must("publish", "-key", e.path("Mark.key"), "-addr", addr, "-in", e.path("03.json"))

	e.must("query", "-key", e.path("Maria.key"), "-addr", addr,
		"-entities", e.path("dir.json"), "-subject", "Maria", "-object", "BigISP.member")

	// Mark revokes his delegation; the query then fails.
	bundle, err := keyfile.ReadBundle(e.path("03.json"))
	if err != nil {
		t.Fatal(err)
	}
	e.must("revoke", "-key", e.path("Mark.key"), "-addr", addr,
		"-id", string(bundle.Delegation.ID()))
	if err := e.run("query", "-key", e.path("Maria.key"), "-addr", addr,
		"-entities", e.path("dir.json"), "-subject", "Maria", "-object", "BigISP.member"); err == nil {
		t.Fatal("query succeeded after revocation")
	}
}

func TestCLIMonitor(t *testing.T) {
	e := newCLIEnv(t)
	e.keygenAll("BigISP", "Maria")
	e.must("delegate", "-key", e.path("BigISP.key"), "-entities", e.path("dir.json"),
		"-text", "[Maria -> BigISP.member] BigISP", "-out", e.path("d.json"))

	owner := e.identity("BigISP")
	w := wallet.New(wallet.Config{Owner: owner})
	ln, err := transport.ListenTCP("127.0.0.1:0", owner)
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.Serve(w, ln)
	defer srv.Close()
	e.must("publish", "-key", e.path("BigISP.key"), "-addr", ln.Addr(), "-in", e.path("d.json"))

	b, err := keyfile.ReadBundle(e.path("d.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Revoke shortly after the monitor attaches.
	go func() {
		time.Sleep(100 * time.Millisecond)
		_ = w.Revoke(b.Delegation.ID(), owner.ID())
	}()
	e.must("monitor", "-key", e.path("Maria.key"), "-addr", ln.Addr(),
		"-id", string(b.Delegation.ID()), "-count", "1", "-wait", "5s")

	// Timeout path: nothing will happen to an unknown delegation.
	if err := e.run("monitor", "-key", e.path("Maria.key"), "-addr", ln.Addr(),
		"-id", "deadbeef", "-count", "1", "-wait", "200ms"); err == nil {
		t.Fatal("monitor without events should time out")
	}
}

// -timeout wins over DRBAC_TIMEOUT, which wins over the 30s default; a
// malformed environment value is an error rather than a silent fallback.
func TestCLITimeoutResolution(t *testing.T) {
	resolve := func(t *testing.T, env string, args ...string) (time.Duration, error) {
		t.Helper()
		if env != "" {
			t.Setenv("DRBAC_TIMEOUT", env)
		}
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		timeout := timeoutFlag(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return resolveTimeout(fs, *timeout)
	}

	if d, err := resolve(t, ""); err != nil || d != defaultTimeout {
		t.Fatalf("default = %v, %v; want %v", d, err, defaultTimeout)
	}
	if d, err := resolve(t, "5s"); err != nil || d != 5*time.Second {
		t.Fatalf("env fallback = %v, %v; want 5s", d, err)
	}
	if d, err := resolve(t, "5s", "-timeout", "2s"); err != nil || d != 2*time.Second {
		t.Fatalf("explicit flag = %v, %v; want 2s over env", d, err)
	}
	// An explicitly passed default still beats the environment.
	if d, err := resolve(t, "5s", "-timeout", "30s"); err != nil || d != 30*time.Second {
		t.Fatalf("explicit default = %v, %v; want 30s", d, err)
	}
	if _, err := resolve(t, "bogus"); err == nil {
		t.Fatal("malformed DRBAC_TIMEOUT accepted")
	}
}

// A network command against a black-hole address aborts at the -timeout
// deadline instead of hanging for the full dial timeout.
func TestCLITimeoutBoundsDial(t *testing.T) {
	e := newCLIEnv(t)
	e.keygenAll("Maria")
	// A listener that accepts but never handshakes: the dial blocks until
	// the operation context fires.
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	go func() {
		for {
			conn, err := raw.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	start := time.Now()
	err = e.run("stats", "-key", e.path("Maria.key"), "-addr", raw.Addr().String(),
		"-timeout", "200ms")
	if err == nil {
		t.Fatal("stats against mute server succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("command took %v, -timeout did not bound the dial", elapsed)
	}
}
