// Command coalition-sim regenerates every experiment in EXPERIMENTS.md:
// the Table 3 / Figure 2 case study and the four §-claim experiments
// (search directionality, attribute pruning, revocation schemes,
// separability).
//
// Usage:
//
//	coalition-sim -exp all
//	coalition-sim -exp casestudy|search|pruning|revocation|separability|chain
//	coalition-sim -exp cluster       # EXP-C1 shard-scaling sweep (§12)
//	coalition-sim -exp clustersmoke  # bounded 4-shard scatter-gather smoke (CI)
//	coalition-sim -exp dhtsmoke      # bounded 6-wallet DHT bootstrap/churn smoke (CI)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"drbac/internal/baseline"
	"drbac/internal/revocation"
	"drbac/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coalition-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("coalition-sim", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: all, casestudy, search, pruning, revocation, separability, chain, proxy, ranges, cache, cluster, clustersmoke, dhtsmoke")
	if err := fs.Parse(args); err != nil {
		return err
	}
	runners := map[string]func() error{
		"casestudy":    runCaseStudy,
		"search":       runSearch,
		"pruning":      runPruning,
		"revocation":   runRevocation,
		"separability": runSeparability,
		"chain":        runChain,
		"proxy":        runProxy,
		"ranges":       runRanges,
		"cache":        runCache,
		"cluster":      runCluster,
		"clustersmoke": runClusterSmoke,
		"dhtsmoke":     runDHTSmoke,
	}
	if *exp == "all" {
		for _, name := range []string{"casestudy", "search", "pruning", "revocation", "separability", "chain", "proxy", "ranges", "cache", "cluster"} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	r, ok := runners[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return r()
}

func runCaseStudy() error {
	fmt.Println("== EXP-T3/F2: §5 case study (Table 3, Figure 2) ==")
	res, err := sim.RunCaseStudy()
	if err != nil {
		return err
	}
	fmt.Printf("proof chain length: %d (delegations 1, 2, 5)\n", res.Proof.Len())
	fmt.Printf("attribute outcomes: BW=%v (paper: 100)  storage=%v (paper: 30)  hours=%v (paper: 18)\n",
		res.BW, res.Storage, res.Hours)
	fmt.Printf("discovery: %d rounds, %d wallets contacted, %d remote queries, %d delegations fetched\n",
		res.Stats.Rounds, res.Stats.WalletsContacted, res.Stats.RemoteQueries, res.Stats.DelegationsFetched)
	for _, ev := range res.Stats.Trace {
		fmt.Printf("  round %d: %-7s query at %-15s node %s -> %d proof(s)\n",
			ev.Round, ev.Kind, ev.Wallet, ev.Node, ev.Results)
	}
	fmt.Printf("network: %d messages, %d bytes\n", res.Messages, res.Bytes)
	return nil
}

func runSearch() error {
	fmt.Println("== EXP-S1: search directionality (§4.2.3) ==")
	fmt.Printf("%-9s %2s %2s %7s %9s %9s %9s\n", "topology", "b", "d", "edges", "forward", "reverse", "bidi")
	for _, b := range []int{2, 3} {
		for _, d := range []int{3, 4, 5, 6} {
			points, err := sim.RunDirectionality(b, d)
			if err != nil {
				return err
			}
			for _, pt := range points {
				fmt.Printf("%-9s %2d %2d %7d %9d %9d %9d\n",
					pt.Topology, pt.Branching, pt.Depth, pt.Edges,
					pt.Forward.EdgesExplored, pt.Reverse.EdgesExplored, pt.Bidi.EdgesExplored)
			}
		}
	}
	fmt.Println("shape: the adversarial direction sweeps ~all edges (exponential in depth);")
	fmt.Println("bidirectional stays near the cheap direction on both topologies.")
	return nil
}

func runPruning() error {
	fmt.Println("== EXP-S2: valued-attribute monotonicity pruning (§4.2.3) ==")
	fmt.Printf("%6s %6s %7s %8s %10s %8s\n", "width", "depth", "edges", "pruned", "unpruned", "cut")
	for _, width := range []int{5, 10, 20} {
		for _, depth := range []int{4, 8, 16} {
			pt, err := sim.RunPruning(width, depth)
			if err != nil {
				return err
			}
			fmt.Printf("%6d %6d %7d %8d %10d %7.1fx\n",
				pt.Width, pt.Depth, pt.Edges, pt.PrunedEdges, pt.UnprunedEdges,
				float64(pt.UnprunedEdges)/float64(pt.PrunedEdges))
		}
	}
	return nil
}

func runRevocation() error {
	fmt.Println("== EXP-S3: credential status schemes (§6) ==")
	configs := []struct {
		label string
		p     revocation.Params
	}{
		{"short session, 1 revocation", revocation.Params{
			Clients: 8, Credentials: 16, Steps: 200, PollEvery: 5, CRLEvery: 10, RevokeAt: []int{53}}},
		{"long session, 1 revocation", revocation.Params{
			Clients: 8, Credentials: 16, Steps: 2000, PollEvery: 5, CRLEvery: 10, RevokeAt: []int{53}}},
		{"long session, 8 revocations", revocation.Params{
			Clients: 8, Credentials: 16, Steps: 2000, PollEvery: 5, CRLEvery: 10,
			RevokeAt: []int{101, 303, 507, 701, 903, 1101, 1303, 1507}}},
		{"many clients", revocation.Params{
			Clients: 32, Credentials: 16, Steps: 1000, PollEvery: 5, CRLEvery: 10, RevokeAt: []int{53}}},
	}
	for _, cfg := range configs {
		results, err := revocation.RunAll(cfg.p)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s (clients=%d creds=%d steps=%d):\n", cfg.label, cfg.p.Clients, cfg.p.Credentials, cfg.p.Steps)
		fmt.Printf("  %-14s %10s %12s %10s\n", "scheme", "messages", "bytes", "staleness")
		for _, r := range results {
			fmt.Printf("  %-14s %10d %12d %10d\n", r.Scheme, r.Messages, r.Bytes, r.StalenessSteps)
		}
	}
	return nil
}

func runSeparability() error {
	fmt.Println("== EXP-S4: separability / namespace pollution (§3.1.3) ==")
	fmt.Printf("%9s %11s | %7s %9s | %7s %9s\n",
		"partners", "privileges", "dRBAC", "phantoms", "baseline", "phantoms")
	for _, partners := range []int{2, 4, 8} {
		for _, privs := range []int{4, 8} {
			s := baseline.Scenario{Partners: partners, Privileges: privs, MembersPerPartner: 2}
			d, ph, err := sim.RunSeparability(s)
			if err != nil {
				return err
			}
			fmt.Printf("%9d %11d | %7d %9d | %8d %9d\n",
				partners, privs, d.RolesCreated, d.PhantomRoles, ph.RolesCreated, ph.PhantomRoles)
		}
	}
	fmt.Println("dRBAC roles = privileges + one admin role per partner; baseline mints")
	fmt.Println("partners x privileges phantom roles and loses separability.")
	return nil
}

func runChain() error {
	fmt.Println("== EXP-F2 extension: multi-hop discovery scaling ==")
	fmt.Printf("%5s %7s %8s %8s %8s %10s\n", "hops", "rounds", "wallets", "queries", "fetched", "messages")
	for _, hops := range []int{1, 2, 4, 8} {
		pt, err := sim.RunChainDiscovery(hops)
		if err != nil {
			return err
		}
		fmt.Printf("%5d %7d %8d %8d %8d %10d\n",
			pt.Hops, pt.Rounds, pt.WalletsContacted, pt.RemoteQueries, pt.DelegationsFetched, pt.Messages)
	}
	return nil
}

func runProxy() error {
	fmt.Println("== EXP-S5: hierarchical validation caches (§6 extension) ==")
	fmt.Printf("%8s %12s %12s %12s %12s\n",
		"clients", "flat msgs", "flat bytes", "hier msgs", "hier bytes")
	for _, clients := range []int{1, 2, 4, 8, 16} {
		pt, err := sim.RunProxyExperiment(clients)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %12d %12d %12d %12d\n",
			pt.Clients, pt.FlatHomeMessages, pt.FlatHomeBytes, pt.HierHomeMessages, pt.HierHomeBytes)
	}
	fmt.Println("home-wallet load grows with clients when they attach directly; behind a")
	fmt.Println("caching proxy it is constant (one subscription, one push per change).")
	return nil
}

func runCache() error {
	fmt.Println("== EXP-S6: subscription-coherent proof cache (§6) ==")
	fmt.Printf("%6s %12s %12s %8s %6s %7s %7s %9s\n",
		"chain", "cold ns/op", "hot ns/op", "speedup", "hits", "misses", "invals", "coherent")
	for _, chain := range []int{2, 4, 8, 16} {
		pt, err := sim.RunCacheCoherence(chain, 2000)
		if err != nil {
			return err
		}
		speedup := float64(pt.ColdNanos) / float64(pt.HotNanos)
		fmt.Printf("%6d %12d %12d %7.1fx %6d %7d %7d %9v\n",
			pt.Chain, pt.ColdNanos, pt.HotNanos, speedup,
			pt.Hits, pt.Misses, pt.Invalidations, pt.CoherentAfterRevoke)
	}
	fmt.Println("memoized answers amortize the graph search; a mid-chain revocation push")
	fmt.Println("kills the cached proof before the next query returns.")
	return nil
}

func runRanges() error {
	fmt.Println("== EXP-S2b: modulated attribute ranges in discovery (§4.2.3) ==")
	fmt.Printf("%7s %16s %18s %15s %17s\n",
		"fanout", "adjusted-fetch", "unadjusted-fetch", "adjusted-bytes", "unadjusted-bytes")
	for _, fanout := range []int{2, 4, 8, 16} {
		pt, err := sim.RunRangeAdjustment(fanout)
		if err != nil {
			return err
		}
		fmt.Printf("%7d %16d %18d %15d %17d\n",
			pt.Fanout, pt.AdjustedFetched, pt.UnadjustedFetched, pt.AdjustedBytes, pt.UnadjustedBytes)
	}
	fmt.Println("a doomed search (local prefix already below the constraint) fetches nothing")
	fmt.Println("when remote queries carry range-adjusted constraints.")
	return nil
}

func runCluster() error {
	fmt.Println("== EXP-C1: sharded cluster publish scaling (§12) ==")
	const (
		publishes = 480
		workers   = 32
	)
	fmt.Printf("%7s %10s %8s %10s %12s %8s\n",
		"shards", "publishes", "workers", "elapsed", "publishes/s", "speedup")
	var base float64
	for _, shards := range []int{1, 2, 4, 8} {
		pt, err := sim.RunShardScaling(shards, publishes, workers, sim.DefaultCommitDelay)
		if err != nil {
			return err
		}
		if shards == 1 {
			base = pt.Throughput
		}
		fmt.Printf("%7d %10d %8d %10s %12.0f %7.1fx\n",
			pt.Shards, pt.Publishes, pt.Workers, pt.Elapsed.Round(time.Millisecond),
			pt.Throughput, pt.Throughput/base)
	}
	fmt.Printf("commit delay %v per mutation, serialized per shard: aggregate throughput\n", sim.DefaultCommitDelay)
	fmt.Println("scales with the shard count because each shard owns an independent commit pipeline.")

	proof, err := sim.RunCrossShardProof(4)
	if err != nil {
		return err
	}
	fmt.Printf("cross-shard proof: chain spans %d shards, identical-to-single-wallet=%v, valid=%v, assembled in %v\n",
		proof.HomeShards, proof.Identical, proof.Valid, proof.Assembly.Round(time.Microsecond))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	split, err := sim.RunSplitConvergence(ctx, 2, 24)
	if err != nil {
		return err
	}
	fmt.Printf("mid-traffic split 2->3 shards: epoch %d, %d mutations, %d re-homed, %d lost\n",
		split.Epoch, split.Publishes, split.Moved, split.Lost)
	if split.Lost != 0 {
		return fmt.Errorf("split lost %d mutations", split.Lost)
	}
	return nil
}

func runClusterSmoke() error {
	fmt.Println("== cluster smoke: 4-shard scatter-gather (bounded) ==")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	startAt := time.Now()
	res, err := sim.RunClusterSmoke(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("published %d across %d shards; object scatter returned %d proofs;\n",
		res.Published, res.Shards, res.ObjectProofs)
	fmt.Printf("cross-shard proof identical=%v valid=%v; split re-homed %d, lost %d; %v total\n",
		res.Proof.Identical, res.Proof.Valid, res.Split.Moved, res.Split.Lost, time.Since(startAt).Round(time.Millisecond))
	fmt.Println("PASS")
	return nil
}

func runDHTSmoke() error {
	fmt.Println("== DHT smoke: 6-member bootstrap, resolve, churn (bounded) ==")
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	startAt := time.Now()
	res, err := sim.RunDHTSmoke(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%d members bootstrapped off one seed, %d provider records announced;\n",
		res.Members, res.Announced)
	fmt.Printf("resolved %d-link chain via %d DHT-found wallets with zero static addresses;\n",
		res.ChainLen, res.WalletsContacted)
	fmt.Printf("after seed death + home move, late joiner resolved %d-link chain at %s; %v total\n",
		res.RejoinChainLen, res.RejoinAddr, time.Since(startAt).Round(time.Millisecond))
	fmt.Println("PASS")
	return nil
}
