package main

import "testing"

// The runners are exercised in depth through internal/sim; these tests pin
// the CLI wiring: flag handling and that each fast experiment completes.
func TestRunFlagHandling(t *testing.T) {
	if err := run([]string{"-exp", "no-such-experiment"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunCaseStudyExperiment(t *testing.T) {
	if err := run([]string{"-exp", "casestudy"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSeparabilityExperiment(t *testing.T) {
	if err := run([]string{"-exp", "separability"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunProxyExperiment(t *testing.T) {
	if err := run([]string{"-exp", "proxy"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunChainExperiment(t *testing.T) {
	if err := run([]string{"-exp", "chain"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSearchExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("search sweep is slow")
	}
	if err := run([]string{"-exp", "search"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPruningExperiment(t *testing.T) {
	if err := run([]string{"-exp", "pruning"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRevocationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("revocation sweep is slow")
	}
	if err := run([]string{"-exp", "revocation"}); err != nil {
		t.Fatal(err)
	}
}
