package drbac

import (
	"drbac/internal/discovery"
	"drbac/internal/proxy"
	"drbac/internal/remote"
	"drbac/internal/transport"
)

// Network-layer re-exports: the authenticated transport (the Switchboard
// stand-in), remote wallet serving, and distributed discovery (§4.2).
type (
	// Conn is an authenticated framed message channel.
	Conn = transport.Conn
	// Listener accepts authenticated connections.
	Listener = transport.Listener
	// Dialer opens authenticated connections.
	Dialer = transport.Dialer
	// MemNetwork is an in-process network with traffic accounting.
	MemNetwork = transport.MemNetwork
	// NetStats snapshots network traffic counters.
	NetStats = transport.NetStats
	// TCPDialer dials real TCP wallets.
	TCPDialer = transport.TCPDialer
	// WalletServer exposes a wallet over a listener.
	WalletServer = remote.Server
	// WalletClient is a connection to a remote wallet.
	WalletClient = remote.Client
	// DiscoveryAgent performs distributed chain discovery (§4.2.1).
	DiscoveryAgent = discovery.Agent
	// DiscoveryConfig parameterizes a discovery agent.
	DiscoveryConfig = discovery.Config
	// DiscoveryMode selects the cross-wallet search direction.
	DiscoveryMode = discovery.Mode
	// DiscoveryStats accumulates discovery effort.
	DiscoveryStats = discovery.Stats
	// WalletProxy is a pull-through, subscription-coherent wallet cache
	// (the §6 hierarchical validation caches).
	WalletProxy = proxy.Proxy
	// WalletProxyConfig parameterizes a WalletProxy.
	WalletProxyConfig = proxy.Config
)

// Discovery modes.
const (
	DiscoverAuto        = discovery.Auto
	DiscoverForwardOnly = discovery.ForwardOnly
	DiscoverReverseOnly = discovery.ReverseOnly
)

// Transport errors.
var (
	// ErrTransportClosed reports use of a closed connection or listener.
	ErrTransportClosed = transport.ErrClosed
	// ErrHandshake reports failed peer authentication.
	ErrHandshake = transport.ErrHandshake
)

// NewMemNetwork builds an in-process network for tests and simulations.
func NewMemNetwork() *MemNetwork { return transport.NewMemNetwork() }

// ListenTCP starts an authenticated TCP listener as identity id.
func ListenTCP(addr string, id *Identity) (Listener, error) {
	return transport.ListenTCP(addr, id)
}

// ServeWallet exposes w on ln until the returned server is closed.
func ServeWallet(w *Wallet, ln Listener) *WalletServer { return remote.Serve(w, ln) }

// DialWallet connects to a remote wallet at addr.
func DialWallet(d Dialer, addr string) (*WalletClient, error) { return remote.Dial(d, addr) }

// NewDiscoveryAgent builds a distributed discovery agent over a local
// wallet.
func NewDiscoveryAgent(cfg DiscoveryConfig) *DiscoveryAgent { return discovery.NewAgent(cfg) }

// Discover is a convenience one-shot discovery: it builds a transient
// agent, registers the given tags, and finds a proof for q.
func Discover(local *Wallet, d Dialer, q Query, tags map[Subject]DiscoveryTag) (*Proof, error) {
	agent := discovery.NewAgent(discovery.Config{Local: local, Dialer: d})
	defer agent.Close()
	for node, tag := range tags {
		agent.RegisterTag(node, tag)
	}
	return agent.Discover(q, discovery.Auto, nil)
}

// NewWalletProxy builds a hierarchical caching proxy over a local cache
// wallet and an upstream wallet connection.
func NewWalletProxy(cfg WalletProxyConfig) (*WalletProxy, error) { return proxy.New(cfg) }
