package drbac

import (
	"context"

	"drbac/internal/discovery"
	"drbac/internal/peer"
	"drbac/internal/proxy"
	"drbac/internal/remote"
	"drbac/internal/replica"
	"drbac/internal/transport"
)

// Network-layer re-exports: the authenticated transport (the Switchboard
// stand-in), remote wallet serving, and distributed discovery (§4.2).
type (
	// Conn is an authenticated framed message channel.
	Conn = transport.Conn
	// Listener accepts authenticated connections.
	Listener = transport.Listener
	// Dialer opens authenticated connections.
	Dialer = transport.Dialer
	// MemNetwork is an in-process network with traffic accounting.
	MemNetwork = transport.MemNetwork
	// NetStats snapshots network traffic counters.
	NetStats = transport.NetStats
	// TCPDialer dials real TCP wallets.
	TCPDialer = transport.TCPDialer
	// WalletServer exposes a wallet over a listener.
	WalletServer = remote.Server
	// WalletClient is a connection to a remote wallet.
	WalletClient = remote.Client
	// DiscoveryAgent performs distributed chain discovery (§4.2.1).
	DiscoveryAgent = discovery.Agent
	// DiscoveryConfig parameterizes a discovery agent.
	DiscoveryConfig = discovery.Config
	// DiscoveryMode selects the cross-wallet search direction.
	DiscoveryMode = discovery.Mode
	// DiscoveryStats accumulates discovery effort.
	DiscoveryStats = discovery.Stats
	// WalletProxy is a pull-through, subscription-coherent wallet cache
	// (the §6 hierarchical validation caches).
	WalletProxy = proxy.Proxy
	// WalletProxyConfig parameterizes a WalletProxy.
	WalletProxyConfig = proxy.Config
	// PeerManager pools remote-wallet connections with lazy redial, capped
	// exponential backoff, and per-peer circuit breaking.
	PeerManager = peer.Manager
	// PeerConfig parameterizes a PeerManager.
	PeerConfig = peer.Config
	// PeerHealth snapshots one pooled peer's circuit-breaker standing.
	PeerHealth = peer.Health
	// PeerState is a circuit-breaker state (closed, open, half-open).
	PeerState = peer.State
	// FaultPlan is a mutable per-address fault-injection plan for tests.
	FaultPlan = transport.Faults
	// FaultRule describes the failures injected for one address.
	FaultRule = transport.Fault
	// FaultDialer wraps a Dialer with fault injection driven by a FaultPlan.
	FaultDialer = transport.FaultDialer
	// ReplicaFollower drives a wallet as a read-only follower replica of
	// an upstream wallet (§9 subscription-driven replication).
	ReplicaFollower = replica.Follower
	// ReplicaConfig parameterizes a ReplicaFollower.
	ReplicaConfig = replica.Config
	// ReplicaStatus snapshots a follower's replication progress.
	ReplicaStatus = replica.Status
)

// Peer circuit-breaker states.
const (
	PeerStateClosed   = peer.StateClosed
	PeerStateOpen     = peer.StateOpen
	PeerStateHalfOpen = peer.StateHalfOpen
)

// Discovery modes.
const (
	DiscoverAuto        = discovery.Auto
	DiscoverForwardOnly = discovery.ForwardOnly
	DiscoverReverseOnly = discovery.ReverseOnly
)

// Transport and peer-layer errors.
var (
	// ErrTransportClosed reports use of a closed connection or listener.
	ErrTransportClosed = transport.ErrClosed
	// ErrHandshake reports failed peer authentication.
	ErrHandshake = transport.ErrHandshake
	// ErrCircuitOpen reports a fast-failed connection attempt to a peer
	// whose circuit breaker is open.
	ErrCircuitOpen = peer.ErrCircuitOpen
	// ErrFaultInjected marks failures produced by the fault-injection layer.
	ErrFaultInjected = transport.ErrInjected
)

// NewPeerManager builds a pooled connection manager over cfg.Dialer.
func NewPeerManager(cfg PeerConfig) *PeerManager { return peer.NewManager(cfg) }

// NewFaultPlan returns an empty fault-injection plan (no faults anywhere).
func NewFaultPlan() *FaultPlan { return transport.NewFaults() }

// NewMemNetwork builds an in-process network for tests and simulations.
func NewMemNetwork() *MemNetwork { return transport.NewMemNetwork() }

// ListenTCP starts an authenticated TCP listener as identity id.
func ListenTCP(addr string, id *Identity) (Listener, error) {
	return transport.ListenTCP(addr, id)
}

// ServeWallet exposes w on ln until the returned server is closed.
func ServeWallet(w *Wallet, ln Listener) *WalletServer { return remote.Serve(w, ln) }

// DialWallet connects to a remote wallet at addr. Cancellation of ctx
// aborts the connect and authentication handshake.
func DialWallet(ctx context.Context, d Dialer, addr string) (*WalletClient, error) {
	return remote.Dial(ctx, d, addr)
}

// DialWalletAny connects to the first reachable address of a replica group
// (the primary and its read replicas), returning the address that answered.
func DialWalletAny(ctx context.Context, d Dialer, addrs []string) (*WalletClient, string, error) {
	return remote.DialAny(ctx, d, addrs)
}

// SplitWalletAddrs parses a comma-separated replica-group address list.
func SplitWalletAddrs(s string) []string { return remote.SplitAddrs(s) }

// StartReplica launches a follower that replicates an upstream wallet into
// cfg.Local over the subscription stream (§9). Stop it with Close.
func StartReplica(cfg ReplicaConfig) (*ReplicaFollower, error) { return replica.Start(cfg) }

// NewDiscoveryAgent builds a distributed discovery agent over a local
// wallet.
func NewDiscoveryAgent(cfg DiscoveryConfig) *DiscoveryAgent { return discovery.NewAgent(cfg) }

// Discover is a convenience one-shot discovery: it builds a transient
// agent, registers the given tags, and finds a proof for q. Cancellation of
// ctx aborts the search mid-flight, including in-flight peer RPCs.
func Discover(ctx context.Context, local *Wallet, d Dialer, q Query, tags map[Subject]DiscoveryTag) (*Proof, error) {
	agent := discovery.NewAgent(discovery.Config{Local: local, Dialer: d})
	defer agent.Close()
	for node, tag := range tags {
		agent.RegisterTag(node, tag)
	}
	return agent.Discover(ctx, q, discovery.Auto, nil)
}

// NewWalletProxy builds a hierarchical caching proxy over a local cache
// wallet and an upstream wallet connection.
func NewWalletProxy(cfg WalletProxyConfig) (*WalletProxy, error) { return proxy.New(cfg) }
