// Command quickstart walks through the paper's Table 1: the three base
// delegation forms (self-certified, assignment, third-party) and the proof
// that Maria holds BigISP.member.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"drbac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Entities are key pairs; names are informational.
	bigISP, err := drbac.NewIdentity("BigISP")
	if err != nil {
		return err
	}
	mark, err := drbac.NewIdentity("Mark")
	if err != nil {
		return err
	}
	maria, err := drbac.NewIdentity("Maria")
	if err != nil {
		return err
	}
	dir := drbac.NewDirectory(bigISP.Entity(), mark.Entity(), maria.Entity())
	pr := drbac.Printer{Dir: dir}
	now := time.Now()

	issue := func(issuer *drbac.Identity, text string) (*drbac.Delegation, error) {
		parsed, err := drbac.ParseDelegation(text, dir)
		if err != nil {
			return nil, err
		}
		return drbac.Issue(issuer, parsed.Template, now)
	}

	// Table 1 delegation (1): self-certified — BigISP grants Mark the
	// memberServices role from its own namespace.
	d1, err := issue(bigISP, "[Mark -> BigISP.memberServices] BigISP")
	if err != nil {
		return err
	}
	// Table 1 delegation (2): assignment — memberServices holders receive
	// the right to hand out BigISP.member (note the tick).
	d2, err := issue(bigISP, "[BigISP.memberServices -> BigISP.member'] BigISP")
	if err != nil {
		return err
	}
	// Table 1 delegation (3): third-party — Mark, not BigISP, signs
	// Maria's membership; (1)+(2) form his support proof.
	d3, err := issue(mark, "[Maria -> BigISP.member] Mark")
	if err != nil {
		return err
	}
	for i, d := range []*drbac.Delegation{d1, d2, d3} {
		fmt.Printf("(%d) %-14s %s\n", i+1, d.Kind().String()+":", pr.Delegation(d))
	}

	// A wallet validates third-party publications against support proofs;
	// here it derives Mark => BigISP.member' from (1) and (2) itself.
	w := drbac.NewWallet(drbac.WalletConfig{Directory: dir})
	for _, d := range []*drbac.Delegation{d1, d2, d3} {
		if err := w.Publish(d); err != nil {
			return fmt.Errorf("publish: %w", err)
		}
	}

	// The key question (§2): does principal Maria have the permissions of
	// role BigISP.member?
	proof, err := w.QueryDirect(drbac.Query{
		Subject: drbac.SubjectEntity(maria.ID()),
		Object:  drbac.NewRole(bigISP.ID(), "member"),
	})
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	fmt.Println("\nproof that Maria => BigISP.member:")
	fmt.Print(pr.Proof(proof))

	// Revoking the support chain invalidates the relationship.
	if err := w.Revoke(d1.ID(), bigISP.ID()); err != nil {
		return err
	}
	_, err = w.QueryDirect(drbac.Query{
		Subject: drbac.SubjectEntity(maria.ID()),
		Object:  drbac.NewRole(bigISP.ID(), "member"),
	})
	fmt.Printf("\nafter revoking (1): %v\n", err)
	return nil
}
