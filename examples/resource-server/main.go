// Command resource-server shows the DisCo application layer (§1 "Project
// Context"): a service registers a protected resource with base service
// levels, authorizes principals into monitored sessions with modulated
// allocations, throttles work by the session's bandwidth level, and cuts
// the session the moment its authorization is revoked.
//
//	go run ./examples/resource-server
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"drbac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	airNet, err := drbac.NewIdentity("AirNet")
	if err != nil {
		return err
	}
	sheila, err := drbac.NewIdentity("Sheila")
	if err != nil {
		return err
	}
	bigISP, err := drbac.NewIdentity("BigISP")
	if err != nil {
		return err
	}
	maria, err := drbac.NewIdentity("Maria")
	if err != nil {
		return err
	}
	dir := drbac.NewDirectory(airNet.Entity(), sheila.Entity(), bigISP.Entity(), maria.Entity())
	now := time.Now()
	issue := func(issuer *drbac.Identity, text string) (*drbac.Delegation, error) {
		parsed, err := drbac.ParseDelegation(text, dir)
		if err != nil {
			return nil, err
		}
		return drbac.Issue(issuer, parsed.Template, now)
	}

	// The server's trusted wallet, loaded with the coalition credentials.
	w := drbac.NewWallet(drbac.WalletConfig{Directory: dir})
	for issuer, texts := range map[*drbac.Identity][]string{
		bigISP: {"[Maria -> BigISP.member] BigISP"},
		airNet: {
			"[Sheila -> AirNet.mktg] AirNet",
			"[AirNet.mktg -> AirNet.member'] AirNet",
			"[AirNet.member -> AirNet.access with AirNet.BW <= 200] AirNet",
		},
	} {
		for _, text := range texts {
			d, err := issue(issuer, text)
			if err != nil {
				return err
			}
			if err := w.Publish(d); err != nil {
				return err
			}
		}
	}
	coalition, err := issue(sheila,
		"[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20 and AirNet.hours *= 0.3] Sheila")
	if err != nil {
		return err
	}
	if err := w.Publish(coalition); err != nil {
		return err
	}

	// Register the protected resource: access requires AirNet.access, at
	// least 50 units of bandwidth, evaluated against AirNet's baselines.
	bw := drbac.AttributeRef{Namespace: airNet.ID(), Name: "BW"}
	storage := drbac.AttributeRef{Namespace: airNet.ID(), Name: "storage"}
	hours := drbac.AttributeRef{Namespace: airNet.ID(), Name: "hours"}

	guard, err := drbac.NewGuard(drbac.GuardConfig{Wallet: w})
	if err != nil {
		return err
	}
	defer guard.Close()
	if err := guard.Register(drbac.ProtectedResource{
		Name:     "wifi",
		Role:     drbac.NewRole(airNet.ID(), "access"),
		Bases:    map[drbac.AttributeRef]float64{storage: 50, hours: 60},
		Minimums: map[drbac.AttributeRef]float64{bw: 50},
	}); err != nil {
		return err
	}

	// Maria connects; the guard runs the dRBAC pipeline and opens a
	// monitored session with her modulated allocation.
	down := make(chan drbac.SessionEvent, 1)
	session, err := guard.Authorize(context.Background(), maria.ID(), "wifi", func(ev drbac.SessionEvent) {
		if ev.Kind == drbac.SessionTerminated {
			down <- ev
		}
	})
	if err != nil {
		return fmt.Errorf("authorize: %w", err)
	}
	defer session.Close()
	fmt.Printf("session for Maria on %q:\n", session.ResourceName())
	fmt.Printf("  bandwidth: %v units\n", session.Level(bw))
	fmt.Printf("  storage:   %v units\n", session.Level(storage))
	fmt.Printf("  hours:     %v per month\n", session.Level(hours))

	// Serve "traffic" paced by her bandwidth level until the coalition is
	// torn down.
	served := 0
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
	revokeAt := time.After(100 * time.Millisecond)
	for session.Active() {
		select {
		case <-ticker.C:
			served += int(session.Level(bw))
			fmt.Printf("  served %d units so far\n", served)
		case <-revokeAt:
			fmt.Println("Sheila dissolves the partnership...")
			if err := w.Revoke(coalition.ID(), sheila.ID()); err != nil {
				return err
			}
		case <-down:
			fmt.Println("session terminated by monitor — disconnecting Maria")
		}
	}
	fmt.Printf("final: served %d units; active sessions: %d\n", served, guard.ActiveSessions())
	return nil
}
