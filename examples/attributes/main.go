// Command attributes demonstrates the paper's Table 2 extensions: valued
// attributes that modulate access levels monotonically along delegation
// chains, and delegation of the right to set an attribute.
//
//	go run ./examples/attributes
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"drbac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	airNet, err := drbac.NewIdentity("AirNet")
	if err != nil {
		return err
	}
	bigISP, err := drbac.NewIdentity("BigISP")
	if err != nil {
		return err
	}
	sheila, err := drbac.NewIdentity("Sheila")
	if err != nil {
		return err
	}
	maria, err := drbac.NewIdentity("Maria")
	if err != nil {
		return err
	}
	dir := drbac.NewDirectory(airNet.Entity(), bigISP.Entity(), sheila.Entity(), maria.Entity())
	pr := drbac.Printer{Dir: dir}
	now := time.Now()

	issue := func(issuer *drbac.Identity, text string) (*drbac.Delegation, error) {
		parsed, err := drbac.ParseDelegation(text, dir)
		if err != nil {
			return nil, err
		}
		return drbac.Issue(issuer, parsed.Template, now)
	}

	// A strict wallet enforces that only entities holding an attribute's
	// assignment right may set it (Table 2, "Delegation of Assignment for
	// Valued Attributes").
	w := drbac.NewWallet(drbac.WalletConfig{Directory: dir, StrictAttributes: true})

	// AirNet builds Sheila's authority: the marketing role, the member
	// assignment right, and the rights to set each valued attribute.
	for _, text := range []string{
		"[Sheila -> AirNet.mktg] AirNet",
		"[AirNet.mktg -> AirNet.member'] AirNet",
		"[AirNet.mktg -> AirNet.BW <= '] AirNet",      // Table 2 example (5) pattern
		"[AirNet.mktg -> AirNet.storage -= '] AirNet", // Table 2 example (5)
		"[AirNet.mktg -> AirNet.hours *= '] AirNet",
	} {
		d, err := issue(airNet, text)
		if err != nil {
			return err
		}
		if err := w.Publish(d); err != nil {
			return fmt.Errorf("publish %q: %w", text, err)
		}
		fmt.Println(pr.Delegation(d))
	}

	// Table 2 example (4): Sheila modulates the coalition's access level.
	d4, err := issue(sheila,
		"[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20 and AirNet.hours *= 0.3] Sheila")
	if err != nil {
		return err
	}
	if err := w.Publish(d4); err != nil {
		return fmt.Errorf("publish coalition: %w", err)
	}
	fmt.Println(pr.Delegation(d4))

	// AirNet's resource policy and Maria's membership.
	for issuer, text := range map[*drbac.Identity]string{
		airNet: "[AirNet.member -> AirNet.access with AirNet.BW <= 200] AirNet",
		bigISP: "[Maria -> BigISP.member] BigISP",
	} {
		d, err := issue(issuer, text)
		if err != nil {
			return err
		}
		if err := w.Publish(d); err != nil {
			return err
		}
		fmt.Println(pr.Delegation(d))
	}

	// Query with a bandwidth floor; aggregate the chain's modifiers.
	bw := drbac.AttributeRef{Namespace: airNet.ID(), Name: "BW"}
	storage := drbac.AttributeRef{Namespace: airNet.ID(), Name: "storage"}
	hours := drbac.AttributeRef{Namespace: airNet.ID(), Name: "hours"}

	proof, err := w.QueryDirect(drbac.Query{
		Subject: drbac.SubjectEntity(maria.ID()),
		Object:  drbac.NewRole(airNet.ID(), "access"),
		Constraints: []drbac.Constraint{
			{Attr: bw, Base: math.Inf(1), Minimum: 50},
		},
	})
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	ag, err := proof.Aggregate()
	if err != nil {
		return err
	}
	fmt.Println("\nMaria's modulated access (§5 outcomes):")
	fmt.Printf("  bandwidth: %v units  (min of 100 and 200)\n", ag.Value(bw, math.Inf(1)))
	fmt.Printf("  storage:   %v units  (base 50 - 20)\n", ag.Value(storage, 50))
	fmt.Printf("  hours:     %v /month (base 60 * 0.3)\n", ag.Value(hours, 60))

	// Monotonicity means no chain extension can raise values: a query
	// demanding more bandwidth than the chain allows finds no proof.
	_, err = w.QueryDirect(drbac.Query{
		Subject: drbac.SubjectEntity(maria.ID()),
		Object:  drbac.NewRole(airNet.ID(), "access"),
		Constraints: []drbac.Constraint{
			{Attr: bw, Base: math.Inf(1), Minimum: 150},
		},
	})
	fmt.Printf("\nquery demanding BW >= 150: %v\n", err)
	return nil
}
