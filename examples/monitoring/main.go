// Command monitoring contrasts dRBAC's delegation subscriptions (§4.2.2,
// §6) with OCSP-style polling and CRL-style broadcast over a simulated
// long-lived session, printing the measured message and byte costs of each
// scheme, then demonstrates a live proof monitor surviving a revocation
// through an alternate credential.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"time"

	"drbac"
	"drbac/internal/revocation"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Measured scheme comparison (EXP-S3) ------------------------------
	params := revocation.Params{
		Clients:     8,
		Credentials: 16,
		Steps:       2000, // a long-lived session
		PollEvery:   5,
		CRLEvery:    10,
		RevokeAt:    []int{401, 1203},
	}
	results, err := revocation.RunAll(params)
	if err != nil {
		return err
	}
	fmt.Printf("session: %d clients x %d credentials, %d steps, %d revocations\n\n",
		params.Clients, params.Credentials, params.Steps, len(params.RevokeAt))
	fmt.Printf("%-14s %10s %12s %14s %10s\n", "scheme", "messages", "bytes", "notifications", "staleness")
	for _, r := range results {
		fmt.Printf("%-14s %10d %12d %14d %10d\n",
			r.Scheme, r.Messages, r.Bytes, r.Notifications, r.StalenessSteps)
	}

	// --- A live monitor riding out a revocation ----------------------------
	fmt.Println("\nlive monitor with an alternate credential:")
	bigISP, err := drbac.NewIdentity("BigISP")
	if err != nil {
		return err
	}
	maria, err := drbac.NewIdentity("Maria")
	if err != nil {
		return err
	}
	dir := drbac.NewDirectory(bigISP.Entity(), maria.Entity())
	w := drbac.NewWallet(drbac.WalletConfig{Directory: dir})

	member := drbac.NewRole(bigISP.ID(), "member")
	now := time.Now()
	var creds []*drbac.Delegation
	for i := 0; i < 2; i++ {
		d, err := drbac.Issue(bigISP, drbac.Template{
			Subject:       drbac.SubjectEntity(maria.ID()),
			SubjectEntity: ptr(maria.Entity()),
			Object:        member,
		}, now)
		if err != nil {
			return err
		}
		if err := w.Publish(d); err != nil {
			return err
		}
		creds = append(creds, d)
	}

	events := make(chan drbac.MonitorEvent, 2)
	mon, err := w.Monitor(drbac.Query{
		Subject: drbac.SubjectEntity(maria.ID()),
		Object:  member,
	}, func(ev drbac.MonitorEvent) { events <- ev })
	if err != nil {
		return err
	}
	defer mon.Close()
	fmt.Println("  session established on credential", mon.Proof().Steps[0].Delegation.ID().Short())

	for i, d := range creds {
		if err := w.Revoke(d.ID(), bigISP.ID()); err != nil {
			return err
		}
		ev := <-events
		fmt.Printf("  revocation %d -> monitor %v", i+1, ev.Kind)
		if ev.Kind == drbac.MonitorReproved {
			fmt.Printf(" (now on %s)", ev.Proof.Steps[0].Delegation.ID().Short())
		}
		fmt.Println()
	}
	fmt.Printf("  session valid: %v\n", mon.Valid())
	return nil
}

func ptr[T any](v T) *T { return &v }
