// Command coalition runs the paper's §5 case study end to end over real
// TCP: BigISP's and AirNet's home wallets as servers, an AirNet access
// server with a local wallet and discovery agent, distributed proof
// construction (Figure 2 steps 1-6), continuous monitoring, and a live
// revocation that tears the session down.
//
//	go run ./examples/coalition
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"drbac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ids := make(map[string]*drbac.Identity)
	dir := drbac.NewDirectory()
	for _, name := range []string{"BigISP", "AirNet", "Sheila", "Maria"} {
		id, err := drbac.NewIdentity(name)
		if err != nil {
			return err
		}
		ids[name] = id
		dir.Add(id.Entity())
	}
	pr := drbac.Printer{Dir: dir}
	now := time.Now()

	issue := func(issuer string, text string, objTag *drbac.DiscoveryTag) (*drbac.Delegation, error) {
		parsed, err := drbac.ParseDelegation(text, dir)
		if err != nil {
			return nil, err
		}
		parsed.Template.ObjectTag = objTag
		return drbac.Issue(ids[issuer], parsed.Template, now)
	}

	// --- Home wallets as real TCP servers --------------------------------
	bigISPWallet := drbac.NewWallet(drbac.WalletConfig{Owner: ids["BigISP"], Directory: dir})
	bigISPLn, err := drbac.ListenTCP("127.0.0.1:0", ids["BigISP"])
	if err != nil {
		return err
	}
	defer drbac.ServeWallet(bigISPWallet, bigISPLn).Close()

	airNetWallet := drbac.NewWallet(drbac.WalletConfig{Owner: ids["AirNet"], Directory: dir})
	airNetLn, err := drbac.ListenTCP("127.0.0.1:0", ids["AirNet"])
	if err != nil {
		return err
	}
	defer drbac.ServeWallet(airNetWallet, airNetLn).Close()

	fmt.Printf("BigISP home wallet: %s\nAirNet home wallet: %s\n\n", bigISPLn.Addr(), airNetLn.Addr())

	memberTag := &drbac.DiscoveryTag{
		Home: bigISPLn.Addr(), TTL: 30 * time.Second, Subject: drbac.SubjectSearch,
	}
	airMemberTag := &drbac.DiscoveryTag{
		Home: airNetLn.Addr(), TTL: 30 * time.Second, Subject: drbac.SubjectSearch,
	}

	// --- Table 3 delegations in their home wallets ------------------------
	// (1) Maria's membership, carried by her laptop.
	d1, err := issue("BigISP", "[Maria -> BigISP.member] BigISP", memberTag)
	if err != nil {
		return err
	}
	// (3),(4): Sheila's authority — the support proof for (2).
	d3, err := issue("AirNet", "[Sheila -> AirNet.mktg] AirNet", nil)
	if err != nil {
		return err
	}
	d4, err := issue("AirNet", "[AirNet.mktg -> AirNet.member'] AirNet", nil)
	if err != nil {
		return err
	}
	sup, err := drbac.NewProof(drbac.ProofStep{Delegation: d3}, drbac.ProofStep{Delegation: d4})
	if err != nil {
		return err
	}
	// (2) the coalition, stored in BigISP's wallet with its support proof.
	parsed, err := drbac.ParseDelegation(
		"[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20 and AirNet.hours *= 0.3] Sheila", dir)
	if err != nil {
		return err
	}
	parsed.Template.SubjectTag = memberTag
	parsed.Template.ObjectTag = airMemberTag
	d2, err := drbac.Issue(ids["Sheila"], parsed.Template, now)
	if err != nil {
		return err
	}
	if err := bigISPWallet.Publish(d2, sup); err != nil {
		return fmt.Errorf("publish (2): %w", err)
	}
	// (5) AirNet's access policy, in AirNet's wallet.
	parsed, err = drbac.ParseDelegation("[AirNet.member -> AirNet.access with AirNet.BW <= 200] AirNet", dir)
	if err != nil {
		return err
	}
	parsed.Template.SubjectTag = airMemberTag
	d5, err := drbac.Issue(ids["AirNet"], parsed.Template, now)
	if err != nil {
		return err
	}
	if err := airNetWallet.Publish(d5); err != nil {
		return fmt.Errorf("publish (5): %w", err)
	}

	// --- The AirNet access server -----------------------------------------
	serverID, err := drbac.NewIdentity("AirNetServer")
	if err != nil {
		return err
	}
	dir.Add(serverID.Entity())
	serverWallet := drbac.NewWallet(drbac.WalletConfig{Owner: serverID, Directory: dir})
	agent := drbac.NewDiscoveryAgent(drbac.DiscoveryConfig{
		Local:  serverWallet,
		Dialer: &drbac.TCPDialer{Identity: serverID},
	})
	defer agent.Close()

	// Step 1: Maria's laptop authenticates and presents delegation (1).
	if err := serverWallet.Publish(d1); err != nil {
		return fmt.Errorf("accept (1): %w", err)
	}
	agent.Learn(d1)
	fmt.Println("step 1: received", pr.Delegation(d1))

	// Steps 2-5: distributed proof construction.
	bw := drbac.AttributeRef{Namespace: ids["AirNet"].ID(), Name: "BW"}
	storage := drbac.AttributeRef{Namespace: ids["AirNet"].ID(), Name: "storage"}
	hours := drbac.AttributeRef{Namespace: ids["AirNet"].ID(), Name: "hours"}
	query := drbac.Query{
		Subject: drbac.SubjectEntity(ids["Maria"].ID()),
		Object:  drbac.NewRole(ids["AirNet"].ID(), "access"),
		Constraints: []drbac.Constraint{
			{Attr: bw, Base: math.Inf(1), Minimum: 50},
		},
	}
	var stats drbac.DiscoveryStats
	proof, err := agent.Discover(context.Background(), query, drbac.DiscoverAuto, &stats)
	if err != nil {
		return fmt.Errorf("discovery: %w", err)
	}
	for _, ev := range stats.Trace {
		fmt.Printf("step 3/4: round %d, %s query at %s for %s -> %d proof(s)\n",
			ev.Round, ev.Kind, ev.Wallet, ev.Node, ev.Results)
	}
	fmt.Println("step 5: proof assembled locally:")
	fmt.Print(pr.Proof(proof))

	ag, err := proof.Aggregate()
	if err != nil {
		return err
	}
	fmt.Printf("granting access: BW=%v (<=200), storage=%v (=50-20), hours=%v (=60*0.3)\n\n",
		ag.Value(bw, math.Inf(1)), ag.Value(storage, 50), ag.Value(hours, 60))

	// Step 6: wrap in a proof monitor and bridge home-wallet subscriptions.
	sessionDown := make(chan drbac.MonitorEvent, 1)
	mon, err := serverWallet.MonitorProof(query, proof, func(ev drbac.MonitorEvent) {
		sessionDown <- ev
	})
	if err != nil {
		return err
	}
	defer mon.Close()
	cancel, err := agent.Bridge(context.Background(), proof)
	if err != nil {
		return err
	}
	defer cancel()
	fmt.Println("step 6: session up, monitoring", len(proof.Delegations()), "delegations")

	// The partnership ends: Sheila revokes (2) at BigISP's home wallet.
	fmt.Println("\nSheila revokes the coalition delegation (2)...")
	if err := bigISPWallet.Revoke(d2.ID(), ids["Sheila"].ID()); err != nil {
		return err
	}
	select {
	case ev := <-sessionDown:
		fmt.Printf("monitor: %v (cause: delegation %s %s) — disconnecting Maria\n",
			ev.Kind, ev.Cause.Delegation.Short(), ev.Cause.Kind)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("revocation never reached the access server")
	}
	return nil
}
