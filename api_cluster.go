package drbac

import (
	"drbac/internal/cluster"
	"drbac/internal/remote"
	"drbac/internal/wallet"
)

// Sharded-cluster re-exports (§12): a consistent-hash shard map with
// epoch-versioned membership, a gateway wallet that routes mutations to
// owning shards and assembles cross-shard proofs, and live resharding
// over the changelog.
type (
	// ShardMap is a versioned consistent-hash map of delegation subject
	// keys to shards. Immutable; resharding builds a bumped-epoch copy.
	ShardMap = cluster.Map
	// Shard is one shard's ID and replica-group addresses.
	Shard = cluster.Shard
	// ClusterNode is one shard member's cluster view: it guards a wallet
	// server with epoch advertisement and mis-route redirects.
	ClusterNode = cluster.Node
	// ClusterRouter routes mutations to owning shards and self-heals from
	// epoch drift by adopting redirect-carried maps.
	ClusterRouter = cluster.Router
	// ClusterRouterConfig parameterizes a ClusterRouter.
	ClusterRouterConfig = cluster.RouterConfig
	// ClusterWallet presents an N-shard cluster as one logical wallet:
	// it satisfies WalletService, so serving, proxying, and the CLI run
	// on top of it unchanged.
	ClusterWallet = cluster.Wallet
	// ClusterWalletConfig parameterizes a ClusterWallet.
	ClusterWalletConfig = cluster.WalletConfig
	// ShardSplit is a live shard split riding the changelog: a filtered
	// replay populates the new shard while the source keeps serving.
	ShardSplit = cluster.Split
	// ShardSplitConfig parameterizes StartShardSplit.
	ShardSplitConfig = cluster.SplitConfig
	// WalletService is the serving interface a wallet exposes over the
	// wire: both *Wallet and *ClusterWallet satisfy it.
	WalletService = wallet.Service
	// ClusterGuard hooks shard-map enforcement into a wallet server.
	ClusterGuard = remote.ClusterGuard
	// ShardRedirectError is a cluster refusal carrying the owning shard's
	// replica group and the fresh map.
	ShardRedirectError = remote.RedirectError
)

// NewShardMap builds an epoch-1 map spreading ownership uniformly over
// the given replica groups (shard i gets addrs groups[i]).
func NewShardMap(groups [][]string) (*ShardMap, error) { return cluster.Uniform(groups) }

// ParseShardMap decodes a serialized shard map and validates it.
func ParseShardMap(raw []byte) (*ShardMap, error) { return cluster.ParseMap(raw) }

// ShardRouteKey is the consistent-hash routing key of a delegation
// subject: delegations rooted at the same node always share a shard.
func ShardRouteKey(s Subject) string { return cluster.RouteKey(s) }

// NewClusterNode builds shard id's member view of m, servable via
// ServeWalletCluster.
func NewClusterNode(id int, m *ShardMap, o *Obs) (*ClusterNode, error) {
	return cluster.NewNode(id, m, o)
}

// NewClusterWallet builds a gateway wallet over the shard map: mutations
// route to owning shards, cross-shard proofs are assembled with the
// distributed-discovery machinery, and redirects self-heal stale maps.
func NewClusterWallet(cfg ClusterWalletConfig) (*ClusterWallet, error) {
	return cluster.NewWallet(cfg)
}

// ServeWalletCluster exposes w on ln as a cluster participant: guard is a
// *ClusterNode for a shard member (or ClusterWallet.Guard() for a served
// gateway), advertised on connect and enforced on mutations.
func ServeWalletCluster(w WalletService, ln Listener, guard ClusterGuard) *WalletServer {
	return remote.ServeOptions(w, ln, remote.Options{Obs: w.Obs(), Cluster: guard})
}

// StartShardSplit begins carving a new shard out of cfg.SourceID by
// filtered changelog replay (§12): the returned split's WaitCaughtUp, map
// adoption, and Finish sequence completes a zero-loss live reshard.
func StartShardSplit(cfg ShardSplitConfig) (*ShardSplit, error) { return cluster.StartSplit(cfg) }
