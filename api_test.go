package drbac_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"drbac"
)

// Exercise the thin facade wrappers end to end so the public API surface
// stays wired to the internals.
func TestFacadeCoreHelpers(t *testing.T) {
	ids, dir := newCoalition(t)

	role, err := drbac.ParseRole("BigISP.member'", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !role.IsAssignment() {
		t.Fatal("tick lost")
	}
	subj, err := drbac.ParseSubject("Maria", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !subj.IsEntity() {
		t.Fatal("subject kind wrong")
	}
	if got := drbac.DisplayID(dir, ids["Maria"].ID()); got != "Maria" {
		t.Fatalf("DisplayID = %q", got)
	}

	seed := make([]byte, 32)
	seed[0] = 42
	a, err := drbac.IdentityFromSeed("Det", seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := drbac.IdentityFromSeed("Det", seed)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Fatal("seeded identities differ")
	}

	d := issue(t, ids, dir, "[Maria -> BigISP.member] BigISP")
	proof, err := drbac.NewProof(drbac.ProofStep{Delegation: d})
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.Validate(drbac.ValidateOptions{At: time.Now()}); err != nil {
		t.Fatal(err)
	}
	ag := drbac.NewAggregate()
	if len(ag.Attrs()) != 0 {
		t.Fatal("fresh aggregate not empty")
	}
	if drbac.SystemClock().Now().IsZero() {
		t.Fatal("system clock zero")
	}
	if d.Kind() != drbac.KindSelfCertified {
		t.Fatal("kind constant mismatch")
	}
}

func TestFacadeGuardFlow(t *testing.T) {
	ids, dir := newCoalition(t)
	w := drbac.NewWallet(drbac.WalletConfig{Directory: dir})
	bw := drbac.AttributeRef{Namespace: ids["AirNet"].ID(), Name: "BW"}
	d := issue(t, ids, dir, "[Maria -> AirNet.access with AirNet.BW <= 80] AirNet")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	guard, err := drbac.NewGuard(drbac.GuardConfig{Wallet: w})
	if err != nil {
		t.Fatal(err)
	}
	defer guard.Close()
	if err := guard.Register(drbac.ProtectedResource{
		Name:     "net",
		Role:     drbac.NewRole(ids["AirNet"].ID(), "access"),
		Minimums: map[drbac.AttributeRef]float64{bw: 50},
	}); err != nil {
		t.Fatal(err)
	}
	events := make(chan drbac.SessionEvent, 1)
	s, err := guard.Authorize(context.Background(), ids["Maria"].ID(), "net", func(ev drbac.SessionEvent) {
		events <- ev
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Level(bw); got != 80 {
		t.Fatalf("level = %v", got)
	}
	if err := w.Revoke(d.ID(), ids["AirNet"].ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Kind != drbac.SessionTerminated {
			t.Fatalf("event = %v", ev.Kind)
		}
	case <-time.After(time.Second):
		t.Fatal("no event")
	}
}

func TestFacadeProxyFlow(t *testing.T) {
	ids, dir := newCoalition(t)
	net := drbac.NewMemNetwork()

	home := drbac.NewWallet(drbac.WalletConfig{Owner: ids["AirNet"], Directory: dir})
	ln, err := net.Listen("home", ids["AirNet"])
	if err != nil {
		t.Fatal(err)
	}
	defer drbac.ServeWallet(home, ln).Close()
	d := issue(t, ids, dir, "[Maria -> AirNet.access] AirNet")
	if err := home.Publish(d); err != nil {
		t.Fatal(err)
	}

	up, err := drbac.DialWallet(context.Background(), net.Dialer(ids["Sheila"]), "home")
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	cache := drbac.NewWallet(drbac.WalletConfig{Owner: ids["Sheila"], Directory: dir})
	px, err := drbac.NewWalletProxy(drbac.WalletProxyConfig{
		Local: cache, Upstream: up, TTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	if _, err := px.QueryDirect(context.Background(), drbac.Query{
		Subject: drbac.SubjectEntity(ids["Maria"].ID()),
		Object:  drbac.NewRole(ids["AirNet"].ID(), "access"),
	}); err != nil {
		t.Fatal(err)
	}
	hits, pulls := px.Stats()
	if hits != 0 || pulls != 1 {
		t.Fatalf("hits=%d pulls=%d", hits, pulls)
	}
	if st := net.Stats(); st.Messages == 0 {
		t.Fatal("no traffic accounted")
	}
}

func TestFacadeErrorsAndFakeClockAliases(t *testing.T) {
	if !errors.Is(drbac.ErrNoProof, drbac.ErrNoProof) {
		t.Fatal("sentinel identity broken")
	}
	clk := drbac.NewFakeClock(time.Unix(0, 0))
	clk.Advance(time.Hour)
	if clk.Now() != time.Unix(0, 0).Add(time.Hour) {
		t.Fatal("fake clock alias broken")
	}
	var _ drbac.EventKind = drbac.EventRevoked
	var _ drbac.SearchDirection = drbac.SearchBidirectional
	var _ drbac.DiscoveryMode = drbac.DiscoverForwardOnly
}

// TestFacadeClusterFlow drives the sharded-cluster facade end to end: a
// two-shard cluster behind a gateway, a mutation routed by consistent
// hash, a cross-shard query, and a live split to a third shard.
func TestFacadeClusterFlow(t *testing.T) {
	ids, dir := newCoalition(t)
	net := drbac.NewMemNetwork()

	m, err := drbac.NewShardMap([][]string{{"shard0"}, {"shard1"}})
	if err != nil {
		t.Fatal(err)
	}
	wallets := make(map[int]*drbac.Wallet)
	for _, s := range m.Shards {
		w := drbac.NewWallet(drbac.WalletConfig{Owner: ids["BigISP"], Directory: dir})
		node, err := drbac.NewClusterNode(s.ID, m, w.Obs())
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen(s.Addrs[0], ids["BigISP"])
		if err != nil {
			t.Fatal(err)
		}
		srv := drbac.ServeWalletCluster(w, ln, node)
		defer srv.Close()
		wallets[s.ID] = w
	}

	gw, err := drbac.NewClusterWallet(drbac.ClusterWalletConfig{
		Map:      m,
		Dialer:   net.Dialer(ids["Maria"]),
		Identity: ids["Maria"],
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	d := issue(t, ids, dir, "[Maria -> BigISP.member] BigISP")
	if err := gw.Publish(d); err != nil {
		t.Fatal(err)
	}
	owner := m.OwnerOf(d)
	if !wallets[owner.ID].Contains(d.ID()) {
		t.Fatalf("delegation not at owner shard %d", owner.ID)
	}
	if drbac.ShardRouteKey(d.Subject) == "" {
		t.Fatal("empty route key")
	}

	subj, err := drbac.ParseSubject("Maria", dir)
	if err != nil {
		t.Fatal(err)
	}
	role, err := drbac.ParseRole("BigISP.member", dir)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := gw.QueryDirect(drbac.Query{Subject: subj, Object: role})
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.Validate(drbac.ValidateOptions{At: time.Now()}); err != nil {
		t.Fatal(err)
	}

	// Live split via the facade: shard 2 carved out of shard 0.
	target := drbac.NewWallet(drbac.WalletConfig{Owner: ids["BigISP"], Directory: dir})
	split, err := drbac.StartShardSplit(drbac.ShardSplitConfig{
		Current:  m,
		SourceID: 0,
		NewID:    2,
		NewAddrs: []string{"shard2"},
		Target:   target,
		Dialer:   net.Dialer(ids["BigISP"]),
		Peers:    drbac.NewPeerManager(drbac.PeerConfig{Dialer: net.Dialer(ids["BigISP"])}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := split.WaitCaughtUp(ctx, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	split.Finish()
	if split.NewMap.Epoch != m.Epoch+1 {
		t.Fatalf("split epoch %d, want %d", split.NewMap.Epoch, m.Epoch+1)
	}
}
