module drbac

go 1.22
