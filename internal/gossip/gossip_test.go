package gossip

import (
	"sync"
	"testing"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/transport"
	"drbac/internal/wallet"
	"drbac/internal/wire"
)

var testStart = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// verdictLog records OnVerdict calls thread-safely.
type verdictLog struct {
	mu sync.Mutex
	vs []string
}

func (v *verdictLog) add(addr string, alive bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	s := addr + ":down"
	if alive {
		s = addr + ":up"
	}
	v.vs = append(v.vs, s)
}

func (v *verdictLog) has(want string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, s := range v.vs {
		if s == want {
			return true
		}
	}
	return false
}

type testEnv struct {
	t   *testing.T
	clk *clock.Fake
	net *transport.MemNetwork
}

type gossipNode struct {
	id       *core.Identity
	addr     string
	node     *Node
	server   *remote.Server
	ln       transport.Listener
	verdicts *verdictLog
	// plan injects faults on this node's OUTBOUND dials, keyed by target.
	plan *transport.Faults
}

func newTestEnv(t *testing.T) *testEnv {
	return &testEnv{t: t, clk: clock.NewFake(testStart), net: transport.NewMemNetwork()}
}

func (e *testEnv) start(name string, n byte) *gossipNode {
	e.t.Helper()
	seed := make([]byte, 32)
	seed[0] = n
	copy(seed[1:], name)
	id, err := core.IdentityFromSeed(name, seed)
	if err != nil {
		e.t.Fatal(err)
	}
	addr := "wallet." + name
	vlog := &verdictLog{}
	plan := transport.NewFaults()
	peers := peer.NewManager(peer.Config{
		Dialer:      &transport.FaultDialer{Inner: e.net.Dialer(id), Plan: plan},
		Clock:       e.clk,
		CallTimeout: 5 * time.Second,
	})
	node, err := NewNode(Config{
		SelfAddr:       addr,
		Peers:          peers,
		Clock:          e.clk,
		SuspectTimeout: 5 * time.Second,
		OnVerdict:      vlog.add,
	})
	if err != nil {
		e.t.Fatal(err)
	}
	gn := &gossipNode{id: id, addr: addr, node: node, verdicts: vlog, plan: plan}
	gn.serve(e)
	e.t.Cleanup(func() {
		node.Close()
		gn.server.Close()
		peers.Close()
	})
	return gn
}

// serve (re)starts the node's wallet server — the rejoin path after kill.
func (gn *gossipNode) serve(e *testEnv) {
	e.t.Helper()
	ln, err := e.net.Listen(gn.addr, gn.id)
	if err != nil {
		e.t.Fatal(err)
	}
	gn.ln = ln
	w := wallet.New(wallet.Config{Owner: gn.id, Clock: e.clk})
	gn.server = remote.ServeOptions(w, ln, remote.Options{Gossip: gn.node})
}

func (gn *gossipNode) kill() {
	gn.server.Close()
}

func TestDirectProbeKeepsAlive(t *testing.T) {
	e := newTestEnv(t)
	a := e.start("a", 1)
	b := e.start("b", 2)
	a.node.Join([]string{b.addr})
	b.node.Join([]string{a.addr})

	a.node.probe(b.addr)
	if st, ok := a.node.StatusOf(b.addr); !ok || st != Alive {
		t.Fatalf("b's status at a = %v, want Alive", st)
	}
	// The probe's piggybacked self-announcement taught b about a.
	if st, ok := b.node.StatusOf(a.addr); !ok || st != Alive {
		t.Fatalf("a's status at b = %v, want Alive", st)
	}
}

func TestIndirectProbeSavesPartitionedLink(t *testing.T) {
	e := newTestEnv(t)
	a := e.start("a", 1)
	b := e.start("b", 2)
	c := e.start("c", 3)
	a.node.Join([]string{b.addr, c.addr})
	b.node.Join([]string{a.addr, c.addr})
	c.node.Join([]string{a.addr, b.addr})

	// a's own link to b is broken (a→b dials refused), but c can still
	// reach b: the ping-req relay must keep b alive in a's view.
	a.plan.Set(b.addr, transport.Fault{RefuseDial: true})
	a.node.probe(b.addr)
	if st, _ := a.node.StatusOf(b.addr); st != Alive {
		t.Fatalf("b suspected despite a live relay path: %v", st)
	}
}

func TestSuspectThenDeadThenRejoin(t *testing.T) {
	e := newTestEnv(t)
	a := e.start("a", 1)
	b := e.start("b", 2)
	c := e.start("c", 3)
	a.node.Join([]string{b.addr, c.addr})
	b.node.Join([]string{a.addr, c.addr})
	c.node.Join([]string{a.addr, b.addr})

	// Warm everyone's view.
	a.node.probe(b.addr)
	a.node.probe(c.addr)

	b.kill()
	a.node.probe(b.addr)
	if st, _ := a.node.StatusOf(b.addr); st != Suspect {
		t.Fatalf("dead b not suspected: %v", st)
	}
	// The refutation window passes with no word from b: declared dead,
	// verdict fed to the breaker fan-out.
	e.clk.Advance(5 * time.Second)
	a.node.sweepSuspects()
	if st, _ := a.node.StatusOf(b.addr); st != Dead {
		t.Fatalf("suspect b not declared dead: %v", st)
	}
	if !a.verdicts.has(b.addr + ":down") {
		t.Fatalf("no down verdict for b: %v", a.verdicts.vs)
	}

	// The death disseminates to c on a's next probe exchange.
	a.node.probe(c.addr)
	if st, _ := c.node.StatusOf(b.addr); st != Dead {
		t.Fatalf("death did not disseminate to c: %v", st)
	}
	if !c.verdicts.has(b.addr + ":down") {
		t.Fatalf("no relayed down verdict at c: %v", c.verdicts.vs)
	}

	// b restarts and probes a directly: firsthand contact resurrects it
	// and the up verdict clears the breakers.
	b.serve(e)
	b.node.probe(a.addr)
	if st, _ := a.node.StatusOf(b.addr); st != Alive {
		t.Fatalf("rejoined b not alive at a: %v", st)
	}
	if !a.verdicts.has(b.addr + ":up") {
		t.Fatalf("no up verdict for b at a: %v", a.verdicts.vs)
	}
	// And the revival disseminates (with a bumped incarnation, so it beats
	// the dead entry) to c.
	a.node.probe(c.addr)
	if st, _ := c.node.StatusOf(b.addr); st != Alive {
		t.Fatalf("revival did not disseminate to c: %v", st)
	}
}

func TestSelfRefutation(t *testing.T) {
	e := newTestEnv(t)
	a := e.start("a", 1)
	b := e.start("b", 2)
	a.node.Join([]string{b.addr})
	b.node.Join([]string{a.addr})

	// b hears a rumor that it is itself suspect at incarnation 0: it must
	// bump its incarnation and queue an alive refutation.
	b.node.applyUpdates([]wire.GossipUpdate{{Addr: b.addr, Status: "suspect", Incarnation: 0}})
	b.node.mu.Lock()
	inc := b.node.selfInc
	b.node.mu.Unlock()
	if inc == 0 {
		t.Fatal("suspicion about self did not bump incarnation")
	}
	updates := b.node.drain()
	var refuted bool
	for _, u := range updates {
		if u.Addr == b.addr && u.Status == "alive" && u.Incarnation == inc {
			refuted = true
		}
	}
	if !refuted {
		t.Fatalf("no alive refutation queued: %v", updates)
	}
	// The refutation out-ranks the suspicion at a.
	a.node.applyUpdates([]wire.GossipUpdate{{Addr: b.addr, Status: "suspect", Incarnation: 0}})
	a.node.applyUpdates(updates)
	if st, _ := a.node.StatusOf(b.addr); st != Alive {
		t.Fatalf("refutation did not clear suspicion: %v", st)
	}
}

func TestUpdatePrecedence(t *testing.T) {
	e := newTestEnv(t)
	a := e.start("a", 1)
	a.node.Join([]string{"wallet.x"})

	// Same incarnation: dead beats suspect beats alive.
	a.node.applyUpdates([]wire.GossipUpdate{{Addr: "wallet.x", Status: "suspect", Incarnation: 1}})
	if st, _ := a.node.StatusOf("wallet.x"); st != Suspect {
		t.Fatalf("want Suspect, got %v", st)
	}
	a.node.applyUpdates([]wire.GossipUpdate{{Addr: "wallet.x", Status: "alive", Incarnation: 1}})
	if st, _ := a.node.StatusOf("wallet.x"); st != Suspect {
		t.Fatal("equal-incarnation alive overrode suspect")
	}
	a.node.applyUpdates([]wire.GossipUpdate{{Addr: "wallet.x", Status: "dead", Incarnation: 1}})
	if st, _ := a.node.StatusOf("wallet.x"); st != Dead {
		t.Fatal("equal-incarnation dead did not override suspect")
	}
	// Stale lower incarnation never claws back.
	a.node.applyUpdates([]wire.GossipUpdate{{Addr: "wallet.x", Status: "alive", Incarnation: 0}})
	if st, _ := a.node.StatusOf("wallet.x"); st != Dead {
		t.Fatal("stale incarnation resurrected a dead member")
	}
	// Higher incarnation alive (a refutation) does.
	a.node.applyUpdates([]wire.GossipUpdate{{Addr: "wallet.x", Status: "alive", Incarnation: 2}})
	if st, _ := a.node.StatusOf("wallet.x"); st != Alive {
		t.Fatal("higher-incarnation alive ignored")
	}

	alive, suspect, dead := a.node.Counts()
	if alive != 1 || suspect != 0 || dead != 0 {
		t.Fatalf("counts = %d/%d/%d, want 1/0/0", alive, suspect, dead)
	}
}

func TestPiggybackRetransmitBudget(t *testing.T) {
	e := newTestEnv(t)
	a := e.start("a", 1)
	a.node.mu.Lock()
	a.node.enqueueLocked(wire.GossipUpdate{Addr: "wallet.x", Status: "alive", Incarnation: 1})
	a.node.mu.Unlock()
	for i := 0; i < DefaultRetransmit; i++ {
		found := false
		for _, u := range a.node.drain() {
			if u.Addr == "wallet.x" {
				found = true
			}
		}
		if !found {
			t.Fatalf("update missing on retransmission %d", i)
		}
	}
	if got := a.node.drain(); len(got) != 0 {
		t.Fatalf("update outlived its retransmit budget: %v", got)
	}
}
