// Package gossip runs a SWIM-style membership layer over the
// authenticated transport: each protocol period a node probes one member
// directly (gossip-ping) and, on silence, asks a few others to probe it on
// its behalf (gossip-ping-req) — the indirect probe that distinguishes "it
// is dead" from "my link to it is bad". Verdicts move members through
// alive → suspect → dead with incarnation numbers: only the member itself
// refutes a suspicion (by bumping its incarnation), so one slow node
// cannot flap the whole coalition's view. Membership events piggyback on
// the probes themselves with bounded retransmission — no broadcast storm.
//
// The payoff for dRBAC is cluster-wide breaker priming: a confirmed-dead
// wallet is fed to every pool's SetRemoteDown through OnVerdict, so a
// gateway stops dialing a dead shard member before its own circuit
// breaker has ever seen a failure, and chain discovery skips dead homes
// coalition-wide within a few protocol periods.
package gossip

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/obs"
	"drbac/internal/peer"
	"drbac/internal/wire"
)

// Status is a member's SWIM state.
type Status int

const (
	Alive Status = iota
	Suspect
	Dead
)

// String renders the status for wire updates and logs.
func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

func parseStatus(s string) (Status, bool) {
	switch s {
	case "alive":
		return Alive, true
	case "suspect":
		return Suspect, true
	case "dead":
		return Dead, true
	default:
		return 0, false
	}
}

// Defaults tuned for wallet coalitions: liveness within a few seconds
// without meaningful idle traffic.
const (
	DefaultProbeInterval  = 1 * time.Second
	DefaultProbeTimeout   = 2 * time.Second
	DefaultIndirectProbes = 3
	DefaultSuspectTimeout = 5 * time.Second
	DefaultRetransmit     = 6
	maxPiggyback          = 12
)

// Config assembles a gossip node.
type Config struct {
	// SelfAddr is this wallet's listen address — its membership identity.
	// Required.
	SelfAddr string
	// Peers supplies outbound connections for probes. Give gossip its OWN
	// pool, not one fed by OnVerdict: probes to a down-marked member must
	// still go out or recovery would never be observed. Required.
	Peers *peer.Manager
	// Clock is the time source; nil means the system clock.
	Clock clock.Clock
	// Obs receives logs and metrics (nil discards both).
	Obs *obs.Obs
	// ProbeInterval is the protocol period.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round (direct + indirect).
	ProbeTimeout time.Duration
	// IndirectProbes is how many members relay a ping-req on silence.
	IndirectProbes int
	// SuspectTimeout is how long a suspect may refute before it is
	// declared dead.
	SuspectTimeout time.Duration
	// Retransmit is how many probe messages each membership update
	// piggybacks on before it is dropped from the queue.
	Retransmit int
	// OnVerdict fires on liveness transitions: alive=false when a member
	// is confirmed dead, alive=true when it (re)joins or refutes. The
	// daemon fans it into every peer pool's SetRemoteDown. Called without
	// internal locks held; may be nil.
	OnVerdict func(addr string, alive bool)
}

type member struct {
	addr        string
	status      Status
	incarnation uint64
	since       time.Time // instant of the last status change
}

type queuedUpdate struct {
	u    wire.GossipUpdate
	left int // remaining retransmissions
}

// Node is one wallet's gossip participant. It implements
// remote.GossipHandler for the serving side; Start runs the probe loop.
type Node struct {
	cfg Config

	mu      sync.Mutex
	members map[string]*member
	queue   []*queuedUpdate
	selfInc uint64
	cursor  int
	closed  bool

	quit chan struct{}
	wg   sync.WaitGroup
}

// NewNode builds a gossip node.
func NewNode(cfg Config) (*Node, error) {
	if cfg.SelfAddr == "" {
		return nil, errors.New("gossip: Config.SelfAddr is required")
	}
	if cfg.Peers == nil {
		return nil, errors.New("gossip: Config.Peers is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.IndirectProbes <= 0 {
		cfg.IndirectProbes = DefaultIndirectProbes
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = DefaultSuspectTimeout
	}
	if cfg.Retransmit <= 0 {
		cfg.Retransmit = DefaultRetransmit
	}
	n := &Node{
		cfg:     cfg,
		members: make(map[string]*member),
		quit:    make(chan struct{}),
	}
	if o := cfg.Obs; o.Registry() != nil {
		o.Registry().GaugeFunc("drbac_gossip_alive", func() int64 { a, _, _ := n.Counts(); return int64(a) })
		o.Registry().GaugeFunc("drbac_gossip_suspect", func() int64 { _, s, _ := n.Counts(); return int64(s) })
		o.Registry().GaugeFunc("drbac_gossip_dead", func() int64 { _, _, d := n.Counts(); return int64(d) })
	}
	return n, nil
}

// Join seeds the membership list with known addresses (bootstrap nodes or
// a shard map's members) and queues a self-alive announcement so the
// join disseminates on the first probes.
func (n *Node) Join(addrs []string) {
	n.mu.Lock()
	for _, a := range addrs {
		if a == "" || a == n.cfg.SelfAddr {
			continue
		}
		if _, ok := n.members[a]; !ok {
			n.members[a] = &member{addr: a, status: Alive, since: n.cfg.Clock.Now()}
		}
	}
	n.enqueueLocked(wire.GossipUpdate{Addr: n.cfg.SelfAddr, Status: "alive", Incarnation: n.selfInc})
	n.mu.Unlock()
}

// Start runs the probe loop.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.probeLoop()
}

// Close stops the probe loop and waits for in-flight probes.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.quit)
	n.wg.Wait()
}

// Counts reports members per state (self excluded).
func (n *Node) Counts() (alive, suspect, dead int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, m := range n.members {
		switch m.status {
		case Alive:
			alive++
		case Suspect:
			suspect++
		case Dead:
			dead++
		}
	}
	return
}

// StatusOf reports one member's state; ok is false for unknown addresses.
func (n *Node) StatusOf(addr string) (Status, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	m, ok := n.members[addr]
	if !ok {
		return 0, false
	}
	return m.status, true
}

// Members snapshots the membership list keyed by address.
func (n *Node) Members() map[string]Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]Status, len(n.members))
	for a, m := range n.members {
		out[a] = m.status
	}
	return out
}

// ---- probe loop ----

func (n *Node) probeLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.quit:
			return
		case <-n.cfg.Clock.After(n.cfg.ProbeInterval):
			n.sweepSuspects()
			if target, ok := n.nextTarget(); ok {
				n.probe(target)
			}
		}
	}
}

// nextTarget picks the next non-dead member round-robin over the sorted
// address list — SWIM's bounded-staleness guarantee (every member is
// probed within one full rotation) without needing a shared RNG.
func (n *Node) nextTarget() (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	addrs := make([]string, 0, len(n.members))
	for a, m := range n.members {
		if m.status != Dead {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return "", false
	}
	sort.Strings(addrs)
	n.cursor = (n.cursor + 1) % len(addrs)
	return addrs[n.cursor], true
}

// probe runs one SWIM round against target: direct ping, then indirect
// ping-req relays on silence, then suspicion.
func (n *Node) probe(target string) {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ProbeTimeout)
	defer cancel()
	if n.pingDirect(ctx, target) {
		n.markAlive(target, 0, false)
		return
	}
	relays := n.relayCandidates(target)
	for _, relay := range relays {
		if n.pingIndirect(ctx, relay, target) {
			n.markAlive(target, 0, false)
			return
		}
	}
	n.suspect(target)
}

func (n *Node) pingDirect(ctx context.Context, target string) bool {
	cl, err := n.cfg.Peers.Get(ctx, target)
	if err != nil {
		return false
	}
	ack, err := cl.GossipPing(ctx, wire.GossipPingBody{From: n.cfg.SelfAddr, Updates: n.drain()})
	if err != nil {
		if !cl.Healthy() {
			n.cfg.Peers.ReportFailure(target, cl)
		}
		return false
	}
	n.applyUpdates(ack.Updates)
	return true
}

func (n *Node) pingIndirect(ctx context.Context, relay, target string) bool {
	cl, err := n.cfg.Peers.Get(ctx, relay)
	if err != nil {
		return false
	}
	ack, err := cl.GossipPing(ctx, wire.GossipPingBody{
		From:    n.cfg.SelfAddr,
		Target:  target,
		Updates: n.drain(),
	})
	if err != nil {
		if !cl.Healthy() {
			n.cfg.Peers.ReportFailure(relay, cl)
		}
		return false
	}
	n.applyUpdates(ack.Updates)
	return true
}

// relayCandidates picks up to IndirectProbes alive members other than the
// target, spread round-robin like probe targets.
func (n *Node) relayCandidates(target string) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	addrs := make([]string, 0, len(n.members))
	for a, m := range n.members {
		if a != target && m.status == Alive {
			addrs = append(addrs, a)
		}
	}
	sort.Strings(addrs)
	if len(addrs) > n.cfg.IndirectProbes {
		start := n.cursor % len(addrs)
		rot := append(addrs[start:], addrs[:start]...)
		addrs = rot[:n.cfg.IndirectProbes]
	}
	return addrs
}

// sweepSuspects declares suspects dead once their refutation window
// lapses.
func (n *Node) sweepSuspects() {
	now := n.cfg.Clock.Now()
	var died []string
	n.mu.Lock()
	for a, m := range n.members {
		if m.status == Suspect && now.Sub(m.since) >= n.cfg.SuspectTimeout {
			m.status = Dead
			m.since = now
			n.enqueueLocked(wire.GossipUpdate{Addr: a, Status: "dead", Incarnation: m.incarnation})
			died = append(died, a)
		}
	}
	n.mu.Unlock()
	for _, a := range died {
		n.cfg.Obs.Log().Warn("gossip member dead", "addr", a)
		n.verdict(a, false)
	}
}

// ---- state transitions ----

// markAlive records direct or relayed evidence that addr answered. With
// firsthand=true (a direct ping FROM the member) it overrides even a dead
// verdict: a restarted member's own traffic is ground truth, so a rejoin
// does not wait on incarnation bookkeeping the member lost with its
// process.
func (n *Node) markAlive(addr string, incarnation uint64, firsthand bool) {
	if addr == "" || addr == n.cfg.SelfAddr {
		return
	}
	var revived bool
	n.mu.Lock()
	m, ok := n.members[addr]
	if !ok {
		m = &member{addr: addr, status: Alive, incarnation: incarnation, since: n.cfg.Clock.Now()}
		n.members[addr] = m
		n.enqueueLocked(wire.GossipUpdate{Addr: addr, Status: "alive", Incarnation: incarnation})
	} else if m.status != Alive {
		if m.status == Dead && !firsthand {
			// Secondhand "it answered a relay" does not resurrect a dead
			// member; its own refutation (or direct contact) must.
			n.mu.Unlock()
			return
		}
		inc := m.incarnation + 1
		if incarnation > inc {
			inc = incarnation
		}
		m.status = Alive
		m.incarnation = inc
		m.since = n.cfg.Clock.Now()
		n.enqueueLocked(wire.GossipUpdate{Addr: addr, Status: "alive", Incarnation: inc})
		revived = true
	}
	n.mu.Unlock()
	if revived {
		n.cfg.Obs.Log().Info("gossip member alive", "addr", addr)
		n.verdict(addr, true)
	}
}

// suspect moves addr to Suspect and disseminates the suspicion.
func (n *Node) suspect(addr string) {
	n.mu.Lock()
	m, ok := n.members[addr]
	if !ok || m.status != Alive {
		n.mu.Unlock()
		return
	}
	m.status = Suspect
	m.since = n.cfg.Clock.Now()
	n.enqueueLocked(wire.GossipUpdate{Addr: addr, Status: "suspect", Incarnation: m.incarnation})
	n.mu.Unlock()
	n.cfg.Obs.Log().Info("gossip member suspected", "addr", addr)
}

// applyUpdates merges piggybacked membership events under SWIM's
// precedence rules: a higher incarnation always wins; at equal
// incarnation dead beats suspect beats alive. An update about self that
// claims suspect/dead is refuted by bumping our incarnation and
// disseminating a fresh alive.
func (n *Node) applyUpdates(updates []wire.GossipUpdate) {
	var verdicts []struct {
		addr  string
		alive bool
	}
	n.mu.Lock()
	for _, u := range updates {
		st, ok := parseStatus(u.Status)
		if !ok || u.Addr == "" {
			continue
		}
		if u.Addr == n.cfg.SelfAddr {
			if st != Alive {
				if u.Incarnation >= n.selfInc {
					n.selfInc = u.Incarnation + 1
				}
				n.enqueueLocked(wire.GossipUpdate{Addr: n.cfg.SelfAddr, Status: "alive", Incarnation: n.selfInc})
			}
			continue
		}
		m, known := n.members[u.Addr]
		if !known {
			m = &member{addr: u.Addr, status: st, incarnation: u.Incarnation, since: n.cfg.Clock.Now()}
			n.members[u.Addr] = m
			n.enqueueLocked(u)
			if st == Dead {
				verdicts = append(verdicts, struct {
					addr  string
					alive bool
				}{u.Addr, false})
			}
			continue
		}
		if u.Incarnation < m.incarnation {
			continue
		}
		if u.Incarnation == m.incarnation && st <= m.status {
			continue
		}
		prev := m.status
		m.status = st
		m.incarnation = u.Incarnation
		m.since = n.cfg.Clock.Now()
		n.enqueueLocked(u)
		if st == Dead && prev != Dead {
			verdicts = append(verdicts, struct {
				addr  string
				alive bool
			}{u.Addr, false})
		}
		if st == Alive && prev != Alive {
			verdicts = append(verdicts, struct {
				addr  string
				alive bool
			}{u.Addr, true})
		}
	}
	n.mu.Unlock()
	for _, v := range verdicts {
		n.cfg.Obs.Log().Info("gossip verdict relayed", "addr", v.addr, "alive", v.alive)
		n.verdict(v.addr, v.alive)
	}
}

func (n *Node) verdict(addr string, alive bool) {
	if n.cfg.OnVerdict != nil {
		n.cfg.OnVerdict(addr, alive)
	}
}

// ---- piggyback queue ----

// enqueueLocked queues an update for dissemination, replacing any queued
// update about the same member (the newer event supersedes it). n.mu held.
func (n *Node) enqueueLocked(u wire.GossipUpdate) {
	for i, q := range n.queue {
		if q.u.Addr == u.Addr {
			n.queue[i] = &queuedUpdate{u: u, left: n.cfg.Retransmit}
			return
		}
	}
	n.queue = append(n.queue, &queuedUpdate{u: u, left: n.cfg.Retransmit})
}

// drain returns up to maxPiggyback pending updates, decrementing their
// retransmission budget and dropping exhausted ones.
func (n *Node) drain() []wire.GossipUpdate {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]wire.GossipUpdate, 0, maxPiggyback)
	kept := n.queue[:0]
	for _, q := range n.queue {
		if len(out) < maxPiggyback {
			out = append(out, q.u)
			q.left--
		}
		if q.left > 0 {
			kept = append(kept, q)
		}
	}
	n.queue = kept
	if len(out) == 0 {
		return nil
	}
	return out
}

// ---- serving side (remote.GossipHandler) ----

// HandlePing answers a direct probe: the sender is firsthand-alive, its
// updates merge, and our pending updates ride back on the ack.
func (n *Node) HandlePing(_ context.Context, _ core.Entity, req wire.GossipPingBody) (wire.GossipAck, error) {
	n.markAlive(req.From, 0, true)
	n.applyUpdates(req.Updates)
	return wire.GossipAck{From: n.cfg.SelfAddr, Updates: n.drain()}, nil
}

// HandlePingReq relays a probe to req.Target on the caller's behalf. A
// target that answers yields an ack (and firsthand-alive evidence here
// too); one that does not yields an error the caller counts as a failed
// indirect probe.
func (n *Node) HandlePingReq(ctx context.Context, _ core.Entity, req wire.GossipPingBody) (wire.GossipAck, error) {
	n.markAlive(req.From, 0, true)
	n.applyUpdates(req.Updates)
	if req.Target == "" {
		return wire.GossipAck{}, errors.New("gossip: ping-req without target")
	}
	if req.Target == n.cfg.SelfAddr {
		return wire.GossipAck{From: n.cfg.SelfAddr, Updates: n.drain()}, nil
	}
	rctx, cancel := context.WithTimeout(ctx, n.cfg.ProbeTimeout)
	defer cancel()
	cl, err := n.cfg.Peers.Get(rctx, req.Target)
	if err != nil {
		return wire.GossipAck{}, fmt.Errorf("gossip: relay to %s: %w", req.Target, err)
	}
	ack, err := cl.GossipPing(rctx, wire.GossipPingBody{From: n.cfg.SelfAddr, Updates: n.drain()})
	if err != nil {
		if !cl.Healthy() {
			n.cfg.Peers.ReportFailure(req.Target, cl)
		}
		return wire.GossipAck{}, fmt.Errorf("gossip: relay to %s: %w", req.Target, err)
	}
	n.markAlive(req.Target, 0, true)
	n.applyUpdates(ack.Updates)
	return wire.GossipAck{From: n.cfg.SelfAddr, Updates: n.drain()}, nil
}
