package keyfile

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/wallet"
)

func TestIdentityFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "id.json")
	f, err := GenerateIdentity("Alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteIdentity(path, f); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("identity file mode = %v, want 0600", info.Mode().Perm())
	}
	got, err := ReadIdentity(path)
	if err != nil {
		t.Fatal(err)
	}
	idA, err := f.Identity()
	if err != nil {
		t.Fatal(err)
	}
	idB, err := got.Identity()
	if err != nil {
		t.Fatal(err)
	}
	if idA.ID() != idB.ID() {
		t.Fatal("identity changed across round trip")
	}
}

func TestReadIdentityErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadIdentity(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIdentity(bad); err == nil {
		t.Fatal("malformed file accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIdentity(empty); err == nil {
		t.Fatal("empty identity accepted")
	}
	badSeed := filepath.Join(dir, "seed.json")
	if err := os.WriteFile(badSeed, []byte(`{"name":"x","seed":"zz"}`), 0o600); err != nil {
		t.Fatal(err)
	}
	f, err := ReadIdentity(badSeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Identity(); err == nil {
		t.Fatal("bad seed accepted")
	}
}

func TestDirectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dir.json")
	a, err := core.NewIdentity("Alpha")
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewIdentity("Beta")
	if err != nil {
		t.Fatal(err)
	}
	entries := []DirectoryEntry{
		{Name: "Alpha", Key: a.Entity().Key},
		{Name: "Beta", Key: b.Entity().Key},
	}
	if err := WriteDirectory(path, entries); err != nil {
		t.Fatal(err)
	}
	resolved, gotEntries, err := ReadDirectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotEntries) != 2 {
		t.Fatalf("entries = %d", len(gotEntries))
	}
	ent, ok := resolved.LookupName("Alpha")
	if !ok || ent.ID() != a.ID() {
		t.Fatal("directory lookup failed")
	}
}

func TestReadDirectoryRejectsBadKey(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dir.json")
	if err := WriteDirectory(path, []DirectoryEntry{{Name: "X", Key: []byte{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadDirectory(path); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle.json")
	issuer, err := core.NewIdentity("Issuer")
	if err != nil {
		t.Fatal(err)
	}
	grantee, err := core.NewIdentity("Grantee")
	if err != nil {
		t.Fatal(err)
	}
	g := grantee.Entity()
	d, err := core.Issue(issuer, core.Template{
		Subject:       core.SubjectEntity(grantee.ID()),
		SubjectEntity: &g,
		Object:        core.NewRole(issuer.ID(), "member"),
	}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBundle(path, Bundle{Delegation: d}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Delegation.ID() != d.ID() {
		t.Fatal("delegation changed across round trip")
	}
	if err := got.Delegation.Verify(); err != nil {
		t.Fatalf("signature lost: %v", err)
	}
}

func TestReadBundleErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadBundle(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing bundle accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(empty); err == nil {
		t.Fatal("bundle without delegation accepted")
	}
}

func TestWalletStateSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")

	bigISP, err := core.NewIdentity("BigISP")
	if err != nil {
		t.Fatal(err)
	}
	mark, err := core.NewIdentity("Mark")
	if err != nil {
		t.Fatal(err)
	}
	maria, err := core.NewIdentity("Maria")
	if err != nil {
		t.Fatal(err)
	}
	entDir := core.NewDirectory(bigISP.Entity(), mark.Entity(), maria.Entity())
	now := time.Now()
	issue := func(who *core.Identity, text string) *core.Delegation {
		t.Helper()
		parsed, err := core.ParseDelegation(text, entDir)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.Issue(who, parsed.Template, now)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	src := wallet.New(wallet.Config{Directory: entDir})
	for who, text := range map[*core.Identity]string{
		bigISP: "[Mark -> BigISP.memberServices] BigISP",
	} {
		if err := src.Publish(issue(who, text)); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Publish(issue(bigISP, "[BigISP.memberServices -> BigISP.member'] BigISP")); err != nil {
		t.Fatal(err)
	}
	// Third-party with support derived from the wallet's own graph.
	if err := src.Publish(issue(mark, "[Maria -> BigISP.member] Mark")); err != nil {
		t.Fatal(err)
	}

	if err := SaveWallet(path, src); err != nil {
		t.Fatal(err)
	}

	dst := wallet.New(wallet.Config{Directory: entDir})
	n, err := LoadWallet(path, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("restored %d delegations, want 3", n)
	}
	// The third-party proof must still work: support travelled in bundles.
	subj, err := core.ParseSubject("Maria", entDir)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := core.ParseRole("BigISP.member", entDir)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := dst.QueryDirect(wallet.Query{Subject: subj, Object: obj})
	if err != nil {
		t.Fatalf("restored wallet cannot prove membership: %v", err)
	}
	if err := proof.Validate(core.ValidateOptions{At: now}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadWalletErrors(t *testing.T) {
	dir := t.TempDir()
	w := wallet.New(wallet.Config{})
	if _, err := LoadWallet(filepath.Join(dir, "missing.json"), w); err == nil {
		t.Fatal("missing state accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("["), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWallet(bad, w); err == nil {
		t.Fatal("malformed state accepted")
	}
}

func TestWalletStatePersistsRevocations(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	org, err := core.NewIdentity("Org")
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewIdentity("User")
	if err != nil {
		t.Fatal(err)
	}
	entDir := core.NewDirectory(org.Entity(), user.Entity())
	parsed, err := core.ParseDelegation("[User -> Org.member] Org", entDir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Issue(org, parsed.Template, time.Now())
	if err != nil {
		t.Fatal(err)
	}

	src := wallet.New(wallet.Config{})
	if err := src.Publish(d); err != nil {
		t.Fatal(err)
	}
	if err := src.Revoke(d.ID(), org.ID()); err != nil {
		t.Fatal(err)
	}
	if err := SaveWallet(path, src); err != nil {
		t.Fatal(err)
	}

	dst := wallet.New(wallet.Config{})
	if _, err := LoadWallet(path, dst); err != nil {
		t.Fatal(err)
	}
	if !dst.IsRevoked(d.ID()) {
		t.Fatal("revocation mark lost across restart")
	}
	// Republishing the revoked credential must fail after restore.
	if err := dst.Publish(d); err == nil {
		t.Fatal("restored wallet re-accepted a revoked credential")
	}
}
