// Package keyfile defines the on-disk JSON formats the command-line tools
// exchange: identities (name + seed), entity directories (name + public
// key), and delegation bundles (delegation + support proofs).
package keyfile

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"drbac/internal/core"
	"drbac/internal/wallet"
)

// IdentityFile holds a private identity. Treat the file like a private key.
type IdentityFile struct {
	Name string `json:"name"`
	// Seed is the hex-encoded 32-byte ed25519 seed.
	Seed string `json:"seed"`
}

// GenerateIdentity creates a fresh identity file.
func GenerateIdentity(name string) (IdentityFile, error) {
	seed := make([]byte, ed25519.SeedSize)
	if _, err := rand.Read(seed); err != nil {
		return IdentityFile{}, fmt.Errorf("keyfile: generate seed: %w", err)
	}
	return IdentityFile{Name: name, Seed: hex.EncodeToString(seed)}, nil
}

// Identity reconstructs the signing identity.
func (f IdentityFile) Identity() (*core.Identity, error) {
	seed, err := hex.DecodeString(f.Seed)
	if err != nil {
		return nil, fmt.Errorf("keyfile: bad seed: %w", err)
	}
	return core.IdentityFromSeed(f.Name, seed)
}

// WriteIdentity writes an identity file with owner-only permissions.
func WriteIdentity(path string, f IdentityFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o600)
}

// ReadIdentity loads an identity file.
func ReadIdentity(path string) (IdentityFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return IdentityFile{}, err
	}
	var f IdentityFile
	if err := json.Unmarshal(data, &f); err != nil {
		return IdentityFile{}, fmt.Errorf("keyfile %s: %w", path, err)
	}
	if f.Name == "" || f.Seed == "" {
		return IdentityFile{}, fmt.Errorf("keyfile %s: missing name or seed", path)
	}
	return f, nil
}

// DirectoryEntry is one public entity in a directory file.
type DirectoryEntry struct {
	Name string `json:"name"`
	// Key is the ed25519 public key (base64 via encoding/json).
	Key []byte `json:"key"`
}

// WriteDirectory writes a directory file.
func WriteDirectory(path string, entries []DirectoryEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadDirectory loads a directory file into a resolvable directory.
func ReadDirectory(path string) (*core.MemDirectory, []DirectoryEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var entries []DirectoryEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, nil, fmt.Errorf("directory %s: %w", path, err)
	}
	dir := core.NewDirectory()
	for _, e := range entries {
		if len(e.Key) != ed25519.PublicKeySize {
			return nil, nil, fmt.Errorf("directory %s: entity %q has a bad key", path, e.Name)
		}
		dir.Add(core.Entity{Name: e.Name, Key: e.Key})
	}
	return dir, entries, nil
}

// Bundle is a delegation plus the support proofs it travels with.
type Bundle struct {
	Delegation *core.Delegation `json:"delegation"`
	Support    []*core.Proof    `json:"support,omitempty"`
}

// WriteBundle writes a delegation bundle.
func WriteBundle(path string, b Bundle) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WalletState is the persisted form of a wallet's credential store: every
// delegation together with the support proofs it was published with, plus
// the revocations the wallet has observed (so a restart cannot resurrect a
// revoked credential).
type WalletState struct {
	Bundles []Bundle            `json:"bundles"`
	Revoked []core.DelegationID `json:"revoked,omitempty"`
}

// SaveWallet persists a wallet's delegations (with their support proofs)
// and observed revocations to path. Cache TTLs are deliberately not
// persisted: cached copies must be re-confirmed from their home wallets
// after a restart (§4.2.1).
func SaveWallet(path string, w *wallet.Wallet) error {
	state := WalletState{Revoked: w.RevokedIDs()}
	sort.Slice(state.Revoked, func(i, j int) bool { return state.Revoked[i] < state.Revoked[j] })
	for _, d := range w.Delegations() {
		_, support, ok := w.Get(d.ID())
		if !ok {
			continue
		}
		state.Bundles = append(state.Bundles, Bundle{Delegation: d, Support: support})
	}
	// Deterministic order keeps the file diffable.
	sort.Slice(state.Bundles, func(i, j int) bool {
		return state.Bundles[i].Delegation.ID() < state.Bundles[j].Delegation.ID()
	})
	data, err := json.MarshalIndent(state, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadWallet publishes a saved state into w, returning how many delegations
// were restored. Bundles are self-contained (support travels with each), so
// order does not matter; individually invalid entries (e.g. now expired)
// are skipped, not fatal.
func LoadWallet(path string, w *wallet.Wallet) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var state WalletState
	if err := json.Unmarshal(data, &state); err != nil {
		return 0, fmt.Errorf("wallet state %s: %w", path, err)
	}
	for _, id := range state.Revoked {
		w.AcceptRevocation(id)
	}
	n := 0
	for _, b := range state.Bundles {
		if b.Delegation == nil {
			continue
		}
		if err := w.Publish(b.Delegation, b.Support...); err != nil {
			continue
		}
		n++
	}
	return n, nil
}

// ReadBundle loads a delegation bundle.
func ReadBundle(path string) (Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Bundle{}, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return Bundle{}, fmt.Errorf("bundle %s: %w", path, err)
	}
	if b.Delegation == nil {
		return Bundle{}, fmt.Errorf("bundle %s: missing delegation", path)
	}
	return b, nil
}
