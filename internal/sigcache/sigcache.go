// Package sigcache memoizes successful Ed25519 signature verifications.
//
// Every dRBAC proof check re-verifies the issuer signature of every
// delegation in the chain and its recursive support proofs, yet delegations
// are immutable: a (public key, message, signature) triple that verified
// once verifies forever. The cache exploits that — it is keyed by the
// SHA-256 digest of the full triple, so a hit is cryptographically bound to
// the exact bytes that were verified and needs no invalidation, ever. A
// tampered signature, message, or key produces a different digest, misses,
// and falls through to a real Ed25519 verification.
//
// Only successes are stored. Failures are not memoized: they are the
// attack/corruption path, re-verifying them costs nothing we care about,
// and an attacker must not be able to fill the cache with garbage.
//
// The cache is sharded 16 ways (shard chosen by FNV-1a over the digest) so
// concurrent proof validations — a wallet serving parallel queries, a
// replica applying a snapshot — do not serialize on one mutex. Each shard
// is an independent bounded LRU; hit/miss/eviction counters are atomic and
// process-wide.
package sigcache

import (
	"container/list"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// NumShards is the fixed shard count. 16 keeps per-shard mutex pressure
// negligible at wallet concurrency levels while the FNV spread stays even.
const NumShards = 16

// DefaultCapacity bounds the cache when New is given capacity 0: total
// entries across all shards. Each entry is a 32-byte digest plus list/map
// overhead (~100 B), so the default costs ~1.6 MB fully populated.
const DefaultCapacity = 16384

// key is the SHA-256 digest of the length-framed (pub, msg, sig) triple.
type key [sha256.Size]byte

// digest computes the cache key. Fields are length-prefixed so no two
// distinct triples collide by concatenation ambiguity.
func digest(pub, msg, sig []byte) key {
	h := sha256.New()
	var n [4]byte
	for _, part := range [][]byte{pub, msg, sig} {
		binary.BigEndian.PutUint32(n[:], uint32(len(part)))
		h.Write(n[:])
		h.Write(part)
	}
	var k key
	h.Sum(k[:0])
	return k
}

// shardIndex spreads digests across shards with FNV-1a.
func shardIndex(k key) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range k {
		h ^= uint32(b)
		h *= prime32
	}
	return int(h % NumShards)
}

// shard is one bounded LRU of verified-signature digests.
type shard struct {
	mu      sync.Mutex
	entries map[key]*list.Element
	order   *list.List // front = most recently used; values are key
}

// Cache is a concurrency-safe, sharded, bounded memo of verified
// signatures. The zero value is not usable; construct with New or use the
// process-wide Shared instance.
type Cache struct {
	shards   [NumShards]shard
	perShard int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	size      atomic.Int64
}

// New returns a cache bounded to capacity total entries (rounded up to a
// multiple of NumShards); capacity 0 means DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	perShard := (capacity + NumShards - 1) / NumShards
	c := &Cache{perShard: perShard}
	for i := range c.shards {
		c.shards[i].entries = make(map[key]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

var (
	sharedOnce sync.Once
	shared     *Cache
)

// Shared returns the process-wide cache every wallet, discovery agent,
// proxy, and replica uses by default. Signatures are immutable, so sharing
// across trust domains is safe: a hit only ever asserts "these exact bytes
// verified under this exact key".
func Shared() *Cache {
	sharedOnce.Do(func() { shared = New(0) })
	return shared
}

// VerifySig reports whether sig is a valid Ed25519 signature over msg by
// pub, serving memoized successes and verifying (then memoizing) on a miss.
// It implements core.SigVerifier.
func (c *Cache) VerifySig(pub, msg, sig []byte) bool {
	k := digest(pub, msg, sig)
	sh := &c.shards[shardIndex(k)]
	sh.mu.Lock()
	if el, ok := sh.entries[k]; ok {
		sh.order.MoveToFront(el)
		sh.mu.Unlock()
		c.hits.Add(1)
		return true
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	if len(pub) != ed25519.PublicKeySize || !ed25519.Verify(ed25519.PublicKey(pub), msg, sig) {
		return false
	}
	sh.mu.Lock()
	if _, ok := sh.entries[k]; !ok { // lost a race with a concurrent verifier: same result either way
		sh.entries[k] = sh.order.PushFront(k)
		c.size.Add(1)
		if sh.order.Len() > c.perShard {
			oldest := sh.order.Back()
			sh.order.Remove(oldest)
			delete(sh.entries, oldest.Value.(key))
			c.size.Add(-1)
			c.evictions.Add(1)
		}
	}
	sh.mu.Unlock()
	return true
}

// HasVerified reports whether a success for the exact (pub, msg, sig)
// triple is memoized, without verifying or touching LRU order. Proof
// validation uses it to batch-collect the delegations that still need a
// real verification before fanning them out in parallel.
func (c *Cache) HasVerified(pub, msg, sig []byte) bool {
	k := digest(pub, msg, sig)
	sh := &c.shards[shardIndex(k)]
	sh.mu.Lock()
	_, ok := sh.entries[k]
	sh.mu.Unlock()
	return ok
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts verifications served from the memo.
	Hits int64
	// Misses counts verifications that ran real Ed25519 checks (including
	// every failed verification — failures are never memoized).
	Misses int64
	// Evictions counts entries dropped by the per-shard LRU bound.
	Evictions int64
	// Size is the current number of memoized signatures.
	Size int64
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      c.size.Load(),
	}
}

// Capacity returns the total entry bound (per-shard bound × NumShards).
func (c *Cache) Capacity() int { return c.perShard * NumShards }
