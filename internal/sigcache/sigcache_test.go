package sigcache

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"sync"
	"testing"
)

// signed returns a fresh keypair and a valid signature over msg.
func signed(t testing.TB, msg []byte) (ed25519.PublicKey, []byte) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return pub, ed25519.Sign(priv, msg)
}

func TestVerifyMemoizesSuccess(t *testing.T) {
	c := New(0)
	msg := []byte("delegation bytes")
	pub, sig := signed(t, msg)

	if !c.VerifySig(pub, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if !c.VerifySig(pub, msg, sig) {
		t.Fatal("valid signature rejected on second pass")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / size 1", st)
	}
	if !c.HasVerified(pub, msg, sig) {
		t.Error("HasVerified = false after successful verify")
	}
}

func TestFailuresAreNotMemoized(t *testing.T) {
	c := New(0)
	msg := []byte("msg")
	pub, sig := signed(t, msg)
	bad := append([]byte(nil), sig...)
	bad[0] ^= 1

	for i := 0; i < 3; i++ {
		if c.VerifySig(pub, msg, bad) {
			t.Fatal("tampered signature accepted")
		}
	}
	st := c.Stats()
	if st.Misses != 3 || st.Size != 0 {
		t.Errorf("stats = %+v, want 3 misses and size 0 (failures never stored)", st)
	}
	if c.HasVerified(pub, msg, bad) {
		t.Error("HasVerified = true for a failing triple")
	}
}

// TestTamperNeverServedFromCache is the negative satellite test: warming the
// cache with a valid triple must not let any perturbed triple (flipped
// signature, message, or key byte) ride the memo — each perturbation digests
// to a different key, misses, and fails real verification.
func TestTamperNeverServedFromCache(t *testing.T) {
	c := New(0)
	msg := []byte("the exact signed bytes")
	pub, sig := signed(t, msg)
	if !c.VerifySig(pub, msg, sig) {
		t.Fatal("valid signature rejected")
	}

	flip := func(b []byte, i int) []byte {
		out := append([]byte(nil), b...)
		out[i%len(out)] ^= 0x40
		return out
	}
	cases := map[string][3][]byte{
		"sig":     {pub, msg, flip(sig, 7)},
		"sig-end": {pub, msg, flip(sig, len(sig)-1)},
		"msg":     {pub, flip(msg, 3), sig},
		"pub":     {flip(pub, 5), msg, sig},
	}
	for name, tr := range cases {
		before := c.Stats().Hits
		if c.VerifySig(tr[0], tr[1], tr[2]) {
			t.Errorf("%s: tampered triple verified", name)
		}
		if c.Stats().Hits != before {
			t.Errorf("%s: tampered triple served from cache", name)
		}
	}
	// The original still hits.
	if !c.VerifySig(pub, msg, sig) {
		t.Fatal("original triple no longer verifies")
	}
}

func TestLRUBoundEnforced(t *testing.T) {
	const capacity = NumShards * 4 // 4 entries per shard
	c := New(capacity)
	msg := []byte("m")
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pub := priv.Public().(ed25519.PublicKey)

	// Distinct messages yield distinct digests spread across shards.
	n := capacity * 3
	for i := 0; i < n; i++ {
		m := append([]byte(fmt.Sprintf("%06d:", i)), msg...)
		if !c.VerifySig(pub, m, ed25519.Sign(priv, m)) {
			t.Fatalf("entry %d rejected", i)
		}
	}
	st := c.Stats()
	if st.Size > int64(capacity) {
		t.Errorf("size %d exceeds capacity %d", st.Size, capacity)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite 3x-capacity insertions")
	}
	if got := st.Size + st.Evictions; got != int64(n) {
		t.Errorf("size+evictions = %d, want %d (every success stored exactly once)", got, n)
	}
	// Per-shard bound, not just the total.
	for i := range c.shards {
		if l := c.shards[i].order.Len(); l > c.perShard {
			t.Errorf("shard %d holds %d entries, per-shard bound is %d", i, l, c.perShard)
		}
		if len(c.shards[i].entries) != c.shards[i].order.Len() {
			t.Errorf("shard %d map/list diverge: %d vs %d", i, len(c.shards[i].entries), c.shards[i].order.Len())
		}
	}
}

// TestConcurrentStorm hammers one cache from many goroutines with a mix of
// valid and tampered triples (run under -race by make check). Every call
// must agree with ground-truth Ed25519 — concurrent misses on the same key
// may both verify, but results never diverge and the memo converges to one
// entry per valid triple.
func TestConcurrentStorm(t *testing.T) {
	c := New(NumShards * 8) // small: storms through the eviction path too
	type triple struct {
		pub, msg, sig []byte
		want          bool
	}
	var triples []triple
	for i := 0; i < 64; i++ {
		msg := []byte(fmt.Sprintf("storm message %d", i))
		pub, sig := signed(t, msg)
		triples = append(triples, triple{pub, msg, sig, true})
		bad := append([]byte(nil), sig...)
		bad[i%len(bad)] ^= 1
		triples = append(triples, triple{pub, msg, bad, false})
	}

	const goroutines = 16
	const rounds = 200
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tr := triples[(g*7+r)%len(triples)]
				if got := c.VerifySig(tr.pub, tr.msg, tr.sig); got != tr.want {
					select {
					case errs <- fmt.Sprintf("goroutine %d round %d: VerifySig = %v, want %v", g, r, got, tr.want):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	st := c.Stats()
	if st.Size > int64(c.Capacity()) {
		t.Errorf("size %d exceeds capacity %d after storm", st.Size, c.Capacity())
	}
	if st.Hits == 0 {
		t.Error("storm produced no cache hits")
	}
}

func TestSharedIsSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared returned distinct caches")
	}
	if Shared().Capacity() != DefaultCapacity {
		t.Errorf("shared capacity = %d, want %d", Shared().Capacity(), DefaultCapacity)
	}
}

func TestCapacityRounding(t *testing.T) {
	c := New(1) // rounds up to one entry per shard
	if c.Capacity() != NumShards {
		t.Errorf("capacity = %d, want %d", c.Capacity(), NumShards)
	}
}

func BenchmarkVerifySig(b *testing.B) {
	msg := []byte("benchmark delegation signing bytes, roughly realistic length padding padding")
	pub, sig := signed(b, msg)
	b.Run("warm", func(b *testing.B) {
		c := New(0)
		c.VerifySig(pub, msg, sig)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !c.VerifySig(pub, msg, sig) {
				b.Fatal("rejected")
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := New(0)
			if !c.VerifySig(pub, msg, sig) {
				b.Fatal("rejected")
			}
		}
	})
}
