package replica

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/remote"
	"drbac/internal/transport"
)

// TestChaosPrimaryFlap flaps the follower's upstream connection while the
// primary keeps mutating: the link is repeatedly broken mid-stream (every
// frame after the first kills the connection), healed, and broken again.
// Whatever mix of lost pushes, dropped connections, and forced resyncs
// results, the follower must converge to the primary's exact summary once
// the network heals — and the whole exercise must not leak goroutines.
func TestChaosPrimaryFlap(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	e := newEnv(t, "BigISP", "Maria", "Replica")
	primary := e.wallet("BigISP", nil)
	e.serve("primary", "BigISP", primary, remote.Options{Role: "primary"})

	plan := transport.NewFaults()
	dialer := &transport.FaultDialer{Inner: e.net.Dialer(e.id("Replica")), Plan: plan}
	// Baseline after the server is up (its accept loop outlives this test's
	// leak check) but before any follower goroutine starts.
	before := runtime.NumGoroutine()
	f, fw := e.follower("Replica", []string{"primary"}, nil, dialer)

	var revokable []core.DelegationID
	for i := 0; i < 40; i++ {
		d := e.deleg(fmt.Sprintf("[Maria -> BigISP.r%d] BigISP", i))
		if err := primary.Publish(d); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			revokable = append(revokable, d.ID())
		}
		switch i % 8 {
		case 2:
			// Break the live connection after its next frame.
			plan.Set("primary", transport.Fault{FailAfterFrames: 1})
		case 4:
			// Refuse redials for a beat, then heal.
			plan.Set("primary", transport.Fault{RefuseDial: true})
		case 6:
			plan.Clear("primary")
		}
		if i%3 == 0 {
			time.Sleep(3 * time.Millisecond)
		}
	}
	for _, id := range revokable {
		primary.AcceptRevocation(id)
	}

	plan.Clear("primary")
	waitFor(t, "post-chaos convergence", func() bool { return converged(primary, fw, f) })

	ps, fs := primary.Stats(), fw.Stats()
	if ps.Delegations != fs.Delegations || ps.Revoked != fs.Revoked {
		t.Fatalf("follower stats %+v diverged from primary %+v", fs, ps)
	}

	// Tear everything down and verify the goroutine count returns to the
	// baseline: the follower loop, stream sessions, and pooled connections
	// all unwound.
	f.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines = %d after close, want <= %d (leak)", n, before)
	}
}
