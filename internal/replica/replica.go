// Package replica implements subscription-driven wallet replication (§9):
// a follower bootstraps from a primary's snapshot-at-seq, then applies the
// primary's full changelog stream in sequence order, resyncing automatically
// whenever it detects a gap. Because dRBAC credentials are self-certifying
// signed delegations, a replica needs no extra trust to answer read queries:
// every proof it serves carries the issuer signatures a verifier checks
// anyway. Mutations stay with the primary — a replica's wire server runs
// read-only.
package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/logstore"
	"drbac/internal/obs"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wallet"
	"drbac/internal/wire"
)

// testHookAfterSync, when set by a test, runs after every snapshot install
// and before the follower (re)subscribes — the window in which a primary
// mutation must be caught by the bootstrap gap check rather than the stream.
var testHookAfterSync func()

// streamBacklog bounds buffered-but-unapplied stream pushes. A follower
// that falls further behind blocks the client dispatcher; the server's own
// stream buffer then overflows and drops, which the seq gap detector turns
// into a resync — slowness degrades to a snapshot refetch, never to a wrong
// replica.
const streamBacklog = 1024

// Config configures a Follower.
type Config struct {
	// Local is the wallet replicated into; required. It should be otherwise
	// idle: local mutations would diverge it from the upstream.
	Local *wallet.Wallet
	// Addrs lists the upstream's addresses (the primary first, then any of
	// its replicas — a follower chain replays sequenced events faithfully).
	// Required unless Peers is set along with Addrs.
	Addrs []string
	// Dialer opens upstream connections; required unless Peers is set.
	Dialer transport.Dialer
	// Peers, if set, is the connection pool to draw from (e.g. the daemon's
	// shared pool); otherwise the follower builds a private one over Dialer.
	Peers *peer.Manager
	// RetryInterval paces reconnect attempts after the pool reports every
	// upstream address down. Default 500ms.
	RetryInterval time.Duration
	// HealthInterval paces liveness checks of an idle stream connection.
	// Default 2s.
	HealthInterval time.Duration
	// Obs receives the follower's logs and drbac_replica_* metrics.
	Obs *obs.Obs
	// Clock is the time source; nil means the system clock.
	Clock clock.Clock
	// Filter, if non-nil, gates which upstream delegations are installed
	// locally: only those it returns true for. Revocations and drops
	// always apply (they are no-ops for uninstalled delegations). A shard
	// split uses it to replay the source shard's changelog filtered to
	// the keys the new shard owns under the new map.
	Filter func(*core.Delegation) bool
}

// Status is a point-in-time view of a follower's replication progress.
type Status struct {
	// AppliedSeq is the upstream changelog seq the local wallet reflects.
	AppliedSeq uint64
	// LagSeconds is the age of the last applied event at apply time,
	// in whole seconds (0 until the first stream event arrives).
	LagSeconds int64
	// Resyncs counts snapshot refetches forced by detected gaps (the
	// bootstrap itself is not a resync).
	Resyncs int64
	// SegmentSyncs counts bootstraps and resyncs served over the
	// segment-shipping path (syncSegments) rather than the monolithic
	// snapshot.
	SegmentSyncs int64
	// Connected reports whether a live upstream stream is attached (true
	// only once the subscribe-all handshake completed on the current
	// connection).
	Connected bool
	// Upstream is the address the current (or last) stream came from.
	Upstream string
}

// Follower drives one wallet as a replica of an upstream wallet.
type Follower struct {
	cfg      Config
	clk      clock.Clock
	peers    *peer.Manager
	ownPeers bool

	cancel context.CancelFunc
	wg     sync.WaitGroup

	applied      atomic.Uint64
	lagSecs      atomic.Int64
	resyncs      atomic.Int64
	segmentSyncs atomic.Int64
	connected    atomic.Bool

	mu       sync.Mutex
	upstream string

	mApplied  *obs.Counter
	mResyncs  *obs.Counter
	mDrops    *obs.Counter
	mSegSyncs *obs.Counter
}

// Start validates cfg, registers the drbac_replica_* metrics, and launches
// the replication loop. Stop it with Close.
func Start(cfg Config) (*Follower, error) {
	if cfg.Local == nil {
		return nil, errors.New("replica: Config.Local is required")
	}
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("replica: Config.Addrs is required")
	}
	if cfg.Peers == nil && cfg.Dialer == nil {
		return nil, errors.New("replica: Config.Dialer or Config.Peers is required")
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 500 * time.Millisecond
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	f := &Follower{cfg: cfg, clk: cfg.Clock, peers: cfg.Peers}
	if f.clk == nil {
		f.clk = clock.System{}
	}
	if f.peers == nil {
		f.peers = peer.NewManager(peer.Config{Dialer: cfg.Dialer, Obs: cfg.Obs, Clock: f.clk})
		f.ownPeers = true
	}
	f.mApplied = cfg.Obs.Counter("drbac_replica_events_applied_total")
	f.mResyncs = cfg.Obs.Counter("drbac_replica_resyncs_total")
	f.mDrops = cfg.Obs.Counter("drbac_replica_events_skipped_total")
	f.mSegSyncs = cfg.Obs.Counter("drbac_replica_segment_syncs_total")
	if reg := cfg.Obs.Registry(); reg != nil {
		reg.GaugeFunc("drbac_replica_applied_seq", func() int64 { return int64(f.applied.Load()) })
		reg.GaugeFunc("drbac_replica_lag_seconds", f.lagSecs.Load)
		reg.GaugeFunc("drbac_replica_connected", func() int64 {
			if f.connected.Load() {
				return 1
			}
			return 0
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.run(ctx)
	}()
	return f, nil
}

// Close stops the replication loop and waits for it to exit. The local
// wallet keeps its replicated state.
func (f *Follower) Close() {
	f.cancel()
	f.wg.Wait()
	if f.ownPeers {
		f.peers.Close()
	}
}

// Status snapshots the follower's progress.
func (f *Follower) Status() Status {
	f.mu.Lock()
	up := f.upstream
	f.mu.Unlock()
	return Status{
		AppliedSeq:   f.applied.Load(),
		LagSeconds:   f.lagSecs.Load(),
		Resyncs:      f.resyncs.Load(),
		SegmentSyncs: f.segmentSyncs.Load(),
		Connected:    f.connected.Load(),
		Upstream:     up,
	}
}

// run is the outer reconnect loop: acquire any upstream, serve its stream
// until it breaks, back off briefly, repeat. The peer pool's circuit
// breaker does the per-address backoff; RetryInterval only paces the case
// where every address is down at once.
func (f *Follower) run(ctx context.Context) {
	log := f.cfg.Obs.Log()
	for ctx.Err() == nil {
		c, addr, err := f.peers.GetAny(ctx, f.cfg.Addrs)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			log.Debug("replica: no upstream reachable", "addrs", f.cfg.Addrs, "error", err)
			select {
			case <-ctx.Done():
				return
			case <-f.clk.After(f.cfg.RetryInterval):
			}
			continue
		}
		f.mu.Lock()
		f.upstream = addr
		f.mu.Unlock()
		log.Info("replica: streaming from upstream", "addr", addr)
		err = f.serve(ctx, c)
		f.connected.Store(false)
		if ctx.Err() != nil {
			return
		}
		log.Warn("replica: upstream stream ended", "addr", addr, "error", err)
		if !c.Healthy() {
			f.peers.ReportFailure(addr, c)
		}
		select {
		case <-ctx.Done():
			return
		case <-f.clk.After(f.cfg.RetryInterval):
		}
	}
}

// serve runs one bootstrap-then-stream session over c. It returns when the
// connection dies, an RPC fails, or ctx is canceled (nil error only in the
// cancellation case).
func (f *Follower) serve(ctx context.Context, c *remote.Client) error {
	// A fresh connection may be a different upstream entirely, so bootstrap
	// from seq 0: a delta against this follower's applied seq is only
	// meaningful against the connection it was built from.
	if err := f.syncOnce(ctx, c, 0); err != nil {
		return err
	}
	if testHookAfterSync != nil {
		testHookAfterSync()
	}

	// The handler runs on the client's push dispatcher; done unblocks it
	// when this session ends so the dispatcher never wedges on a dead
	// session's channel.
	events := make(chan wire.NotifyPush, streamBacklog)
	done := make(chan struct{})
	defer close(done)
	streamSeq, cancelStream, err := c.SubscribeAll(ctx, func(p wire.NotifyPush) {
		select {
		case events <- p:
		case <-done:
		}
	})
	if err != nil {
		return fmt.Errorf("replica: subscribe-all: %w", err)
	}
	defer cancelStream()
	// Connected means the live stream is attached: from here on, every
	// upstream mutation reaches this session without a resync.
	f.connected.Store(true)

	// A mutation that landed between the snapshot and the stream becoming
	// live is in neither; the seq mismatch proves it and one resync closes
	// the window (events with seq ≤ the new snapshot are skipped below).
	if streamSeq > f.applied.Load() {
		if err := f.resync(ctx, c, "bootstrap window"); err != nil {
			return err
		}
	}

	for {
		select {
		case <-ctx.Done():
			return nil
		case p := <-events:
			if err := f.handle(ctx, c, p); err != nil {
				return err
			}
		case <-f.clk.After(f.cfg.HealthInterval):
			if !c.Healthy() {
				return errors.New("replica: upstream connection lost")
			}
		}
	}
}

// handle applies one stream push under the seq discipline: duplicates are
// skipped, the next seq is applied, anything else is a gap and forces a
// resync.
func (f *Follower) handle(ctx context.Context, c *remote.Client, p wire.NotifyPush) error {
	applied := f.applied.Load()
	switch {
	case p.Seq <= applied:
		f.mDrops.Inc()
		return nil
	case p.Seq == applied+1:
		if err := f.apply(ctx, c, p); err != nil {
			return err
		}
		f.applied.Store(p.Seq)
		f.mApplied.Inc()
		if lag := f.clk.Now().Sub(p.At); lag > 0 {
			f.lagSecs.Store(int64(lag.Seconds()))
		} else {
			f.lagSecs.Store(0)
		}
		return nil
	default:
		return f.resync(ctx, c, fmt.Sprintf("gap: have %d, got %d", applied, p.Seq))
	}
}

// apply mirrors one upstream event onto the local wallet.
func (f *Follower) apply(ctx context.Context, c *remote.Client, p wire.NotifyPush) error {
	w := f.cfg.Local
	switch p.Kind {
	case "published":
		if p.Bundle == nil || p.Bundle.Delegation == nil {
			// An upstream that doesn't attach bundles (older wire rev)
			// still replicates correctly, one snapshot per publish.
			return f.resync(ctx, c, "published push without bundle")
		}
		if f.cfg.Filter != nil && !f.cfg.Filter(p.Bundle.Delegation) {
			return nil
		}
		if _, err := w.InstallReplicated(wallet.StoredBundle{
			Delegation: p.Bundle.Delegation,
			Support:    p.Bundle.Support,
		}); err != nil {
			f.cfg.Obs.Log().Warn("replica: install failed", "delegation", p.Delegation.Short(), "error", err)
		}
	case "revoked":
		w.AcceptRevocation(p.Delegation)
	case "expired":
		w.DropReplicated(p.Delegation, subs.Expired)
	case "stale":
		w.DropReplicated(p.Delegation, subs.Stale)
	case "renewed":
		// TTL renewals are sequenced to keep the stream gapless but carry
		// no replicable state change.
	default:
		f.cfg.Obs.Log().Warn("replica: unknown event kind", "kind", p.Kind)
	}
	return nil
}

// resync refetches upstream state and reconciles the local wallet to it.
// Counted in drbac_replica_resyncs_total (the initial bootstrap is not).
// Because a resync happens on the connection the applied seq was built
// from, it may fetch a delta — only records newer than the applied seq.
func (f *Follower) resync(ctx context.Context, c *remote.Client, why string) error {
	f.resyncs.Add(1)
	f.mResyncs.Inc()
	f.cfg.Obs.Log().Info("replica: resyncing", "reason", why)
	return f.syncOnce(ctx, c, f.applied.Load())
}

// syncOnce reconciles the local wallet to the upstream, preferring the
// segment-shipping path (log-store upstreams replay raw records, shipping
// only those after afterSeq) and falling back to the monolithic snapshot
// for upstreams that cannot ship segments.
func (f *Follower) syncOnce(ctx context.Context, c *remote.Client, afterSeq uint64) error {
	// Each bootstrap/catch-up runs as its own trace so a slow or failing
	// replica sync is retained and explains itself (segment vs snapshot
	// path, records replayed).
	sp := f.cfg.Obs.StartSpan(obs.NewTraceID(), "replica.sync", "afterSeq", afterSeq)
	err := f.syncOnceSpanned(ctx, c, afterSeq, sp)
	if err != nil {
		sp.Fail(err)
	}
	sp.End("ok", err == nil, "applied", f.applied.Load())
	return err
}

func (f *Follower) syncOnceSpanned(ctx context.Context, c *remote.Client, afterSeq uint64, sp *obs.Span) error {
	ssp := sp.StartChild("replica.sync-segments")
	segErr := f.syncSegments(ctx, c, afterSeq)
	if segErr == nil {
		ssp.End("ok", true)
		return nil
	}
	// Not a span failure: upstreams on non-log stores legitimately cannot
	// ship segments and the snapshot path below is the designed fallback.
	ssp.End("ok", false, "error", segErr.Error())
	if ctx.Err() != nil {
		return segErr
	}
	f.cfg.Obs.Log().Debug("replica: segment sync unavailable, falling back to snapshot", "error", segErr)
	csp := sp.StartChild("replica.snapshot")
	resp, err := c.Sync(ctx)
	if err != nil {
		err = fmt.Errorf("replica: sync: %w", err)
		csp.Fail(err)
		csp.End()
		return err
	}
	defer func() { csp.End("bundles", len(resp.Bundles), "seq", resp.Seq) }()
	w := f.cfg.Local
	for _, id := range resp.Revoked {
		w.AcceptRevocation(id)
	}
	// A snapshot can carry the whole upstream wallet; batch-verify all its
	// signatures across the worker pool so the per-bundle installs run warm.
	batch := make([]*core.Delegation, 0, len(resp.Bundles))
	for _, b := range resp.Bundles {
		batch = append(batch, b.Delegation)
	}
	core.PrimeDelegations(w.SigVerifier(), batch)
	present := make(map[core.DelegationID]bool, len(resp.Bundles))
	for _, b := range resp.Bundles {
		if b.Delegation == nil {
			continue
		}
		present[b.Delegation.ID()] = true
		if f.cfg.Filter != nil && !f.cfg.Filter(b.Delegation) {
			continue
		}
		if _, err := w.InstallReplicated(wallet.StoredBundle{Delegation: b.Delegation, Support: b.Support}); err != nil {
			f.cfg.Obs.Log().Warn("replica: snapshot install failed",
				"delegation", b.Delegation.ID().Short(), "error", err)
		}
	}
	for _, d := range w.Delegations() {
		if !present[d.ID()] {
			w.DropReplicated(d.ID(), subs.Stale)
		}
	}
	f.applied.Store(resp.Seq)
	return nil
}

// syncSegments bootstraps (or delta-catches-up) over the segment-shipping
// path: the upstream ships its raw record log and the follower replays it
// in seq order. Records at or below afterSeq were already applied on this
// connection and are skipped — replaying an old delete over a newer
// re-publish would corrupt the replica.
func (f *Follower) syncSegments(ctx context.Context, c *remote.Client, afterSeq uint64) error {
	resp, err := c.SyncSegments(ctx, afterSeq)
	if err != nil {
		return fmt.Errorf("replica: sync-segments: %w", err)
	}
	w := f.cfg.Local
	var recs []logstore.Record
	for _, seg := range resp.Segments {
		rs, err := logstore.DecodeSegment(seg.Records)
		if err != nil {
			return fmt.Errorf("replica: shipped segment %s: %w", seg.Name, err)
		}
		recs = append(recs, rs...)
	}
	// Batch-verify every shipped bundle's signature across the worker pool
	// so the per-record installs run warm, as the snapshot path does.
	var batch []*core.Delegation
	for _, r := range recs {
		if r.Kind == logstore.KindPut && r.Seq > afterSeq && r.Bundle != nil && r.Bundle.Delegation != nil {
			batch = append(batch, r.Bundle.Delegation)
		}
	}
	core.PrimeDelegations(w.SigVerifier(), batch)

	present := make(map[core.DelegationID]bool)
	for _, r := range recs {
		if r.Seq <= afterSeq {
			continue
		}
		switch r.Kind {
		case logstore.KindPut:
			if r.Bundle == nil || r.Bundle.Delegation == nil {
				continue
			}
			present[r.ID] = true
			if f.cfg.Filter != nil && !f.cfg.Filter(r.Bundle.Delegation) {
				continue
			}
			if _, err := w.InstallReplicated(wallet.StoredBundle{
				Delegation: r.Bundle.Delegation,
				Support:    r.Bundle.Support,
			}); err != nil {
				f.cfg.Obs.Log().Warn("replica: segment install failed",
					"delegation", r.ID.Short(), "error", err)
			}
		case logstore.KindDelete:
			delete(present, r.ID)
			w.DropReplicated(r.ID, subs.Stale)
		case logstore.KindRevoke:
			w.AcceptRevocation(r.ID)
		}
	}
	if afterSeq == 0 {
		// Full bootstrap: drop local leftovers the shipped log never puts —
		// compaction already folded their records out on the upstream. A
		// delta has no global view, so reconciliation is replay-only there.
		for _, d := range w.Delegations() {
			if !present[d.ID()] {
				w.DropReplicated(d.ID(), subs.Stale)
			}
		}
	}
	f.applied.Store(resp.Seq)
	f.segmentSyncs.Add(1)
	f.mSegSyncs.Inc()
	f.cfg.Obs.Log().Info("replica: segment sync applied",
		"afterSeq", afterSeq, "seq", resp.Seq, "segments", len(resp.Segments), "records", len(recs))
	return nil
}
