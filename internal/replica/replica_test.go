package replica

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/logstore"
	"drbac/internal/obs"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

var testStart = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

// env is the replication test bench: identities, a fake wallet clock, and
// an in-process network.
type env struct {
	t   *testing.T
	ids map[string]*core.Identity
	dir *core.MemDirectory
	clk *clock.Fake
	net *transport.MemNetwork
}

func newEnv(t *testing.T, names ...string) *env {
	t.Helper()
	e := &env{
		t:   t,
		ids: make(map[string]*core.Identity),
		dir: core.NewDirectory(),
		clk: clock.NewFake(testStart),
		net: transport.NewMemNetwork(),
	}
	for i, name := range names {
		seed := make([]byte, 32)
		seed[0] = byte(i + 1)
		copy(seed[1:], name)
		id, err := core.IdentityFromSeed(name, seed)
		if err != nil {
			t.Fatalf("identity %s: %v", name, err)
		}
		e.ids[name] = id
		e.dir.Add(id.Entity())
	}
	return e
}

func (e *env) id(name string) *core.Identity {
	id, ok := e.ids[name]
	if !ok {
		e.t.Fatalf("unknown identity %q", name)
	}
	return id
}

func (e *env) deleg(text string) *core.Delegation {
	e.t.Helper()
	parsed, err := core.ParseDelegation(text, e.dir)
	if err != nil {
		e.t.Fatalf("parse %q: %v", text, err)
	}
	var issuer *core.Identity
	for _, id := range e.ids {
		if id.ID() == parsed.Issuer.ID() {
			issuer = id
		}
	}
	if issuer == nil {
		e.t.Fatalf("no identity for issuer of %q", text)
	}
	d, err := core.Issue(issuer, parsed.Template, e.clk.Now())
	if err != nil {
		e.t.Fatalf("issue %q: %v", text, err)
	}
	return d
}

func (e *env) wallet(ownerName string, o *obs.Obs) *wallet.Wallet {
	return wallet.New(wallet.Config{Owner: e.id(ownerName), Clock: e.clk, Directory: e.dir, Obs: o})
}

// serve exposes w at addr with the given wire-server options.
func (e *env) serve(addr, ownerName string, w *wallet.Wallet, opts remote.Options) *remote.Server {
	e.t.Helper()
	ln, err := e.net.Listen(addr, e.id(ownerName))
	if err != nil {
		e.t.Fatal(err)
	}
	s := remote.ServeOptions(w, ln, opts)
	e.t.Cleanup(s.Close)
	return s
}

// follower starts a follower replicating from addrs into a fresh wallet.
func (e *env) follower(ownerName string, addrs []string, o *obs.Obs, d transport.Dialer) (*Follower, *wallet.Wallet) {
	e.t.Helper()
	if d == nil {
		d = e.net.Dialer(e.id(ownerName))
	}
	w := e.wallet(ownerName, o)
	f, err := Start(Config{
		Local:          w,
		Addrs:          addrs,
		Dialer:         d,
		Obs:            o,
		RetryInterval:  20 * time.Millisecond,
		HealthInterval: 25 * time.Millisecond,
	})
	if err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(f.Close)
	return f, w
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// converged reports whether the follower wallet mirrors the primary:
// same applied seq and the same replicable-state summary.
func converged(primary, follower *wallet.Wallet, f *Follower) bool {
	ps, fs := primary.Stats(), follower.Stats()
	return f.Status().AppliedSeq == primary.Seq() &&
		ps.Delegations == fs.Delegations && ps.Revoked == fs.Revoked
}

// TestFollowerBootstrapAndStream replays the basic replication lifecycle:
// state published before the follower starts arrives via the bootstrap
// snapshot, state published after it arrives via the stream, and a
// revocation propagates — leaving both wallets with identical summaries.
func TestFollowerBootstrapAndStream(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Replica")
	primary := e.wallet("BigISP", nil)
	d1 := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := primary.Publish(d1); err != nil {
		t.Fatal(err)
	}
	e.serve("primary", "BigISP", primary, remote.Options{Role: "primary"})

	f, fw := e.follower("Replica", []string{"primary"}, nil, nil)
	// Wait for the live stream, not just the snapshot: a publish issued
	// before the subscription attaches lands in the bootstrap window and is
	// (correctly) recovered by a resync, which this test asserts against.
	waitFor(t, "bootstrap convergence", func() bool {
		return f.Status().Connected && converged(primary, fw, f)
	})
	if !fw.Contains(d1.ID()) {
		t.Fatalf("follower missing bootstrap delegation %s", d1.ID().Short())
	}

	// Live stream: a publish and a revocation after the follower attached.
	d2 := e.deleg("[BigISP.member -> BigISP.user] BigISP")
	if err := primary.Publish(d2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream publish", func() bool { return fw.Contains(d2.ID()) })
	primary.AcceptRevocation(d1.ID())
	waitFor(t, "stream revocation", func() bool { return fw.IsRevoked(d1.ID()) })
	waitFor(t, "post-mutation convergence", func() bool { return converged(primary, fw, f) })

	st := f.Status()
	if st.Resyncs != 0 {
		t.Errorf("Resyncs = %d, want 0 (clean stream needs no resync)", st.Resyncs)
	}
	if !st.Connected || st.Upstream != "primary" {
		t.Errorf("Status = %+v, want connected to primary", st)
	}
}

// TestBootstrapRaceResyncsOnce drives the snapshot-vs-stream race: a
// mutation lands on the primary after the follower's snapshot but before
// its stream subscription. The subscribe-all seq exposes the gap, and
// exactly one resync closes it.
func TestBootstrapRaceResyncsOnce(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Replica")
	primary := e.wallet("BigISP", nil)
	if err := primary.Publish(e.deleg("[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	e.serve("primary", "BigISP", primary, remote.Options{Role: "primary"})

	raced := e.deleg("[BigISP.member -> BigISP.user] BigISP")
	var once sync.Once
	testHookAfterSync = func() {
		once.Do(func() {
			if err := primary.Publish(raced); err != nil {
				t.Errorf("raced publish: %v", err)
			}
		})
	}
	defer func() { testHookAfterSync = nil }()

	f, fw := e.follower("Replica", []string{"primary"}, nil, nil)
	waitFor(t, "race convergence", func() bool { return converged(primary, fw, f) })
	if !fw.Contains(raced.ID()) {
		t.Fatalf("follower missing delegation published in the bootstrap window")
	}
	if got := f.Status().Resyncs; got != 1 {
		t.Errorf("Resyncs = %d, want exactly 1", got)
	}
}

// TestReplicaMetricsExported checks the drbac_replica_* instruments land in
// the follower's registry with live values.
func TestReplicaMetricsExported(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Replica")
	primary := e.wallet("BigISP", nil)
	if err := primary.Publish(e.deleg("[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	e.serve("primary", "BigISP", primary, remote.Options{Role: "primary"})

	reg := obs.NewRegistry()
	o := obs.New(nil, reg)
	f, fw := e.follower("Replica", []string{"primary"}, o, nil)
	waitFor(t, "metric convergence", func() bool {
		return f.Status().Connected && converged(primary, fw, f)
	})

	snap := reg.Snapshot()
	if got, want := snap.Gauges["drbac_replica_applied_seq"], int64(primary.Seq()); got != want {
		t.Errorf("drbac_replica_applied_seq = %d, want %d", got, want)
	}
	if got := snap.Gauges["drbac_replica_connected"]; got != 1 {
		t.Errorf("drbac_replica_connected = %d, want 1", got)
	}
	if lag, ok := snap.Gauges["drbac_replica_lag_seconds"]; !ok || lag < 0 {
		t.Errorf("drbac_replica_lag_seconds = %d (present %v), want >= 0", lag, ok)
	}
}

// TestReadOnlyReplicaRejectsMutations locks down the §9 mutation rule: a
// replica answers queries but refuses publish and revoke.
func TestReadOnlyReplicaRejectsMutations(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Replica")
	primary := e.wallet("BigISP", nil)
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := primary.Publish(d); err != nil {
		t.Fatal(err)
	}
	e.serve("primary", "BigISP", primary, remote.Options{Role: "primary"})
	_, fw := e.follower("Replica", []string{"primary"}, nil, nil)
	e.serve("replica", "Replica", fw, remote.Options{Role: "replica", ReadOnly: true})
	waitFor(t, "replica serving state", func() bool { return fw.Contains(d.ID()) })

	c, err := remote.Dial(context.Background(), e.net.Dialer(e.id("Maria")), "replica")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	subj, err := core.ParseSubject("Maria", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	role, err := core.ParseRole("BigISP.member", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryDirect(ctx, subj, role, nil, 0); err != nil {
		t.Fatalf("replica read failed: %v", err)
	}

	extra := e.deleg("[BigISP.member -> BigISP.user] BigISP")
	if err := c.Publish(ctx, extra, nil, 0); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Errorf("publish on replica: err = %v, want read-only refusal", err)
	}
	if err := c.Revoke(ctx, d.ID()); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Errorf("revoke on replica: err = %v, want read-only refusal", err)
	}
}

// TestReadFailover scales the read path out: a client pool holding the
// primary and a replica keeps answering queries after the primary dies.
func TestReadFailover(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Replica")
	primary := e.wallet("BigISP", nil)
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := primary.Publish(d); err != nil {
		t.Fatal(err)
	}
	psrv := e.serve("primary", "BigISP", primary, remote.Options{Role: "primary"})
	_, fw := e.follower("Replica", []string{"primary"}, nil, nil)
	e.serve("replica", "Replica", fw, remote.Options{Role: "replica", ReadOnly: true})
	waitFor(t, "replica serving state", func() bool { return fw.Contains(d.ID()) })

	pool := peer.NewManager(peer.Config{Dialer: e.net.Dialer(e.id("Maria"))})
	defer pool.Close()
	group := []string{"primary", "replica"}
	ctx := context.Background()

	subj, err := core.ParseSubject("Maria", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	role, err := core.ParseRole("BigISP.member", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	query := func() (string, error) {
		c, addr, err := pool.GetAny(ctx, group)
		if err != nil {
			return "", err
		}
		if _, err := c.QueryDirect(ctx, subj, role, nil, 0); err != nil {
			if !c.Healthy() {
				pool.ReportFailure(addr, c)
			}
			return addr, err
		}
		return addr, nil
	}

	if _, err := query(); err != nil {
		t.Fatalf("query with primary up: %v", err)
	}

	psrv.Close() // primary gone: pooled connection breaks, dials fail

	// The first attempt may land on the dying pooled connection; the pool
	// evicts it and fails over to the replica within a few tries.
	var addr string
	waitFor(t, "failover to replica", func() bool {
		a, err := query()
		if err != nil {
			return false
		}
		addr = a
		return true
	})
	if addr != "replica" {
		t.Errorf("failover answered from %q, want replica", addr)
	}
}

// TestChainedReplica replicates a replica: sequenced events emitted by a
// follower's own wallet feed a second-tier follower to the same state.
func TestChainedReplica(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Mid", "Leaf")
	primary := e.wallet("BigISP", nil)
	if err := primary.Publish(e.deleg("[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	e.serve("primary", "BigISP", primary, remote.Options{Role: "primary"})

	_, mid := e.follower("Mid", []string{"primary"}, nil, nil)
	e.serve("mid", "Mid", mid, remote.Options{Role: "replica", ReadOnly: true})
	leafF, leaf := e.follower("Leaf", []string{"mid"}, nil, nil)

	d2 := e.deleg("[BigISP.member -> BigISP.user] BigISP")
	if err := primary.Publish(d2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "two-hop convergence", func() bool {
		return leaf.Contains(d2.ID()) && converged(mid, leaf, leafF)
	})
	ps, ls := primary.Stats(), leaf.Stats()
	if ps.Delegations != ls.Delegations || ps.Revoked != ls.Revoked {
		t.Errorf("leaf stats %+v diverged from primary %+v", ls, ps)
	}
}

// TestSplitAddrs pins the replica-group address syntax.
func TestSplitAddrs(t *testing.T) {
	got := remote.SplitAddrs(" a:1, b:2 ,,c:3 ")
	want := []string{"a:1", "b:2", "c:3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("SplitAddrs = %v, want %v", got, want)
	}
	if out := remote.SplitAddrs(""); len(out) != 0 {
		t.Errorf("SplitAddrs(\"\") = %v, want empty", out)
	}
}

// TestStartValidation locks down Config validation errors.
func TestStartValidation(t *testing.T) {
	e := newEnv(t, "A")
	w := e.wallet("A", nil)
	cases := []Config{
		{},
		{Local: w},
		{Local: w, Addrs: []string{"x"}},
	}
	for i, cfg := range cases {
		if _, err := Start(cfg); err == nil {
			t.Errorf("case %d: Start accepted invalid config", i)
		} else if errors.Is(err, context.Canceled) {
			t.Errorf("case %d: unexpected error %v", i, err)
		}
	}
}

// TestFollowerSegmentBootstrap is the acceptance test for segment-shipped
// replication: a follower bootstrapping from a log-store primary must take
// the syncSegments path (not the monolithic snapshot) and land on exactly
// the state and seq a plain sync bootstrap reports.
func TestFollowerSegmentBootstrap(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Replica")
	st, err := logstore.Open(filepath.Join(t.TempDir(), "log"),
		logstore.Options{CompactInterval: -1, SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	primary := wallet.New(wallet.Config{Owner: e.id("BigISP"), Clock: e.clk, Directory: e.dir, Store: st})
	const n = 12
	delegs := make([]*core.Delegation, n)
	for i := 0; i < n; i++ {
		delegs[i] = e.deleg(fmt.Sprintf("[Maria -> BigISP.r%d] BigISP", i))
		if err := primary.Publish(delegs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Revoke(delegs[0].ID(), e.id("BigISP").ID()); err != nil {
		t.Fatal(err)
	}
	e.serve("primary", "BigISP", primary, remote.Options{Role: "primary"})

	f, fw := e.follower("Replica", []string{"primary"}, nil, nil)
	waitFor(t, "segment bootstrap convergence", func() bool { return converged(primary, fw, f) })
	if segs := f.Status().SegmentSyncs; segs < 1 {
		t.Fatalf("SegmentSyncs = %d: bootstrap did not take the syncSegments path", segs)
	}
	if !fw.IsRevoked(delegs[0].ID()) || fw.Contains(delegs[0].ID()) {
		t.Fatal("revocation tombstone did not replay from the shipped segments")
	}

	// Equivalence: the monolithic sync snapshot of the same primary reports
	// the same seq and replicable state the segment bootstrap produced.
	c, err := remote.Dial(context.Background(), e.net.Dialer(e.id("Maria")), "primary")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	snap, err := c.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != f.Status().AppliedSeq {
		t.Fatalf("segment bootstrap applied seq %d, sync snapshot reports %d", f.Status().AppliedSeq, snap.Seq)
	}
	if len(snap.Bundles) != fw.Len() {
		t.Fatalf("segment bootstrap holds %d delegations, sync snapshot ships %d", fw.Len(), len(snap.Bundles))
	}
	for _, b := range snap.Bundles {
		if !fw.Contains(b.Delegation.ID()) {
			t.Fatalf("segment bootstrap missing %s from the sync snapshot", b.Delegation.ID().Short())
		}
	}

	// Stream continuity after a segment bootstrap: a new publish arrives
	// without a resync.
	extra := e.deleg("[Maria -> BigISP.extra] BigISP")
	if err := primary.Publish(extra); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-bootstrap stream apply", func() bool { return fw.Contains(extra.ID()) })
}

// TestFollowerSegmentDeltaResync forces a stream gap on a log-store primary
// and checks the resync fetches a delta (afterSeq > 0) over the segment
// path rather than re-shipping the whole log.
func TestFollowerSegmentDeltaResync(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Replica")
	st, err := logstore.Open(filepath.Join(t.TempDir(), "log"),
		logstore.Options{CompactInterval: -1, SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	primary := wallet.New(wallet.Config{Owner: e.id("BigISP"), Clock: e.clk, Directory: e.dir, Store: st})
	for i := 0; i < 8; i++ {
		if err := primary.Publish(e.deleg(fmt.Sprintf("[Maria -> BigISP.r%d] BigISP", i))); err != nil {
			t.Fatal(err)
		}
	}
	e.serve("primary", "BigISP", primary, remote.Options{Role: "primary"})
	f, fw := e.follower("Replica", []string{"primary"}, nil, nil)
	waitFor(t, "bootstrap", func() bool { return converged(primary, fw, f) })
	bootSyncs := f.Status().SegmentSyncs

	// Fake a gap: pretend the follower missed an event so the next push
	// triggers a resync at its current applied seq.
	f.applied.Store(f.applied.Load() - 1)
	if err := primary.Publish(e.deleg("[Maria -> BigISP.gap] BigISP")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "gap-driven delta resync", func() bool {
		return f.Status().Resyncs >= 1 && converged(primary, fw, f)
	})
	if f.Status().SegmentSyncs <= bootSyncs {
		t.Fatalf("resync did not use the segment path (SegmentSyncs %d -> %d)",
			bootSyncs, f.Status().SegmentSyncs)
	}
}

// TestFollowerFallsBackToSyncWithoutSegments pins the downgrade path: a
// primary on a non-segment store answers sync-segments with an error and
// the follower bootstraps via the monolithic snapshot, never counting a
// segment sync.
func TestFollowerFallsBackToSyncWithoutSegments(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Replica")
	primary := e.wallet("BigISP", nil)
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := primary.Publish(d); err != nil {
		t.Fatal(err)
	}
	e.serve("primary", "BigISP", primary, remote.Options{Role: "primary"})
	f, fw := e.follower("Replica", []string{"primary"}, nil, nil)
	waitFor(t, "fallback bootstrap", func() bool { return converged(primary, fw, f) })
	if segs := f.Status().SegmentSyncs; segs != 0 {
		t.Fatalf("SegmentSyncs = %d on a MemStore primary, want 0 (sync fallback)", segs)
	}
	if !fw.Contains(d.ID()) {
		t.Fatal("fallback bootstrap lost the published delegation")
	}
}
