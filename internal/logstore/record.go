package logstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"time"

	"drbac/internal/core"
	"drbac/internal/wallet"
)

// RecordKind discriminates log records.
type RecordKind string

// Record kinds. Put and Delete carry a delegation lifecycle change; Revoke
// is a permanent tombstone; Header opens every segment file and carries
// segment metadata instead of wallet state.
const (
	KindHeader RecordKind = "hdr"
	KindPut    RecordKind = "put"
	KindDelete RecordKind = "del"
	KindRevoke RecordKind = "rev"
)

// formatVersion is written into every segment header; readers reject
// segments from a newer format.
const formatVersion = 1

// Record is one framed entry in a segment: a seq-stamped mutation (put,
// delete, revoke) or the segment header. Records are JSON inside a binary
// frame (see EncodeFrame) so the framing stays format-agnostic while the
// payload reuses the canonical delegation serialization.
type Record struct {
	Seq  uint64            `json:"seq,omitempty"`
	Kind RecordKind        `json:"kind"`
	ID   core.DelegationID `json:"id,omitempty"`
	// At is the revocation instant of a KindRevoke record.
	At     time.Time            `json:"at,omitempty"`
	Bundle *wallet.StoredBundle `json:"bundle,omitempty"`

	// Header-only fields.
	Version int `json:"version,omitempty"`
	// Compacted marks a segment rewritten by the compactor: it holds only
	// records that were live at compaction time plus tombstones.
	Compacted bool `json:"compacted,omitempty"`
}

// Frame layout: a 4-byte big-endian payload length, a 4-byte CRC-32
// (Castagnoli) of the payload, then the JSON payload. The CRC lets recovery
// distinguish a cleanly written record from a torn or bit-rotted tail.
const frameHeaderLen = 8

// maxFrameLen bounds a single record frame. Delegation bundles are a few
// KiB even with deep support chains; anything beyond this is corruption,
// and bounding it keeps a flipped length byte from driving a giant
// allocation during recovery or while decoding shipped segments.
const maxFrameLen = 16 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeFrame appends rec's wire frame to buf and returns the extended
// slice.
func EncodeFrame(buf []byte, rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("logstore: encode %s record: %w", rec.Kind, err)
	}
	if len(payload) > maxFrameLen {
		return buf, fmt.Errorf("logstore: record of %d bytes exceeds frame limit", len(payload))
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// DecodeFrame reads one frame from the front of data, returning the record
// and the number of bytes consumed. It reports ok=false — with n holding
// the bytes that are cleanly decodable before the problem — when the frame
// is torn (short), zero-filled, CRC-damaged, or otherwise invalid; callers
// treat everything from that offset on as an unacknowledged tail.
func DecodeFrame(data []byte) (rec Record, n int, ok bool) {
	if len(data) < frameHeaderLen {
		return Record{}, 0, false
	}
	length := binary.BigEndian.Uint32(data[0:4])
	if length == 0 || length > maxFrameLen {
		// A zero length is what a zero-filled (preallocated but unwritten)
		// tail decodes to; an oversized one is a corrupt length field.
		return Record{}, 0, false
	}
	if uint32(len(data)-frameHeaderLen) < length {
		return Record{}, 0, false
	}
	payload := data[frameHeaderLen : frameHeaderLen+int(length)]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(data[4:8]) {
		return Record{}, 0, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, false
	}
	return rec, frameHeaderLen + int(length), true
}

// DecodeSegment decodes every frame in data, the payload of one shipped
// segment. Unlike recovery — which truncates a torn tail in place — a
// shipped segment was read from a healthy source, so any undecodable frame
// is an error, not a tail to discard. The leading header record is
// validated and dropped from the returned slice.
func DecodeSegment(data []byte) ([]Record, error) {
	var out []Record
	off := 0
	for off < len(data) {
		rec, n, ok := DecodeFrame(data[off:])
		if !ok {
			return nil, fmt.Errorf("logstore: bad frame at offset %d of %d-byte segment", off, len(data))
		}
		off += n
		if rec.Kind == KindHeader {
			if rec.Version > formatVersion {
				return nil, fmt.Errorf("logstore: segment format v%d is newer than supported v%d", rec.Version, formatVersion)
			}
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}
