// Package logstore is a segmented append-only implementation of the
// wallet's durable Store: every accepted mutation appends one CRC-framed,
// seq-stamped record to the active segment file instead of rewriting the
// whole wallet state (the FileStore's model, priced by EXP-R1). Appends are
// group-committed — concurrent writers share one fsync — segments seal at a
// size threshold, and a background compactor folds revoked, expired, and
// overwritten bundles out of sealed segments. Startup replays the segments
// in order, truncating a torn tail at the last valid frame.
//
// Because records carry the wallet changelog seq (§9), the sealed segments
// double as a shippable replication artifact: SnapshotSegments hands a
// bootstrapping replica the raw frames with seq greater than its high-water
// mark, which the remote layer serves as the syncSegments wire request.
package logstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"drbac/internal/core"
	"drbac/internal/obs"
	"drbac/internal/wallet"
)

// Options tunes a Store. The zero value is production-ready.
type Options struct {
	// SegmentBytes is the size at which the active segment seals and a new
	// one rolls. Zero means 1 MiB.
	SegmentBytes int64
	// CompactInterval is how often the background compactor scans sealed
	// segments. Zero means 15s; negative disables the background pass
	// (Compact can still be called directly).
	CompactInterval time.Duration
	// CompactMinDead is the number of dead put records a sealed segment must
	// accrue before the compactor rewrites it. Zero means 1.
	CompactMinDead int
	// Registry receives drbac_logstore_* metrics; nil disables them.
	Registry *obs.Registry
	// Obs, when set, gives commit batches and compaction passes trace
	// spans (and supplies Registry when it is nil).
	Obs *obs.Obs
}

func (o Options) withDefaults() Options {
	if o.Registry == nil && o.Obs != nil {
		o.Registry = o.Obs.Registry()
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.CompactInterval == 0 {
		o.CompactInterval = 15 * time.Second
	}
	if o.CompactMinDead == 0 {
		o.CompactMinDead = 1
	}
	return o
}

// segExt is the segment file suffix; compaction writes its replacement file
// under segCmpExt and renames over the original.
const (
	segExt    = ".seg"
	segCmpExt = ".seg.cmp"
)

var errClosed = errors.New("logstore: store is closed")

// segment is the store's bookkeeping for one on-disk segment file. The last
// entry of Store.segments is the active (appendable) segment; all earlier
// ones are sealed and immutable except for compaction's atomic rewrite.
type segment struct {
	name      string
	index     int
	compacted bool
	size      int64 // valid bytes, always == file length
	records   int   // non-header records
	minSeq    uint64
	maxSeq    uint64
	// dead counts put records superseded by a later put or delete; the
	// compactor's trigger.
	dead int
}

// recLoc locates the live put record for a delegation ID.
type recLoc struct {
	seg *segment
	seq uint64
}

// commitBatch is one group commit: every appender that wrote a frame while
// the batch was open shares the syncer's single fsync and wakes on done.
type commitBatch struct {
	files      map[*os.File]struct{}
	closeAfter []*os.File
	records    int
	done       chan struct{}
	err        error
}

// Store is a segmented append-only wallet.Store. See the package comment.
type Store struct {
	dir  string
	opts Options
	// mem is the replay-derived in-memory view answering all reads.
	mem *wallet.MemStore

	mAppends      *obs.Counter
	mSeals        *obs.Counter
	mCompactions  *obs.Counter
	mReclaimed    *obs.Counter
	mBatches      *obs.Counter
	mBatchRecords *obs.Counter

	obs *obs.Obs

	mu         sync.Mutex
	failed     error // sticky: set when the active file is in an unknown state
	syncErr    error // sticky: first fsync failure; durability is unprovable after it
	compactErr error // last compaction failure; cleared by a clean pass
	closed     bool
	segments   []*segment
	active     *os.File
	next       int // next segment index
	putLoc     map[core.DelegationID]recLoc
	cur        *commitBatch

	// compactMu serializes Compact passes (background and explicit).
	compactMu sync.Mutex

	syncCh chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup
}

var _ wallet.SegmentStore = (*Store)(nil)

// Open opens (or initializes) the segmented store rooted at dir, replaying
// existing segments into memory. Torn tails — partial frames, CRC damage,
// zero-fill from a crash mid-append — are truncated at the last valid
// frame: a torn record was never fsync-acknowledged to any caller, so
// discarding it restores exactly the acknowledged state. Leftover
// compaction temp files are removed the same way a FileStore drops a stale
// .tmp.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("logstore %s: %w", dir, err)
	}
	s := &Store{
		dir:    dir,
		obs:    opts.Obs,
		opts:   opts,
		mem:    wallet.NewMemStore(),
		putLoc: make(map[core.DelegationID]recLoc),
		next:   1,
		syncCh: make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	if reg := opts.Registry; reg != nil {
		s.mAppends = reg.Counter("drbac_logstore_appends_total")
		s.mSeals = reg.Counter("drbac_logstore_seals_total")
		s.mCompactions = reg.Counter("drbac_logstore_compactions_total")
		s.mReclaimed = reg.Counter("drbac_logstore_compact_reclaimed_bytes_total")
		s.mBatches = reg.Counter("drbac_logstore_commit_batches_total")
		s.mBatchRecords = reg.Counter("drbac_logstore_commit_batch_records_total")
		reg.GaugeFunc("drbac_logstore_segments", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.segments))
		})
		reg.GaugeFunc("drbac_logstore_active_segment_bytes", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if len(s.segments) == 0 {
				return 0
			}
			return s.segments[len(s.segments)-1].size
		})
	}
	truncations, err := s.recover()
	if err != nil {
		return nil, err
	}
	if reg := opts.Registry; reg != nil {
		reg.Counter("drbac_logstore_recovery_truncations_total").Add(int64(truncations))
	}
	s.mu.Lock()
	if len(s.segments) == 0 {
		err = s.rollLocked()
	} else {
		// Reopen the last segment for appending.
		last := s.segments[len(s.segments)-1]
		s.active, err = os.OpenFile(filepath.Join(dir, last.name), os.O_WRONLY|os.O_APPEND, 0o600)
	}
	s.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("logstore %s: %w", dir, err)
	}
	s.wg.Add(1)
	go s.syncLoop()
	if opts.CompactInterval > 0 {
		s.wg.Add(1)
		go s.compactLoop(opts.CompactInterval)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// recover scans the segment directory, truncating torn tails and replaying
// every valid record into the in-memory view. It returns the number of
// segments whose tail was truncated.
func (s *Store) recover() (truncations int, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("logstore %s: %w", s.dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, segCmpExt):
			// A compaction that crashed before its rename; the original
			// segment is still authoritative.
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return 0, fmt.Errorf("logstore %s: removing stale %s: %w", s.dir, name, err)
			}
		case strings.HasSuffix(name, segExt):
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return 0, err
		}
		seg := &segment{name: name, index: segmentIndex(name)}
		if seg.index >= s.next {
			s.next = seg.index + 1
		}
		off := 0
		for off < len(data) {
			rec, n, ok := DecodeFrame(data[off:])
			if !ok {
				break
			}
			off += n
			if rec.Kind == KindHeader {
				if rec.Version > formatVersion {
					return 0, fmt.Errorf("logstore %s: segment %s format v%d is newer than supported v%d",
						s.dir, name, rec.Version, formatVersion)
				}
				seg.compacted = seg.compacted || rec.Compacted
				continue
			}
			s.applyRecovered(seg, rec)
		}
		if off < len(data) {
			// Torn tail: everything decodable was acknowledged, the rest was
			// not. Cut the file back so the next append lands on a frame
			// boundary.
			truncations++
			if err := os.Truncate(path, int64(off)); err != nil {
				return 0, fmt.Errorf("logstore %s: truncating torn tail of %s: %w", s.dir, name, err)
			}
		}
		seg.size = int64(off)
		if seg.records == 0 && seg.size == 0 {
			// Not even a header survived (crash during roll): the file holds
			// nothing acknowledged, so drop it rather than reviving a
			// zero-byte segment.
			if err := os.Remove(path); err != nil {
				return 0, fmt.Errorf("logstore %s: removing empty %s: %w", s.dir, name, err)
			}
			continue
		}
		s.segments = append(s.segments, seg)
	}
	return truncations, nil
}

// applyRecovered replays one record into the in-memory view and the
// liveness index during recovery.
func (s *Store) applyRecovered(seg *segment, rec Record) {
	seg.records++
	if seg.minSeq == 0 || rec.Seq < seg.minSeq {
		seg.minSeq = rec.Seq
	}
	if rec.Seq > seg.maxSeq {
		seg.maxSeq = rec.Seq
	}
	switch rec.Kind {
	case KindPut:
		if rec.Bundle == nil || rec.Bundle.Delegation == nil {
			return
		}
		if loc, ok := s.putLoc[rec.ID]; ok {
			loc.seg.dead++
		}
		s.putLoc[rec.ID] = recLoc{seg: seg, seq: rec.Seq}
		_ = s.mem.PutDelegation(rec.Seq, rec.Bundle.Delegation, rec.Bundle.Support)
	case KindDelete:
		if loc, ok := s.putLoc[rec.ID]; ok {
			loc.seg.dead++
			delete(s.putLoc, rec.ID)
		}
		_ = s.mem.DeleteDelegation(rec.Seq, rec.ID)
	case KindRevoke:
		_, _ = s.mem.AddRevocation(rec.Seq, rec.ID, rec.At)
	}
}

func segmentName(index int) string { return fmt.Sprintf("%08d%s", index, segExt) }

func segmentIndex(name string) int {
	var idx int
	_, _ = fmt.Sscanf(strings.TrimSuffix(name, segExt), "%d", &idx)
	return idx
}

// rollLocked seals the current active segment (if any) and opens the next
// one, writing its header frame durably before any record can land in it.
// Callers hold s.mu.
func (s *Store) rollLocked() error {
	if s.active != nil {
		old := s.active
		if b := s.cur; b != nil {
			if _, pending := b.files[old]; pending {
				// Unflushed frames ride the open batch; the syncer closes the
				// handle after their shared fsync.
				b.closeAfter = append(b.closeAfter, old)
				old = nil
			}
		}
		if old != nil {
			// Every acknowledged append was already fsynced; this sync only
			// hardens the seal before the handle goes away.
			_ = old.Sync()
			_ = old.Close()
		}
		s.active = nil
		s.mSeals.Inc()
	}
	idx := s.next
	s.next++
	name := segmentName(idx)
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o600)
	if err != nil {
		return err
	}
	hdr, err := EncodeFrame(nil, Record{Kind: KindHeader, Version: formatVersion})
	if err == nil {
		_, err = f.Write(hdr)
	}
	if err == nil {
		err = f.Sync()
	}
	if err == nil {
		// The new file's directory entry must be durable before records in it
		// are acknowledged.
		err = wallet.SyncDir(s.dir)
	}
	if err != nil {
		_ = f.Close()
		_ = os.Remove(filepath.Join(s.dir, name))
		return fmt.Errorf("logstore %s: rolling segment %s: %w", s.dir, name, err)
	}
	s.segments = append(s.segments, &segment{name: name, index: idx, size: int64(len(hdr))})
	s.active = f
	return nil
}

// append frames rec, writes it to the active segment, and joins the open
// commit batch, returning once the batch's shared fsync has made the record
// durable.
func (s *Store) append(rec Record) error {
	frame, err := EncodeFrame(nil, rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	if s.closed {
		s.mu.Unlock()
		return errClosed
	}
	seg := s.segments[len(s.segments)-1]
	if seg.records > 0 && seg.size+int64(len(frame)) > s.opts.SegmentBytes {
		if err := s.rollLocked(); err != nil {
			s.mu.Unlock()
			return err
		}
		seg = s.segments[len(s.segments)-1]
	}
	if _, err := s.active.Write(frame); err != nil {
		// A short write leaves garbage after the last valid frame; cut the
		// file back so later appends do not bury acknowledged records behind
		// an undecodable gap. If even that fails the file is in an unknown
		// state and the store refuses further writes.
		if terr := s.active.Truncate(seg.size); terr != nil {
			s.failed = fmt.Errorf("logstore %s: segment %s unrecoverable after failed write: %w", s.dir, seg.name, terr)
		}
		s.mu.Unlock()
		return fmt.Errorf("logstore %s: append to %s: %w", s.dir, seg.name, err)
	}
	seg.size += int64(len(frame))
	seg.records++
	if seg.minSeq == 0 || rec.Seq < seg.minSeq {
		seg.minSeq = rec.Seq
	}
	if rec.Seq > seg.maxSeq {
		seg.maxSeq = rec.Seq
	}
	switch rec.Kind {
	case KindPut:
		if loc, ok := s.putLoc[rec.ID]; ok {
			loc.seg.dead++
		}
		s.putLoc[rec.ID] = recLoc{seg: seg, seq: rec.Seq}
	case KindDelete:
		if loc, ok := s.putLoc[rec.ID]; ok {
			loc.seg.dead++
			delete(s.putLoc, rec.ID)
		}
	}
	b := s.cur
	if b == nil {
		b = &commitBatch{files: make(map[*os.File]struct{}), done: make(chan struct{})}
		s.cur = b
	}
	b.files[s.active] = struct{}{}
	b.records++
	s.mu.Unlock()

	select {
	case s.syncCh <- struct{}{}:
	default:
	}
	<-b.done
	if b.err != nil {
		return b.err
	}
	s.mAppends.Inc()
	return nil
}

// syncLoop is the group-commit syncer: it takes whichever batch is open,
// fsyncs every file the batch touched once, and wakes all its appenders.
// Writers that arrive during an fsync pile into the next batch — publish
// bursts amortize the fsync instead of paying one each.
func (s *Store) syncLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.syncCh:
			s.flushBatch()
		case <-s.stop:
			// Close set closed before stopping us, so no new batch can open;
			// flush whatever is pending and exit.
			s.flushBatch()
			return
		}
	}
}

func (s *Store) flushBatch() {
	s.mu.Lock()
	b := s.cur
	s.cur = nil
	s.mu.Unlock()
	if b == nil {
		return
	}
	sp := s.obs.StartSpan(obs.NewTraceID(), "logstore.commit",
		"records", b.records, "files", len(b.files))
	var err error
	for f := range b.files {
		if e := f.Sync(); e != nil && err == nil {
			err = e
		}
	}
	for _, f := range b.closeAfter {
		_ = f.Close()
	}
	b.err = err
	close(b.done)
	if err != nil {
		sp.Fail(err)
		// After a failed fsync the kernel may have dropped the dirty pages,
		// so retrying cannot prove durability. Stay unhealthy for good.
		s.mu.Lock()
		if s.syncErr == nil {
			s.syncErr = fmt.Errorf("logstore %s: commit fsync: %w", s.dir, err)
		}
		s.mu.Unlock()
	}
	sp.End("ok", err == nil)
	s.mBatches.Inc()
	s.mBatchRecords.Add(int64(b.records))
}

// PutDelegation implements wallet.Store: one durable put record.
func (s *Store) PutDelegation(seq uint64, d *core.Delegation, support []*core.Proof) error {
	rec := Record{
		Seq:    seq,
		Kind:   KindPut,
		ID:     d.ID(),
		Bundle: &wallet.StoredBundle{Delegation: d, Support: support},
	}
	if err := s.append(rec); err != nil {
		return err
	}
	return s.mem.PutDelegation(seq, d, support)
}

// DeleteDelegation implements wallet.Store: one durable tombstone record.
// Tombstones survive compaction so segment-shipped deltas replay removals
// faithfully.
func (s *Store) DeleteDelegation(seq uint64, id core.DelegationID) error {
	if err := s.append(Record{Seq: seq, Kind: KindDelete, ID: id}); err != nil {
		return err
	}
	return s.mem.DeleteDelegation(seq, id)
}

// AddRevocation implements wallet.Store. Revocation records carry the
// original revocation instant and are never compacted away.
func (s *Store) AddRevocation(seq uint64, id core.DelegationID, at time.Time) (bool, error) {
	if s.mem.IsRevoked(id) {
		return false, nil
	}
	if err := s.append(Record{Seq: seq, Kind: KindRevoke, ID: id, At: at}); err != nil {
		return false, err
	}
	return s.mem.AddRevocation(seq, id, at)
}

// IsRevoked implements wallet.Store.
func (s *Store) IsRevoked(id core.DelegationID) bool { return s.mem.IsRevoked(id) }

// RevokedIDs implements wallet.Store.
func (s *Store) RevokedIDs() []core.DelegationID { return s.mem.RevokedIDs() }

// Revocations implements wallet.Store.
func (s *Store) Revocations() []wallet.Revocation { return s.mem.Revocations() }

// Bundles implements wallet.Store.
func (s *Store) Bundles() []wallet.StoredBundle { return s.mem.Bundles() }

// Seq implements wallet.Store.
func (s *Store) Seq() uint64 { return s.mem.Seq() }

// SnapshotSegments implements wallet.SegmentStore: a consistent copy of
// every segment holding records with seq greater than afterSeq, in replay
// order. Shipping raw frames makes replica bootstrap O(shipped bytes)
// instead of O(total state): a caught-up replica's delta is the tail
// segments only.
func (s *Store) SnapshotSegments(afterSeq uint64) (wallet.SegmentSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return wallet.SegmentSnapshot{}, errClosed
	}
	snap := wallet.SegmentSnapshot{Seq: s.mem.Seq()}
	for i, seg := range s.segments {
		if seg.records == 0 || seg.maxSeq <= afterSeq {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, seg.name))
		if err != nil {
			return wallet.SegmentSnapshot{}, fmt.Errorf("logstore %s: snapshot %s: %w", s.dir, seg.name, err)
		}
		// Appends happen under s.mu, so the file cannot grow mid-read; clamp
		// anyway so a shipped active segment never carries a frame the store
		// has not accounted.
		if int64(len(data)) > seg.size {
			data = data[:seg.size]
		}
		snap.Segments = append(snap.Segments, wallet.SegmentData{
			Name:   seg.name,
			Sealed: i < len(s.segments)-1,
			Data:   data,
		})
	}
	return snap, nil
}

// Compact runs one compaction pass: every sealed segment holding at least
// CompactMinDead dead put records is rewritten without them. Revocation and
// delete tombstones always survive — a shipped delta that skips a compacted
// segment must still see later removals — so compaction reclaims bundle
// bytes, the dominant term, and nothing else. The rewrite is
// crash-safe: new frames go to a .cmp temp file, fsynced, then renamed over
// the original; recovery discards a half-written temp.
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errClosed
	}
	type cand struct {
		seg  *segment
		dead int
	}
	var cands []cand
	for i, seg := range s.segments {
		if i == len(s.segments)-1 {
			break // active segment never compacts
		}
		if seg.dead >= s.opts.CompactMinDead {
			cands = append(cands, cand{seg, seg.dead})
		}
	}
	s.mu.Unlock()

	var err error
	if len(cands) > 0 {
		sp := s.obs.StartSpan(obs.NewTraceID(), "logstore.compact", "segments", len(cands))
		for _, c := range cands {
			csp := sp.StartChild("logstore.compact-segment", "segment", c.seg.name, "dead", c.dead)
			err = s.compactSegment(c.seg)
			if err != nil {
				csp.Fail(err)
				csp.End()
				break
			}
			csp.End()
		}
		if err != nil {
			sp.Fail(err)
		}
		sp.End("ok", err == nil)
	}
	// Compaction failures are retried every pass, so health tracks the most
	// recent outcome: a clean pass (even a no-op one) clears the condition.
	s.mu.Lock()
	s.compactErr = err
	s.mu.Unlock()
	return err
}

// Health reports whether the store can still promise durability: nil while
// appends, fsyncs, and compactions are all succeeding, else the sticky
// append/fsync failure or the latest compaction failure. Readiness probes
// poll it to pull a wallet whose disk has gone bad out of rotation.
func (s *Store) Health() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if s.syncErr != nil {
		return s.syncErr
	}
	return s.compactErr
}

// compactSegment rewrites one sealed segment without its dead put records.
func (s *Store) compactSegment(seg *segment) error {
	path := filepath.Join(s.dir, seg.name)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("logstore %s: compact %s: %w", s.dir, seg.name, err)
	}
	recs, err := DecodeSegment(data)
	if err != nil {
		return fmt.Errorf("logstore %s: compact %s: %w", s.dir, seg.name, err)
	}

	// Liveness is judged against the index at this instant. A record judged
	// live can die concurrently — kept garbage, reclaimed next pass. A
	// record judged dead can never come back: put seqs are unique and the
	// index only ever advances to newer ones, so dropping is always safe.
	s.mu.Lock()
	kept := recs[:0]
	for _, rec := range recs {
		if rec.Kind != KindPut {
			kept = append(kept, rec)
			continue
		}
		if loc, ok := s.putLoc[rec.ID]; ok && loc.seq == rec.Seq {
			kept = append(kept, rec)
		}
	}
	s.mu.Unlock()
	if len(kept) == len(recs) {
		return nil
	}

	if len(kept) == 0 {
		// Nothing live and no tombstones: retire the whole segment.
		s.mu.Lock()
		defer s.mu.Unlock()
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("logstore %s: retiring %s: %w", s.dir, seg.name, err)
		}
		if err := wallet.SyncDir(s.dir); err != nil {
			return fmt.Errorf("logstore %s: retiring %s: %w", s.dir, seg.name, err)
		}
		for i, sg := range s.segments {
			if sg == seg {
				s.segments = append(s.segments[:i], s.segments[i+1:]...)
				break
			}
		}
		s.mCompactions.Inc()
		s.mReclaimed.Add(seg.size)
		return nil
	}

	buf, err := EncodeFrame(nil, Record{Kind: KindHeader, Version: formatVersion, Compacted: true})
	if err != nil {
		return err
	}
	for _, rec := range kept {
		if buf, err = EncodeFrame(buf, rec); err != nil {
			return err
		}
	}
	tmp := strings.TrimSuffix(path, segExt) + segCmpExt
	if err := writeFileSync(tmp, buf); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("logstore %s: compact %s: %w", s.dir, seg.name, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("logstore %s: compact %s: %w", s.dir, seg.name, err)
	}
	if err := wallet.SyncDir(s.dir); err != nil {
		return fmt.Errorf("logstore %s: compact %s: %w", s.dir, seg.name, err)
	}
	reclaimed := seg.size - int64(len(buf))
	seg.compacted = true
	seg.size = int64(len(buf))
	seg.records = len(kept)
	seg.minSeq, seg.maxSeq, seg.dead = 0, 0, 0
	for _, rec := range kept {
		if seg.minSeq == 0 || rec.Seq < seg.minSeq {
			seg.minSeq = rec.Seq
		}
		if rec.Seq > seg.maxSeq {
			seg.maxSeq = rec.Seq
		}
		// Records that died between the liveness snapshot and the swap stay
		// counted so the next pass picks them up.
		if rec.Kind == KindPut {
			if loc, ok := s.putLoc[rec.ID]; !ok || loc.seq != rec.Seq {
				seg.dead++
			}
		}
	}
	s.mCompactions.Inc()
	s.mReclaimed.Add(reclaimed)
	return nil
}

// Close flushes the pending commit batch, stops the background goroutines,
// and closes the active segment. Further mutations fail.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.active != nil {
		if e := s.active.Sync(); e != nil {
			err = e
		}
		if e := s.active.Close(); e != nil && err == nil {
			err = e
		}
		s.active = nil
	}
	return err
}

func (s *Store) compactLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			// Best-effort: a failed pass leaves the old segments intact and
			// the next tick retries.
			_ = s.Compact()
		}
	}
}

// writeFileSync writes data to path and fsyncs before closing, mirroring
// the wallet FileStore's temp-file discipline.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
