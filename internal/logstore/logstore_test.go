package logstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/obs"
	"drbac/internal/wallet"
)

var testStart = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

// env mints signed delegations for store tests.
type env struct {
	t   testing.TB
	ids map[string]*core.Identity
	dir *core.MemDirectory
}

func newEnv(t testing.TB, names ...string) *env {
	t.Helper()
	e := &env{t: t, ids: make(map[string]*core.Identity), dir: core.NewDirectory()}
	for i, name := range names {
		seed := make([]byte, 32)
		seed[0] = byte(i + 1)
		copy(seed[1:], name)
		id, err := core.IdentityFromSeed(name, seed)
		if err != nil {
			t.Fatalf("identity %s: %v", name, err)
		}
		e.ids[name] = id
		e.dir.Add(id.Entity())
	}
	return e
}

func (e *env) deleg(text string) *core.Delegation {
	e.t.Helper()
	parsed, err := core.ParseDelegation(text, e.dir)
	if err != nil {
		e.t.Fatalf("parse %q: %v", text, err)
	}
	var issuer *core.Identity
	for _, id := range e.ids {
		if id.ID() == parsed.Issuer.ID() {
			issuer = id
		}
	}
	if issuer == nil {
		e.t.Fatalf("no identity for issuer of %q", text)
	}
	d, err := core.Issue(issuer, parsed.Template, testStart)
	if err != nil {
		e.t.Fatalf("issue %q: %v", text, err)
	}
	return d
}

// testOpts disables background compaction so tests control every pass.
func testOpts() Options {
	return Options{CompactInterval: -1}
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestLogStoreRoundTrip(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Mark")
	dir := filepath.Join(t.TempDir(), "log")

	s1 := open(t, dir, testOpts())
	keep := e.deleg("[Maria -> BigISP.member] BigISP")
	gone := e.deleg("[Mark -> BigISP.memberServices] BigISP")
	if err := s1.PutDelegation(1, keep, nil); err != nil {
		t.Fatal(err)
	}
	if err := s1.PutDelegation(2, gone, nil); err != nil {
		t.Fatal(err)
	}
	revokedAt := testStart.Add(time.Hour)
	if added, err := s1.AddRevocation(3, gone.ID(), revokedAt); err != nil || !added {
		t.Fatalf("AddRevocation = (%v, %v)", added, err)
	}
	if added, _ := s1.AddRevocation(4, gone.ID(), revokedAt); added {
		t.Fatal("duplicate AddRevocation reported added")
	}
	if err := s1.DeleteDelegation(3, gone.ID()); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, testOpts())
	bundles := s2.Bundles()
	if len(bundles) != 1 || bundles[0].Delegation.ID() != keep.ID() {
		t.Fatalf("recovered bundles = %v, want only %s", bundles, keep.ID())
	}
	if !s2.IsRevoked(gone.ID()) {
		t.Fatal("revocation lost across reopen")
	}
	revs := s2.Revocations()
	if len(revs) != 1 || !revs[0].At.Equal(revokedAt) {
		t.Fatalf("recovered revocations = %+v, want original instant %v", revs, revokedAt)
	}
	if got := s2.Seq(); got != 3 {
		t.Fatalf("recovered Seq = %d, want 3", got)
	}
}

func TestLogStoreSealsAndReplaysManySegments(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	dir := filepath.Join(t.TempDir(), "log")
	opts := testOpts()
	opts.SegmentBytes = 2 << 10 // force frequent seals

	s1 := open(t, dir, opts)
	const n = 40
	for i := 0; i < n; i++ {
		d := e.deleg(fmt.Sprintf("[Maria -> BigISP.r%d] BigISP", i))
		if err := s1.PutDelegation(uint64(i+1), d, nil); err != nil {
			t.Fatal(err)
		}
	}
	s1.mu.Lock()
	segs := len(s1.segments)
	s1.mu.Unlock()
	if segs < 3 {
		t.Fatalf("got %d segments at a %dB threshold, expected several", segs, opts.SegmentBytes)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, opts)
	if got := len(s2.Bundles()); got != n {
		t.Fatalf("recovered %d bundles, want %d", got, n)
	}
	if got := s2.Seq(); got != n {
		t.Fatalf("recovered Seq = %d, want %d", got, n)
	}
	// The reopened store appends to the recovered active segment.
	extra := e.deleg("[Maria -> BigISP.extra] BigISP")
	if err := s2.PutDelegation(n+1, extra, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLogStoreTornTailRecovery covers the three crash shapes a torn active
// segment can take: a partial frame, a CRC-damaged record, and a zero-filled
// tail. In every case recovery keeps the acknowledged prefix, truncates the
// rest, and the store accepts appends again.
func TestLogStoreTornTailRecovery(t *testing.T) {
	for _, tc := range []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"partial frame", func(t *testing.T, path string) {
			frame, err := EncodeFrame(nil, Record{Seq: 99, Kind: KindDelete, ID: "torn"})
			if err != nil {
				t.Fatal(err)
			}
			appendBytes(t, path, frame[:len(frame)-3])
		}},
		{"bad crc", func(t *testing.T, path string) {
			frame, err := EncodeFrame(nil, Record{Seq: 99, Kind: KindDelete, ID: "torn"})
			if err != nil {
				t.Fatal(err)
			}
			frame[len(frame)-1] ^= 1
			appendBytes(t, path, frame)
		}},
		{"zero fill", func(t *testing.T, path string) {
			appendBytes(t, path, make([]byte, 256))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := newEnv(t, "BigISP", "Maria")
			dir := filepath.Join(t.TempDir(), "log")
			s1 := open(t, dir, testOpts())
			keep := e.deleg("[Maria -> BigISP.member] BigISP")
			if err := s1.PutDelegation(1, keep, nil); err != nil {
				t.Fatal(err)
			}
			s1.mu.Lock()
			active := s1.segments[len(s1.segments)-1].name
			s1.mu.Unlock()
			if err := s1.Close(); err != nil {
				t.Fatal(err)
			}
			tc.tear(t, filepath.Join(dir, active))

			reg := obs.NewRegistry()
			opts := testOpts()
			opts.Registry = reg
			s2 := open(t, dir, opts)
			bundles := s2.Bundles()
			if len(bundles) != 1 || bundles[0].Delegation.ID() != keep.ID() {
				t.Fatalf("recovered bundles = %v, want the acknowledged prefix", bundles)
			}
			if s2.IsRevoked("torn") || s2.Seq() != 1 {
				t.Fatalf("torn tail leaked into state: seq=%d", s2.Seq())
			}
			if got := reg.Snapshot().Counters["drbac_logstore_recovery_truncations_total"]; got != 1 {
				t.Fatalf("recovery_truncations_total = %d, want 1", got)
			}
			// The file was cut back to a frame boundary: appends land clean
			// and survive another reopen.
			extra := e.deleg("[Maria -> BigISP.extra] BigISP")
			if err := s2.PutDelegation(2, extra, nil); err != nil {
				t.Fatal(err)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3 := open(t, dir, testOpts())
			if got := len(s3.Bundles()); got != 2 {
				t.Fatalf("bundles after post-tear append = %d, want 2", got)
			}
		})
	}
}

func appendBytes(t *testing.T, path string, data []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLogStoreCompactionDropsDeadPuts seals segments full of bundles that
// are then overwritten, deleted, or revoked, and checks one compaction pass
// reclaims their bytes while preserving tombstones and live state across a
// reopen.
func TestLogStoreCompactionDropsDeadPuts(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	dir := filepath.Join(t.TempDir(), "log")
	opts := testOpts()
	opts.SegmentBytes = 2 << 10
	reg := obs.NewRegistry()
	opts.Registry = reg

	s := open(t, dir, opts)
	const n = 20
	seq := uint64(0)
	ids := make([]core.DelegationID, n)
	for i := 0; i < n; i++ {
		d := e.deleg(fmt.Sprintf("[Maria -> BigISP.r%d] BigISP", i))
		ids[i] = d.ID()
		seq++
		if err := s.PutDelegation(seq, d, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the first half: revoke + delete, as the wallet does.
	for i := 0; i < n/2; i++ {
		seq++
		if _, err := s.AddRevocation(seq, ids[i], testStart.Add(time.Minute)); err != nil {
			t.Fatal(err)
		}
		if err := s.DeleteDelegation(seq, ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := dirSize(t, dir)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := dirSize(t, dir)
	if after >= before {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", before, after)
	}
	snap := reg.Snapshot()
	if snap.Counters["drbac_logstore_compactions_total"] == 0 {
		t.Fatal("compactions_total = 0 after a shrinking pass")
	}
	if got := len(s.Bundles()); got != n/2 {
		t.Fatalf("bundles after compaction = %d, want %d", got, n/2)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, testOpts())
	if got := len(s2.Bundles()); got != n/2 {
		t.Fatalf("bundles after compacted reopen = %d, want %d", got, n/2)
	}
	for i := 0; i < n/2; i++ {
		if !s2.IsRevoked(ids[i]) {
			t.Fatalf("revocation tombstone for %s lost to compaction", ids[i])
		}
	}
	if got := s2.Seq(); got != seq {
		t.Fatalf("Seq after compacted reopen = %d, want %d", got, seq)
	}
}

// TestLogStoreKillDuringCompaction models a crash between writing the
// compacted temp file and renaming it: both the original segment and the
// .cmp leftover exist. Recovery must drop the temp and replay the original.
func TestLogStoreKillDuringCompaction(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	dir := filepath.Join(t.TempDir(), "log")
	opts := testOpts()
	opts.SegmentBytes = 2 << 10

	s := open(t, dir, opts)
	const n = 12
	for i := 0; i < n; i++ {
		d := e.deleg(fmt.Sprintf("[Maria -> BigISP.r%d] BigISP", i))
		if err := s.PutDelegation(uint64(i+1), d, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	first := s.segments[0].name
	s.mu.Unlock()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A half-finished compaction: valid-looking compacted content that never
	// got renamed into place. The original segment stays authoritative.
	cmp, err := EncodeFrame(nil, Record{Kind: KindHeader, Version: formatVersion, Compacted: true})
	if err != nil {
		t.Fatal(err)
	}
	cmpPath := filepath.Join(dir, first[:len(first)-len(segExt)]+segCmpExt)
	if err := os.WriteFile(cmpPath, cmp, 0o600); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, testOpts())
	if got := len(s2.Bundles()); got != n {
		t.Fatalf("recovered %d bundles with stale .cmp present, want %d", got, n)
	}
	if _, err := os.Stat(cmpPath); !os.IsNotExist(err) {
		t.Fatalf("stale compaction temp survived recovery: stat err = %v", err)
	}
}

// TestLogStoreConcurrentAppends hammers the group-commit path from many
// goroutines; run under -race this doubles as the locking proof. Every
// acknowledged append must survive a reopen.
func TestLogStoreConcurrentAppends(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	dir := filepath.Join(t.TempDir(), "log")
	opts := testOpts()
	opts.SegmentBytes = 8 << 10
	reg := obs.NewRegistry()
	opts.Registry = reg

	const workers, perWorker = 8, 10
	delegs := make([]*core.Delegation, workers*perWorker)
	for i := range delegs {
		delegs[i] = e.deleg(fmt.Sprintf("[Maria -> BigISP.c%d] BigISP", i))
	}

	s := open(t, dir, opts)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := w*perWorker + i
				if err := s.PutDelegation(uint64(n+1), delegs[n], nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	if snap.Counters["drbac_logstore_appends_total"] != workers*perWorker {
		t.Fatalf("appends_total = %d, want %d", snap.Counters["drbac_logstore_appends_total"], workers*perWorker)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, testOpts())
	if got := len(s2.Bundles()); got != workers*perWorker {
		t.Fatalf("recovered %d bundles, want %d", got, workers*perWorker)
	}
}

func TestLogStoreSnapshotSegments(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	dir := filepath.Join(t.TempDir(), "log")
	opts := testOpts()
	opts.SegmentBytes = 2 << 10

	s := open(t, dir, opts)
	const n = 20
	for i := 0; i < n; i++ {
		d := e.deleg(fmt.Sprintf("[Maria -> BigISP.r%d] BigISP", i))
		if err := s.PutDelegation(uint64(i+1), d, nil); err != nil {
			t.Fatal(err)
		}
	}

	full, err := s.SnapshotSegments(0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Seq != n {
		t.Fatalf("snapshot seq = %d, want %d", full.Seq, n)
	}
	if len(full.Segments) < 2 {
		t.Fatalf("full snapshot shipped %d segments, expected several", len(full.Segments))
	}
	seen := make(map[core.DelegationID]bool)
	var lastSeq uint64
	for i, seg := range full.Segments {
		recs, err := DecodeSegment(seg.Data)
		if err != nil {
			t.Fatalf("segment %s: %v", seg.Name, err)
		}
		if sealed := i < len(full.Segments)-1; seg.Sealed != sealed {
			t.Fatalf("segment %s sealed = %v at position %d", seg.Name, seg.Sealed, i)
		}
		for _, rec := range recs {
			if rec.Seq <= lastSeq {
				t.Fatalf("shipped records out of seq order: %d after %d", rec.Seq, lastSeq)
			}
			lastSeq = rec.Seq
			seen[rec.ID] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("full snapshot replays %d delegations, want %d", len(seen), n)
	}

	// A delta snapshot ships only segments holding newer records.
	delta, err := s.SnapshotSegments(n - 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Segments) >= len(full.Segments) {
		t.Fatalf("delta snapshot shipped %d segments, full shipped %d", len(delta.Segments), len(full.Segments))
	}
	var deltaMax uint64
	for _, seg := range delta.Segments {
		recs, err := DecodeSegment(seg.Data)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if rec.Seq > deltaMax {
				deltaMax = rec.Seq
			}
		}
	}
	if deltaMax != n {
		t.Fatalf("delta snapshot max seq = %d, want %d", deltaMax, n)
	}
}

// TestLogStoreBackedWallet runs the wallet API end to end on a log store:
// publish, revoke, restart, re-prove — the same contract the FileStore
// restart test pins, plus seq continuity across the restart.
func TestLogStoreBackedWallet(t *testing.T) {
	we := walletEnv(t, "BigISP", "Maria")
	dir := filepath.Join(t.TempDir(), "log")

	s1 := open(t, dir, testOpts())
	w1 := wallet.New(wallet.Config{Owner: we.ids["BigISP"], Directory: we.dir, Store: s1})
	d := we.deleg("[Maria -> BigISP.member] BigISP")
	if err := w1.Publish(d); err != nil {
		t.Fatal(err)
	}
	doomed := we.deleg("[Maria -> BigISP.memberServices] BigISP")
	if err := w1.Publish(doomed); err != nil {
		t.Fatal(err)
	}
	if err := w1.Revoke(doomed.ID(), we.ids["BigISP"].ID()); err != nil {
		t.Fatal(err)
	}
	seq1 := w1.Seq()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, testOpts())
	w2 := wallet.New(wallet.Config{Owner: we.ids["BigISP"], Directory: we.dir, Store: s2})
	if w2.Seq() != seq1 {
		t.Fatalf("restarted wallet seq = %d, want %d (changelog continuity)", w2.Seq(), seq1)
	}
	if !w2.Contains(d.ID()) {
		t.Fatal("restarted wallet lost the live delegation")
	}
	if !w2.IsRevoked(doomed.ID()) {
		t.Fatal("restarted wallet lost the revocation")
	}
	if err := w2.Publish(doomed); err == nil {
		t.Fatal("restarted wallet accepted a revoked delegation")
	}
}

// walletEnv mirrors env but also wires a directory usable by wallet.New.
func walletEnv(t *testing.T, names ...string) *env { return newEnv(t, names...) }

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

func TestInspect(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	dir := filepath.Join(t.TempDir(), "log")
	opts := testOpts()
	opts.SegmentBytes = 2 << 10

	s := open(t, dir, opts)
	const n = 16
	var seq uint64
	ids := make([]core.DelegationID, n)
	for i := 0; i < n; i++ {
		d := e.deleg(fmt.Sprintf("[Maria -> BigISP.r%d] BigISP", i))
		ids[i] = d.ID()
		seq++
		if err := s.PutDelegation(seq, d, nil); err != nil {
			t.Fatal(err)
		}
	}
	seq++
	if _, err := s.AddRevocation(seq, ids[0], testStart); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteDelegation(seq, ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	// Inspect runs offline against the open store's directory.
	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Bundles != n-1 || info.Revocations != 1 || info.Seq != seq {
		t.Fatalf("Inspect = %d bundles / %d revocations / seq %d, want %d / 1 / %d",
			info.Bundles, info.Revocations, info.Seq, n-1, seq)
	}
	if len(info.Segments) < 2 {
		t.Fatalf("Inspect lists %d segments, expected several", len(info.Segments))
	}
	var statuses []string
	for _, seg := range info.Segments {
		statuses = append(statuses, seg.Status)
	}
	if statuses[len(statuses)-1] != "active" {
		t.Fatalf("last segment status = %q, want active (statuses %v)", statuses[len(statuses)-1], statuses)
	}
	hasCompacted := false
	for _, st := range statuses[:len(statuses)-1] {
		if st == "compacted" {
			hasCompacted = true
		} else if st != "sealed" {
			t.Fatalf("unexpected segment status %q", st)
		}
	}
	if !hasCompacted {
		t.Fatalf("no compacted segment reported after a pass (statuses %v)", statuses)
	}
}

func FuzzLogRecordDecode(f *testing.F) {
	frame, err := EncodeFrame(nil, Record{Seq: 7, Kind: KindRevoke, ID: "deadbeef", At: testStart})
	if err != nil {
		f.Fatal(err)
	}
	hdr, err := EncodeFrame(nil, Record{Kind: KindHeader, Version: formatVersion})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add(append(append([]byte(nil), hdr...), frame...))
	f.Add(frame[:len(frame)-2])
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		// DecodeFrame must never panic, never over-consume, and anything it
		// accepts must re-encode to the identical frame (a decode/encode
		// fixpoint keeps compaction rewrites byte-faithful).
		rec, n, ok := DecodeFrame(data)
		if !ok {
			if n != 0 {
				t.Fatalf("rejected frame consumed %d bytes", n)
			}
			return
		}
		if n < frameHeaderLen || n > len(data) {
			t.Fatalf("accepted frame consumed %d of %d bytes", n, len(data))
		}
		if _, err := EncodeFrame(nil, rec); err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		// DecodeSegment over the same bytes must agree with frame-at-a-time
		// decoding or fail cleanly.
		_, _ = DecodeSegment(data[:n])
	})
}

func TestDecodeSegmentRejectsNewerFormat(t *testing.T) {
	hdr, err := EncodeFrame(nil, Record{Kind: KindHeader, Version: formatVersion + 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSegment(hdr); err == nil {
		t.Fatal("segment with a newer format version decoded without error")
	}
	if !bytes.Contains(hdr, []byte("hdr")) {
		t.Fatal("header frame does not mention its kind") // sanity on the fixture
	}
}
