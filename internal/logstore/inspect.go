package logstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"drbac/internal/core"
)

// SegmentInfo describes one segment file for offline inspection.
type SegmentInfo struct {
	Name string `json:"name"`
	// Status is "sealed", "active", or "compacted" (a compacted segment is
	// always sealed).
	Status  string `json:"status"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	// TornBytes is the length of an undecodable tail that recovery would
	// truncate; 0 for a clean segment.
	TornBytes int64  `json:"tornBytes,omitempty"`
	MinSeq    uint64 `json:"minSeq,omitempty"`
	MaxSeq    uint64 `json:"maxSeq,omitempty"`
}

// Info summarizes a log-store directory for offline inspection.
type Info struct {
	Dir         string        `json:"dir"`
	Seq         uint64        `json:"seq"`
	Bundles     int           `json:"bundles"`
	Revocations int           `json:"revocations"`
	Segments    []SegmentInfo `json:"segments"`
}

// Inspect reads a log-store directory without opening it: segments are
// scanned read-only (a torn tail is reported, not truncated) and the live
// bundle and revocation counts are computed by replay. The daemon can hold
// the store open while Inspect runs.
func Inspect(dir string) (Info, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return Info{}, fmt.Errorf("logstore %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, segExt) && !strings.HasSuffix(name, segCmpExt) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	info := Info{Dir: dir}
	live := make(map[core.DelegationID]struct{})
	revoked := make(map[core.DelegationID]struct{})
	for i, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return Info{}, err
		}
		si := SegmentInfo{Name: name, Status: "sealed"}
		if i == len(names)-1 {
			si.Status = "active"
		}
		off := 0
		for off < len(data) {
			rec, n, ok := DecodeFrame(data[off:])
			if !ok {
				break
			}
			off += n
			if rec.Kind == KindHeader {
				if rec.Compacted && si.Status == "sealed" {
					si.Status = "compacted"
				}
				continue
			}
			si.Records++
			if si.MinSeq == 0 || rec.Seq < si.MinSeq {
				si.MinSeq = rec.Seq
			}
			if rec.Seq > si.MaxSeq {
				si.MaxSeq = rec.Seq
			}
			if rec.Seq > info.Seq {
				info.Seq = rec.Seq
			}
			switch rec.Kind {
			case KindPut:
				live[rec.ID] = struct{}{}
			case KindDelete:
				delete(live, rec.ID)
			case KindRevoke:
				revoked[rec.ID] = struct{}{}
			}
		}
		si.Bytes = int64(off)
		si.TornBytes = int64(len(data) - off)
		info.Segments = append(info.Segments, si)
	}
	info.Bundles = len(live)
	info.Revocations = len(revoked)
	return info, nil
}
