package revocation

import (
	"testing"
)

func baseParams() Params {
	return Params{
		Clients:     4,
		Credentials: 8,
		Steps:       100,
		PollEvery:   5,
		CRLEvery:    10,
		RevokeAt:    []int{20, 50},
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Params)
		wantErr bool
	}{
		{"valid", func(*Params) {}, false},
		{"zero clients", func(p *Params) { p.Clients = 0 }, true},
		{"zero credentials", func(p *Params) { p.Credentials = 0 }, true},
		{"zero steps", func(p *Params) { p.Steps = 0 }, true},
		{"zero poll", func(p *Params) { p.PollEvery = 0 }, true},
		{"zero crl", func(p *Params) { p.CRLEvery = 0 }, true},
		{"too many revocations", func(p *Params) { p.RevokeAt = make([]int, 100) }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := baseParams()
			tt.mutate(&p)
			err := p.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRunUnknownScheme(t *testing.T) {
	if _, err := Run("carrier-pigeon", baseParams()); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestAllSchemesDeliverAllNotifications(t *testing.T) {
	p := baseParams()
	results, err := RunAll(p)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Clients * len(p.RevokeAt)
	for _, r := range results {
		if r.Notifications != want {
			t.Errorf("%s: notifications = %d, want %d", r.Scheme, r.Notifications, want)
		}
		if r.Messages == 0 || r.Bytes == 0 {
			t.Errorf("%s: no traffic measured", r.Scheme)
		}
	}
}

func TestSubscriptionHasZeroStaleness(t *testing.T) {
	r, err := Run(Subscription, baseParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.StalenessSteps != 0 {
		t.Fatalf("subscription staleness = %d, want 0", r.StalenessSteps)
	}
}

func TestPollingStalenessBoundedByInterval(t *testing.T) {
	p := baseParams()
	r, err := Run(OCSP, p)
	if err != nil {
		t.Fatal(err)
	}
	// Each of the Clients×revocations notifications is at most PollEvery-1
	// steps stale.
	maxTotal := p.Clients * len(p.RevokeAt) * (p.PollEvery - 1)
	if r.StalenessSteps < 0 || r.StalenessSteps > maxTotal {
		t.Fatalf("OCSP staleness = %d, want in [0, %d]", r.StalenessSteps, maxTotal)
	}
}

// The §6 claim: subscriptions "only require server and network resources
// when a credential has been updated", so over a long-lived interaction
// with few revocations they undercut both per-interval polling and
// periodic full-list broadcast, once the one-time subscription setup has
// amortized.
func TestSubscriptionBeatsPollingAndCRL(t *testing.T) {
	p := Params{
		Clients:     8,
		Credentials: 16,
		Steps:       2000,
		PollEvery:   5,
		CRLEvery:    10,
		RevokeAt:    []int{50},
	}
	results, err := RunAll(p)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[Scheme]Result{}
	for _, r := range results {
		byScheme[r.Scheme] = r
	}
	sub, ocsp, crl := byScheme[Subscription], byScheme[OCSP], byScheme[CRL]
	if sub.Messages >= ocsp.Messages {
		t.Errorf("subscription messages (%d) should undercut OCSP (%d)", sub.Messages, ocsp.Messages)
	}
	if sub.Messages >= crl.Messages {
		t.Errorf("subscription messages (%d) should undercut CRL (%d)", sub.Messages, crl.Messages)
	}
	t.Logf("messages: subscription=%d ocsp=%d crl=%d", sub.Messages, ocsp.Messages, crl.Messages)
	t.Logf("bytes:    subscription=%d ocsp=%d crl=%d", sub.Bytes, ocsp.Bytes, crl.Bytes)
}

// OCSP cost grows with session length even when nothing changes; the
// subscription scheme's does not (beyond setup).
func TestIdleSessionCostScaling(t *testing.T) {
	short := Params{Clients: 2, Credentials: 4, Steps: 20, PollEvery: 5, CRLEvery: 10}
	long := short
	long.Steps = 200

	ocspShort, err := Run(OCSP, short)
	if err != nil {
		t.Fatal(err)
	}
	ocspLong, err := Run(OCSP, long)
	if err != nil {
		t.Fatal(err)
	}
	if ocspLong.Messages <= ocspShort.Messages*5 {
		t.Errorf("OCSP long-session messages = %d, short = %d: polling should scale with duration",
			ocspLong.Messages, ocspShort.Messages)
	}

	subShort, err := Run(Subscription, short)
	if err != nil {
		t.Fatal(err)
	}
	subLong, err := Run(Subscription, long)
	if err != nil {
		t.Fatal(err)
	}
	if subLong.Messages != subShort.Messages {
		t.Errorf("subscription idle cost should not grow with session length: %d vs %d",
			subShort.Messages, subLong.Messages)
	}
}

func TestRevocationOutsideSessionIgnored(t *testing.T) {
	p := baseParams()
	p.RevokeAt = []int{-5, 20, 1000}
	r, err := Run(Subscription, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Notifications != p.Clients {
		t.Fatalf("notifications = %d, want %d (one in-session revocation)", r.Notifications, p.Clients)
	}
}
