// Package revocation implements the credential-status comparators of §6:
// an OCSP-style polling responder, a CRL-style broadcast distributor, and
// dRBAC's delegation subscriptions — all as real message-passing protocols
// over the same counted in-memory network, so the experiment (EXP-S3)
// compares measured messages and bytes rather than formulas.
//
// The simulation is driven in discrete time steps by the harness (no wall-
// clock sleeps): each step the harness may poll, publish a CRL, or revoke a
// credential; the schemes respond with real frames.
package revocation

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"drbac/internal/core"
	"drbac/internal/remote"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

// Scheme names a credential-status mechanism.
type Scheme string

const (
	// OCSP: every client polls the responder for every monitored
	// credential at a fixed interval (RFC 2560 model).
	OCSP Scheme = "ocsp"
	// CRL: the distributor periodically pushes the full revocation list to
	// every subscriber (RFC 2459 model).
	CRL Scheme = "crl"
	// Subscription: dRBAC delegation subscriptions push one notification
	// per status change to interested parties only (§4.2.2).
	Subscription Scheme = "subscription"
)

// Params shapes one simulated session.
type Params struct {
	// Clients monitoring credentials.
	Clients int
	// Credentials monitored by every client (a shared coalition set).
	Credentials int
	// Steps is the session length in discrete time units.
	Steps int
	// PollEvery is the OCSP polling period in steps.
	PollEvery int
	// CRLEvery is the CRL publication period in steps.
	CRLEvery int
	// RevokeAt lists the steps at which the next unrevoked credential is
	// revoked. Steps outside [0, Steps) are ignored.
	RevokeAt []int
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Clients <= 0 || p.Credentials <= 0 || p.Steps <= 0 {
		return fmt.Errorf("revocation: Clients, Credentials, Steps must be positive")
	}
	if p.PollEvery <= 0 || p.CRLEvery <= 0 {
		return fmt.Errorf("revocation: PollEvery and CRLEvery must be positive")
	}
	if len(p.RevokeAt) > p.Credentials {
		return fmt.Errorf("revocation: more revocations than credentials")
	}
	return nil
}

// Result reports the measured cost of one scheme over one session.
type Result struct {
	Scheme Scheme
	// Messages and Bytes are total network frames and payload bytes,
	// including connection handshakes and subscription setup.
	Messages int64
	Bytes    int64
	// Notifications counts status changes that reached clients.
	Notifications int
	// StalenessSteps sums, over all revocations and clients, the number of
	// steps between a revocation and the client learning of it.
	StalenessSteps int
}

// Run executes one scheme under p and returns its measured cost.
func Run(scheme Scheme, p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	switch scheme {
	case OCSP:
		return runOCSP(p)
	case CRL:
		return runCRL(p)
	case Subscription:
		return runSubscription(p)
	default:
		return Result{}, fmt.Errorf("revocation: unknown scheme %q", scheme)
	}
}

// RunAll executes all three schemes under identical parameters.
func RunAll(p Params) ([]Result, error) {
	var out []Result
	for _, s := range []Scheme{OCSP, CRL, Subscription} {
		r, err := Run(s, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// credIDs builds deterministic credential identifiers shared by all
// schemes.
func credIDs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("cred-%04d", i)
	}
	return out
}

// revocationSchedule maps step -> credential index revoked at that step.
func revocationSchedule(p Params) map[int]int {
	sched := make(map[int]int, len(p.RevokeAt))
	next := 0
	for _, at := range p.RevokeAt {
		if at < 0 || at >= p.Steps {
			continue
		}
		if _, dup := sched[at]; dup {
			continue
		}
		sched[at] = next
		next++
	}
	return sched
}

// --- OCSP -----------------------------------------------------------------

type ocspReq struct {
	IDs []string `json:"ids"`
}

type ocspResp struct {
	Revoked []bool `json:"revoked"`
}

// runOCSP: a responder holds status; each client polls all credentials
// every PollEvery steps (one batched request per poll, the favourable case
// for OCSP).
func runOCSP(p Params) (Result, error) {
	net, ids, cleanup, err := newWorld()
	if err != nil {
		return Result{}, err
	}
	defer cleanup()

	creds := credIDs(p.Credentials)
	var mu sync.Mutex
	revoked := make(map[string]bool)

	ln, err := net.Listen("ocsp.responder", ids.server)
	if err != nil {
		return Result{}, err
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				for {
					frame, err := conn.Recv()
					if err != nil {
						return
					}
					var req ocspReq
					if err := json.Unmarshal(frame, &req); err != nil {
						return
					}
					resp := ocspResp{Revoked: make([]bool, len(req.IDs))}
					mu.Lock()
					for i, id := range req.IDs {
						resp.Revoked[i] = revoked[id]
					}
					mu.Unlock()
					out, err := json.Marshal(resp)
					if err != nil {
						return
					}
					if err := conn.Send(out); err != nil {
						return
					}
				}
			}()
		}
	}()

	conns := make([]transport.Conn, p.Clients)
	for i := range conns {
		c, err := net.Dialer(ids.client).Dial(context.Background(), "ocsp.responder")
		if err != nil {
			return Result{}, err
		}
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()

	res := Result{Scheme: OCSP}
	sched := revocationSchedule(p)
	known := make([]map[string]bool, p.Clients)
	for i := range known {
		known[i] = make(map[string]bool)
	}
	pendingSince := make(map[string]int)

	req, err := json.Marshal(ocspReq{IDs: creds})
	if err != nil {
		return Result{}, err
	}
	for step := 0; step < p.Steps; step++ {
		if idx, ok := sched[step]; ok {
			mu.Lock()
			revoked[creds[idx]] = true
			mu.Unlock()
			pendingSince[creds[idx]] = step
		}
		if step%p.PollEvery != 0 {
			continue
		}
		for ci, conn := range conns {
			if err := conn.Send(req); err != nil {
				return Result{}, err
			}
			frame, err := conn.Recv()
			if err != nil {
				return Result{}, err
			}
			var resp ocspResp
			if err := json.Unmarshal(frame, &resp); err != nil {
				return Result{}, err
			}
			for i, r := range resp.Revoked {
				if r && !known[ci][creds[i]] {
					known[ci][creds[i]] = true
					res.Notifications++
					res.StalenessSteps += step - pendingSince[creds[i]]
				}
			}
		}
	}
	st := net.Stats()
	res.Messages, res.Bytes = st.Messages, st.Bytes
	return res, nil
}

// --- CRL ------------------------------------------------------------------

type crlPush struct {
	Revoked []string `json:"revoked"`
}

// runCRL: the distributor pushes the complete revocation list to every
// subscriber every CRLEvery steps, whether or not anything changed.
func runCRL(p Params) (Result, error) {
	net, ids, cleanup, err := newWorld()
	if err != nil {
		return Result{}, err
	}
	defer cleanup()

	creds := credIDs(p.Credentials)
	ln, err := net.Listen("crl.distributor", ids.server)
	if err != nil {
		return Result{}, err
	}
	defer ln.Close()

	// The distributor accepts subscriber connections.
	var mu sync.Mutex
	var subscriberConns []transport.Conn
	accepted := make(chan struct{}, p.Clients)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			subscriberConns = append(subscriberConns, conn)
			mu.Unlock()
			accepted <- struct{}{}
		}
	}()

	clientConns := make([]transport.Conn, p.Clients)
	for i := range clientConns {
		c, err := net.Dialer(ids.client).Dial(context.Background(), "crl.distributor")
		if err != nil {
			return Result{}, err
		}
		clientConns[i] = c
		<-accepted
	}
	defer func() {
		for _, c := range clientConns {
			_ = c.Close()
		}
	}()

	res := Result{Scheme: CRL}
	sched := revocationSchedule(p)
	var revokedList []string
	known := make([]int, p.Clients) // length of list each client has seen
	pendingSince := make(map[string]int)

	for step := 0; step < p.Steps; step++ {
		if idx, ok := sched[step]; ok {
			revokedList = append(revokedList, creds[idx])
			pendingSince[creds[idx]] = step
		}
		if step%p.CRLEvery != 0 {
			continue
		}
		frame, err := json.Marshal(crlPush{Revoked: revokedList})
		if err != nil {
			return Result{}, err
		}
		mu.Lock()
		targets := append([]transport.Conn(nil), subscriberConns...)
		mu.Unlock()
		for _, conn := range targets {
			if err := conn.Send(frame); err != nil {
				return Result{}, err
			}
		}
		// Clients drain the push and diff against what they knew.
		for ci, conn := range clientConns {
			frame, err := conn.Recv()
			if err != nil {
				return Result{}, err
			}
			var push crlPush
			if err := json.Unmarshal(frame, &push); err != nil {
				return Result{}, err
			}
			for _, id := range push.Revoked[known[ci]:] {
				res.Notifications++
				res.StalenessSteps += step - pendingSince[id]
			}
			known[ci] = len(push.Revoked)
		}
	}
	st := net.Stats()
	res.Messages, res.Bytes = st.Messages, st.Bytes
	return res, nil
}

// --- dRBAC subscriptions ----------------------------------------------------

// runSubscription: a real wallet served over the network; every client
// holds one connection with one delegation subscription per credential;
// revocations push exactly one notification per interested client.
func runSubscription(p Params) (Result, error) {
	net, ids, cleanup, err := newWorld()
	if err != nil {
		return Result{}, err
	}
	defer cleanup()

	w := wallet.New(wallet.Config{Owner: ids.server})
	ln, err := net.Listen("wallet.home", ids.server)
	if err != nil {
		return Result{}, err
	}
	srv := remote.Serve(w, ln)
	defer srv.Close()

	// Real delegations to monitor.
	dels := make([]*core.Delegation, p.Credentials)
	for i := range dels {
		d, err := core.Issue(ids.server, core.Template{
			Subject:       core.SubjectEntity(ids.client.ID()),
			SubjectEntity: ptrEntity(ids.client.Entity()),
			Object:        core.NewRole(ids.server.ID(), fmt.Sprintf("role%04d", i)),
		}, time.Unix(0, 0))
		if err != nil {
			return Result{}, err
		}
		if err := w.Publish(d); err != nil {
			return Result{}, err
		}
		dels[i] = d
	}

	res := Result{Scheme: Subscription}
	var mu sync.Mutex
	notified := 0
	arrival := make(chan struct{}, p.Clients*p.Credentials)

	clients := make([]*remote.Client, p.Clients)
	for i := range clients {
		c, err := remote.Dial(context.Background(), net.Dialer(ids.client), "wallet.home")
		if err != nil {
			return Result{}, err
		}
		clients[i] = c
		for _, d := range dels {
			if _, err := c.Subscribe(context.Background(), d.ID(), func(ev subs.Event) {
				if ev.Kind == subs.Revoked {
					mu.Lock()
					notified++
					mu.Unlock()
					arrival <- struct{}{}
				}
			}); err != nil {
				return Result{}, err
			}
		}
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	sched := revocationSchedule(p)
	expected := 0
	for step := 0; step < p.Steps; step++ {
		idx, ok := sched[step]
		if !ok {
			continue
		}
		if err := w.Revoke(dels[idx].ID(), ids.server.ID()); err != nil {
			return Result{}, err
		}
		// Push model: notifications arrive within the same step; wait for
		// them so staleness is honestly zero steps.
		expected += p.Clients
		deadline := time.After(5 * time.Second)
		for {
			mu.Lock()
			done := notified >= expected
			mu.Unlock()
			if done {
				break
			}
			select {
			case <-arrival:
			case <-deadline:
				return Result{}, fmt.Errorf("subscription push timed out")
			}
		}
	}
	mu.Lock()
	res.Notifications = notified
	mu.Unlock()
	res.StalenessSteps = 0
	st := net.Stats()
	res.Messages, res.Bytes = st.Messages, st.Bytes
	return res, nil
}

// --- shared plumbing --------------------------------------------------------

type worldIDs struct {
	server *core.Identity
	client *core.Identity
}

func newWorld() (*transport.MemNetwork, worldIDs, func(), error) {
	server, err := core.IdentityFromSeed("status-server", seed(1))
	if err != nil {
		return nil, worldIDs{}, nil, err
	}
	client, err := core.IdentityFromSeed("status-client", seed(2))
	if err != nil {
		return nil, worldIDs{}, nil, err
	}
	return transport.NewMemNetwork(), worldIDs{server: server, client: client}, func() {}, nil
}

func seed(b byte) []byte {
	s := make([]byte, 32)
	for i := range s {
		s[i] = b
	}
	return s
}

func ptrEntity(e core.Entity) *core.Entity { return &e }
