package subs

import (
	"sync"
	"testing"
	"time"

	"drbac/internal/core"
)

func ev(id string, kind EventKind) Event {
	return Event{Delegation: core.DelegationID(id), Kind: kind, At: time.Unix(0, 0)}
}

func TestSubscribePublish(t *testing.T) {
	r := NewRegistry()
	var got []Event
	cancel := r.Subscribe("d1", func(e Event) { got = append(got, e) })
	defer cancel()

	r.Publish(ev("d1", Revoked))
	r.Publish(ev("d2", Revoked)) // different delegation: not delivered
	if len(got) != 1 || got[0].Kind != Revoked || got[0].Delegation != "d1" {
		t.Fatalf("got %v", got)
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	r := NewRegistry()
	count := 0
	cancel := r.Subscribe("d1", func(Event) { count++ })
	r.Publish(ev("d1", Revoked))
	cancel()
	cancel() // idempotent
	r.Publish(ev("d1", Revoked))
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if r.Subscribers("d1") != 0 {
		t.Fatal("subscriber table not cleaned up")
	}
}

func TestMultipleSubscribersOrdered(t *testing.T) {
	r := NewRegistry()
	var order []int
	r.Subscribe("d1", func(Event) { order = append(order, 1) })
	r.Subscribe("d1", func(Event) { order = append(order, 2) })
	r.Subscribe("d1", func(Event) { order = append(order, 3) })
	r.Publish(ev("d1", Expired))
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if r.Subscribers("d1") != 3 || r.Total() != 3 {
		t.Fatalf("Subscribers=%d Total=%d", r.Subscribers("d1"), r.Total())
	}
}

func TestHandlerMayReenterRegistry(t *testing.T) {
	r := NewRegistry()
	var inner int
	r.Subscribe("d1", func(Event) {
		// Re-entering Subscribe/Publish from a handler must not deadlock.
		cancel := r.Subscribe("d2", func(Event) { inner++ })
		defer cancel()
		r.Publish(ev("d2", Renewed))
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Publish(ev("d1", Revoked))
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("re-entrant publish deadlocked")
	}
	if inner != 1 {
		t.Fatalf("inner = %d", inner)
	}
}

func TestConcurrentSubscribePublish(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cancel := r.Subscribe("d1", func(Event) {
				mu.Lock()
				count++
				mu.Unlock()
			})
			r.Publish(ev("d1", Renewed))
			cancel()
		}()
	}
	wg.Wait()
	if r.Total() != 0 {
		t.Fatalf("Total = %d after all cancels", r.Total())
	}
	mu.Lock()
	defer mu.Unlock()
	if count < 16 {
		t.Fatalf("count = %d, want >= 16 (each publisher sees at least itself)", count)
	}
}

func TestEventKindString(t *testing.T) {
	tests := []struct {
		give EventKind
		want string
	}{
		{Revoked, "revoked"},
		{Expired, "expired"},
		{Renewed, "renewed"},
		{Stale, "stale"},
		{Published, "published"},
		{EventKind(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

func TestSubscribeAllReceivesEveryEvent(t *testing.T) {
	r := NewRegistry()
	var got []Event
	cancel := r.SubscribeAll(func(ev Event) { got = append(got, ev) })

	r.Publish(Event{Delegation: "aa", Kind: Revoked})
	r.Publish(Event{Delegation: "bb", Kind: Published})
	if len(got) != 2 || got[0].Delegation != "aa" || got[1].Kind != Published {
		t.Fatalf("wildcard deliveries = %v", got)
	}

	cancel()
	cancel() // idempotent
	r.Publish(Event{Delegation: "cc", Kind: Expired})
	if len(got) != 2 {
		t.Fatalf("delivery after cancel: %v", got)
	}
}

// TestWildcardRunsBeforePerDelegation pins the invalidate-before-react
// ordering the wallet's proof cache depends on.
func TestWildcardRunsBeforePerDelegation(t *testing.T) {
	r := NewRegistry()
	var order []string
	// Register the per-delegation handler FIRST; the wildcard must still be
	// delivered ahead of it.
	r.Subscribe("aa", func(Event) { order = append(order, "sub") })
	r.SubscribeAll(func(Event) { order = append(order, "wild") })

	r.Publish(Event{Delegation: "aa", Kind: Revoked})
	if len(order) != 2 || order[0] != "wild" || order[1] != "sub" {
		t.Fatalf("delivery order = %v, want [wild sub]", order)
	}
}
