// Package subs implements delegation subscriptions (§4.2.2): a per-
// delegation publish/subscribe registry that pushes status updates to
// interested parties the moment a credential changes, instead of requiring
// OCSP-style polling.
//
// The registry is purely local; internal/remote bridges subscriptions across
// wallets over the authenticated transport.
package subs

import (
	"sort"
	"sync"
	"time"

	"drbac/internal/core"
)

// EventKind classifies a delegation status change.
type EventKind int

const (
	// Revoked: the issuer withdrew the delegation.
	Revoked EventKind = iota + 1
	// Expired: the delegation's expiry passed.
	Expired
	// Renewed: the home wallet re-confirmed validity (TTL refresh).
	Renewed
	// Stale: a cached copy's TTL lapsed without re-confirmation from its
	// home wallet (§4.2.1); the credential must be re-fetched before reuse.
	Stale
	// Published: the wallet accepted a new delegation. Wildcard subscribers
	// use it to drop memoized "no proof" answers that the new credential may
	// now contradict (§6 coherent caching).
	Published
)

// String renders the kind.
func (k EventKind) String() string {
	switch k {
	case Revoked:
		return "revoked"
	case Expired:
		return "expired"
	case Renewed:
		return "renewed"
	case Stale:
		return "stale"
	case Published:
		return "published"
	default:
		return "unknown"
	}
}

// Event is one delegation status update.
type Event struct {
	Delegation core.DelegationID
	Kind       EventKind
	At         time.Time
	// Seq is the publishing wallet's changelog sequence number for this
	// event: 1-based and gapless within one wallet process, assigned in the
	// order mutations were accepted. Replication (§9) rides on it — a
	// follower that sees seq jump knows it missed an event and must resync.
	// Zero marks events that did not originate from a sequenced mutation.
	Seq uint64
}

// Handler receives events. Handlers run outside the registry lock and may
// re-enter the registry (or its owning wallet).
type Handler func(Event)

// Registry is a concurrency-safe per-delegation subscription table. The
// zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu   sync.Mutex
	next int
	subs map[core.DelegationID]map[int]Handler
	// wild holds wildcard handlers, delivered every event regardless of
	// delegation. They run before per-delegation handlers so that cache
	// invalidation completes before subscribers react (e.g. a monitor that
	// re-proves must not be served a memoized answer the event just killed).
	wild map[int]Handler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		subs: make(map[core.DelegationID]map[int]Handler),
		wild: make(map[int]Handler),
	}
}

// Subscribe registers fn for updates to one delegation and returns a cancel
// function. Cancel is idempotent.
func (r *Registry) Subscribe(id core.DelegationID, fn Handler) (cancel func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	r.next++
	m, ok := r.subs[id]
	if !ok {
		m = make(map[int]Handler)
		r.subs[id] = m
	}
	m[n] = fn
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			if m, ok := r.subs[id]; ok {
				delete(m, n)
				if len(m) == 0 {
					delete(r.subs, id)
				}
			}
		})
	}
}

// SubscribeAll registers fn for every delegation's events and returns an
// idempotent cancel function. Wildcard handlers are invoked before
// per-delegation handlers on each Publish.
func (r *Registry) SubscribeAll(fn Handler) (cancel func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	r.next++
	r.wild[n] = fn
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			delete(r.wild, n)
		})
	}
}

// Publish delivers an event to every wildcard subscriber and then to every
// subscriber of its delegation. Handlers are invoked synchronously, outside
// the registry lock, in registration order within each group.
func (r *Registry) Publish(ev Event) {
	r.mu.Lock()
	m := r.subs[ev.Delegation]
	handlers := make([]Handler, 0, len(r.wild)+len(m))
	handlers = appendOrdered(handlers, r.wild)
	handlers = appendOrdered(handlers, m)
	r.mu.Unlock()

	for _, fn := range handlers {
		fn(ev)
	}
}

// appendOrdered appends m's handlers in registration order (ascending key).
func appendOrdered(dst []Handler, m map[int]Handler) []Handler {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		dst = append(dst, m[k])
	}
	return dst
}

// Subscribers reports the number of active subscriptions for a delegation.
func (r *Registry) Subscribers(id core.DelegationID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs[id])
}

// Total reports the number of active subscriptions across all delegations.
func (r *Registry) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, m := range r.subs {
		n += len(m)
	}
	return n
}
