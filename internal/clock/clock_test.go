package clock

import (
	"testing"
	"time"
)

var epoch = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

func TestSystemClock(t *testing.T) {
	var c Clock = System{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("System.Now() = %v outside [%v, %v]", got, before, after)
	}
	select {
	case <-c.After(time.Nanosecond):
	case <-time.After(time.Second):
		t.Fatal("System.After never fired")
	}
}

func TestFakeNowAndAdvance(t *testing.T) {
	f := NewFake(epoch)
	if !f.Now().Equal(epoch) {
		t.Fatalf("Now = %v", f.Now())
	}
	f.Advance(90 * time.Second)
	if want := epoch.Add(90 * time.Second); !f.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", f.Now(), want)
	}
}

func TestFakeAfterFiresOnAdvance(t *testing.T) {
	f := NewFake(epoch)
	ch := f.After(time.Minute)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	f.Advance(30 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired at half time")
	default:
	}
	f.Advance(30 * time.Second)
	select {
	case got := <-ch:
		if !got.Equal(epoch.Add(time.Minute)) {
			t.Fatalf("fired with %v", got)
		}
	case <-time.After(time.Second):
		t.Fatal("timer did not fire at deadline")
	}
}

func TestFakeAfterNonPositiveFiresImmediately(t *testing.T) {
	f := NewFake(epoch)
	select {
	case <-f.After(0):
	default:
		t.Fatal("After(0) should be ready")
	}
	select {
	case <-f.After(-time.Second):
	default:
		t.Fatal("After(negative) should be ready")
	}
}

func TestFakeMultipleWaiters(t *testing.T) {
	f := NewFake(epoch)
	short := f.After(10 * time.Second)
	long := f.After(100 * time.Second)
	f.Advance(20 * time.Second)
	select {
	case <-short:
	default:
		t.Fatal("short timer should have fired")
	}
	select {
	case <-long:
		t.Fatal("long timer fired early")
	default:
	}
	f.Advance(100 * time.Second)
	select {
	case <-long:
	default:
		t.Fatal("long timer should have fired")
	}
}

func TestFakeSet(t *testing.T) {
	f := NewFake(epoch)
	ch := f.After(time.Hour)
	f.Set(epoch.Add(2 * time.Hour))
	if want := epoch.Add(2 * time.Hour); !f.Now().Equal(want) {
		t.Fatalf("Now = %v", f.Now())
	}
	select {
	case <-ch:
	default:
		t.Fatal("Set past deadline should fire timer")
	}
	// Setting backwards is ignored.
	f.Set(epoch)
	if want := epoch.Add(2 * time.Hour); !f.Now().Equal(want) {
		t.Fatalf("backward Set changed time: %v", f.Now())
	}
}
