// Package clock provides an injectable time source so that TTL caching,
// credential expiry, and polling loops can be tested deterministically.
//
// Production code uses System; tests use a Fake clock that only advances
// when told to.
package clock

import (
	"sync"
	"time"
)

// Clock is the time source used throughout dRBAC. It mirrors the subset of
// the time package the system needs: reading the current instant and
// scheduling wakeups.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that delivers the (then-current) time once
	// at least d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// System is the real wall clock.
type System struct{}

var _ Clock = System{}

// Now implements Clock using time.Now.
func (System) Now() time.Time { return time.Now() }

// After implements Clock using time.After.
func (System) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Fake is a manually advanced clock for tests. The zero value is not usable;
// construct with NewFake.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

var _ Clock = (*Fake)(nil)

// NewFake returns a Fake clock pinned at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now returns the fake current instant.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After returns a channel that fires when the fake clock has been advanced
// past d from now.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := f.now.Add(d)
	if d <= 0 {
		ch <- f.now
		return ch
	}
	f.waiters = append(f.waiters, fakeWaiter{at: at, ch: ch})
	return ch
}

// Advance moves the fake clock forward by d, firing any timers whose
// deadline has been reached.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	var remaining []fakeWaiter
	var fired []fakeWaiter
	for _, w := range f.waiters {
		if !w.at.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	f.waiters = remaining
	f.mu.Unlock()

	for _, w := range fired {
		w.ch <- now
	}
}

// Set jumps the fake clock to t (which must not be earlier than the current
// fake time), firing due timers.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	delta := t.Sub(f.now)
	f.mu.Unlock()
	if delta < 0 {
		return
	}
	f.Advance(delta)
}
