package wallet

import (
	"sync"
	"time"
)

// StartJanitor launches a background sweeper that pushes Expired and Stale
// notifications on schedule (§4.2.2 monitors react to them). Queries are
// already correct without it — expired credentials never appear in proofs —
// so the janitor exists purely to drive push notifications and reclaim
// memory. It ticks on the wallet's clock, so tests drive it with a fake.
//
// The returned stop function signals the goroutine and waits for it to
// exit; it is idempotent and safe for concurrent use.
func (w *Wallet) StartJanitor(interval time.Duration) (stop func()) {
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-w.clk.After(interval):
				w.SweepExpired()
				w.SweepStaleCache()
			case <-quit:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-done
		})
	}
}
