package wallet

import (
	"fmt"
	"sync"

	"drbac/internal/core"
	"drbac/internal/subs"
)

// MonitorEventKind classifies what a proof monitor observed.
type MonitorEventKind int

const (
	// MonitorReproved: a delegation in the proof changed, but the wallet
	// found an alternate proof; Proof carries the replacement (§4.2.2:
	// "the entity can request an alternate proof").
	MonitorReproved MonitorEventKind = iota + 1
	// MonitorInvalidated: the trust relationship no longer holds; access
	// should be discontinued.
	MonitorInvalidated
)

// String renders the kind.
func (k MonitorEventKind) String() string {
	switch k {
	case MonitorReproved:
		return "reproved"
	case MonitorInvalidated:
		return "invalidated"
	default:
		return "unknown"
	}
}

// MonitorEvent is delivered to the monitor's callback when the monitored
// trust relationship changes.
type MonitorEvent struct {
	Kind MonitorEventKind
	// Cause is the delegation status update that triggered re-evaluation.
	Cause subs.Event
	// Proof is the replacement proof for MonitorReproved events.
	Proof *core.Proof
}

// Monitor continuously tracks the validity of a proof over the lifetime of
// a prolonged interaction (§4.2.2). It registers a delegation subscription
// for every delegation in the proof, including support proofs; when any is
// invalidated it first attempts to find an alternate proof before reporting
// the relationship lost.
type Monitor struct {
	w        *Wallet
	query    Query
	callback func(MonitorEvent)

	mu     sync.Mutex
	proof  *core.Proof
	valid  bool
	closed bool
	unsubs []func()
}

// Monitor wraps a proof in a proof monitor (§4.1: "what a query returns is
// a proof wrapped in a proof monitor object"). The callback receives
// subsequent validity changes; it runs on the goroutine that triggered the
// status change and must not block.
func (w *Wallet) Monitor(q Query, callback func(MonitorEvent)) (*Monitor, error) {
	p, err := w.QueryDirect(q)
	if err != nil {
		return nil, err
	}
	return w.monitorProof(q, p, callback)
}

// MonitorProof wraps an already-obtained proof, validating it first.
func (w *Wallet) MonitorProof(q Query, p *core.Proof, callback func(MonitorEvent)) (*Monitor, error) {
	if err := p.Validate(w.validateOptions(q)); err != nil {
		return nil, fmt.Errorf("monitor: %w", err)
	}
	return w.monitorProof(q, p, callback)
}

func (w *Wallet) monitorProof(q Query, p *core.Proof, callback func(MonitorEvent)) (*Monitor, error) {
	m := &Monitor{
		w:        w,
		query:    q,
		callback: callback,
		proof:    p,
		valid:    true,
	}
	m.mu.Lock()
	m.subscribeLocked()
	m.mu.Unlock()
	return m, nil
}

// Proof returns the currently monitored proof (nil after invalidation).
func (m *Monitor) Proof() *core.Proof {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.valid {
		return nil
	}
	return m.proof
}

// Valid reports whether the monitored trust relationship currently holds.
func (m *Monitor) Valid() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.valid
}

// Close cancels all delegation subscriptions. Idempotent.
func (m *Monitor) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.unsubscribeLocked()
}

// subscribeLocked registers a delegation subscription for every delegation
// in the current proof. Callers hold m.mu.
func (m *Monitor) subscribeLocked() {
	for _, d := range m.proof.Delegations() {
		id := d.ID()
		m.unsubs = append(m.unsubs, m.w.Subscribe(id, m.onDelegationEvent))
	}
}

func (m *Monitor) unsubscribeLocked() {
	for _, u := range m.unsubs {
		u()
	}
	m.unsubs = nil
}

// onDelegationEvent reacts to a status change of any delegation in the
// proof: renewals and (re-)publications are ignored — neither weakens the
// proof — anything else triggers re-proof.
func (m *Monitor) onDelegationEvent(ev subs.Event) {
	if ev.Kind == subs.Renewed || ev.Kind == subs.Published {
		return
	}
	m.mu.Lock()
	if m.closed || !m.valid {
		m.mu.Unlock()
		return
	}
	// The old proof is compromised; drop its subscriptions before
	// re-proving so a replacement starts clean.
	m.unsubscribeLocked()

	replacement, err := m.w.QueryDirect(m.query)
	if err == nil {
		m.proof = replacement
		m.subscribeLocked()
		cb := m.callback
		m.mu.Unlock()
		if cb != nil {
			cb(MonitorEvent{Kind: MonitorReproved, Cause: ev, Proof: replacement})
		}
		return
	}
	m.valid = false
	m.proof = nil
	cb := m.callback
	m.mu.Unlock()
	if cb != nil {
		cb(MonitorEvent{Kind: MonitorInvalidated, Cause: ev})
	}
}
