package wallet

import (
	"testing"
	"time"

	"drbac/internal/core"
)

func TestCacheKeyNormalizesConstraints(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	subject := e.subject("Maria")
	object := e.role("BigISP.member")
	c1 := core.Constraint{Attr: core.AttributeRef{Namespace: e.id("BigISP").ID(), Name: "bw"}, Base: 100, Minimum: 50}
	c2 := core.Constraint{Attr: core.AttributeRef{Namespace: e.id("BigISP").ID(), Name: "gb"}, Base: 30, Minimum: 10}

	a := CacheKey(subject, object, []core.Constraint{c1, c2})
	b := CacheKey(subject, object, []core.Constraint{c2, c1})
	if a != b {
		t.Fatalf("constraint order changed the key:\n%q\n%q", a, b)
	}
	if a == CacheKey(subject, object, []core.Constraint{c1}) {
		t.Fatal("dropping a constraint did not change the key")
	}
	if a == CacheKey(subject, object, nil) {
		t.Fatal("unconstrained key collides with constrained key")
	}
	if CacheKey(subject, object, nil) == CacheKey(subject, e.role("BigISP.member'"), nil) {
		t.Fatal("distinct objects share a key")
	}
}

func TestProofCacheHitMissNegative(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	p, err := core.NewProof(core.ProofStep{Delegation: d})
	if err != nil {
		t.Fatal(err)
	}
	c := NewProofCache(0)
	now := e.clk.Now()

	if _, _, ok := c.Lookup("k", now, nil); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("k", p)
	got, negative, ok := c.Lookup("k", now, nil)
	if !ok || negative || got != p {
		t.Fatalf("Lookup = (%v, %v, %v)", got, negative, ok)
	}
	c.PutNegative("n")
	if _, negative, ok := c.Lookup("n", now, nil); !ok || !negative {
		t.Fatalf("negative Lookup = (negative=%v, ok=%v)", negative, ok)
	}
	// PutNegative must not shadow an existing positive entry.
	c.PutNegative("k")
	if got, negative, ok := c.Lookup("k", now, nil); !ok || negative || got != p {
		t.Fatal("PutNegative clobbered a positive entry")
	}

	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Entries != 1 || st.Negatives != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProofCacheLookupRechecksExpiryAndRevocation(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	p, err := core.NewProof(core.ProofStep{Delegation: d})
	if err != nil {
		t.Fatal(err)
	}
	now := e.clk.Now()

	c := NewProofCache(0)
	c.Put("k", p)
	revoked := func(id core.DelegationID) bool { return id == d.ID() }
	if _, _, ok := c.Lookup("k", now, revoked); ok {
		t.Fatal("revoked proof served from cache")
	}
	if _, _, ok := c.Lookup("k", now, nil); ok {
		t.Fatal("entry not dropped after failed recheck")
	}
	if st := c.Stats(); st.Invalidations == 0 {
		t.Fatalf("stats = %+v, want an invalidation", st)
	}

	// Expiry recheck: an expired delegation's proof must not be served.
	exp := e.deleg("[Maria -> BigISP.member] BigISP <expiry:2026-07-06T12:01:00Z>")
	pe, err := core.NewProof(core.ProofStep{Delegation: exp})
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewProofCache(0)
	c2.Put("k", pe)
	if _, _, ok := c2.Lookup("k", now.Add(2*time.Minute), nil); ok {
		t.Fatal("expired proof served from cache")
	}
}

func TestProofCacheInvalidateDelegation(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	d1 := e.deleg("[Maria -> BigISP.member] BigISP")
	d2 := e.deleg("[Mark -> BigISP.memberServices] BigISP")
	p1, _ := core.NewProof(core.ProofStep{Delegation: d1})
	p2, _ := core.NewProof(core.ProofStep{Delegation: d2})
	c := NewProofCache(0)
	c.Put("a", p1)
	c.Put("b", p2)
	c.PutNegative("n")

	c.InvalidateDelegation(d1.ID())
	now := e.clk.Now()
	if _, _, ok := c.Lookup("a", now, nil); ok {
		t.Fatal("invalidated entry still served")
	}
	if _, _, ok := c.Lookup("b", now, nil); !ok {
		t.Fatal("unrelated entry dropped")
	}

	c.InvalidateNegatives()
	if _, _, ok := c.Lookup("n", now, nil); ok {
		t.Fatal("negative entry survived InvalidateNegatives")
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", st.Invalidations)
	}
}

func TestProofCacheEviction(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	p, _ := core.NewProof(core.ProofStep{Delegation: d})
	c := NewProofCache(4)
	for i := 0; i < 64; i++ {
		c.Put(string(rune('a'+i)), p)
	}
	if st := c.Stats(); st.Entries+st.Negatives > 4 {
		t.Fatalf("cache grew past its limit: %+v", st)
	}
	// The delegation index must shrink with evictions, not leak keys.
	c.InvalidateDelegation(d.ID())
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries after full invalidation = %d", st.Entries)
	}
}
