package wallet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/graph"
)

// TestConcurrentPublishRevokeQuery hammers one wallet with parallel
// publishers, revokers, and queriers. Run under -race it exercises the
// sharded graph, the store, and the proof cache concurrently; the only
// assertions are invariants every interleaving must keep — a returned proof
// validates, and the final state is consistent.
func TestConcurrentPublishRevokeQuery(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	org := e.id("BigISP")

	// A stable base chain queries can always hit.
	base := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.Publish(base); err != nil {
		t.Fatal(err)
	}

	const (
		publishers = 4
		revokers   = 2
		queriers   = 8
		perWorker  = 50
	)
	// Pre-issue churn delegations outside the goroutines (issuing signs with
	// the identity; the wallet is the system under test here).
	churn := make([][]*core.Delegation, publishers)
	for i := range churn {
		churn[i] = make([]*core.Delegation, perWorker)
		for j := range churn[i] {
			churn[i][j] = e.deleg(fmt.Sprintf("[Maria -> BigISP.role%dx%d] BigISP", i, j))
		}
	}

	var revoked atomic.Int64
	toRevoke := make(chan core.DelegationID, publishers*perWorker)
	var wg sync.WaitGroup
	for i := 0; i < publishers; i++ {
		wg.Add(1)
		go func(mine []*core.Delegation) {
			defer wg.Done()
			for _, d := range mine {
				if err := w.Publish(d); err != nil {
					// Losing a publish/revoke race on the same ID is legal;
					// anything else is a bug.
					if !errors.Is(err, core.ErrNoProof) {
						var re *core.RevokedError
						if !errors.As(err, &re) {
							t.Errorf("publish: %v", err)
							return
						}
					}
				}
				toRevoke <- d.ID()
			}
		}(churn[i])
	}
	for i := 0; i < revokers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < publishers*perWorker/revokers; j++ {
				id := <-toRevoke
				if err := w.Revoke(id, org.ID()); err == nil {
					revoked.Add(1)
				}
			}
		}()
	}
	q := Query{Subject: e.subject("Maria"), Object: e.role("BigISP.member")}
	for i := 0; i < queriers; i++ {
		wg.Add(1)
		go func(withStats bool) {
			defer wg.Done()
			vopts := core.ValidateOptions{Revoked: w.revokedFn()}
			for j := 0; j < perWorker; j++ {
				qq := q
				if withStats {
					qq.Stats = &graph.Stats{} // exercise the cache-bypass path
				}
				p, err := w.QueryDirect(qq)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				vopts.At = w.Now()
				if err := p.Validate(vopts); err != nil {
					t.Errorf("returned proof does not validate: %v", err)
					return
				}
				w.QuerySubject(qq.Subject, nil)
				w.QueryObject(qq.Object, nil)
			}
		}(i%2 == 0)
	}
	wg.Wait()

	if got := int64(len(w.RevokedIDs())); got != revoked.Load() {
		t.Fatalf("revoked set = %d, want %d", got, revoked.Load())
	}
	// Every revoked delegation must be gone from graph and queries.
	for _, id := range w.RevokedIDs() {
		if w.Contains(id) {
			t.Fatalf("revoked delegation %s still stored", id.Short())
		}
	}
	st := w.Stats()
	if st.Delegations != w.Len() || st.Revoked != len(w.RevokedIDs()) {
		t.Fatalf("stats disagree with wallet: %+v", st)
	}
}

// TestCacheCoherenceOnRevocation pins the tentpole coherence guarantee: a
// revocation push invalidates the memoized proof before the next query
// returns — the answer after Revoke is never the cached one.
func TestCacheCoherenceOnRevocation(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	w := e.wallet(Config{})
	_, _, d3 := e.publishTable1(w)

	q := Query{Subject: e.subject("Maria"), Object: e.role("BigISP.member")}
	p1, err := w.QueryDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	// Second query must be a cache hit returning the same proof.
	p2, err := w.QueryDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("second query did not hit the cache")
	}
	st := w.Stats()
	if st.Cache.Hits == 0 {
		t.Fatalf("no cache hit recorded: %+v", st.Cache)
	}

	// d3 is the only path Maria ⇒ member: revoking it must invalidate the
	// cached proof synchronously.
	if err := w.Revoke(d3.ID(), e.id("Mark").ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.QueryDirect(q); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("query after revocation = %v, want ErrNoProof", err)
	}
	if got := w.Stats().Cache.Invalidations; got == 0 {
		t.Fatal("revocation recorded no cache invalidation")
	}
}

// TestCacheCoherenceOnPublish pins the negative-entry side: once a query is
// memoized as unprovable, publishing the missing credential must flush the
// negative answer before the next query returns.
func TestCacheCoherenceOnPublish(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})

	q := Query{Subject: e.subject("Maria"), Object: e.role("BigISP.member")}
	if _, err := w.QueryDirect(q); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("err = %v, want ErrNoProof", err)
	}
	// Memoized negative: a second miss must be a hit on the negative entry.
	if _, err := w.QueryDirect(q); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("err = %v, want ErrNoProof", err)
	}
	if st := w.Stats().Cache; st.Hits == 0 || st.Negatives == 0 {
		t.Fatalf("negative answer not memoized: %+v", st)
	}

	if err := w.Publish(e.deleg("[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.QueryDirect(q); err != nil {
		t.Fatalf("query after publish = %v, want proof", err)
	}
}

// TestCacheCoherenceOnStaleTTL pins TTL-lapse invalidation: when a cached
// remote credential goes stale, memoized proofs using it die with it.
func TestCacheCoherenceOnStaleTTL(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.InsertCached(d, nil, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	q := Query{Subject: e.subject("Maria"), Object: e.role("BigISP.member")}
	if _, err := w.QueryDirect(q); err != nil {
		t.Fatal(err)
	}

	e.clk.Advance(time.Minute) // TTL lapses
	if n := w.SweepStaleCache(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if _, err := w.QueryDirect(q); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("query after staleness = %v, want ErrNoProof", err)
	}
}
