package wallet

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"

	"drbac/internal/obs"
	"drbac/internal/sigcache"
)

// TestReplaySkipsAreCountedAndTriaged rebuilds a wallet over a store holding
// one good bundle, one with a tampered signature, and one malformed: the bad
// bundles must be refused (as before), but now counted in
// drbac_wallet_replay_skipped_total and logged with a structure-vs-signature
// triage instead of vanishing silently.
func TestReplaySkipsAreCountedAndTriaged(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Mark")
	st := NewMemStore()

	good := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := st.PutDelegation(1, good, nil); err != nil {
		t.Fatal(err)
	}

	// Tampering the signature leaves the content hash (and so the store
	// key) intact but fails verification.
	badSig := e.deleg("[Mark -> BigISP.member] BigISP")
	badSig.Signature = append([]byte(nil), badSig.Signature...)
	badSig.Signature[0] ^= 1
	if err := st.PutDelegation(2, badSig, nil); err != nil {
		t.Fatal(err)
	}

	malformed := e.deleg("[Mark -> BigISP.memberServices] BigISP")
	malformed.DepthLimit = -1
	if err := st.PutDelegation(3, malformed, nil); err != nil {
		t.Fatal(err)
	}

	var logs bytes.Buffer
	reg := obs.NewRegistry()
	w := e.wallet(Config{
		Store:    st,
		Obs:      obs.New(obs.NewLogger(&logs, slog.LevelWarn, false), reg),
		SigCache: sigcache.New(0),
	})

	if w.Len() != 1 {
		t.Fatalf("replayed wallet holds %d delegations, want 1", w.Len())
	}
	if !w.Contains(good.ID()) {
		t.Error("good delegation did not survive replay")
	}
	if got := reg.Snapshot().Counters["drbac_wallet_replay_skipped_total"]; got != 2 {
		t.Errorf("drbac_wallet_replay_skipped_total = %d, want 2", got)
	}
	out := logs.String()
	if !strings.Contains(out, "cause=signature") {
		t.Errorf("log lacks a cause=signature skip:\n%s", out)
	}
	if !strings.Contains(out, "cause=structure") {
		t.Errorf("log lacks a cause=structure skip:\n%s", out)
	}
}

// TestReplayCleanStoreSkipsNothing pins the counter at zero for a healthy
// store so the metric is trustworthy as an alert signal.
func TestReplayCleanStoreSkipsNothing(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	st := NewMemStore()
	if err := st.PutDelegation(1, e.deleg("[Maria -> BigISP.member] BigISP"), nil); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	w := e.wallet(Config{Store: st, Obs: obs.New(nil, reg), SigCache: sigcache.New(0)})
	if w.Len() != 1 {
		t.Fatalf("wallet holds %d delegations, want 1", w.Len())
	}
	if got := reg.Snapshot().Counters["drbac_wallet_replay_skipped_total"]; got != 0 {
		t.Errorf("drbac_wallet_replay_skipped_total = %d, want 0", got)
	}
}

// TestWalletStatsExposeSigCache checks that wallet.Stats surfaces the
// signature memo's counters and that validations actually flow through it.
func TestWalletStatsExposeSigCache(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	c := sigcache.New(0)
	w := e.wallet(Config{SigCache: c})
	if err := w.Publish(e.deleg("[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.SigCache != c.Stats() {
		t.Errorf("Stats().SigCache = %+v, want %+v", st.SigCache, c.Stats())
	}
	if st.SigCache.Size == 0 {
		t.Error("publish did not populate the signature memo")
	}
}
