package wallet

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/graph"
	"drbac/internal/subs"
)

var testStart = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

// env provides identities, a fake clock, and a wallet under test.
type env struct {
	t   *testing.T
	ids map[string]*core.Identity
	dir *core.MemDirectory
	clk *clock.Fake
}

func newEnv(t *testing.T, names ...string) *env {
	t.Helper()
	e := &env{
		t:   t,
		ids: make(map[string]*core.Identity),
		dir: core.NewDirectory(),
		clk: clock.NewFake(testStart),
	}
	for i, name := range names {
		seed := make([]byte, 32)
		seed[0] = byte(i + 1)
		copy(seed[1:], name)
		id, err := core.IdentityFromSeed(name, seed)
		if err != nil {
			t.Fatalf("identity %s: %v", name, err)
		}
		e.ids[name] = id
		e.dir.Add(id.Entity())
	}
	return e
}

func (e *env) wallet(cfg Config) *Wallet {
	if cfg.Clock == nil {
		cfg.Clock = e.clk
	}
	if cfg.Directory == nil {
		cfg.Directory = e.dir
	}
	return New(cfg)
}

func (e *env) id(name string) *core.Identity {
	id, ok := e.ids[name]
	if !ok {
		e.t.Fatalf("unknown identity %q", name)
	}
	return id
}

func (e *env) deleg(text string) *core.Delegation {
	e.t.Helper()
	parsed, err := core.ParseDelegation(text, e.dir)
	if err != nil {
		e.t.Fatalf("parse %q: %v", text, err)
	}
	var issuer *core.Identity
	for _, id := range e.ids {
		if id.ID() == parsed.Issuer.ID() {
			issuer = id
		}
	}
	if issuer == nil {
		e.t.Fatalf("no identity for issuer of %q", text)
	}
	d, err := core.Issue(issuer, parsed.Template, e.clk.Now())
	if err != nil {
		e.t.Fatalf("issue %q: %v", text, err)
	}
	return d
}

func (e *env) role(text string) core.Role {
	e.t.Helper()
	r, err := core.ParseRole(text, e.dir)
	if err != nil {
		e.t.Fatalf("role %q: %v", text, err)
	}
	return r
}

func (e *env) subject(text string) core.Subject {
	e.t.Helper()
	s, err := core.ParseSubject(text, e.dir)
	if err != nil {
		e.t.Fatalf("subject %q: %v", text, err)
	}
	return s
}

// publishTable1 stores the Table 1 delegations: (1) and (2) self-certified,
// (3) third-party with its support proof.
func (e *env) publishTable1(w *Wallet) (d1, d2, d3 *core.Delegation) {
	e.t.Helper()
	d1 = e.deleg("[Mark -> BigISP.memberServices] BigISP")
	d2 = e.deleg("[BigISP.memberServices -> BigISP.member'] BigISP")
	d3 = e.deleg("[Maria -> BigISP.member] Mark")
	if err := w.Publish(d1); err != nil {
		e.t.Fatalf("publish d1: %v", err)
	}
	if err := w.Publish(d2); err != nil {
		e.t.Fatalf("publish d2: %v", err)
	}
	sup, err := core.NewProof(core.ProofStep{Delegation: d1}, core.ProofStep{Delegation: d2})
	if err != nil {
		e.t.Fatal(err)
	}
	if err := w.Publish(d3, sup); err != nil {
		e.t.Fatalf("publish d3: %v", err)
	}
	return d1, d2, d3
}

func TestPublishAndDirectQuery(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	w := e.wallet(Config{})
	e.publishTable1(w)

	p, err := w.QueryDirect(Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
	})
	if err != nil {
		t.Fatalf("QueryDirect: %v", err)
	}
	if p.Len() != 1 || len(p.Steps[0].Support) == 0 {
		t.Fatalf("proof shape: len=%d support=%d", p.Len(), len(p.Steps[0].Support))
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
}

func TestPublishRejectsBadSignature(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	d.Object.Name = "admin" // tamper
	if err := w.Publish(d); err == nil {
		t.Fatal("tampered delegation accepted")
	}
	if w.Len() != 0 {
		t.Fatal("tampered delegation stored")
	}
}

func TestPublishRejectsThirdPartyWithoutSupport(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	w := e.wallet(Config{})
	d3 := e.deleg("[Maria -> BigISP.member] Mark")
	err := w.Publish(d3)
	var missing *core.MissingSupportError
	if !errors.As(err, &missing) {
		t.Fatalf("want MissingSupportError, got %v", err)
	}
}

func TestPublishDerivesSupportFromOwnGraph(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	w := e.wallet(Config{})
	// Store the authorizing delegations first; then the third-party
	// delegation needs no explicit support because the wallet can derive
	// the chain itself.
	if err := w.Publish(e.deleg("[Mark -> BigISP.memberServices] BigISP")); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(e.deleg("[BigISP.memberServices -> BigISP.member'] BigISP")); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(e.deleg("[Maria -> BigISP.member] Mark")); err != nil {
		t.Fatalf("wallet should derive support from its own graph: %v", err)
	}
}

func TestPublishRejectsExpired(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	d := e.deleg("[Maria -> BigISP.member] BigISP <expiry:2026-07-06T12:30:00Z>")
	e.clk.Advance(time.Hour)
	if err := w.Publish(d); err == nil {
		t.Fatal("expired delegation accepted")
	}
}

func TestPublishIdempotent(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(d); err != nil {
		t.Fatalf("re-publish should be a no-op: %v", err)
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d", w.Len())
	}
}

func TestQueryDirectNoProof(t *testing.T) {
	e := newEnv(t, "BigISP", "AirNet", "Maria")
	w := e.wallet(Config{})
	if err := w.Publish(e.deleg("[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	_, err := w.QueryDirect(Query{Subject: e.subject("Maria"), Object: e.role("AirNet.access")})
	if !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("want ErrNoProof, got %v", err)
	}
}

func TestQuerySubjectAndObject(t *testing.T) {
	e := newEnv(t, "BigISP", "AirNet", "Maria")
	w := e.wallet(Config{})
	if err := w.Publish(e.deleg("[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(e.deleg("[BigISP.member -> AirNet.member] AirNet")); err != nil {
		t.Fatal(err)
	}
	subjProofs := w.QuerySubject(e.subject("Maria"), nil)
	if len(subjProofs) != 2 {
		t.Fatalf("QuerySubject = %d proofs, want 2", len(subjProofs))
	}
	objProofs := w.QueryObject(e.role("AirNet.member"), nil)
	if len(objProofs) != 2 {
		t.Fatalf("QueryObject = %d proofs, want 2 (role chain + Maria chain)", len(objProofs))
	}
}

func TestRevokeByIssuerOnly(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	w := e.wallet(Config{})
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	if err := w.Revoke(d.ID(), e.id("Mark").ID()); err == nil {
		t.Fatal("non-issuer revocation accepted")
	}
	if err := w.Revoke(d.ID(), e.id("BigISP").ID()); err != nil {
		t.Fatalf("issuer revocation failed: %v", err)
	}
	if !w.IsRevoked(d.ID()) || w.Contains(d.ID()) {
		t.Fatal("revocation not applied")
	}
	_, err := w.QueryDirect(Query{Subject: e.subject("Maria"), Object: e.role("BigISP.member")})
	if !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("revoked delegation still proves: %v", err)
	}
	// Republishing a revoked delegation must fail.
	if err := w.Publish(d); err == nil {
		t.Fatal("revoked delegation re-accepted")
	}
}

func TestRevokeUnknownDelegation(t *testing.T) {
	e := newEnv(t, "BigISP")
	w := e.wallet(Config{})
	if err := w.Revoke("deadbeef", e.id("BigISP").ID()); err == nil {
		t.Fatal("revoking unknown delegation should error")
	}
}

func TestRevocationNotifiesSubscribers(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	var events []string
	cancel := w.Subscribe(d.ID(), func(ev subs.Event) { events = append(events, ev.Kind.String()) })
	defer cancel()
	if err := w.Revoke(d.ID(), e.id("BigISP").ID()); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0] != "revoked" {
		t.Fatalf("events = %v", events)
	}
}

func TestSweepExpiredNotifies(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	d := e.deleg("[Maria -> BigISP.member] BigISP <expiry:2026-07-06T12:30:00Z>")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	fired := 0
	cancel := w.Subscribe(d.ID(), func(ev subs.Event) {
		if ev.Kind.String() == "expired" {
			fired++
		}
	})
	defer cancel()
	if n := w.SweepExpired(); n != 0 {
		t.Fatalf("premature sweep removed %d", n)
	}
	e.clk.Advance(time.Hour)
	if n := w.SweepExpired(); n != 1 {
		t.Fatalf("sweep removed %d, want 1", n)
	}
	if fired != 1 {
		t.Fatalf("expired events = %d", fired)
	}
	if w.Contains(d.ID()) {
		t.Fatal("expired delegation still stored")
	}
}

func TestCacheTTLStaleness(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.InsertCached(d, nil, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if w.CachedCount() != 1 {
		t.Fatalf("CachedCount = %d", w.CachedCount())
	}
	staleSeen := 0
	cancel := w.Subscribe(d.ID(), func(ev subs.Event) {
		if ev.Kind.String() == "stale" {
			staleSeen++
		}
	})
	defer cancel()

	// Renew within TTL: stays fresh.
	e.clk.Advance(20 * time.Second)
	if !w.RenewCached(d.ID(), 30*time.Second) {
		t.Fatal("RenewCached = false")
	}
	e.clk.Advance(20 * time.Second)
	if n := w.SweepStaleCache(); n != 0 {
		t.Fatalf("fresh entry swept: %d", n)
	}

	// Let it lapse.
	e.clk.Advance(time.Minute)
	if n := w.SweepStaleCache(); n != 1 {
		t.Fatalf("stale sweep removed %d, want 1", n)
	}
	if staleSeen != 1 {
		t.Fatalf("stale events = %d", staleSeen)
	}
	if w.Contains(d.ID()) {
		t.Fatal("stale cached delegation still queryable")
	}
	if w.RenewCached(d.ID(), time.Second) {
		t.Fatal("renewing a swept entry should report false")
	}
}

func TestInsertCachedZeroTTLIsPermanent(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.InsertCached(d, nil, 0); err != nil {
		t.Fatal(err)
	}
	e.clk.Advance(24 * time.Hour)
	if n := w.SweepStaleCache(); n != 0 {
		t.Fatalf("zero-TTL entry swept: %d", n)
	}
	if !w.Contains(d.ID()) {
		t.Fatal("zero-TTL delegation missing")
	}
}

func TestQueryWithConstraints(t *testing.T) {
	e := newEnv(t, "AirNet", "Maria")
	w := e.wallet(Config{})
	if err := w.Publish(e.deleg("[Maria -> AirNet.access with AirNet.BW <= 100] AirNet")); err != nil {
		t.Fatal(err)
	}
	bw := core.AttributeRef{Namespace: e.id("AirNet").ID(), Name: "BW"}
	if _, err := w.QueryDirect(Query{
		Subject:     e.subject("Maria"),
		Object:      e.role("AirNet.access"),
		Constraints: []core.Constraint{{Attr: bw, Base: math.Inf(1), Minimum: 100}},
	}); err != nil {
		t.Fatalf("satisfiable: %v", err)
	}
	if _, err := w.QueryDirect(Query{
		Subject:     e.subject("Maria"),
		Object:      e.role("AirNet.access"),
		Constraints: []core.Constraint{{Attr: bw, Base: math.Inf(1), Minimum: 101}},
	}); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("unsatisfiable: want ErrNoProof, got %v", err)
	}
}

func TestStrictAttributesPublish(t *testing.T) {
	e := newEnv(t, "BigISP", "AirNet", "Sheila")
	w := e.wallet(Config{StrictAttributes: true})
	// Sheila needs AirNet.member' AND AirNet.BW<=' to publish this.
	if err := w.Publish(e.deleg("[Sheila -> AirNet.mktg] AirNet")); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(e.deleg("[AirNet.mktg -> AirNet.member'] AirNet")); err != nil {
		t.Fatal(err)
	}
	d := e.deleg("[BigISP.member -> AirNet.member with AirNet.BW <= 100] Sheila")
	if err := w.Publish(d); err == nil {
		t.Fatal("strict wallet accepted delegation without attribute right")
	}
	if err := w.Publish(e.deleg("[AirNet.mktg -> AirNet.BW <= '] AirNet")); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(d); err != nil {
		t.Fatalf("with attribute right: %v", err)
	}
}

func TestWatchForFiresOnPublication(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	q := Query{Subject: e.subject("Maria"), Object: e.role("BigISP.member")}
	var got *core.Proof
	cancel := w.WatchFor(q, func(p *core.Proof) { got = p })
	defer cancel()
	if got != nil {
		t.Fatal("watch fired before proof existed")
	}
	if err := w.Publish(e.deleg("[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("watch did not fire on publication")
	}
}

func TestWatchForFiresImmediatelyIfProofExists(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	if err := w.Publish(e.deleg("[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	fired := false
	cancel := w.WatchFor(Query{Subject: e.subject("Maria"), Object: e.role("BigISP.member")},
		func(*core.Proof) { fired = true })
	defer cancel()
	if !fired {
		t.Fatal("watch should fire synchronously when a proof exists")
	}
}

func TestWatchForCancel(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	fired := false
	cancel := w.WatchFor(Query{Subject: e.subject("Maria"), Object: e.role("BigISP.member")},
		func(*core.Proof) { fired = true })
	cancel()
	cancel() // idempotent
	if err := w.Publish(e.deleg("[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled watch fired")
	}
}

func TestQueryDirectionStats(t *testing.T) {
	e := newEnv(t, "A", "M")
	w := e.wallet(Config{})
	if err := w.Publish(e.deleg("[M -> A.x] A")); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(e.deleg("[A.x -> A.y] A")); err != nil {
		t.Fatal(err)
	}
	var st graph.Stats
	if _, err := w.QueryDirect(Query{
		Subject:   e.subject("M"),
		Object:    e.role("A.y"),
		Direction: graph.Bidirectional,
		Stats:     &st,
	}); err != nil {
		t.Fatal(err)
	}
	if st.EdgesExplored == 0 {
		t.Fatal("stats not accumulated")
	}
}

func TestFigure1WalletStructure(t *testing.T) {
	// Figure 1: a wallet holding two delegations that support a trust
	// relationship between A and C.c: [A -> B.b] B and [B.b -> C.c] C.
	e := newEnv(t, "A", "B", "C")
	w := e.wallet(Config{})
	if err := w.Publish(e.deleg("[A -> B.b] B")); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(e.deleg("[B.b -> C.c] C")); err != nil {
		t.Fatal(err)
	}

	// Direct query: A => C.c.
	p, err := w.QueryDirect(Query{Subject: e.subject("A"), Object: e.role("C.c")})
	if err != nil {
		t.Fatalf("direct query: %v", err)
	}
	if p.Len() != 2 {
		t.Fatalf("proof length = %d", p.Len())
	}
	// Subject query: A => *.
	if got := len(w.QuerySubject(e.subject("A"), nil)); got != 2 {
		t.Fatalf("subject query = %d proofs", got)
	}
	// Object query: * => C.c.
	if got := len(w.QueryObject(e.role("C.c"), nil)); got != 2 {
		t.Fatalf("object query = %d proofs", got)
	}
	// Proof monitor with callback (Figure 1's monitor interface).
	var events []MonitorEvent
	mon, err := w.Monitor(Query{Subject: e.subject("A"), Object: e.role("C.c")},
		func(ev MonitorEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if !mon.Valid() || mon.Proof() == nil {
		t.Fatal("fresh monitor should be valid")
	}
}

// Concurrent publishers, queriers, revokers, and monitors must not race or
// deadlock (run with -race).
func TestConcurrentWalletOperations(t *testing.T) {
	e := newEnv(t, "Org", "User")
	w := e.wallet(Config{Clock: clock.System{}})
	org := e.id("Org")
	user := e.id("User")
	userEnt := user.Entity()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				d, err := core.Issue(org, core.Template{
					Subject:       core.SubjectEntity(user.ID()),
					SubjectEntity: &userEnt,
					Object:        core.NewRole(org.ID(), fmt.Sprintf("w%d", i)),
				}, time.Now())
				if err != nil {
					errs <- err
					return
				}
				if err := w.Publish(d); err != nil {
					errs <- err
					return
				}
				if j%3 == 0 {
					if err := w.Revoke(d.ID(), org.ID()); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				_, _ = w.QueryDirect(Query{
					Subject: core.SubjectEntity(user.ID()),
					Object:  core.NewRole(org.ID(), fmt.Sprintf("w%d", i)),
				})
				_ = w.QuerySubject(core.SubjectEntity(user.ID()), nil)
				w.SweepExpired()
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				mon, err := w.Monitor(Query{
					Subject: core.SubjectEntity(user.ID()),
					Object:  core.NewRole(org.ID(), fmt.Sprintf("w%d", i)),
				}, func(MonitorEvent) {})
				if err == nil {
					mon.Close()
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConfigMaxDepthBoundsProofs(t *testing.T) {
	e := newEnv(t, "Org", "User")
	w := e.wallet(Config{MaxDepth: 2})
	if err := w.Publish(e.deleg("[User -> Org.a] Org")); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(e.deleg("[Org.a -> Org.b] Org")); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(e.deleg("[Org.b -> Org.c] Org")); err != nil {
		t.Fatal(err)
	}
	// Two hops fit; three exceed the configured bound.
	if _, err := w.QueryDirect(Query{Subject: e.subject("User"), Object: e.role("Org.b")}); err != nil {
		t.Fatalf("two-hop proof within MaxDepth: %v", err)
	}
	if _, err := w.QueryDirect(Query{Subject: e.subject("User"), Object: e.role("Org.c")}); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("three-hop proof should exceed MaxDepth=2: %v", err)
	}
}

func TestConfigMaxProofsBoundsEnumeration(t *testing.T) {
	e := newEnv(t, "Org", "User")
	w := e.wallet(Config{MaxProofs: 3})
	for i := 0; i < 10; i++ {
		if err := w.Publish(e.deleg(fmt.Sprintf("[User -> Org.r%d] Org", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(w.QuerySubject(e.subject("User"), nil)); got != 3 {
		t.Fatalf("QuerySubject returned %d proofs, want MaxProofs=3", got)
	}
}
