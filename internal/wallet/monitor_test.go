package wallet

import (
	"testing"
	"time"

	"drbac/internal/core"
)

func TestMonitorInvalidatedOnRevocation(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	w := e.wallet(Config{})
	_, _, d3 := e.publishTable1(w)

	var events []MonitorEvent
	mon, err := w.Monitor(Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
	}, func(ev MonitorEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	if err := w.Revoke(d3.ID(), e.id("Mark").ID()); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != MonitorInvalidated {
		t.Fatalf("events = %v", events)
	}
	if mon.Valid() || mon.Proof() != nil {
		t.Fatal("monitor should be invalid after revocation")
	}
}

func TestMonitorReprovesThroughAlternatePath(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	// Two independent single-edge proofs for the same relationship.
	dA := e.deleg("[Maria -> BigISP.member] BigISP")
	dB := e.deleg("[Maria -> BigISP.member] BigISP") // distinct nonce
	if err := w.Publish(dA); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(dB); err != nil {
		t.Fatal(err)
	}

	var events []MonitorEvent
	mon, err := w.Monitor(Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
	}, func(ev MonitorEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	first := mon.Proof().Steps[0].Delegation.ID()
	if err := w.Revoke(first, e.id("BigISP").ID()); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != MonitorReproved {
		t.Fatalf("events = %v", events)
	}
	if !mon.Valid() {
		t.Fatal("monitor should remain valid through alternate proof")
	}
	second := mon.Proof().Steps[0].Delegation.ID()
	if second == first {
		t.Fatal("replacement proof reuses revoked delegation")
	}

	// Revoking the replacement exhausts alternatives.
	if err := w.Revoke(second, e.id("BigISP").ID()); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Kind != MonitorInvalidated {
		t.Fatalf("events = %v", events)
	}
	if mon.Valid() {
		t.Fatal("monitor should be invalid after both revocations")
	}
}

func TestMonitorWatchesSupportProofDelegations(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	w := e.wallet(Config{})
	d1, _, _ := e.publishTable1(w)

	var events []MonitorEvent
	mon, err := w.Monitor(Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
	}, func(ev MonitorEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	// Revoke delegation (1), which lives only inside the support proof for
	// (3): the monitor must notice because the support chain is part of the
	// proof's validity (§4.2.2).
	if err := w.Revoke(d1.ID(), e.id("BigISP").ID()); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != MonitorInvalidated {
		t.Fatalf("events = %v", events)
	}
}

func TestMonitorClosedReceivesNothing(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	fired := 0
	mon, err := w.Monitor(Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
	}, func(MonitorEvent) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	mon.Close()
	mon.Close() // idempotent
	if err := w.Revoke(d.ID(), e.id("BigISP").ID()); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("closed monitor fired %d times", fired)
	}
}

func TestMonitorExpiryViaSweep(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	d := e.deleg("[Maria -> BigISP.member] BigISP <expiry:2026-07-06T12:30:00Z>")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	var events []MonitorEvent
	mon, err := w.Monitor(Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
	}, func(ev MonitorEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	e.clk.Advance(time.Hour)
	if n := w.SweepExpired(); n != 1 {
		t.Fatalf("sweep removed %d", n)
	}
	if len(events) != 1 || events[0].Kind != MonitorInvalidated {
		t.Fatalf("events = %v", events)
	}
}

func TestMonitorNoProofAtStart(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	if _, err := w.Monitor(Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
	}, nil); err == nil {
		t.Fatal("monitor without a proof should fail")
	}
}

func TestMonitorProofValidatesInput(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	w := e.wallet(Config{})
	d3 := e.deleg("[Maria -> BigISP.member] Mark") // no support published
	p, err := core.NewProof(core.ProofStep{Delegation: d3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.MonitorProof(Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
	}, p, nil); err == nil {
		t.Fatal("MonitorProof must validate the supplied proof")
	}
}

func TestMonitorEventKindString(t *testing.T) {
	if MonitorReproved.String() != "reproved" || MonitorInvalidated.String() != "invalidated" {
		t.Fatal("kind strings wrong")
	}
	if MonitorEventKind(0).String() != "unknown" {
		t.Fatal("unknown kind string wrong")
	}
}
