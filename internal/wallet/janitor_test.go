package wallet

import (
	"testing"
	"time"

	"drbac/internal/subs"
)

func TestJanitorSweepsOnTicks(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := e.wallet(Config{})
	d := e.deleg("[Maria -> BigISP.member] BigISP <expiry:2026-07-06T12:30:00Z>")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}

	expired := make(chan struct{}, 1)
	cancel := w.Subscribe(d.ID(), func(ev subs.Event) {
		if ev.Kind == subs.Expired {
			expired <- struct{}{}
		}
	})
	defer cancel()

	stop := w.StartJanitor(10 * time.Second)
	defer stop()

	// Let the delegation expire, then tick the janitor by advancing the
	// fake clock past its interval. Advancing fires the pending timer; the
	// goroutine then sweeps asynchronously, so wait on the event.
	e.clk.Advance(time.Hour)
	select {
	case <-expired:
	case <-time.After(2 * time.Second):
		// The goroutine may have been between ticks when we advanced;
		// nudge once more.
		e.clk.Advance(time.Hour)
		select {
		case <-expired:
		case <-time.After(2 * time.Second):
			t.Fatal("janitor never swept the expired delegation")
		}
	}
	if w.Contains(d.ID()) {
		t.Fatal("expired delegation still stored")
	}
}

func TestJanitorStopIdempotent(t *testing.T) {
	e := newEnv(t, "BigISP")
	w := e.wallet(Config{})
	stop := w.StartJanitor(time.Second)
	stopped := make(chan struct{})
	go func() {
		stop()
		stop()
		close(stopped)
	}()
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("stop did not return")
	}
}
