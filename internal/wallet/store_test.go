package wallet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"drbac/internal/core"
)

func TestMemStoreBasics(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	s := NewMemStore()
	d := e.deleg("[Maria -> BigISP.member] BigISP")

	if err := s.PutDelegation(1, d, nil); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Bundles()); got != 1 {
		t.Fatalf("bundles = %d, want 1", got)
	}
	added, err := s.AddRevocation(2, d.ID(), time.Now())
	if err != nil || !added {
		t.Fatalf("AddRevocation = (%v, %v), want (true, nil)", added, err)
	}
	if added, _ := s.AddRevocation(3, d.ID(), time.Now()); added {
		t.Fatal("second AddRevocation reported added")
	}
	if !s.IsRevoked(d.ID()) {
		t.Fatal("IsRevoked = false after AddRevocation")
	}
	if got := s.RevokedIDs(); len(got) != 1 || got[0] != d.ID() {
		t.Fatalf("RevokedIDs = %v", got)
	}
	if err := s.DeleteDelegation(2, d.ID()); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Bundles()); got != 0 {
		t.Fatalf("bundles after delete = %d, want 0", got)
	}
	if got := s.Seq(); got != 2 {
		t.Fatalf("Seq = %d, want the high-water mark 2", got)
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	path := filepath.Join(t.TempDir(), "wallet.json")

	s1, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	keep := e.deleg("[Maria -> BigISP.member] BigISP")
	gone := e.deleg("[Mark -> BigISP.memberServices] BigISP")
	if err := s1.PutDelegation(1, keep, nil); err != nil {
		t.Fatal(err)
	}
	if err := s1.PutDelegation(2, gone, nil); err != nil {
		t.Fatal(err)
	}
	revokedAt := time.Now().Add(-time.Hour).Truncate(time.Second)
	if added, err := s1.AddRevocation(3, gone.ID(), revokedAt); err != nil || !added {
		t.Fatalf("AddRevocation = (%v, %v)", added, err)
	}
	if err := s1.DeleteDelegation(3, gone.ID()); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	bundles := s2.Bundles()
	if len(bundles) != 1 || bundles[0].Delegation.ID() != keep.ID() {
		t.Fatalf("reopened bundles = %v", bundles)
	}
	if !s2.IsRevoked(gone.ID()) {
		t.Fatal("revocation not persisted")
	}
	revs := s2.Revocations()
	if len(revs) != 1 || !revs[0].At.Equal(revokedAt) {
		t.Fatalf("reopened revocations = %+v, want instant %v preserved", revs, revokedAt)
	}
	if got := s2.Seq(); got != 3 {
		t.Fatalf("reopened Seq = %d, want 3", got)
	}
	if s2.Path() != path {
		t.Fatalf("Path = %q", s2.Path())
	}
}

// TestFileStoreFormatIsKeyfileCompatible pins the on-disk shape to the
// legacy keyfile wallet-state format: bundles + revoked at the top level.
func TestFileStoreFormatIsKeyfileCompatible(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	path := filepath.Join(t.TempDir(), "wallet.json")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := s.PutDelegation(1, d, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddRevocation(2, "deadbeef", time.Now()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var shape struct {
		Bundles []json.RawMessage   `json:"bundles"`
		Revoked []core.DelegationID `json:"revoked"`
	}
	if err := json.Unmarshal(raw, &shape); err != nil {
		t.Fatal(err)
	}
	if len(shape.Bundles) != 1 || len(shape.Revoked) != 1 {
		t.Fatalf("state shape: %d bundles, %d revoked", len(shape.Bundles), len(shape.Revoked))
	}
}

// TestFileStoreLegacyRevokedRestampOnce covers files written before
// revocation instants were persisted: loading restamps them with load time
// (the best available), and the first rewrite persists those stamps so they
// stop drifting across subsequent reopens.
func TestFileStoreLegacyRevokedRestampOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wallet.json")
	legacy := `{"bundles":[],"revoked":["deadbeef"]}` + "\n"
	if err := os.WriteFile(path, []byte(legacy), 0o600); err != nil {
		t.Fatal(err)
	}
	before := time.Now()
	s1, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	revs := s1.Revocations()
	if len(revs) != 1 || revs[0].ID != "deadbeef" {
		t.Fatalf("legacy revocations = %+v", revs)
	}
	if revs[0].At.Before(before) {
		t.Fatalf("legacy restamp %v predates load at %v", revs[0].At, before)
	}
	stamped := revs[0].At
	// Any mutation rewrites the file with the instants included.
	if _, err := s1.AddRevocation(1, "cafef00d", time.Now()); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s2.Revocations() {
		if r.ID == "deadbeef" && !r.At.Equal(stamped) {
			t.Fatalf("restamp drifted across reopen: %v != %v", r.At, stamped)
		}
	}
}

// TestWalletOnFileStoreRestart drives the store through the wallet API and
// rebuilds a second wallet on the same file: stored chains must re-prove
// and revocations must survive.
func TestWalletOnFileStoreRestart(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	path := filepath.Join(t.TempDir(), "wallet.json")
	st1, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	w1 := e.wallet(Config{Store: st1})
	_, _, d3 := e.publishTable1(w1)
	doomed := e.deleg("[Maria -> BigISP.memberServices] BigISP")
	if err := w1.Publish(doomed); err != nil {
		t.Fatal(err)
	}
	if err := w1.Revoke(doomed.ID(), e.id("BigISP").ID()); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	w2 := e.wallet(Config{Store: st2})
	if w2.Len() != 3 {
		t.Fatalf("restarted wallet holds %d delegations, want 3", w2.Len())
	}
	// The third-party delegation Maria ⇒ member needs d3 plus its stored
	// support chain.
	p, err := w2.QueryDirect(Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
	})
	if err != nil {
		t.Fatalf("restarted wallet cannot re-prove: %v", err)
	}
	uses := false
	for _, d := range p.Delegations() {
		if d.ID() == d3.ID() {
			uses = true
		}
	}
	if !uses {
		t.Fatal("restarted proof does not use the stored delegation")
	}
	if !w2.IsRevoked(doomed.ID()) {
		t.Fatal("revocation lost across restart")
	}
	if err := w2.Publish(doomed); err == nil {
		t.Fatal("restarted wallet accepted a revoked delegation")
	}
}

// TestFileStoreCrashRecovery models a persist that died between writing the
// temp file and renaming it into place: the leftover .tmp — whether
// truncated garbage or a complete newer state — was never acknowledged to
// any caller, so reopening must discard it and load the canonical file.
func TestFileStoreCrashRecovery(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	path := filepath.Join(t.TempDir(), "wallet.json")

	s1, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	keep := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := s1.PutDelegation(1, keep, nil); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		tmp  []byte
	}{
		{"truncated garbage", []byte(`{"bundles":[{"deleg`)},
		{"complete unacknowledged state", []byte(`{"bundles":[],"revoked":[]}` + "\n")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path+".tmp", tc.tmp, 0o600); err != nil {
				t.Fatal(err)
			}
			s2, err := OpenFileStore(path)
			if err != nil {
				t.Fatalf("reopen with leftover tmp: %v", err)
			}
			bundles := s2.Bundles()
			if len(bundles) != 1 || bundles[0].Delegation.ID() != keep.ID() {
				t.Fatalf("recovered bundles = %v, want the canonical state", bundles)
			}
			if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
				t.Fatalf("stale tmp survived reopen: stat err = %v", err)
			}
			// The recovered store keeps persisting normally.
			if err := s2.DeleteDelegation(2, keep.ID()); err != nil {
				t.Fatal(err)
			}
			if err := s2.PutDelegation(3, keep, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFileStoreTmpWithoutCanonical covers a crash during the very first
// persist: only a .tmp exists. Nothing was ever acknowledged, so the store
// opens empty.
func TestFileStoreTmpWithoutCanonical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wallet.json")
	if err := os.WriteFile(path+".tmp", []byte(`{"bund`), 0o600); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Bundles()); got != 0 {
		t.Fatalf("bundles = %d, want 0", got)
	}
}

// BenchmarkFileStoreWriteAmplification measures the cost of the full-state
// rewrite each mutation performs, at several resident-state sizes: persist
// work is O(total state), not O(change), which EXPERIMENTS.md records as the
// price of the crash-safe single-file format (EXP-R1).
func BenchmarkFileStoreWriteAmplification(b *testing.B) {
	for _, size := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("resident=%d", size), func(b *testing.B) {
			e := newBenchEnv(b, "BigISP", "Maria")
			path := filepath.Join(b.TempDir(), "wallet.json")
			s, err := OpenFileStore(path)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < size; i++ {
				d := e.deleg(fmt.Sprintf("[Maria -> BigISP.r%d] BigISP", i))
				if err := s.PutDelegation(uint64(i+1), d, nil); err != nil {
					b.Fatal(err)
				}
			}
			extra := e.deleg("[Maria -> BigISP.bench] BigISP")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One mutation = one full-state fsynced rewrite.
				if err := s.PutDelegation(uint64(size+i+1), extra, nil); err != nil {
					b.Fatal(err)
				}
			}
			fi, err := os.Stat(path)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(fi.Size())
		})
	}
}

// benchEnv is the benchmark twin of env (testing.B instead of testing.T).
type benchEnv struct {
	b   *testing.B
	ids map[string]*core.Identity
	dir *core.MemDirectory
}

func newBenchEnv(b *testing.B, names ...string) *benchEnv {
	b.Helper()
	e := &benchEnv{b: b, ids: make(map[string]*core.Identity), dir: core.NewDirectory()}
	for i, name := range names {
		seed := make([]byte, 32)
		seed[0] = byte(i + 1)
		copy(seed[1:], name)
		id, err := core.IdentityFromSeed(name, seed)
		if err != nil {
			b.Fatalf("identity %s: %v", name, err)
		}
		e.ids[name] = id
		e.dir.Add(id.Entity())
	}
	return e
}

func (e *benchEnv) deleg(text string) *core.Delegation {
	e.b.Helper()
	parsed, err := core.ParseDelegation(text, e.dir)
	if err != nil {
		e.b.Fatalf("parse %q: %v", text, err)
	}
	var issuer *core.Identity
	for _, id := range e.ids {
		if id.ID() == parsed.Issuer.ID() {
			issuer = id
		}
	}
	if issuer == nil {
		e.b.Fatalf("no identity for issuer of %q", text)
	}
	d, err := core.Issue(issuer, parsed.Template, testStart)
	if err != nil {
		e.b.Fatalf("issue %q: %v", text, err)
	}
	return d
}
