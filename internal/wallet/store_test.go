package wallet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"drbac/internal/core"
)

func TestMemStoreBasics(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	s := NewMemStore()
	d := e.deleg("[Maria -> BigISP.member] BigISP")

	if err := s.PutDelegation(d, nil); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Bundles()); got != 1 {
		t.Fatalf("bundles = %d, want 1", got)
	}
	added, err := s.AddRevocation(d.ID(), time.Now())
	if err != nil || !added {
		t.Fatalf("AddRevocation = (%v, %v), want (true, nil)", added, err)
	}
	if added, _ := s.AddRevocation(d.ID(), time.Now()); added {
		t.Fatal("second AddRevocation reported added")
	}
	if !s.IsRevoked(d.ID()) {
		t.Fatal("IsRevoked = false after AddRevocation")
	}
	if got := s.RevokedIDs(); len(got) != 1 || got[0] != d.ID() {
		t.Fatalf("RevokedIDs = %v", got)
	}
	if err := s.DeleteDelegation(d.ID()); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Bundles()); got != 0 {
		t.Fatalf("bundles after delete = %d, want 0", got)
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	path := filepath.Join(t.TempDir(), "wallet.json")

	s1, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	keep := e.deleg("[Maria -> BigISP.member] BigISP")
	gone := e.deleg("[Mark -> BigISP.memberServices] BigISP")
	if err := s1.PutDelegation(keep, nil); err != nil {
		t.Fatal(err)
	}
	if err := s1.PutDelegation(gone, nil); err != nil {
		t.Fatal(err)
	}
	if added, err := s1.AddRevocation(gone.ID(), time.Now()); err != nil || !added {
		t.Fatalf("AddRevocation = (%v, %v)", added, err)
	}
	if err := s1.DeleteDelegation(gone.ID()); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	bundles := s2.Bundles()
	if len(bundles) != 1 || bundles[0].Delegation.ID() != keep.ID() {
		t.Fatalf("reopened bundles = %v", bundles)
	}
	if !s2.IsRevoked(gone.ID()) {
		t.Fatal("revocation not persisted")
	}
	if s2.Path() != path {
		t.Fatalf("Path = %q", s2.Path())
	}
}

// TestFileStoreFormatIsKeyfileCompatible pins the on-disk shape to the
// legacy keyfile wallet-state format: bundles + revoked at the top level.
func TestFileStoreFormatIsKeyfileCompatible(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	path := filepath.Join(t.TempDir(), "wallet.json")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := s.PutDelegation(d, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddRevocation("deadbeef", time.Now()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var shape struct {
		Bundles []json.RawMessage   `json:"bundles"`
		Revoked []core.DelegationID `json:"revoked"`
	}
	if err := json.Unmarshal(raw, &shape); err != nil {
		t.Fatal(err)
	}
	if len(shape.Bundles) != 1 || len(shape.Revoked) != 1 {
		t.Fatalf("state shape: %d bundles, %d revoked", len(shape.Bundles), len(shape.Revoked))
	}
}

// TestWalletOnFileStoreRestart drives the store through the wallet API and
// rebuilds a second wallet on the same file: stored chains must re-prove
// and revocations must survive.
func TestWalletOnFileStoreRestart(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	path := filepath.Join(t.TempDir(), "wallet.json")
	st1, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	w1 := e.wallet(Config{Store: st1})
	_, _, d3 := e.publishTable1(w1)
	doomed := e.deleg("[Maria -> BigISP.memberServices] BigISP")
	if err := w1.Publish(doomed); err != nil {
		t.Fatal(err)
	}
	if err := w1.Revoke(doomed.ID(), e.id("BigISP").ID()); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	w2 := e.wallet(Config{Store: st2})
	if w2.Len() != 3 {
		t.Fatalf("restarted wallet holds %d delegations, want 3", w2.Len())
	}
	// The third-party delegation Maria ⇒ member needs d3 plus its stored
	// support chain.
	p, err := w2.QueryDirect(Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
	})
	if err != nil {
		t.Fatalf("restarted wallet cannot re-prove: %v", err)
	}
	uses := false
	for _, d := range p.Delegations() {
		if d.ID() == d3.ID() {
			uses = true
		}
	}
	if !uses {
		t.Fatal("restarted proof does not use the stored delegation")
	}
	if !w2.IsRevoked(doomed.ID()) {
		t.Fatal("revocation lost across restart")
	}
	if err := w2.Publish(doomed); err == nil {
		t.Fatal("restarted wallet accepted a revoked delegation")
	}
}
