package wallet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"drbac/internal/core"
)

// StoredBundle pairs a delegation with the support proofs it was published
// with, the unit of durable wallet state.
type StoredBundle struct {
	Delegation *core.Delegation `json:"delegation"`
	Support    []*core.Proof    `json:"support,omitempty"`
}

// Revocation records that a delegation was revoked and when. The instant is
// the wallet's clock reading at revocation time and is persisted by durable
// stores, so a restarted wallet reports true revocation times instead of
// restamping them at load.
type Revocation struct {
	ID core.DelegationID `json:"id"`
	At time.Time         `json:"at"`
}

// Store is the wallet's system of record: delegations with their support
// proofs plus the set of observed revocations. The graph index and the
// proof cache are derived views rebuilt from a Store at construction.
//
// Every mutation carries the wallet changelog sequence number it was
// accepted under (the wallet stamps seq under its mutation lock and threads
// it into the store write), so an append-only store can frame each record
// with its seq and a reopened store can report the durable high-water mark
// through Seq. One logical mutation may issue more than one store call with
// the same seq (a revocation records the tombstone and then deletes the
// bundle); seqs are therefore non-decreasing, not strictly increasing,
// across store writes.
//
// Implementations must be safe for concurrent use. Read methods do not
// return errors because every implementation answers them from memory;
// write methods report persistence failures.
type Store interface {
	// PutDelegation durably records d and its support proofs under seq.
	// Re-putting an existing delegation overwrites its support set.
	PutDelegation(seq uint64, d *core.Delegation, support []*core.Proof) error
	// DeleteDelegation removes a delegation from the durable set under seq.
	DeleteDelegation(seq uint64, id core.DelegationID) error
	// AddRevocation durably records id as revoked at the given instant under
	// seq, reporting whether the revocation is new. Revocations are
	// permanent.
	AddRevocation(seq uint64, id core.DelegationID, at time.Time) (added bool, err error)
	// IsRevoked reports whether a revocation has been recorded for id.
	IsRevoked(id core.DelegationID) bool
	// RevokedIDs lists every revoked delegation ID in unspecified order.
	RevokedIDs() []core.DelegationID
	// Revocations lists every recorded revocation with its instant, in
	// unspecified order.
	Revocations() []Revocation
	// Bundles lists every stored delegation for index replay.
	Bundles() []StoredBundle
	// Seq returns the highest mutation seq the store has recorded, 0 for a
	// fresh store. A wallet built on the store resumes its changelog from
	// this mark, so sequence numbers stay monotone across restarts of a
	// durably backed wallet.
	Seq() uint64
}

// SegmentData is one log-store segment as shipped to a bootstrapping
// replica: the raw record frames of a sealed segment file, or the valid
// prefix of the active segment.
type SegmentData struct {
	// Name is the segment's file name (diagnostic only).
	Name string
	// Sealed reports whether the segment is immutable on the source.
	Sealed bool
	// Data holds length-prefixed, CRC-framed records (see internal/logstore).
	Data []byte
}

// SegmentSnapshot is a consistent copy of a segmented store's record log,
// the payload of the syncSegments wire response.
type SegmentSnapshot struct {
	// Seq is the store's record high-water mark at capture.
	Seq uint64
	// Segments holds the shipped segments in replay order.
	Segments []SegmentData
}

// SegmentStore is implemented by stores that can ship their durable state
// as raw log segments, letting replicas bootstrap by replaying record
// frames instead of decoding a monolithic snapshot (O(delta) catch-up).
type SegmentStore interface {
	Store
	// SnapshotSegments captures every segment holding records with seq
	// greater than afterSeq, consistent with respect to concurrent
	// mutations. afterSeq 0 captures the full log.
	SnapshotSegments(afterSeq uint64) (SegmentSnapshot, error)
}

// MemStore is the default in-memory Store. Reads take a shared lock so the
// hot revocation-check path never serializes behind other readers.
type MemStore struct {
	mu      sync.RWMutex
	seq     uint64
	bundles map[core.DelegationID]StoredBundle
	revoked map[core.DelegationID]time.Time
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		bundles: make(map[core.DelegationID]StoredBundle),
		revoked: make(map[core.DelegationID]time.Time),
	}
}

// PutDelegation implements Store.
func (s *MemStore) PutDelegation(seq uint64, d *core.Delegation, support []*core.Proof) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bundles[d.ID()] = StoredBundle{Delegation: d, Support: support}
	s.noteSeqLocked(seq)
	return nil
}

// DeleteDelegation implements Store.
func (s *MemStore) DeleteDelegation(seq uint64, id core.DelegationID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.bundles, id)
	s.noteSeqLocked(seq)
	return nil
}

// AddRevocation implements Store.
func (s *MemStore) AddRevocation(seq uint64, id core.DelegationID, at time.Time) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.revoked[id]; ok {
		return false, nil
	}
	s.revoked[id] = at
	s.noteSeqLocked(seq)
	return true, nil
}

// IsRevoked implements Store.
func (s *MemStore) IsRevoked(id core.DelegationID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.revoked[id]
	return ok
}

// RevokedIDs implements Store.
func (s *MemStore) RevokedIDs() []core.DelegationID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]core.DelegationID, 0, len(s.revoked))
	for id := range s.revoked {
		out = append(out, id)
	}
	return out
}

// Revocations implements Store.
func (s *MemStore) Revocations() []Revocation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Revocation, 0, len(s.revoked))
	for id, at := range s.revoked {
		out = append(out, Revocation{ID: id, At: at})
	}
	return out
}

// Bundles implements Store.
func (s *MemStore) Bundles() []StoredBundle {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]StoredBundle, 0, len(s.bundles))
	for _, b := range s.bundles {
		out = append(out, b)
	}
	return out
}

// Seq implements Store.
func (s *MemStore) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// noteSeqLocked raises the store's high-water mark. Callers hold s.mu.
func (s *MemStore) noteSeqLocked(seq uint64) {
	if seq > s.seq {
		s.seq = seq
	}
}

// seed installs recovered state without seq bookkeeping side effects; the
// durable stores use it while replaying their on-disk form.
func (s *MemStore) seed(seq uint64, bundles []StoredBundle, revs []Revocation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range revs {
		s.revoked[r.ID] = r.At
	}
	for _, b := range bundles {
		if b.Delegation == nil {
			continue
		}
		s.bundles[b.Delegation.ID()] = b
	}
	s.noteSeqLocked(seq)
}

// fileState is the on-disk JSON form of a FileStore, an extension of the
// keyfile wallet-state format so existing -state files keep loading: the
// legacy bundles + revoked fields are still written, and newer files add
// the revocation instants and the changelog seq high-water mark. Cache TTLs
// are never persisted: cached copies must be re-confirmed from their home
// wallets after a restart (§4.2.1).
type fileState struct {
	Seq     uint64              `json:"seq,omitempty"`
	Bundles []StoredBundle      `json:"bundles"`
	Revoked []core.DelegationID `json:"revoked,omitempty"`
	// Revocations carries the revocation instants. Files written before
	// this field carry only Revoked; loading them restamps with load time,
	// the best available for legacy state.
	Revocations []Revocation `json:"revocations,omitempty"`
}

// FileStore is a Store backed by one JSON file. Every mutation rewrites the
// file atomically (write-to-temp, rename), so a daemon restarted from the
// same path serves the same proofs and keeps refusing revoked credentials
// without a separate save step.
type FileStore struct {
	mu   sync.Mutex
	path string
	mem  *MemStore
}

var _ Store = (*FileStore)(nil)

// OpenFileStore opens (or creates on first mutation) the store at path,
// loading any existing state. A leftover .tmp file from a persist that
// crashed before its rename is removed: its contents were never
// acknowledged to any caller, so the canonical file is authoritative even
// when the tmp is newer (or truncated garbage).
func OpenFileStore(path string) (*FileStore, error) {
	s := &FileStore{path: path, mem: NewMemStore()}
	if err := os.Remove(path + ".tmp"); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("wallet state %s: removing stale tmp: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	var state fileState
	if err := json.Unmarshal(data, &state); err != nil {
		return nil, fmt.Errorf("wallet state %s: %w", path, err)
	}
	revs := state.Revocations
	if len(revs) == 0 && len(state.Revoked) > 0 {
		// Legacy file without instants: restamp with load time, once; the
		// rewritten file persists these stamps so they stop drifting.
		now := time.Now()
		for _, id := range state.Revoked {
			revs = append(revs, Revocation{ID: id, At: now})
		}
	}
	s.mem.seed(state.Seq, state.Bundles, revs)
	return s, nil
}

// Path returns the backing file path.
func (s *FileStore) Path() string { return s.path }

// PutDelegation implements Store, persisting before the call returns.
func (s *FileStore) PutDelegation(seq uint64, d *core.Delegation, support []*core.Proof) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.mem.PutDelegation(seq, d, support)
	return s.persistLocked()
}

// DeleteDelegation implements Store, persisting before the call returns.
func (s *FileStore) DeleteDelegation(seq uint64, id core.DelegationID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.mem.DeleteDelegation(seq, id)
	return s.persistLocked()
}

// AddRevocation implements Store. The revocation takes effect in memory
// even when persistence fails, so the running wallet stays correct; only
// durability across a restart is at risk, which the error reports.
func (s *FileStore) AddRevocation(seq uint64, id core.DelegationID, at time.Time) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	added, _ := s.mem.AddRevocation(seq, id, at)
	if !added {
		return false, nil
	}
	return true, s.persistLocked()
}

// IsRevoked implements Store.
func (s *FileStore) IsRevoked(id core.DelegationID) bool { return s.mem.IsRevoked(id) }

// RevokedIDs implements Store.
func (s *FileStore) RevokedIDs() []core.DelegationID { return s.mem.RevokedIDs() }

// Revocations implements Store.
func (s *FileStore) Revocations() []Revocation { return s.mem.Revocations() }

// Bundles implements Store.
func (s *FileStore) Bundles() []StoredBundle { return s.mem.Bundles() }

// Seq implements Store.
func (s *FileStore) Seq() uint64 { return s.mem.Seq() }

// persistLocked writes the full state atomically. Callers hold s.mu.
func (s *FileStore) persistLocked() error {
	state := fileState{
		Seq:         s.mem.Seq(),
		Bundles:     s.mem.Bundles(),
		Revocations: s.mem.Revocations(),
	}
	// Deterministic order keeps the file diffable.
	sort.Slice(state.Bundles, func(i, j int) bool {
		return state.Bundles[i].Delegation.ID() < state.Bundles[j].Delegation.ID()
	})
	sort.Slice(state.Revocations, func(i, j int) bool { return state.Revocations[i].ID < state.Revocations[j].ID })
	// The legacy revoked list rides along so state files stay readable by
	// older binaries and by the keyfile wallet-state loader.
	state.Revoked = make([]core.DelegationID, 0, len(state.Revocations))
	for _, r := range state.Revocations {
		state.Revoked = append(state.Revoked, r.ID)
	}
	data, err := json.MarshalIndent(state, "", "  ")
	if err != nil {
		return err
	}
	tmp := s.path + ".tmp"
	if err := writeFileSync(tmp, append(data, '\n')); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return err
	}
	// The rename is atomic but not durable until the directory entry is
	// flushed: without this, a power loss can surface the old (or an empty)
	// state file even though the mutation was acknowledged. Filesystems that
	// cannot fsync a directory still got an fsynced temp file, which is the
	// best available on them.
	if err := SyncDir(filepath.Dir(s.path)); err != nil {
		return fmt.Errorf("wallet state %s: sync directory: %w", s.path, err)
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it before closing, so the
// bytes are on stable storage before the caller renames the file into
// place.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// SyncDir fsyncs a directory, making a just-renamed file's directory entry
// durable. Platforms that do not support fsync on directories report the
// failure as success after a best-effort attempt. Shared with the segmented
// log store, whose segment creates and compaction renames need the same
// durability step.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && !supportsDirSync(err) {
		return nil
	}
	return err
}

// supportsDirSync reports whether a directory-fsync error is a real I/O
// failure (true) rather than the platform refusing the operation (false).
func supportsDirSync(err error) bool {
	var pe *os.PathError
	if errors.As(err, &pe) {
		msg := pe.Err.Error()
		if msg == "invalid argument" || msg == "operation not supported" || msg == "not supported" {
			return false
		}
	}
	return true
}
