package wallet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"drbac/internal/core"
)

// StoredBundle pairs a delegation with the support proofs it was published
// with, the unit of durable wallet state.
type StoredBundle struct {
	Delegation *core.Delegation `json:"delegation"`
	Support    []*core.Proof    `json:"support,omitempty"`
}

// Store is the wallet's system of record: delegations with their support
// proofs plus the set of observed revocations. The graph index and the
// proof cache are derived views rebuilt from a Store at construction.
//
// Implementations must be safe for concurrent use. Read methods do not
// return errors because every implementation answers them from memory;
// write methods report persistence failures.
type Store interface {
	// PutDelegation durably records d and its support proofs. Re-putting an
	// existing delegation overwrites its support set.
	PutDelegation(d *core.Delegation, support []*core.Proof) error
	// DeleteDelegation removes a delegation from the durable set.
	DeleteDelegation(id core.DelegationID) error
	// AddRevocation durably records id as revoked at the given instant,
	// reporting whether the revocation is new. Revocations are permanent.
	AddRevocation(id core.DelegationID, at time.Time) (added bool, err error)
	// IsRevoked reports whether a revocation has been recorded for id.
	IsRevoked(id core.DelegationID) bool
	// RevokedIDs lists every revoked delegation ID in unspecified order.
	RevokedIDs() []core.DelegationID
	// Bundles lists every stored delegation for index replay.
	Bundles() []StoredBundle
}

// MemStore is the default in-memory Store. Reads take a shared lock so the
// hot revocation-check path never serializes behind other readers.
type MemStore struct {
	mu      sync.RWMutex
	bundles map[core.DelegationID]StoredBundle
	revoked map[core.DelegationID]time.Time
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		bundles: make(map[core.DelegationID]StoredBundle),
		revoked: make(map[core.DelegationID]time.Time),
	}
}

// PutDelegation implements Store.
func (s *MemStore) PutDelegation(d *core.Delegation, support []*core.Proof) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bundles[d.ID()] = StoredBundle{Delegation: d, Support: support}
	return nil
}

// DeleteDelegation implements Store.
func (s *MemStore) DeleteDelegation(id core.DelegationID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.bundles, id)
	return nil
}

// AddRevocation implements Store.
func (s *MemStore) AddRevocation(id core.DelegationID, at time.Time) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.revoked[id]; ok {
		return false, nil
	}
	s.revoked[id] = at
	return true, nil
}

// IsRevoked implements Store.
func (s *MemStore) IsRevoked(id core.DelegationID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.revoked[id]
	return ok
}

// RevokedIDs implements Store.
func (s *MemStore) RevokedIDs() []core.DelegationID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]core.DelegationID, 0, len(s.revoked))
	for id := range s.revoked {
		out = append(out, id)
	}
	return out
}

// Bundles implements Store.
func (s *MemStore) Bundles() []StoredBundle {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]StoredBundle, 0, len(s.bundles))
	for _, b := range s.bundles {
		out = append(out, b)
	}
	return out
}

// fileState is the on-disk JSON form of a FileStore, deliberately identical
// to the keyfile wallet-state format so existing -state files keep loading.
// Cache TTLs are never persisted: cached copies must be re-confirmed from
// their home wallets after a restart (§4.2.1).
type fileState struct {
	Bundles []StoredBundle      `json:"bundles"`
	Revoked []core.DelegationID `json:"revoked,omitempty"`
}

// FileStore is a Store backed by one JSON file. Every mutation rewrites the
// file atomically (write-to-temp, rename), so a daemon restarted from the
// same path serves the same proofs and keeps refusing revoked credentials
// without a separate save step.
type FileStore struct {
	mu   sync.Mutex
	path string
	mem  *MemStore
}

var _ Store = (*FileStore)(nil)

// OpenFileStore opens (or creates on first mutation) the store at path,
// loading any existing state. A leftover .tmp file from a persist that
// crashed before its rename is removed: its contents were never
// acknowledged to any caller, so the canonical file is authoritative even
// when the tmp is newer (or truncated garbage).
func OpenFileStore(path string) (*FileStore, error) {
	s := &FileStore{path: path, mem: NewMemStore()}
	if err := os.Remove(path + ".tmp"); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("wallet state %s: removing stale tmp: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	var state fileState
	if err := json.Unmarshal(data, &state); err != nil {
		return nil, fmt.Errorf("wallet state %s: %w", path, err)
	}
	now := time.Now()
	for _, id := range state.Revoked {
		_, _ = s.mem.AddRevocation(id, now)
	}
	for _, b := range state.Bundles {
		if b.Delegation == nil {
			continue
		}
		_ = s.mem.PutDelegation(b.Delegation, b.Support)
	}
	return s, nil
}

// Path returns the backing file path.
func (s *FileStore) Path() string { return s.path }

// PutDelegation implements Store, persisting before the call returns.
func (s *FileStore) PutDelegation(d *core.Delegation, support []*core.Proof) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.mem.PutDelegation(d, support)
	return s.persistLocked()
}

// DeleteDelegation implements Store, persisting before the call returns.
func (s *FileStore) DeleteDelegation(id core.DelegationID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.mem.DeleteDelegation(id)
	return s.persistLocked()
}

// AddRevocation implements Store. The revocation takes effect in memory
// even when persistence fails, so the running wallet stays correct; only
// durability across a restart is at risk, which the error reports.
func (s *FileStore) AddRevocation(id core.DelegationID, at time.Time) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	added, _ := s.mem.AddRevocation(id, at)
	if !added {
		return false, nil
	}
	return true, s.persistLocked()
}

// IsRevoked implements Store.
func (s *FileStore) IsRevoked(id core.DelegationID) bool { return s.mem.IsRevoked(id) }

// RevokedIDs implements Store.
func (s *FileStore) RevokedIDs() []core.DelegationID { return s.mem.RevokedIDs() }

// Bundles implements Store.
func (s *FileStore) Bundles() []StoredBundle { return s.mem.Bundles() }

// persistLocked writes the full state atomically. Callers hold s.mu.
func (s *FileStore) persistLocked() error {
	state := fileState{
		Bundles: s.mem.Bundles(),
		Revoked: s.mem.RevokedIDs(),
	}
	// Deterministic order keeps the file diffable.
	sort.Slice(state.Bundles, func(i, j int) bool {
		return state.Bundles[i].Delegation.ID() < state.Bundles[j].Delegation.ID()
	})
	sort.Slice(state.Revoked, func(i, j int) bool { return state.Revoked[i] < state.Revoked[j] })
	data, err := json.MarshalIndent(state, "", "  ")
	if err != nil {
		return err
	}
	tmp := s.path + ".tmp"
	if err := writeFileSync(tmp, append(data, '\n')); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return err
	}
	// The rename is atomic but not durable until the directory entry is
	// flushed: without this, a power loss can surface the old (or an empty)
	// state file even though the mutation was acknowledged. Filesystems that
	// cannot fsync a directory still got an fsynced temp file, which is the
	// best available on them.
	if err := syncDir(filepath.Dir(s.path)); err != nil {
		return fmt.Errorf("wallet state %s: sync directory: %w", s.path, err)
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it before closing, so the
// bytes are on stable storage before the caller renames the file into
// place.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory, making a just-renamed file's directory entry
// durable. Platforms that do not support fsync on directories report the
// failure as success after a best-effort attempt.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && !supportsDirSync(err) {
		return nil
	}
	return err
}

// supportsDirSync reports whether a directory-fsync error is a real I/O
// failure (true) rather than the platform refusing the operation (false).
func supportsDirSync(err error) bool {
	var pe *os.PathError
	if errors.As(err, &pe) {
		msg := pe.Err.Error()
		if msg == "invalid argument" || msg == "operation not supported" || msg == "not supported" {
			return false
		}
	}
	return true
}
