package wallet

import (
	"time"

	"drbac/internal/core"
	"drbac/internal/obs"
	"drbac/internal/subs"
)

// Service is the serving surface a wallet exposes to the network layer:
// everything remote.Server needs to answer the wire protocol. *Wallet
// satisfies it, and so does cluster.Wallet — the scatter-gather gateway
// that presents an N-shard cluster as one logical wallet — which is what
// lets the proxy, trace, and CLI layers run unchanged on top of either.
type Service interface {
	// Publish stores a delegation with its support proofs.
	Publish(d *core.Delegation, support ...*core.Proof) error
	// InsertCached stores a TTL-coherent cached copy (§4.2.1).
	InsertCached(d *core.Delegation, support []*core.Proof, ttl time.Duration) error
	// Revoke withdraws a delegation on behalf of the authenticated peer.
	Revoke(id core.DelegationID, by core.EntityID) error
	// QueryDirect searches for a proof chain (§4.1 direct query).
	QueryDirect(q Query) (*core.Proof, error)
	// QuerySubject lists the subject's direct grants.
	QuerySubject(subject core.Subject, constraints []core.Constraint) []*core.Proof
	// QueryObject lists the role's direct holders.
	QueryObject(object core.Role, constraints []core.Constraint) []*core.Proof
	// Subscribe watches one delegation's status (§4.2.2).
	Subscribe(id core.DelegationID, fn subs.Handler) (cancel func())
	// Contains reports whether the delegation is stored here.
	Contains(id core.DelegationID) bool
	// Owner is the wallet's operating identity (nil when anonymous).
	Owner() *core.Identity
	// Stats summarizes wallet state for the stats endpoint.
	Stats() Stats
	// Seq is the changelog sequence number (0 when not applicable).
	Seq() uint64
	// Obs is the wallet's observability bundle (never nil; may be inert).
	Obs() *obs.Obs
}

// Replicable is the optional capability of services that can bootstrap
// and feed follower replicas (§9): a consistent snapshot, the full
// changelog stream, and bundle read-back. remote.Server asserts it on
// sync / subscribe-all requests and refuses them when absent — a
// cluster gateway routes replication to its member shards instead of
// serving it itself.
type Replicable interface {
	Snapshot() Snapshot
	SubscribeAll(fn subs.Handler) (cancel func())
	Get(id core.DelegationID) (*core.Delegation, []*core.Proof, bool)
	Store() Store
}

var (
	_ Service    = (*Wallet)(nil)
	_ Replicable = (*Wallet)(nil)
)
