package wallet

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"drbac/internal/core"
)

// DefaultProofCacheLimit bounds the number of memoized answers (positive
// and negative combined) a ProofCache holds before it starts evicting.
const DefaultProofCacheLimit = 8192

// CacheStats is a point-in-time snapshot of proof-cache effectiveness.
type CacheStats struct {
	// Hits counts lookups answered from the cache.
	Hits int64
	// Misses counts lookups that fell through to a graph search.
	Misses int64
	// Invalidations counts entries dropped by status pushes (revocation,
	// expiry, TTL lapse) or by expiry checks on the hit path.
	Invalidations int64
	// Entries is the current number of memoized proofs.
	Entries int
	// Negatives is the current number of memoized no-proof answers.
	Negatives int
}

// ProofCache memoizes direct-query answers keyed by (subject, object,
// constraints) — the §6 "coherent caching of validation results" made
// concrete. Positive entries are indexed by every delegation their proof
// uses so a single status push invalidates exactly the answers it affects;
// negative entries are flushed wholesale whenever a new delegation is
// published. Both wallets and pull-through proxies embed one.
//
// Coherence is event-driven, not polled: the owner wires InvalidateDelegation
// and InvalidateNegatives to a subscription push channel (subs.Registry).
// As a second line of defense, Lookup re-checks expiry and revocation per
// step at the caller's clock, so an entry can never outlive the credentials
// it is built from even between pushes.
type ProofCache struct {
	mu    sync.RWMutex
	limit int
	pos   map[string]*core.Proof
	neg   map[string]struct{}
	// byDelegation maps each delegation to the positive keys whose proofs
	// use it.
	byDelegation map[core.DelegationID]map[string]struct{}

	hits, misses, invalidations int64
}

// NewProofCache returns an empty cache holding at most limit entries;
// limit <= 0 means DefaultProofCacheLimit.
func NewProofCache(limit int) *ProofCache {
	if limit <= 0 {
		limit = DefaultProofCacheLimit
	}
	return &ProofCache{
		limit:        limit,
		pos:          make(map[string]*core.Proof),
		neg:          make(map[string]struct{}),
		byDelegation: make(map[core.DelegationID]map[string]struct{}),
	}
}

// CacheKey derives the memoization key for a direct query. Constraints are
// order-normalized so semantically identical queries share an entry. The
// search direction is deliberately excluded: any valid proof answers the
// question regardless of the strategy that would have found it.
func CacheKey(subject core.Subject, object core.Role, constraints []core.Constraint) string {
	var b strings.Builder
	b.WriteString(string(subject.Entity))
	b.WriteByte(0x1f)
	writeRoleKey(&b, subject.Role)
	b.WriteByte(0x1f)
	writeRoleKey(&b, object)
	if len(constraints) > 0 {
		cs := make([]core.Constraint, len(constraints))
		copy(cs, constraints)
		sort.Slice(cs, func(i, j int) bool {
			a, z := cs[i], cs[j]
			if a.Attr.Namespace != z.Attr.Namespace {
				return a.Attr.Namespace < z.Attr.Namespace
			}
			if a.Attr.Name != z.Attr.Name {
				return a.Attr.Name < z.Attr.Name
			}
			if a.Base != z.Base {
				return a.Base < z.Base
			}
			return a.Minimum < z.Minimum
		})
		for _, c := range cs {
			b.WriteByte(0x1f)
			b.WriteString(string(c.Attr.Namespace))
			b.WriteByte('.')
			b.WriteString(c.Attr.Name)
			b.WriteByte(0x1f)
			b.WriteString(strconv.FormatFloat(c.Base, 'g', -1, 64))
			b.WriteByte(0x1f)
			b.WriteString(strconv.FormatFloat(c.Minimum, 'g', -1, 64))
		}
	}
	return b.String()
}

func writeRoleKey(b *strings.Builder, r core.Role) {
	b.WriteString(string(r.Namespace))
	b.WriteByte('.')
	b.WriteString(r.Name)
	b.WriteByte('\'')
	b.WriteString(strconv.Itoa(r.Tick))
	if r.Attr {
		b.WriteByte('a')
		b.WriteString(strconv.Itoa(int(r.Op)))
	}
}

// Lookup consults the cache. A positive hit returns (proof, false, true);
// a negative hit — the query is memoized as unprovable — returns
// (nil, true, true); a miss returns ok == false. Positive entries are
// re-checked against expiry and revocation at now before being served, and
// dropped (counted as invalidations) when the check fails.
func (c *ProofCache) Lookup(key string, now time.Time, revoked func(core.DelegationID) bool) (p *core.Proof, negative, ok bool) {
	c.mu.RLock()
	proof, pok := c.pos[key]
	_, nok := c.neg[key]
	c.mu.RUnlock()

	if pok {
		if proofUsable(proof, now, revoked) {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return proof, false, true
		}
		c.mu.Lock()
		if cur, still := c.pos[key]; still && cur == proof {
			c.removeKeyLocked(key)
			c.invalidations++
		}
		c.misses++
		c.mu.Unlock()
		return nil, false, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if nok {
		c.hits++
		return nil, true, true
	}
	c.misses++
	return nil, false, false
}

// proofUsable reports whether every delegation p depends on — chain steps
// and support-proof chains alike — is unexpired and unrevoked.
func proofUsable(p *core.Proof, now time.Time, revoked func(core.DelegationID) bool) bool {
	for _, d := range p.Delegations() {
		if d.Expired(now) {
			return false
		}
		if revoked != nil && revoked(d.ID()) {
			return false
		}
	}
	return true
}

// Put memoizes a validated proof under key.
func (c *ProofCache) Put(key string, p *core.Proof) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictLocked()
	if _, ok := c.pos[key]; ok {
		c.removeKeyLocked(key)
	}
	delete(c.neg, key)
	c.pos[key] = p
	for _, d := range p.Delegations() {
		id := d.ID()
		keys, ok := c.byDelegation[id]
		if !ok {
			keys = make(map[string]struct{})
			c.byDelegation[id] = keys
		}
		keys[key] = struct{}{}
	}
}

// PutNegative memoizes key as currently unprovable.
func (c *ProofCache) PutNegative(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pos[key]; ok {
		return
	}
	c.evictLocked()
	c.neg[key] = struct{}{}
}

// evictLocked makes room for one insertion by dropping arbitrary entries
// while the cache is at its limit. Map iteration order makes the victim
// pseudo-random, which is adequate for a memoization cache.
func (c *ProofCache) evictLocked() {
	for len(c.pos)+len(c.neg) >= c.limit {
		evicted := false
		for key := range c.neg {
			delete(c.neg, key)
			evicted = true
			break
		}
		if !evicted {
			for key := range c.pos {
				c.removeKeyLocked(key)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// removeKeyLocked drops one positive entry and unlinks it from the
// delegation index. Callers hold c.mu.
func (c *ProofCache) removeKeyLocked(key string) {
	p, ok := c.pos[key]
	if !ok {
		return
	}
	delete(c.pos, key)
	for _, d := range p.Delegations() {
		id := d.ID()
		if keys, ok := c.byDelegation[id]; ok {
			delete(keys, key)
			if len(keys) == 0 {
				delete(c.byDelegation, id)
			}
		}
	}
}

// InvalidateDelegation drops every memoized proof that uses id. Wired to
// Revoked, Expired, and Stale pushes.
func (c *ProofCache) InvalidateDelegation(id core.DelegationID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.byDelegation[id]
	for key := range keys {
		c.removeKeyLocked(key)
		c.invalidations++
	}
}

// InvalidateNegatives flushes every memoized no-proof answer. Wired to
// Published pushes: a new credential may make a previously unprovable
// query provable.
func (c *ProofCache) InvalidateNegatives() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.neg) == 0 {
		return
	}
	c.invalidations += int64(len(c.neg))
	c.neg = make(map[string]struct{})
}

// Flush empties the cache entirely, counting dropped entries as
// invalidations.
func (c *ProofCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidations += int64(len(c.pos) + len(c.neg))
	c.pos = make(map[string]*core.Proof)
	c.neg = make(map[string]struct{})
	c.byDelegation = make(map[core.DelegationID]map[string]struct{})
}

// Stats returns a snapshot of cache effectiveness counters.
func (c *ProofCache) Stats() CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Entries:       len(c.pos),
		Negatives:     len(c.neg),
	}
}
