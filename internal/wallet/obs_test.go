package wallet

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"testing"

	"drbac/internal/obs"
)

// TestWalletMetrics drives an instrumented wallet through the Table 1
// workload and checks the registry mirrors what happened: publications,
// queries, cache behaviour via gauges, search effort, and revocations.
func TestWalletMetrics(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	reg := obs.NewRegistry()
	w := e.wallet(Config{Obs: obs.New(nil, reg)})
	_, _, d3 := e.publishTable1(w)

	q := Query{Subject: e.subject("Maria"), Object: e.role("BigISP.member")}
	if _, err := w.QueryDirect(q); err != nil { // miss: graph search
		t.Fatal(err)
	}
	if _, err := w.QueryDirect(q); err != nil { // hit: proof cache
		t.Fatal(err)
	}
	w.QuerySubject(e.subject("Maria"), nil)
	w.QueryObject(e.role("BigISP.member"), nil)
	if err := w.Revoke(d3.ID(), e.id("Mark").ID()); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	wantCounters := map[string]int64{
		"drbac_wallet_publish_total":       3,
		"drbac_wallet_query_direct_total":  2,
		"drbac_wallet_query_subject_total": 1,
		"drbac_wallet_query_object_total":  1,
		"drbac_wallet_revocations_total":   1,
	}
	for name, want := range wantCounters {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if s.Counters["drbac_search_nodes_total"] == 0 || s.Counters["drbac_search_edges_total"] == 0 {
		t.Errorf("search effort not mirrored: nodes=%d edges=%d",
			s.Counters["drbac_search_nodes_total"], s.Counters["drbac_search_edges_total"])
	}
	// Revocation fires the wildcard subscription hook.
	if s.Counters["drbac_subs_events_total"] == 0 {
		t.Error("subscription events not counted")
	}
	// d3 revoked: two delegations remain; the cache saw one miss, one hit.
	if got := s.Gauges["drbac_wallet_delegations"]; got != 2 {
		t.Errorf("drbac_wallet_delegations = %d, want 2", got)
	}
	if got := s.Gauges["drbac_wallet_revoked"]; got != 1 {
		t.Errorf("drbac_wallet_revoked = %d, want 1", got)
	}
	if got := s.Gauges["drbac_wallet_cache_hits"]; got != 1 {
		t.Errorf("drbac_wallet_cache_hits = %d, want 1", got)
	}
	if s.Gauges["drbac_wallet_cache_misses"] == 0 {
		t.Error("cache misses gauge is zero")
	}
	h := s.Histograms["drbac_wallet_query_seconds"]
	if h.Count != 2 {
		t.Errorf("query latency observations = %d, want 2", h.Count)
	}
	if h.Sum <= 0 {
		t.Errorf("query latency sum = %v, want > 0", h.Sum)
	}
}

// TestWalletMetricsErrors checks the error counters move on rejected
// publications, failed revocations, and unprovable queries.
func TestWalletMetricsErrors(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	reg := obs.NewRegistry()
	w := e.wallet(Config{Obs: obs.New(nil, reg)})

	// Third-party delegation without support is rejected.
	bad := e.deleg("[Maria -> BigISP.member] Mark")
	if err := w.Publish(bad); err == nil {
		t.Fatal("unsupported third-party delegation accepted")
	}
	d1 := e.deleg("[Mark -> BigISP.memberServices] BigISP")
	if err := w.Publish(d1); err != nil {
		t.Fatal(err)
	}
	// Revocation by a non-issuer fails.
	if err := w.Revoke(d1.ID(), e.id("Maria").ID()); err == nil {
		t.Fatal("non-issuer revocation accepted")
	}
	if _, err := w.QueryDirect(Query{
		Subject: e.subject("Maria"), Object: e.role("BigISP.member'"),
	}); err == nil {
		t.Fatal("expected no proof")
	}

	s := reg.Snapshot()
	if got := s.Counters["drbac_wallet_publish_errors_total"]; got != 1 {
		t.Errorf("publish errors = %d, want 1", got)
	}
	if got := s.Counters["drbac_wallet_revoke_errors_total"]; got != 1 {
		t.Errorf("revoke errors = %d, want 1", got)
	}
	if got := s.Counters["drbac_wallet_query_noproof_total"]; got != 1 {
		t.Errorf("noproof queries = %d, want 1", got)
	}
}

// TestWalletQueryLogsTrace checks the wallet's debug record for a query
// carries the caller's trace ID — the local end of cross-wallet tracing.
func TestWalletQueryLogsTrace(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	var buf bytes.Buffer
	logger := obs.NewLogger(&buf, slog.LevelDebug, true)
	w := e.wallet(Config{Obs: obs.New(logger, nil)})
	e.publishTable1(w)

	q := Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
		TraceID: "cafe0123beef4567",
	}
	if _, err := w.QueryDirect(q); err != nil {
		t.Fatal(err)
	}

	found := false
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		if rec["msg"] == "wallet query" && rec["trace"] == q.TraceID {
			found = true
			if rec["found"] != true {
				t.Errorf("query record reports found=%v", rec["found"])
			}
		}
	}
	if !found {
		t.Fatalf("no wallet query record with trace %s in logs:\n%s", q.TraceID, buf.String())
	}
}

// TestUninstrumentedWalletStaysQuiet ensures a wallet without Obs works and
// registers nothing anywhere.
func TestUninstrumentedWalletStaysQuiet(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	w := e.wallet(Config{})
	e.publishTable1(w)
	if _, err := w.QueryDirect(Query{
		Subject: e.subject("Maria"), Object: e.role("BigISP.member"),
	}); err != nil {
		t.Fatal(err)
	}
	if w.Obs() != nil {
		t.Fatal("uninstrumented wallet reports an Obs")
	}
}
