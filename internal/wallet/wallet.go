// Package wallet implements the dRBAC credential repository (§4.1): a store
// of delegations supporting publication, direct/subject/object authorization
// queries answered with proofs, revocation, TTL-coherent caching of remote
// credentials, and continuous proof monitoring through delegation
// subscriptions.
package wallet

import (
	"fmt"
	"sync"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/graph"
	"drbac/internal/subs"
)

// Config parameterizes a wallet.
type Config struct {
	// Owner, if set, identifies the wallet's operating entity (used by the
	// remote layer for authentication). A wallet works unowned.
	Owner *core.Identity
	// Clock supplies time; nil means the system clock.
	Clock clock.Clock
	// StrictAttributes requires support proofs for attribute settings
	// outside the issuer's namespace (Table 2 semantics).
	StrictAttributes bool
	// Directory resolves names in error messages and rendered proofs.
	Directory core.Directory
	// MaxDepth bounds proof-chain length; 0 means graph.DefaultMaxDepth.
	MaxDepth int
	// MaxProofs bounds subject/object query results; 0 means
	// graph.DefaultMaxProofs.
	MaxProofs int
}

// Wallet is a concurrency-safe dRBAC credential repository.
type Wallet struct {
	cfg Config
	clk clock.Clock
	g   *graph.Graph
	reg *subs.Registry

	mu      sync.Mutex
	revoked map[core.DelegationID]time.Time
	// cache maps remotely sourced delegations to the instant their TTL
	// lapses without renewal (§4.2.1).
	cache   map[core.DelegationID]time.Time
	watches map[int]*watch
	nextID  int
}

// watch is a registered "call me when a proof appears" request (§4.2.2).
type watch struct {
	query Query
	fn    func(*core.Proof)
}

// New constructs an empty wallet.
func New(cfg Config) *Wallet {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System{}
	}
	return &Wallet{
		cfg:     cfg,
		clk:     clk,
		g:       graph.New(),
		reg:     subs.NewRegistry(),
		revoked: make(map[core.DelegationID]time.Time),
		cache:   make(map[core.DelegationID]time.Time),
		watches: make(map[int]*watch),
	}
}

// Owner returns the wallet's operating identity, which may be nil.
func (w *Wallet) Owner() *core.Identity { return w.cfg.Owner }

// Printer renders this wallet's credentials and proofs with entity names
// resolved through the configured directory.
func (w *Wallet) Printer() core.Printer { return core.Printer{Dir: w.cfg.Directory} }

// Clock returns the wallet's time source.
func (w *Wallet) Clock() clock.Clock { return w.clk }

// Now returns the wallet's current instant.
func (w *Wallet) Now() time.Time { return w.clk.Now() }

// Len returns the number of stored delegations.
func (w *Wallet) Len() int { return w.g.Len() }

// Delegations returns every stored delegation.
func (w *Wallet) Delegations() []*core.Delegation { return w.g.All() }

// Get returns a stored delegation and its support proofs.
func (w *Wallet) Get(id core.DelegationID) (*core.Delegation, []*core.Proof, bool) {
	return w.g.Get(id)
}

// Contains reports whether the wallet holds the delegation.
func (w *Wallet) Contains(id core.DelegationID) bool { return w.g.Contains(id) }

// RevokedIDs returns every delegation ID this wallet has seen revoked, in
// unspecified order. Persistence layers save these so a restored wallet
// keeps refusing revoked credentials.
func (w *Wallet) RevokedIDs() []core.DelegationID {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]core.DelegationID, 0, len(w.revoked))
	for id := range w.revoked {
		out = append(out, id)
	}
	return out
}

// IsRevoked reports whether the wallet has seen a revocation for id.
func (w *Wallet) IsRevoked(id core.DelegationID) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.revoked[id]
	return ok
}

// revokedFn returns a revocation predicate for proof validation.
func (w *Wallet) revokedFn() func(core.DelegationID) bool {
	return func(id core.DelegationID) bool { return w.IsRevoked(id) }
}

// Publish verifies and stores a delegation together with the support proofs
// its issuer must provide (§4.1): the object's right-of-assignment chain for
// third-party delegations and, under StrictAttributes, assignment rights for
// foreign attribute settings. Missing support is looked up in the wallet's
// own graph before the publication is rejected.
func (w *Wallet) Publish(d *core.Delegation, support ...*core.Proof) error {
	if d == nil {
		return fmt.Errorf("publish: nil delegation")
	}
	if err := d.Verify(); err != nil {
		return fmt.Errorf("publish: %w", err)
	}
	now := w.Now()
	if d.Expired(now) {
		return fmt.Errorf("publish: %w", &core.ExpiredError{ID: d.ID(), Expiry: d.Expiry, At: now})
	}
	if w.IsRevoked(d.ID()) {
		return fmt.Errorf("publish: %w", &core.RevokedError{ID: d.ID()})
	}

	vopts := core.ValidateOptions{
		At:               now,
		Revoked:          w.revokedFn(),
		StrictAttributes: w.cfg.StrictAttributes,
		MaxDepth:         w.cfg.MaxDepth,
	}
	used, err := w.resolveSupport(d, support, vopts)
	if err != nil {
		return fmt.Errorf("publish: %w", err)
	}
	w.g.Add(d, used)
	w.fireWatches()
	return nil
}

// resolveSupport finds and validates a support proof for every role the
// issuer must hold, drawing first on caller-provided proofs and then on the
// wallet's own graph.
func (w *Wallet) resolveSupport(d *core.Delegation, provided []*core.Proof, vopts core.ValidateOptions) ([]*core.Proof, error) {
	need := d.RequiredSupport(w.cfg.StrictAttributes)
	if len(need) == 0 {
		return nil, nil
	}
	issuer := core.SubjectEntity(d.Issuer.ID())
	used := make([]*core.Proof, 0, len(need))
	for _, role := range need {
		var chosen *core.Proof
		for _, sp := range provided {
			if sp == nil || sp.Object != role {
				continue
			}
			if !sp.Subject.IsEntity() || sp.Subject.Entity != d.Issuer.ID() {
				continue
			}
			if err := sp.Validate(vopts); err != nil {
				return nil, fmt.Errorf("support proof for %s: %w", role, err)
			}
			chosen = sp
			break
		}
		if chosen == nil {
			// Fall back to the wallet's own knowledge.
			p, err := w.g.FindDirect(issuer, role, graph.Options{
				At:       vopts.At,
				MaxDepth: w.cfg.MaxDepth,
			})
			if err != nil {
				return nil, &core.MissingSupportError{Delegation: d.ID(), Issuer: d.Issuer, Need: role}
			}
			if err := p.Validate(vopts); err != nil {
				return nil, fmt.Errorf("derived support proof for %s: %w", role, err)
			}
			chosen = p
		}
		used = append(used, chosen)
	}
	return used, nil
}

// Revoke withdraws a delegation. Only the issuer may revoke; by must be the
// issuer's entity ID. Subscribers are notified synchronously (§4.2.2).
func (w *Wallet) Revoke(id core.DelegationID, by core.EntityID) error {
	d, _, ok := w.g.Get(id)
	if !ok {
		return fmt.Errorf("revoke %s: not found", id.Short())
	}
	if d.Issuer.ID() != by {
		return fmt.Errorf("revoke %s: only issuer %s may revoke", id.Short(), d.Issuer)
	}
	w.forceRevoke(id)
	return nil
}

// forceRevoke marks a delegation revoked without an authorization check; it
// backs Revoke and the remote layer's propagation of home-wallet
// revocations (which arrive already authenticated).
func (w *Wallet) forceRevoke(id core.DelegationID) {
	now := w.Now()
	w.mu.Lock()
	_, already := w.revoked[id]
	if !already {
		w.revoked[id] = now
	}
	delete(w.cache, id)
	w.mu.Unlock()
	if already {
		return
	}
	w.g.Remove(id)
	w.reg.Publish(subs.Event{Delegation: id, Kind: subs.Revoked, At: now})
}

// AcceptRevocation records a revocation learned from the delegation's home
// wallet (already authenticated by the transport layer).
func (w *Wallet) AcceptRevocation(id core.DelegationID) { w.forceRevoke(id) }

// SweepExpired removes delegations whose expiry has passed, notifying
// subscribers, and returns how many were removed. Queries never return
// expired credentials even without sweeping; the sweep exists to push
// monitor notifications (§4.2.2).
func (w *Wallet) SweepExpired() int {
	now := w.Now()
	removed := 0
	for _, d := range w.g.All() {
		if !d.Expired(now) {
			continue
		}
		id := d.ID()
		if w.g.Remove(id) {
			removed++
			w.mu.Lock()
			delete(w.cache, id)
			w.mu.Unlock()
			w.reg.Publish(subs.Event{Delegation: id, Kind: subs.Expired, At: now})
		}
	}
	return removed
}

// InsertCached stores a remotely discovered delegation with a coherence TTL
// (§4.2.1): the copy is trusted for ttl after insertion and must be renewed
// (RenewCached) or it goes stale. A zero ttl means the delegation requires
// no monitoring and is stored permanently.
func (w *Wallet) InsertCached(d *core.Delegation, support []*core.Proof, ttl time.Duration) error {
	if err := w.Publish(d, support...); err != nil {
		return err
	}
	if ttl > 0 {
		w.mu.Lock()
		w.cache[d.ID()] = w.Now().Add(ttl)
		w.mu.Unlock()
	}
	return nil
}

// RenewCached extends a cached delegation's freshness window, reporting
// whether the entry existed. Subscribers receive a Renewed event.
func (w *Wallet) RenewCached(id core.DelegationID, ttl time.Duration) bool {
	w.mu.Lock()
	_, ok := w.cache[id]
	if ok {
		w.cache[id] = w.Now().Add(ttl)
	}
	w.mu.Unlock()
	if ok {
		w.reg.Publish(subs.Event{Delegation: id, Kind: subs.Renewed, At: w.Now()})
	}
	return ok
}

// SweepStaleCache removes cached delegations whose TTL lapsed without
// renewal, notifying subscribers with Stale events, and returns how many
// were removed.
func (w *Wallet) SweepStaleCache() int {
	now := w.Now()
	var stale []core.DelegationID
	w.mu.Lock()
	for id, deadline := range w.cache {
		if now.After(deadline) {
			stale = append(stale, id)
			delete(w.cache, id)
		}
	}
	w.mu.Unlock()
	for _, id := range stale {
		w.g.Remove(id)
		w.reg.Publish(subs.Event{Delegation: id, Kind: subs.Stale, At: now})
	}
	return len(stale)
}

// CachedCount reports the number of TTL-tracked cache entries.
func (w *Wallet) CachedCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.cache)
}

// Query identifies an authorization question: does Subject hold Object under
// Constraints (§4.1)?
type Query struct {
	Subject     core.Subject
	Object      core.Role
	Constraints []core.Constraint
	// Direction selects the search strategy; zero means forward.
	Direction graph.Direction
	// Stats, if non-nil, accumulates search effort.
	Stats *graph.Stats
}

func (w *Wallet) searchOptions(q Query) graph.Options {
	return graph.Options{
		At:          w.Now(),
		Constraints: q.Constraints,
		MaxDepth:    w.cfg.MaxDepth,
		MaxProofs:   w.cfg.MaxProofs,
		Direction:   q.Direction,
		Stats:       q.Stats,
	}
}

func (w *Wallet) validateOptions(q Query) core.ValidateOptions {
	return core.ValidateOptions{
		At:               w.Now(),
		Revoked:          w.revokedFn(),
		StrictAttributes: w.cfg.StrictAttributes,
		MaxDepth:         w.cfg.MaxDepth,
		Constraints:      q.Constraints,
	}
}

// QueryDirect answers "does Subject hold Object under Constraints?" with a
// fully validated proof, or core.ErrNoProof.
func (w *Wallet) QueryDirect(q Query) (*core.Proof, error) {
	p, err := w.g.FindDirect(q.Subject, q.Object, w.searchOptions(q))
	if err != nil {
		return nil, err
	}
	if err := p.Validate(w.validateOptions(q)); err != nil {
		return nil, fmt.Errorf("candidate proof failed validation: %w", err)
	}
	return p, nil
}

// QueryDirectOptions is QueryDirect with explicit graph search options,
// used by ablation experiments (e.g. disabling monotonicity pruning). The
// evaluation instant is forced to the wallet clock.
func (w *Wallet) QueryDirectOptions(q Query, opts graph.Options) (*core.Proof, error) {
	opts.At = w.Now()
	p, err := w.g.FindDirect(q.Subject, q.Object, opts)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(w.validateOptions(q)); err != nil {
		return nil, fmt.Errorf("candidate proof failed validation: %w", err)
	}
	return p, nil
}

// QuerySubject enumerates validated sub-proofs Subject ⇒ * (§4.1), the
// primitive behind forward distributed discovery.
func (w *Wallet) QuerySubject(subject core.Subject, constraints []core.Constraint) []*core.Proof {
	q := Query{Subject: subject, Constraints: constraints}
	candidates := w.g.EnumerateFrom(subject, w.searchOptions(q))
	return w.filterValid(candidates, q)
}

// QueryObject enumerates validated sub-proofs * ⇒ Object (§4.1), the
// primitive behind reverse distributed discovery.
func (w *Wallet) QueryObject(object core.Role, constraints []core.Constraint) []*core.Proof {
	q := Query{Object: object, Constraints: constraints}
	candidates := w.g.EnumerateTo(object, w.searchOptions(q))
	return w.filterValid(candidates, q)
}

func (w *Wallet) filterValid(candidates []*core.Proof, q Query) []*core.Proof {
	vopts := w.validateOptions(q)
	var out []*core.Proof
	for _, p := range candidates {
		if err := p.Validate(vopts); err == nil {
			out = append(out, p)
		}
	}
	return out
}

// Subscribe registers a handler for one delegation's status updates and
// returns a cancel function.
func (w *Wallet) Subscribe(id core.DelegationID, fn subs.Handler) (cancel func()) {
	return w.reg.Subscribe(id, fn)
}

// Subscribers reports the number of active subscriptions for a delegation.
func (w *Wallet) Subscribers(id core.DelegationID) int { return w.reg.Subscribers(id) }

// WatchFor registers fn to fire once a proof for q becomes available
// (§4.2.2: "the entity object can register a callback that will be activated
// when such a proof is available"). If a proof already exists, fn fires
// synchronously. The returned cancel function is idempotent.
func (w *Wallet) WatchFor(q Query, fn func(*core.Proof)) (cancel func()) {
	if p, err := w.QueryDirect(q); err == nil {
		fn(p)
		return func() {}
	}
	w.mu.Lock()
	id := w.nextID
	w.nextID++
	w.watches[id] = &watch{query: q, fn: fn}
	w.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			w.mu.Lock()
			delete(w.watches, id)
			w.mu.Unlock()
		})
	}
}

// fireWatches re-runs pending watch queries after new credentials arrive.
func (w *Wallet) fireWatches() {
	w.mu.Lock()
	pending := make(map[int]*watch, len(w.watches))
	for id, wa := range w.watches {
		pending[id] = wa
	}
	w.mu.Unlock()
	for id, wa := range pending {
		p, err := w.QueryDirect(wa.query)
		if err != nil {
			continue
		}
		w.mu.Lock()
		_, still := w.watches[id]
		delete(w.watches, id)
		w.mu.Unlock()
		if still {
			wa.fn(p)
		}
	}
}
