// Package wallet implements the dRBAC credential repository (§4.1): a store
// of delegations supporting publication, direct/subject/object authorization
// queries answered with proofs, revocation, TTL-coherent caching of remote
// credentials, and continuous proof monitoring through delegation
// subscriptions.
//
// Internally the wallet is layered: a Store is the system of record
// (delegations + support proofs + revocations, pluggably durable), the
// sharded graph index and the memoizing ProofCache are derived views, and
// the subs.Registry is the push channel that keeps the cache coherent with
// the store (§6). Each layer carries its own lock, so queries, publications,
// and revocations proceed concurrently instead of serializing on one mutex.
package wallet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/graph"
	"drbac/internal/obs"
	"drbac/internal/sigcache"
	"drbac/internal/subs"
)

// Config parameterizes a wallet.
type Config struct {
	// Owner, if set, identifies the wallet's operating entity (used by the
	// remote layer for authentication). A wallet works unowned.
	Owner *core.Identity
	// Clock supplies time; nil means the system clock.
	Clock clock.Clock
	// StrictAttributes requires support proofs for attribute settings
	// outside the issuer's namespace (Table 2 semantics).
	StrictAttributes bool
	// Directory resolves names in error messages and rendered proofs.
	Directory core.Directory
	// MaxDepth bounds proof-chain length; 0 means graph.DefaultMaxDepth.
	MaxDepth int
	// MaxProofs bounds subject/object query results; 0 means
	// graph.DefaultMaxProofs.
	MaxProofs int
	// Store is the system of record; nil means a fresh in-memory MemStore.
	// A non-empty store (e.g. a FileStore reopened after a restart) is
	// replayed into the wallet's indexes at construction.
	Store Store
	// DisableProofCache turns off direct-query memoization; every query
	// re-runs the graph search. Used by cold-cache benchmarks.
	DisableProofCache bool
	// ProofCacheLimit bounds memoized answers; 0 means
	// DefaultProofCacheLimit.
	ProofCacheLimit int
	// Obs, if non-nil, receives structured logs and metrics from every
	// wallet operation (publish/query/revoke counters, query latency,
	// search effort, cache outcomes, state gauges). Nil disables
	// instrumentation at near-zero cost. A registry should back at most one
	// wallet: state gauges are registered by name at construction.
	Obs *obs.Obs
	// SigCache memoizes verified delegation signatures across every
	// validation this wallet runs (publish admission, query proofs, replica
	// installs). Nil means the process-wide sigcache.Shared() — signatures
	// are immutable, so sharing one memo across wallets, proxies, and
	// replicas is free warm-up, never a coherence hazard. Tests and cold
	// benchmarks pass a private cache to isolate measurements.
	SigCache *sigcache.Cache
}

// walletMetrics holds the wallet's pre-resolved instruments. The zero
// value (every field nil) is fully inert: obs instruments no-op on nil
// receivers, so uninstrumented wallets pay one nil test per event.
type walletMetrics struct {
	publish, publishErr    *obs.Counter
	revocations, revokeErr *obs.Counter
	queryDirect            *obs.Counter
	querySubject           *obs.Counter
	queryObject            *obs.Counter
	queryNoProof           *obs.Counter
	replaySkipped          *obs.Counter
	searchNodes            *obs.Counter
	searchEdges            *obs.Counter
	searchPruned           *obs.Counter
	events                 *obs.Counter
	queryLatency           *obs.Histogram
}

func newWalletMetrics(o *obs.Obs) walletMetrics {
	if o.Registry() == nil {
		return walletMetrics{}
	}
	return walletMetrics{
		publish:       o.Counter("drbac_wallet_publish_total"),
		publishErr:    o.Counter("drbac_wallet_publish_errors_total"),
		revocations:   o.Counter("drbac_wallet_revocations_total"),
		revokeErr:     o.Counter("drbac_wallet_revoke_errors_total"),
		queryDirect:   o.Counter("drbac_wallet_query_direct_total"),
		querySubject:  o.Counter("drbac_wallet_query_subject_total"),
		queryObject:   o.Counter("drbac_wallet_query_object_total"),
		queryNoProof:  o.Counter("drbac_wallet_query_noproof_total"),
		replaySkipped: o.Counter("drbac_wallet_replay_skipped_total"),
		searchNodes:   o.Counter("drbac_search_nodes_total"),
		searchEdges:   o.Counter("drbac_search_edges_total"),
		searchPruned:  o.Counter("drbac_search_pruned_total"),
		events:        o.Counter("drbac_subs_events_total"),
		queryLatency:  o.Histogram("drbac_wallet_query_seconds"),
	}
}

// Wallet is a concurrency-safe dRBAC credential repository.
type Wallet struct {
	cfg   Config
	clk   clock.Clock
	store Store
	g     *graph.Graph
	reg   *subs.Registry
	obs   *obs.Obs
	m     walletMetrics
	sigv  *sigcache.Cache

	// SLOs resolved once at construction (registering them later misses
	// this wallet); nil when the process defined none.
	sloQuery   *obs.SLO
	sloPublish *obs.SLO

	cache    *ProofCache
	cacheOff bool

	// repMu serializes sequenced mutations. Every accepted mutation —
	// publish, revoke, expiry sweep, TTL lapse, renewal — updates the store
	// and the graph index, increments seq, and publishes its subscription
	// event all under repMu, so subscribers observe events in exactly seq
	// order and Snapshot captures a state consistent with its seq. Reads
	// (queries, Stats) never take repMu. Handlers therefore run with repMu
	// held and must not re-enter the same wallet's mutation methods.
	repMu sync.Mutex
	// seq is the changelog sequence number of the last accepted mutation,
	// 1-based and gapless within one store epoch. A wallet on an in-memory
	// store starts at 0; a wallet on a durable store resumes from the
	// store's recovered high-water mark (Store.Seq), so sequence numbers
	// stay monotone across restarts and every store-visible mutation is
	// stamped with the seq it was accepted under.
	seq uint64

	// ttlMu guards ttl, which maps remotely sourced delegations to the
	// instant their coherence TTL lapses without renewal (§4.2.1).
	ttlMu sync.Mutex
	ttl   map[core.DelegationID]time.Time

	// watchMu guards the proof-watch table.
	watchMu sync.Mutex
	watches map[int]*watch
	nextID  int
}

// watch is a registered "call me when a proof appears" request (§4.2.2).
type watch struct {
	query Query
	fn    func(*core.Proof)
}

// New constructs a wallet over cfg.Store (a fresh MemStore when nil),
// replaying any stored delegations into the graph index so a wallet
// reopened from a durable store serves the same proofs — and keeps
// refusing the same revoked credentials — as before the restart.
func New(cfg Config) *Wallet {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System{}
	}
	st := cfg.Store
	if st == nil {
		st = NewMemStore()
	}
	sigv := cfg.SigCache
	if sigv == nil {
		sigv = sigcache.Shared()
	}
	w := &Wallet{
		cfg:        cfg,
		clk:        clk,
		store:      st,
		seq:        st.Seq(),
		sigv:       sigv,
		g:          graph.New(),
		reg:        subs.NewRegistry(),
		obs:        cfg.Obs,
		m:          newWalletMetrics(cfg.Obs),
		sloQuery:   cfg.Obs.SLO("query"),
		sloPublish: cfg.Obs.SLO("publish"),
		cache:      NewProofCache(cfg.ProofCacheLimit),
		cacheOff:   cfg.DisableProofCache,
		ttl:        make(map[core.DelegationID]time.Time),
		watches:    make(map[int]*watch),
	}
	// The cache invalidation hook registers first so it is the first
	// wildcard handler: memoized answers die before any other subscriber
	// (monitors, remote pushes) can re-query and observe them. It doubles
	// as the subscription-event meter: every status update the wallet
	// publishes passes through exactly once.
	w.reg.SubscribeAll(func(ev subs.Event) {
		w.m.events.Inc()
		switch ev.Kind {
		case subs.Published:
			w.cache.InvalidateNegatives()
		case subs.Revoked, subs.Expired, subs.Stale:
			w.cache.InvalidateDelegation(ev.Delegation)
		}
	})
	if reg := cfg.Obs.Registry(); reg != nil {
		reg.GaugeFunc("drbac_wallet_delegations", func() int64 { return int64(w.g.Len()) })
		reg.GaugeFunc("drbac_wallet_revoked", func() int64 { return int64(len(w.store.RevokedIDs())) })
		reg.GaugeFunc("drbac_wallet_ttl_tracked", func() int64 { return int64(w.CachedCount()) })
		reg.GaugeFunc("drbac_wallet_watches", func() int64 {
			w.watchMu.Lock()
			defer w.watchMu.Unlock()
			return int64(len(w.watches))
		})
		reg.GaugeFunc("drbac_wallet_cache_hits", func() int64 { return w.cache.Stats().Hits })
		reg.GaugeFunc("drbac_wallet_cache_misses", func() int64 { return w.cache.Stats().Misses })
		reg.GaugeFunc("drbac_wallet_cache_invalidations", func() int64 { return w.cache.Stats().Invalidations })
		reg.GaugeFunc("drbac_wallet_cache_entries", func() int64 { return int64(w.cache.Stats().Entries) })
		reg.GaugeFunc("drbac_wallet_cache_negatives", func() int64 { return int64(w.cache.Stats().Negatives) })
		// The signature memo may be process-wide (shared across wallets);
		// its counters are still exported here so a wallet's registry shows
		// the verification traffic it participates in.
		reg.GaugeFunc("drbac_sigcache_hits", func() int64 { return w.sigv.Stats().Hits })
		reg.GaugeFunc("drbac_sigcache_misses", func() int64 { return w.sigv.Stats().Misses })
		reg.GaugeFunc("drbac_sigcache_evictions", func() int64 { return w.sigv.Stats().Evictions })
		reg.GaugeFunc("drbac_sigcache_size", func() int64 { return w.sigv.Stats().Size })
	}
	for _, b := range st.Bundles() {
		// A durable store can hand back bundles that no longer verify —
		// truncated writes, post-hoc tampering, or a key format change.
		// Refusing them is correct, but refusing them silently hid real
		// corruption; count every skip and log its triage (malformed
		// structure vs. failed signature) so operators see decay in the
		// store instead of mysteriously missing credentials.
		if b.Delegation == nil {
			w.m.replaySkipped.Inc()
			w.obs.Log().Warn("wallet replay: skipping bundle with no delegation", "cause", "structure")
			continue
		}
		if err := b.Delegation.VerifyWith(w.sigv); err != nil {
			w.m.replaySkipped.Inc()
			cause := "signature"
			var structErr *core.StructureError
			if errors.As(err, &structErr) {
				cause = "structure"
			}
			w.obs.Log().Warn("wallet replay: skipping invalid bundle",
				"delegation", b.Delegation.ID().Short(), "cause", cause, "error", err)
			continue
		}
		if st.IsRevoked(b.Delegation.ID()) {
			continue
		}
		w.g.Add(b.Delegation, b.Support)
	}
	return w
}

// Owner returns the wallet's operating identity, which may be nil.
func (w *Wallet) Owner() *core.Identity { return w.cfg.Owner }

// Printer renders this wallet's credentials and proofs with entity names
// resolved through the configured directory.
func (w *Wallet) Printer() core.Printer { return core.Printer{Dir: w.cfg.Directory} }

// Clock returns the wallet's time source.
func (w *Wallet) Clock() clock.Clock { return w.clk }

// Now returns the wallet's current instant.
func (w *Wallet) Now() time.Time { return w.clk.Now() }

// Store returns the wallet's system of record.
func (w *Wallet) Store() Store { return w.store }

// Obs returns the wallet's observability bundle, which may be nil.
func (w *Wallet) Obs() *obs.Obs { return w.obs }

// SigVerifier exposes the wallet's verified-signature memo so collaborating
// layers (discovery, proxy, replica sync) can pre-warm it for delegations
// the wallet is about to validate.
func (w *Wallet) SigVerifier() core.SigVerifier { return w.sigv }

// Len returns the number of stored delegations.
func (w *Wallet) Len() int { return w.g.Len() }

// Delegations returns every stored delegation.
func (w *Wallet) Delegations() []*core.Delegation { return w.g.All() }

// Get returns a stored delegation and its support proofs.
func (w *Wallet) Get(id core.DelegationID) (*core.Delegation, []*core.Proof, bool) {
	return w.g.Get(id)
}

// Contains reports whether the wallet holds the delegation.
func (w *Wallet) Contains(id core.DelegationID) bool { return w.g.Contains(id) }

// RevokedIDs returns every delegation ID this wallet has seen revoked, in
// unspecified order. The file-backed Store persists these so a restored
// wallet keeps refusing revoked credentials.
func (w *Wallet) RevokedIDs() []core.DelegationID { return w.store.RevokedIDs() }

// IsRevoked reports whether the wallet has seen a revocation for id.
func (w *Wallet) IsRevoked(id core.DelegationID) bool { return w.store.IsRevoked(id) }

// revokedFn returns a revocation predicate for proof validation.
func (w *Wallet) revokedFn() func(core.DelegationID) bool {
	return w.store.IsRevoked
}

// Stats is a point-in-time snapshot of wallet state and cache
// effectiveness.
type Stats struct {
	// Delegations is the number of stored (unrevoked, unswept) delegations.
	Delegations int
	// Revoked is the size of the observed-revocation set.
	Revoked int
	// TTLTracked is the number of cached remote delegations under §4.2.1
	// coherence TTLs.
	TTLTracked int
	// Watches is the number of pending proof watches.
	Watches int
	// Cache reports proof-cache hit/miss/invalidation counters.
	Cache CacheStats
	// SigCache reports the verified-signature memo's counters. When the
	// wallet uses the process-wide shared cache, these reflect all traffic
	// through it, not only this wallet's.
	SigCache sigcache.Stats
}

// Stats snapshots the wallet's state and proof-cache counters.
func (w *Wallet) Stats() Stats {
	w.ttlMu.Lock()
	ttl := len(w.ttl)
	w.ttlMu.Unlock()
	w.watchMu.Lock()
	watches := len(w.watches)
	w.watchMu.Unlock()
	return Stats{
		Delegations: w.g.Len(),
		Revoked:     len(w.store.RevokedIDs()),
		TTLTracked:  ttl,
		Watches:     watches,
		Cache:       w.cache.Stats(),
		SigCache:    w.sigv.Stats(),
	}
}

// Publish verifies and stores a delegation together with the support proofs
// its issuer must provide (§4.1): the object's right-of-assignment chain for
// third-party delegations and, under StrictAttributes, assignment rights for
// foreign attribute settings. Missing support is looked up in the wallet's
// own graph before the publication is rejected. Subscribers receive a
// Published event once the delegation is stored and indexed.
func (w *Wallet) Publish(d *core.Delegation, support ...*core.Proof) error {
	var start time.Time
	if w.sloPublish != nil {
		start = time.Now()
	}
	err := w.publish(d, support)
	if w.sloPublish != nil {
		w.sloPublish.Observe(time.Since(start))
	}
	w.m.publish.Inc()
	if err != nil {
		w.m.publishErr.Inc()
		w.obs.Log().Debug("wallet publish rejected", "error", err)
	} else if w.obs.DebugEnabled() {
		w.obs.Log().Debug("wallet publish",
			"delegation", d.ID().Short(), "kind", d.Kind().String(),
			"issuer", d.Issuer.ID().Short())
	}
	return err
}

func (w *Wallet) publish(d *core.Delegation, support []*core.Proof) error {
	if d == nil {
		return fmt.Errorf("publish: nil delegation")
	}
	if err := d.VerifyWith(w.sigv); err != nil {
		return fmt.Errorf("publish: %w", err)
	}
	now := w.Now()
	if d.Expired(now) {
		return fmt.Errorf("publish: %w", &core.ExpiredError{ID: d.ID(), Expiry: d.Expiry, At: now})
	}
	if w.IsRevoked(d.ID()) {
		return fmt.Errorf("publish: %w", &core.RevokedError{ID: d.ID()})
	}

	vopts := core.ValidateOptions{
		At:               now,
		Revoked:          w.revokedFn(),
		StrictAttributes: w.cfg.StrictAttributes,
		MaxDepth:         w.cfg.MaxDepth,
	}
	used, err := w.resolveSupport(d, support, vopts)
	if err != nil {
		return fmt.Errorf("publish: %w", err)
	}
	w.repMu.Lock()
	if err := w.store.PutDelegation(w.seq+1, d, used); err != nil {
		w.repMu.Unlock()
		return fmt.Errorf("publish: persist %s: %w", d.ID().Short(), err)
	}
	w.g.Add(d, used)
	w.seq++
	w.reg.Publish(subs.Event{Delegation: d.ID(), Kind: subs.Published, At: now, Seq: w.seq})
	w.repMu.Unlock()
	w.fireWatches()
	return nil
}

// resolveSupport finds and validates a support proof for every role the
// issuer must hold, drawing first on caller-provided proofs and then on the
// wallet's own graph.
func (w *Wallet) resolveSupport(d *core.Delegation, provided []*core.Proof, vopts core.ValidateOptions) ([]*core.Proof, error) {
	need := d.RequiredSupport(w.cfg.StrictAttributes)
	if len(need) == 0 {
		return nil, nil
	}
	issuer := core.SubjectEntity(d.Issuer.ID())
	used := make([]*core.Proof, 0, len(need))
	for _, role := range need {
		var chosen *core.Proof
		for _, sp := range provided {
			if sp == nil || sp.Object != role {
				continue
			}
			if !sp.Subject.IsEntity() || sp.Subject.Entity != d.Issuer.ID() {
				continue
			}
			if err := sp.Validate(vopts); err != nil {
				return nil, fmt.Errorf("support proof for %s: %w", role, err)
			}
			chosen = sp
			break
		}
		if chosen == nil {
			// Fall back to the wallet's own knowledge.
			p, err := w.g.FindDirect(issuer, role, graph.Options{
				At:       vopts.At,
				MaxDepth: w.cfg.MaxDepth,
			})
			if err != nil {
				return nil, &core.MissingSupportError{Delegation: d.ID(), Issuer: d.Issuer, Need: role}
			}
			if err := p.Validate(vopts); err != nil {
				return nil, fmt.Errorf("derived support proof for %s: %w", role, err)
			}
			chosen = p
		}
		used = append(used, chosen)
	}
	return used, nil
}

// Revoke withdraws a delegation. Only the issuer may revoke; by must be the
// issuer's entity ID. Subscribers are notified synchronously (§4.2.2).
func (w *Wallet) Revoke(id core.DelegationID, by core.EntityID) error {
	err := w.revoke(id, by)
	if err != nil {
		w.m.revokeErr.Inc()
		w.obs.Log().Debug("wallet revoke rejected", "delegation", id.Short(), "by", by.Short(), "error", err)
	} else {
		w.m.revocations.Inc()
		w.obs.Log().Debug("wallet revoke", "delegation", id.Short(), "by", by.Short())
	}
	return err
}

func (w *Wallet) revoke(id core.DelegationID, by core.EntityID) error {
	d, _, ok := w.g.Get(id)
	if !ok {
		return fmt.Errorf("revoke %s: not found", id.Short())
	}
	if d.Issuer.ID() != by {
		return fmt.Errorf("revoke %s: only issuer %s may revoke", id.Short(), d.Issuer)
	}
	if err := w.forceRevoke(id); err != nil {
		return fmt.Errorf("revoke %s: %w", id.Short(), err)
	}
	return nil
}

// forceRevoke marks a delegation revoked without an authorization check; it
// backs Revoke and the remote layer's propagation of home-wallet
// revocations (which arrive already authenticated). The revocation always
// takes effect in memory; the returned error reports a persistence failure
// of a durable store.
func (w *Wallet) forceRevoke(id core.DelegationID) error {
	now := w.Now()
	w.repMu.Lock()
	// The tombstone and the bundle removal are one logical mutation and
	// share one seq.
	added, err := w.store.AddRevocation(w.seq+1, id, now)
	w.ttlMu.Lock()
	delete(w.ttl, id)
	w.ttlMu.Unlock()
	if !added {
		w.repMu.Unlock()
		return err
	}
	if derr := w.store.DeleteDelegation(w.seq+1, id); derr != nil && err == nil {
		err = derr
	}
	w.g.Remove(id)
	w.seq++
	w.reg.Publish(subs.Event{Delegation: id, Kind: subs.Revoked, At: now, Seq: w.seq})
	w.repMu.Unlock()
	return err
}

// AcceptRevocation records a revocation learned from the delegation's home
// wallet (already authenticated by the transport layer).
func (w *Wallet) AcceptRevocation(id core.DelegationID) { _ = w.forceRevoke(id) }

// SweepExpired removes delegations whose expiry has passed, notifying
// subscribers, and returns how many were removed. Queries never return
// expired credentials even without sweeping; the sweep exists to push
// monitor notifications (§4.2.2) and reclaim store space.
func (w *Wallet) SweepExpired() int {
	now := w.Now()
	removed := 0
	for _, d := range w.g.All() {
		if !d.Expired(now) {
			continue
		}
		id := d.ID()
		w.repMu.Lock()
		if w.g.Remove(id) {
			removed++
			_ = w.store.DeleteDelegation(w.seq+1, id)
			w.ttlMu.Lock()
			delete(w.ttl, id)
			w.ttlMu.Unlock()
			w.seq++
			w.reg.Publish(subs.Event{Delegation: id, Kind: subs.Expired, At: now, Seq: w.seq})
		}
		w.repMu.Unlock()
	}
	return removed
}

// InsertCached stores a remotely discovered delegation with a coherence TTL
// (§4.2.1): the copy is trusted for ttl after insertion and must be renewed
// (RenewCached) or it goes stale. A zero ttl means the delegation requires
// no monitoring and is stored permanently.
func (w *Wallet) InsertCached(d *core.Delegation, support []*core.Proof, ttl time.Duration) error {
	if err := w.Publish(d, support...); err != nil {
		return err
	}
	if ttl > 0 {
		w.ttlMu.Lock()
		w.ttl[d.ID()] = w.Now().Add(ttl)
		w.ttlMu.Unlock()
	}
	return nil
}

// RenewCached extends a cached delegation's freshness window, reporting
// whether the entry existed. Subscribers receive a Renewed event.
func (w *Wallet) RenewCached(id core.DelegationID, ttl time.Duration) bool {
	w.ttlMu.Lock()
	_, ok := w.ttl[id]
	if ok {
		w.ttl[id] = w.Now().Add(ttl)
	}
	w.ttlMu.Unlock()
	if ok {
		w.repMu.Lock()
		w.seq++
		w.reg.Publish(subs.Event{Delegation: id, Kind: subs.Renewed, At: w.Now(), Seq: w.seq})
		w.repMu.Unlock()
	}
	return ok
}

// SweepStaleCache removes cached delegations whose TTL lapsed without
// renewal, notifying subscribers with Stale events, and returns how many
// were removed.
func (w *Wallet) SweepStaleCache() int {
	now := w.Now()
	var stale []core.DelegationID
	w.ttlMu.Lock()
	for id, deadline := range w.ttl {
		if now.After(deadline) {
			stale = append(stale, id)
			delete(w.ttl, id)
		}
	}
	w.ttlMu.Unlock()
	for _, id := range stale {
		w.repMu.Lock()
		_ = w.store.DeleteDelegation(w.seq+1, id)
		w.g.Remove(id)
		w.seq++
		w.reg.Publish(subs.Event{Delegation: id, Kind: subs.Stale, At: now, Seq: w.seq})
		w.repMu.Unlock()
	}
	return len(stale)
}

// CachedCount reports the number of TTL-tracked cache entries.
func (w *Wallet) CachedCount() int {
	w.ttlMu.Lock()
	defer w.ttlMu.Unlock()
	return len(w.ttl)
}

// Seq returns the wallet's changelog sequence number: the seq of the last
// accepted mutation. A wallet on an in-memory store starts at 0; a wallet
// on a durable store resumes from the store's recovered high-water mark.
func (w *Wallet) Seq() uint64 {
	w.repMu.Lock()
	defer w.repMu.Unlock()
	return w.seq
}

// Snapshot is a consistent point-in-time copy of the wallet's replicable
// state: every stored bundle and every observed revocation, stamped with
// the changelog seq of the last mutation it includes. A follower that
// installs the snapshot and then applies the event stream from Seq+1
// onward reconstructs the wallet exactly (§9 replication).
type Snapshot struct {
	Seq     uint64
	Bundles []StoredBundle
	Revoked []core.DelegationID
}

// Snapshot captures the wallet's replicable state atomically with respect
// to sequenced mutations: no mutation can land between the seq read and the
// store reads, so the returned state is exactly the state at Seq.
func (w *Wallet) Snapshot() Snapshot {
	w.repMu.Lock()
	defer w.repMu.Unlock()
	return Snapshot{
		Seq:     w.seq,
		Bundles: w.store.Bundles(),
		Revoked: w.store.RevokedIDs(),
	}
}

// InstallReplicated stores a bundle exactly as received from an upstream
// primary, skipping support-proof re-derivation: dRBAC credentials are
// self-certifying, so the delegation's own signature is still verified, but
// the admission decision (support resolution, strictness policy) is trusted
// to the primary that already made it. Expired, locally revoked, or already
// present credentials are skipped without error. Reports whether the bundle
// was installed. Subscribers receive a sequenced Published event, so a
// follower is itself a valid replication source.
func (w *Wallet) InstallReplicated(b StoredBundle) (bool, error) {
	d := b.Delegation
	if d == nil {
		return false, fmt.Errorf("install replicated: nil delegation")
	}
	if err := d.VerifyWith(w.sigv); err != nil {
		return false, fmt.Errorf("install replicated: %w", err)
	}
	now := w.Now()
	if d.Expired(now) || w.IsRevoked(d.ID()) {
		return false, nil
	}
	w.repMu.Lock()
	if w.g.Contains(d.ID()) {
		w.repMu.Unlock()
		return false, nil
	}
	if err := w.store.PutDelegation(w.seq+1, d, b.Support); err != nil {
		w.repMu.Unlock()
		return false, fmt.Errorf("install replicated: persist %s: %w", d.ID().Short(), err)
	}
	w.g.Add(d, b.Support)
	w.seq++
	w.reg.Publish(subs.Event{Delegation: d.ID(), Kind: subs.Published, At: now, Seq: w.seq})
	w.repMu.Unlock()
	w.fireWatches()
	return true, nil
}

// DropReplicated removes a delegation without recording a revocation,
// mirroring an upstream Expired or Stale event onto a follower replica: the
// credential leaves the store and the graph index and subscribers are
// notified with the given kind, but the revocation set is untouched — the
// upstream never revoked it. Reports whether the delegation was present.
func (w *Wallet) DropReplicated(id core.DelegationID, kind subs.EventKind) bool {
	now := w.Now()
	w.repMu.Lock()
	if !w.g.Remove(id) {
		w.repMu.Unlock()
		return false
	}
	_ = w.store.DeleteDelegation(w.seq+1, id)
	w.ttlMu.Lock()
	delete(w.ttl, id)
	w.ttlMu.Unlock()
	w.seq++
	w.reg.Publish(subs.Event{Delegation: id, Kind: kind, At: now, Seq: w.seq})
	w.repMu.Unlock()
	return true
}

// Query identifies an authorization question: does Subject hold Object under
// Constraints (§4.1)?
type Query struct {
	// Ctx, if non-nil, gates admission: a query whose context is already
	// canceled or past its deadline returns the context error instead of
	// searching. The in-memory graph search itself is fast and runs to
	// completion once admitted. A nil Ctx means context.Background().
	Ctx         context.Context
	Subject     core.Subject
	Object      core.Role
	Constraints []core.Constraint
	// Direction selects the search strategy; zero means forward.
	Direction graph.Direction
	// Stats, if non-nil, accumulates search effort. Setting Stats bypasses
	// the proof cache: effort measurements must observe the real search.
	Stats *graph.Stats
	// TraceID, if set, tags this query's structured log records so they
	// join the originating operation's trace (e.g. a cross-wallet
	// discovery). It does not affect the answer.
	TraceID string
}

func (w *Wallet) searchOptions(q Query) graph.Options {
	return graph.Options{
		At:          w.Now(),
		Constraints: q.Constraints,
		MaxDepth:    w.cfg.MaxDepth,
		MaxProofs:   w.cfg.MaxProofs,
		Direction:   q.Direction,
		Stats:       q.Stats,
	}
}

func (w *Wallet) validateOptions(q Query) core.ValidateOptions {
	return core.ValidateOptions{
		At:               w.Now(),
		Revoked:          w.revokedFn(),
		StrictAttributes: w.cfg.StrictAttributes,
		MaxDepth:         w.cfg.MaxDepth,
		Constraints:      q.Constraints,
		SigVerifier:      w.sigv,
	}
}

// QueryDirect answers "does Subject hold Object under Constraints?" with a
// fully validated proof, or core.ErrNoProof. Answers are memoized in the
// proof cache; entries are invalidated by publish/revoke/expiry/TTL-lapse
// pushes and re-checked against expiry and revocation before being served,
// so a cached answer is always as fresh as a recomputed one.
func (w *Wallet) QueryDirect(q Query) (*core.Proof, error) {
	w.m.queryDirect.Inc()
	instrumented := w.m.queryLatency != nil
	debug := w.obs.DebugEnabled()
	slowThr := w.obs.SlowThreshold()
	timed := instrumented || debug || w.sloQuery != nil || slowThr > 0
	var start time.Time
	if timed {
		start = time.Now()
	}
	p, cacheOutcome, gs, err := w.queryDirect(q)
	if err != nil && errors.Is(err, core.ErrNoProof) {
		w.m.queryNoProof.Inc()
	}
	if !timed {
		return p, err
	}
	dur := time.Since(start)
	if instrumented {
		w.m.queryLatency.Observe(dur.Seconds())
	}
	w.sloQuery.Observe(dur)
	if debug {
		w.obs.Log().Debug("wallet query",
			"trace", q.TraceID, "subject", q.Subject.String(), "object", q.Object.String(),
			"cache", cacheOutcome, "found", err == nil,
			"duration_ms", float64(dur.Microseconds())/1000)
	}
	// The slow-query record carries the trace ID (the matching trace is
	// tail-retained by the collector) plus the search effort that explains
	// where the time went, so one Warn line is enough to start triage.
	if slowThr > 0 && dur >= slowThr {
		steps := 0
		if p != nil {
			steps = len(p.Steps)
		}
		w.obs.Log().Warn("slow query",
			"trace", q.TraceID, "subject", q.Subject.String(), "object", q.Object.String(),
			"cache", cacheOutcome, "found", err == nil, "proof_steps", steps,
			"search_nodes", gs.NodesVisited, "search_edges", gs.EdgesExplored,
			"search_pruned", gs.Pruned,
			"duration_ms", float64(dur.Microseconds())/1000)
	}
	return p, err
}

// queryDirect is QueryDirect's answer path; the returned string is the
// cache outcome ("hit", "negative", "miss", or "bypass") for the audit log,
// and the returned graph.Stats is the search effort (zero for cache
// answers) for the slow-query record.
func (w *Wallet) queryDirect(q Query) (*core.Proof, string, graph.Stats, error) {
	var gs graph.Stats
	if q.Ctx != nil {
		if err := q.Ctx.Err(); err != nil {
			return nil, "canceled", gs, err
		}
	}
	useCache := q.Stats == nil && !w.cacheOff
	var key string
	if useCache {
		key = CacheKey(q.Subject, q.Object, q.Constraints)
		if p, negative, ok := w.cache.Lookup(key, w.Now(), w.store.IsRevoked); ok {
			if negative {
				return nil, "negative", gs, core.ErrNoProof
			}
			return p, "hit", gs, nil
		}
	}
	outcome := "miss"
	if !useCache {
		outcome = "bypass"
	}
	opts := w.searchOptions(q)
	// Mirror search effort into the metrics registry when the caller did
	// not bring its own Stats (which would bypass the cache).
	mirror := q.Stats == nil && w.m.searchNodes != nil
	if mirror {
		opts.Stats = &gs
	}
	p, err := w.g.FindDirect(q.Subject, q.Object, opts)
	if mirror {
		w.mirrorSearch(gs)
	} else if q.Stats != nil {
		gs = *q.Stats
	}
	if err != nil {
		if useCache && errors.Is(err, core.ErrNoProof) {
			w.cache.PutNegative(key)
		}
		return nil, outcome, gs, err
	}
	if err := p.Validate(w.validateOptions(q)); err != nil {
		return nil, outcome, gs, fmt.Errorf("candidate proof failed validation: %w", err)
	}
	if useCache {
		w.cache.Put(key, p)
	}
	return p, outcome, gs, nil
}

// mirrorSearch folds one search's effort counters into the registry.
func (w *Wallet) mirrorSearch(gs graph.Stats) {
	w.m.searchNodes.Add(int64(gs.NodesVisited))
	w.m.searchEdges.Add(int64(gs.EdgesExplored))
	w.m.searchPruned.Add(int64(gs.Pruned))
}

// QueryDirectOptions is QueryDirect with explicit graph search options,
// used by ablation experiments (e.g. disabling monotonicity pruning). The
// evaluation instant is forced to the wallet clock, and the proof cache is
// bypassed: ablations must measure the search they configure.
func (w *Wallet) QueryDirectOptions(q Query, opts graph.Options) (*core.Proof, error) {
	opts.At = w.Now()
	p, err := w.g.FindDirect(q.Subject, q.Object, opts)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(w.validateOptions(q)); err != nil {
		return nil, fmt.Errorf("candidate proof failed validation: %w", err)
	}
	return p, nil
}

// QuerySubject enumerates validated sub-proofs Subject ⇒ * (§4.1), the
// primitive behind forward distributed discovery.
func (w *Wallet) QuerySubject(subject core.Subject, constraints []core.Constraint) []*core.Proof {
	w.m.querySubject.Inc()
	q := Query{Subject: subject, Constraints: constraints}
	opts := w.searchOptions(q)
	var gs graph.Stats
	mirror := w.m.searchNodes != nil
	if mirror {
		opts.Stats = &gs
	}
	candidates := w.g.EnumerateFrom(subject, opts)
	if mirror {
		w.mirrorSearch(gs)
	}
	return w.filterValid(candidates, q)
}

// QueryObject enumerates validated sub-proofs * ⇒ Object (§4.1), the
// primitive behind reverse distributed discovery.
func (w *Wallet) QueryObject(object core.Role, constraints []core.Constraint) []*core.Proof {
	w.m.queryObject.Inc()
	q := Query{Object: object, Constraints: constraints}
	opts := w.searchOptions(q)
	var gs graph.Stats
	mirror := w.m.searchNodes != nil
	if mirror {
		opts.Stats = &gs
	}
	candidates := w.g.EnumerateTo(object, opts)
	if mirror {
		w.mirrorSearch(gs)
	}
	return w.filterValid(candidates, q)
}

func (w *Wallet) filterValid(candidates []*core.Proof, q Query) []*core.Proof {
	vopts := w.validateOptions(q)
	var out []*core.Proof
	for _, p := range candidates {
		if err := p.Validate(vopts); err == nil {
			out = append(out, p)
		}
	}
	return out
}

// Subscribe registers a handler for one delegation's status updates and
// returns a cancel function.
func (w *Wallet) Subscribe(id core.DelegationID, fn subs.Handler) (cancel func()) {
	return w.reg.Subscribe(id, fn)
}

// SubscribeAll registers a handler for every delegation status update this
// wallet publishes (including Published events) and returns a cancel
// function. External caches — pull-through proxies — use it to stay
// coherent with the wallet.
func (w *Wallet) SubscribeAll(fn subs.Handler) (cancel func()) {
	return w.reg.SubscribeAll(fn)
}

// Subscribers reports the number of active subscriptions for a delegation.
func (w *Wallet) Subscribers(id core.DelegationID) int { return w.reg.Subscribers(id) }

// WatchFor registers fn to fire once a proof for q becomes available
// (§4.2.2: "the entity object can register a callback that will be activated
// when such a proof is available"). If a proof already exists, fn fires
// synchronously. The returned cancel function is idempotent.
func (w *Wallet) WatchFor(q Query, fn func(*core.Proof)) (cancel func()) {
	if p, err := w.QueryDirect(q); err == nil {
		fn(p)
		return func() {}
	}
	w.watchMu.Lock()
	id := w.nextID
	w.nextID++
	w.watches[id] = &watch{query: q, fn: fn}
	w.watchMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			w.watchMu.Lock()
			delete(w.watches, id)
			w.watchMu.Unlock()
		})
	}
}

// fireWatches re-runs pending watch queries after new credentials arrive.
func (w *Wallet) fireWatches() {
	w.watchMu.Lock()
	pending := make(map[int]*watch, len(w.watches))
	for id, wa := range w.watches {
		pending[id] = wa
	}
	w.watchMu.Unlock()
	for id, wa := range pending {
		p, err := w.QueryDirect(wa.query)
		if err != nil {
			continue
		}
		w.watchMu.Lock()
		_, still := w.watches[id]
		delete(w.watches, id)
		w.watchMu.Unlock()
		if still {
			wa.fn(p)
		}
	}
}
