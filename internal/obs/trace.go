package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"sync/atomic"
	"time"
)

// traceFallback seeds trace IDs when crypto/rand is unavailable.
var traceFallback atomic.Uint64

// NewTraceID returns a fresh 16-hex-character trace identifier. Trace IDs
// are minted once per top-level operation (a discovery, a CLI request) and
// propagate over the wire protocol's traceId field so every wallet touched
// by the operation logs under the same ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		v := traceFallback.Add(1)
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// Obs bundles the two observability channels a component reports into: a
// structured logger and a metrics registry. Components accept a *Obs and
// tolerate nil (all methods no-op), so instrumentation is strictly opt-in.
type Obs struct {
	log *slog.Logger
	reg *Registry
}

// New bundles a logger and a registry. Either may be nil.
func New(log *slog.Logger, reg *Registry) *Obs {
	return &Obs{log: log, reg: reg}
}

// Log returns the logger, never nil (a discard logger stands in).
func (o *Obs) Log() *slog.Logger {
	if o == nil || o.log == nil {
		return discardLogger
	}
	return o.log
}

// Registry returns the metrics registry, which may be nil.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Counter resolves a counter from the registry (nil when uninstrumented —
// still safe to Inc). Components resolve their hot-path counters once at
// construction instead of per event.
func (o *Obs) Counter(name string) *Counter { return o.Registry().Counter(name) }

// Histogram resolves a histogram from the registry (nil when
// uninstrumented — still safe to Observe).
func (o *Obs) Histogram(name string, buckets ...float64) *Histogram {
	return o.Registry().Histogram(name, buckets...)
}

// DebugEnabled reports whether debug-level records would be emitted,
// letting hot paths skip attribute assembly entirely.
func (o *Obs) DebugEnabled() bool {
	if o == nil || o.log == nil {
		return false
	}
	return o.log.Enabled(context.Background(), slog.LevelDebug)
}

// Span is one timed region of a trace. Spans log their start, events, and
// end (with duration) at debug level, each record carrying the trace ID and
// span name so a cross-wallet operation reads as one story. A nil span
// (from a nil *Obs) is a no-op.
type Span struct {
	o     *Obs
	trace string
	name  string
	start time.Time
}

// StartSpan opens a span under the given trace ID, logging "span start"
// with the supplied attributes.
func (o *Obs) StartSpan(traceID, name string, args ...any) *Span {
	if o == nil {
		return nil
	}
	s := &Span{o: o, trace: traceID, name: name, start: time.Now()}
	o.Log().Debug("span start", s.withIDs(args)...)
	return s
}

// TraceID returns the span's trace identifier ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// Event logs one point-in-time occurrence inside the span.
func (s *Span) Event(msg string, args ...any) {
	if s == nil {
		return
	}
	s.o.Log().Debug(msg, s.withIDs(args)...)
}

// End closes the span, logging "span end" with its duration and the
// supplied attributes, and returns the duration.
func (s *Span) End(args ...any) time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	args = append(args, "duration_ms", float64(d.Microseconds())/1000)
	s.o.Log().Debug("span end", s.withIDs(args)...)
	return d
}

func (s *Span) withIDs(args []any) []any {
	out := make([]any, 0, len(args)+4)
	out = append(out, "trace", s.trace, "span", s.name)
	return append(out, args...)
}
