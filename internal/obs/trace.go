package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"log/slog"
	mrand "math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// traceFallback seeds trace IDs when crypto/rand is unavailable.
var traceFallback atomic.Uint64

// NewTraceID returns a fresh 16-hex-character trace identifier. Trace IDs
// are minted once per top-level operation (a discovery, a CLI request) and
// propagate over the wire protocol's traceId field so every wallet touched
// by the operation logs under the same ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		v := traceFallback.Add(1)
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh 8-hex-character span identifier. Span IDs only
// need to be unique within one trace, so a cheap PRNG is fine — trace IDs
// keep the cryptographic source.
func NewSpanID() string {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], mrand.Uint32())
	return hex.EncodeToString(b[:])
}

// TraceContext identifies a caller's position in a trace: the trace it
// belongs to and the span the next hop should nest under. It is what
// crosses the wire (as the traceId/spanId request fields).
type TraceContext struct {
	TraceID string
	SpanID  string
}

// Obs bundles the observability channels a component reports into: a
// structured logger, a metrics registry, an optional trace collector, and
// optional latency SLOs. Components accept a *Obs and tolerate nil (all
// methods no-op), so instrumentation is strictly opt-in.
type Obs struct {
	log       *slog.Logger
	reg       *Registry
	collector atomic.Pointer[Collector]

	sloMu sync.RWMutex
	slos  map[string]*SLO
}

// New bundles a logger and a registry. Either may be nil.
func New(log *slog.Logger, reg *Registry) *Obs {
	return &Obs{log: log, reg: reg}
}

// Log returns the logger, never nil (a discard logger stands in).
func (o *Obs) Log() *slog.Logger {
	if o == nil || o.log == nil {
		return discardLogger
	}
	return o.log
}

// Registry returns the metrics registry, which may be nil.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Counter resolves a counter from the registry (nil when uninstrumented —
// still safe to Inc). Components resolve their hot-path counters once at
// construction instead of per event.
func (o *Obs) Counter(name string) *Counter { return o.Registry().Counter(name) }

// Histogram resolves a histogram from the registry (nil when
// uninstrumented — still safe to Observe).
func (o *Obs) Histogram(name string, buckets ...float64) *Histogram {
	return o.Registry().Histogram(name, buckets...)
}

// DebugEnabled reports whether debug-level records would be emitted,
// letting hot paths skip attribute assembly entirely.
func (o *Obs) DebugEnabled() bool {
	if o == nil || o.log == nil {
		return false
	}
	return o.log.Enabled(context.Background(), slog.LevelDebug)
}

// SetCollector attaches a trace collector: completed spans are assembled
// into retained traces according to the collector's sampling rules. Attach
// before the Obs is shared across goroutines.
func (o *Obs) SetCollector(c *Collector) {
	if o == nil {
		return
	}
	o.collector.Store(c)
}

// TraceCollector returns the attached collector, nil when tracing is
// log-only.
func (o *Obs) TraceCollector() *Collector {
	if o == nil {
		return nil
	}
	return o.collector.Load()
}

// SlowThreshold returns the attached collector's slow-trace threshold, or
// zero when there is no collector (slow-query capture disabled).
func (o *Obs) SlowThreshold() time.Duration {
	if c := o.TraceCollector(); c != nil {
		return c.cfg.SlowThreshold
	}
	return 0
}

// RegisterSLO attaches a latency SLO under its name so components can
// resolve it with SLO(name). Attach before the Obs is shared across
// goroutines.
func (o *Obs) RegisterSLO(s *SLO) {
	if o == nil || s == nil {
		return
	}
	o.sloMu.Lock()
	defer o.sloMu.Unlock()
	if o.slos == nil {
		o.slos = make(map[string]*SLO)
	}
	o.slos[s.Name()] = s
}

// SLO returns the registered SLO with the given name, nil when absent
// (still safe to Observe).
func (o *Obs) SLO(name string) *SLO {
	if o == nil {
		return nil
	}
	o.sloMu.RLock()
	defer o.sloMu.RUnlock()
	return o.slos[name]
}

// Span is one timed region of a trace. Spans log their start, events, and
// end (with duration) at debug level, each record carrying the trace ID and
// span name so a cross-wallet operation reads as one story. When the Obs
// has a collector the completed span is additionally retained in-process
// and assembled into a trace tree. A nil span (from a nil *Obs) is a no-op.
type Span struct {
	o      *Obs
	col    *Collector // non-nil when the span will be retained
	trace  string
	id     string
	parent string
	name   string
	start  time.Time
	root   bool // opened by StartSpan/StartServerSpan, not StartChild

	mu     sync.Mutex
	attrs  []any
	events []SpanEvent
	err    string
	ended  bool
}

// StartSpan opens a root span under the given trace ID, logging "span
// start" with the supplied attributes.
func (o *Obs) StartSpan(traceID, name string, args ...any) *Span {
	return o.startRoot(traceID, "", name, args)
}

// StartServerSpan opens a root span that continues a remote caller's trace:
// parentID is the caller's span ID carried over the wire, so this hop nests
// under the caller in the merged cross-wallet tree.
func (o *Obs) StartServerSpan(traceID, parentID, name string, args ...any) *Span {
	return o.startRoot(traceID, parentID, name, args)
}

func (o *Obs) startRoot(traceID, parentID, name string, args []any) *Span {
	if o == nil {
		return nil
	}
	s := &Span{
		o:      o,
		trace:  traceID,
		id:     NewSpanID(),
		parent: parentID,
		name:   name,
		start:  time.Now(),
		root:   true,
	}
	if c := o.TraceCollector(); c != nil && c.startRoot(traceID) {
		s.col = c
	}
	if s.col != nil && len(args) > 0 {
		s.attrs = append(s.attrs, args...)
	}
	o.Log().Debug("span start", s.withIDs(args)...)
	return s
}

// StartChild opens a sub-span of s: same trace, parented to s's span ID.
// On a nil span it returns nil (still safe to use).
func (s *Span) StartChild(name string, args ...any) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		o:      s.o,
		col:    s.col,
		trace:  s.trace,
		id:     NewSpanID(),
		parent: s.id,
		name:   name,
		start:  time.Now(),
	}
	if c.col != nil && len(args) > 0 {
		c.attrs = append(c.attrs, args...)
	}
	s.o.Log().Debug("span start", c.withIDs(args)...)
	return c
}

// TraceID returns the span's trace identifier ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// ID returns the span's own identifier ("" on a nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Context returns the span's position in its trace, for propagating to the
// next hop. A nil span yields a zero TraceContext.
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.trace, SpanID: s.id}
}

// Fail records an error on the span. A trace containing a failed span is
// always retained by the collector regardless of sampling.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	if s.err == "" {
		s.err = err.Error()
	}
	s.mu.Unlock()
}

// Event logs one point-in-time occurrence inside the span.
func (s *Span) Event(msg string, args ...any) {
	if s == nil {
		return
	}
	if s.col != nil {
		ev := SpanEvent{Msg: msg, OffsetUS: time.Since(s.start).Microseconds()}
		if len(args) > 0 {
			ev.Attrs = attrMap(args)
		}
		s.mu.Lock()
		if len(s.events) < maxSpanEvents {
			s.events = append(s.events, ev)
		}
		s.mu.Unlock()
	}
	s.o.Log().Debug(msg, s.withIDs(args)...)
}

// maxSpanEvents bounds per-span retained events; logs are unaffected.
const maxSpanEvents = 32

// End closes the span, logging "span end" with its duration and the
// supplied attributes, hands the completed span to the collector (if any),
// and returns the duration.
func (s *Span) End(args ...any) time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.col != nil {
		s.mu.Lock()
		if !s.ended {
			s.ended = true
			rec := SpanRecord{
				TraceID:    s.trace,
				SpanID:     s.id,
				ParentID:   s.parent,
				Name:       s.name,
				Root:       s.root,
				Start:      s.start,
				DurationUS: d.Microseconds(),
				Err:        s.err,
				Events:     s.events,
			}
			all := s.attrs
			if len(args) > 0 {
				all = append(append([]any{}, all...), args...)
			}
			if len(all) > 0 {
				rec.Attrs = attrMap(all)
			}
			s.mu.Unlock()
			s.col.addSpan(rec)
			if s.root {
				s.col.endRoot(s.trace)
			}
		} else {
			s.mu.Unlock()
		}
	}
	args = append(args, "duration_ms", float64(d.Microseconds())/1000)
	s.o.Log().Debug("span end", s.withIDs(args)...)
	return d
}

func (s *Span) withIDs(args []any) []any {
	out := make([]any, 0, len(args)+8)
	out = append(out, "trace", s.trace, "span", s.name, "span_id", s.id)
	if s.parent != "" {
		out = append(out, "parent_id", s.parent)
	}
	return append(out, args...)
}

// attrMap flattens slog-style key/value args into a string map for span
// retention. Keys must be strings (as slog requires); values are formatted
// with fmt.Sprint.
func attrMap(args []any) map[string]string {
	m := make(map[string]string, len(args)/2)
	for i := 0; i+1 < len(args); i += 2 {
		k, ok := args[i].(string)
		if !ok {
			continue
		}
		m[k] = fmt.Sprint(args[i+1])
	}
	return m
}

// spanCtxKey carries the active span through a context.Context so layers
// without an explicit span parameter (peer dials, proxy admission) can
// parent their work correctly.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sp; a nil span returns ctx
// unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}
