package obs

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one counter, gauge, and histogram from
// many goroutines; exact final values prove the instruments are atomic
// (and -race proves them clean).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("g").Value(); got != workers*per {
		t.Errorf("gauge = %d, want %d", got, workers*per)
	}
	h := r.Snapshot().Histograms["h"]
	if h.Count != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*per)
	}
	if want := float64(workers*per) * 0.001; math.Abs(h.Sum-want) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", h.Sum, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.002, 0.05, 5} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	wantCum := []int64{1, 2, 3} // cumulative per bucket; +Inf holds all 4
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%g count = %d, want %d", b.UpperBound, b.Count, wantCum[i])
		}
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := int64(7)
	r.GaugeFunc("live", func() int64 { return v })
	if got := r.Snapshot().Gauges["live"]; got != 7 {
		t.Fatalf("gauge func = %d, want 7", got)
	}
	v = 9
	if got := r.Snapshot().Gauges["live"]; got != 9 {
		t.Fatalf("gauge func = %d, want 9", got)
	}
	// Re-registration replaces.
	r.GaugeFunc("live", func() int64 { return -1 })
	if got := r.Snapshot().Gauges["live"]; got != -1 {
		t.Fatalf("replaced gauge func = %d, want -1", got)
	}
}

// TestWritePrometheusGolden pins the exact text exposition output for a
// small registry.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("drbac_wallet_publish_total").Add(3)
	r.Gauge("drbac_wallet_delegations").Set(2)
	h := r.Histogram("drbac_wallet_query_seconds", 0.001, 0.1)
	h.Observe(0.0005)
	h.Observe(0.05)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP drbac_wallet_publish_total Delegations accepted by Publish.
# TYPE drbac_wallet_publish_total counter
drbac_wallet_publish_total 3
# HELP drbac_wallet_delegations Live delegations resident in the wallet.
# TYPE drbac_wallet_delegations gauge
drbac_wallet_delegations 2
# HELP drbac_wallet_query_seconds Proof-query latency in seconds.
# TYPE drbac_wallet_query_seconds histogram
drbac_wallet_query_seconds_bucket{le="0.001"} 1
drbac_wallet_query_seconds_bucket{le="0.1"} 2
drbac_wallet_query_seconds_bucket{le="+Inf"} 2
drbac_wallet_query_seconds_sum 0.0505
drbac_wallet_query_seconds_count 2
`
	if got := b.String(); got != want {
		t.Errorf("prometheus output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up").Inc()
	srv := httptest.NewServer(MetricsHandler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	want := "# TYPE up counter\nup 1\n"
	if string(body) != want {
		t.Errorf("body = %q, want %q", body, want)
	}
}

// TestNilSafety proves every instrument and the Obs bundle tolerate nil.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has value")
	}
	var h *Histogram
	h.Observe(1)
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.GaugeFunc("x", func() int64 { return 1 })
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot non-empty")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Error(err)
	}
	var o *Obs
	o.Counter("x").Inc()
	o.Histogram("x").Observe(1)
	o.Log().Info("dropped")
	if o.DebugEnabled() {
		t.Error("nil obs debug-enabled")
	}
	sp := o.StartSpan("t", "s")
	sp.Event("e")
	if sp.TraceID() != "" {
		t.Error("nil span has trace id")
	}
	sp.End()
}

func TestCounterRejectsNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(-5)
	if c.Value() != 0 {
		t.Errorf("counter went negative: %d", c.Value())
	}
}
