package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestCollector(reg *Registry, sample float64, slow time.Duration) (*Obs, *Collector) {
	o := New(nil, reg)
	c := NewCollector(reg, CollectorConfig{SampleRate: sample, SlowThreshold: slow})
	o.SetCollector(c)
	return o, c
}

// TestCollectorRetainsSpanTree runs a root span with nested children and
// checks the retained trace reconstructs the hierarchy.
func TestCollectorRetainsSpanTree(t *testing.T) {
	o, col := newTestCollector(NewRegistry(), 1.0, time.Hour)
	tid := NewTraceID()

	root := o.StartSpan(tid, "discover", "object", "BigISP.member")
	child := root.StartChild("rpc:direct", "wallet", "wallet.a")
	grand := child.StartChild("peer.dial", "addr", "wallet.a")
	grand.End()
	child.Event("remote query", "node", "A.member")
	child.End("found", true)
	root.End()

	rec, ok := col.Get(tid)
	if !ok {
		t.Fatal("trace not retained at sample rate 1.0")
	}
	if rec.Root != "discover" {
		t.Errorf("root = %q, want discover", rec.Root)
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(rec.Spans))
	}
	tree := BuildSpanTree(rec.Spans)
	if len(tree) != 1 || tree[0].Name != "discover" {
		t.Fatalf("tree roots = %+v, want single discover", tree)
	}
	if len(tree[0].Children) != 1 || tree[0].Children[0].Name != "rpc:direct" {
		t.Fatalf("discover children = %+v", tree[0].Children)
	}
	rpc := tree[0].Children[0]
	if len(rpc.Children) != 1 || rpc.Children[0].Name != "peer.dial" {
		t.Fatalf("rpc children = %+v", rpc.Children)
	}
	if rpc.Attrs["wallet"] != "wallet.a" || rpc.Attrs["found"] != "true" {
		t.Errorf("rpc attrs = %v", rpc.Attrs)
	}
	if len(rpc.Events) != 1 || rpc.Events[0].Msg != "remote query" {
		t.Errorf("rpc events = %v", rpc.Events)
	}
}

// TestCollectorTailSampling checks the retention rules: at 0%% head
// sampling ordinary traces are dropped but slow and erring ones are kept.
func TestCollectorTailSampling(t *testing.T) {
	reg := NewRegistry()
	o, col := newTestCollector(reg, 0, 50*time.Millisecond)

	fast := NewTraceID()
	o.StartSpan(fast, "op").End()
	if _, ok := col.Get(fast); ok {
		t.Error("fast clean trace retained at 0% sampling")
	}

	slow := NewTraceID()
	sp := o.StartSpan(slow, "op")
	sp.start = sp.start.Add(-time.Second) // backdate instead of sleeping
	sp.End()
	rec, ok := col.Get(slow)
	if !ok {
		t.Fatal("slow trace not retained")
	}
	if !rec.Slow {
		t.Error("slow trace not marked slow")
	}

	erred := NewTraceID()
	sp = o.StartSpan(erred, "op")
	sp.Fail(errTest)
	sp.End()
	rec, ok = col.Get(erred)
	if !ok {
		t.Fatal("erred trace not retained")
	}
	if rec.Err != "test failure" {
		t.Errorf("trace err = %q", rec.Err)
	}

	s := reg.Snapshot()
	if got := s.Counters["drbac_trace_completed_total"]; got != 3 {
		t.Errorf("completed = %d, want 3", got)
	}
	if got := s.Counters["drbac_trace_retained_total"]; got != 2 {
		t.Errorf("retained = %d, want 2", got)
	}
	if got := s.Counters["drbac_trace_sampled_out_total"]; got != 1 {
		t.Errorf("sampled out = %d, want 1", got)
	}
	if got := s.Counters["drbac_trace_slow_total"]; got != 1 {
		t.Errorf("slow = %d, want 1", got)
	}
	if got := s.Counters["drbac_trace_error_total"]; got != 1 {
		t.Errorf("error = %d, want 1", got)
	}
}

type testErr struct{}

func (testErr) Error() string { return "test failure" }

var errTest = testErr{}

// TestCollectorMergesSequentialRoots checks that a wallet serving several
// requests for one trace merges them into one retained record.
func TestCollectorMergesSequentialRoots(t *testing.T) {
	o, col := newTestCollector(NewRegistry(), 1.0, time.Hour)
	tid := NewTraceID()
	o.StartServerSpan(tid, "aaaa0001", "serve:query-direct", "subject", "Maria").End()
	o.StartServerSpan(tid, "aaaa0002", "serve:query-subject").End()
	rec, ok := col.Get(tid)
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("spans = %d, want 2 (merged)", len(rec.Spans))
	}
	for _, sp := range rec.Spans {
		if sp.ParentID == "" {
			t.Errorf("server span %q lost its remote parent", sp.Name)
		}
	}
}

// TestCollectorConcurrentRoots checks a trace with overlapping root spans
// finalizes only after the last root ends.
func TestCollectorConcurrentRoots(t *testing.T) {
	o, col := newTestCollector(NewRegistry(), 1.0, time.Hour)
	tid := NewTraceID()
	a := o.StartSpan(tid, "a")
	b := o.StartSpan(tid, "b")
	a.End()
	if _, ok := col.Get(tid); ok {
		t.Fatal("trace finalized while a root is still open")
	}
	b.End()
	if _, ok := col.Get(tid); !ok {
		t.Fatal("trace not finalized after last root ended")
	}
}

// TestCollectorRingEviction fills the ring past capacity and checks the
// oldest trace is evicted.
func TestCollectorRingEviction(t *testing.T) {
	reg := NewRegistry()
	o := New(nil, reg)
	col := NewCollector(reg, CollectorConfig{Capacity: 2, SampleRate: 1.0, SlowThreshold: time.Hour})
	o.SetCollector(col)
	ids := []string{NewTraceID(), NewTraceID(), NewTraceID()}
	for _, id := range ids {
		o.StartSpan(id, "op").End()
	}
	if _, ok := col.Get(ids[0]); ok {
		t.Error("oldest trace survived eviction")
	}
	for _, id := range ids[1:] {
		if _, ok := col.Get(id); !ok {
			t.Errorf("trace %s evicted early", id)
		}
	}
	if got := len(col.List(ListFilter{})); got != 2 {
		t.Errorf("list length = %d, want 2", got)
	}
}

// TestCollectorListFilters exercises the list-view filters.
func TestCollectorListFilters(t *testing.T) {
	o, col := newTestCollector(NewRegistry(), 1.0, 50*time.Millisecond)
	o.StartSpan(NewTraceID(), "fast").End()
	sp := o.StartSpan(NewTraceID(), "slowop")
	sp.start = sp.start.Add(-time.Second)
	sp.End()
	sp = o.StartSpan(NewTraceID(), "bad")
	sp.Fail(errTest)
	sp.End()

	if got := len(col.List(ListFilter{})); got != 3 {
		t.Fatalf("unfiltered = %d, want 3", got)
	}
	if l := col.List(ListFilter{OnlySlow: true}); len(l) != 1 || l[0].Root != "slowop" {
		t.Errorf("slow filter = %+v", l)
	}
	if l := col.List(ListFilter{OnlyErr: true}); len(l) != 1 || l[0].Root != "bad" {
		t.Errorf("err filter = %+v", l)
	}
	if l := col.List(ListFilter{Root: "fast"}); len(l) != 1 {
		t.Errorf("root filter = %+v", l)
	}
	if l := col.List(ListFilter{MinDur: 500 * time.Millisecond}); len(l) != 1 || l[0].Root != "slowop" {
		t.Errorf("min-dur filter = %+v", l)
	}
	if l := col.List(ListFilter{Limit: 1}); len(l) != 1 {
		t.Errorf("limit = %d, want 1", len(l))
	}
}

// TestTracesHandler drives the /debug/traces HTTP surface.
func TestTracesHandler(t *testing.T) {
	o, col := newTestCollector(NewRegistry(), 1.0, time.Hour)
	tid := NewTraceID()
	root := o.StartSpan(tid, "discover")
	root.StartChild("rpc:direct").End()
	root.End()

	srv := httptest.NewServer(TracesHandler(col))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces []TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Traces) != 1 || list.Traces[0].ID != tid || list.Traces[0].Spans != 2 {
		t.Fatalf("list = %+v", list.Traces)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/traces/" + tid)
	if err != nil {
		t.Fatal(err)
	}
	var tree struct {
		ID    string      `json:"id"`
		Spans []*SpanNode `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tree.ID != tid || len(tree.Spans) != 1 || len(tree.Spans[0].Children) != 1 {
		t.Fatalf("tree = %+v", tree)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/traces/deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown trace status = %d, want 404", resp.StatusCode)
	}
}

// TestHeadSampledDeterministic checks the sampling decision is a pure
// function of the trace ID.
func TestHeadSampledDeterministic(t *testing.T) {
	id := NewTraceID()
	for i := 0; i < 10; i++ {
		if headSampled(id, 0.5) != headSampled(id, 0.5) {
			t.Fatal("sampling decision not deterministic")
		}
	}
	if !headSampled(id, 1.0) {
		t.Error("rate 1.0 must sample everything")
	}
	if headSampled(id, 0) {
		t.Error("rate 0 must sample nothing")
	}
	kept := 0
	for i := 0; i < 1000; i++ {
		if headSampled(NewTraceID(), 0.5) {
			kept++
		}
	}
	if kept < 350 || kept > 650 {
		t.Errorf("rate 0.5 kept %d/1000, far from half", kept)
	}
}

// TestNewSpanID sanity-checks span ID shape and uniqueness.
func TestNewSpanID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewSpanID()
		if len(id) != 8 || strings.Trim(id, "0123456789abcdef") != "" {
			t.Fatalf("bad span id %q", id)
		}
		seen[id] = true
	}
	if len(seen) < 99 {
		t.Errorf("span ids not unique enough: %d/100", len(seen))
	}
}

// TestSpanContextPropagation checks Context/ContextWithSpan round-trips
// and the nil-span behavior.
func TestSpanContextPropagation(t *testing.T) {
	o, _ := newTestCollector(NewRegistry(), 1.0, time.Hour)
	sp := o.StartSpan(NewTraceID(), "op")
	tc := sp.Context()
	if tc.TraceID != sp.TraceID() || tc.SpanID != sp.ID() {
		t.Errorf("context = %+v, span = %s/%s", tc, sp.TraceID(), sp.ID())
	}
	ctx := ContextWithSpan(context.Background(), sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Error("span did not round-trip through context")
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Error("empty context yielded a span")
	}
	var nilSpan *Span
	if tc := nilSpan.Context(); tc != (TraceContext{}) {
		t.Errorf("nil span context = %+v", tc)
	}
	if child := nilSpan.StartChild("x"); child != nil {
		t.Error("nil span spawned a child")
	}
	sp.End()
}
