package obs

import (
	"encoding/json"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SpanEvent is one retained point-in-time occurrence inside a span.
type SpanEvent struct {
	Msg      string            `json:"msg"`
	OffsetUS int64             `json:"offsetUs"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// SpanRecord is one completed span as retained by the collector and as
// shipped over the wire by the trace request.
type SpanRecord struct {
	TraceID    string            `json:"traceId"`
	SpanID     string            `json:"spanId"`
	ParentID   string            `json:"parentId,omitempty"`
	Name       string            `json:"name"`
	Root       bool              `json:"root,omitempty"`
	Start      time.Time         `json:"start"`
	DurationUS int64             `json:"durationUs"`
	Err        string            `json:"err,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Events     []SpanEvent       `json:"events,omitempty"`
}

// TraceRecord is one retained completed trace: its spans plus the
// trace-level rollup the retention decision was made on.
type TraceRecord struct {
	ID             string       `json:"id"`
	Root           string       `json:"root"`
	Start          time.Time    `json:"start"`
	DurationUS     int64        `json:"durationUs"`
	Err            string       `json:"err,omitempty"`
	Slow           bool         `json:"slow,omitempty"`
	TruncatedSpans int          `json:"truncatedSpans,omitempty"`
	Spans          []SpanRecord `json:"spans"`
}

// TraceSummary is the list-view projection of a retained trace.
type TraceSummary struct {
	ID         string    `json:"id"`
	Root       string    `json:"root"`
	Start      time.Time `json:"start"`
	DurationUS int64     `json:"durationUs"`
	Err        string    `json:"err,omitempty"`
	Slow       bool      `json:"slow,omitempty"`
	Spans      int       `json:"spans"`
}

// CollectorConfig tunes the trace collector. Zero values take the listed
// defaults, except SampleRate: a zero rate genuinely means "retain only
// slow and erring traces" (tail sampling with 0% head sampling), so callers
// wanting everything must say 1.0.
type CollectorConfig struct {
	// Capacity is the number of completed traces retained in the ring
	// (default 256). The oldest retained trace is evicted on overflow.
	Capacity int
	// SlowThreshold marks a trace slow — always retained and surfaced by
	// the slow filter (default 250ms).
	SlowThreshold time.Duration
	// SampleRate is the fraction [0,1] of ordinary (fast, error-free)
	// traces retained, decided deterministically from the trace ID so all
	// wallets in a coalition keep the same traces.
	SampleRate float64
	// MaxSpansPerTrace bounds per-trace span retention (default 64); spans
	// beyond the cap are counted in TruncatedSpans.
	MaxSpansPerTrace int
	// MaxActive bounds concurrently assembling traces (default 1024);
	// beyond it new traces are not tracked.
	MaxActive int
}

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	if c.MaxSpansPerTrace <= 0 {
		c.MaxSpansPerTrace = 64
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 1024
	}
	return c
}

// activeTrace is a trace still assembling: spans accumulate until every
// open root span on this wallet has ended.
type activeTrace struct {
	openRoots int
	spans     []SpanRecord
	truncated int
}

// Collector assembles completed spans into traces and retains a bounded
// ring of them with tail-sampling rules: traces that erred or ran past the
// slow threshold are always kept; the rest are head-sampled by trace ID.
type Collector struct {
	cfg CollectorConfig

	mu     sync.Mutex
	active map[string]*activeTrace
	ring   []string // trace IDs in insertion order, ring-indexed by next
	next   int
	byID   map[string]*TraceRecord

	mCompleted  *Counter
	mRetained   *Counter
	mSampledOut *Counter
	mSlow       *Counter
	mErr        *Counter
	mDropped    *Counter
}

// NewCollector builds a collector and registers its metrics (reg may be
// nil).
func NewCollector(reg *Registry, cfg CollectorConfig) *Collector {
	c := &Collector{
		cfg:         cfg.withDefaults(),
		active:      make(map[string]*activeTrace),
		byID:        make(map[string]*TraceRecord),
		mCompleted:  reg.Counter("drbac_trace_completed_total"),
		mRetained:   reg.Counter("drbac_trace_retained_total"),
		mSampledOut: reg.Counter("drbac_trace_sampled_out_total"),
		mSlow:       reg.Counter("drbac_trace_slow_total"),
		mErr:        reg.Counter("drbac_trace_error_total"),
		mDropped:    reg.Counter("drbac_trace_dropped_spans_total"),
	}
	c.ring = make([]string, 0, c.cfg.Capacity)
	if reg != nil {
		reg.GaugeFunc("drbac_trace_active", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(c.active))
		})
		reg.GaugeFunc("drbac_trace_stored", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(c.byID))
		})
	}
	return c
}

// SlowThreshold returns the configured slow-trace threshold.
func (c *Collector) SlowThreshold() time.Duration {
	if c == nil {
		return 0
	}
	return c.cfg.SlowThreshold
}

// startRoot opens (or joins) an assembling trace and reports whether the
// collector is tracking it.
func (c *Collector) startRoot(traceID string) bool {
	if c == nil || traceID == "" {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	at := c.active[traceID]
	if at == nil {
		if len(c.active) >= c.cfg.MaxActive {
			return false
		}
		at = &activeTrace{}
		c.active[traceID] = at
	}
	at.openRoots++
	return true
}

// addSpan retains a completed span on its assembling trace. Spans for
// traces the collector is not tracking are dropped.
func (c *Collector) addSpan(rec SpanRecord) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	at := c.active[rec.TraceID]
	if at == nil {
		c.mDropped.Inc()
		return
	}
	if len(at.spans) >= c.cfg.MaxSpansPerTrace {
		at.truncated++
		c.mDropped.Inc()
		return
	}
	at.spans = append(at.spans, rec)
}

// endRoot closes one root span; when the last open root closes the trace
// finalizes and the retention decision is made.
func (c *Collector) endRoot(traceID string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	at := c.active[traceID]
	if at == nil {
		return
	}
	at.openRoots--
	if at.openRoots > 0 {
		return
	}
	delete(c.active, traceID)
	c.finalizeLocked(traceID, at)
}

func (c *Collector) finalizeLocked(traceID string, at *activeTrace) {
	c.mCompleted.Inc()
	if len(at.spans) == 0 {
		return
	}
	rec := &TraceRecord{ID: traceID, Spans: at.spans, TruncatedSpans: at.truncated}
	rollup(rec)
	rec.Slow = c.slow(rec)
	if rec.Slow {
		c.mSlow.Inc()
	}
	if rec.Err != "" {
		c.mErr.Inc()
	}
	if prev := c.byID[traceID]; prev != nil {
		// Later roots of an already-retained trace (a wallet serving
		// several requests for one discovery) merge into the stored
		// record instead of occupying another ring slot.
		merge(prev, rec, c.cfg.MaxSpansPerTrace)
		return
	}
	if !rec.Slow && rec.Err == "" && !headSampled(traceID, c.cfg.SampleRate) {
		c.mSampledOut.Inc()
		return
	}
	c.mRetained.Inc()
	if len(c.ring) < c.cfg.Capacity {
		c.ring = append(c.ring, traceID)
	} else {
		delete(c.byID, c.ring[c.next])
		c.ring[c.next] = traceID
		c.next = (c.next + 1) % c.cfg.Capacity
	}
	c.byID[traceID] = rec
}

// rollup derives the trace-level fields from the spans: start is the
// earliest span start, duration spans first start to last end, err is the
// first span error, slow compares duration to the threshold at finalize.
func rollup(rec *TraceRecord) {
	var end time.Time
	for i := range rec.Spans {
		sp := &rec.Spans[i]
		if rec.Start.IsZero() || sp.Start.Before(rec.Start) {
			rec.Start = sp.Start
			if sp.Root || rec.Root == "" {
				rec.Root = sp.Name
			}
		}
		if e := sp.Start.Add(time.Duration(sp.DurationUS) * time.Microsecond); e.After(end) {
			end = e
		}
		if rec.Err == "" && sp.Err != "" {
			rec.Err = sp.Err
		}
	}
	rec.DurationUS = end.Sub(rec.Start).Microseconds()
}

func (c *Collector) slow(rec *TraceRecord) bool {
	return time.Duration(rec.DurationUS)*time.Microsecond >= c.cfg.SlowThreshold
}

func merge(dst, src *TraceRecord, maxSpans int) {
	room := maxSpans - len(dst.Spans)
	if room < len(src.Spans) {
		dst.TruncatedSpans += len(src.Spans) - max(room, 0)
		if room <= 0 {
			src.Spans = nil
		} else {
			src.Spans = src.Spans[:room]
		}
	}
	dst.Spans = append(dst.Spans, src.Spans...)
	dst.TruncatedSpans += src.TruncatedSpans
	if dst.Err == "" {
		dst.Err = src.Err
	}
	dst.Slow = dst.Slow || src.Slow
	rollup(dst)
}

// headSampled decides retention for ordinary traces deterministically from
// the trace ID, so every wallet in a coalition keeps the same sample.
func headSampled(traceID string, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	h := fnv.New32a()
	h.Write([]byte(traceID))
	return float64(h.Sum32()) < rate*float64(1<<32)
}

// Get returns a copy of the retained trace with the given ID.
func (c *Collector) Get(id string) (TraceRecord, bool) {
	if c == nil {
		return TraceRecord{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rec := c.byID[id]
	if rec == nil {
		return TraceRecord{}, false
	}
	out := *rec
	out.Spans = append([]SpanRecord(nil), rec.Spans...)
	return out, true
}

// Spans returns the retained spans of a trace (nil when unknown).
func (c *Collector) Spans(id string) []SpanRecord {
	rec, ok := c.Get(id)
	if !ok {
		return nil
	}
	return rec.Spans
}

// ListFilter narrows List output; zero values mean "no constraint".
type ListFilter struct {
	OnlySlow bool
	OnlyErr  bool
	MinDur   time.Duration
	Root     string
	Limit    int
}

// List returns summaries of retained traces, newest first.
func (c *Collector) List(f ListFilter) []TraceSummary {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TraceSummary, 0, len(c.byID))
	for _, rec := range c.byID {
		if f.OnlySlow && !rec.Slow {
			continue
		}
		if f.OnlyErr && rec.Err == "" {
			continue
		}
		if f.MinDur > 0 && time.Duration(rec.DurationUS)*time.Microsecond < f.MinDur {
			continue
		}
		if f.Root != "" && rec.Root != f.Root {
			continue
		}
		out = append(out, TraceSummary{
			ID: rec.ID, Root: rec.Root, Start: rec.Start,
			DurationUS: rec.DurationUS, Err: rec.Err, Slow: rec.Slow,
			Spans: len(rec.Spans),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// SpanNode is a span plus its children, the JSON shape served for one
// trace.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode `json:"children,omitempty"`
}

// BuildSpanTree nests spans by parent ID. Spans whose parent is absent
// (true roots, and remote continuations whose parent lives on another
// wallet) surface at the top level, ordered by start time.
func BuildSpanTree(spans []SpanRecord) []*SpanNode {
	nodes := make(map[string]*SpanNode, len(spans))
	for _, sp := range spans {
		nodes[sp.SpanID] = &SpanNode{SpanRecord: sp}
	}
	var roots []*SpanNode
	for _, sp := range spans {
		n := nodes[sp.SpanID]
		if p := nodes[sp.ParentID]; sp.ParentID != "" && p != nil && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortNodes func(ns []*SpanNode)
	sortNodes = func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Start.Before(ns[j].Start) })
		for _, n := range ns {
			sortNodes(n.Children)
		}
	}
	sortNodes(roots)
	return roots
}

// TracesHandler serves the retained-trace debug surface:
//
//	GET <mount>          — summary list; filters: ?slow=1&err=1&min_ms=N&root=NAME&limit=N
//	GET <mount>/<id>     — one trace as a JSON span tree
//
// It expects to be mounted at /debug/traces (and /debug/traces/); col may
// be nil (everything 404s or lists empty).
func TracesHandler(col *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/traces"), "/")
		if id == "" {
			q := r.URL.Query()
			f := ListFilter{
				OnlySlow: q.Get("slow") == "1",
				OnlyErr:  q.Get("err") == "1",
				Root:     q.Get("root"),
			}
			if ms, err := strconv.Atoi(q.Get("min_ms")); err == nil && ms > 0 {
				f.MinDur = time.Duration(ms) * time.Millisecond
			}
			if n, err := strconv.Atoi(q.Get("limit")); err == nil && n > 0 {
				f.Limit = n
			}
			list := col.List(f)
			if list == nil {
				list = []TraceSummary{}
			}
			json.NewEncoder(w).Encode(map[string]any{"traces": list})
			return
		}
		rec, ok := col.Get(id)
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "trace not retained", "id": id})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"id":             rec.ID,
			"root":           rec.Root,
			"start":          rec.Start,
			"durationUs":     rec.DurationUS,
			"err":            rec.Err,
			"slow":           rec.Slow,
			"truncatedSpans": rec.TruncatedSpans,
			"spans":          BuildSpanTree(rec.Spans),
		})
	})
}
