// Package obs is the observability substrate every dRBAC layer reports
// into: a lightweight metrics registry (atomic counters, gauges, and
// latency histograms exportable as a JSON snapshot or Prometheus text), a
// log/slog-based structured-logging convention, and a span-style tracer
// whose trace IDs propagate over the wallet wire protocol so a multi-wallet
// chain discovery (§4.2.1) yields one coherent cross-wallet trace.
//
// Instruments are nil-receiver safe: a nil *Counter, *Gauge, *Histogram,
// *Obs, or *Span is a no-op, so uninstrumented components (tests,
// simulations) pay a single pointer test per event and no allocation.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up). Safe on a
// nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count. A nil counter reads zero.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta. Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level. A nil gauge reads zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default histogram bucket upper bounds, in seconds,
// spanning 10µs..2.5s — the range wallet operations (cache hit ≈ µs, cold
// graph search ≈ 100µs, cross-wallet discovery ≈ ms..s) actually occupy.
var DefBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5,
}

// Histogram is a fixed-bucket latency histogram (cumulative on export, like
// Prometheus classic histograms).
type Histogram struct {
	bounds  []float64      // sorted upper bounds; +Inf is implicit
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one measurement (in seconds). Safe on a nil receiver.
func (h *Histogram) Observe(seconds float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + seconds)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper bound in seconds;
	// math.Inf(1) marks the final catch-all bucket (serialized as the JSON
	// string "+Inf" would not round-trip, so it is omitted and implied).
	UpperBound float64 `json:"le"`
	// Count is the cumulative number of observations <= UpperBound.
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets = append(s.Buckets, BucketCount{UpperBound: b, Count: cum})
	}
	return s
}

// Snapshot is a point-in-time copy of every instrument in a registry. It is
// JSON-serializable and rides the wallet wire protocol's stats message.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Infos are constant labeled gauges (value always 1) — build/version
	// identity in the drbac_build_info style.
	Infos map[string]map[string]string `json:"infos,omitempty"`
}

// Registry is a concurrency-safe, name-keyed collection of instruments.
// Instruments are created on first use and live for the registry's
// lifetime; accessors are get-or-create and safe on a nil receiver (they
// then return nil, i.e. no-op instruments).
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
	infos      map[string]map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		hists:      make(map[string]*Histogram),
		infos:      make(map[string]map[string]string),
	}
}

// SetInfo registers a constant labeled gauge (exported with value 1, in
// the drbac_build_info style). Re-setting a name replaces its labels. Safe
// on a nil receiver.
func (r *Registry) SetInfo(name string, labels map[string]string) {
	if r == nil {
		return
	}
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.infos[name] = cp
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers fn as the named gauge's value source, evaluated at
// snapshot/export time. Re-registering a name replaces the previous
// function (a wallet rebuilt on the same registry takes the name over).
// Safe on a nil receiver.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (seconds) if needed; no buckets means DefBuckets. Buckets of
// an existing histogram are not changed.
func (r *Registry) Histogram(name string, buckets ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = newHistogram(buckets)
		r.hists[name] = h
	}
	return h
}

// Snapshot copies every instrument's current value. Gauge functions are
// evaluated inline (they may take locks of their owning component). A nil
// registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for n, fn := range r.gaugeFuncs {
		funcs[n] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	var infos map[string]map[string]string
	if len(r.infos) > 0 {
		infos = make(map[string]map[string]string, len(r.infos))
		for n, labels := range r.infos {
			cp := make(map[string]string, len(labels))
			for k, v := range labels {
				cp[k] = v
			}
			infos[n] = cp
		}
	}
	r.mu.RUnlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)+len(funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
		Infos:      infos,
	}
	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, fn := range funcs {
		s.Gauges[n] = fn()
	}
	for n, h := range hists {
		s.Histograms[n] = h.snapshot()
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), names sorted for deterministic output. Metrics
// with registered help text (see SetHelp) get a # HELP line before their
// # TYPE line, as promlint expects.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if err := writeHelp(w, name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := writeHelp(w, name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Infos) {
		if err := writeHelp(w, name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s 1\n", name, name, formatLabels(s.Infos[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if err := writeHelp(w, name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, h.Count, name, strconv.FormatFloat(h.Sum, 'g', -1, 64), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// writeHelp emits the # HELP line for name when help text is registered.
func writeHelp(w io.Writer, name string) error {
	h := helpFor(name)
	if h == "" {
		return nil
	}
	h = strings.ReplaceAll(strings.ReplaceAll(h, `\`, `\\`), "\n", `\n`)
	_, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h)
	return err
}

// formatLabels renders a label set as {k="v",...}, keys sorted.
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range sortedKeys(labels) {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MetricsHandler serves the registry in Prometheus text format — the
// drbacd debug listener mounts it at /metrics.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
