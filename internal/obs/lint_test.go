package obs

import (
	"strings"
	"testing"
)

// TestLintCleanExposition checks a well-formed registry export lints
// clean, including histograms and labeled info gauges.
func TestLintCleanExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("drbac_wallet_publish_total").Add(3)
	reg.Gauge("drbac_wallet_delegations").Set(2)
	h := reg.Histogram("drbac_wallet_query_seconds", 0.001, 0.1)
	h.Observe(0.0005)
	h.Observe(0.05)
	RegisterBuildInfo(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if problems := LintExposition([]byte(b.String())); len(problems) != 0 {
		t.Errorf("clean exposition flagged: %v", problems)
	}
}

func lintOf(t *testing.T, text string) []string {
	t.Helper()
	return LintExposition([]byte(text))
}

func wantProblem(t *testing.T, problems []string, substr string) {
	t.Helper()
	for _, p := range problems {
		if strings.Contains(p, substr) {
			return
		}
	}
	t.Errorf("no problem containing %q in %v", substr, problems)
}

// TestLintCatchesViolations feeds known-bad expositions and checks each
// rule fires.
func TestLintCatchesViolations(t *testing.T) {
	// Missing HELP.
	wantProblem(t, lintOf(t, "# TYPE x_total counter\nx_total 1\n"), "no HELP")

	// Missing TYPE.
	wantProblem(t, lintOf(t, "# HELP x_total ops\nx_total 1\n"), "no TYPE")

	// HELP after TYPE.
	wantProblem(t, lintOf(t,
		"# TYPE x_total counter\n# HELP x_total ops\nx_total 1\n"), "HELP must precede TYPE")

	// Counter not ending in _total.
	wantProblem(t, lintOf(t, "# HELP x ops\n# TYPE x counter\nx 1\n"), "should end in _total")

	// Gauge ending in _total.
	wantProblem(t, lintOf(t, "# HELP g_total g\n# TYPE g_total gauge\ng_total 1\n"), "must not end in _total")

	// Invalid metric name.
	wantProblem(t, lintOf(t, "# HELP 9bad x\n# TYPE 9bad gauge\n9bad 1\n"), "invalid metric name")

	// Invalid label name.
	wantProblem(t, lintOf(t,
		"# HELP ok_gauge x\n# TYPE ok_gauge gauge\nok_gauge{9bad=\"v\"} 1\n"), "invalid label name")

	// Unknown type.
	wantProblem(t, lintOf(t, "# HELP x y\n# TYPE x sparkline\nx 1\n"), "unknown TYPE")

	// Histogram: buckets not ascending.
	wantProblem(t, lintOf(t, `# HELP h seconds
# TYPE h histogram
h_bucket{le="0.1"} 1
h_bucket{le="0.01"} 2
h_bucket{le="+Inf"} 3
h_sum 1
h_count 3
`), "not strictly ascending")

	// Histogram: counts not cumulative.
	wantProblem(t, lintOf(t, `# HELP h seconds
# TYPE h histogram
h_bucket{le="0.01"} 5
h_bucket{le="0.1"} 2
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`), "not cumulative")

	// Histogram: missing +Inf bucket.
	wantProblem(t, lintOf(t, `# HELP h seconds
# TYPE h histogram
h_bucket{le="0.01"} 1
h_sum 1
h_count 1
`), "not +Inf")

	// Histogram: +Inf disagrees with _count.
	wantProblem(t, lintOf(t, `# HELP h seconds
# TYPE h histogram
h_bucket{le="0.01"} 1
h_bucket{le="+Inf"} 2
h_sum 1
h_count 3
`), "!= _count")

	// Metadata without samples.
	wantProblem(t, lintOf(t, "# HELP ghost x\n# TYPE ghost gauge\n"), "no samples")
}
