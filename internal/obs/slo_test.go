package obs

import (
	"strings"
	"testing"
	"time"
)

// TestSLOQuantilesAndBurn feeds a known latency distribution and checks
// the quantile gauges and burn accounting.
func TestSLOQuantilesAndBurn(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(reg, "query", 5*time.Millisecond, 0.99, 100)

	// 99 fast observations and 1 slow one: exactly at the 1% error budget.
	for i := 0; i < 99; i++ {
		s.Observe(time.Millisecond)
	}
	s.Observe(20 * time.Millisecond)

	snap := reg.Snapshot()
	if got := snap.Counters["drbac_slo_query_total"]; got != 100 {
		t.Errorf("total = %d, want 100", got)
	}
	if got := snap.Counters["drbac_slo_query_breaches_total"]; got != 1 {
		t.Errorf("breaches = %d, want 1", got)
	}
	if got := snap.Gauges["drbac_slo_query_p50_us"]; got != 1000 {
		t.Errorf("p50 = %dus, want 1000", got)
	}
	if got := snap.Gauges["drbac_slo_query_p99_us"]; got != 1000 {
		t.Errorf("p99 = %dus, want 1000 (99th of 100 sorted is still fast)", got)
	}
	if got := snap.Gauges["drbac_slo_query_p999_us"]; got != 20000 {
		t.Errorf("p99.9 = %dus, want 20000", got)
	}
	if got := snap.Gauges["drbac_slo_query_burn_pct"]; got != 100 {
		t.Errorf("burn = %d%%, want 100 (exactly at budget)", got)
	}

	// Ten more breaches push the p99 up and the burn rate over budget.
	for i := 0; i < 10; i++ {
		s.Observe(30 * time.Millisecond)
	}
	snap = reg.Snapshot()
	if got := snap.Gauges["drbac_slo_query_p99_us"]; got != 30000 {
		t.Errorf("p99 after breaches = %dus, want 30000", got)
	}
	if got := snap.Gauges["drbac_slo_query_burn_pct"]; got <= 100 {
		t.Errorf("burn = %d%%, want > 100", got)
	}
	if got := snap.Counters["drbac_slo_query_breaches_total"]; got != 11 {
		t.Errorf("breaches = %d, want 11", got)
	}
}

// TestSLOWindowSlides checks old observations fall out of the window.
func TestSLOWindowSlides(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(reg, "publish", time.Millisecond, 0.9, 4)
	for i := 0; i < 4; i++ {
		s.Observe(10 * time.Millisecond) // all breaching
	}
	if got := s.burnPct(); got != 1000 {
		t.Fatalf("burn = %d%%, want 1000 (window all breaches, 10%% budget)", got)
	}
	for i := 0; i < 4; i++ {
		s.Observe(time.Microsecond) // window refills clean
	}
	if got := s.burnPct(); got != 0 {
		t.Errorf("burn after clean refill = %d%%, want 0", got)
	}
	if got := s.quantileUS(0.5); got != 1 {
		t.Errorf("p50 = %dus, want 1", got)
	}
}

// TestSLONilAndResolution checks nil-safety and Obs registration.
func TestSLONilAndResolution(t *testing.T) {
	var s *SLO
	s.Observe(time.Second) // must not panic
	if s.Name() != "" || s.Threshold() != 0 {
		t.Error("nil SLO leaked values")
	}

	o := New(nil, NewRegistry())
	if o.SLO("query") != nil {
		t.Error("unregistered SLO resolved")
	}
	slo := NewSLO(o.Registry(), "query", 5*time.Millisecond, 0, 0)
	o.RegisterSLO(slo)
	if got := o.SLO("query"); got != slo {
		t.Error("registered SLO did not resolve")
	}
	if slo.Threshold() != 5*time.Millisecond {
		t.Error("threshold lost")
	}
	var nilObs *Obs
	nilObs.RegisterSLO(slo) // must not panic
	if nilObs.SLO("query") != nil {
		t.Error("nil obs resolved an SLO")
	}
}

// TestSLOExpositionLints checks the dynamically named SLO metrics pass the
// exposition lint (help registered, names valid).
func TestSLOExpositionLints(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(reg, "query", 5*time.Millisecond, 0.99, 16)
	s.Observe(time.Millisecond)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if problems := LintExposition([]byte(b.String())); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
}
