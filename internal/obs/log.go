package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
	}
}

// NewLogger builds a structured logger writing to w at the given level —
// JSON when jsonFormat is set (one object per line, machine-ingestable),
// logfmt-style text otherwise.
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// discardHandler drops every record (implemented locally so the module
// keeps building on Go toolchains predating slog.DiscardHandler).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

var discardLogger = slog.New(discardHandler{})

// DiscardLogger returns a logger that drops everything — the default for
// components constructed without observability.
func DiscardLogger() *slog.Logger { return discardLogger }
