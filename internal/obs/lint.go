package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus data-model name charsets.
var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// LintExposition checks a Prometheus text-format (0.0.4) exposition for
// promlint-style conformance and returns one message per problem (empty
// means clean):
//
//   - every metric family has # HELP and # TYPE lines, HELP first, both
//     before any sample
//   - metric and label names match the Prometheus charset
//   - counters end in _total; gauges and histograms do not
//   - histogram le buckets parse, ascend strictly, are cumulative
//     (non-decreasing counts), end in +Inf, and the +Inf count equals
//     the _count sample
func LintExposition(data []byte) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	type family struct {
		help      bool
		typ       string
		helpFirst bool
		samples   []expoSample
	}
	families := map[string]*family{}
	var order []string
	get := func(name string) *family {
		f := families[name]
		if f == nil {
			f = &family{}
			families[name] = f
			order = append(order, name)
		}
		return f
	}
	// base maps a sample name to its family name: histogram series use
	// the family's _bucket/_sum/_count suffixes.
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name {
				if f, ok := families[trimmed]; ok && f.typ == "histogram" {
					return trimmed
				}
			}
		}
		return name
	}

	for i, line := range strings.Split(string(data), "\n") {
		lno := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				addf("line %d: malformed comment %q", lno, line)
				continue
			}
			name := fields[2]
			if !metricNameRE.MatchString(name) {
				addf("line %d: invalid metric name %q", lno, name)
				continue
			}
			f := get(name)
			switch fields[1] {
			case "HELP":
				if f.help {
					addf("line %d: duplicate HELP for %q", lno, name)
				}
				if len(fields) < 4 || strings.TrimSpace(fields[3]) == "" {
					addf("line %d: empty HELP text for %q", lno, name)
				}
				f.help = true
				f.helpFirst = f.typ == "" && len(f.samples) == 0
			case "TYPE":
				if f.typ != "" {
					addf("line %d: duplicate TYPE for %q", lno, name)
				}
				if len(f.samples) > 0 {
					addf("line %d: TYPE for %q after its samples", lno, name)
				}
				typ := strings.TrimSpace(fields[3])
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addf("line %d: unknown TYPE %q for %q", lno, typ, name)
				}
				f.typ = typ
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			addf("line %d: %v", lno, err)
			continue
		}
		if !metricNameRE.MatchString(s.name) {
			addf("line %d: invalid metric name %q", lno, s.name)
			continue
		}
		for _, l := range s.labels {
			if !labelNameRE.MatchString(l.key) {
				addf("line %d: invalid label name %q on %q", lno, l.key, s.name)
			}
		}
		get(base(s.name)).samples = append(families[base(s.name)].samples, s)
	}

	sort.Strings(order)
	for _, name := range order {
		f := families[name]
		if len(f.samples) == 0 {
			if f.typ != "" || f.help {
				addf("metric %q has metadata but no samples", name)
			}
			continue
		}
		if !f.help {
			addf("metric %q has no HELP line", name)
		}
		if f.typ == "" {
			addf("metric %q has no TYPE line", name)
		} else if f.help && !f.helpFirst {
			addf("metric %q: HELP must precede TYPE", name)
		}
		switch f.typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				addf("counter %q should end in _total", name)
			}
		case "gauge":
			if strings.HasSuffix(name, "_total") {
				addf("gauge %q must not end in _total", name)
			}
		case "histogram":
			problems = append(problems, lintHistogram(name, f.samples)...)
		}
	}
	return problems
}

type expoLabel struct{ key, value string }

type expoSample struct {
	name   string
	labels []expoLabel
	value  float64
}

// parseSample parses one `name{k="v",...} value` exposition line. Label
// values may contain \", \\ and \n escapes.
func parseSample(line string) (expoSample, error) {
	var s expoSample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 {
		s.name = rest[:i]
		rest = rest[i:]
	} else {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuotes := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQuotes && rest[i] == '\\':
				i++
			case rest[i] == '"':
				inQuotes = !inQuotes
			case !inQuotes && rest[i] == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		if s.labels, err = parseLabels(rest[1:end]); err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", rest)
	}
	s.value = v
	return s, nil
}

func parseLabels(in string) ([]expoLabel, error) {
	var out []expoLabel
	for in != "" {
		eq := strings.Index(in, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label without value")
		}
		key := in[:eq]
		in = in[eq+1:]
		if !strings.HasPrefix(in, `"`) {
			return nil, fmt.Errorf("unquoted label value")
		}
		end := -1
		for i := 1; i < len(in); i++ {
			if in[i] == '\\' {
				i++
				continue
			}
			if in[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value")
		}
		val, err := strconv.Unquote(in[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad label value %s", in[:end+1])
		}
		out = append(out, expoLabel{key: key, value: val})
		in = strings.TrimPrefix(in[end+1:], ",")
	}
	return out, nil
}

// lintHistogram validates the bucket ladder of one histogram family.
func lintHistogram(name string, samples []expoSample) []string {
	var problems []string
	type bucket struct {
		le    float64
		count float64
	}
	var buckets []bucket
	var count float64
	hasCount := false
	for _, s := range samples {
		switch s.name {
		case name + "_bucket":
			leStr := ""
			for _, l := range s.labels {
				if l.key == "le" {
					leStr = l.value
				}
			}
			if leStr == "" {
				problems = append(problems, fmt.Sprintf("histogram %q: bucket without le label", name))
				continue
			}
			le, err := parseLE(leStr)
			if err != nil {
				problems = append(problems, fmt.Sprintf("histogram %q: bad le %q", name, leStr))
				continue
			}
			buckets = append(buckets, bucket{le: le, count: s.value})
		case name + "_count":
			count = s.value
			hasCount = true
		}
	}
	if len(buckets) == 0 {
		return append(problems, fmt.Sprintf("histogram %q has no buckets", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].le <= buckets[i-1].le {
			problems = append(problems, fmt.Sprintf("histogram %q: le buckets not strictly ascending at %g", name, buckets[i].le))
		}
		if buckets[i].count < buckets[i-1].count {
			problems = append(problems, fmt.Sprintf("histogram %q: bucket counts not cumulative at le=%g", name, buckets[i].le))
		}
	}
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.le, 1) {
		problems = append(problems, fmt.Sprintf("histogram %q: last bucket is not +Inf", name))
	} else if hasCount && last.count != count {
		problems = append(problems, fmt.Sprintf("histogram %q: +Inf bucket %g != _count %g", name, last.count, count))
	}
	if !hasCount {
		problems = append(problems, fmt.Sprintf("histogram %q has no _count sample", name))
	}
	return problems
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}
