package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"regexp"
	"testing"
)

func TestNewTraceID(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if !re.MatchString(id) {
			t.Fatalf("malformed trace id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

// TestSpanLogging asserts every span record carries the trace ID and span
// name, and that End reports a duration.
func TestSpanLogging(t *testing.T) {
	var buf bytes.Buffer
	o := New(NewLogger(&buf, slog.LevelDebug, true), nil)
	sp := o.StartSpan("abc123", "discover", "object", "BigISP.member")
	sp.Event("remote query", "wallet", "w1")
	sp.End("found", true)

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("got %d records, want 3", len(lines))
	}
	wantMsgs := []string{"span start", "remote query", "span end"}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec["trace"] != "abc123" {
			t.Errorf("record %d trace = %v", i, rec["trace"])
		}
		if rec["span"] != "discover" {
			t.Errorf("record %d span = %v", i, rec["span"])
		}
		if rec["msg"] != wantMsgs[i] {
			t.Errorf("record %d msg = %v, want %q", i, rec["msg"], wantMsgs[i])
		}
	}
	var end map[string]any
	_ = json.Unmarshal(lines[2], &end)
	if _, ok := end["duration_ms"]; !ok {
		t.Error("span end missing duration_ms")
	}
	if end["found"] != true {
		t.Error("span end missing caller attrs")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "WARNING": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestDiscardLogger(t *testing.T) {
	l := DiscardLogger()
	l.Info("nothing")
	if l.Enabled(nil, slog.LevelError) { //nolint:staticcheck // nil ctx fine for handler
		t.Error("discard logger claims enabled")
	}
}
