package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// helpText maps metric names to their # HELP strings. The exposition
// conformance test (cmd/drbacd) fails when a daemon-exported metric has no
// entry, so adding a metric means adding its help here (or via SetHelp for
// dynamically named metrics like the per-SLO gauges).
var (
	helpMu   sync.RWMutex
	helpText = map[string]string{
		// wallet
		"drbac_wallet_publish_total":        "Delegations accepted by Publish.",
		"drbac_wallet_publish_errors_total": "Publish attempts rejected (validation, revocation, store errors).",
		"drbac_wallet_revocations_total":    "Revocations applied.",
		"drbac_wallet_revoke_errors_total":  "Revoke attempts rejected.",
		"drbac_wallet_query_direct_total":   "Direct subject-to-object proof queries.",
		"drbac_wallet_query_subject_total":  "Subject-rooted proof enumeration queries.",
		"drbac_wallet_query_object_total":   "Object-rooted proof enumeration queries.",
		"drbac_wallet_query_noproof_total":  "Queries that found no proof.",
		"drbac_wallet_replay_skipped_total": "Changelog replay records skipped as already applied.",
		"drbac_search_nodes_total":          "Graph-search nodes expanded across proof searches.",
		"drbac_search_edges_total":          "Graph-search edges traversed across proof searches.",
		"drbac_search_pruned_total":         "Graph-search branches pruned (depth/constraint bounds).",
		"drbac_subs_events_total":           "Subscription events pushed to watchers.",
		"drbac_wallet_query_seconds":        "Proof-query latency in seconds.",
		"drbac_wallet_delegations":          "Live delegations resident in the wallet.",
		"drbac_wallet_revoked":              "Revoked delegation IDs tracked.",
		"drbac_wallet_ttl_tracked":          "Delegations tracked for TTL expiry.",
		"drbac_wallet_watches":              "Active subscription watches.",
		"drbac_wallet_cache_hits":           "Proof-cache hits.",
		"drbac_wallet_cache_misses":         "Proof-cache misses.",
		"drbac_wallet_cache_invalidations":  "Proof-cache entries invalidated by mutations.",
		"drbac_wallet_cache_entries":        "Proof-cache resident entries.",
		"drbac_wallet_cache_negatives":      "Proof-cache resident negative (no-proof) entries.",
		"drbac_sigcache_hits":               "Signature-verification cache hits.",
		"drbac_sigcache_misses":             "Signature-verification cache misses.",
		"drbac_sigcache_evictions":          "Signature-verification cache evictions.",
		"drbac_sigcache_size":               "Signature-verification cache resident entries.",

		// discovery
		"drbac_discovery_total":                     "Chain discoveries attempted.",
		"drbac_discovery_found_total":               "Chain discoveries that produced a proof.",
		"drbac_discovery_rounds_total":              "Search rounds executed across discoveries.",
		"drbac_discovery_remote_queries_total":      "Remote wallet queries issued by discovery.",
		"drbac_discovery_delegations_fetched_total": "Delegations fetched from remote wallets during discovery.",
		"drbac_discovery_wallets_contacted_total":   "Distinct remote wallets contacted during discovery.",
		"drbac_discovery_seconds":                   "End-to-end chain-discovery latency in seconds.",

		// remote server / client
		"drbac_server_requests_total":           "Wire requests served.",
		"drbac_server_errors_total":             "Wire requests answered with an error.",
		"drbac_server_noproof_total":            "Wire queries answered no-proof.",
		"drbac_server_pushes_total":             "Subscription pushes sent.",
		"drbac_server_push_errors_total":        "Subscription pushes that failed to send.",
		"drbac_server_connections_total":        "Connections accepted.",
		"drbac_server_binary_connections_total": "Accepted connections that negotiated the binary wire codec.",
		"drbac_server_active_connections":       "Connections currently open.",
		"drbac_server_request_seconds":          "Server-side request handling latency in seconds.",
		"drbac_remote_push_decode_errors_total": "Subscription pushes the client failed to decode.",

		// peer pool
		"drbac_peer_dials_total":         "Peer dial attempts.",
		"drbac_peer_dial_failures_total": "Peer dial attempts that failed.",
		"drbac_peer_fastfails_total":     "Peer requests fast-failed by an open circuit breaker.",
		"drbac_peer_evictions_total":     "Pooled peer connections evicted.",
		"drbac_peer_circuit_opens_total": "Peer circuit breakers opened.",
		"drbac_peer_connections":         "Pooled peer connections currently held.",

		// replica
		"drbac_replica_events_applied_total": "Changelog events applied by the follower.",
		"drbac_replica_resyncs_total":        "Full resyncs triggered by sequence gaps.",
		"drbac_replica_events_skipped_total": "Changelog events skipped as already applied.",
		"drbac_replica_segment_syncs_total":  "Bootstraps served from shipped log segments.",
		"drbac_replica_applied_seq":          "Highest changelog sequence applied.",
		"drbac_replica_lag_seconds":          "Seconds since the follower last applied an event.",
		"drbac_replica_connected":            "1 when the follower's subscription stream is connected.",

		// proxy
		"drbac_proxy_hits_total":  "Proxy queries answered from the local wallet or front cache.",
		"drbac_proxy_pulls_total": "Proxy queries that pulled proofs from the upstream wallet.",

		// cluster
		"drbac_cluster_map_adoptions_total": "Newer shard maps adopted (resharding epoch bumps).",
		"drbac_cluster_redirects_total":     "Shard redirects issued (member) or followed (router).",
		"drbac_cluster_routes_total":        "Mutations routed to (router) or served by (member) a shard.",
		"drbac_cluster_scatter_total":       "Cross-shard scatter-gather operations.",
		"drbac_cluster_epoch":               "Installed shard map epoch.",
		"drbac_cluster_shards":              "Shards in the installed map.",

		// logstore
		"drbac_logstore_appends_total":                 "Records appended to the log store.",
		"drbac_logstore_seals_total":                   "Segments sealed.",
		"drbac_logstore_compactions_total":             "Segment compactions completed.",
		"drbac_logstore_compact_reclaimed_bytes_total": "Bytes reclaimed by compaction.",
		"drbac_logstore_commit_batches_total":          "Group-commit fsync batches flushed.",
		"drbac_logstore_commit_batch_records_total":    "Records flushed across commit batches.",
		"drbac_logstore_segments":                      "Log segments on disk.",
		"drbac_logstore_active_segment_bytes":          "Bytes written to the active segment.",
		"drbac_logstore_recovery_truncations_total":    "Torn tails truncated during recovery.",

		// trace collector
		"drbac_trace_completed_total":     "Traces fully assembled (every root span ended).",
		"drbac_trace_retained_total":      "Completed traces retained in the ring buffer.",
		"drbac_trace_sampled_out_total":   "Completed ordinary traces dropped by head sampling.",
		"drbac_trace_slow_total":          "Completed traces over the slow threshold.",
		"drbac_trace_error_total":         "Completed traces containing a failed span.",
		"drbac_trace_dropped_spans_total": "Spans dropped (untracked trace or per-trace span cap).",
		"drbac_trace_active":              "Traces currently assembling.",
		"drbac_trace_stored":              "Traces currently retained.",

		// identity
		"drbac_build_info": "Build identity; value is always 1, labels carry the version.",
	}
)

// SetHelp registers (or replaces) the # HELP text for a metric name. Used
// by components that mint metric names at runtime (for example per-SLO
// quantile gauges).
func SetHelp(name, help string) {
	helpMu.Lock()
	defer helpMu.Unlock()
	helpText[name] = help
}

// helpFor returns the registered help text for name, "" when absent.
func helpFor(name string) string {
	helpMu.RLock()
	defer helpMu.RUnlock()
	return helpText[name]
}

// RegisterBuildInfo registers the drbac_build_info constant gauge on reg
// with version and Go-toolchain labels, and returns the labels. Call once
// at daemon startup.
func RegisterBuildInfo(reg *Registry) map[string]string {
	labels := map[string]string{
		"version":   "devel",
		"goversion": runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			labels["version"] = v
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				labels["revision"] = s.Value[:12]
			}
		}
	}
	reg.SetInfo("drbac_build_info", labels)
	return labels
}
