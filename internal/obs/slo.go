package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// SLO tracks one latency objective ("p99 of query under 5ms") as a
// windowed quantile tracker plus error-budget accounting:
//
//	drbac_slo_<name>_p50_us / _p99_us / _p999_us   windowed latency quantiles
//	drbac_slo_<name>_total                         observations
//	drbac_slo_<name>_breaches_total                observations over threshold
//	drbac_slo_<name>_burn_pct                      windowed burn rate: the
//	    fraction of the window over threshold divided by the error budget
//	    (1 - objective), as a percentage. 100 means burning exactly at
//	    budget; above 100 the objective is being missed.
//
// A nil *SLO is safe to Observe (no-op), so components resolve their SLOs
// once and call unconditionally.
type SLO struct {
	name      string
	threshold time.Duration
	objective float64

	total    *Counter
	breaches *Counter

	mu       sync.Mutex
	window   []float64 // seconds, ring
	breachW  []bool
	next     int
	filled   int
	breached int // breaches currently inside the window
}

// NewSLO registers a latency SLO on reg. objective <= 0 defaults to 0.99
// and window <= 0 to 1024 observations. The quantile gauges report in
// microseconds (the registry's gauges are integral).
func NewSLO(reg *Registry, name string, threshold time.Duration, objective float64, window int) *SLO {
	if objective <= 0 || objective >= 1 {
		objective = 0.99
	}
	if window <= 0 {
		window = 1024
	}
	s := &SLO{
		name:      name,
		threshold: threshold,
		objective: objective,
		window:    make([]float64, window),
		breachW:   make([]bool, window),
		total:     reg.Counter("drbac_slo_" + name + "_total"),
		breaches:  reg.Counter("drbac_slo_" + name + "_breaches_total"),
	}
	prefix := "drbac_slo_" + name
	SetHelp(prefix+"_total", fmt.Sprintf("Operations observed against the %s latency SLO.", name))
	SetHelp(prefix+"_breaches_total", fmt.Sprintf("Operations over the %s SLO threshold (%s).", name, threshold))
	SetHelp(prefix+"_p50_us", fmt.Sprintf("Windowed p50 %s latency in microseconds.", name))
	SetHelp(prefix+"_p99_us", fmt.Sprintf("Windowed p99 %s latency in microseconds.", name))
	SetHelp(prefix+"_p999_us", fmt.Sprintf("Windowed p99.9 %s latency in microseconds.", name))
	SetHelp(prefix+"_burn_pct", fmt.Sprintf("Windowed %s error-budget burn rate in percent (100 = at budget).", name))
	if reg != nil {
		reg.GaugeFunc(prefix+"_p50_us", func() int64 { return s.quantileUS(0.5) })
		reg.GaugeFunc(prefix+"_p99_us", func() int64 { return s.quantileUS(0.99) })
		reg.GaugeFunc(prefix+"_p999_us", func() int64 { return s.quantileUS(0.999) })
		reg.GaugeFunc(prefix+"_burn_pct", func() int64 { return s.burnPct() })
	}
	return s
}

// Name returns the SLO's name ("" on nil).
func (s *SLO) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Threshold returns the SLO latency threshold (0 on nil).
func (s *SLO) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return s.threshold
}

// Observe records one operation's latency.
func (s *SLO) Observe(d time.Duration) {
	if s == nil {
		return
	}
	s.total.Inc()
	breach := d > s.threshold
	if breach {
		s.breaches.Inc()
	}
	s.mu.Lock()
	if s.filled == len(s.window) && s.breachW[s.next] {
		s.breached--
	}
	s.window[s.next] = d.Seconds()
	s.breachW[s.next] = breach
	if breach {
		s.breached++
	}
	s.next = (s.next + 1) % len(s.window)
	if s.filled < len(s.window) {
		s.filled++
	}
	s.mu.Unlock()
}

// quantileUS returns the q-quantile of the window in microseconds
// (nearest-rank on a sorted copy), 0 while empty.
func (s *SLO) quantileUS(q float64) int64 {
	s.mu.Lock()
	n := s.filled
	buf := make([]float64, n)
	copy(buf, s.window[:n])
	s.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Float64s(buf)
	i := int(q*float64(n)+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return int64(buf[i] * 1e6)
}

// burnPct returns the windowed burn rate as a percentage of the error
// budget: breachFraction / (1 - objective) * 100.
func (s *SLO) burnPct() int64 {
	s.mu.Lock()
	n, b := s.filled, s.breached
	s.mu.Unlock()
	if n == 0 {
		return 0
	}
	budget := 1 - s.objective
	return int64(math.Round(float64(b) / float64(n) / budget * 100))
}
