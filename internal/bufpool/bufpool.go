// Package bufpool provides the process-wide frame buffer pool shared by the
// transport framing layer and the wire codecs. Frames on the hot paths
// (queries, proofs, publishes, pushes) are built in and read into pooled
// buffers, so steady-state traffic stops paying one allocation per frame.
//
// Ownership discipline: a buffer obtained from Get is owned by the caller
// until it passes the buffer to Put, after which the caller must not touch
// it again. Put guards against pool poisoning: buffers are length-reset to
// zero and oversized backing arrays are dropped instead of re-pooled, so one
// multi-megabyte proof frame cannot pin its memory for the life of the
// process.
package bufpool

import (
	"sync"
	"sync/atomic"
)

// MaxRetain caps the capacity of buffers kept by the pool. A returned buffer
// whose backing array outgrew it (a jumbo sync snapshot, a near-MaxFrame
// proof) is discarded so the pool holds only steady-state-sized memory.
const MaxRetain = 64 << 10

// minAlloc is the starting capacity for fresh buffers; typical envelopes
// (queries, acks, small proofs) fit without growing.
const minAlloc = 1 << 10

var pool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, minAlloc)
		news.Add(1)
		return &buffer{b: b}
	},
}

// buffer wraps the slice so the pool stores a pointer-shaped value (storing
// bare slices makes sync.Pool allocate an interface header per Put).
type buffer struct{ b []byte }

var (
	gets     atomic.Uint64
	puts     atomic.Uint64
	discards atomic.Uint64
	news     atomic.Uint64
)

// Get returns a zero-length buffer with capacity at least n, ready to be
// appended to or resliced up to n.
func Get(n int) []byte {
	gets.Add(1)
	bp := pool.Get().(*buffer)
	b := bp.b
	bp.b = nil
	putWrapper(bp)
	if cap(b) < n {
		// The pooled array is too small for this frame; allocate exactly
		// what is needed and let the small one go back on the next Put.
		return make([]byte, 0, n)
	}
	return b[:0]
}

// wrapperPool recycles the pointer wrappers themselves so Get/Put do not
// allocate a wrapper per call.
var wrapperPool = sync.Pool{New: func() any { return new(buffer) }}

func putWrapper(bp *buffer) { wrapperPool.Put(bp) }

// Put returns b's backing array to the pool. Safe for buffers that did not
// come from Get. The buffer is length-reset before pooling, and backing
// arrays larger than MaxRetain are dropped — the misuse guard that keeps an
// oversized frame from living in the pool forever.
func Put(b []byte) {
	if b == nil {
		return
	}
	puts.Add(1)
	if cap(b) > MaxRetain || cap(b) == 0 {
		discards.Add(1)
		return
	}
	bp := wrapperPool.Get().(*buffer)
	bp.b = b[:0]
	pool.Put(bp)
}

// Stats is a snapshot of the pool's traffic counters.
type Stats struct {
	// Gets counts buffers handed out.
	Gets uint64 `json:"gets"`
	// Puts counts buffers offered back.
	Puts uint64 `json:"puts"`
	// Discards counts offered buffers dropped by the retention guard.
	Discards uint64 `json:"discards"`
	// News counts fresh allocations the pool had to make (pool misses).
	News uint64 `json:"news"`
}

// Snapshot reads the current counters.
func Snapshot() Stats {
	return Stats{
		Gets:     gets.Load(),
		Puts:     puts.Load(),
		Discards: discards.Load(),
		News:     news.Load(),
	}
}
