package bufpool

import "testing"

func TestGetPutRoundTrip(t *testing.T) {
	b := Get(100)
	if len(b) != 0 || cap(b) < 100 {
		t.Fatalf("Get(100) = len %d cap %d", len(b), cap(b))
	}
	b = append(b, "hello"...)
	Put(b)
	c := Get(10)
	if len(c) != 0 {
		t.Fatalf("recycled buffer not length-reset: len %d", len(c))
	}
}

func TestPutNilAndForeignBuffers(t *testing.T) {
	Put(nil)                    // no-op
	Put(make([]byte, 0))        // zero-cap: discarded, not pooled
	Put(make([]byte, 32))       // foreign but well-sized: accepted
	Put(make([]byte, 0, 1<<20)) // oversized: discarded
}

// The misuse guard: a jumbo frame (a 15MiB proof, say) passed back to the
// pool must be dropped, not retained, so one outsized message cannot pin
// megabytes for the life of the process — and steady-state traffic afterwards
// still recycles normally.
func TestOversizedFrameDiscardedThenSteadyStateRecycles(t *testing.T) {
	const jumbo = 15 << 20
	before := Snapshot()
	b := Get(jumbo)
	if cap(b) < jumbo {
		t.Fatalf("Get(%d) returned cap %d", jumbo, cap(b))
	}
	b = b[:jumbo]
	b[0], b[jumbo-1] = 1, 2
	Put(b)
	after := Snapshot()
	if got := after.Discards - before.Discards; got != 1 {
		t.Fatalf("jumbo Put recorded %d discards, want 1", got)
	}

	// Steady state afterwards: small buffers keep flowing, and nothing the
	// pool hands out is jumbo-sized (the big array really was dropped).
	for i := 0; i < 64; i++ {
		s := Get(512)
		if cap(s) > MaxRetain {
			t.Fatalf("pool handed out a retained jumbo buffer: cap %d", cap(s))
		}
		s = append(s, byte(i))
		Put(s)
	}
	final := Snapshot()
	if final.Discards != after.Discards {
		t.Fatalf("steady-state puts were discarded: %d -> %d", after.Discards, final.Discards)
	}
	if final.Gets-after.Gets != 64 || final.Puts-after.Puts != 64 {
		t.Fatalf("counter drift: %+v -> %+v", after, final)
	}
}

func TestGetGrowsBeyondPooledCapacity(t *testing.T) {
	Put(make([]byte, 0, minAlloc)) // seed a small buffer
	b := Get(MaxRetain * 2)
	if cap(b) < MaxRetain*2 {
		t.Fatalf("Get did not honor requested capacity: cap %d", cap(b))
	}
}
