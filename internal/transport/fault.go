package transport

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks failures produced by the fault-injection layer so tests
// can tell deliberate chaos from genuine bugs.
var ErrInjected = fmt.Errorf("transport: injected fault")

// Fault describes the failure behavior applied to connections to one address.
// The zero value injects nothing.
type Fault struct {
	// RefuseDial makes Dial fail immediately with ErrInjected.
	RefuseDial bool
	// DialDelay is slept (under the dial context) before connecting.
	DialDelay time.Duration
	// FrameDelay is slept after every Recv, delaying delivery to the
	// reader. Sends stay fast so a ctx-aware caller blocked on the answer —
	// not the send — is what cancellation must unwind.
	FrameDelay time.Duration
	// DropSends silently discards outgoing frames: Send reports success but
	// nothing reaches the peer. Models a one-way partition.
	DropSends bool
	// FailAfterFrames, when > 0, breaks the connection (both directions)
	// after that many frames total (sends + receives) have crossed it.
	FailAfterFrames int64
}

// Faults is a mutable, concurrency-safe plan mapping address -> Fault. Tests
// flip entries while connections are live to model a flapping peer; changes
// to DropSends/FrameDelay take effect on in-flight connections, while
// RefuseDial/DialDelay apply at the next dial.
type Faults struct {
	mu    sync.Mutex
	rules map[string]Fault
}

// NewFaults returns an empty plan (no faults injected anywhere).
func NewFaults() *Faults {
	return &Faults{rules: make(map[string]Fault)}
}

// Set installs the fault rule for addr, replacing any previous rule.
func (f *Faults) Set(addr string, rule Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules[addr] = rule
}

// Clear removes the rule for addr, healing the address for future dials and
// in-flight connection behavior.
func (f *Faults) Clear(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.rules, addr)
}

// Get returns the current rule for addr (zero value if none).
func (f *Faults) Get(addr string) Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rules[addr]
}

// FaultDialer wraps an inner Dialer and applies the Plan's rules per target
// address: dial-time faults before delegating, and a frame-level wrapper
// around every connection it returns.
type FaultDialer struct {
	Inner Dialer
	Plan  *Faults
}

var _ Dialer = (*FaultDialer)(nil)

// Dial applies dial-time faults for addr, then delegates to the inner dialer
// and wraps the resulting connection for frame-level injection.
func (d *FaultDialer) Dial(ctx context.Context, addr string) (Conn, error) {
	rule := d.Plan.Get(addr)
	if rule.RefuseDial {
		return nil, fmt.Errorf("dial %s: %w: refused", addr, ErrInjected)
	}
	if rule.DialDelay > 0 {
		select {
		case <-time.After(rule.DialDelay):
		case <-ctx.Done():
			return nil, fmt.Errorf("dial %s: %w", addr, ctx.Err())
		}
	}
	conn, err := d.Inner.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: conn, plan: d.Plan, addr: addr}, nil
}

// faultConn applies per-frame faults on top of an authenticated Conn. The
// frame counter covers both directions so FailAfterFrames models a link that
// dies after a fixed amount of traffic regardless of who is talking.
type faultConn struct {
	Conn
	plan   *Faults
	addr   string
	frames atomic.Int64
	broken atomic.Bool
}

func (c *faultConn) countFrame(rule Fault) error {
	if rule.FailAfterFrames <= 0 {
		return nil
	}
	if c.frames.Add(1) > rule.FailAfterFrames {
		if c.broken.CompareAndSwap(false, true) {
			_ = c.Conn.Close()
		}
		return fmt.Errorf("%w: connection broke after %d frames", ErrInjected, rule.FailAfterFrames)
	}
	return nil
}

func (c *faultConn) Send(payload []byte) error {
	rule := c.plan.Get(c.addr)
	if c.broken.Load() {
		return fmt.Errorf("%w: connection broken", ErrInjected)
	}
	if err := c.countFrame(rule); err != nil {
		return err
	}
	if rule.DropSends {
		return nil // swallowed: the caller believes it was delivered
	}
	return c.Conn.Send(payload)
}

func (c *faultConn) Recv() ([]byte, error) {
	p, err := c.Conn.Recv()
	if err != nil {
		return nil, err
	}
	rule := c.plan.Get(c.addr)
	if rule.FrameDelay > 0 {
		time.Sleep(rule.FrameDelay)
	}
	if err := c.countFrame(rule); err != nil {
		return nil, err
	}
	return p, nil
}
