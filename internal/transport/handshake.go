package transport

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"fmt"

	"drbac/internal/core"
)

// The handshake authenticates both peers: each side sends a hello carrying
// its public identity and a fresh nonce, then proves key possession by
// signing a transcript that binds both nonces and its side of the
// conversation. Signing the side label prevents reflection attacks; signing
// both nonces prevents replay.

const (
	handshakeContext = "drbac-transport-v1"
	sideClient       = "client"
	sideServer       = "server"
	nonceLen         = 32
)

type helloMsg struct {
	Name  string `json:"name"`
	Key   []byte `json:"key"`
	Nonce []byte `json:"nonce"`
	// Codecs advertises the wire codecs this endpoint speaks, preference
	// ordered. Absent on peers that predate negotiation — they are treated
	// as JSON-only, which every endpoint speaks, so mixed-version
	// coalitions keep working.
	Codecs []string `json:"codecs,omitempty"`
}

type authMsg struct {
	Sig []byte `json:"sig"`
}

// handshake runs the mutual authentication protocol over fc and returns the
// authenticated connection: the peer's verified identity plus the wire codec
// both sides agreed on. The codec advertisement rides in the hello and is
// not part of the signed transcript — frames carry no integrity protection
// after the handshake either, and keeping the transcript fixed preserves
// interoperability with pre-negotiation builds.
func handshake(fc frameConn, id *core.Identity, side string, pol CodecPolicy) (*authedConn, error) {
	nonce := make([]byte, nonceLen)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("handshake nonce: %w", err)
	}
	offer := pol.advertised()
	hello := helloMsg{Name: id.Name(), Key: id.Entity().Key, Nonce: nonce, Codecs: offer}
	raw, err := json.Marshal(hello)
	if err != nil {
		return nil, err
	}
	if err := fc.sendFrame(raw); err != nil {
		return nil, fmt.Errorf("handshake send hello: %w", err)
	}
	peerRaw, err := fc.recvFrame()
	if err != nil {
		return nil, fmt.Errorf("handshake recv hello: %w", err)
	}
	var peerHello helloMsg
	if err := json.Unmarshal(peerRaw, &peerHello); err != nil {
		return nil, fmt.Errorf("%w: bad hello: %v", ErrHandshake, err)
	}
	if len(peerHello.Key) != ed25519.PublicKeySize || len(peerHello.Nonce) != nonceLen {
		return nil, fmt.Errorf("%w: malformed hello", ErrHandshake)
	}
	peer := core.Entity{Name: peerHello.Name, Key: peerHello.Key}

	// Prove possession of our key over the joint transcript.
	sig := id.SignBytes(transcript(side, nonce, peerHello.Nonce))
	authRaw, err := json.Marshal(authMsg{Sig: sig})
	if err != nil {
		return nil, err
	}
	if err := fc.sendFrame(authRaw); err != nil {
		return nil, fmt.Errorf("handshake send auth: %w", err)
	}
	peerAuthRaw, err := fc.recvFrame()
	if err != nil {
		return nil, fmt.Errorf("handshake recv auth: %w", err)
	}
	var peerAuth authMsg
	if err := json.Unmarshal(peerAuthRaw, &peerAuth); err != nil {
		return nil, fmt.Errorf("%w: bad auth: %v", ErrHandshake, err)
	}
	peerSide := sideServer
	if side == sideServer {
		peerSide = sideClient
	}
	if !core.VerifyBytes(peer, transcript(peerSide, peerHello.Nonce, nonce), peerAuth.Sig) {
		return nil, fmt.Errorf("%w: peer %s failed proof of possession", ErrHandshake, peer)
	}
	codec := negotiateCodec(offer, peerHello.Codecs)
	if pol.Require != "" && codec != pol.Require {
		return nil, fmt.Errorf("%w: peer %s does not speak the required %q wire codec (negotiated %q)",
			ErrHandshake, peer, pol.Require, codec)
	}
	return &authedConn{fc: fc, peer: peer, codec: codec}, nil
}

// handshakeCtx runs the handshake under ctx: cancellation closes the frame
// conn, which unblocks the in-flight frame reads, so a dial never outlives
// its caller's deadline. On any failure the conn is closed before returning.
func handshakeCtx(ctx context.Context, fc frameConn, id *core.Identity, side string, pol CodecPolicy) (*authedConn, error) {
	if err := ctx.Err(); err != nil {
		_ = fc.close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	type outcome struct {
		conn *authedConn
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		conn, err := handshake(fc, id, side, pol)
		done <- outcome{conn, err}
	}()
	select {
	case out := <-done:
		if out.err != nil {
			_ = fc.close()
		}
		return out.conn, out.err
	case <-ctx.Done():
		_ = fc.close()
		<-done // the closed conn fails the pending frame I/O promptly
		return nil, fmt.Errorf("transport: handshake: %w", ctx.Err())
	}
}

// transcript builds the bytes a side signs: context, side label, its own
// nonce, then the peer's nonce.
func transcript(side string, own, peer []byte) []byte {
	var b bytes.Buffer
	b.WriteString(handshakeContext)
	b.WriteByte(0)
	b.WriteString(side)
	b.WriteByte(0)
	b.Write(own)
	b.Write(peer)
	return b.Bytes()
}

// authedConn wraps a frameConn after a successful handshake.
type authedConn struct {
	fc    frameConn
	peer  core.Entity
	codec string
}

var _ Conn = (*authedConn)(nil)

func (c *authedConn) Send(payload []byte) error { return c.fc.sendFrame(payload) }
func (c *authedConn) Recv() ([]byte, error)     { return c.fc.recvFrame() }
func (c *authedConn) Peer() core.Entity         { return c.peer }
func (c *authedConn) Codec() string             { return c.codec }
func (c *authedConn) Close() error              { return c.fc.close() }
