package transport

import (
	"fmt"
	"strings"
)

// Wire codec names. The handshake hello advertises the codecs an endpoint
// speaks; both sides then deterministically agree on one for the life of the
// connection. JSON is the protocol baseline: every endpoint speaks it, so it
// is never required in an advertisement and is the fallback whenever the two
// sides share nothing better. Peers that predate negotiation advertise
// nothing and are treated as JSON-only.
const (
	// CodecJSON is the original JSON envelope encoding — the universal
	// fallback every endpoint understands.
	CodecJSON = "json"
	// CodecBinary is the length-prefixed binary envelope encoding
	// (internal/wire's binary codec).
	CodecBinary = "binary"
)

// defaultAdvertise is what a zero-valued CodecPolicy offers: everything this
// build speaks, preferring binary.
var defaultAdvertise = []string{CodecBinary, CodecJSON}

// CodecPolicy is one endpoint's wire-codec stance, configured per listener
// or dialer. The zero value negotiates automatically: advertise every codec
// this build supports and accept whatever negotiation lands on.
type CodecPolicy struct {
	// Advertise lists the codecs offered in the handshake hello. Nil
	// advertises every supported codec; an explicit list restricts the
	// offer (e.g. []string{CodecJSON} forces plain JSON). Unknown names are
	// carried verbatim — the peer ignores what it does not speak.
	Advertise []string
	// Require, when non-empty, fails the handshake unless negotiation
	// lands on exactly this codec — the fleet-enforcement knob behind
	// `drbacd -wire=binary`.
	Require string
}

// advertised resolves the policy's hello offer.
func (p CodecPolicy) advertised() []string {
	if p.Advertise == nil {
		return defaultAdvertise
	}
	return p.Advertise
}

// ParseWireMode maps a `-wire` flag value to a codec policy:
//
//	auto    advertise binary+json, accept the negotiated outcome (default)
//	json    speak only JSON (also what pre-negotiation peers get)
//	binary  advertise binary and refuse the connection unless the peer
//	        negotiates it
func ParseWireMode(mode string) (CodecPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(mode)) {
	case "", "auto":
		return CodecPolicy{}, nil
	case "json":
		return CodecPolicy{Advertise: []string{CodecJSON}}, nil
	case "binary":
		return CodecPolicy{Require: CodecBinary}, nil
	default:
		return CodecPolicy{}, fmt.Errorf("unknown wire mode %q (want auto, json, or binary)", mode)
	}
}

// negotiateCodec picks the connection codec from the two advertisements:
// binary wins iff both sides offered it, otherwise the JSON baseline.
// Unknown codec names on either side are ignored, so future codecs degrade
// gracefully against this build.
func negotiateCodec(local, peer []string) string {
	if contains(local, CodecBinary) && contains(peer, CodecBinary) {
		return CodecBinary
	}
	return CodecJSON
}

func contains(list []string, name string) bool {
	for _, s := range list {
		if s == name {
			return true
		}
	}
	return false
}
