package transport

import (
	"context"
	"fmt"
	"net"
	"sync"

	"drbac/internal/core"
)

// tcpFrameConn adapts a net.Conn to the frame substrate. Send and Recv are
// each safe for one concurrent caller; the remote layer serializes writes.
type tcpFrameConn struct {
	conn net.Conn

	sendMu sync.Mutex
	recvMu sync.Mutex
}

func (c *tcpFrameConn) sendFrame(p []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return writeFrame(c.conn, p)
}

func (c *tcpFrameConn) recvFrame() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	return readFrame(c.conn)
}

func (c *tcpFrameConn) close() error { return c.conn.Close() }

// TCPListener accepts authenticated dRBAC connections on a TCP socket.
type TCPListener struct {
	// Codec is this endpoint's wire-codec policy. Set it before the first
	// Accept; the zero value negotiates automatically (binary preferred,
	// JSON fallback).
	Codec CodecPolicy

	id *core.Identity
	ln net.Listener
}

var _ Listener = (*TCPListener)(nil)

// ListenTCP starts listening on addr (e.g. "127.0.0.1:0") as identity id.
func ListenTCP(addr string, id *core.Identity) (*TCPListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	return &TCPListener{id: id, ln: ln}, nil
}

// Accept waits for a connection and completes the server-side handshake.
func (l *TCPListener) Accept() (Conn, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	fc := &tcpFrameConn{conn: conn}
	ac, err := handshake(fc, l.id, sideServer, l.Codec)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	return ac, nil
}

// Close stops the listener.
func (l *TCPListener) Close() error { return l.ln.Close() }

// Addr returns the bound address.
func (l *TCPListener) Addr() string { return l.ln.Addr().String() }

// TCPDialer opens authenticated TCP connections as a fixed identity.
type TCPDialer struct {
	// Identity authenticates the dialing side.
	Identity *core.Identity
	// Codec is this endpoint's wire-codec policy; the zero value
	// negotiates automatically (binary preferred, JSON fallback).
	Codec CodecPolicy
}

var _ Dialer = (*TCPDialer)(nil)

// Dial connects to addr and completes the client-side handshake. Both the
// TCP connect and the handshake abort when ctx is canceled or its deadline
// passes.
func (d *TCPDialer) Dial(ctx context.Context, addr string) (Conn, error) {
	var nd net.Dialer
	conn, err := nd.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	fc := &tcpFrameConn{conn: conn}
	ac, err := handshakeCtx(ctx, fc, d.Identity, sideClient, d.Codec)
	if err != nil {
		return nil, err
	}
	return ac, nil
}
