package transport

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseWireMode(t *testing.T) {
	cases := []struct {
		mode string
		want CodecPolicy
	}{
		{"", CodecPolicy{}},
		{"auto", CodecPolicy{}},
		{"AUTO", CodecPolicy{}},
		{" json ", CodecPolicy{Advertise: []string{CodecJSON}}},
		{"binary", CodecPolicy{Require: CodecBinary}},
	}
	for _, c := range cases {
		got, err := ParseWireMode(c.mode)
		if err != nil {
			t.Errorf("ParseWireMode(%q): %v", c.mode, err)
			continue
		}
		if got.Require != c.want.Require || len(got.Advertise) != len(c.want.Advertise) {
			t.Errorf("ParseWireMode(%q) = %+v, want %+v", c.mode, got, c.want)
		}
	}
	if _, err := ParseWireMode("msgpack"); err == nil {
		t.Error("unknown wire mode accepted")
	}
}

func TestNegotiateCodec(t *testing.T) {
	bin := []string{CodecBinary, CodecJSON}
	jsn := []string{CodecJSON}
	cases := []struct {
		name        string
		local, peer []string
		want        string
	}{
		{"both binary", bin, bin, CodecBinary},
		{"local json-only", jsn, bin, CodecJSON},
		{"peer json-only", bin, jsn, CodecJSON},
		{"legacy peer (no advertisement)", bin, nil, CodecJSON},
		{"unknown names ignored", []string{"zstd-frames", CodecBinary}, bin, CodecBinary},
		{"only unknown names", []string{"zstd-frames"}, bin, CodecJSON},
	}
	for _, c := range cases {
		if got := negotiateCodec(c.local, c.peer); got != c.want {
			t.Errorf("%s: negotiated %q, want %q", c.name, got, c.want)
		}
	}
}

// dialPair connects a client and server over a fresh mem network with the
// given policies and returns both authenticated ends.
func dialPair(t *testing.T, serverPol, clientPol CodecPolicy) (server, client Conn) {
	t.Helper()
	n := NewMemNetwork()
	srv := mkIdentity(t, "server", 50)
	cli := mkIdentity(t, "client", 51)
	ln, err := n.ListenCodec("w", srv, serverPol)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	connCh := make(chan Conn, 1)
	errCh := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		connCh <- c
	}()
	c, err := n.DialerCodec(cli, clientPol).Dial(context.Background(), "w")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	select {
	case s := <-connCh:
		t.Cleanup(func() { s.Close() })
		return s, c
	case err := <-errCh:
		t.Fatalf("accept: %v", err)
	case <-time.After(2 * time.Second):
		t.Fatal("accept timed out")
	}
	return nil, nil
}

// Both sides of a connection must land on the same codec, and an unknown
// advertisement entry must not derail negotiation.
func TestHandshakeNegotiationAgreesBothEnds(t *testing.T) {
	cases := []struct {
		name             string
		serverP, clientP CodecPolicy
		want             string
	}{
		{"auto-auto", CodecPolicy{}, CodecPolicy{}, CodecBinary},
		{"json-only server downgrades", CodecPolicy{Advertise: []string{CodecJSON}}, CodecPolicy{}, CodecJSON},
		{"json-only client downgrades", CodecPolicy{}, CodecPolicy{Advertise: []string{CodecJSON}}, CodecJSON},
		{"unknown codec ignored", CodecPolicy{}, CodecPolicy{Advertise: []string{"zstd-frames", CodecBinary, CodecJSON}}, CodecBinary},
		{"only unknown falls back to json", CodecPolicy{}, CodecPolicy{Advertise: []string{"zstd-frames"}}, CodecJSON},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, cl := dialPair(t, c.serverP, c.clientP)
			if s.Codec() != c.want || cl.Codec() != c.want {
				t.Errorf("negotiated server=%q client=%q, want %q on both",
					s.Codec(), cl.Codec(), c.want)
			}
		})
	}
}

// A dialer that requires binary must refuse a JSON-only server with a
// handshake error that names the codec, not hang or silently downgrade.
func TestHandshakeRequireBinaryFailsAgainstJSONPeer(t *testing.T) {
	n := NewMemNetwork()
	srv := mkIdentity(t, "server", 52)
	cli := mkIdentity(t, "client", 53)
	ln, err := n.ListenCodec("w", srv, CodecPolicy{Advertise: []string{CodecJSON}})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			if _, err := ln.Accept(); err != nil {
				return
			}
		}
	}()
	d := n.DialerCodec(cli, CodecPolicy{Require: CodecBinary})
	_, err = d.Dial(context.Background(), "w")
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("dial error = %v, want ErrHandshake", err)
	}
	if !strings.Contains(err.Error(), "binary") {
		t.Errorf("error does not name the required codec: %v", err)
	}
}

// The server-side Require knob refuses JSON-only clients at Accept.
func TestHandshakeServerRequireBinaryRefusesJSONClient(t *testing.T) {
	n := NewMemNetwork()
	srv := mkIdentity(t, "server", 54)
	cli := mkIdentity(t, "client", 55)
	ln, err := n.ListenCodec("w", srv, CodecPolicy{Require: CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acceptErr := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		acceptErr <- err
	}()
	// The client side fails too (its peer hangs up), in either order.
	_, _ = n.DialerCodec(cli, CodecPolicy{Advertise: []string{CodecJSON}}).
		Dial(context.Background(), "w")
	select {
	case err := <-acceptErr:
		if !errors.Is(err, ErrHandshake) {
			t.Fatalf("accept error = %v, want ErrHandshake", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("accept did not reject the JSON-only client")
	}
}

// A legacy peer whose hello carries no codec advertisement lands on JSON:
// mixed-version coalitions keep working. Driven by hand so the hello really
// has no Codecs field, exactly like a pre-negotiation build.
func TestHandshakeLegacyPeerDowngradesToJSON(t *testing.T) {
	n := NewMemNetwork()
	srv := mkIdentity(t, "server", 56)
	legacy := mkIdentity(t, "legacy", 57)
	a, b := newMemPair(n)
	type result struct {
		conn *authedConn
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		conn, err := handshake(a, srv, sideServer, CodecPolicy{})
		resCh <- result{conn, err}
	}()

	// Legacy client: hello with no Codecs field, then a valid possession proof.
	nonce := make([]byte, nonceLen)
	hello, _ := json.Marshal(helloMsg{Name: legacy.Name(), Key: legacy.Entity().Key, Nonce: nonce})
	if err := b.sendFrame(hello); err != nil {
		t.Fatal(err)
	}
	peerRaw, err := b.recvFrame()
	if err != nil {
		t.Fatal(err)
	}
	var peerHello helloMsg
	if err := json.Unmarshal(peerRaw, &peerHello); err != nil {
		t.Fatal(err)
	}
	sig := legacy.SignBytes(transcript(sideClient, nonce, peerHello.Nonce))
	auth, _ := json.Marshal(authMsg{Sig: sig})
	if err := b.sendFrame(auth); err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = b.recvFrame() }() // drain the server's auth

	select {
	case res := <-resCh:
		if res.err != nil {
			t.Fatalf("handshake with legacy peer failed: %v", res.err)
		}
		if got := res.conn.Codec(); got != CodecJSON {
			t.Errorf("negotiated %q with a legacy peer, want %q", got, CodecJSON)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handshake with legacy peer wedged")
	}
}

// Frames at exactly MaxFrame pass over a binary-negotiated connection;
// one byte more is refused by the sender before anything hits the wire.
func TestMaxFrameBoundaryOnBinaryConnection(t *testing.T) {
	s, c := dialPair(t, CodecPolicy{}, CodecPolicy{})
	if c.Codec() != CodecBinary {
		t.Fatalf("negotiated %q, want binary", c.Codec())
	}
	big := make([]byte, MaxFrame)
	big[0], big[len(big)-1] = 0xD7, 0xEE
	done := make(chan []byte, 1)
	go func() {
		got, err := s.Recv()
		if err != nil {
			done <- nil
			return
		}
		done <- got
	}()
	if err := c.Send(big); err != nil {
		t.Fatalf("send of MaxFrame bytes failed: %v", err)
	}
	select {
	case got := <-done:
		if len(got) != MaxFrame || got[0] != 0xD7 || got[len(got)-1] != 0xEE {
			t.Fatalf("MaxFrame payload corrupted: len=%d", len(got))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("MaxFrame payload never arrived")
	}
	if err := c.Send(make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("frame one byte over MaxFrame accepted")
	}
}
