package transport

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drbac/internal/bufpool"
	"drbac/internal/core"
)

// MemNetwork is an in-process network of authenticated connections used by
// tests, examples, and the simulation harness. It runs the same handshake
// and framing as TCP and additionally accounts messages and bytes so the
// revocation and discovery experiments can report network cost.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener

	// Latency, if nonzero, delays every frame delivery (one-way).
	Latency time.Duration

	messages atomic.Int64
	bytes    atomic.Int64
}

// NetStats is a snapshot of network-wide traffic counters.
type NetStats struct {
	// Messages counts frames delivered (handshake frames included).
	Messages int64
	// Bytes counts frame payload bytes delivered.
	Bytes int64
}

// NewMemNetwork returns an empty in-process network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

// Stats returns the current traffic counters.
func (n *MemNetwork) Stats() NetStats {
	return NetStats{Messages: n.messages.Load(), Bytes: n.bytes.Load()}
}

// ResetStats zeroes the traffic counters.
func (n *MemNetwork) ResetStats() {
	n.messages.Store(0)
	n.bytes.Store(0)
}

func (n *MemNetwork) account(frame []byte) {
	n.messages.Add(1)
	n.bytes.Add(int64(len(frame)))
}

// Listen registers a listener at addr operating as identity id with the
// automatic codec policy.
func (n *MemNetwork) Listen(addr string, id *core.Identity) (Listener, error) {
	return n.ListenCodec(addr, id, CodecPolicy{})
}

// ListenCodec is Listen with an explicit wire-codec policy — how tests build
// mixed-codec coalitions on one in-memory network.
func (n *MemNetwork) ListenCodec(addr string, id *core.Identity, pol CodecPolicy) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, taken := n.listeners[addr]; taken {
		return nil, fmt.Errorf("mem listen %s: address in use", addr)
	}
	l := &memListener{
		net:     n,
		id:      id,
		pol:     pol,
		addr:    addr,
		pending: make(chan *memFrameConn),
		done:    make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dialer returns a Dialer that connects within this network as identity id
// with the automatic codec policy.
func (n *MemNetwork) Dialer(id *core.Identity) Dialer {
	return n.DialerCodec(id, CodecPolicy{})
}

// DialerCodec is Dialer with an explicit wire-codec policy.
func (n *MemNetwork) DialerCodec(id *core.Identity, pol CodecPolicy) Dialer {
	return &memDialer{net: n, id: id, pol: pol}
}

type memDialer struct {
	net *MemNetwork
	id  *core.Identity
	pol CodecPolicy
}

var _ Dialer = (*memDialer)(nil)

func (d *memDialer) Dial(ctx context.Context, addr string) (Conn, error) {
	d.net.mu.Lock()
	l := d.net.listeners[addr]
	d.net.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("mem dial %s: connection refused", addr)
	}
	clientEnd, serverEnd := newMemPair(d.net)
	select {
	case l.pending <- serverEnd:
	case <-l.done:
		return nil, fmt.Errorf("mem dial %s: %w", addr, ErrClosed)
	case <-ctx.Done():
		_ = clientEnd.close()
		return nil, fmt.Errorf("mem dial %s: %w", addr, ctx.Err())
	}
	ac, err := handshakeCtx(ctx, clientEnd, d.id, sideClient, d.pol)
	if err != nil {
		return nil, err
	}
	return ac, nil
}

type memListener struct {
	net     *MemNetwork
	id      *core.Identity
	pol     CodecPolicy
	addr    string
	pending chan *memFrameConn
	done    chan struct{}
	once    sync.Once
}

var _ Listener = (*memListener)(nil)

func (l *memListener) Accept() (Conn, error) {
	select {
	case fc := <-l.pending:
		ac, err := handshake(fc, l.id, sideServer, l.pol)
		if err != nil {
			_ = fc.close()
			return nil, err
		}
		return ac, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }

// memFrameConn is one end of an in-process frame pipe.
type memFrameConn struct {
	net  *MemNetwork
	in   <-chan []byte
	out  chan<- []byte
	done chan struct{}
	once *sync.Once
}

// newMemPair builds a connected pair of frame conns. The per-direction
// buffer decouples asynchronous notification pushes from the request/
// response rhythm; a full buffer applies backpressure rather than dropping.
func newMemPair(n *MemNetwork) (a, b *memFrameConn) {
	const mailbox = 256
	ab := make(chan []byte, mailbox)
	ba := make(chan []byte, mailbox)
	done := make(chan struct{})
	var once sync.Once
	a = &memFrameConn{net: n, in: ba, out: ab, done: done, once: &once}
	b = &memFrameConn{net: n, in: ab, out: ba, done: done, once: &once}
	return a, b
}

func (c *memFrameConn) sendFrame(p []byte) error {
	if len(p) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(p))
	}
	// Copy into a pooled buffer: the sender is free to recycle p the moment
	// sendFrame returns, and the receiver owns (and may re-pool) cp.
	cp := bufpool.Get(len(p))[:len(p)]
	copy(cp, p)
	if c.net.Latency > 0 {
		time.Sleep(c.net.Latency)
	}
	select {
	case c.out <- cp:
		c.net.account(cp)
		return nil
	case <-c.done:
		return ErrClosed
	}
}

func (c *memFrameConn) recvFrame() ([]byte, error) {
	select {
	case p := <-c.in:
		return p, nil
	case <-c.done:
		// Drain anything already delivered before the close.
		select {
		case p := <-c.in:
			return p, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *memFrameConn) close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}
