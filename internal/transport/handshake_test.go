package transport

import (
	"context"
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"
)

// A peer that advertises one identity's key but signs with another's private
// key must fail proof of possession.
func TestHandshakeRejectsWrongPeerKey(t *testing.T) {
	n := NewMemNetwork()
	honest := mkIdentity(t, "honest", 30)
	claimed := mkIdentity(t, "claimed", 31) // key the attacker advertises
	attacker := mkIdentity(t, "attacker", 32)

	a, b := newMemPair(n)
	errCh := make(chan error, 1)
	go func() {
		_, err := handshake(a, honest, sideServer, CodecPolicy{})
		errCh <- err
	}()

	// Attacker side, by hand: send hello claiming `claimed`'s key, then sign
	// the transcript with `attacker`'s key.
	nonce := make([]byte, nonceLen)
	hello, _ := json.Marshal(helloMsg{Name: "claimed", Key: claimed.Entity().Key, Nonce: nonce})
	if err := b.sendFrame(hello); err != nil {
		t.Fatal(err)
	}
	peerRaw, err := b.recvFrame()
	if err != nil {
		t.Fatal(err)
	}
	var peerHello helloMsg
	if err := json.Unmarshal(peerRaw, &peerHello); err != nil {
		t.Fatal(err)
	}
	sig := attacker.SignBytes(transcript(sideClient, nonce, peerHello.Nonce))
	auth, _ := json.Marshal(authMsg{Sig: sig})
	if err := b.sendFrame(auth); err != nil {
		t.Fatal(err)
	}
	// Drain the server's auth frame so its send cannot block.
	go func() { _, _ = b.recvFrame() }()

	select {
	case err := <-errCh:
		if !errors.Is(err, ErrHandshake) {
			t.Fatalf("handshake error = %v, want ErrHandshake", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handshake did not reject wrong peer key")
	}
}

// A hello with a short key or nonce is rejected as malformed.
func TestHandshakeRejectsMalformedHello(t *testing.T) {
	n := NewMemNetwork()
	honest := mkIdentity(t, "honest", 33)
	a, b := newMemPair(n)
	errCh := make(chan error, 1)
	go func() {
		_, err := handshake(a, honest, sideServer, CodecPolicy{})
		errCh <- err
	}()
	hello, _ := json.Marshal(helloMsg{Name: "x", Key: []byte{1, 2, 3}, Nonce: make([]byte, nonceLen)})
	if err := b.sendFrame(hello); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrHandshake) {
			t.Fatalf("handshake error = %v, want ErrHandshake", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handshake did not reject malformed hello")
	}
	if len(make([]byte, ed25519.PublicKeySize)) == 0 { // keep the import honest
		t.Fatal("unreachable")
	}
}

// A truncated handshake frame — length prefix promising more bytes than ever
// arrive — must fail the accept, not wedge it.
func TestHandshakeTruncatedFrame(t *testing.T) {
	srv := mkIdentity(t, "server", 34)
	ln, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acceptErr := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		acceptErr <- err
	}()
	raw, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Promise 100 bytes, deliver 3, hang up.
	if _, err := raw.Write([]byte{0, 0, 0, 100, 'a', 'b', 'c'}); err != nil {
		t.Fatal(err)
	}
	_ = raw.Close()
	select {
	case err := <-acceptErr:
		if err == nil {
			t.Fatal("truncated handshake frame accepted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept wedged on truncated handshake frame")
	}
}

// Dialing an address whose listener has closed fails promptly.
func TestDialClosedListener(t *testing.T) {
	srv := mkIdentity(t, "server", 35)
	cli := mkIdentity(t, "client", 36)
	ln, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	d := &TCPDialer{Identity: cli}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := d.Dial(ctx, addr); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}

	// Same for the in-memory network.
	n := NewMemNetwork()
	mln, err := n.Listen("gone", srv)
	if err != nil {
		t.Fatal(err)
	}
	_ = mln.Close()
	if _, err := n.Dialer(cli).Dial(context.Background(), "gone"); err == nil {
		t.Fatal("mem dial to closed listener succeeded")
	}
}

// A canceled context aborts a dial whose handshake never completes: the
// listener accepts the TCP connection via net.Listener but nobody runs the
// server side of the handshake, so the client blocks until ctx fires.
func TestDialContextCancelDuringHandshake(t *testing.T) {
	rawLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rawLn.Close()
	go func() {
		conn, err := rawLn.Accept()
		if err == nil {
			// Hold the conn open without speaking: the client's handshake
			// blocks on recvFrame until its context cancels.
			defer conn.Close()
			time.Sleep(3 * time.Second)
		}
	}()
	cli := mkIdentity(t, "client", 37)
	d := &TCPDialer{Identity: cli}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = d.Dial(ctx, rawLn.Addr().String())
	if err == nil {
		t.Fatal("dial succeeded against a mute server")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dial error = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dial took %v, should abort promptly on ctx", elapsed)
	}
}

// A context that is already canceled fails the mem dial without connecting.
func TestMemDialPreCanceledContext(t *testing.T) {
	n := NewMemNetwork()
	srv := mkIdentity(t, "server", 38)
	cli := mkIdentity(t, "client", 39)
	ln, err := n.Listen("w", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	go func() { _, _ = ln.Accept() }()
	if _, err := n.Dialer(cli).Dial(ctx, "w"); !errors.Is(err, context.Canceled) {
		t.Fatalf("dial error = %v, want context.Canceled", err)
	}
}

func TestFaultDialerRefuseAndHeal(t *testing.T) {
	n := NewMemNetwork()
	srv := mkIdentity(t, "server", 40)
	cli := mkIdentity(t, "client", 41)
	ln, err := n.Listen("w", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			if _, err := ln.Accept(); err != nil {
				return
			}
		}
	}()

	plan := NewFaults()
	d := &FaultDialer{Inner: n.Dialer(cli), Plan: plan}

	plan.Set("w", Fault{RefuseDial: true})
	if _, err := d.Dial(context.Background(), "w"); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial error = %v, want ErrInjected", err)
	}
	plan.Clear("w")
	conn, err := d.Dial(context.Background(), "w")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	conn.Close()
}

func TestFaultDialerDialDelayHonorsContext(t *testing.T) {
	n := NewMemNetwork()
	cli := mkIdentity(t, "client", 42)
	plan := NewFaults()
	plan.Set("slow", Fault{DialDelay: 5 * time.Second})
	d := &FaultDialer{Inner: n.Dialer(cli), Plan: plan}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := d.Dial(ctx, "slow"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dial error = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("delayed dial did not abort on ctx")
	}
}

func TestFaultConnFailAfterFrames(t *testing.T) {
	n := NewMemNetwork()
	srv := mkIdentity(t, "server", 43)
	cli := mkIdentity(t, "client", 44)
	ln, err := n.Listen("w", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	plan := NewFaults()
	plan.Set("w", Fault{FailAfterFrames: 2})
	d := &FaultDialer{Inner: n.Dialer(cli), Plan: plan}
	conn, err := d.Dial(context.Background(), "w")
	if err != nil {
		t.Fatal(err)
	}
	server := <-connCh
	defer server.Close()

	if err := conn.Send([]byte("one")); err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	if err := conn.Send([]byte("two")); err != nil {
		t.Fatalf("frame 2: %v", err)
	}
	if err := conn.Send([]byte("three")); !errors.Is(err, ErrInjected) {
		t.Fatalf("frame 3 error = %v, want ErrInjected", err)
	}
	// The break closes the underlying conn: the peer notices.
	if _, err := server.Recv(); err == nil {
		// first two frames may still be buffered; drain them
		_, _ = server.Recv()
		if _, err := server.Recv(); err == nil {
			t.Fatal("peer did not observe broken connection")
		}
	}
}

func TestFaultConnDropSends(t *testing.T) {
	n := NewMemNetwork()
	srv := mkIdentity(t, "server", 45)
	cli := mkIdentity(t, "client", 46)
	ln, err := n.Listen("w", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	plan := NewFaults()
	d := &FaultDialer{Inner: n.Dialer(cli), Plan: plan}
	conn, err := d.Dial(context.Background(), "w")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	server := <-connCh
	defer server.Close()

	plan.Set("w", Fault{DropSends: true})
	if err := conn.Send([]byte("lost")); err != nil {
		t.Fatalf("dropped send should report success, got %v", err)
	}
	plan.Clear("w")
	if err := conn.Send([]byte("delivered")); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "delivered" {
		t.Fatalf("peer received %q; the dropped frame leaked through", got)
	}
}
