package transport

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"drbac/internal/core"
)

func mkIdentity(t *testing.T, name string, seedByte byte) *core.Identity {
	t.Helper()
	seed := make([]byte, 32)
	for i := range seed {
		seed[i] = seedByte
	}
	id, err := core.IdentityFromSeed(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// exchange runs a round trip over a freshly connected pair.
func exchange(t *testing.T, ln Listener, d Dialer, wantServer, wantClient core.EntityID) {
	t.Helper()
	type acceptResult struct {
		conn Conn
		err  error
	}
	acceptCh := make(chan acceptResult, 1)
	go func() {
		conn, err := ln.Accept()
		acceptCh <- acceptResult{conn, err}
	}()

	client, err := d.Dial(context.Background(), ln.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	ar := <-acceptCh
	if ar.err != nil {
		t.Fatalf("accept: %v", ar.err)
	}
	server := ar.conn
	defer server.Close()

	if got := client.Peer().ID(); got != wantServer {
		t.Fatalf("client sees peer %s, want %s", got.Short(), wantServer.Short())
	}
	if got := server.Peer().ID(); got != wantClient {
		t.Fatalf("server sees peer %s, want %s", got.Short(), wantClient.Short())
	}

	msg := []byte("hello over drbac transport")
	if err := client.Send(msg); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("recv = %q", got)
	}
	// And the reverse direction.
	if err := server.Send([]byte("reply")); err != nil {
		t.Fatal(err)
	}
	back, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != "reply" {
		t.Fatalf("reply = %q", back)
	}
}

func TestMemHandshakeAndExchange(t *testing.T) {
	n := NewMemNetwork()
	srv := mkIdentity(t, "server", 1)
	cli := mkIdentity(t, "client", 2)
	ln, err := n.Listen("wallet.test", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	exchange(t, ln, n.Dialer(cli), srv.ID(), cli.ID())
	st := n.Stats()
	if st.Messages == 0 || st.Bytes == 0 {
		t.Fatalf("stats not accounted: %+v", st)
	}
	n.ResetStats()
	if st := n.Stats(); st.Messages != 0 || st.Bytes != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
}

func TestTCPHandshakeAndExchange(t *testing.T) {
	srv := mkIdentity(t, "server", 3)
	cli := mkIdentity(t, "client", 4)
	ln, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	exchange(t, ln, &TCPDialer{Identity: cli}, srv.ID(), cli.ID())
}

func TestMemDialUnknownAddress(t *testing.T) {
	n := NewMemNetwork()
	cli := mkIdentity(t, "client", 5)
	if _, err := n.Dialer(cli).Dial(context.Background(), "nowhere"); err == nil {
		t.Fatal("dial to unknown address should fail")
	}
}

func TestMemAddressInUse(t *testing.T) {
	n := NewMemNetwork()
	id := mkIdentity(t, "x", 6)
	ln, err := n.Listen("dup", id)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := n.Listen("dup", id); err == nil {
		t.Fatal("duplicate listen should fail")
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	n := NewMemNetwork()
	id := mkIdentity(t, "x", 7)
	ln, err := n.Listen("closing", id)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Accept error = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not unblock on Close")
	}
	// Address is released.
	ln2, err := n.Listen("closing", id)
	if err != nil {
		t.Fatalf("relisten after close: %v", err)
	}
	ln2.Close()
}

func TestConnCloseUnblocksRecv(t *testing.T) {
	n := NewMemNetwork()
	srv := mkIdentity(t, "server", 8)
	cli := mkIdentity(t, "client", 9)
	ln, err := n.Listen("w", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	client, err := n.Dialer(cli).Dial(context.Background(), "w")
	if err != nil {
		t.Fatal(err)
	}
	server := <-connCh
	errCh := make(chan error, 1)
	go func() {
		_, err := server.Recv()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	client.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Recv error = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock when peer closed")
	}
}

func TestRecvDrainsBufferedFramesAfterClose(t *testing.T) {
	n := NewMemNetwork()
	a, b := newMemPair(n)
	if err := a.sendFrame([]byte("one")); err != nil {
		t.Fatal(err)
	}
	_ = a.close()
	got, err := b.recvFrame()
	if err != nil || string(got) != "one" {
		t.Fatalf("recv after close = %q, %v", got, err)
	}
	if _, err := b.recvFrame(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second recv = %v, want ErrClosed", err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	n := NewMemNetwork()
	a, _ := newMemPair(n)
	huge := make([]byte, MaxFrame+1)
	if err := a.sendFrame(huge); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestConcurrentSends(t *testing.T) {
	n := NewMemNetwork()
	srv := mkIdentity(t, "server", 10)
	cli := mkIdentity(t, "client", 11)
	ln, err := n.Listen("conc", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	client, err := n.Dialer(cli).Dial(context.Background(), "conc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-connCh
	defer server.Close()

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				if err := client.Send([]byte("m")); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	received := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for received < workers*perWorker {
			if _, err := server.Recv(); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			received++
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("received %d of %d", received, workers*perWorker)
	}
}

func TestHandshakeRejectsWrongTranscript(t *testing.T) {
	// A malicious peer that echoes a stale signature must be rejected:
	// simulate by running both sides with the same side label.
	n := NewMemNetwork()
	a, b := newMemPair(n)
	idA := mkIdentity(t, "a", 12)
	idB := mkIdentity(t, "b", 13)

	errCh := make(chan error, 1)
	go func() {
		_, err := handshake(a, idA, sideClient, CodecPolicy{})
		errCh <- err
	}()
	// Wrong: B also claims to be the client side.
	_, errB := handshake(b, idB, sideClient, CodecPolicy{})
	errA := <-errCh
	if errA == nil && errB == nil {
		t.Fatal("mirror handshake should fail on at least one side")
	}
}

func TestMemLatencyApplied(t *testing.T) {
	n := NewMemNetwork()
	n.Latency = 5 * time.Millisecond
	a, b := newMemPair(n)
	start := time.Now()
	if err := a.sendFrame([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.recvFrame(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}

// A dialer that speaks garbage instead of the handshake must be rejected
// without wedging the listener.
func TestHandshakeRejectsGarbageHello(t *testing.T) {
	srv := mkIdentity(t, "server", 20)
	ln, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	acceptErr := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		acceptErr <- err
	}()

	raw, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// A framed non-JSON hello.
	frame := []byte{0, 0, 0, 5, 'h', 'e', 'l', 'l', 'o'}
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-acceptErr:
		if err == nil {
			t.Fatal("garbage handshake accepted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept wedged on garbage handshake")
	}
}

// An oversized claimed frame length is rejected before allocation.
func TestReadFrameRejectsOversizedClaim(t *testing.T) {
	srv := mkIdentity(t, "server", 21)
	ln, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acceptErr := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		acceptErr <- err
	}()
	raw, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Claim a 1 GiB frame.
	if _, err := raw.Write([]byte{0x40, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-acceptErr:
		if err == nil {
			t.Fatal("oversized frame accepted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept wedged on oversized frame")
	}
}
