// Package transport provides the authenticated inter-wallet channel that
// stands in for the paper's Switchboard secure communication abstraction
// [8]: framed, bidirectional messaging in which both peers prove possession
// of their claimed PKI identities through an ed25519 challenge-response
// handshake before any payload flows.
//
// Two implementations share the handshake and framing: real TCP sockets
// (production, cmd/drbacd) and an in-memory network (tests, simulation)
// that additionally counts messages and bytes for the experiments.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"drbac/internal/bufpool"
	"drbac/internal/core"
)

// MaxFrame bounds a single message; larger frames abort the connection.
const MaxFrame = 16 << 20

// Errors matched by callers.
var (
	// ErrClosed reports use of a closed connection or listener.
	ErrClosed = errors.New("transport: closed")
	// ErrHandshake reports a failed peer authentication.
	ErrHandshake = errors.New("transport: handshake failed")
)

// Conn is an authenticated, framed, bidirectional message channel.
type Conn interface {
	// Send writes one message frame. The frame is fully consumed before
	// Send returns; the caller may recycle its buffer afterwards.
	Send(payload []byte) error
	// Recv reads one message frame, blocking until one arrives. Ownership
	// of the returned buffer passes to the caller.
	Recv() ([]byte, error)
	// Peer returns the authenticated identity of the other side.
	Peer() core.Entity
	// Codec names the wire codec negotiated during the handshake
	// (CodecJSON or CodecBinary). Both ends of a connection always agree.
	Codec() string
	// Close tears the connection down; pending Recv calls fail.
	Close() error
}

// Listener accepts authenticated connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the address peers dial to reach this listener.
	Addr() string
}

// Dialer opens authenticated connections. Dial honors ctx: cancellation or
// deadline expiry aborts both the underlying connect and the authentication
// handshake.
type Dialer interface {
	Dial(ctx context.Context, addr string) (Conn, error)
}

// frameConn is the unauthenticated substrate both implementations provide:
// a reliable, ordered byte-frame pipe.
type frameConn interface {
	sendFrame([]byte) error
	recvFrame() ([]byte, error)
	close() error
}

// writeFrame writes a length-prefixed frame to w. Frames up to MaxRetain are
// coalesced with their header into one pooled buffer so the common case
// costs a single write (one syscall on TCP) and no allocation; jumbo frames
// fall back to two writes rather than copying megabytes.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if len(payload) <= bufpool.MaxRetain {
		buf := bufpool.Get(4 + len(payload))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
		_, err := w.Write(buf)
		bufpool.Put(buf)
		return err
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads a length-prefixed frame from r into a pooled buffer.
// Ownership passes to the caller; returning it via bufpool.Put when the
// frame is fully consumed closes the loop.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: incoming frame of %d bytes exceeds limit", n)
	}
	payload := bufpool.Get(int(n))[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		bufpool.Put(payload)
		return nil, err
	}
	return payload, nil
}
