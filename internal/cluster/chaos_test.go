package cluster

import (
	"runtime"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

// TestScatterGatherFailsOverWhenMemberFlaps breaks one member of a
// two-member replica group mid scatter-gather: the in-flight connection
// dies on its next frame and redials are refused, so the scatter must
// fail over to the surviving member and still return the complete answer.
// The member then heals and serves again, and tearing the gateway down
// must not leak the goroutines the failover spawned.
func TestScatterGatherFailsOverWhenMemberFlaps(t *testing.T) {
	e := newEnv(t, "gate", "C", "Maria", "Bob", "Carol", "Dave", "Erin", "Frank")
	m := mustUniform(t, []string{"s0a", "s0b"}, []string{"s1"})

	// Shard 0's replica group: one wallet served at two addresses.
	w0 := wallet.New(wallet.Config{Owner: e.shardOwner(0), Clock: e.clk, Directory: e.dir})
	e.serveWallet("s0a", 0, m, w0)
	e.serveWallet("s0b", 0, m, w0)
	e.serveShard("s1", 1, m)

	plan := transport.NewFaults()
	before := runtime.NumGoroutine()
	gw, err := NewWallet(WalletConfig{
		Map:      m,
		Dialer:   &transport.FaultDialer{Inner: e.net.Dialer(e.id("gate")), Plan: plan},
		Identity: e.id("gate"),
		Clock:    e.clk,
	})
	if err != nil {
		t.Fatal(err)
	}

	members := []string{"Maria", "Bob", "Carol", "Dave", "Erin", "Frank"}
	var first *core.Delegation
	for _, name := range members {
		d := e.deleg("[" + name + " -> C.vip] C")
		if first == nil {
			first = d
		}
		if err := gw.Publish(d); err != nil {
			t.Fatalf("publish %s: %v", name, err)
		}
	}

	// Flap s0a: the pooled connection breaks on its next frame — i.e. the
	// moment the scatter touches it — and redials are refused.
	plan.Set("s0a", transport.Fault{FailAfterFrames: 1, RefuseDial: true})

	proofs := gw.QueryObject(e.role("C.vip"), nil)
	if len(proofs) != len(members) {
		t.Fatalf("scatter through the flap returned %d proofs, want %d", len(proofs), len(members))
	}

	// The member comes back; the next scatter still answers in full.
	plan.Clear("s0a")
	if proofs := gw.QueryObject(e.role("C.vip"), nil); len(proofs) != len(members) {
		t.Fatalf("scatter after heal returned %d proofs, want %d", len(proofs), len(members))
	}

	// FindOwner scatters too: it must locate delegations through a second
	// flap of the same member.
	plan.Set("s0a", transport.Fault{FailAfterFrames: 1, RefuseDial: true})
	if !gw.Contains(first.ID()) {
		t.Fatal("delegation not locatable through the flap")
	}

	// Teardown returns the goroutine count to its pre-gateway baseline.
	gw.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines = %d after close, want <= %d (leak)", n, before)
	}
}
