package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"drbac/internal/core"
	"drbac/internal/discovery"
	"drbac/internal/obs"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/transport"
	"drbac/internal/wire"
)

// DHTAddrPrefix marks a shard-member entry as an entity fingerprint to be
// resolved through the DHT at dial time ("dht:<64-hex>") rather than a
// dialable address. A shard map can then name replica-group members by
// identity alone: the member's own signed provider record — republished as
// it moves — supplies the current addresses, and a map rewrite is no longer
// needed when a member changes address.
const DHTAddrPrefix = "dht:"

// DHTAddr renders an entity fingerprint in the dht:<fingerprint> shard-
// member form.
func DHTAddr(entity core.EntityID) string { return DHTAddrPrefix + string(entity) }

// parseDHTAddr recognizes a dht:<fingerprint> entry, validating the
// fingerprint shape.
func parseDHTAddr(addr string) (core.EntityID, bool) {
	if !strings.HasPrefix(addr, DHTAddrPrefix) {
		return "", false
	}
	id := core.EntityID(addr[len(DHTAddrPrefix):])
	if !id.Valid() {
		return "", false
	}
	return id, true
}

// maxRedirectHops bounds how many redirects one routed mutation follows
// before giving up — each hop adopts a strictly newer map, so in practice
// one suffices and the bound only guards against a misbehaving server.
const maxRedirectHops = 3

// RouterConfig configures a Router.
type RouterConfig struct {
	// Map is the initial shard map; required.
	Map *Map
	// Dialer opens shard connections; required unless Peers is set.
	Dialer transport.Dialer
	// Peers, if set, is a shared connection pool (the caller owns its
	// lifecycle); otherwise the router builds a private one over Dialer.
	Peers *peer.Manager
	// Obs receives routing logs and drbac_cluster_* metrics.
	Obs *obs.Obs
	// Directory, if non-nil, resolves dht:<fingerprint> shard-member
	// entries to dialable addresses at dial time. Without it such entries
	// are skipped (plain addresses in the same group still work).
	Directory discovery.HomeDirectory
}

// Router routes mutations to owning shards by consistent hash and
// self-heals from epoch drift: a redirect refusal carries the fresh map,
// the router adopts it and retries against the new owner. It is the
// client half of the shard map protocol; Node is the server half.
type Router struct {
	obs       *obs.Obs
	peers     *peer.Manager
	ownsPeers bool
	dir       discovery.HomeDirectory

	mAdoptions *obs.Counter
	mRedirects *obs.Counter
	mRoutes    *obs.Counter
	mScatters  *obs.Counter

	redirects atomic.Int64
	scatters  atomic.Int64

	mu     sync.RWMutex
	m      *Map
	routes map[int]int64 // mutations routed per shard ID
}

// NewRouter validates cfg and builds a router.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Map == nil {
		return nil, errors.New("cluster: RouterConfig.Map is required")
	}
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	if cfg.Peers == nil && cfg.Dialer == nil {
		return nil, errors.New("cluster: RouterConfig.Dialer or Peers is required")
	}
	r := &Router{
		obs:        cfg.Obs,
		peers:      cfg.Peers,
		dir:        cfg.Directory,
		m:          cfg.Map,
		routes:     make(map[int]int64),
		mAdoptions: cfg.Obs.Counter("drbac_cluster_map_adoptions_total"),
		mRedirects: cfg.Obs.Counter("drbac_cluster_redirects_total"),
		mRoutes:    cfg.Obs.Counter("drbac_cluster_routes_total"),
		mScatters:  cfg.Obs.Counter("drbac_cluster_scatter_total"),
	}
	if r.peers == nil {
		r.peers = peer.NewManager(peer.Config{Dialer: cfg.Dialer, Obs: cfg.Obs})
		r.ownsPeers = true
	}
	return r, nil
}

// Close releases the router's private connection pool, if it owns one.
func (r *Router) Close() {
	if r.ownsPeers {
		r.peers.Close()
	}
}

// Peers exposes the router's connection pool (shared with discovery).
func (r *Router) Peers() *peer.Manager { return r.peers }

// Current returns the installed map.
func (r *Router) Current() *Map {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m
}

// Epoch is the installed map's epoch.
func (r *Router) Epoch() uint64 { return r.Current().Epoch }

// Adopt installs m if strictly newer. Reports whether it was installed.
func (r *Router) Adopt(m *Map) bool {
	if err := m.Validate(); err != nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.Epoch <= r.m.Epoch {
		return false
	}
	r.m = m
	r.mAdoptions.Inc()
	r.obs.Log().Info("cluster: router adopted shard map", "epoch", m.Epoch, "shards", len(m.Shards))
	return true
}

// adoptRedirect parses the map a redirect carried and adopts it.
func (r *Router) adoptRedirect(rd *remote.RedirectError) bool {
	r.redirects.Add(1)
	r.mRedirects.Inc()
	if len(rd.Redirect.Map) == 0 {
		return false
	}
	m, err := ParseMap(rd.Redirect.Map)
	if err != nil {
		r.obs.Log().Warn("cluster: redirect carried unparsable map", "error", err)
		return false
	}
	return r.Adopt(m)
}

// Refresh fetches the current map from any shard member and adopts it.
func (r *Router) Refresh(ctx context.Context) error {
	cur := r.Current()
	var lastErr error
	for _, s := range cur.Shards {
		c, addr, err := r.peers.GetAny(ctx, r.resolveAddrs(ctx, s.Addrs))
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := c.ShardMap(ctx)
		if err != nil {
			lastErr = err
			r.reportIfBroken(addr, c)
			continue
		}
		m, err := ParseMap(resp.Map)
		if err != nil {
			lastErr = err
			continue
		}
		r.Adopt(m)
		return nil
	}
	return fmt.Errorf("cluster: shard map refresh failed: %w", lastErr)
}

// resolveAddrs maps dht:<fingerprint> entries in a replica group to the
// addresses their entity's signed provider record names, passing plain
// addresses through untouched. An unresolvable fingerprint (no directory,
// lookup failure) is dropped rather than handed to the dialer — the rest
// of the group still gets its chance.
func (r *Router) resolveAddrs(ctx context.Context, addrs []string) []string {
	out := make([]string, 0, len(addrs))
	for _, a := range addrs {
		eid, ok := parseDHTAddr(a)
		if !ok {
			out = append(out, a)
			continue
		}
		if r.dir == nil {
			r.obs.Log().Warn("cluster: dht shard member but no directory configured", "member", a)
			continue
		}
		resolved, err := r.dir.Resolve(ctx, eid)
		if err != nil {
			r.obs.Log().Warn("cluster: dht shard member unresolvable", "member", eid.Short(), "error", err)
			continue
		}
		out = append(out, resolved...)
	}
	return out
}

func (r *Router) reportIfBroken(addr string, c *remote.Client) {
	if c != nil && !c.Healthy() {
		r.peers.ReportFailure(addr, c)
	}
}

func (r *Router) countRoute(shard int) {
	r.mu.Lock()
	r.routes[shard]++
	r.mu.Unlock()
	r.mRoutes.Inc()
}

// ShardClient returns a pooled connection to any member of shard id's
// replica group under the current map.
func (r *Router) ShardClient(ctx context.Context, id int) (*remote.Client, string, error) {
	s, ok := r.Current().ShardByID(id)
	if !ok {
		return nil, "", fmt.Errorf("cluster: shard %d not in map", id)
	}
	return r.peers.GetAny(ctx, r.resolveAddrs(ctx, s.Addrs))
}

// OwnerClient returns a connection to the shard owning key, plus the
// shard and the epoch routed under.
func (r *Router) OwnerClient(ctx context.Context, key string) (*remote.Client, string, Shard, uint64, error) {
	cur := r.Current()
	s := cur.Owner(key)
	c, addr, err := r.peers.GetAny(ctx, r.resolveAddrs(ctx, s.Addrs))
	return c, addr, s, cur.Epoch, err
}

// Publish routes a durable publish to the shard owning the delegation's
// subject key, stamped with the routed epoch. A redirect refusal adopts
// the fresh map and retries against the new owner (bounded hops).
func (r *Router) Publish(ctx context.Context, d *core.Delegation, support []*core.Proof) error {
	key := RouteKey(d.Subject)
	for hop := 0; ; hop++ {
		c, addr, shard, epoch, err := r.OwnerClient(ctx, key)
		if err != nil {
			return fmt.Errorf("cluster: publish: shard %d unreachable: %w", shard.ID, err)
		}
		err = c.PublishSharded(ctx, d, support, epoch)
		if err == nil {
			r.countRoute(shard.ID)
			return nil
		}
		var rd *remote.RedirectError
		if errors.As(err, &rd) && hop < maxRedirectHops {
			if r.adoptRedirect(rd) {
				continue
			}
			// The redirect carried nothing newer (e.g. a racing adoption
			// already installed it); retry once against the — possibly
			// refreshed — current map anyway.
			if hop == 0 {
				continue
			}
		}
		r.reportIfBroken(addr, c)
		return err
	}
}

// tryShard runs fn against shard s with replica-group failover: a member
// whose connection breaks mid-call is reported to the pool and the call
// retries on another member, up to one attempt per group member. A
// redirect refusal or an application error over a healthy connection is
// returned as-is — only transport failures fail over.
func (r *Router) tryShard(ctx context.Context, s Shard, fn func(*remote.Client) error) error {
	attempts := len(s.Addrs)
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		var (
			c    *remote.Client
			addr string
		)
		c, addr, err = r.peers.GetAny(ctx, r.resolveAddrs(ctx, s.Addrs))
		if err != nil {
			return err
		}
		err = fn(c)
		if err == nil {
			return nil
		}
		var rd *remote.RedirectError
		if errors.As(err, &rd) {
			return err
		}
		if c.Healthy() {
			return err
		}
		r.peers.ReportFailure(addr, c)
		r.obs.Log().Warn("cluster: shard member failed mid-call; failing over",
			"shard", s.ID, "addr", addr, "error", err)
	}
	return err
}

// FindOwner scatters a Has probe to every shard and returns the one
// storing the delegation. ok is false when no reachable shard stores it;
// err reports shards that could not be asked (the answer may then be
// incomplete).
func (r *Router) FindOwner(ctx context.Context, id core.DelegationID) (Shard, bool, error) {
	cur := r.Current()
	type answer struct {
		shard   Shard
		present bool
		err     error
	}
	out := make(chan answer, len(cur.Shards))
	for _, s := range cur.Shards {
		go func(s Shard) {
			var present bool
			err := r.tryShard(ctx, s, func(c *remote.Client) error {
				var herr error
				present, herr = c.Has(ctx, id)
				return herr
			})
			out <- answer{shard: s, present: present, err: err}
		}(s)
	}
	r.countScatter()
	var firstErr error
	found, ok := Shard{}, false
	for range cur.Shards {
		a := <-out
		if a.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: has @shard %d: %w", a.shard.ID, a.err)
		}
		if a.present && !ok {
			found, ok = a.shard, true
		}
	}
	if ok {
		return found, true, nil
	}
	return Shard{}, false, firstErr
}

func (r *Router) countScatter() {
	r.scatters.Add(1)
	r.mScatters.Inc()
}

// Scatter runs fn against every shard in parallel (one pooled connection
// each, with replica-group failover: a member that breaks mid-call is
// retried on another member) and collects per-shard errors, keyed by
// shard ID. An unreachable shard's error lands in the map; fn is never
// called for it.
func (r *Router) Scatter(ctx context.Context, fn func(Shard, *remote.Client) error) map[int]error {
	cur := r.Current()
	r.countScatter()
	var (
		wg   sync.WaitGroup
		emu  sync.Mutex
		errs = make(map[int]error)
	)
	for _, s := range cur.Shards {
		wg.Add(1)
		go func(s Shard) {
			defer wg.Done()
			err := r.tryShard(ctx, s, func(c *remote.Client) error { return fn(s, c) })
			if err != nil {
				emu.Lock()
				errs[s.ID] = err
				emu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	return errs
}

// Stats reports the router's cluster section (gateway view, shard -1).
func (r *Router) Stats() *wire.ClusterStats {
	r.mu.RLock()
	routes := make(map[string]int64, len(r.routes))
	for id, n := range r.routes {
		routes[fmt.Sprintf("%d", id)] = n
	}
	epoch, shards := r.m.Epoch, len(r.m.Shards)
	r.mu.RUnlock()
	return &wire.ClusterStats{
		Epoch:     epoch,
		Shard:     -1,
		Shards:    shards,
		Routes:    routes,
		Redirects: r.redirects.Load(),
		Scatters:  r.scatters.Load(),
	}
}
