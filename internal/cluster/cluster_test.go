package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

var testStart = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

// env wires identities, a fake clock, and an in-memory network of shard
// wallets behind a cluster gateway.
type env struct {
	t   *testing.T
	ids map[string]*core.Identity
	dir *core.MemDirectory
	clk *clock.Fake
	net *transport.MemNetwork
}

func newEnv(t *testing.T, names ...string) *env {
	t.Helper()
	e := &env{
		t:   t,
		ids: make(map[string]*core.Identity),
		dir: core.NewDirectory(),
		clk: clock.NewFake(testStart),
		net: transport.NewMemNetwork(),
	}
	for i, name := range names {
		seed := make([]byte, 32)
		seed[0] = byte(i + 1)
		copy(seed[1:], name)
		id, err := core.IdentityFromSeed(name, seed)
		if err != nil {
			t.Fatalf("identity %s: %v", name, err)
		}
		e.ids[name] = id
		e.dir.Add(id.Entity())
	}
	return e
}

func (e *env) id(name string) *core.Identity {
	id, ok := e.ids[name]
	if !ok {
		e.t.Fatalf("unknown identity %q", name)
	}
	return id
}

func (e *env) deleg(text string) *core.Delegation {
	e.t.Helper()
	parsed, err := core.ParseDelegation(text, e.dir)
	if err != nil {
		e.t.Fatalf("parse %q: %v", text, err)
	}
	var issuer *core.Identity
	for _, id := range e.ids {
		if id.ID() == parsed.Issuer.ID() {
			issuer = id
		}
	}
	if issuer == nil {
		e.t.Fatalf("no identity for issuer of %q", text)
	}
	d, err := core.Issue(issuer, parsed.Template, e.clk.Now())
	if err != nil {
		e.t.Fatalf("issue %q: %v", text, err)
	}
	return d
}

func (e *env) role(text string) core.Role {
	e.t.Helper()
	r, err := core.ParseRole(text, e.dir)
	if err != nil {
		e.t.Fatal(err)
	}
	return r
}

func (e *env) subject(text string) core.Subject {
	e.t.Helper()
	s, err := core.ParseSubject(text, e.dir)
	if err != nil {
		e.t.Fatal(err)
	}
	return s
}

// shardOwner mints (once) the operating identity of shard id's member.
func (e *env) shardOwner(id int) *core.Identity {
	e.t.Helper()
	owner := fmt.Sprintf("shard%d-owner", id)
	if _, ok := e.ids[owner]; !ok {
		seed := make([]byte, 32)
		seed[0] = byte(200 + id)
		copy(seed[1:], owner)
		ident, err := core.IdentityFromSeed(owner, seed)
		if err != nil {
			e.t.Fatal(err)
		}
		e.ids[owner] = ident
		e.dir.Add(ident.Entity())
	}
	return e.ids[owner]
}

// serveShard starts a fresh wallet for shard id at addr, guarded by a
// Node on m.
func (e *env) serveShard(addr string, id int, m *Map) (*wallet.Wallet, *Node) {
	e.t.Helper()
	w := wallet.New(wallet.Config{Owner: e.shardOwner(id), Clock: e.clk, Directory: e.dir})
	return w, e.serveWallet(addr, id, m, w)
}

// serveWallet serves an existing wallet as shard id's member at addr.
func (e *env) serveWallet(addr string, id int, m *Map, w *wallet.Wallet) *Node {
	e.t.Helper()
	n, err := NewNode(id, m, w.Obs())
	if err != nil {
		e.t.Fatal(err)
	}
	ln, err := e.net.Listen(addr, e.shardOwner(id))
	if err != nil {
		e.t.Fatal(err)
	}
	s := remote.ServeOptions(w, ln, remote.Options{Obs: w.Obs(), Cluster: n})
	e.t.Cleanup(s.Close)
	return n
}

// clusterOf serves one wallet per shard of m and a gateway over them.
func (e *env) clusterOf(m *Map) (map[int]*wallet.Wallet, map[int]*Node, *Wallet) {
	e.t.Helper()
	wallets := make(map[int]*wallet.Wallet)
	nodes := make(map[int]*Node)
	for _, s := range m.Shards {
		w, n := e.serveShard(s.Addrs[0], s.ID, m)
		wallets[s.ID] = w
		nodes[s.ID] = n
	}
	gw := e.gateway(m)
	return wallets, nodes, gw
}

func (e *env) gateway(m *Map) *Wallet {
	e.t.Helper()
	gw, err := NewWallet(WalletConfig{
		Map:      m,
		Dialer:   e.net.Dialer(e.id("gate")),
		Identity: e.id("gate"),
		Clock:    e.clk,
	})
	if err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(gw.Close)
	return gw
}

func mustUniform(t *testing.T, groups ...[]string) *Map {
	t.Helper()
	m, err := Uniform(groups)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPublishRoutesToOwner(t *testing.T) {
	e := newEnv(t, "gate", "A", "Maria", "Bob", "Carol", "Dave")
	m := mustUniform(t, []string{"shard0"}, []string{"shard1"})
	wallets, _, gw := e.clusterOf(m)

	for _, name := range []string{"Maria", "Bob", "Carol", "Dave"} {
		d := e.deleg("[" + name + " -> A.member] A")
		if err := gw.Publish(d); err != nil {
			t.Fatalf("publish %s: %v", name, err)
		}
		owner := m.OwnerOf(d)
		for id, w := range wallets {
			if got, want := w.Contains(d.ID()), id == owner.ID; got != want {
				t.Errorf("%s: shard %d contains=%v, want %v (owner %d)", name, id, got, want, owner.ID)
			}
		}
	}

	st := gw.Router().Stats()
	var routed int64
	for _, n := range st.Routes {
		routed += n
	}
	if routed != 4 {
		t.Errorf("router counted %d routes, want 4 (%v)", routed, st.Routes)
	}
}

// TestCrossShardProofAssembly publishes a three-link chain whose subjects
// hash to different shards and asserts the gateway assembles the same
// proof — same delegation chain, same validity — a single wallet holding
// all three links would produce.
func TestCrossShardProofAssembly(t *testing.T) {
	e := newEnv(t, "gate", "A", "B", "C", "Maria")
	m := mustUniform(t, []string{"shard0"}, []string{"shard1"}, []string{"shard2"}, []string{"shard3"})
	_, _, gw := e.clusterOf(m)

	d1 := e.deleg("[Maria -> A.member] A")
	d2 := e.deleg("[A.member -> B.guest] B")
	d3 := e.deleg("[B.guest -> C.vip] C")
	chain := []*core.Delegation{d1, d2, d3}

	homes := make(map[int]bool)
	for _, d := range chain {
		homes[m.OwnerOf(d).ID] = true
		if err := gw.Publish(d); err != nil {
			t.Fatalf("publish %s: %v", d.ID().Short(), err)
		}
	}
	if len(homes) < 2 {
		t.Fatalf("chain collapsed onto one shard (%v); pick different entity names", homes)
	}

	got, err := gw.QueryDirect(wallet.Query{Subject: e.subject("Maria"), Object: e.role("C.vip")})
	if err != nil {
		t.Fatalf("cross-shard query: %v", err)
	}

	// The reference: one wallet holding the whole chain.
	ref := wallet.New(wallet.Config{Owner: e.id("gate"), Clock: e.clk, Directory: e.dir})
	for _, d := range chain {
		if err := ref.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.QueryDirect(wallet.Query{Subject: e.subject("Maria"), Object: e.role("C.vip")})
	if err != nil {
		t.Fatalf("single-wallet query: %v", err)
	}

	if gk, wk := proofKey(got), proofKey(want); gk != wk {
		t.Errorf("assembled chain %q differs from single-wallet chain %q", gk, wk)
	}
	opts := core.ValidateOptions{At: e.clk.Now()}
	if err := got.Validate(opts); err != nil {
		t.Errorf("assembled proof invalid: %v", err)
	}
	if err := want.Validate(opts); err != nil {
		t.Errorf("reference proof invalid: %v", err)
	}
}

func TestQueryObjectScattersAllShards(t *testing.T) {
	e := newEnv(t, "gate", "C", "Maria", "Bob", "Carol")
	m := mustUniform(t, []string{"shard0"}, []string{"shard1"})
	_, _, gw := e.clusterOf(m)

	members := []string{"Maria", "Bob", "Carol"}
	for _, name := range members {
		if err := gw.Publish(e.deleg("[" + name + " -> C.vip] C")); err != nil {
			t.Fatalf("publish %s: %v", name, err)
		}
	}
	proofs := gw.QueryObject(e.role("C.vip"), nil)
	if len(proofs) != len(members) {
		t.Fatalf("object scatter returned %d proofs, want %d", len(proofs), len(members))
	}
	if st := gw.Router().Stats(); st.Scatters == 0 {
		t.Error("router counted no scatters")
	}
}

// TestRedirectSelfHeals runs a router on a stale (pre-split) map against
// members already on the post-split map: the first mis-routed publish is
// refused with a redirect carrying the fresh map, the router adopts it and
// retries against the new owner.
func TestRedirectSelfHeals(t *testing.T) {
	e := newEnv(t, "gate", "A", "Maria", "Bob", "Carol", "Dave", "Erin", "Frank")
	m1 := mustUniform(t, []string{"shard0"}, []string{"shard1"})
	m2, err := m1.Split(0, 2, []string{"shard2"})
	if err != nil {
		t.Fatal(err)
	}

	// Members live on the NEW map; the gateway still routes by the old one.
	wallets := make(map[int]*wallet.Wallet)
	for _, s := range m2.Shards {
		w, _ := e.serveShard(s.Addrs[0], s.ID, m2)
		wallets[s.ID] = w
	}
	gw := e.gateway(m1)

	// A delegation whose key moved in the split: owner 0 under m1, 2 under m2.
	var moved *core.Delegation
	for _, name := range []string{"Maria", "Bob", "Carol", "Dave", "Erin", "Frank"} {
		d := e.deleg("[" + name + " -> A.member] A")
		if m1.OwnerOf(d).ID == 0 && m2.OwnerOf(d).ID == 2 {
			moved = d
			break
		}
	}
	if moved == nil {
		t.Fatal("no test subject moved 0->2 in the split; add candidate names")
	}

	if err := gw.Publish(moved); err != nil {
		t.Fatalf("publish through stale map: %v", err)
	}
	if got := gw.Router().Epoch(); got != m2.Epoch {
		t.Errorf("router epoch %d after redirect, want %d", got, m2.Epoch)
	}
	if st := gw.Router().Stats(); st.Redirects == 0 {
		t.Error("router followed no redirects")
	}
	if !wallets[2].Contains(moved.ID()) {
		t.Error("delegation did not land on the post-split owner")
	}
}

// TestRevokeRedirectsToOwner: the gateway cannot impersonate the issuer,
// so Revoke answers with a redirect to the owning shard; revoking there
// over an issuer-authenticated connection succeeds.
func TestRevokeRedirectsToOwner(t *testing.T) {
	e := newEnv(t, "gate", "A", "Maria")
	m := mustUniform(t, []string{"shard0"}, []string{"shard1"})
	wallets, _, gw := e.clusterOf(m)

	d := e.deleg("[Maria -> A.member] A")
	if err := gw.Publish(d); err != nil {
		t.Fatal(err)
	}

	err := gw.Revoke(d.ID(), e.id("A").ID())
	var rd *remote.RedirectError
	if !errors.As(err, &rd) {
		t.Fatalf("gateway revoke returned %v, want a redirect", err)
	}
	owner := m.OwnerOf(d)
	if rd.Redirect.Shard != owner.ID {
		t.Fatalf("redirect points at shard %d, want %d", rd.Redirect.Shard, owner.ID)
	}

	// Follow the redirect as the issuer.
	ctx := context.Background()
	c, _, err := remote.DialAny(ctx, e.net.Dialer(e.id("A")), rd.Redirect.Addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Revoke(ctx, d.ID()); err != nil {
		t.Fatalf("revoke at owner: %v", err)
	}
	if wallets[owner.ID].Contains(d.ID()) {
		t.Error("delegation survived revocation at its owner")
	}
}

// TestSplitMidTrafficLosesNothing splits shard 0 while publishes keep
// flowing: delegations accepted before and during the filtered replay all
// end up on their post-split owners, and none are lost.
func TestSplitMidTrafficLosesNothing(t *testing.T) {
	names := []string{"gate", "A"}
	users := make([]string, 0, 24)
	for i := 0; i < 24; i++ {
		users = append(users, fmt.Sprintf("user%02d", i))
	}
	names = append(names, users...)
	e := newEnv(t, names...)

	m1 := mustUniform(t, []string{"shard0"}, []string{"shard1"})
	wallets, nodes, gw := e.clusterOf(m1)

	publish := func(names []string) []*core.Delegation {
		t.Helper()
		out := make([]*core.Delegation, 0, len(names))
		for _, name := range names {
			d := e.deleg("[" + name + " -> A.member] A")
			if err := gw.Publish(d); err != nil {
				t.Fatalf("publish %s: %v", name, err)
			}
			out = append(out, d)
		}
		return out
	}

	var all []*core.Delegation
	all = append(all, publish(users[:8])...)

	// Start carving shard 2 out of shard 0 (filtered changelog replay).
	w2 := wallet.New(wallet.Config{Owner: e.id("gate"), Clock: e.clk, Directory: e.dir})
	peers := peer.NewManager(peer.Config{Dialer: e.net.Dialer(e.id("gate"))})
	t.Cleanup(peers.Close)
	split, err := StartSplit(SplitConfig{
		Current:  m1,
		SourceID: 0,
		NewID:    2,
		NewAddrs: []string{"shard2"},
		Target:   w2,
		Dialer:   e.net.Dialer(e.id("gate")),
		Peers:    peers,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Traffic keeps flowing mid-replay, still routed by the old map.
	all = append(all, publish(users[8:16])...)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := split.WaitCaughtUp(ctx, 5*time.Millisecond); err != nil {
		t.Fatalf("split never converged: %v", err)
	}

	// Cut over: serve the new shard, then adopt new-shard -> source -> router.
	n2 := e.serveWallet("shard2", 2, split.NewMap, w2)
	wallets[2], nodes[2] = w2, n2
	for _, id := range []int{0, 1} {
		if !nodes[id].Adopt(split.NewMap) {
			t.Fatalf("shard %d refused the post-split map", id)
		}
	}
	if !gw.Router().Adopt(split.NewMap) {
		t.Fatal("router refused the post-split map")
	}
	split.Finish()

	// Post-split traffic routes by the new map.
	all = append(all, publish(users[16:])...)

	if pruned := PruneMoved(wallets[0], split.NewMap, 0); pruned == 0 {
		t.Log("split moved no resident keys off shard 0 (legal but untestable; add users)")
	}

	lost := 0
	for _, d := range all {
		owner := split.NewMap.OwnerOf(d)
		if !wallets[owner.ID].Contains(d.ID()) {
			lost++
			t.Errorf("delegation %s missing from its owner shard %d", d.ID().Short(), owner.ID)
		}
		for id, w := range wallets {
			if id != owner.ID && w.Contains(d.ID()) {
				t.Errorf("delegation %s still resident on non-owner shard %d", d.ID().Short(), id)
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d mutations lost across the split", lost, len(all))
	}

	// The moved keys answer through the gateway under the new map.
	for _, d := range all {
		got, err := gw.QueryDirect(wallet.Query{Subject: d.Subject, Object: d.Object})
		if err != nil {
			t.Fatalf("post-split query %s: %v", d.Subject.String(), err)
		}
		if err := got.Validate(core.ValidateOptions{At: e.clk.Now()}); err != nil {
			t.Fatalf("post-split proof invalid: %v", err)
		}
	}
}
