package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/discovery"
	"drbac/internal/obs"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wallet"
	"drbac/internal/wire"
)

// DefaultCacheTTL bounds how long scatter-fetched delegations stay in the
// gateway's assembly cache as TTL-coherent copies.
const DefaultCacheTTL = 30 * time.Second

// WalletConfig configures a cluster gateway Wallet.
type WalletConfig struct {
	// Map is the initial shard map; required.
	Map *Map
	// Dialer opens shard connections; required unless Peers is set.
	Dialer transport.Dialer
	// Peers, if set, is a shared connection pool; the caller owns it.
	Peers *peer.Manager
	// Identity, if set, is the gateway's operating identity (answers
	// prove-role requests when the gateway is itself served).
	Identity *core.Identity
	// Obs receives gateway logs and drbac_cluster_* metrics.
	Obs *obs.Obs
	// Clock is the time source; nil means the system clock.
	Clock clock.Clock
	// CacheTTL bounds the assembly cache's TTL-coherent copies; 0 means
	// DefaultCacheTTL.
	CacheTTL time.Duration
	// MaxDepth caps proof chain depth in assembled proofs (0 = wallet
	// default).
	MaxDepth int
	// Directory, if non-nil, resolves dht:<fingerprint> replica-group
	// members through the DHT — both when the router dials shards and when
	// the gateway's discovery resolver computes tags.
	Directory discovery.HomeDirectory
}

// dhtResolveTimeout bounds a synchronous dht:<fingerprint> resolution
// inside the gateway's tag resolver; warm lookups answer from the local
// record cache well inside it.
const dhtResolveTimeout = 5 * time.Second

// Wallet presents an N-shard cluster as one logical wallet: it satisfies
// wallet.Service, so remote.Server, the proxy, and the CLI run on top of
// it unchanged. Mutations route to the owning shard by consistent hash;
// a proof whose chain spans k shards is assembled by the same parallel
// breadth-first machinery distributed discovery uses — each graph node
// resolves (via the Resolver hook, no published tags needed) to its
// owning shard's replica group, fetched sub-proofs land in a local
// assembly cache, and the final proof is assembled there. A k-shard
// proof is a k-home discovery with zero-latency tags.
type Wallet struct {
	cfg    WalletConfig
	router *Router
	local  *wallet.Wallet // assembly cache + final proof construction
	agent  *discovery.Agent
	obs    *obs.Obs
	ttl    time.Duration

	closeOnce sync.Once
}

// NewWallet builds a cluster gateway over the given shard map.
func NewWallet(cfg WalletConfig) (*Wallet, error) {
	router, err := NewRouter(RouterConfig{Map: cfg.Map, Dialer: cfg.Dialer, Peers: cfg.Peers, Obs: cfg.Obs, Directory: cfg.Directory})
	if err != nil {
		return nil, err
	}
	ttl := cfg.CacheTTL
	if ttl <= 0 {
		ttl = DefaultCacheTTL
	}
	w := &Wallet{
		cfg:    cfg,
		router: router,
		obs:    cfg.Obs,
		ttl:    ttl,
	}
	w.local = wallet.New(wallet.Config{
		Owner:    cfg.Identity,
		Clock:    cfg.Clock,
		MaxDepth: cfg.MaxDepth,
		Obs:      cfg.Obs,
	})
	w.agent = discovery.NewAgent(discovery.Config{
		Local:    w.local,
		Peers:    router.Peers(),
		Obs:      cfg.Obs,
		Resolver: w.resolve,
	})
	return w, nil
}

// Close releases the gateway's discovery agent and connection pool.
func (w *Wallet) Close() {
	w.closeOnce.Do(func() {
		w.agent.Close()
		w.router.Close()
	})
}

// Router exposes the gateway's shard router (map adoption, scatter).
func (w *Wallet) Router() *Router { return w.router }

// Local exposes the gateway's assembly-cache wallet (tests, sweeping).
func (w *Wallet) Local() *wallet.Wallet { return w.local }

// Guard returns the remote.ClusterGuard a served gateway runs under: it
// advertises the map (shard -1) and refuses nothing — the gateway routes
// mutations itself rather than redirecting callers.
func (w *Wallet) Guard() remote.ClusterGuard { return gatewayGuard{w} }

// resolve is the discovery Resolver: every graph node maps to its owning
// shard's replica group under the current map. The searchable flags make
// Auto-mode discovery expand through computed tags exactly as it would
// through published 'S'/'O' tags; the TTL bounds assembly-cache staleness.
func (w *Wallet) resolve(node core.Subject) (core.DiscoveryTag, bool) {
	s := w.router.Current().Owner(RouteKey(node))
	addrs := s.Addrs
	if w.cfg.Directory != nil {
		// Replica-group members named by fingerprint resolve through the
		// DHT here, so the tag the discovery rounds dial is always
		// concrete. Warm resolutions hit the local record cache.
		ctx, cancel := context.WithTimeout(context.Background(), dhtResolveTimeout)
		addrs = w.router.resolveAddrs(ctx, s.Addrs)
		cancel()
	}
	if len(addrs) == 0 {
		return core.DiscoveryTag{}, false
	}
	return core.DiscoveryTag{
		Home:    strings.Join(addrs, ","),
		TTL:     w.ttl,
		Subject: core.SubjectSearch,
		Object:  core.ObjectSearch,
	}, true
}

// Publish routes the delegation to the shard owning its subject key.
func (w *Wallet) Publish(d *core.Delegation, support ...*core.Proof) error {
	return w.router.Publish(context.Background(), d, support)
}

// InsertCached stores a TTL-coherent copy in the gateway's assembly
// cache — cached copies are a local concern, not partitioned state.
func (w *Wallet) InsertCached(d *core.Delegation, support []*core.Proof, ttl time.Duration) error {
	return w.local.InsertCached(d, support, ttl)
}

// Revoke locates the shard storing the delegation and answers with a
// redirect to it: revocation is authorized against the transport-
// authenticated issuer identity, which a forwarding gateway cannot
// impersonate, so the caller must revoke at the owning shard directly.
// The gateway's own cached copy is dropped eagerly.
func (w *Wallet) Revoke(id core.DelegationID, by core.EntityID) error {
	w.local.AcceptRevocation(id)
	shard, ok, err := w.router.FindOwner(context.Background(), id)
	if !ok {
		if err != nil {
			return fmt.Errorf("cluster: revoke %s: owner lookup incomplete: %w", id.Short(), err)
		}
		return fmt.Errorf("cluster: revoke %s: no shard stores the delegation", id.Short())
	}
	return &remote.RedirectError{
		Msg: fmt.Sprintf("revoke %s at its owning shard with the issuer identity", id.Short()),
		Redirect: wire.Redirect{
			Epoch: w.router.Epoch(),
			Shard: shard.ID,
			Addrs: append([]string(nil), shard.Addrs...),
		},
	}
}

// QueryDirect answers a direct query: the assembly cache first, then a
// cross-shard discovery that pulls each chain segment from its owning
// shard and assembles the proof locally.
func (w *Wallet) QueryDirect(q wallet.Query) (*core.Proof, error) {
	if p, err := w.local.QueryDirect(q); err == nil {
		return p, nil
	} else if !errors.Is(err, core.ErrNoProof) {
		return nil, err
	}
	ctx := q.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return w.agent.Discover(ctx, q, discovery.Auto, nil)
}

// QuerySubject routes to the shard owning the subject key: under
// subject-key partitioning every out-edge of a node lives on one shard,
// so the answer is complete without a scatter. An unreachable owner
// degrades to the assembly cache's view.
func (w *Wallet) QuerySubject(subject core.Subject, constraints []core.Constraint) []*core.Proof {
	ctx := context.Background()
	c, addr, shard, _, err := w.router.OwnerClient(ctx, RouteKey(subject))
	if err == nil {
		proofs, qerr := c.QuerySubject(ctx, subject, constraints)
		if qerr == nil {
			return proofs
		}
		w.router.reportIfBroken(addr, c)
		err = qerr
	}
	w.obs.Log().Warn("cluster: subject query at owner failed; serving cache",
		"shard", shard.ID, "subject", subject.String(), "error", err)
	return w.local.QuerySubject(subject, constraints)
}

// QueryObject scatters to every shard: in-edges of a role are scattered
// wherever their subjects hash, so completeness needs the full fan-out.
// Results are merged and deduplicated; unreachable shards degrade the
// answer (logged), they do not fail it.
func (w *Wallet) QueryObject(object core.Role, constraints []core.Constraint) []*core.Proof {
	var (
		mu     sync.Mutex
		merged []*core.Proof
	)
	seen := make(map[string]bool)
	add := func(proofs []*core.Proof) {
		mu.Lock()
		defer mu.Unlock()
		for _, p := range proofs {
			k := proofKey(p)
			if seen[k] {
				continue
			}
			seen[k] = true
			merged = append(merged, p)
		}
	}
	add(w.local.QueryObject(object, constraints))
	errs := w.router.Scatter(context.Background(), func(s Shard, c *remote.Client) error {
		proofs, err := c.QueryObject(context.Background(), object, constraints)
		if err != nil {
			return err
		}
		add(proofs)
		return nil
	})
	for id, err := range errs {
		w.obs.Log().Warn("cluster: object query shard unreachable; partial answer",
			"shard", id, "object", object.String(), "error", err)
	}
	return merged
}

// proofKey identifies a proof by its delegation chain, for deduplication
// across shard answers and the local cache.
func proofKey(p *core.Proof) string {
	var b strings.Builder
	for _, st := range p.Steps {
		if st.Delegation != nil {
			b.WriteString(string(st.Delegation.ID()))
			b.WriteByte('|')
		}
	}
	return b.String()
}

// Subscribe watches a delegation at the shard storing it; an unlocatable
// delegation is watched in the assembly cache instead (it may arrive
// there later as a cached copy).
func (w *Wallet) Subscribe(id core.DelegationID, fn subs.Handler) (cancel func()) {
	ctx := context.Background()
	if shard, ok, _ := w.router.FindOwner(ctx, id); ok {
		if c, _, err := w.router.ShardClient(ctx, shard.ID); err == nil {
			if cancel, err := c.Subscribe(ctx, id, fn); err == nil {
				return cancel
			}
		}
	}
	return w.local.Subscribe(id, fn)
}

// Contains reports whether any shard (or the assembly cache) stores the
// delegation.
func (w *Wallet) Contains(id core.DelegationID) bool {
	if w.local.Contains(id) {
		return true
	}
	_, ok, _ := w.router.FindOwner(context.Background(), id)
	return ok
}

// Owner is the gateway's operating identity.
func (w *Wallet) Owner() *core.Identity { return w.cfg.Identity }

// Stats summarizes the assembly cache; cluster-wide routing counters ride
// in the stats response's cluster section (see Guard).
func (w *Wallet) Stats() wallet.Stats { return w.local.Stats() }

// Seq reports 0: the gateway has no changelog of its own — replication
// streams attach to member shards, not to the gateway.
func (w *Wallet) Seq() uint64 { return 0 }

// Obs is the gateway's observability bundle.
func (w *Wallet) Obs() *obs.Obs { return w.obs }

var _ wallet.Service = (*Wallet)(nil)

// gatewayGuard is the remote.ClusterGuard of a served gateway: advertise
// the map, refuse nothing.
type gatewayGuard struct{ w *Wallet }

func (g gatewayGuard) Hello() wire.ShardMapResp {
	return wire.ShardMapResp{Epoch: g.w.router.Epoch(), Shard: -1}
}

func (g gatewayGuard) MapResp() (wire.ShardMapResp, error) {
	cur := g.w.router.Current()
	raw, err := cur.Marshal()
	if err != nil {
		return wire.ShardMapResp{}, err
	}
	return wire.ShardMapResp{Epoch: cur.Epoch, Shard: -1, Map: raw}, nil
}

func (g gatewayGuard) CheckPublish(uint64, core.Subject) *wire.Redirect { return nil }
func (g gatewayGuard) CheckEpoch(uint64) *wire.Redirect                 { return nil }
func (g gatewayGuard) Stats() *wire.ClusterStats                        { return g.w.router.Stats() }
