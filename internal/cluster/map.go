// Package cluster shards one logical dRBAC wallet across N nodes.
//
// The unit of partitioning is the delegation's subject node: every
// delegation [S → O] I lives on the shard that owns S's routing key, so a
// forward edge expansion (QuerySubject at S) is always answerable by a
// single shard, and a k-shard proof chain is assembled by the same
// parallel breadth-first machinery internal/discovery uses across wallet
// homes — a k-shard proof is a k-home discovery with zero-latency tags.
//
// Ownership is decided by a versioned consistent-hash shard map: a ring
// of explicitly serialized virtual-node points (FNV-64a of the routing
// key, matched to the nearest clockwise point). Storing the points in the
// map — rather than re-deriving them from shard IDs — is what makes a
// split cheap: Split reassigns half of one shard's points to the new
// shard and bumps the epoch, so only the source shard's changelog needs
// replay and every other shard's ownership is untouched.
//
// The map travels in the wire protocol (see internal/wire): servers
// advertise their epoch on connect, answer `shardmap` requests with the
// full map, and refuse stale-epoch mutations with a redirect carrying the
// fresh map, so clients and peers self-heal their routing.
package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"

	"drbac/internal/core"
)

// DefaultPointsPerShard is the virtual-node count Uniform gives each
// shard. 32 points keeps key skew under ~20% while keeping the serialized
// map small enough to carry in a redirect frame.
const DefaultPointsPerShard = 32

// Shard is one partition of the delegation space: a stable ID and the
// replica group (primary first) serving it.
type Shard struct {
	ID int `json:"id"`
	// Addrs is the shard's replica group; any member can answer reads,
	// writes go through whichever member accepts them (the primary).
	Addrs []string `json:"addrs"`
}

// Point is one virtual node on the hash ring: keys hash to the nearest
// clockwise point and belong to that point's shard.
type Point struct {
	Hash  uint64 `json:"hash"`
	Shard int    `json:"shard"`
}

// Map is a versioned consistent-hash shard map. It is immutable once
// built: mutations (Split) return a new map with a bumped epoch.
type Map struct {
	// Epoch versions the map; a higher epoch always supersedes a lower
	// one. Requests stamped with a stale epoch are refused with a
	// redirect carrying the current map.
	Epoch  uint64  `json:"epoch"`
	Shards []Shard `json:"shards"`
	// Points is the serialized ring, sorted by Hash ascending.
	Points []Point `json:"points"`
}

// RouteKey returns the canonical routing key of a subject node: the full
// entity fingerprint for entity subjects, the printed role for role
// subjects. The delegation [S → O] I routes by RouteKey(S).
func RouteKey(s core.Subject) string {
	if s.IsEntity() {
		return string(s.Entity)
	}
	return s.Role.String()
}

// HashKey is the ring position of a routing key: FNV-64a finalized with
// mix64, so near-identical keys (role names sharing a namespace prefix)
// still spread across the ring.
func HashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// pointHash derives a ring point for (shard, index): FNV-64a over a
// printed label, then a splitmix64 finalizer. The finalizer matters —
// raw FNV of near-identical labels clusters tightly (weak high-bit
// avalanche), which would collapse each shard's virtual nodes into one
// arc and defeat the load spreading. Deterministic across processes.
func pointHash(shard, idx int) uint64 {
	return mix64(HashKey(fmt.Sprintf("shard:%d:point:%d", shard, idx)))
}

// mix64 is the splitmix64 finalizer: a cheap invertible bit mixer that
// spreads clustered inputs across the full 64-bit range.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Uniform builds an epoch-1 map with one Shard per address group and
// DefaultPointsPerShard ring points each. groups[i] is shard i's replica
// group (comma-separation is the caller's concern; pass split addresses).
func Uniform(groups [][]string) (*Map, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("cluster: uniform map needs at least one shard")
	}
	m := &Map{Epoch: 1}
	for i, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no addresses", i)
		}
		m.Shards = append(m.Shards, Shard{ID: i, Addrs: append([]string(nil), g...)})
		for p := 0; p < DefaultPointsPerShard; p++ {
			m.Points = append(m.Points, Point{Hash: pointHash(i, p), Shard: i})
		}
	}
	m.normalize()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// normalize sorts the ring.
func (m *Map) normalize() {
	sort.Slice(m.Points, func(i, j int) bool { return m.Points[i].Hash < m.Points[j].Hash })
}

// Validate checks structural invariants: at least one shard, unique shard
// IDs, every shard addressed, every point owned by a known shard, every
// shard owning at least one point, ring sorted with unique hashes.
func (m *Map) Validate() error {
	if m == nil || len(m.Shards) == 0 {
		return fmt.Errorf("cluster: map has no shards")
	}
	if m.Epoch == 0 {
		return fmt.Errorf("cluster: map epoch 0 is reserved")
	}
	owned := make(map[int]int, len(m.Shards))
	for _, s := range m.Shards {
		if _, dup := owned[s.ID]; dup {
			return fmt.Errorf("cluster: duplicate shard id %d", s.ID)
		}
		if len(s.Addrs) == 0 {
			return fmt.Errorf("cluster: shard %d has no addresses", s.ID)
		}
		owned[s.ID] = 0
	}
	if len(m.Points) == 0 {
		return fmt.Errorf("cluster: map has no ring points")
	}
	for i, p := range m.Points {
		if _, ok := owned[p.Shard]; !ok {
			return fmt.Errorf("cluster: point %d owned by unknown shard %d", i, p.Shard)
		}
		owned[p.Shard]++
		if i > 0 && m.Points[i-1].Hash >= p.Hash {
			return fmt.Errorf("cluster: ring unsorted or duplicate hash at point %d", i)
		}
	}
	for id, n := range owned {
		if n == 0 {
			return fmt.Errorf("cluster: shard %d owns no ring points", id)
		}
	}
	return nil
}

// OwnerID returns the shard ID owning a routing key: the nearest
// clockwise ring point (wrapping past the top).
func (m *Map) OwnerID(key string) int {
	h := HashKey(key)
	i := sort.Search(len(m.Points), func(i int) bool { return m.Points[i].Hash >= h })
	if i == len(m.Points) {
		i = 0
	}
	return m.Points[i].Shard
}

// Owner returns the shard owning a routing key.
func (m *Map) Owner(key string) Shard {
	id := m.OwnerID(key)
	s, _ := m.ShardByID(id)
	return s
}

// OwnerOf returns the shard owning a delegation (by its subject node).
func (m *Map) OwnerOf(d *core.Delegation) Shard { return m.Owner(RouteKey(d.Subject)) }

// ShardByID looks a shard up by ID.
func (m *Map) ShardByID(id int) (Shard, bool) {
	for _, s := range m.Shards {
		if s.ID == id {
			return s, true
		}
	}
	return Shard{}, false
}

// Owns reports whether shard id owns the routing key under this map.
func (m *Map) Owns(id int, key string) bool { return m.OwnerID(key) == id }

// Split carves a new shard out of src: half of src's ring points (every
// other one, so the stolen arc interleaves) move to a new shard with the
// given replica group, and the epoch bumps. Only keys previously owned by
// src can change owner, which is what lets resharding replay just the
// source shard's changelog. Returns the new map; the receiver is
// unchanged.
func (m *Map) Split(srcID, newID int, addrs []string) (*Map, error) {
	if _, ok := m.ShardByID(srcID); !ok {
		return nil, fmt.Errorf("cluster: split source shard %d not in map", srcID)
	}
	if _, dup := m.ShardByID(newID); dup {
		return nil, fmt.Errorf("cluster: split target shard id %d already in map", newID)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: split target shard needs addresses")
	}
	next := &Map{
		Epoch:  m.Epoch + 1,
		Shards: append(append([]Shard(nil), m.Shards...), Shard{ID: newID, Addrs: append([]string(nil), addrs...)}),
		Points: append([]Point(nil), m.Points...),
	}
	moved, seen := 0, 0
	for i := range next.Points {
		if next.Points[i].Shard != srcID {
			continue
		}
		if seen%2 == 1 {
			next.Points[i].Shard = newID
			moved++
		}
		seen++
	}
	if moved == 0 {
		return nil, fmt.Errorf("cluster: split source shard %d has too few points (%d) to split", srcID, seen)
	}
	if err := next.Validate(); err != nil {
		return nil, err
	}
	return next, nil
}

// Clone returns a deep copy.
func (m *Map) Clone() *Map {
	c := &Map{Epoch: m.Epoch, Points: append([]Point(nil), m.Points...)}
	for _, s := range m.Shards {
		c.Shards = append(c.Shards, Shard{ID: s.ID, Addrs: append([]string(nil), s.Addrs...)})
	}
	return c
}

// Marshal serializes the map (canonical JSON).
func (m *Map) Marshal() ([]byte, error) { return json.Marshal(m) }

// ParseMap deserializes and validates a map.
func ParseMap(data []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: parse map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
