package cluster

import (
	"fmt"
	"testing"

	"drbac/internal/core"
)

func groups(n int) [][]string {
	var g [][]string
	for i := 0; i < n; i++ {
		g = append(g, []string{fmt.Sprintf("shard-%d:1", i)})
	}
	return g
}

func TestUniformMapValidatesAndRoutes(t *testing.T) {
	m, err := Uniform(groups(4))
	if err != nil {
		t.Fatalf("uniform: %v", err)
	}
	if m.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", m.Epoch)
	}
	if len(m.Points) != 4*DefaultPointsPerShard {
		t.Fatalf("points = %d", len(m.Points))
	}
	// Routing is deterministic and lands on a known shard.
	counts := make(map[int]int)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("entity-%d", i)
		id := m.OwnerID(key)
		if id != m.OwnerID(key) {
			t.Fatalf("nondeterministic routing for %q", key)
		}
		if _, ok := m.ShardByID(id); !ok {
			t.Fatalf("key %q routed to unknown shard %d", key, id)
		}
		counts[id]++
	}
	// Every shard owns a reasonable slice of keyspace (skew bound is
	// loose: vnodes make the worst shard hold at least ~1/4 of fair
	// share on 1000 keys).
	for id, n := range counts {
		if n < 1000/len(m.Shards)/4 {
			t.Fatalf("shard %d owns only %d/1000 keys — ring badly skewed: %v", id, n, counts)
		}
	}
}

func TestUniformRejectsEmpty(t *testing.T) {
	if _, err := Uniform(nil); err == nil {
		t.Fatal("want error for zero shards")
	}
	if _, err := Uniform([][]string{{}}); err == nil {
		t.Fatal("want error for addressless shard")
	}
}

func TestSplitMovesOnlySourceKeys(t *testing.T) {
	m, err := Uniform(groups(2))
	if err != nil {
		t.Fatalf("uniform: %v", err)
	}
	next, err := m.Split(1, 2, []string{"shard-2:1"})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if next.Epoch != m.Epoch+1 {
		t.Fatalf("epoch = %d, want %d", next.Epoch, m.Epoch+1)
	}
	if len(next.Shards) != 3 {
		t.Fatalf("shards = %d, want 3", len(next.Shards))
	}
	// The old map is untouched.
	if len(m.Shards) != 2 || m.Epoch != 1 {
		t.Fatal("split mutated receiver")
	}
	moved, kept := 0, 0
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := m.OwnerID(key), next.OwnerID(key)
		if before == after {
			continue
		}
		// Every moved key must come from the split source and land on
		// the new shard — shard 0's ownership is untouched.
		if before != 1 || after != 2 {
			t.Fatalf("key %q moved %d→%d; only 1→2 moves are legal", key, before, after)
		}
		moved++
		_ = kept
	}
	if moved == 0 {
		t.Fatal("split moved no keys")
	}
}

func TestSplitErrors(t *testing.T) {
	m, _ := Uniform(groups(2))
	if _, err := m.Split(9, 2, []string{"x:1"}); err == nil {
		t.Fatal("want error for unknown source")
	}
	if _, err := m.Split(0, 1, []string{"x:1"}); err == nil {
		t.Fatal("want error for duplicate target id")
	}
	if _, err := m.Split(0, 2, nil); err == nil {
		t.Fatal("want error for addressless target")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	m, _ := Uniform(groups(3))
	data, err := m.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := ParseMap(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("rt-%d", i)
		if m.OwnerID(key) != back.OwnerID(key) {
			t.Fatalf("round-trip changed routing for %q", key)
		}
	}
	if _, err := ParseMap([]byte(`{"epoch":0,"shards":[]}`)); err == nil {
		t.Fatal("want error for invalid map")
	}
	if _, err := ParseMap([]byte(`not json`)); err == nil {
		t.Fatal("want error for bad json")
	}
}

func TestRouteKey(t *testing.T) {
	ent := core.SubjectEntity("abcdef0123456789abcdef0123456789abcdef0123456789abcdef0123456789")
	if RouteKey(ent) != string(ent.Entity) {
		t.Fatalf("entity route key = %q", RouteKey(ent))
	}
	role := core.SubjectRole(core.Role{Namespace: "ns", Name: "admin"})
	if RouteKey(role) != role.Role.String() {
		t.Fatalf("role route key = %q", RouteKey(role))
	}
	if RouteKey(ent) == RouteKey(role) {
		t.Fatal("distinct subjects share a route key")
	}
}
