package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"drbac/internal/core"
	"drbac/internal/obs"
	"drbac/internal/wire"
)

// Node is one shard member's view of the cluster: its own shard ID plus
// the current map. It implements remote.ClusterGuard, so a shard's wire
// server advertises the epoch on connect, answers shardmap requests, and
// refuses mis-routed or stale-epoch mutations with redirects carrying the
// fresh map. Adopt installs newer maps at runtime (resharding).
type Node struct {
	id  int
	obs *obs.Obs

	mAdoptions *obs.Counter
	mRedirects *obs.Counter
	mRoutes    *obs.Counter

	served    atomic.Int64
	redirects atomic.Int64

	mu  sync.RWMutex
	m   *Map
	raw []byte
}

// NewNode builds a shard member's cluster view. id must be a shard of m.
func NewNode(id int, m *Map, o *obs.Obs) (*Node, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if _, ok := m.ShardByID(id); !ok {
		return nil, fmt.Errorf("cluster: node shard %d not in map", id)
	}
	raw, err := m.Marshal()
	if err != nil {
		return nil, err
	}
	n := &Node{
		id:         id,
		obs:        o,
		m:          m,
		raw:        raw,
		mAdoptions: o.Counter("drbac_cluster_map_adoptions_total"),
		mRedirects: o.Counter("drbac_cluster_redirects_total"),
		mRoutes:    o.Counter("drbac_cluster_routes_total"),
	}
	if reg := o.Registry(); reg != nil {
		reg.GaugeFunc("drbac_cluster_epoch", func() int64 { return int64(n.Current().Epoch) })
		reg.GaugeFunc("drbac_cluster_shards", func() int64 { return int64(len(n.Current().Shards)) })
	}
	return n, nil
}

// ShardID is this member's shard.
func (n *Node) ShardID() int { return n.id }

// Current returns the installed map.
func (n *Node) Current() *Map {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.m
}

// Adopt installs m if it is strictly newer than the current map (and
// still names this node's shard). Reports whether it was installed.
func (n *Node) Adopt(m *Map) bool {
	if err := m.Validate(); err != nil {
		return false
	}
	if _, ok := m.ShardByID(n.id); !ok {
		return false
	}
	raw, err := m.Marshal()
	if err != nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Epoch <= n.m.Epoch {
		return false
	}
	n.m, n.raw = m, raw
	n.mAdoptions.Inc()
	n.obs.Log().Info("cluster: shard map adopted", "shard", n.id, "epoch", m.Epoch, "shards", len(m.Shards))
	return true
}

// Hello advertises this member's shard and epoch (pushed on connect).
func (n *Node) Hello() wire.ShardMapResp {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return wire.ShardMapResp{Epoch: n.m.Epoch, Shard: n.id}
}

// MapResp answers a shardmap request with the full serialized map.
func (n *Node) MapResp() (wire.ShardMapResp, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return wire.ShardMapResp{Epoch: n.m.Epoch, Shard: n.id, Map: n.raw}, nil
}

// redirectLocked builds a refusal pointing at owner (the fresh map rides
// along so one redirect heals the caller's whole routing table).
func (n *Node) redirectLocked(owner int) *wire.Redirect {
	rd := &wire.Redirect{Epoch: n.m.Epoch, Shard: owner, Map: n.raw}
	if s, ok := n.m.ShardByID(owner); ok {
		rd.Addrs = append([]string(nil), s.Addrs...)
	}
	return rd
}

// CheckPublish authorizes a durable publish of a delegation rooted at
// subject. Refused when the caller stamped a stale epoch or this shard
// does not own the subject's key. A caller stamping a NEWER epoch than
// ours is not refused on the epoch alone (mid-reshard, members adopt the
// map at slightly different times); ownership under our map still gates.
func (n *Node) CheckPublish(reqEpoch uint64, subject core.Subject) *wire.Redirect {
	n.mu.RLock()
	owner := n.m.OwnerID(RouteKey(subject))
	var rd *wire.Redirect
	if (reqEpoch != 0 && reqEpoch < n.m.Epoch) || owner != n.id {
		rd = n.redirectLocked(owner)
	}
	n.mu.RUnlock()
	if rd != nil {
		n.redirects.Add(1)
		n.mRedirects.Inc()
		return rd
	}
	n.served.Add(1)
	n.mRoutes.Inc()
	return nil
}

// CheckEpoch authorizes a mutation that carries no subject key (revoke):
// only epoch staleness is refused.
func (n *Node) CheckEpoch(reqEpoch uint64) *wire.Redirect {
	n.mu.RLock()
	var rd *wire.Redirect
	if reqEpoch != 0 && reqEpoch < n.m.Epoch {
		rd = n.redirectLocked(n.id)
	}
	n.mu.RUnlock()
	if rd != nil {
		n.redirects.Add(1)
		n.mRedirects.Inc()
		return rd
	}
	return nil
}

// Stats reports the member's cluster section for stats responses.
func (n *Node) Stats() *wire.ClusterStats {
	n.mu.RLock()
	epoch, shards := n.m.Epoch, len(n.m.Shards)
	n.mu.RUnlock()
	return &wire.ClusterStats{
		Epoch:     epoch,
		Shard:     n.id,
		Shards:    shards,
		Routes:    map[string]int64{fmt.Sprintf("%d", n.id): n.served.Load()},
		Redirects: n.redirects.Load(),
	}
}
