package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/obs"
	"drbac/internal/peer"
	"drbac/internal/replica"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

// Split is a live shard split in flight. It rides the changelog: the new
// shard's wallet runs as a filtered follower of the source shard,
// replaying only the delegations the new map assigns to it, while the
// source keeps serving traffic. Once the follower converges, adopt the
// new map on the new shard, then the source, then every router — the
// stream keeps draining mutations the source accepted before its
// adoption, so a mid-traffic split loses nothing. Finish stops the
// stream; PruneMoved reclaims the moved keys from the source at leisure.
type Split struct {
	// NewMap is the bumped-epoch map the cluster converges to.
	NewMap *Map
	// NewID is the shard carved out of the source.
	NewID int

	follower *replica.Follower
	srcAddrs []string
	peers    *peer.Manager
	obs      *obs.Obs
	clk      clock.Clock
}

// SplitConfig configures StartSplit.
type SplitConfig struct {
	// Current is the map being split; required.
	Current *Map
	// SourceID is the shard being split; NewID/NewAddrs describe the
	// shard carved out of it.
	SourceID int
	NewID    int
	NewAddrs []string
	// Target is the new shard's local wallet, populated by filtered
	// replay; required. It should serve read-only until the split
	// finishes.
	Target *wallet.Wallet
	// Dialer/Peers connect to the source shard (same contract as
	// replica.Config).
	Dialer transport.Dialer
	Peers  *peer.Manager
	// Obs receives replay logs and metrics.
	Obs *obs.Obs
	// Clock is the time source; nil means the system clock.
	Clock clock.Clock
}

// StartSplit computes the post-split map and starts the filtered
// changelog replay of the source shard into the target wallet.
func StartSplit(cfg SplitConfig) (*Split, error) {
	if cfg.Current == nil {
		return nil, errors.New("cluster: SplitConfig.Current is required")
	}
	if cfg.Target == nil {
		return nil, errors.New("cluster: SplitConfig.Target is required")
	}
	next, err := cfg.Current.Split(cfg.SourceID, cfg.NewID, cfg.NewAddrs)
	if err != nil {
		return nil, err
	}
	src, _ := cfg.Current.ShardByID(cfg.SourceID)
	newID := cfg.NewID
	f, err := replica.Start(replica.Config{
		Local:  cfg.Target,
		Addrs:  src.Addrs,
		Dialer: cfg.Dialer,
		Peers:  cfg.Peers,
		Obs:    cfg.Obs,
		Clock:  cfg.Clock,
		Filter: func(d *core.Delegation) bool {
			return next.OwnerID(RouteKey(d.Subject)) == newID
		},
	})
	if err != nil {
		return nil, err
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System{}
	}
	return &Split{
		NewMap:   next,
		NewID:    cfg.NewID,
		follower: f,
		srcAddrs: src.Addrs,
		peers:    cfg.Peers,
		obs:      cfg.Obs,
		clk:      clk,
	}, nil
}

// Status exposes the underlying follower's replication progress.
func (s *Split) Status() replica.Status { return s.follower.Status() }

// Lag asks the source shard for its changelog seq and returns how far the
// filtered replay trails it (0 when caught up).
func (s *Split) Lag(ctx context.Context) (uint64, error) {
	if s.peers == nil {
		return 0, errors.New("cluster: split lag check needs a peer pool")
	}
	c, _, err := s.peers.GetAny(ctx, s.srcAddrs)
	if err != nil {
		return 0, err
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		return 0, err
	}
	applied := s.follower.Status().AppliedSeq
	if stats.Seq <= applied {
		return 0, nil
	}
	return stats.Seq - applied, nil
}

// WaitCaughtUp polls until the replay is connected with zero lag, or ctx
// expires. The caller then adopts NewMap (new shard first, then source,
// then routers) while the stream is still attached, so mutations accepted
// by the source up to its adoption still flow over.
func (s *Split) WaitCaughtUp(ctx context.Context, poll time.Duration) error {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		if s.follower.Status().Connected {
			lag, err := s.Lag(ctx)
			if err == nil && lag == 0 {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: split catch-up: %w", ctx.Err())
		case <-s.clk.After(poll):
		}
	}
}

// Finish stops the filtered replay stream. Call it only after every
// writer has adopted NewMap: from then on no mutation for a moved key can
// land on the source, so the stream has nothing left to carry.
func (s *Split) Finish() { s.follower.Close() }

// PruneMoved drops from w (serving shard id under m) every delegation m
// assigns elsewhere — the source shard's post-split cleanup. Returns how
// many delegations were dropped. Safe to run while serving: drops are
// sequenced like any other mutation.
func PruneMoved(w *wallet.Wallet, m *Map, id int) int {
	dropped := 0
	for _, d := range w.Delegations() {
		if m.OwnerID(RouteKey(d.Subject)) != id {
			w.DropReplicated(d.ID(), subs.Stale)
			dropped++
		}
	}
	return dropped
}
