// Package peer manages the pool of remote-wallet connections a node keeps
// to its coalition partners. It replaces the ad-hoc map[string]*remote.Client
// caches that discovery and the caching proxy used to carry: connections are
// pooled by address, redialed lazily with capped exponential backoff and
// jitter, and guarded by a per-peer circuit breaker so a dead home wallet
// costs one fast-failed lookup instead of a fresh dial timeout on every
// round (§4.2.1's availability concern for coalition partners).
package peer

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"drbac/internal/clock"
	"drbac/internal/obs"
	"drbac/internal/remote"
	"drbac/internal/transport"
)

// ErrCircuitOpen reports a fast-failed Get: the peer's circuit is open and
// its backoff window has not elapsed, so no dial was attempted.
var ErrCircuitOpen = errors.New("peer: circuit open")

// ErrRemoteDown reports a fast-failed Get on a peer an external liveness
// authority (the gossip layer) has declared dead. Unlike an open circuit
// it has no backoff window: the peer stays down until the authority
// clears it with SetRemoteDown(addr, false).
var ErrRemoteDown = errors.New("peer: remote reported down")

// State is the circuit-breaker state of one peer.
type State int

const (
	// StateClosed: the peer is believed healthy; Get dials (or reuses) freely.
	StateClosed State = iota
	// StateOpen: the peer passed the failure threshold; Get fast-fails until
	// the backoff window elapses.
	StateOpen
	// StateHalfOpen: the backoff window elapsed; the next Get is a probe.
	// Success closes the circuit, failure re-opens it with a longer window.
	StateHalfOpen
)

// String renders the state for logs and metric labels.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Health is a snapshot of one peer's standing in the pool.
type Health struct {
	// Addr is the pool key.
	Addr string
	// State is the circuit-breaker state.
	State State
	// ConsecutiveFailures counts dial/call failures since the last success.
	ConsecutiveFailures int
	// Connected reports whether a live connection is currently pooled.
	Connected bool
	// RetryAt is when an open circuit will admit a half-open probe
	// (zero when the circuit is closed).
	RetryAt time.Time
	// RemoteDown reports an external liveness verdict (gossip) holding the
	// peer down independent of the local breaker.
	RemoteDown bool
}

// Config tunes a Manager. The zero value of every field gets a sensible
// default.
type Config struct {
	// Dialer opens connections; required.
	Dialer transport.Dialer
	// FailureThreshold is the consecutive-failure count that opens the
	// circuit. Default 3.
	FailureThreshold int
	// BaseBackoff is the first retry delay after a failure. Default 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Default 15s.
	MaxBackoff time.Duration
	// CallTimeout is installed on every client the manager creates; zero
	// keeps remote.DefaultCallTimeout.
	CallTimeout time.Duration
	// OnConnect, if set, runs once per new connection before it is pooled
	// (e.g. discovery's home-wallet authorization check). An error fails
	// the Get, counts as a peer failure, and closes the connection.
	OnConnect func(ctx context.Context, addr string, c *remote.Client) error
	// Obs receives the pool's logs and metrics (nil discards both).
	Obs *obs.Obs
	// Clock is the time source; nil means the system clock.
	Clock clock.Clock
}

// Manager is a concurrency-safe pool of remote.Client connections keyed by
// address. Get returns the pooled connection when it is healthy, redials
// lazily when it is not, and fast-fails when the peer's circuit is open.
type Manager struct {
	cfg Config

	mu    sync.Mutex
	peers map[string]*peerState

	// rr rotates GetAny's dial order across calls so load spreads over a
	// replica group instead of hammering its first address.
	rr atomic.Uint64

	mDials     *obs.Counter
	mDialFails *obs.Counter
	mFastFails *obs.Counter
	mEvictions *obs.Counter
	mOpens     *obs.Counter
	mLive      *obs.Gauge
}

// peerState is the per-address pool entry. Its own mutex single-flights
// dials to the address without holding the pool lock.
type peerState struct {
	mu       sync.Mutex
	client   *remote.Client
	failures int
	backoff  time.Duration
	next     time.Time // earliest instant a redial may be attempted
	// remoteDown holds the peer down on an external (gossip) verdict; it
	// bypasses the backoff clock entirely in both directions.
	remoteDown bool
}

// NewManager builds a pool over cfg.Dialer.
func NewManager(cfg Config) *Manager {
	if cfg.Dialer == nil {
		panic("peer: Config.Dialer is required")
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 15 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	m := &Manager{cfg: cfg, peers: make(map[string]*peerState)}
	o := cfg.Obs
	m.mDials = o.Counter("drbac_peer_dials_total")
	m.mDialFails = o.Counter("drbac_peer_dial_failures_total")
	m.mFastFails = o.Counter("drbac_peer_fastfails_total")
	m.mEvictions = o.Counter("drbac_peer_evictions_total")
	m.mOpens = o.Counter("drbac_peer_circuit_opens_total")
	if o.Registry() != nil {
		m.mLive = o.Registry().Gauge("drbac_peer_connections")
	}
	return m
}

func (m *Manager) peer(addr string) *peerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.peers[addr]
	if !ok {
		ps = &peerState{}
		m.peers[addr] = ps
	}
	return ps
}

// Get returns a healthy connection to addr, reusing the pooled one when its
// read loop is still alive, redialing otherwise. When the peer's circuit is
// open and its backoff window has not elapsed, Get fast-fails with
// ErrCircuitOpen without touching the network. The first Get after the
// window elapses is the half-open probe.
func (m *Manager) Get(ctx context.Context, addr string) (*remote.Client, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ps := m.peer(addr)
	ps.mu.Lock()
	defer ps.mu.Unlock()

	if ps.remoteDown {
		m.mFastFails.Inc()
		return nil, fmt.Errorf("%w: %s", ErrRemoteDown, addr)
	}

	if ps.client != nil {
		if ps.client.Healthy() {
			return ps.client, nil
		}
		// The read loop died since we last looked: evict and fall through
		// to the redial path. The broken client's Close is idempotent.
		ps.client.Close()
		ps.client = nil
		m.mEvictions.Inc()
		m.mLive.Add(-1)
		m.cfg.Obs.Log().Debug("peer connection evicted", "addr", addr)
	}

	now := m.cfg.Clock.Now()
	if ps.failures >= m.cfg.FailureThreshold && now.Before(ps.next) {
		m.mFastFails.Inc()
		return nil, fmt.Errorf("%w: %s retries at %s", ErrCircuitOpen, addr, ps.next.Format(time.RFC3339))
	}

	m.mDials.Inc()
	// A (re)dial inside a traced operation shows up as its own span, so a
	// discovery waterfall explains time spent establishing connections.
	dsp := obs.SpanFromContext(ctx).StartChild("peer.dial", "addr", addr)
	c, err := remote.Dial(ctx, m.cfg.Dialer, addr)
	if err == nil {
		c.CallTimeout = m.cfg.CallTimeout
		c.Obs = m.cfg.Obs
		if m.cfg.OnConnect != nil {
			if hookErr := m.cfg.OnConnect(ctx, addr, c); hookErr != nil {
				c.Close()
				err = hookErr
			}
		}
	}
	if err != nil {
		dsp.Fail(err)
		dsp.End("ok", false)
		m.mDialFails.Inc()
		m.recordFailureLocked(ps, addr, err)
		return nil, err
	}
	dsp.End("ok", true)
	if ps.failures >= m.cfg.FailureThreshold {
		m.cfg.Obs.Log().Info("peer circuit closed", "addr", addr, "after_failures", ps.failures)
	}
	ps.client = c
	ps.failures = 0
	ps.backoff = 0
	ps.next = time.Time{}
	m.mLive.Add(1)
	return c, nil
}

// GetAny returns a healthy connection to any address in addrs — a wallet's
// replica group (§9) — together with the address chosen, so callers can
// report a later RPC failure against the right pool entry. Already-connected
// healthy peers are preferred (no dial at all); otherwise addresses are
// dialed in an order rotated per call, spreading load across the group.
// Every address failing returns the first error (usually the most
// informative: later addresses often fast-fail on open circuits).
func (m *Manager) GetAny(ctx context.Context, addrs []string) (*remote.Client, string, error) {
	if len(addrs) == 0 {
		return nil, "", errors.New("peer: GetAny: no addresses")
	}
	// Pass 1: reuse a live connection anywhere in the group.
	for _, addr := range addrs {
		if m.connected(addr) {
			if c, err := m.Get(ctx, addr); err == nil {
				return c, addr, nil
			}
		}
	}
	// Pass 2: dial, starting from a per-call rotation point.
	start := int(m.rr.Add(1) % uint64(len(addrs)))
	var firstErr error
	for i := range addrs {
		addr := addrs[(start+i)%len(addrs)]
		c, err := m.Get(ctx, addr)
		if err == nil {
			return c, addr, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if ctx.Err() != nil {
			break
		}
	}
	return nil, "", fmt.Errorf("peer: no reachable address among %v: %w", addrs, firstErr)
}

// connected reports whether a healthy pooled connection to addr exists right
// now, without dialing.
func (m *Manager) connected(addr string) bool {
	m.mu.Lock()
	ps := m.peers[addr]
	m.mu.Unlock()
	if ps == nil {
		return false
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.client != nil && ps.client.Healthy()
}

// recordFailureLocked advances addr's failure accounting; ps.mu must be held.
func (m *Manager) recordFailureLocked(ps *peerState, addr string, err error) {
	ps.failures++
	if ps.backoff == 0 {
		ps.backoff = m.cfg.BaseBackoff
	} else {
		ps.backoff *= 2
		if ps.backoff > m.cfg.MaxBackoff {
			ps.backoff = m.cfg.MaxBackoff
		}
	}
	ps.next = m.cfg.Clock.Now().Add(jitter(addr, ps.failures, ps.backoff))
	if ps.failures == m.cfg.FailureThreshold {
		m.mOpens.Inc()
		m.cfg.Obs.Log().Warn("peer circuit opened",
			"addr", addr, "failures", ps.failures, "retry_at", ps.next, "error", err)
	} else {
		m.cfg.Obs.Log().Debug("peer failure",
			"addr", addr, "failures", ps.failures, "backoff", ps.backoff, "error", err)
	}
}

// jitter spreads d over [d/2, d) deterministically per (addr, attempt), so
// many nodes backing off from one dead wallet do not redial in lockstep and
// tests stay reproducible without a seeded RNG.
func jitter(addr string, attempt int, d time.Duration) time.Duration {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", addr, attempt)
	frac := float64(h.Sum64()%1000) / 1000 // [0, 1)
	return d/2 + time.Duration(frac*float64(d/2))
}

// ReportFailure tells the pool an RPC on c failed in a way that indicates
// the connection (not the request) is bad. The report is ignored unless c is
// still the pooled connection for addr — a stale report about an already
// replaced client must not poison the fresh one — and, as a cheap filter,
// callers should only report when !c.Healthy(): application-level errors on
// a live connection (e.g. a NoProof response) are not peer failures.
func (m *Manager) ReportFailure(addr string, c *remote.Client) {
	ps := m.peer(addr)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.client != c || c == nil {
		return
	}
	ps.client.Close()
	ps.client = nil
	m.mEvictions.Inc()
	m.mLive.Add(-1)
	m.recordFailureLocked(ps, addr, errors.New("reported by caller"))
}

// SetRemoteDown installs (or clears) an external liveness verdict for addr.
// The gossip layer calls it cluster-wide: a member another node confirmed
// dead stops being dialed everywhere before each pool's own breaker trips.
// Marking a peer down evicts its pooled connection; clearing the verdict
// also resets the local breaker so the next Get dials immediately — the
// authority that declared the peer alive has fresher evidence than our
// stale failure count.
func (m *Manager) SetRemoteDown(addr string, down bool) {
	ps := m.peer(addr)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if down {
		if ps.remoteDown {
			return
		}
		ps.remoteDown = true
		if ps.client != nil {
			ps.client.Close()
			ps.client = nil
			m.mEvictions.Inc()
			m.mLive.Add(-1)
		}
		m.cfg.Obs.Log().Info("peer marked down by gossip", "addr", addr)
		return
	}
	// An alive verdict clears the gate and the breaker even when the gate
	// was never set: the authority saw the peer answer, so a locally
	// tripped circuit is stale evidence.
	if !ps.remoteDown && ps.failures == 0 {
		return
	}
	ps.remoteDown = false
	ps.failures = 0
	ps.backoff = 0
	ps.next = time.Time{}
	m.cfg.Obs.Log().Info("peer cleared by gossip", "addr", addr)
}

// HealthOf snapshots one peer's standing. The zero Health (StateClosed, no
// failures) is returned for an address the pool has never seen.
func (m *Manager) HealthOf(addr string) Health {
	m.mu.Lock()
	ps := m.peers[addr]
	m.mu.Unlock()
	h := Health{Addr: addr, State: StateClosed}
	if ps == nil {
		return h
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	h.ConsecutiveFailures = ps.failures
	h.Connected = ps.client != nil && ps.client.Healthy()
	h.RemoteDown = ps.remoteDown
	if ps.failures >= m.cfg.FailureThreshold {
		if m.cfg.Clock.Now().Before(ps.next) {
			h.State = StateOpen
			h.RetryAt = ps.next
		} else {
			h.State = StateHalfOpen
			h.RetryAt = ps.next
		}
	}
	if ps.remoteDown {
		h.State = StateOpen
	}
	return h
}

// Health snapshots every peer the pool has seen, keyed by address.
func (m *Manager) Health() map[string]Health {
	m.mu.Lock()
	addrs := make([]string, 0, len(m.peers))
	for a := range m.peers {
		addrs = append(addrs, a)
	}
	m.mu.Unlock()
	out := make(map[string]Health, len(addrs))
	for _, a := range addrs {
		out[a] = m.HealthOf(a)
	}
	return out
}

// Close tears down every pooled connection. The manager remains usable;
// subsequent Gets redial.
func (m *Manager) Close() {
	m.mu.Lock()
	peers := make([]*peerState, 0, len(m.peers))
	for _, ps := range m.peers {
		peers = append(peers, ps)
	}
	m.mu.Unlock()
	for _, ps := range peers {
		ps.mu.Lock()
		if ps.client != nil {
			ps.client.Close()
			ps.client = nil
			m.mLive.Add(-1)
		}
		ps.mu.Unlock()
	}
}
