package peer

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/obs"
	"drbac/internal/remote"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

var testStart = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

type env struct {
	t   *testing.T
	clk *clock.Fake
	net *transport.MemNetwork
	ids map[string]*core.Identity
	dir *core.MemDirectory
}

func newEnv(t *testing.T, names ...string) *env {
	t.Helper()
	e := &env{
		t:   t,
		clk: clock.NewFake(testStart),
		net: transport.NewMemNetwork(),
		ids: make(map[string]*core.Identity),
		dir: core.NewDirectory(),
	}
	for i, name := range names {
		seed := make([]byte, 32)
		seed[0] = byte(i + 1)
		copy(seed[1:], name)
		id, err := core.IdentityFromSeed(name, seed)
		if err != nil {
			t.Fatal(err)
		}
		e.ids[name] = id
		e.dir.Add(id.Entity())
	}
	return e
}

func (e *env) serve(addr, owner string) *remote.Server {
	e.t.Helper()
	w := wallet.New(wallet.Config{Owner: e.ids[owner], Clock: e.clk, Directory: e.dir})
	ln, err := e.net.Listen(addr, e.ids[owner])
	if err != nil {
		e.t.Fatal(err)
	}
	s := remote.Serve(w, ln)
	e.t.Cleanup(s.Close)
	return s
}

func (e *env) manager(clientName string, tweak func(*Config)) *Manager {
	e.t.Helper()
	cfg := Config{
		Dialer: e.net.Dialer(e.ids[clientName]),
		Clock:  e.clk,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	m := NewManager(cfg)
	e.t.Cleanup(m.Close)
	return m
}

func TestGetPoolsConnections(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	e.serve("bob.home", "bob")
	m := e.manager("alice", nil)

	ctx := context.Background()
	c1, err := m.Get(ctx, "bob.home")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.Get(ctx, "bob.home")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("second Get did not reuse the pooled connection")
	}
	if err := c1.Ping(ctx); err != nil {
		t.Fatalf("ping over pooled conn: %v", err)
	}
	h := m.HealthOf("bob.home")
	if h.State != StateClosed || !h.Connected || h.ConsecutiveFailures != 0 {
		t.Fatalf("health = %+v, want closed/connected", h)
	}
}

func TestGetRedialsAfterBrokenConnection(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	srv := e.serve("bob.home", "bob")
	m := e.manager("alice", nil)

	ctx := context.Background()
	c1, err := m.Get(ctx, "bob.home")
	if err != nil {
		t.Fatal(err)
	}
	// Kill the server side; the client's read loop exits.
	srv.Close()
	deadline := time.Now().Add(2 * time.Second)
	for c1.Healthy() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c1.Healthy() {
		t.Fatal("client did not notice dead server")
	}

	// Server comes back at the same address.
	e.serve("bob.home", "bob")
	c2, err := m.Get(ctx, "bob.home")
	if err != nil {
		t.Fatalf("redial after eviction: %v", err)
	}
	if c2 == c1 {
		t.Fatal("broken connection was not evicted")
	}
	if err := c2.Ping(ctx); err != nil {
		t.Fatalf("ping over redialed conn: %v", err)
	}
}

func TestCircuitOpensAndRecovers(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	m := e.manager("alice", func(c *Config) {
		c.FailureThreshold = 3
		c.BaseBackoff = 100 * time.Millisecond
		c.MaxBackoff = time.Second
	})
	ctx := context.Background()

	// Nothing listens at the address: three dials fail and open the circuit.
	for i := 0; i < 3; i++ {
		if _, err := m.Get(ctx, "bob.home"); err == nil {
			t.Fatalf("dial %d to dead address succeeded", i)
		}
	}
	h := m.HealthOf("bob.home")
	if h.State != StateOpen {
		t.Fatalf("state after 3 failures = %v, want open", h.State)
	}
	if h.ConsecutiveFailures != 3 {
		t.Fatalf("failures = %d, want 3", h.ConsecutiveFailures)
	}

	// Inside the backoff window: fast fail, no dial.
	if _, err := m.Get(ctx, "bob.home"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("get inside window = %v, want ErrCircuitOpen", err)
	}

	// After the window (max backoff is 1s; jitter keeps it under that):
	// the probe is admitted, and with the server back it closes the circuit.
	e.clk.Advance(2 * time.Second)
	if got := m.HealthOf("bob.home").State; got != StateHalfOpen {
		t.Fatalf("state after window = %v, want half-open", got)
	}
	e.serve("bob.home", "bob")
	c, err := m.Get(ctx, "bob.home")
	if err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	h = m.HealthOf("bob.home")
	if h.State != StateClosed || h.ConsecutiveFailures != 0 {
		t.Fatalf("health after recovery = %+v, want closed/0", h)
	}
}

func TestFailedProbeReopensWithLongerWindow(t *testing.T) {
	e := newEnv(t, "alice")
	m := e.manager("alice", func(c *Config) {
		c.FailureThreshold = 1
		c.BaseBackoff = 100 * time.Millisecond
		c.MaxBackoff = time.Second
	})
	ctx := context.Background()
	if _, err := m.Get(ctx, "dead"); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	first := m.HealthOf("dead").RetryAt
	e.clk.Advance(time.Second)
	if _, err := m.Get(ctx, "dead"); err == nil || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("probe should have dialed and failed, got %v", err)
	}
	second := m.HealthOf("dead").RetryAt
	if !second.After(first) {
		t.Fatalf("retry window did not move forward: %v -> %v", first, second)
	}
	if m.HealthOf("dead").ConsecutiveFailures != 2 {
		t.Fatalf("failures = %d, want 2", m.HealthOf("dead").ConsecutiveFailures)
	}
}

func TestReportFailureIgnoresStaleClient(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	e.serve("bob.home", "bob")
	m := e.manager("alice", nil)
	ctx := context.Background()

	c1, err := m.Get(ctx, "bob.home")
	if err != nil {
		t.Fatal(err)
	}
	m.ReportFailure("bob.home", c1)
	if h := m.HealthOf("bob.home"); h.Connected || h.ConsecutiveFailures != 1 {
		t.Fatalf("health after report = %+v, want evicted with 1 failure", h)
	}
	c2, err := m.Get(ctx, "bob.home")
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("reported client was not replaced")
	}
	// A stale report about the long-gone c1 must not evict c2.
	m.ReportFailure("bob.home", c1)
	c3, err := m.Get(ctx, "bob.home")
	if err != nil {
		t.Fatal(err)
	}
	if c3 != c2 {
		t.Fatal("stale failure report poisoned the fresh connection")
	}
}

func TestOnConnectRejectionCountsAsFailure(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	e.serve("bob.home", "bob")
	hookErr := errors.New("not authorized as a home wallet")
	m := e.manager("alice", func(c *Config) {
		c.FailureThreshold = 1
		c.OnConnect = func(ctx context.Context, addr string, cl *remote.Client) error {
			return hookErr
		}
	})
	if _, err := m.Get(context.Background(), "bob.home"); !errors.Is(err, hookErr) {
		t.Fatalf("get = %v, want OnConnect error", err)
	}
	if h := m.HealthOf("bob.home"); h.State != StateOpen {
		t.Fatalf("state = %v, want open after rejected connect", h.State)
	}
}

func TestGetHonorsCanceledContext(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	e.serve("bob.home", "bob")
	m := e.manager("alice", nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Get(ctx, "bob.home"); !errors.Is(err, context.Canceled) {
		t.Fatalf("get = %v, want context.Canceled", err)
	}
}

func TestManagerMetrics(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	e.serve("bob.home", "bob")
	reg := obs.NewRegistry()
	o := obs.New(nil, reg)
	m := e.manager("alice", func(c *Config) {
		c.Obs = o
		c.FailureThreshold = 1
	})
	ctx := context.Background()
	if _, err := m.Get(ctx, "bob.home"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(ctx, "dead"); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	snap := reg.Snapshot()
	if snap.Counters["drbac_peer_dials_total"] != 2 {
		t.Fatalf("dials = %d, want 2", snap.Counters["drbac_peer_dials_total"])
	}
	if snap.Counters["drbac_peer_dial_failures_total"] != 1 {
		t.Fatalf("dial failures = %d, want 1", snap.Counters["drbac_peer_dial_failures_total"])
	}
	if snap.Counters["drbac_peer_circuit_opens_total"] != 1 {
		t.Fatalf("circuit opens = %d, want 1", snap.Counters["drbac_peer_circuit_opens_total"])
	}
	if snap.Gauges["drbac_peer_connections"] != 1 {
		t.Fatalf("live connections = %d, want 1", snap.Gauges["drbac_peer_connections"])
	}
}

func TestJitterWithinHalfToFull(t *testing.T) {
	d := 400 * time.Millisecond
	for i := 1; i <= 10; i++ {
		j := jitter("addr", i, d)
		if j < d/2 || j >= d {
			t.Fatalf("jitter(%d) = %v outside [%v, %v)", i, j, d/2, d)
		}
	}
}

// TestGetAnyFailsOver drives the replica-group read path: GetAny prefers a
// live connection anywhere in the group, fails over to another member when
// one address is dead, and errors only when the whole group is down.
func TestGetAnyFailsOver(t *testing.T) {
	e := newEnv(t, "alice", "bob", "carol")
	bob := e.serve("bob.home", "bob")
	e.serve("carol.home", "carol")
	m := e.manager("alice", nil)
	group := []string{"bob.home", "carol.home", "nobody.home"}
	ctx := context.Background()

	c1, addr1, err := m.GetAny(ctx, group)
	if err != nil {
		t.Fatal(err)
	}
	if addr1 == "nobody.home" {
		t.Fatalf("GetAny chose the dead address %q", addr1)
	}

	// Pass 1 reuse: with a live pooled connection the same client returns,
	// regardless of the rotation point.
	for i := 0; i < 4; i++ {
		c2, addr2, err := m.GetAny(ctx, group)
		if err != nil {
			t.Fatal(err)
		}
		if c2 != c1 || addr2 != addr1 {
			t.Fatalf("GetAny = (%p, %q), want pooled (%p, %q)", c2, addr2, c1, addr1)
		}
	}

	// Kill bob entirely: GetAny must answer from carol.
	bob.Close()
	if addr1 == "bob.home" {
		m.ReportFailure("bob.home", c1)
	}
	c3, addr3, err := m.GetAny(ctx, group)
	if err != nil {
		t.Fatal(err)
	}
	if addr3 == "bob.home" {
		t.Fatalf("GetAny chose closed bob.home")
	}
	if !c3.Healthy() {
		t.Fatal("GetAny returned an unhealthy client")
	}

	// Whole group unreachable: a single wrapped error comes back.
	if _, _, err := m.GetAny(ctx, []string{"gone.one", "gone.two"}); err == nil {
		t.Fatal("GetAny succeeded against dead group")
	}
	if _, _, err := m.GetAny(ctx, nil); err == nil {
		t.Fatal("GetAny succeeded with no addresses")
	}
}

func TestGetAnyEmptyGroup(t *testing.T) {
	e := newEnv(t, "alice")
	m := e.manager("alice", nil)
	for _, group := range [][]string{nil, {}} {
		if _, _, err := m.GetAny(context.Background(), group); err == nil {
			t.Errorf("GetAny(%v) succeeded, want an error", group)
		}
	}
}

// GetAny over a group listing the same address twice must not double-pool:
// both picks return the one pooled connection, and the rotation arithmetic
// stays in bounds.
func TestGetAnyDuplicateAddresses(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	e.serve("bob.home", "bob")
	m := e.manager("alice", nil)
	group := []string{"bob.home", "bob.home", "bob.home"}
	ctx := context.Background()

	c1, addr1, err := m.GetAny(ctx, group)
	if err != nil {
		t.Fatal(err)
	}
	if addr1 != "bob.home" {
		t.Fatalf("GetAny answered from %q", addr1)
	}
	for i := 0; i < 5; i++ {
		c2, _, err := m.GetAny(ctx, group)
		if err != nil {
			t.Fatal(err)
		}
		if c2 != c1 {
			t.Fatal("duplicate addresses produced a second pooled connection")
		}
	}
	if h := m.HealthOf("bob.home"); !h.Connected {
		t.Fatal("pool reports bob.home not connected")
	}
	if n := len(m.Health()); n != 1 {
		t.Fatalf("pool tracks %d addresses, want 1", n)
	}
}

// A fully broken group aggregates into one error that names the group and
// wraps the first member's failure, so callers can log something useful.
func TestGetAnyAllBrokenAggregatesError(t *testing.T) {
	e := newEnv(t, "alice")
	m := e.manager("alice", nil)
	group := []string{"dead.one", "dead.two", "dead.three"}
	_, _, err := m.GetAny(context.Background(), group)
	if err == nil {
		t.Fatal("GetAny succeeded against an all-dead group")
	}
	for _, addr := range group {
		if !strings.Contains(err.Error(), addr) {
			t.Errorf("error %q does not name member %q", err, addr)
		}
	}
	if !strings.Contains(err.Error(), "no reachable address") {
		t.Errorf("error %q lacks the aggregate marker", err)
	}
}

func TestSetRemoteDownGatesAndClears(t *testing.T) {
	e := newEnv(t, "client", "server")
	e.serve("w", "server")
	m := e.manager("client", nil)
	ctx := context.Background()

	// A pooled healthy connection is evicted the moment gossip declares
	// the peer dead, and Get fast-fails without touching the network.
	c1, err := m.Get(ctx, "w")
	if err != nil {
		t.Fatal(err)
	}
	m.SetRemoteDown("w", true)
	if c1.Healthy() {
		t.Fatal("pooled connection survived a down verdict")
	}
	if _, err := m.Get(ctx, "w"); !errors.Is(err, ErrRemoteDown) {
		t.Fatalf("Get under down verdict: got %v, want ErrRemoteDown", err)
	}
	h := m.HealthOf("w")
	if !h.RemoteDown || h.State != StateOpen {
		t.Fatalf("health = %+v, want RemoteDown open", h)
	}

	// GetAny skips the down member and fails over to its replica.
	e.serve("w2", "server")
	if _, addr, err := m.GetAny(ctx, []string{"w", "w2"}); err != nil || addr != "w2" {
		t.Fatalf("GetAny = %s, %v; want w2", addr, err)
	}

	// An up verdict clears the gate AND the local breaker: the next Get
	// dials immediately with no backoff window to wait out.
	m.SetRemoteDown("w", false)
	if _, err := m.Get(ctx, "w"); err != nil {
		t.Fatalf("Get after up verdict: %v", err)
	}
	if h := m.HealthOf("w"); h.RemoteDown || h.State != StateClosed {
		t.Fatalf("health after clear = %+v", h)
	}
}

func TestUpVerdictResetsTrippedBreaker(t *testing.T) {
	e := newEnv(t, "client", "server")
	m := e.manager("client", nil)
	ctx := context.Background()

	// Trip the breaker against a dead address.
	for i := 0; i < 3; i++ {
		if _, err := m.Get(ctx, "gone"); err == nil {
			t.Fatal("dial to unserved address succeeded")
		}
	}
	if _, err := m.Get(ctx, "gone"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker did not trip: %v", err)
	}

	// The wallet comes up and gossip says so before our backoff elapses:
	// the verdict must beat the stale failure count.
	e.serve("gone", "server")
	m.SetRemoteDown("gone", false)
	if _, err := m.Get(ctx, "gone"); err != nil {
		t.Fatalf("Get after alive verdict: %v", err)
	}
}
