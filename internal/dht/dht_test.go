package dht

import (
	"context"
	"crypto/ed25519"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/transport"
	"drbac/internal/wallet"
	"drbac/internal/wire"
)

var testStart = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func testIdentity(t *testing.T, name string, n byte) *core.Identity {
	t.Helper()
	seed := make([]byte, 32)
	seed[0] = n
	copy(seed[1:], name)
	id, err := core.IdentityFromSeed(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestIDDerivation(t *testing.T) {
	id := testIdentity(t, "alice", 1)
	fromEnt := IDFromEntity(id.Entity())
	fromKey := IDFromKey(id.Entity().Key)
	if fromEnt != fromKey {
		t.Fatalf("IDFromEntity %s != IDFromKey %s", fromEnt, fromKey)
	}
	fromEID, err := IDFromEntityID(id.ID())
	if err != nil {
		t.Fatal(err)
	}
	if fromEID != fromEnt {
		t.Fatalf("IDFromEntityID %s != IDFromEntity %s", fromEID, fromEnt)
	}
	// The DHT ID is the fingerprint's hex prefix: self-certifying both ways.
	if !strings.HasPrefix(string(id.ID()), fromEnt.String()) {
		t.Fatalf("ID %s is not a prefix of fingerprint %s", fromEnt, id.ID())
	}
	if _, err := IDFromEntityID(core.EntityID("zz")); err == nil {
		t.Fatal("malformed fingerprint accepted")
	}
	if _, err := IDFromBytes([]byte("short")); err == nil {
		t.Fatal("short wire ID accepted")
	}
}

func TestDistanceAndBuckets(t *testing.T) {
	var a, b ID
	b[0] = 0x80 // differs in the very first bit → bucket 159
	if i, ok := BucketIndex(a, b); !ok || i != 159 {
		t.Fatalf("BucketIndex = %d, %v; want 159, true", i, ok)
	}
	var c ID
	c[IDLen-1] = 0x01 // differs only in the last bit → bucket 0
	if i, ok := BucketIndex(a, c); !ok || i != 0 {
		t.Fatalf("BucketIndex = %d, %v; want 0, true", i, ok)
	}
	if _, ok := BucketIndex(a, a); ok {
		t.Fatal("self must not map to a bucket")
	}
	if !Less(Distance(a, c), Distance(a, b)) {
		t.Fatal("distance ordering broken")
	}
}

func idWithPrefix(first byte, rest byte) ID {
	var id ID
	id[0] = first
	for i := 1; i < IDLen; i++ {
		id[i] = rest
	}
	return id
}

func TestTableLRUAndProbation(t *testing.T) {
	self := ID{}
	tb := NewTable(self, 2)
	// Three contacts in the same bucket (top bit set → bucket 159).
	c1 := Contact{ID: idWithPrefix(0x80, 1), Addr: "a1"}
	c2 := Contact{ID: idWithPrefix(0x80, 2), Addr: "a2"}
	c3 := Contact{ID: idWithPrefix(0x80, 3), Addr: "a3"}
	if _, full := tb.Update(c1); full {
		t.Fatal("bucket reported full at size 0")
	}
	tb.Update(c2)
	evict, full := tb.Update(c3)
	if !full || evict.ID != c1.ID {
		t.Fatalf("want probation on oldest c1, got full=%v evict=%s", full, evict.ID.Short())
	}
	if tb.Contains(c3.ID) {
		t.Fatal("newcomer admitted to a full bucket without probation")
	}
	// Touching c1 makes c2 the eviction candidate.
	tb.Update(c1)
	if evict, full = tb.Update(c3); !full || evict.ID != c2.ID {
		t.Fatalf("after touch, want candidate c2, got %s", evict.ID.Short())
	}
	// Probation failure: replace the dead old-timer.
	tb.Replace(c2, c3)
	if tb.Contains(c2.ID) || !tb.Contains(c3.ID) {
		t.Fatal("Replace did not swap contacts")
	}
	// Self and empty addresses never enter.
	if _, full := tb.Update(Contact{ID: self, Addr: "self"}); full || tb.Contains(self) {
		t.Fatal("self entered the table")
	}
	tb.Update(Contact{ID: idWithPrefix(0x40, 1)})
	if tb.Len() != 2 {
		t.Fatalf("table len = %d, want 2", tb.Len())
	}
	got := tb.Closest(c1.ID, 10)
	if len(got) != 2 || got[0].ID != c1.ID {
		t.Fatalf("Closest ordering wrong: %v", got)
	}
}

func TestRecordSignVerify(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	mallory := testIdentity(t, "mallory", 2)
	now := testStart

	rec, err := SignRecord(alice, []string{"wallet.alice"}, 1, now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRecord(&rec, now); err != nil {
		t.Fatalf("fresh record rejected: %v", err)
	}
	if RecordKey(&rec) != IDFromEntity(alice.Entity()) {
		t.Fatal("record key is not the signer's ID")
	}

	tampered := rec
	tampered.Addrs = []string{"wallet.evil"}
	if err := VerifyRecord(&tampered, now); !errors.Is(err, ErrRecordBadSig) {
		t.Fatalf("tampered record: got %v, want ErrRecordBadSig", err)
	}

	unsigned := rec
	unsigned.Sig = nil
	if err := VerifyRecord(&unsigned, now); !errors.Is(err, ErrRecordUnsigned) {
		t.Fatalf("unsigned record: got %v, want ErrRecordUnsigned", err)
	}

	// Key mismatch: mallory signs a record that claims alice's key.
	forged, err := SignRecord(mallory, []string{"wallet.evil"}, 9, now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	forged.PublicKey = append([]byte(nil), alice.Entity().Key...)
	if err := VerifyRecord(&forged, now); !errors.Is(err, ErrRecordBadSig) {
		t.Fatalf("key-mismatched record: got %v, want ErrRecordBadSig", err)
	}

	badKey := rec
	badKey.PublicKey = []byte("short")
	if err := VerifyRecord(&badKey, now); !errors.Is(err, ErrRecordBadKey) {
		t.Fatalf("bad key: got %v, want ErrRecordBadKey", err)
	}

	if err := VerifyRecord(&rec, now.Add(2*time.Hour)); !errors.Is(err, ErrRecordExpired) {
		t.Fatalf("expired record: got %v, want ErrRecordExpired", err)
	}

	if _, err := SignRecord(alice, nil, 1, now, time.Hour); !errors.Is(err, ErrRecordNoAddrs) {
		t.Fatal("record with no addresses signed")
	}

	newer, _ := SignRecord(alice, []string{"wallet.alice2"}, 2, now.Add(time.Minute), time.Hour)
	if !Fresher(&newer, &rec) || Fresher(&rec, &newer) {
		t.Fatal("Fresher does not prefer the higher seq")
	}
}

// testNet is a cluster of DHT-enabled served wallets on one MemNetwork.
type testNet struct {
	t   *testing.T
	clk *clock.Fake
	net *transport.MemNetwork
}

type testNode struct {
	id      *core.Identity
	addr    string
	node    *Node
	peers   *peer.Manager
	server  *remote.Server
	network *testNet
}

func newTestNet(t *testing.T) *testNet {
	return &testNet{t: t, clk: clock.NewFake(testStart), net: transport.NewMemNetwork()}
}

func (tn *testNet) start(name string, n byte, opts ...func(*Config)) *testNode {
	tn.t.Helper()
	id := testIdentity(tn.t, name, n)
	addr := "wallet." + name
	peers := peer.NewManager(peer.Config{
		Dialer:      tn.net.Dialer(id),
		Clock:       tn.clk,
		CallTimeout: 5 * time.Second,
	})
	cfg := Config{
		Identity:  id,
		Addr:      addr,
		Peers:     peers,
		Clock:     tn.clk,
		K:         4,
		RecordTTL: time.Hour,
	}
	for _, o := range opts {
		o(&cfg)
	}
	node, err := NewNode(cfg)
	if err != nil {
		tn.t.Fatal(err)
	}
	w := wallet.New(wallet.Config{Owner: id, Clock: tn.clk})
	ln, err := tn.net.Listen(addr, id)
	if err != nil {
		tn.t.Fatal(err)
	}
	srv := remote.ServeOptions(w, ln, remote.Options{DHT: node, DHTStats: node.Stats})
	nd := &testNode{id: id, addr: addr, node: node, peers: peers, server: srv, network: tn}
	tn.t.Cleanup(func() {
		node.Close()
		srv.Close()
		peers.Close()
	})
	return nd
}

func TestBootstrapAnnounceResolve(t *testing.T) {
	tn := newTestNet(t)
	ctx := context.Background()

	seed := tn.start("seed", 1)
	nodes := []*testNode{seed}
	for i := 2; i <= 6; i++ {
		n := tn.start(fmt.Sprintf("n%d", i), byte(i))
		if err := n.node.Bootstrap(ctx, []string{seed.addr}); err != nil {
			t.Fatalf("bootstrap %s: %v", n.addr, err)
		}
		nodes = append(nodes, n)
	}

	// n2 announces an application entity it serves as home wallet.
	ent := testIdentity(t, "maria", 42)
	home := nodes[1]
	if err := home.node.Announce(ctx, ent, []string{home.addr}); err != nil {
		t.Fatal(err)
	}

	// Every other node resolves maria's home through the DHT.
	for _, n := range nodes[2:] {
		addrs, err := n.node.Resolve(ctx, ent.ID())
		if err != nil {
			t.Fatalf("%s: resolve: %v", n.addr, err)
		}
		if len(addrs) != 1 || addrs[0] != home.addr {
			t.Fatalf("%s: resolved %v, want [%s]", n.addr, addrs, home.addr)
		}
	}

	// Unknown entities fail with ErrNotFound.
	ghost := testIdentity(t, "ghost", 99)
	if _, err := nodes[3].node.Resolve(ctx, ghost.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost resolve: got %v, want ErrNotFound", err)
	}

	// Stats reflect the traffic.
	st := home.node.Stats()
	if st.Announced != 1 {
		t.Fatalf("announced = %d, want 1", st.Announced)
	}
	if st.BucketPeers == 0 {
		t.Fatal("home node learned no contacts")
	}
	if st.ID != IDFromEntity(home.id.Entity()).String() {
		t.Fatalf("stats ID %s is not the node's ID", st.ID)
	}
}

func TestRepublishRefreshesExpiringRecords(t *testing.T) {
	tn := newTestNet(t)
	ctx := context.Background()
	a := tn.start("a", 1, func(c *Config) { c.RecordTTL = 30 * time.Minute })
	b := tn.start("b", 2, func(c *Config) { c.RecordTTL = 30 * time.Minute })
	if err := b.node.Bootstrap(ctx, []string{a.addr}); err != nil {
		t.Fatal(err)
	}
	ent := testIdentity(t, "svc", 7)
	if err := a.node.Announce(ctx, ent, []string{a.addr}); err != nil {
		t.Fatal(err)
	}
	key, _ := IDFromEntityID(ent.ID())
	rec0 := b.node.heldRecord(key)
	if rec0 == nil {
		t.Fatal("record not replicated to b")
	}

	// Half a TTL later the original record is still valid; a republish
	// bumps the seq everywhere.
	tn.clk.Advance(15 * time.Minute)
	a.node.republishAll()
	rec1 := b.node.heldRecord(key)
	if rec1 == nil || rec1.Seq <= rec0.Seq {
		t.Fatalf("republish did not advance the replica: %+v", rec1)
	}

	// Without republish, expiry drops the record (serve-time check).
	tn.clk.Advance(31 * time.Minute)
	if rec := b.node.heldRecord(key); rec != nil {
		t.Fatalf("expired record still served: %+v", rec)
	}
	b.node.expire()
	b.node.mu.Lock()
	held := len(b.node.store)
	b.node.mu.Unlock()
	if held != 0 {
		t.Fatalf("expire left %d records", held)
	}
}

func TestHandleStoreRefusals(t *testing.T) {
	tn := newTestNet(t)
	a := tn.start("a", 1)
	mallory := testIdentity(t, "mallory", 66)
	alice := testIdentity(t, "alice", 67)

	from := wire.DHTContact{Addr: "wallet.mallory"}
	good, err := SignRecord(alice, []string{"wallet.alice"}, 1, tn.clk.Now(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(wire.DHTRecord) wire.DHTRecord
		want   error
	}{
		{"unsigned", func(r wire.DHTRecord) wire.DHTRecord { r.Sig = nil; return r }, ErrRecordUnsigned},
		{"tampered", func(r wire.DHTRecord) wire.DHTRecord { r.Addrs = []string{"wallet.evil"}; return r }, ErrRecordBadSig},
		{"key-mismatch", func(r wire.DHTRecord) wire.DHTRecord {
			forged, _ := SignRecord(mallory, r.Addrs, r.Seq, r.IssuedAt, time.Hour)
			forged.PublicKey = append([]byte(nil), alice.Entity().Key...)
			return forged
		}, ErrRecordBadSig},
		{"expired", func(r wire.DHTRecord) wire.DHTRecord {
			old, _ := SignRecord(alice, r.Addrs, r.Seq, r.IssuedAt.Add(-2*time.Hour), time.Hour)
			return old
		}, ErrRecordExpired},
	}
	for _, tc := range cases {
		err := a.node.HandleStore(mallory.Entity(), wire.DHTStoreReq{From: from, Record: tc.mutate(good)})
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if got := a.node.Stats().StoresRefused; got != int64(len(cases)) {
		t.Fatalf("storesRefused = %d, want %d", got, len(cases))
	}
	if a.node.Stats().ProviderRecords != 0 {
		t.Fatal("a refused record was stored anyway")
	}

	// The genuine record is accepted, and a replayed stale seq is a no-op.
	if err := a.node.HandleStore(mallory.Entity(), wire.DHTStoreReq{From: from, Record: good}); err != nil {
		t.Fatal(err)
	}
	newer, _ := SignRecord(alice, []string{"wallet.alice2"}, 5, tn.clk.Now(), time.Hour)
	if err := a.node.HandleStore(mallory.Entity(), wire.DHTStoreReq{From: from, Record: newer}); err != nil {
		t.Fatal(err)
	}
	if err := a.node.HandleStore(mallory.Entity(), wire.DHTStoreReq{From: from, Record: good}); err != nil {
		t.Fatal(err)
	}
	key := RecordKey(&good)
	if rec := a.node.heldRecord(key); rec == nil || rec.Seq != 5 {
		t.Fatalf("stale replay clawed back the record: %+v", rec)
	}
}

func TestFindValueServedOnlyVerified(t *testing.T) {
	tn := newTestNet(t)
	a := tn.start("a", 1)
	alice := testIdentity(t, "alice", 3)
	rec, _ := SignRecord(alice, []string{"wallet.alice"}, 1, tn.clk.Now(), time.Hour)
	key := RecordKey(&rec)
	// Poison the store directly with a forged record: serve-time
	// verification must still refuse to hand it out.
	forged := rec
	forged.Addrs = []string{"wallet.evil"}
	a.node.mu.Lock()
	a.node.store[key] = &forged
	a.node.mu.Unlock()
	resp, err := a.node.HandleFindValue(alice.Entity(), wire.DHTFindReq{Target: key[:]})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Record != nil {
		t.Fatal("poisoned record served")
	}
}

func TestContactIdentityMismatchDropped(t *testing.T) {
	tn := newTestNet(t)
	ctx := context.Background()
	a := tn.start("a", 1)
	b := tn.start("b", 2)
	// a learns a contact claiming b's address under a fabricated ID; the
	// dial authenticates b's real key, so the fake contact is dropped and
	// the call refused.
	var fake ID
	fake[0] = 0xFF
	a.node.table.Update(Contact{ID: fake, Addr: b.addr})
	if _, err := a.node.contactClient(ctx, Contact{ID: fake, Addr: b.addr}); err == nil {
		t.Fatal("identity-mismatched contact dialable")
	}
	if a.node.table.Contains(fake) {
		t.Fatal("mismatched contact kept in table")
	}
}

func FuzzRecordVerify(f *testing.F) {
	id, _ := core.IdentityFromSeed("fuzz", make([]byte, 32))
	rec, _ := SignRecord(id, []string{"wallet.fuzz"}, 1, testStart, time.Hour)
	f.Add(rec.PublicKey, []byte(rec.Addrs[0]), rec.Seq, rec.IssuedAt.UnixNano(), int64(rec.TTLSeconds), rec.Sig)
	f.Add([]byte{}, []byte{}, uint64(0), int64(0), int64(-1), []byte{})
	f.Fuzz(func(t *testing.T, pub, addr []byte, seq uint64, issued, ttl int64, sig []byte) {
		r := wire.DHTRecord{
			PublicKey:  pub,
			Addrs:      []string{string(addr)},
			Seq:        seq,
			IssuedAt:   time.Unix(0, issued),
			TTLSeconds: int(ttl),
			Sig:        sig,
		}
		// Must never panic, and must never accept a record whose signature
		// was not made by the embedded key.
		err := VerifyRecord(&r, testStart)
		if err == nil {
			ent := core.Entity{Key: ed25519.PublicKey(r.PublicKey)}
			if !core.VerifyBytes(ent, recordSigningBytes(&r), r.Sig) {
				t.Fatalf("accepted record with bad signature: %s", hex.EncodeToString(sig))
			}
		}
	})
}
