package dht

import (
	"sort"
	"sync"
)

// Contact names one DHT peer: its self-certifying ID and wallet address.
type Contact struct {
	ID   ID
	Addr string
}

// Table is a node's Kademlia routing table: 160 k-buckets of contacts
// ordered least-recently-seen first. Bucket i holds peers whose XOR
// distance to self has its highest bit at position i, so nearby buckets
// are sparse and the table as a whole holds O(k·log n) contacts.
//
// Insertion is LRU-with-probation: a full bucket never admits a new
// contact directly — Update hands back the least-recently-seen occupant
// and the node pings it; only if that ping fails does Replace swap the
// newcomer in. Kademlia's insight (kept here) is that the longest-lived
// peers are the most likely to stay, so old contacts are never displaced
// by unproven ones — which also blunts table-takeover flooding.
type Table struct {
	mu      sync.Mutex
	self    ID
	k       int
	buckets [IDLen * 8][]Contact
}

// NewTable builds a routing table for self with bucket capacity k.
func NewTable(self ID, k int) *Table {
	if k <= 0 {
		k = DefaultK
	}
	return &Table{self: self, k: k}
}

// Self returns the table owner's ID.
func (t *Table) Self() ID { return t.self }

// Update records that c was seen live. A seen contact moves to
// most-recently-seen; a new contact is appended when its bucket has room.
// When the bucket is full, Update does not insert: it returns the bucket's
// least-recently-seen occupant and full=true, and the caller decides by
// pinging it (Replace on failure, nothing on success — the newcomer is
// dropped). Self and address-less contacts are ignored.
func (t *Table) Update(c Contact) (evictCandidate Contact, full bool) {
	if c.Addr == "" {
		return Contact{}, false
	}
	i, ok := BucketIndex(t.self, c.ID)
	if !ok {
		return Contact{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buckets[i]
	for j, existing := range b {
		if existing.ID == c.ID {
			copy(b[j:], b[j+1:])
			b[len(b)-1] = c
			return Contact{}, false
		}
	}
	if len(b) < t.k {
		t.buckets[i] = append(b, c)
		return Contact{}, false
	}
	return b[0], true
}

// Replace removes old (if still present) and inserts c in its bucket —
// the ping-before-evict resolution when the probation ping failed.
func (t *Table) Replace(old, c Contact) {
	t.Remove(old.ID)
	t.Update(c)
}

// Remove drops a contact (dead peer, or identity mismatch on dial).
func (t *Table) Remove(id ID) {
	i, ok := BucketIndex(t.self, id)
	if !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buckets[i]
	for j, existing := range b {
		if existing.ID == id {
			t.buckets[i] = append(b[:j:j], b[j+1:]...)
			return
		}
	}
}

// Closest returns up to n contacts ordered by XOR distance to target.
func (t *Table) Closest(target ID, n int) []Contact {
	t.mu.Lock()
	all := make([]Contact, 0, t.sizeLocked())
	for _, b := range t.buckets {
		all = append(all, b...)
	}
	t.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		return Less(Distance(all[i].ID, target), Distance(all[j].ID, target))
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Contains reports whether id is in the table.
func (t *Table) Contains(id ID) bool {
	i, ok := BucketIndex(t.self, id)
	if !ok {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, existing := range t.buckets[i] {
		if existing.ID == id {
			return true
		}
	}
	return false
}

// Len counts contacts across all buckets.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sizeLocked()
}

func (t *Table) sizeLocked() int {
	n := 0
	for _, b := range t.buckets {
		n += len(b)
	}
	return n
}
