package dht

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"drbac/internal/core"
	"drbac/internal/wire"
)

// recordContext domain-separates record signatures from every other
// signature the entity key makes (delegations, transport handshakes).
const recordContext = "drbac-dht-record-v1"

// Record signing and verification errors, distinguished so refusal tests
// can pin the exact reason.
var (
	ErrRecordUnsigned    = errors.New("dht: record is unsigned")
	ErrRecordBadKey      = errors.New("dht: record public key is not a valid ed25519 key")
	ErrRecordBadSig      = errors.New("dht: record signature does not verify against its entity key")
	ErrRecordNoAddrs     = errors.New("dht: record names no addresses")
	ErrRecordExpired     = errors.New("dht: record expired")
	ErrRecordKeyMismatch = errors.New("dht: record key does not match the requested target")
)

// MaxRecordAddrs bounds the addresses one record may carry; a larger list
// is refused as malformed (it would let one signer bloat every replica).
const MaxRecordAddrs = 16

// recordSigningBytes builds the canonical, length-framed byte string a
// record's signature covers: context, public key, addresses, seq, issue
// instant (UnixNano), and TTL. Length framing makes the encoding
// injective, so no two distinct records share signing bytes.
func recordSigningBytes(r *wire.DHTRecord) []byte {
	n := len(recordContext) + 8 + len(r.PublicKey) + 8
	for _, a := range r.Addrs {
		n += 8 + len(a)
	}
	n += 8 + 8 + 8
	buf := make([]byte, 0, n)
	appendFramed := func(b []byte) {
		var l [8]byte
		binary.BigEndian.PutUint64(l[:], uint64(len(b)))
		buf = append(buf, l[:]...)
		buf = append(buf, b...)
	}
	buf = append(buf, recordContext...)
	appendFramed(r.PublicKey)
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], uint64(len(r.Addrs)))
	buf = append(buf, c[:]...)
	for _, a := range r.Addrs {
		appendFramed([]byte(a))
	}
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], r.Seq)
	buf = append(buf, u[:]...)
	binary.BigEndian.PutUint64(u[:], uint64(r.IssuedAt.UnixNano()))
	buf = append(buf, u[:]...)
	binary.BigEndian.PutUint64(u[:], uint64(r.TTLSeconds))
	buf = append(buf, u[:]...)
	return buf
}

// SignRecord issues a provider record: id asserts its home wallet(s)
// listen at addrs, valid for ttl from now.
func SignRecord(id *core.Identity, addrs []string, seq uint64, now time.Time, ttl time.Duration) (wire.DHTRecord, error) {
	if len(addrs) == 0 {
		return wire.DHTRecord{}, ErrRecordNoAddrs
	}
	if len(addrs) > MaxRecordAddrs {
		return wire.DHTRecord{}, fmt.Errorf("dht: record names %d addresses, max %d", len(addrs), MaxRecordAddrs)
	}
	r := wire.DHTRecord{
		PublicKey:  append([]byte(nil), id.Entity().Key...),
		Addrs:      append([]string(nil), addrs...),
		Seq:        seq,
		IssuedAt:   now,
		TTLSeconds: int(ttl / time.Second),
	}
	if r.TTLSeconds <= 0 {
		return wire.DHTRecord{}, fmt.Errorf("dht: record TTL must be at least 1s, got %v", ttl)
	}
	r.Sig = id.SignBytes(recordSigningBytes(&r))
	return r, nil
}

// VerifyRecord checks a record's shape, signature, and freshness at now.
// It is the single gate every record passes on every path — a store
// request, a fetched lookup result, a republished refresh — so nothing
// unsigned, mis-signed, oversized, or expired is ever held or served.
func VerifyRecord(r *wire.DHTRecord, now time.Time) error {
	if r == nil {
		return errors.New("dht: nil record")
	}
	if len(r.PublicKey) != ed25519.PublicKeySize {
		return ErrRecordBadKey
	}
	if len(r.Addrs) == 0 {
		return ErrRecordNoAddrs
	}
	if len(r.Addrs) > MaxRecordAddrs {
		return fmt.Errorf("dht: record names %d addresses, max %d", len(r.Addrs), MaxRecordAddrs)
	}
	if r.TTLSeconds <= 0 {
		return ErrRecordExpired
	}
	if len(r.Sig) == 0 {
		return ErrRecordUnsigned
	}
	ent := core.Entity{Key: ed25519.PublicKey(r.PublicKey)}
	if !core.VerifyBytes(ent, recordSigningBytes(r), r.Sig) {
		return ErrRecordBadSig
	}
	if !now.Before(r.IssuedAt.Add(time.Duration(r.TTLSeconds) * time.Second)) {
		return ErrRecordExpired
	}
	return nil
}

// RecordKey derives the DHT key a record is stored under: the ID of its
// own embedded public key. Deriving from the record (never from the
// request) means a store cannot file a valid record under someone else's
// key.
func RecordKey(r *wire.DHTRecord) ID {
	return IDFromKey(ed25519.PublicKey(r.PublicKey))
}

// Fresher reports whether candidate should replace current: a greater
// Seq always wins, an equal Seq wins when issued no earlier. Republished
// records advance Seq, so stale copies never claw back.
func Fresher(candidate, current *wire.DHTRecord) bool {
	if current == nil {
		return true
	}
	if candidate.Seq != current.Seq {
		return candidate.Seq > current.Seq
	}
	return !candidate.IssuedAt.Before(current.IssuedAt)
}
