package dht

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/obs"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/wire"
)

// Defaults. K and Alpha are Kademlia's classic parameters scaled to
// coalition sizes (hundreds to thousands of wallets, not millions).
const (
	DefaultK             = 16
	DefaultAlpha         = 3
	DefaultRecordTTL     = time.Hour
	DefaultRepublish     = 10 * time.Minute
	DefaultProbeTimeout  = 2 * time.Second
	DefaultLookupTimeout = 10 * time.Second
)

// ErrNotFound reports a find-value lookup that exhausted the search
// without a verifiable record.
var ErrNotFound = errors.New("dht: no provider record found")

// Config assembles a Node.
type Config struct {
	// Identity is the wallet's operating identity; the node's ID derives
	// from its public key. Required.
	Identity *core.Identity
	// Addr is the wallet address this node advertises to peers (where its
	// server answers dht-* requests). Required.
	Addr string
	// Peers supplies pooled authenticated connections for outbound RPCs.
	// Required. The pool's circuit breakers double as the lookup's
	// fast-fail path for dead contacts.
	Peers *peer.Manager
	// Clock is the time source; nil means the system clock.
	Clock clock.Clock
	// Obs receives logs and metrics (nil discards both).
	Obs *obs.Obs
	// K is the bucket capacity and store replication factor; default 16.
	K int
	// Alpha is the lookup parallelism; default 3.
	Alpha int
	// RecordTTL bounds provider record life; default 1h.
	RecordTTL time.Duration
	// Republish is the announce refresh interval; default 10m. It must be
	// comfortably under RecordTTL or records expire between refreshes.
	Republish time.Duration
	// ProbeTimeout bounds the ping-before-evict probation probe.
	ProbeTimeout time.Duration
	// LookupTimeout bounds one iterative lookup end to end.
	LookupTimeout time.Duration
}

// announcement is one entity this node republishes a provider record for.
type announcement struct {
	id    *core.Identity
	addrs []string
	seq   uint64
}

// Node is a wallet's DHT participant: routing table, record store, and
// republisher. It implements remote.DHTHandler for the serving side and
// exposes Resolve/Announce/Bootstrap for the daemon and discovery.
type Node struct {
	cfg   Config
	self  Contact
	table *Table

	mu        sync.Mutex
	store     map[ID]*wire.DHTRecord
	announced map[core.EntityID]*announcement
	probing   map[int]bool // buckets with an in-flight probation probe
	closed    bool

	quit chan struct{}
	wg   sync.WaitGroup

	lookups       atomic.Int64
	stores        atomic.Int64
	storesRefused atomic.Int64

	mLookups       *obs.Counter
	mStores        *obs.Counter
	mStoresRefused *obs.Counter
}

// NewNode builds a DHT node. Call Start to run its republish loop and
// Close to tear it down.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Identity == nil {
		return nil, errors.New("dht: Config.Identity is required")
	}
	if cfg.Addr == "" {
		return nil, errors.New("dht: Config.Addr is required")
	}
	if cfg.Peers == nil {
		return nil, errors.New("dht: Config.Peers is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	if cfg.K <= 0 {
		cfg.K = DefaultK
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.RecordTTL <= 0 {
		cfg.RecordTTL = DefaultRecordTTL
	}
	if cfg.Republish <= 0 {
		cfg.Republish = DefaultRepublish
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.LookupTimeout <= 0 {
		cfg.LookupTimeout = DefaultLookupTimeout
	}
	self := Contact{ID: IDFromEntity(cfg.Identity.Entity()), Addr: cfg.Addr}
	n := &Node{
		cfg:       cfg,
		self:      self,
		table:     NewTable(self.ID, cfg.K),
		store:     make(map[ID]*wire.DHTRecord),
		announced: make(map[core.EntityID]*announcement),
		probing:   make(map[int]bool),
		quit:      make(chan struct{}),
	}
	o := cfg.Obs
	n.mLookups = o.Counter("drbac_dht_lookups_total")
	n.mStores = o.Counter("drbac_dht_stores_total")
	n.mStoresRefused = o.Counter("drbac_dht_stores_refused_total")
	if o.Registry() != nil {
		o.Registry().GaugeFunc("drbac_dht_bucket_peers", func() int64 { return int64(n.table.Len()) })
		o.Registry().GaugeFunc("drbac_dht_provider_records", func() int64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return int64(len(n.store))
		})
	}
	return n, nil
}

// Self returns this node's contact.
func (n *Node) Self() Contact { return n.self }

// Table exposes the routing table (tests and stats).
func (n *Node) Table() *Table { return n.table }

// Start runs the republish/expiry loop.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.republishLoop()
}

// Close stops the background loop and waits for in-flight probes.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.quit)
	n.wg.Wait()
}

// Learn records a transport-authenticated sighting of a peer wallet at
// addr. The contact ID comes from the authenticated entity — never from
// claimed bytes — so the table only ever holds self-certified identities.
func (n *Node) Learn(ent core.Entity, addr string) {
	n.insert(Contact{ID: IDFromEntity(ent), Addr: addr})
}

// insert adds c to the routing table, resolving full buckets with an
// asynchronous ping-before-evict probation probe (single-flight per
// bucket: while one probe is in flight further newcomers to that bucket
// are dropped, which is Kademlia's behavior under flood).
func (n *Node) insert(c Contact) {
	oldest, full := n.table.Update(c)
	if !full {
		return
	}
	bucket, ok := BucketIndex(n.self.ID, c.ID)
	if !ok {
		return
	}
	n.mu.Lock()
	if n.closed || n.probing[bucket] {
		n.mu.Unlock()
		return
	}
	n.probing[bucket] = true
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer func() {
			n.mu.Lock()
			delete(n.probing, bucket)
			n.mu.Unlock()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ProbeTimeout)
		defer cancel()
		cl, err := n.contactClient(ctx, oldest)
		if err == nil {
			err = cl.Ping(ctx)
		}
		if err == nil {
			// The old-timer answered: it stays, the newcomer is dropped.
			n.table.Update(oldest)
			return
		}
		n.cfg.Obs.Log().Debug("dht evicting unresponsive contact",
			"old", oldest.ID.Short(), "new", c.ID.Short(), "error", err)
		n.table.Replace(oldest, c)
	}()
}

// contactClient dials (or reuses) a connection to c and verifies the
// transport-authenticated identity matches the contact's claimed ID. A
// mismatch drops the contact: someone advertised an ID they cannot
// authenticate as.
func (n *Node) contactClient(ctx context.Context, c Contact) (*remote.Client, error) {
	cl, err := n.cfg.Peers.Get(ctx, c.Addr)
	if err != nil {
		return nil, err
	}
	if got := IDFromEntity(cl.Peer()); got != c.ID {
		n.table.Remove(c.ID)
		return nil, fmt.Errorf("dht: %s authenticated as %s, not the advertised %s; contact dropped",
			c.Addr, got.Short(), c.ID.Short())
	}
	return cl, nil
}

// Bootstrap seeds the routing table from one or more known wallet
// addresses (their IDs are learned from the authenticated handshake, not
// configured) and then performs a self-lookup to populate nearby buckets.
// At least one address must answer.
func (n *Node) Bootstrap(ctx context.Context, addrs []string) error {
	var ok int
	var lastErr error
	for _, addr := range addrs {
		if addr == "" || addr == n.self.Addr {
			continue
		}
		cl, err := n.cfg.Peers.Get(ctx, addr)
		if err != nil {
			lastErr = err
			continue
		}
		n.Learn(cl.Peer(), addr)
		ok++
	}
	if ok == 0 {
		if lastErr == nil {
			return errors.New("dht: bootstrap: no usable addresses")
		}
		return fmt.Errorf("dht: bootstrap: no seed reachable: %w", lastErr)
	}
	_, _, err := n.lookup(ctx, n.self.ID, false)
	return err
}

// ---- serving side (remote.DHTHandler) ----

// HandleFindNode answers with the closest known contacts to the target.
func (n *Node) HandleFindNode(from core.Entity, req wire.DHTFindReq) (wire.DHTFindResp, error) {
	n.learnRequester(from, req.From)
	target, err := IDFromBytes(req.Target)
	if err != nil {
		return wire.DHTFindResp{}, err
	}
	return wire.DHTFindResp{Contacts: toWire(n.table.Closest(target, n.cfg.K))}, nil
}

// HandleFindValue answers with the held record under the target key, or
// the closest contacts on a miss. Records are re-verified at serve time:
// one that expired while held is dropped, not served.
func (n *Node) HandleFindValue(from core.Entity, req wire.DHTFindReq) (wire.DHTFindResp, error) {
	n.learnRequester(from, req.From)
	target, err := IDFromBytes(req.Target)
	if err != nil {
		return wire.DHTFindResp{}, err
	}
	if rec := n.heldRecord(target); rec != nil {
		return wire.DHTFindResp{Record: rec}, nil
	}
	return wire.DHTFindResp{Contacts: toWire(n.table.Closest(target, n.cfg.K))}, nil
}

// HandleStore verifies and stores an offered provider record. Refusals
// (unsigned, mis-signed, malformed, expired) are errors — the record is
// never held and the refusal is counted.
func (n *Node) HandleStore(from core.Entity, req wire.DHTStoreReq) error {
	n.learnRequester(from, req.From)
	rec := req.Record
	if err := VerifyRecord(&rec, n.cfg.Clock.Now()); err != nil {
		n.storesRefused.Add(1)
		n.mStoresRefused.Inc()
		n.cfg.Obs.Log().Warn("dht store refused",
			"from", from.ID().Short(), "error", err)
		return err
	}
	key := RecordKey(&rec)
	n.mu.Lock()
	defer n.mu.Unlock()
	if !Fresher(&rec, n.store[key]) {
		// Not an attack, just a stale republication racing a fresh one.
		return nil
	}
	n.store[key] = &rec
	n.stores.Add(1)
	n.mStores.Inc()
	return nil
}

// learnRequester inserts the authenticated requester using its advertised
// listen address (the transport only authenticates the key, not where the
// peer's own server listens).
func (n *Node) learnRequester(from core.Entity, claimed wire.DHTContact) {
	if claimed.Addr == "" {
		return
	}
	n.Learn(from, claimed.Addr)
}

// heldRecord returns the verified record under key, dropping it if it
// expired while held.
func (n *Node) heldRecord(key ID) *wire.DHTRecord {
	n.mu.Lock()
	rec := n.store[key]
	n.mu.Unlock()
	if rec == nil {
		return nil
	}
	if err := VerifyRecord(rec, n.cfg.Clock.Now()); err != nil {
		n.mu.Lock()
		if n.store[key] == rec {
			delete(n.store, key)
		}
		n.mu.Unlock()
		return nil
	}
	return rec
}

func toWire(cs []Contact) []wire.DHTContact {
	out := make([]wire.DHTContact, 0, len(cs))
	for _, c := range cs {
		out = append(out, wire.DHTContact{ID: append([]byte(nil), c.ID[:]...), Addr: c.Addr})
	}
	return out
}

// ---- iterative lookup ----

// lookupState tracks one iterative lookup's candidate set.
type lookupState struct {
	target  ID
	k       int
	known   map[ID]Contact
	queried map[ID]bool
}

func (ls *lookupState) add(c Contact) {
	if c.Addr == "" {
		return
	}
	if _, ok := ls.known[c.ID]; !ok {
		ls.known[c.ID] = c
	}
}

// next returns up to alpha unqueried contacts among the k closest known.
// Restricting candidates to the current k closest is what terminates the
// search: once they have all been asked, no closer node can appear.
func (ls *lookupState) next(alpha int) []Contact {
	all := make([]Contact, 0, len(ls.known))
	for _, c := range ls.known {
		all = append(all, c)
	}
	sort.Slice(all, func(i, j int) bool {
		return Less(Distance(all[i].ID, ls.target), Distance(all[j].ID, ls.target))
	})
	if len(all) > ls.k {
		all = all[:ls.k]
	}
	batch := make([]Contact, 0, alpha)
	for _, c := range all {
		if !ls.queried[c.ID] {
			batch = append(batch, c)
			if len(batch) == alpha {
				break
			}
		}
	}
	return batch
}

func (ls *lookupState) closest(n int) []Contact {
	all := make([]Contact, 0, len(ls.known))
	for id, c := range ls.known {
		if ls.queried[id] {
			all = append(all, c)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		return Less(Distance(all[i].ID, ls.target), Distance(all[j].ID, ls.target))
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// lookup runs the iterative Kademlia search: query the α closest known
// contacts, merge the contacts they return, repeat until the k closest
// have all answered (or failed). With findValue set it returns as soon as
// a verified record under the target key appears; invalid records are
// discarded and the search continues — a forged record cannot even
// degrade the lookup, only waste one hop.
func (n *Node) lookup(ctx context.Context, target ID, findValue bool) (*wire.DHTRecord, []Contact, error) {
	n.lookups.Add(1)
	n.mLookups.Inc()
	ctx, cancel := context.WithTimeout(ctx, n.cfg.LookupTimeout)
	defer cancel()

	ls := &lookupState{
		target:  target,
		k:       n.cfg.K,
		known:   make(map[ID]Contact),
		queried: make(map[ID]bool),
	}
	for _, c := range n.table.Closest(target, n.cfg.K) {
		ls.add(c)
	}

	type reply struct {
		from Contact
		resp wire.DHTFindResp
		err  error
	}
	wreq := wire.DHTFindReq{
		From:   wire.DHTContact{ID: append([]byte(nil), n.self.ID[:]...), Addr: n.self.Addr},
		Target: append([]byte(nil), target[:]...),
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, ls.closest(n.cfg.K), err
		}
		batch := ls.next(n.cfg.Alpha)
		if len(batch) == 0 {
			break
		}
		replies := make(chan reply, len(batch))
		for _, c := range batch {
			ls.queried[c.ID] = true
			go func(c Contact) {
				cl, err := n.contactClient(ctx, c)
				if err != nil {
					replies <- reply{from: c, err: err}
					return
				}
				var resp wire.DHTFindResp
				if findValue {
					resp, err = cl.DHTFindValue(ctx, wreq)
				} else {
					resp, err = cl.DHTFindNode(ctx, wreq)
				}
				replies <- reply{from: c, resp: resp, err: err}
			}(c)
		}
		for range batch {
			r := <-replies
			if r.err != nil {
				// Unreachable or misbehaving: out of the candidate set. The
				// peer pool's breaker handles future dial suppression.
				delete(ls.known, r.from.ID)
				n.cfg.Obs.Log().Debug("dht lookup hop failed",
					"contact", r.from.ID.Short(), "addr", r.from.Addr, "error", r.err)
				continue
			}
			// The responder proved live; keep it warm in the table.
			n.insert(r.from)
			if findValue && r.resp.Record != nil {
				rec := r.resp.Record
				if err := VerifyRecord(rec, n.cfg.Clock.Now()); err != nil {
					n.cfg.Obs.Log().Warn("dht lookup: invalid record discarded",
						"from", r.from.ID.Short(), "error", err)
				} else if RecordKey(rec) != target {
					n.cfg.Obs.Log().Warn("dht lookup: record for wrong key discarded",
						"from", r.from.ID.Short(), "got", RecordKey(rec).Short(), "want", target.Short())
				} else {
					return rec, ls.closest(n.cfg.K), nil
				}
			}
			for _, wc := range r.resp.Contacts {
				id, err := IDFromBytes(wc.ID)
				if err != nil || id == n.self.ID {
					continue
				}
				ls.add(Contact{ID: id, Addr: wc.Addr})
			}
		}
	}
	if findValue {
		return nil, ls.closest(n.cfg.K), ErrNotFound
	}
	return nil, ls.closest(n.cfg.K), nil
}

// Lookup finds the k closest live contacts to target (iterative
// find-node).
func (n *Node) Lookup(ctx context.Context, target ID) ([]Contact, error) {
	_, cs, err := n.lookup(ctx, target, false)
	return cs, err
}

// Resolve finds the home wallet address(es) of an entity: local store
// first (both held replicas and our own announcements live there), then
// an iterative find-value. Fetched records are verified and cached.
func (n *Node) Resolve(ctx context.Context, eid core.EntityID) ([]string, error) {
	target, err := IDFromEntityID(eid)
	if err != nil {
		return nil, err
	}
	if rec := n.heldRecord(target); rec != nil {
		return append([]string(nil), rec.Addrs...), nil
	}
	rec, _, err := n.lookup(ctx, target, true)
	if err != nil {
		return nil, fmt.Errorf("dht: resolve %s: %w", eid.Short(), err)
	}
	n.mu.Lock()
	if Fresher(rec, n.store[target]) {
		n.store[target] = rec
	}
	n.mu.Unlock()
	return append([]string(nil), rec.Addrs...), nil
}

// ---- announcements ----

// Announce registers identity as served at addrs and publishes its
// provider record now; the republish loop refreshes it every Republish
// interval with a bumped sequence number. Re-announcing the same identity
// (e.g. on a shard-map epoch change) replaces its addresses.
func (n *Node) Announce(ctx context.Context, id *core.Identity, addrs []string) error {
	if id == nil {
		return errors.New("dht: Announce: nil identity")
	}
	if len(addrs) == 0 {
		return ErrRecordNoAddrs
	}
	n.mu.Lock()
	a := n.announced[id.ID()]
	if a == nil {
		a = &announcement{id: id}
		n.announced[id.ID()] = a
	}
	a.addrs = append([]string(nil), addrs...)
	a.seq++
	seq := a.seq
	n.mu.Unlock()
	return n.publish(ctx, id, addrs, seq)
}

// publish signs a fresh record and stores it locally plus at the k
// closest nodes to its key.
func (n *Node) publish(ctx context.Context, id *core.Identity, addrs []string, seq uint64) error {
	rec, err := SignRecord(id, addrs, seq, n.cfg.Clock.Now(), n.cfg.RecordTTL)
	if err != nil {
		return err
	}
	key := RecordKey(&rec)
	n.mu.Lock()
	if Fresher(&rec, n.store[key]) {
		n.store[key] = &rec
	}
	n.mu.Unlock()

	_, closest, err := n.lookup(ctx, key, false)
	if err != nil && len(closest) == 0 {
		// A lone bootstrap node (or a node announcing before Bootstrap) has
		// nowhere to push; the local copy serves until peers arrive.
		n.cfg.Obs.Log().Debug("dht announce held locally only",
			"entity", id.ID().Short(), "error", err)
		return nil
	}
	req := wire.DHTStoreReq{
		From:   wire.DHTContact{ID: append([]byte(nil), n.self.ID[:]...), Addr: n.self.Addr},
		Record: rec,
	}
	var wg sync.WaitGroup
	var stored atomic.Int64
	for _, c := range closest {
		wg.Add(1)
		go func(c Contact) {
			defer wg.Done()
			cl, err := n.contactClient(ctx, c)
			if err == nil {
				err = cl.DHTStore(ctx, req)
			}
			if err != nil {
				n.cfg.Obs.Log().Debug("dht store push failed",
					"to", c.ID.Short(), "addr", c.Addr, "error", err)
				return
			}
			stored.Add(1)
		}(c)
	}
	wg.Wait()
	n.cfg.Obs.Log().Debug("dht announced",
		"entity", id.ID().Short(), "seq", seq, "replicas", stored.Load())
	return nil
}

// republishLoop refreshes announcements and expires held records.
func (n *Node) republishLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.quit:
			return
		case <-n.cfg.Clock.After(n.cfg.Republish):
			n.republishAll()
			n.expire()
		}
	}
}

func (n *Node) republishAll() {
	type job struct {
		id    *core.Identity
		addrs []string
		seq   uint64
	}
	n.mu.Lock()
	jobs := make([]job, 0, len(n.announced))
	for _, a := range n.announced {
		a.seq++
		jobs = append(jobs, job{id: a.id, addrs: append([]string(nil), a.addrs...), seq: a.seq})
	}
	n.mu.Unlock()
	for _, j := range jobs {
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.LookupTimeout)
		if err := n.publish(ctx, j.id, j.addrs, j.seq); err != nil {
			n.cfg.Obs.Log().Warn("dht republish failed",
				"entity", j.id.ID().Short(), "error", err)
		}
		cancel()
	}
}

// expire drops held records past their TTL.
func (n *Node) expire() {
	now := n.cfg.Clock.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	for key, rec := range n.store {
		if !now.Before(rec.IssuedAt.Add(time.Duration(rec.TTLSeconds) * time.Second)) {
			delete(n.store, key)
		}
	}
}

// Stats snapshots the node for the stats wire section (gossip fields are
// zero; the daemon overlays them from its gossip node).
func (n *Node) Stats() *wire.DHTStats {
	n.mu.Lock()
	records := len(n.store)
	announcedN := len(n.announced)
	n.mu.Unlock()
	return &wire.DHTStats{
		ID:              n.self.ID.String(),
		BucketPeers:     n.table.Len(),
		ProviderRecords: records,
		Lookups:         n.lookups.Load(),
		Stores:          n.stores.Load(),
		StoresRefused:   n.storesRefused.Load(),
		Announced:       announcedN,
	}
}
