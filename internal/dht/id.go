// Package dht implements Kademlia-flavored decentralized discovery for
// dRBAC coalitions: every wallet carries a 160-bit node ID derived from
// its ed25519 entity key, maintains XOR-distance k-buckets of coalition
// peers, and stores signed provider records mapping entity → home-wallet
// address(es). Chain discovery resolves the home of an entity named in a
// delegation with an iterative lookup instead of a static address book,
// which is what the paper's "dynamic coalition" (§1) actually requires:
// members join and leave continuously, so resolution itself must be
// distributed, authenticated, and churn-tolerant.
//
// Identity is self-certifying: a node's ID is SHA-256 of its public key
// truncated to 160 bits, and the transport authenticates that key on every
// connection, so a node cannot occupy an ID it does not own. Provider
// records are signed by the entity they name and verified against the
// embedded key before acceptance — an unsigned or mis-keyed record is
// refused, never stored, and never served.
package dht

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/bits"

	"drbac/internal/core"
)

// IDLen is the node ID length in bytes (160 bits, Kademlia's key size).
const IDLen = 20

// ID is a 160-bit DHT identifier: a node's self-certifying identity or a
// record key. Both are SHA-256 truncations, so node and record IDs share
// one XOR metric.
type ID [IDLen]byte

// IDFromKey derives the self-certifying ID of an ed25519 public key: the
// first 20 bytes of its SHA-256 — i.e. the first 20 bytes of the entity's
// fingerprint, so an EntityID's hex prefix is its owner's DHT ID.
func IDFromKey(key ed25519.PublicKey) ID {
	sum := sha256.Sum256(key)
	var id ID
	copy(id[:], sum[:IDLen])
	return id
}

// IDFromEntity derives the DHT ID of an entity (by its public key).
func IDFromEntity(e core.Entity) ID { return IDFromKey(e.Key) }

// IDFromEntityID converts a hex entity fingerprint to its DHT ID — the
// fingerprint's first 40 hex digits decoded. It fails on malformed
// fingerprints.
func IDFromEntityID(eid core.EntityID) (ID, error) {
	if !eid.Valid() {
		return ID{}, fmt.Errorf("dht: malformed entity fingerprint %q", eid)
	}
	raw, err := hex.DecodeString(string(eid[:IDLen*2]))
	if err != nil {
		return ID{}, fmt.Errorf("dht: malformed entity fingerprint %q: %w", eid, err)
	}
	var id ID
	copy(id[:], raw)
	return id, nil
}

// IDFromBytes validates and converts raw wire bytes to an ID.
func IDFromBytes(b []byte) (ID, error) {
	if len(b) != IDLen {
		return ID{}, fmt.Errorf("dht: ID must be %d bytes, got %d", IDLen, len(b))
	}
	var id ID
	copy(id[:], b)
	return id, nil
}

// String renders the ID as lowercase hex.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short abbreviates the ID for logs.
func (id ID) Short() string { return hex.EncodeToString(id[:4]) }

// Distance is the XOR metric between two IDs.
func Distance(a, b ID) ID {
	var d ID
	for i := range d {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// Less reports whether a is numerically (big-endian) less than b — used to
// order contacts by distance to a target.
func Less(a, b ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// BucketIndex maps the distance self→other to a k-bucket index: the
// position of the highest set bit of the XOR distance (0…159), so bucket i
// covers peers sharing exactly 159-i leading prefix bits with self. The
// second return is false for the zero distance (self), which lives in no
// bucket.
func BucketIndex(self, other ID) (int, bool) {
	d := Distance(self, other)
	for i, by := range d {
		if by != 0 {
			return (IDLen-1-i)*8 + (7 - bits.LeadingZeros8(by)), true
		}
	}
	return 0, false
}
