package disco

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/discovery"
	"drbac/internal/remote"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

var testStart = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

type env struct {
	t   *testing.T
	ids map[string]*core.Identity
	dir *core.MemDirectory
	clk *clock.Fake
}

func newEnv(t *testing.T, names ...string) *env {
	t.Helper()
	e := &env{
		t:   t,
		ids: make(map[string]*core.Identity),
		dir: core.NewDirectory(),
		clk: clock.NewFake(testStart),
	}
	for i, name := range names {
		seed := make([]byte, 32)
		seed[0] = byte(i + 1)
		copy(seed[1:], name)
		id, err := core.IdentityFromSeed(name, seed)
		if err != nil {
			t.Fatal(err)
		}
		e.ids[name] = id
		e.dir.Add(id.Entity())
	}
	return e
}

func (e *env) wallet() *wallet.Wallet {
	return wallet.New(wallet.Config{Clock: e.clk, Directory: e.dir})
}

func (e *env) deleg(text string) *core.Delegation {
	e.t.Helper()
	parsed, err := core.ParseDelegation(text, e.dir)
	if err != nil {
		e.t.Fatal(err)
	}
	var issuer *core.Identity
	for _, id := range e.ids {
		if id.ID() == parsed.Issuer.ID() {
			issuer = id
		}
	}
	d, err := core.Issue(issuer, parsed.Template, e.clk.Now())
	if err != nil {
		e.t.Fatal(err)
	}
	return d
}

// airNetResource is the §5 access policy as a DisCo registration.
func (e *env) airNetResource() Resource {
	airNet := e.ids["AirNet"].ID()
	return Resource{
		Name: "internet-access",
		Role: core.NewRole(airNet, "access"),
		Bases: map[core.AttributeRef]float64{
			{Namespace: airNet, Name: "storage"}: 50,
			{Namespace: airNet, Name: "hours"}:   60,
		},
		Minimums: map[core.AttributeRef]float64{
			{Namespace: airNet, Name: "BW"}: 50,
		},
	}
}

func TestGuardValidation(t *testing.T) {
	if _, err := NewGuard(Config{}); err == nil {
		t.Fatal("guard without wallet accepted")
	}
	e := newEnv(t, "AirNet")
	g, err := NewGuard(Config{Wallet: e.wallet()})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Register(Resource{}); err == nil {
		t.Fatal("unnamed resource accepted")
	}
	if err := g.Register(Resource{Name: "x"}); err == nil {
		t.Fatal("resource without role accepted")
	}
	if _, err := g.Authorize(context.Background(), "deadbeef", "nope", nil); err == nil {
		t.Fatal("unknown resource accepted")
	}
}

func TestAuthorizeSessionLevels(t *testing.T) {
	e := newEnv(t, "AirNet", "Sheila", "BigISP", "Maria")
	w := e.wallet()
	for _, text := range []string{
		"[Maria -> BigISP.member] BigISP",
		"[Sheila -> AirNet.mktg] AirNet",
		"[AirNet.mktg -> AirNet.member'] AirNet",
		"[AirNet.member -> AirNet.access with AirNet.BW <= 200] AirNet",
	} {
		if err := w.Publish(e.deleg(text)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Publish(e.deleg(
		"[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20 and AirNet.hours *= 0.3] Sheila")); err != nil {
		t.Fatal(err)
	}

	g, err := NewGuard(Config{Wallet: w})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Register(e.airNetResource()); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Resource("internet-access"); !ok {
		t.Fatal("registration lost")
	}

	s, err := g.Authorize(context.Background(), e.ids["Maria"].ID(), "internet-access", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	airNet := e.ids["AirNet"].ID()
	if got := s.Level(core.AttributeRef{Namespace: airNet, Name: "BW"}); got != 100 {
		t.Errorf("BW level = %v, want 100", got)
	}
	if got := s.Level(core.AttributeRef{Namespace: airNet, Name: "storage"}); got != 30 {
		t.Errorf("storage level = %v, want 30", got)
	}
	if got := s.Level(core.AttributeRef{Namespace: airNet, Name: "hours"}); got != 18 {
		t.Errorf("hours level = %v, want 18", got)
	}
	if !s.Active() || g.ActiveSessions() != 1 {
		t.Fatal("session should be active")
	}
	if s.Principal() != e.ids["Maria"].ID() || s.ResourceName() != "internet-access" {
		t.Fatal("session metadata wrong")
	}
}

func TestAuthorizeDeniesBelowMinimum(t *testing.T) {
	e := newEnv(t, "AirNet", "Maria")
	w := e.wallet()
	// Only 10 units of bandwidth; the resource demands 50.
	if err := w.Publish(e.deleg("[Maria -> AirNet.access with AirNet.BW <= 10] AirNet")); err != nil {
		t.Fatal(err)
	}
	g, err := NewGuard(Config{Wallet: w})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Register(e.airNetResource()); err != nil {
		t.Fatal(err)
	}
	_, err = g.Authorize(context.Background(), e.ids["Maria"].ID(), "internet-access", nil)
	if !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("want ErrNoProof, got %v", err)
	}
}

func TestSessionTerminatedOnRevocation(t *testing.T) {
	e := newEnv(t, "AirNet", "Maria")
	w := e.wallet()
	d := e.deleg("[Maria -> AirNet.access with AirNet.BW <= 100] AirNet")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	g, err := NewGuard(Config{Wallet: w})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Register(e.airNetResource()); err != nil {
		t.Fatal(err)
	}
	events := make(chan SessionEvent, 2)
	s, err := g.Authorize(context.Background(), e.ids["Maria"].ID(), "internet-access",
		func(ev SessionEvent) { events <- ev })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := w.Revoke(d.ID(), e.ids["AirNet"].ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Kind != SessionTerminated {
			t.Fatalf("event = %v", ev.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no termination event")
	}
	if s.Active() || g.ActiveSessions() != 0 {
		t.Fatal("session still active after revocation")
	}
}

func TestSessionReauthorizedWithNewLevels(t *testing.T) {
	e := newEnv(t, "AirNet", "Maria")
	w := e.wallet()
	generous := e.deleg("[Maria -> AirNet.access with AirNet.BW <= 150] AirNet")
	modest := e.deleg("[Maria -> AirNet.access with AirNet.BW <= 60] AirNet")
	if err := w.Publish(generous); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(modest); err != nil {
		t.Fatal(err)
	}
	g, err := NewGuard(Config{Wallet: w})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Register(e.airNetResource()); err != nil {
		t.Fatal(err)
	}
	events := make(chan SessionEvent, 2)
	s, err := g.Authorize(context.Background(), e.ids["Maria"].ID(), "internet-access",
		func(ev SessionEvent) { events <- ev })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	airNet := e.ids["AirNet"].ID()
	bw := core.AttributeRef{Namespace: airNet, Name: "BW"}
	first := s.Level(bw)

	// Revoke whichever credential the session is riding on; the other
	// still clears the 50-unit minimum, so the session survives at the
	// other level.
	var revoke *core.Delegation
	if first == 150 {
		revoke = generous
	} else {
		revoke = modest
	}
	if err := w.Revoke(revoke.ID(), e.ids["AirNet"].ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Kind != SessionReauthorized {
			t.Fatalf("event = %v", ev.Kind)
		}
		if got := ev.Levels[bw]; got == first {
			t.Fatalf("levels did not change: %v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no reauthorization event")
	}
	if !s.Active() {
		t.Fatal("session should remain active")
	}
}

// The §5 scenario end to end through the DisCo layer with distributed
// discovery: the guard pulls the coalition chain from remote home wallets.
func TestGuardWithDiscovery(t *testing.T) {
	e := newEnv(t, "BigISP", "AirNet", "Sheila", "Maria", "Server")
	net := transport.NewMemNetwork()

	// AirNet home wallet holds the access policy.
	airNetWallet := wallet.New(wallet.Config{Owner: e.ids["AirNet"], Clock: e.clk, Directory: e.dir})
	ln, err := net.Listen("wallet.airnet", e.ids["AirNet"])
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.Serve(airNetWallet, ln)
	defer srv.Close()
	if err := airNetWallet.Publish(e.deleg("[BigISP.member -> AirNet.access with AirNet.BW <= 100] AirNet")); err != nil {
		t.Fatal(err)
	}

	local := wallet.New(wallet.Config{Owner: e.ids["Server"], Clock: e.clk, Directory: e.dir})
	if err := local.Publish(e.deleg("[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	agent := discovery.NewAgent(discovery.Config{
		Local:  local,
		Dialer: net.Dialer(e.ids["Server"]),
	})
	defer agent.Close()
	agent.RegisterTag(core.SubjectRole(core.NewRole(e.ids["BigISP"].ID(), "member")), core.DiscoveryTag{
		Home:    "wallet.airnet",
		TTL:     30 * time.Second,
		Subject: core.SubjectSearch,
	})

	g, err := NewGuard(Config{Wallet: local, Agent: agent})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Register(e.airNetResource()); err != nil {
		t.Fatal(err)
	}

	events := make(chan SessionEvent, 1)
	s, err := g.Authorize(context.Background(), e.ids["Maria"].ID(), "internet-access",
		func(ev SessionEvent) { events <- ev })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bw := core.AttributeRef{Namespace: e.ids["AirNet"].ID(), Name: "BW"}
	if got := s.Level(bw); got != 100 {
		t.Fatalf("BW = %v", got)
	}

	// Revoking the coalition at AirNet's home tears the session down
	// through the bridged subscription.
	for _, d := range airNetWallet.Delegations() {
		if err := airNetWallet.Revoke(d.ID(), e.ids["AirNet"].ID()); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case ev := <-events:
		if ev.Kind != SessionTerminated {
			t.Fatalf("event = %v", ev.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("remote revocation never terminated the session")
	}
}

func TestGuardCloseTerminatesSessions(t *testing.T) {
	e := newEnv(t, "AirNet", "Maria")
	w := e.wallet()
	if err := w.Publish(e.deleg("[Maria -> AirNet.access with AirNet.BW <= 100] AirNet")); err != nil {
		t.Fatal(err)
	}
	g, err := NewGuard(Config{Wallet: w})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Register(e.airNetResource()); err != nil {
		t.Fatal(err)
	}
	s, err := g.Authorize(context.Background(), e.ids["Maria"].ID(), "internet-access", nil)
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if s.Active() {
		t.Fatal("session survived guard close")
	}
	if _, err := g.Authorize(context.Background(), e.ids["Maria"].ID(), "internet-access", nil); err == nil {
		t.Fatal("closed guard authorized")
	}
}

func TestLevelFallsBackToBase(t *testing.T) {
	e := newEnv(t, "AirNet", "Maria")
	w := e.wallet()
	// Chain touches no attributes at all.
	if err := w.Publish(e.deleg("[Maria -> AirNet.access] AirNet")); err != nil {
		t.Fatal(err)
	}
	g, err := NewGuard(Config{Wallet: w})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	airNet := e.ids["AirNet"].ID()
	res := Resource{
		Name:  "open",
		Role:  core.NewRole(airNet, "access"),
		Bases: map[core.AttributeRef]float64{{Namespace: airNet, Name: "storage"}: 50},
	}
	if err := g.Register(res); err != nil {
		t.Fatal(err)
	}
	s, err := g.Authorize(context.Background(), e.ids["Maria"].ID(), "open", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Level(core.AttributeRef{Namespace: airNet, Name: "storage"}); got != 50 {
		t.Fatalf("untouched level = %v, want base 50", got)
	}
	if !math.IsInf(s.Level(core.AttributeRef{Namespace: airNet, Name: "unknown"}), 0) &&
		s.Level(core.AttributeRef{Namespace: airNet, Name: "unknown"}) != 0 {
		t.Fatalf("unknown attribute level = %v", s.Level(core.AttributeRef{Namespace: airNet, Name: "unknown"}))
	}
}

func TestSessionEventKindString(t *testing.T) {
	if SessionReauthorized.String() != "reauthorized" ||
		SessionTerminated.String() != "terminated" ||
		SessionEventKind(0).String() != "unknown" {
		t.Fatal("kind strings wrong")
	}
}
