// Package disco implements the application-facing slice of the paper's
// DisCo infrastructure (§1, "Project Context"): applications register
// protected resources whose access is regulated by dRBAC roles, authorize
// principals into *sessions* with modulated service levels, and rely on
// continuous monitoring to be told when an active session's authorization
// changes or disappears.
//
// A Guard owns a trusted wallet (and optionally a discovery agent for
// credentials spread across remote wallets). Authorize runs the full dRBAC
// pipeline — discovery, proof validation, attribute aggregation against the
// resource's base allocations, monitor wiring — and returns a live Session.
package disco

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"drbac/internal/core"
	"drbac/internal/discovery"
	"drbac/internal/wallet"
)

// Resource is a protected capability: access requires the given role, at
// service levels evaluated from the resource's base allocations, subject to
// minimum-level constraints.
type Resource struct {
	// Name identifies the resource to the application.
	Name string
	// Role is the dRBAC role access requires.
	Role core.Role
	// Bases are the resource's baseline allocations per valued attribute
	// (e.g. storage 50, hours 60). Attributes the authorizing chain
	// modulates are evaluated against these.
	Bases map[core.AttributeRef]float64
	// Minimums, if any, are the least acceptable evaluated levels;
	// principals whose chains cannot afford them are denied.
	Minimums map[core.AttributeRef]float64
}

// constraints derives the query constraints from the resource policy.
func (r Resource) constraints() []core.Constraint {
	var out []core.Constraint
	for attr, minimum := range r.Minimums {
		base, ok := r.Bases[attr]
		if !ok {
			base = inf()
		}
		out = append(out, core.Constraint{Attr: attr, Base: base, Minimum: minimum})
	}
	return out
}

// SessionEventKind classifies session lifecycle notifications.
type SessionEventKind int

const (
	// SessionReauthorized: the proof changed but an alternate authorizes
	// continued access; Levels may have changed.
	SessionReauthorized SessionEventKind = iota + 1
	// SessionTerminated: authorization was lost; the application must
	// discontinue access.
	SessionTerminated
)

// String renders the kind.
func (k SessionEventKind) String() string {
	switch k {
	case SessionReauthorized:
		return "reauthorized"
	case SessionTerminated:
		return "terminated"
	default:
		return "unknown"
	}
}

// SessionEvent notifies the application of a session change.
type SessionEvent struct {
	Kind    SessionEventKind
	Session *Session
	// Levels carries the re-evaluated service levels for reauthorizations.
	Levels map[core.AttributeRef]float64
}

// Config parameterizes a Guard.
type Config struct {
	// Wallet is the trusted local wallet. Required.
	Wallet *wallet.Wallet
	// Agent, if set, discovers missing credentials across wallet homes and
	// bridges their home-wallet subscriptions into the local wallet.
	Agent *discovery.Agent
	// Mode selects the discovery direction; zero is Auto.
	Mode discovery.Mode
}

// Guard regulates access to registered resources.
type Guard struct {
	cfg Config

	mu        sync.Mutex
	resources map[string]Resource
	sessions  map[int]*Session
	nextID    int
	closed    bool
}

// NewGuard builds a guard over a wallet.
func NewGuard(cfg Config) (*Guard, error) {
	if cfg.Wallet == nil {
		return nil, errors.New("disco: Wallet is required")
	}
	return &Guard{
		cfg:       cfg,
		resources: make(map[string]Resource),
		sessions:  make(map[int]*Session),
	}, nil
}

// Register adds (or replaces) a protected resource.
func (g *Guard) Register(r Resource) error {
	if r.Name == "" {
		return errors.New("disco: resource needs a name")
	}
	if err := r.Role.Validate(); err != nil {
		return fmt.Errorf("disco: resource %q: %w", r.Name, err)
	}
	for attr := range r.Minimums {
		if err := attr.Validate(); err != nil {
			return fmt.Errorf("disco: resource %q: %w", r.Name, err)
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.resources[r.Name] = r
	return nil
}

// Resource looks a registration up.
func (g *Guard) Resource(name string) (Resource, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.resources[name]
	return r, ok
}

// ActiveSessions counts sessions that still hold authorization.
func (g *Guard) ActiveSessions() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, s := range g.sessions {
		if s.Active() {
			n++
		}
	}
	return n
}

// Close terminates every session and stops their monitors.
func (g *Guard) Close() {
	g.mu.Lock()
	g.closed = true
	sessions := make([]*Session, 0, len(g.sessions))
	for _, s := range g.sessions {
		sessions = append(sessions, s)
	}
	g.sessions = make(map[int]*Session)
	g.mu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
}

// Authorize grants principal a session on the named resource if a valid
// proof exists (locally or via discovery), evaluating its service levels
// and monitoring it for the session's lifetime. onEvent receives
// reauthorizations and termination; it may be nil. Cancellation of ctx
// aborts the proof search (including any in-flight discovery); the granted
// session's lifetime is not bound to ctx.
func (g *Guard) Authorize(ctx context.Context, principal core.EntityID, resourceName string, onEvent func(SessionEvent)) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, errors.New("disco: guard closed")
	}
	r, ok := g.resources[resourceName]
	g.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("disco: unknown resource %q", resourceName)
	}

	query := wallet.Query{
		Ctx:         ctx,
		Subject:     core.SubjectEntity(principal),
		Object:      r.Role,
		Constraints: r.constraints(),
	}

	// Find the proof: local wallet first, discovery if wired.
	var (
		proof *core.Proof
		err   error
	)
	if g.cfg.Agent != nil {
		proof, err = g.cfg.Agent.Discover(ctx, query, g.cfg.Mode, nil)
	} else {
		proof, err = g.cfg.Wallet.QueryDirect(query)
	}
	if err != nil {
		return nil, fmt.Errorf("disco: authorize %s on %q: %w", principal.Short(), resourceName, err)
	}

	s := &Session{
		guard:     g,
		principal: principal,
		resource:  r,
		onEvent:   onEvent,
		active:    true,
	}
	if err := s.setLevels(proof); err != nil {
		return nil, err
	}

	mon, err := g.cfg.Wallet.MonitorProof(query, proof, s.onMonitorEvent)
	if err != nil {
		return nil, fmt.Errorf("disco: monitor: %w", err)
	}
	s.monitor = mon
	if g.cfg.Agent != nil {
		cancel, err := g.cfg.Agent.Bridge(ctx, proof)
		if err != nil {
			mon.Close()
			return nil, fmt.Errorf("disco: bridge subscriptions: %w", err)
		}
		s.bridgeCancel = cancel
	}

	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		s.Close()
		return nil, errors.New("disco: guard closed")
	}
	s.id = g.nextID
	g.nextID++
	g.sessions[s.id] = s
	g.mu.Unlock()
	return s, nil
}

// Session is one principal's monitored access to one resource.
type Session struct {
	guard     *Guard
	id        int
	principal core.EntityID
	resource  Resource
	onEvent   func(SessionEvent)

	mu           sync.Mutex
	active       bool
	levels       map[core.AttributeRef]float64
	monitor      *wallet.Monitor
	bridgeCancel func()
}

// Principal returns the authorized entity.
func (s *Session) Principal() core.EntityID { return s.principal }

// ResourceName returns the protected resource's name.
func (s *Session) ResourceName() string { return s.resource.Name }

// Active reports whether the session still holds authorization.
func (s *Session) Active() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Levels returns the evaluated service levels (a copy).
func (s *Session) Levels() map[core.AttributeRef]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[core.AttributeRef]float64, len(s.levels))
	for k, v := range s.levels {
		out[k] = v
	}
	return out
}

// Level returns one attribute's evaluated level (the base if untouched).
func (s *Session) Level(attr core.AttributeRef) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.levels[attr]; ok {
		return v
	}
	return s.resource.Bases[attr]
}

// Close ends the session and releases its monitor and bridge.
func (s *Session) Close() {
	s.mu.Lock()
	s.active = false
	mon := s.monitor
	s.monitor = nil
	bridge := s.bridgeCancel
	s.bridgeCancel = nil
	s.mu.Unlock()
	if mon != nil {
		mon.Close()
	}
	if bridge != nil {
		bridge()
	}
	s.guard.mu.Lock()
	delete(s.guard.sessions, s.id)
	s.guard.mu.Unlock()
}

// setLevels evaluates the proof's aggregate against the resource bases.
func (s *Session) setLevels(proof *core.Proof) error {
	ag, err := proof.Aggregate()
	if err != nil {
		return err
	}
	levels := make(map[core.AttributeRef]float64, len(s.resource.Bases))
	for attr, base := range s.resource.Bases {
		levels[attr] = ag.Value(attr, base)
	}
	// Attributes modulated by the chain but without a declared base
	// evaluate from +Inf (meaningful for min-collected caps).
	for _, attr := range ag.Attrs() {
		if _, ok := levels[attr]; !ok {
			levels[attr] = ag.Value(attr, inf())
		}
	}
	s.mu.Lock()
	s.levels = levels
	s.mu.Unlock()
	return nil
}

// onMonitorEvent reacts to the underlying proof monitor.
func (s *Session) onMonitorEvent(ev wallet.MonitorEvent) {
	switch ev.Kind {
	case wallet.MonitorReproved:
		if err := s.setLevels(ev.Proof); err != nil {
			s.terminate()
			return
		}
		s.mu.Lock()
		cb := s.onEvent
		s.mu.Unlock()
		if cb != nil {
			cb(SessionEvent{Kind: SessionReauthorized, Session: s, Levels: s.Levels()})
		}
	case wallet.MonitorInvalidated:
		s.terminate()
	}
}

func (s *Session) terminate() {
	s.mu.Lock()
	wasActive := s.active
	s.active = false
	cb := s.onEvent
	s.mu.Unlock()
	if wasActive && cb != nil {
		cb(SessionEvent{Kind: SessionTerminated, Session: s})
	}
}

func inf() float64 { return math.Inf(1) }
