package wire

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"drbac/internal/core"
)

// Binary primitives and core-type codecs for the binary wire codec.
//
// The encoding follows the same discipline as core's canonical signing
// encoding (length-prefixed throughout, every semantic field explicit) but
// is a separate format: it carries signatures and uses varints, presence
// flags for optional values, and nanosecond-exact timestamps so that a
// value decoded from the binary wire is field-for-field identical to the
// same value decoded from JSON. That identity is what keeps proofs
// byte-identical across codecs: re-marshaling either decode to JSON yields
// the same bytes.

// bwriter builds a frame by appending to a (usually pooled) buffer.
type bwriter struct {
	buf []byte
}

func (w *bwriter) u8(b byte)        { w.buf = append(w.buf, b) }
func (w *bwriter) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *bwriter) svarint(v int64)  { w.buf = binary.AppendVarint(w.buf, v) }

func (w *bwriter) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *bwriter) f64(v float64) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], math.Float64bits(v))
	w.buf = append(w.buf, n[:]...)
}

func (w *bwriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *bwriter) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// time encodes an instant exactly: presence flag, then unix seconds and the
// nanosecond within the second. Zone information is not carried — decoding
// yields UTC — but every instant the protocol signs or compares is already
// UTC (core.Issue truncates to UTC microseconds), so JSON re-marshals of
// either decode agree byte-for-byte.
func (w *bwriter) time(t time.Time) {
	if t.IsZero() {
		w.bool(false)
		return
	}
	w.bool(true)
	w.svarint(t.Unix())
	w.uvarint(uint64(t.Nanosecond()))
}

// breader is a bounds-checked cursor over a frame. Errors are sticky: after
// the first failure every read returns a zero value and the error survives
// to the final check, so decoders can run straight-line without per-field
// error plumbing. Every length is validated against the remaining input
// before any allocation, so adversarial frames cannot make the decoder
// allocate beyond the (MaxFrame-bounded) frame itself.
type breader struct {
	buf []byte
	off int
	err error
}

func (r *breader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *breader) remaining() int { return len(r.buf) - r.off }

func (r *breader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("binary decode: truncated at byte %d", r.off)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *breader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("binary decode: bad uvarint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *breader) svarint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("binary decode: bad varint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *breader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("binary decode: invalid bool at byte %d", r.off-1)
		return false
	}
}

func (r *breader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail("binary decode: truncated float at byte %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

// raw returns the next n bytes without copying (aliases the frame).
func (r *breader) raw() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.remaining()) {
		r.fail("binary decode: length %d exceeds remaining %d bytes", n, r.remaining())
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// str reads a length-prefixed string (fresh copy — frames get recycled).
func (r *breader) str() string { return string(r.raw()) }

// internedStr reads a length-prefixed string through the process intern
// table — for bounded-population values like entity fingerprints, names,
// and role names that repeat across a proof chain.
func (r *breader) internedStr() string {
	b := r.raw()
	if len(b) == 0 {
		return ""
	}
	return internString(b)
}

// bytes reads a length-prefixed byte slice as a fresh copy; zero length
// decodes to nil to match encoding/json's treatment of absent fields.
func (r *breader) bytes() []byte {
	b := r.raw()
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

// key reads an ed25519 public key through the intern table.
func (r *breader) key() ed25519.PublicKey {
	return internKey(r.raw())
}

func (r *breader) time() time.Time {
	if !r.bool() {
		return time.Time{}
	}
	sec := r.svarint()
	nsec := r.uvarint()
	if nsec >= uint64(time.Second) {
		r.fail("binary decode: nanosecond field %d out of range", nsec)
		return time.Time{}
	}
	if r.err != nil {
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec)).UTC()
}

// count reads a collection length and sanity-bounds it against the
// remaining input (each element costs at least one byte), so a hostile
// count cannot drive a huge preallocation.
func (r *breader) count() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.remaining()) {
		r.fail("binary decode: count %d exceeds remaining %d bytes", n, r.remaining())
		return 0
	}
	return int(n)
}

// done errors unless the frame was consumed exactly.
func (r *breader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("binary decode: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// ---- core type codecs ----

// maxProofDepth bounds support-proof recursion during decode. Proof
// validation itself caps chains far lower; this only prevents a hostile
// frame from exhausting the decoder's stack.
const maxProofDepth = 64

func (w *bwriter) role(r core.Role) {
	w.str(string(r.Namespace))
	w.str(r.Name)
	w.uvarint(uint64(r.Tick))
	w.bool(r.Attr)
	w.uvarint(uint64(r.Op))
}

func (r *breader) role() core.Role {
	return core.Role{
		Namespace: core.EntityID(r.internedStr()),
		Name:      r.internedStr(),
		Tick:      int(r.uvarint()),
		Attr:      r.bool(),
		Op:        core.Operator(r.uvarint()),
	}
}

func (w *bwriter) subject(s core.Subject) {
	w.bool(s.IsEntity())
	if s.IsEntity() {
		w.str(string(s.Entity))
		return
	}
	w.role(s.Role)
}

func (r *breader) subject() core.Subject {
	if r.bool() {
		return core.Subject{Entity: core.EntityID(r.internedStr())}
	}
	return core.Subject{Role: r.role()}
}

func (w *bwriter) entity(e core.Entity) {
	w.str(e.Name)
	w.bytes(e.Key)
}

func (r *breader) entity() core.Entity {
	return core.Entity{Name: r.internedStr(), Key: r.key()}
}

func (w *bwriter) entityPtr(e *core.Entity) {
	if e == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.entity(*e)
}

func (r *breader) entityPtr() *core.Entity {
	if !r.bool() {
		return nil
	}
	e := r.entity()
	if r.err != nil {
		return nil
	}
	return &e
}

func (w *bwriter) setting(s core.AttributeSetting) {
	w.str(string(s.Attr.Namespace))
	w.str(s.Attr.Name)
	w.uvarint(uint64(s.Op))
	w.f64(s.Value)
}

func (r *breader) setting() core.AttributeSetting {
	return core.AttributeSetting{
		Attr: core.AttributeRef{
			Namespace: core.EntityID(r.internedStr()),
			Name:      r.internedStr(),
		},
		Op:    core.Operator(r.uvarint()),
		Value: r.f64(),
	}
}

func (w *bwriter) constraint(c core.Constraint) {
	w.str(string(c.Attr.Namespace))
	w.str(c.Attr.Name)
	w.f64(c.Base)
	w.f64(c.Minimum)
}

func (r *breader) constraint() core.Constraint {
	return core.Constraint{
		Attr: core.AttributeRef{
			Namespace: core.EntityID(r.internedStr()),
			Name:      r.internedStr(),
		},
		Base:    r.f64(),
		Minimum: r.f64(),
	}
}

// tag encodes the discovery tag verbatim (no normalization): the wire must
// reproduce exactly the struct the sender held.
func (w *bwriter) tag(t *core.DiscoveryTag) {
	if t == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.str(t.Home)
	w.role(t.AuthRole)
	w.svarint(int64(t.TTL))
	w.svarint(int64(t.Subject))
	w.svarint(int64(t.Object))
}

func (r *breader) tag() *core.DiscoveryTag {
	if !r.bool() {
		return nil
	}
	t := core.DiscoveryTag{
		Home:     r.str(),
		AuthRole: r.role(),
		TTL:      time.Duration(r.svarint()),
		Subject:  core.SubjectFlag(r.svarint()),
		Object:   core.ObjectFlag(r.svarint()),
	}
	if r.err != nil {
		return nil
	}
	return &t
}

func (w *bwriter) delegation(d *core.Delegation) {
	if d == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.subject(d.Subject)
	w.entityPtr(d.SubjectEntity)
	w.role(d.Object)
	w.entity(d.Issuer)
	w.uvarint(uint64(len(d.Attributes)))
	for _, s := range d.Attributes {
		w.setting(s)
	}
	w.time(d.IssuedAt)
	w.time(d.Expiry)
	w.uvarint(d.Nonce)
	w.tag(d.SubjectTag)
	w.tag(d.ObjectTag)
	w.tag(d.IssuerTag)
	w.uvarint(uint64(len(d.ActingAs)))
	for _, role := range d.ActingAs {
		w.role(role)
	}
	w.svarint(int64(d.DepthLimit))
	w.bytes(d.Signature)
}

func (r *breader) delegation() *core.Delegation {
	if !r.bool() {
		return nil
	}
	d := core.Delegation{
		Subject:       r.subject(),
		SubjectEntity: r.entityPtr(),
		Object:        r.role(),
		Issuer:        r.entity(),
	}
	if n := r.count(); n > 0 {
		d.Attributes = make([]core.AttributeSetting, n)
		for i := range d.Attributes {
			d.Attributes[i] = r.setting()
		}
	}
	d.IssuedAt = r.time()
	d.Expiry = r.time()
	d.Nonce = r.uvarint()
	d.SubjectTag = r.tag()
	d.ObjectTag = r.tag()
	d.IssuerTag = r.tag()
	if n := r.count(); n > 0 {
		d.ActingAs = make([]core.Role, n)
		for i := range d.ActingAs {
			d.ActingAs[i] = r.role()
		}
	}
	d.DepthLimit = int(r.svarint())
	d.Signature = r.bytes()
	if r.err != nil {
		return nil
	}
	return &d
}

func (w *bwriter) proof(p *core.Proof) {
	if p == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.subject(p.Subject)
	w.role(p.Object)
	w.uvarint(uint64(len(p.Steps)))
	for _, st := range p.Steps {
		w.delegation(st.Delegation)
		w.proofs(st.Support)
	}
}

func (w *bwriter) proofs(ps []*core.Proof) {
	w.uvarint(uint64(len(ps)))
	for _, p := range ps {
		w.proof(p)
	}
}

func (r *breader) proof(depth int) *core.Proof {
	if depth > maxProofDepth {
		r.fail("binary decode: proof nesting exceeds %d", maxProofDepth)
		return nil
	}
	if !r.bool() {
		return nil
	}
	p := core.Proof{Subject: r.subject(), Object: r.role()}
	if n := r.count(); n > 0 {
		p.Steps = make([]core.ProofStep, n)
		for i := range p.Steps {
			p.Steps[i] = core.ProofStep{
				Delegation: r.delegation(),
				Support:    r.proofsAt(depth + 1),
			}
		}
	}
	if r.err != nil {
		return nil
	}
	return &p
}

func (r *breader) proofsAt(depth int) []*core.Proof {
	n := r.count()
	if n == 0 {
		return nil
	}
	ps := make([]*core.Proof, n)
	for i := range ps {
		ps[i] = r.proof(depth)
	}
	return ps
}
