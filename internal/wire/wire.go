// Package wire defines the message protocol spoken between wallets over the
// authenticated transport: publication, the three query kinds (§4.1),
// delegation subscriptions with push notifications (§4.2.2), revocation,
// and home-wallet authorization proofs (§4.2.1).
//
// Every frame is a JSON Envelope. Requests carry a caller-chosen ID echoed
// by the response; notifications use ID 0 and flow server→client only.
package wire

import (
	"encoding/json"
	"fmt"
	"time"

	"drbac/internal/core"
	"drbac/internal/graph"
	"drbac/internal/obs"
)

// MsgType discriminates envelope payloads.
type MsgType string

// Request types (client → server).
const (
	TPublish      MsgType = "publish"
	TQueryDirect  MsgType = "query-direct"
	TQuerySubject MsgType = "query-subject"
	TQueryObject  MsgType = "query-object"
	TSubscribe    MsgType = "subscribe"
	TUnsubscribe  MsgType = "unsubscribe"
	TRevoke       MsgType = "revoke"
	TProveRole    MsgType = "prove-role"
	THas          MsgType = "has"
	TPing         MsgType = "ping"
	TStats        MsgType = "stats"
	// TSync asks for a consistent snapshot-at-seq of the wallet's
	// replicable state (empty body; answered with SyncResp). Follower
	// replicas bootstrap from it (§9).
	TSync MsgType = "sync"
	// TSubscribeAll subscribes this connection to the wallet's full
	// changelog stream: every status event, for every delegation, carrying
	// its seq (empty body; answered with SubscribeAllResp). At most one
	// stream per connection; re-sending replaces the previous one.
	TSubscribeAll MsgType = "subscribe-all"
	// TSyncSegments asks a log-store-backed wallet to ship its durable
	// record log as raw segments (SyncSegmentsReq; answered with
	// SyncSegmentsResp). A replica that already applied the stream up to
	// AfterSeq receives only segments holding newer records — O(delta)
	// catch-up instead of the monolithic TSync snapshot. Wallets on other
	// stores answer with an error and the caller falls back to TSync.
	TSyncSegments MsgType = "sync-segments"
	// TTrace fetches the serving wallet's retained spans for one trace ID
	// (TraceReq; answered with TraceResp). `drbac trace` merges the
	// answers from several wallets into one cross-wallet waterfall.
	TTrace MsgType = "trace"
	// TShardMap asks a cluster member for its current shard map (empty
	// body; answered with ShardMapResp carrying the serialized map).
	// Non-clustered wallets answer with an error. Clients refresh their
	// routing table from it after a redirect or an epoch advertisement.
	TShardMap MsgType = "shardmap"
	// TDHTFindNode asks a DHT-enabled wallet for its closest known
	// contacts to a 160-bit target (DHTFindReq; answered with DHTFindResp,
	// record always nil). Wallets without a DHT node answer with an error.
	TDHTFindNode MsgType = "dht-find-node"
	// TDHTFindValue asks for the provider record stored under a key,
	// falling back to the closest contacts when the serving node does not
	// hold it (DHTFindReq; answered with DHTFindResp).
	TDHTFindValue MsgType = "dht-find-value"
	// TDHTStore offers a signed provider record for storage
	// (DHTStoreReq; answered with OK). The serving node verifies the
	// record against its embedded entity key before accepting: unsigned,
	// mis-signed, key-mismatched, or expired records are refused with an
	// error and never stored or served.
	TDHTStore MsgType = "dht-store"
	// TGossipPing is a SWIM membership probe (GossipPingBody; answered
	// with OK carrying GossipAck). Membership updates piggyback both ways.
	TGossipPing MsgType = "gossip-ping"
	// TGossipPingReq asks the serving node to probe a third member on the
	// caller's behalf — SWIM's indirect probe, which distinguishes "the
	// target is dead" from "my link to the target is bad"
	// (GossipPingBody with Target set; answered with OK carrying
	// GossipAck, or an error when the target did not answer the relay).
	TGossipPingReq MsgType = "gossip-ping-req"
)

// Response and push types (server → client).
const (
	TOK     MsgType = "ok"
	TProof  MsgType = "proof"
	TProofs MsgType = "proofs"
	TError  MsgType = "error"
	TNotify MsgType = "notify"
	TPong   MsgType = "pong"
	// TClusterHello is pushed (ID 0) by a cluster member on every
	// accepted connection, advertising its shard ID and shard map epoch
	// (ShardMapResp body, map omitted to keep the hello small). A client
	// holding an older map knows to refresh with TShardMap; clients that
	// predate clustering drop the unknown push harmlessly.
	TClusterHello MsgType = "cluster-hello"
)

// Envelope is one frame on the wire.
type Envelope struct {
	Type MsgType `json:"type"`
	// ID matches responses to requests; 0 marks unsolicited pushes.
	ID   uint64          `json:"id,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
	// binKind, when nonzero, marks Body as a hand-rolled binary body of
	// that kind (set by the binary codec's Decode); DecodeBody dispatches
	// on it, so callers handle envelopes identically under either codec.
	binKind byte
}

// PublishReq asks the wallet to store a delegation with its support proofs.
type PublishReq struct {
	Delegation *core.Delegation `json:"delegation"`
	Support    []*core.Proof    `json:"support,omitempty"`
	// TTL, if positive, asks the receiving wallet to treat the delegation
	// as a TTL-coherent cached copy (§4.2.1).
	TTLSeconds int `json:"ttlSeconds,omitempty"`
	// ShardEpoch stamps the shard map epoch the sender routed by. A
	// cluster member refuses a mismatched epoch with a redirect carrying
	// the fresh map; 0 (unstamped) skips the epoch check but is still
	// subject to the ownership check.
	ShardEpoch uint64 `json:"shardEpoch,omitempty"`
}

// QueryReq carries any of the three query kinds; unused fields stay zero.
type QueryReq struct {
	Subject     core.Subject      `json:"subject,omitempty"`
	Object      core.Role         `json:"object,omitempty"`
	Constraints []core.Constraint `json:"constraints,omitempty"`
	Direction   graph.Direction   `json:"direction,omitempty"`
	// TraceID, when set, threads the caller's trace through the serving
	// wallet: the server logs the request (and runs the wallet query) under
	// this ID, so one cross-wallet discovery reads as a single trace in
	// every participating wallet's structured logs.
	TraceID string `json:"traceId,omitempty"`
	// SpanID is the caller's span: the serving wallet parents its own
	// span under it so merged cross-wallet traces nest remote hops below
	// the query that caused them.
	SpanID string `json:"spanId,omitempty"`
}

// TraceReq asks the serving wallet for its retained spans of one trace.
type TraceReq struct {
	TraceID string `json:"traceId"`
}

// TraceResp answers a TTrace request. Found is false when the trace was
// never retained (sampled out, expired from the ring, or unknown).
type TraceResp struct {
	Found bool             `json:"found"`
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// ProofResp answers a direct query.
type ProofResp struct {
	Proof *core.Proof `json:"proof"`
}

// ProofsResp answers subject and object queries.
type ProofsResp struct {
	Proofs []*core.Proof `json:"proofs"`
}

// SubscribeReq registers (or cancels) a delegation subscription.
type SubscribeReq struct {
	Delegation core.DelegationID `json:"delegation"`
}

// RevokeReq withdraws a delegation; the server authorizes against the
// authenticated peer identity.
type RevokeReq struct {
	Delegation core.DelegationID `json:"delegation"`
	// ShardEpoch stamps the sender's shard map epoch (see
	// PublishReq.ShardEpoch). Revokes carry no subject key, so only the
	// epoch is checked; ownership is the router's concern (it locates
	// the owner by scattering Has).
	ShardEpoch uint64 `json:"shardEpoch,omitempty"`
}

// ProveRoleReq asks the serving wallet to prove that its operating identity
// holds a role — used to verify home wallets against discovery-tag
// authorization roles (§4.2.1).
type ProveRoleReq struct {
	Role core.Role `json:"role"`
}

// HasReq asks whether the wallet stores a delegation — the primitive
// behind the §6 registry audit (store-required discovery flags).
type HasReq struct {
	Delegation core.DelegationID `json:"delegation"`
}

// HasResp answers a HasReq.
type HasResp struct {
	Present bool `json:"present"`
}

// StatsResp answers a TStats request (sent with an empty body): a summary
// of the serving wallet's state plus a full snapshot of its metrics
// registry — what the `drbac stats` subcommand renders and what the
// drbacd /metrics endpoint exports locally.
type StatsResp struct {
	// Role is the serving daemon's replication role ("primary" or
	// "replica"); empty when the server does not declare one.
	Role string `json:"role,omitempty"`
	// Seq is the wallet's changelog sequence number (§9 replication).
	Seq                uint64 `json:"seq"`
	Delegations        int    `json:"delegations"`
	Revoked            int    `json:"revoked"`
	TTLTracked         int    `json:"ttlTracked"`
	Watches            int    `json:"watches"`
	CacheHits          int64  `json:"cacheHits"`
	CacheMisses        int64  `json:"cacheMisses"`
	CacheInvalidations int64  `json:"cacheInvalidations"`
	CacheEntries       int    `json:"cacheEntries"`
	CacheNegatives     int    `json:"cacheNegatives"`
	// SigCache* report the wallet's verified-signature memo. When the
	// daemon uses the process-wide shared cache these counters cover every
	// verification in the process, not only this wallet's.
	SigCacheHits      int64        `json:"sigCacheHits"`
	SigCacheMisses    int64        `json:"sigCacheMisses"`
	SigCacheEvictions int64        `json:"sigCacheEvictions"`
	SigCacheSize      int64        `json:"sigCacheSize"`
	Metrics           obs.Snapshot `json:"metrics"`
	// Cluster describes the answering member's shard cluster view; nil
	// outside sharded deployments.
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// DHT describes the answering wallet's DHT/gossip state; nil when the
	// daemon runs without `-dht`.
	DHT *DHTStats `json:"dht,omitempty"`
	// Wire reports the process-wide codec counters: frames and bytes
	// encoded/decoded per codec, entity-intern hit rate, and frame-pool
	// churn. Nil when answered by a server predating codec negotiation.
	Wire *WireStats `json:"wire,omitempty"`
}

// NotifyPush is a delegation status update (§4.2.2).
type NotifyPush struct {
	Delegation core.DelegationID `json:"delegation"`
	Kind       string            `json:"kind"`
	At         time.Time         `json:"at"`
	// Seq is the origin wallet's changelog sequence number for this event.
	// Always set; a follower replica uses it to detect dropped pushes
	// (seq gap → resync, §9).
	Seq uint64 `json:"seq,omitempty"`
	// Bundle carries the full delegation (with support proofs) on
	// "published" events of a subscribe-all stream, so a follower installs
	// the credential without a read-back round trip. Per-delegation
	// subscriptions omit it.
	Bundle *SyncBundle `json:"bundle,omitempty"`
}

// SyncBundle is one stored delegation with the support proofs it was
// published with — the replication unit of SyncResp and of "published"
// stream pushes.
type SyncBundle struct {
	Delegation *core.Delegation `json:"delegation"`
	Support    []*core.Proof    `json:"support,omitempty"`
}

// SyncResp answers a TSync request: the serving wallet's full replicable
// state — every stored bundle and observed revocation — consistent at
// changelog sequence number Seq. A follower installs it, then applies
// stream events with seq > Seq in order.
type SyncResp struct {
	Seq     uint64              `json:"seq"`
	Bundles []SyncBundle        `json:"bundles"`
	Revoked []core.DelegationID `json:"revoked,omitempty"`
}

// SyncSegmentsReq asks for the serving wallet's log segments holding
// records with seq greater than AfterSeq; 0 asks for the full log.
type SyncSegmentsReq struct {
	AfterSeq uint64 `json:"afterSeq,omitempty"`
}

// Segment is one shipped log segment: the raw length-prefixed, CRC-framed
// record bytes of a segment file (see internal/logstore for the framing).
type Segment struct {
	// Name is the segment's file name on the source, diagnostic only.
	Name string `json:"name"`
	// Sealed reports whether the segment is immutable on the source.
	Sealed bool `json:"sealed,omitempty"`
	// Records holds the framed records (JSON base64-encodes the bytes).
	Records []byte `json:"records"`
}

// SyncSegmentsResp answers a TSyncSegments request: the wallet's record log
// (or the slice of it after AfterSeq) plus the changelog seq the shipment
// is consistent at. Records with seq at or below the caller's AfterSeq may
// still appear — replay is idempotent and the caller skips them.
type SyncSegmentsResp struct {
	Seq      uint64    `json:"seq"`
	Segments []Segment `json:"segments"`
}

// SubscribeAllResp acknowledges a TSubscribeAll request with the wallet's
// changelog seq read after the stream became live: every mutation with a
// greater seq is guaranteed to be delivered on this connection. A follower
// whose bootstrap snapshot is older than Seq knows a mutation landed in
// the bootstrap window and resyncs immediately.
type SubscribeAllResp struct {
	Seq uint64 `json:"seq"`
}

// ShardMapResp answers a TShardMap request and, with Map omitted, is the
// body of the TClusterHello push.
type ShardMapResp struct {
	// Epoch is the serving member's current shard map epoch.
	Epoch uint64 `json:"epoch"`
	// Shard is the serving member's shard ID; -1 marks a routing gateway
	// that serves the whole cluster rather than one shard.
	Shard int `json:"shard"`
	// Map is the serialized cluster map (internal/cluster.Map JSON),
	// opaque at the wire layer.
	Map json.RawMessage `json:"map,omitempty"`
}

// Redirect tells a client its routing was wrong or stale: the request
// belongs to another shard or was stamped with an old epoch. The client
// adopts the fresh map and retries against the owning shard.
type Redirect struct {
	// Epoch is the refusing member's current epoch.
	Epoch uint64 `json:"epoch"`
	// Shard is the owning shard's ID (the refusing member's own ID on a
	// pure epoch mismatch).
	Shard int `json:"shard"`
	// Addrs is the owning shard's replica group, when known.
	Addrs []string `json:"addrs,omitempty"`
	// Map is the refusing member's full serialized map, so one redirect
	// heals the client's entire routing table.
	Map json.RawMessage `json:"map,omitempty"`
}

// ClusterStats is the cluster section of a StatsResp, present when the
// answering process is a shard member or gateway.
type ClusterStats struct {
	Epoch uint64 `json:"epoch"`
	// Shard is the answering member's shard ID; -1 for a gateway.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Routes counts mutations routed per shard ID (gateway view) or
	// served locally (member view), keyed by decimal shard ID.
	Routes map[string]int64 `json:"routes,omitempty"`
	// Redirects counts requests refused with a redirect (member) or
	// redirects followed (gateway).
	Redirects int64 `json:"redirects,omitempty"`
	// Scatters counts cross-shard scatter-gather queries (gateway).
	Scatters int64 `json:"scatters,omitempty"`
}

// DHTContact names one DHT node: its 160-bit self-certifying ID (the
// first 20 bytes of SHA-256 over the node's ed25519 entity key) and the
// address its wallet listens on. JSON base64-encodes ID.
type DHTContact struct {
	ID   []byte `json:"id"`
	Addr string `json:"addr"`
}

// DHTFindReq asks for the closest contacts to Target (find-node) or for
// the provider record stored under Target (find-value). From advertises
// the caller's own listen address so the serving node can learn it; the
// caller's contact ID is always derived from the authenticated transport
// identity, never from the request.
type DHTFindReq struct {
	From   DHTContact `json:"from"`
	Target []byte     `json:"target"`
}

// DHTFindResp answers find-node and find-value. Record is set only on a
// find-value hit; Contacts carries the serving node's closest known
// contacts to the target (always on find-node, on find-value misses as
// the lookup's next hops).
type DHTFindResp struct {
	Record   *DHTRecord   `json:"record,omitempty"`
	Contacts []DHTContact `json:"contacts,omitempty"`
}

// DHTRecord is a signed provider record: the entity named by PublicKey
// asserts that its home wallet(s) listen at Addrs. The record key is
// derived from PublicKey itself, so possession of the matching private
// key is the only way to publish under a key — a store or a fetched
// record whose signature does not verify against PublicKey is refused.
type DHTRecord struct {
	// PublicKey is the raw ed25519 entity key (32 bytes, base64 in JSON).
	PublicKey []byte `json:"publicKey"`
	// Addrs lists the entity's home wallet address(es), most preferred
	// first.
	Addrs []string `json:"addrs"`
	// Seq orders republications: a node replaces a held record only with
	// one bearing a greater Seq (or an equal Seq issued no earlier).
	Seq uint64 `json:"seq"`
	// IssuedAt is the signer's clock at signing time.
	IssuedAt time.Time `json:"issuedAt"`
	// TTLSeconds bounds the record's life; nodes drop it at
	// IssuedAt+TTL and the publisher republishes well before that.
	TTLSeconds int `json:"ttlSeconds"`
	// Sig is the entity's ed25519 signature over the canonical record
	// bytes (everything above, length-framed).
	Sig []byte `json:"sig"`
}

// DHTStoreReq offers a record for storage at the serving node.
type DHTStoreReq struct {
	From   DHTContact `json:"from"`
	Record DHTRecord  `json:"record"`
}

// GossipUpdate is one piggybacked SWIM membership event: Addr's status
// claim at Incarnation. Higher incarnations win; at equal incarnation
// dead beats suspect beats alive.
type GossipUpdate struct {
	Addr string `json:"addr"`
	// Status is "alive", "suspect", or "dead".
	Status string `json:"status"`
	// Incarnation is the member's self-asserted version; only the member
	// itself bumps it (to refute a suspicion).
	Incarnation uint64 `json:"incarnation"`
}

// GossipPingBody carries a direct probe (Target empty) or an indirect
// probe request (Target set: "probe this address for me"). From is the
// caller's own gossip address; Updates piggyback pending membership
// events.
type GossipPingBody struct {
	From    string         `json:"from"`
	Target  string         `json:"target,omitempty"`
	Updates []GossipUpdate `json:"updates,omitempty"`
}

// GossipAck answers a gossip probe, piggybacking the responder's pending
// membership events.
type GossipAck struct {
	From    string         `json:"from"`
	Updates []GossipUpdate `json:"updates,omitempty"`
}

// DHTStats is the dht section of a StatsResp, present when the answering
// daemon runs a DHT node.
type DHTStats struct {
	// ID is the node's 160-bit DHT ID, lowercase hex.
	ID string `json:"id"`
	// BucketPeers counts contacts across all k-buckets.
	BucketPeers int `json:"bucketPeers"`
	// ProviderRecords counts verified records currently held.
	ProviderRecords int `json:"providerRecords"`
	// Lookups counts iterative lookups started by this node.
	Lookups int64 `json:"lookups"`
	// Stores counts store RPCs accepted by this node.
	Stores int64 `json:"stores"`
	// StoresRefused counts store RPCs refused (bad signature, key
	// mismatch, expired, malformed).
	StoresRefused int64 `json:"storesRefused,omitempty"`
	// Announced counts entities this node republishes records for.
	Announced int `json:"announced,omitempty"`
	// GossipAlive/GossipSuspect/GossipDead count members per SWIM state;
	// all zero when gossip is disabled.
	GossipAlive   int `json:"gossipAlive"`
	GossipSuspect int `json:"gossipSuspect"`
	GossipDead    int `json:"gossipDead"`
}

// ErrorResp reports a request failure.
type ErrorResp struct {
	Message string `json:"message"`
	// NoProof marks core.ErrNoProof so clients can map it back.
	NoProof bool `json:"noProof,omitempty"`
	// Redirect, when set, carries shard re-routing info (stale epoch or
	// wrong shard); clients retry against Redirect.Addrs under
	// Redirect.Epoch.
	Redirect *Redirect `json:"redirect,omitempty"`
}

// Encode marshals an envelope with a typed body.
func Encode(t MsgType, id uint64, body any) ([]byte, error) {
	var raw json.RawMessage
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("wire encode %s: %w", t, err)
		}
		raw = b
	}
	out, err := json.Marshal(Envelope{Type: t, ID: id, Body: raw})
	if err != nil {
		return nil, fmt.Errorf("wire encode %s: %w", t, err)
	}
	return out, nil
}

// Decode unmarshals an envelope.
func Decode(frame []byte) (Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(frame, &env); err != nil {
		return Envelope{}, fmt.Errorf("wire decode: %w", err)
	}
	if env.Type == "" {
		return Envelope{}, fmt.Errorf("wire decode: missing type")
	}
	return env, nil
}

// DecodeBody unmarshals an envelope body into out, transparently handling
// both JSON and binary-decoded envelopes.
func DecodeBody(env Envelope, out any) error {
	if env.binKind != 0 {
		return decodeBinaryBody(env, out)
	}
	if len(env.Body) == 0 {
		return fmt.Errorf("wire %s: empty body", env.Type)
	}
	if err := json.Unmarshal(env.Body, out); err != nil {
		return fmt.Errorf("wire %s: bad body: %w", env.Type, err)
	}
	return nil
}
