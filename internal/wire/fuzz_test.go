package wire

import (
	"encoding/json"
	"testing"
	"time"
)

// FuzzDHTMessageDecode drives adversarial bytes through the full DHT
// message decode path — envelope, then every dht-* body shape — the way a
// server handles a frame from an authenticated but untrusted peer. The
// decoder must never panic, and anything it accepts must survive an
// encode/decode round trip (no state smuggled through unparsed bytes).
func FuzzDHTMessageDecode(f *testing.F) {
	record := DHTRecord{
		PublicKey:  make([]byte, 32),
		Addrs:      []string{"wallet.bigisp:7100"},
		Seq:        3,
		IssuedAt:   time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		TTLSeconds: 3600,
		Sig:        make([]byte, 64),
	}
	for _, seed := range []struct {
		t    MsgType
		body any
	}{
		{TDHTFindNode, DHTFindReq{From: DHTContact{ID: make([]byte, 20), Addr: "wallet.a"}, Target: make([]byte, 20)}},
		{TDHTFindValue, DHTFindReq{Target: []byte{0xff}}},
		{TDHTStore, DHTStoreReq{From: DHTContact{Addr: "wallet.b"}, Record: record}},
		{TDHTFindValue, DHTFindResp{Record: &record}},
		{TDHTFindNode, DHTFindResp{Contacts: []DHTContact{{ID: make([]byte, 20), Addr: "wallet.c"}}}},
	} {
		frame, err := Encode(seed.t, 1, seed.body)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte(`{"type":"dht-store","id":9,"body":{"record":{"seq":-1,"ttlSeconds":1e99}}}`))
	f.Fuzz(func(t *testing.T, frame []byte) {
		env, err := Decode(frame)
		if err != nil {
			return
		}
		switch env.Type {
		case TDHTFindNode, TDHTFindValue:
			var req DHTFindReq
			if DecodeBody(env, &req) == nil {
				roundTrip(t, env.Type, req, &DHTFindReq{})
			}
			var resp DHTFindResp
			if DecodeBody(env, &resp) == nil {
				roundTrip(t, env.Type, resp, &DHTFindResp{})
			}
		case TDHTStore:
			var req DHTStoreReq
			if DecodeBody(env, &req) == nil {
				roundTrip(t, env.Type, req, &DHTStoreReq{})
			}
		}
	})
}

// FuzzGossipMessageDecode does the same for the gossip-* shapes, whose
// piggybacked update lists are the member-to-member rumor channel.
func FuzzGossipMessageDecode(f *testing.F) {
	updates := []GossipUpdate{
		{Addr: "wallet.a", Status: "alive", Incarnation: 1},
		{Addr: "wallet.b", Status: "suspect", Incarnation: 0},
		{Addr: "wallet.c", Status: "dead", Incarnation: 7},
	}
	for _, seed := range []struct {
		t    MsgType
		body any
	}{
		{TGossipPing, GossipPingBody{From: "wallet.a", Updates: updates}},
		{TGossipPingReq, GossipPingBody{From: "wallet.a", Target: "wallet.b"}},
		{TGossipPing, GossipAck{From: "wallet.b", Updates: updates}},
	} {
		frame, err := Encode(seed.t, 1, seed.body)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte(`{"type":"gossip-ping","id":2,"body":{"updates":[{"status":"zombie","incarnation":18446744073709551615}]}}`))
	f.Fuzz(func(t *testing.T, frame []byte) {
		env, err := Decode(frame)
		if err != nil {
			return
		}
		switch env.Type {
		case TGossipPing, TGossipPingReq:
			var body GossipPingBody
			if DecodeBody(env, &body) == nil {
				roundTrip(t, env.Type, body, &GossipPingBody{})
			}
			var ack GossipAck
			if DecodeBody(env, &ack) == nil {
				roundTrip(t, env.Type, ack, &GossipAck{})
			}
		}
	})
}

// roundTrip re-encodes an accepted body and decodes it again: whatever the
// decoder admitted must be fully representable by the typed struct.
func roundTrip(t *testing.T, mt MsgType, body any, into any) {
	t.Helper()
	frame, err := Encode(mt, 1, body)
	if err != nil {
		t.Fatalf("re-encode accepted %s body: %v", mt, err)
	}
	env, err := Decode(frame)
	if err != nil {
		t.Fatalf("re-decode %s envelope: %v", mt, err)
	}
	if err := DecodeBody(env, into); err != nil {
		t.Fatalf("re-decode %s body: %v", mt, err)
	}
	a, _ := json.Marshal(body)
	b, _ := json.Marshal(into)
	if string(a) != string(b) {
		t.Fatalf("%s body not stable across round trip:\n1st: %s\n2nd: %s", mt, a, b)
	}
}
