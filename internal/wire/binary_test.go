package wire

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"drbac/internal/bufpool"
	"drbac/internal/core"
	"drbac/internal/graph"
)

// hotBodies returns one representative value per hand-rolled binary body
// shape, built around a real signed three-delegation proof chain so the
// encoders see every field populated the way production traffic does.
func hotBodies(t *testing.T) []struct {
	t    MsgType
	body any
	into func() any
} {
	t.Helper()
	p, _, now := fixtureProof(t)
	d := p.Steps[0].Delegation
	sup := p.Steps[0].Support
	return []struct {
		t    MsgType
		body any
		into func() any
	}{
		{TQueryDirect, QueryReq{
			Subject: core.Subject{Entity: d.Subject.Entity},
			Object:  d.Object,
			Constraints: []core.Constraint{{
				Attr:    core.AttributeRef{Namespace: d.Object.Namespace, Name: "quota"},
				Base:    100,
				Minimum: 10,
			}},
			Direction: graph.Forward,
			TraceID:   "trace-1",
			SpanID:    "span-9",
		}, func() any { return &QueryReq{} }},
		{TQuerySubject, QueryReq{Subject: core.Subject{Role: d.Object}}, func() any { return &QueryReq{} }},
		{TProof, ProofResp{Proof: p}, func() any { return &ProofResp{} }},
		{TProof, ProofResp{}, func() any { return &ProofResp{} }},
		{TProofs, ProofsResp{Proofs: []*core.Proof{p, sup[0]}}, func() any { return &ProofsResp{} }},
		{TPublish, PublishReq{Delegation: d, Support: sup, TTLSeconds: 300, ShardEpoch: 7}, func() any { return &PublishReq{} }},
		{TRevoke, RevokeReq{Delegation: d.ID(), ShardEpoch: 3}, func() any { return &RevokeReq{} }},
		{TNotify, NotifyPush{Delegation: d.ID(), Kind: "revoked", At: now, Seq: 12}, func() any { return &NotifyPush{} }},
		{TNotify, NotifyPush{
			Delegation: d.ID(), Kind: "published", At: now, Seq: 13,
			Bundle: &SyncBundle{Delegation: d, Support: sup},
		}, func() any { return &NotifyPush{} }},
		{TSubscribe, SubscribeReq{Delegation: d.ID()}, func() any { return &SubscribeReq{} }},
		{THas, HasReq{Delegation: d.ID()}, func() any { return &HasReq{} }},
		{TOK, HasResp{Present: true}, func() any { return &HasResp{} }},
		{TOK, SyncResp{
			Seq:     44,
			Bundles: []SyncBundle{{Delegation: d, Support: sup}},
			Revoked: []core.DelegationID{"dead-1", "dead-2"},
		}, func() any { return &SyncResp{} }},
		{TOK, SubscribeAllResp{Seq: 9}, func() any { return &SubscribeAllResp{} }},
		{TSyncSegments, SyncSegmentsReq{AfterSeq: 5}, func() any { return &SyncSegmentsReq{} }},
		{TOK, SyncSegmentsResp{
			Seq:      80,
			Segments: []Segment{{Name: "seg-000001", Sealed: true, Records: []byte("r1\nr2\n")}},
		}, func() any { return &SyncSegmentsResp{} }},
		{TProveRole, ProveRoleReq{Role: d.Object}, func() any { return &ProveRoleReq{} }},
	}
}

// TestBinaryRoundTripHotBodies drives every hand-rolled body shape through
// encode → decode → DecodeBody and requires the result to be field-for-field
// identical (JSON re-marshal equality) with the original.
func TestBinaryRoundTripHotBodies(t *testing.T) {
	for _, c := range hotBodies(t) {
		frame, err := binaryCodecInst.Encode(c.t, 7, c.body)
		if err != nil {
			t.Fatalf("%s %T: encode: %v", c.t, c.body, err)
		}
		env, err := binaryCodecInst.Decode(frame)
		if err != nil {
			t.Fatalf("%s %T: decode: %v", c.t, c.body, err)
		}
		if env.Type != c.t || env.ID != 7 {
			t.Fatalf("%s: envelope = %q id %d", c.t, env.Type, env.ID)
		}
		out := c.into()
		if err := DecodeBody(env, out); err != nil {
			t.Fatalf("%s %T: decode body: %v", c.t, c.body, err)
		}
		want, _ := json.Marshal(c.body)
		got, _ := json.Marshal(out)
		if !bytes.Equal(want, got) {
			t.Errorf("%s %T: round trip diverged\nwant %s\ngot  %s", c.t, c.body, want, got)
		}
	}
}

// TestCrossCodecByteIdentical is the compatibility invariant the CI
// cross-codec job leans on: the same body decoded off a JSON frame and off
// a binary frame must re-marshal to byte-identical JSON — a proof fetched
// through a binary peer is indistinguishable from one fetched through a
// JSON peer.
func TestCrossCodecByteIdentical(t *testing.T) {
	for _, c := range hotBodies(t) {
		jf, err := jsonCodecInst.Encode(c.t, 3, c.body)
		if err != nil {
			t.Fatalf("%s: json encode: %v", c.t, err)
		}
		bf, err := binaryCodecInst.Encode(c.t, 3, c.body)
		if err != nil {
			t.Fatalf("%s: binary encode: %v", c.t, err)
		}
		je, err := jsonCodecInst.Decode(jf)
		if err != nil {
			t.Fatalf("%s: json decode: %v", c.t, err)
		}
		be, err := binaryCodecInst.Decode(bf)
		if err != nil {
			t.Fatalf("%s: binary decode: %v", c.t, err)
		}
		jo, bo := c.into(), c.into()
		if err := DecodeBody(je, jo); err != nil {
			t.Fatalf("%s: json decode body: %v", c.t, err)
		}
		if err := DecodeBody(be, bo); err != nil {
			t.Fatalf("%s: binary decode body: %v", c.t, err)
		}
		j, _ := json.Marshal(jo)
		b, _ := json.Marshal(bo)
		if !bytes.Equal(j, b) {
			t.Errorf("%s %T: codecs disagree\njson   %s\nbinary %s", c.t, c.body, j, b)
		}
	}
}

// TestBinaryColdBodiesFallBackToJSON checks that body types without a
// hand-rolled layout ride as JSON inside the binary envelope.
func TestBinaryColdBodiesFallBackToJSON(t *testing.T) {
	body := ErrorResp{Message: "boom", NoProof: true}
	frame, err := binaryCodecInst.Encode(TError, 5, body)
	if err != nil {
		t.Fatal(err)
	}
	env, err := binaryCodecInst.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	var out ErrorResp
	if err := DecodeBody(env, &out); err != nil {
		t.Fatal(err)
	}
	if out != body {
		t.Fatalf("round trip = %+v, want %+v", out, body)
	}
}

// TestBinaryUnknownTypeEscape checks the type-string escape: message types
// added after this build still frame and round-trip.
func TestBinaryUnknownTypeEscape(t *testing.T) {
	frame, err := binaryCodecInst.Encode(MsgType("future-msg"), 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	env, err := binaryCodecInst.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != "future-msg" || env.ID != 9 {
		t.Fatalf("env = %+v", env)
	}
}

// TestBinaryDecodeRejections nails down the decoder's protocol-violation
// errors: wrong magic (including a JSON frame sent down a binary
// connection), bad version, unknown type code, unknown body kind, trailing
// garbage, and a body-kind/type mismatch at DecodeBody time.
func TestBinaryDecodeRejections(t *testing.T) {
	if _, err := binaryCodecInst.Decode([]byte(`{"type":"ping","id":1}`)); err == nil {
		t.Error("JSON frame accepted by the binary codec")
	}
	if _, err := binaryCodecInst.Decode([]byte{0xAA, 1, 10, 1, 0}); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := binaryCodecInst.Decode([]byte{binMagic, 99, 10, 1, 0}); err == nil {
		t.Error("future version accepted")
	}
	if _, err := binaryCodecInst.Decode([]byte{binMagic, 1, 250, 1, 0}); err == nil {
		t.Error("unknown type code accepted")
	}
	if _, err := binaryCodecInst.Decode([]byte{binMagic, 1, 10, 1, 200}); err == nil {
		t.Error("unknown body kind accepted")
	}
	if _, err := binaryCodecInst.Decode([]byte{binMagic, 1, 10, 1, bkNone, 0xFF}); err == nil {
		t.Error("trailing bytes after empty body accepted")
	}
	if _, err := binaryCodecInst.Decode([]byte{binMagic, 1}); err == nil {
		t.Error("truncated frame accepted")
	}

	// A HasResp body decoded into a QueryReq is a kind mismatch, caught
	// before any field is read.
	frame, err := binaryCodecInst.Encode(TOK, 1, HasResp{Present: true})
	if err != nil {
		t.Fatal(err)
	}
	env, err := binaryCodecInst.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	var q QueryReq
	if err := DecodeBody(env, &q); err == nil {
		t.Error("body-kind mismatch accepted")
	}
}

// TestBinaryInterningSharesAllocations checks that repeated principals in
// one frame decode to shared values: the point of the intern table.
func TestBinaryInterningSharesAllocations(t *testing.T) {
	p, _, _ := fixtureProof(t)
	frame, err := binaryCodecInst.Encode(TProof, 1, ProofResp{Proof: p})
	if err != nil {
		t.Fatal(err)
	}
	env, err := binaryCodecInst.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	var out ProofResp
	if err := DecodeBody(env, &out); err != nil {
		t.Fatal(err)
	}
	// The chain's delegations share an issuer; decoded keys must share one
	// backing array.
	var keys [][]byte
	for _, st := range out.Proof.Steps {
		keys = append(keys, st.Delegation.Issuer.Key)
		for _, sp := range st.Support {
			for _, sst := range sp.Steps {
				keys = append(keys, sst.Delegation.Issuer.Key)
			}
		}
	}
	shared := false
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if bytes.Equal(keys[i], keys[j]) && &keys[i][0] == &keys[j][0] {
				shared = true
			}
		}
	}
	if !shared {
		t.Error("no decoded issuer keys share a backing array; interning is not engaged")
	}
}

// TestBinaryProofDepthBounded checks the recursion guard: a frame nesting
// support proofs past maxProofDepth is rejected, not stack-overflowed.
func TestBinaryProofDepthBounded(t *testing.T) {
	// Build a proof nested maxProofDepth+2 deep by hand-encoding: each
	// level is a proof with one step whose support holds the next level.
	var w bwriter
	var openProof func(depth int)
	openProof = func(depth int) {
		w.bool(true)        // proof present
		w.bool(true)        // subject: entity
		w.str("e")          // entity id
		w.role(core.Role{}) // object
		if depth == 0 {
			w.uvarint(0) // no steps
			return
		}
		w.uvarint(1)  // one step
		w.bool(false) // nil delegation
		w.uvarint(1)  // one support proof
		openProof(depth - 1)
	}
	openProof(maxProofDepth + 2)
	r := breader{buf: w.buf}
	r.proof(0)
	if r.err == nil {
		t.Fatal("proof nested past maxProofDepth accepted")
	}
}

// FuzzBinaryCodecRoundTrip fuzzes the full typed path: any frame the binary
// decoder accepts must decode into its body type and survive re-encode →
// re-decode with identical JSON re-marshals — the same stability contract
// the JSON fuzzers enforce, so neither codec can smuggle state the other
// would drop.
func FuzzBinaryCodecRoundTrip(f *testing.F) {
	seedBodies := []struct {
		t    MsgType
		body any
	}{
		{TQueryDirect, QueryReq{Subject: core.Subject{Entity: "e1"}, Direction: graph.Forward}},
		{TOK, HasResp{Present: true}},
		{TOK, SyncResp{Seq: 3, Revoked: []core.DelegationID{"x"}}},
		{TNotify, NotifyPush{Delegation: "d", Kind: "revoked", At: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)}},
		{TRevoke, RevokeReq{Delegation: "d-1", ShardEpoch: 2}},
		{TProof, ProofResp{}},
		{TOK, SyncSegmentsResp{Seq: 1, Segments: []Segment{{Name: "s", Records: []byte{1, 2}}}}},
	}
	for _, s := range seedBodies {
		frame, err := binaryCodecInst.Encode(s.t, 1, s.body)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), frame...))
		bufpool.Put(frame)
	}
	intoFor := map[byte]func() any{
		bkQueryReq:         func() any { return &QueryReq{} },
		bkProofResp:        func() any { return &ProofResp{} },
		bkProofsResp:       func() any { return &ProofsResp{} },
		bkPublishReq:       func() any { return &PublishReq{} },
		bkRevokeReq:        func() any { return &RevokeReq{} },
		bkNotifyPush:       func() any { return &NotifyPush{} },
		bkSubscribeReq:     func() any { return &SubscribeReq{} },
		bkHasReq:           func() any { return &HasReq{} },
		bkHasResp:          func() any { return &HasResp{} },
		bkSyncResp:         func() any { return &SyncResp{} },
		bkSubscribeAllResp: func() any { return &SubscribeAllResp{} },
		bkSyncSegmentsReq:  func() any { return &SyncSegmentsReq{} },
		bkSyncSegmentsResp: func() any { return &SyncSegmentsResp{} },
		bkProveRoleReq:     func() any { return &ProveRoleReq{} },
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		env, err := binaryCodecInst.Decode(frame)
		if err != nil || env.binKind == 0 {
			return
		}
		mk := intoFor[env.binKind]
		out := mk()
		if DecodeBody(env, out) != nil {
			return
		}
		// Re-encode the decoded value (Encode switches on value types).
		body := derefBody(out)
		frame2, err := binaryCodecInst.Encode(env.Type, env.ID, body)
		if err != nil {
			t.Fatalf("re-encode accepted %s body: %v", env.Type, err)
		}
		env2, err := binaryCodecInst.Decode(frame2)
		if err != nil {
			t.Fatalf("re-decode %s envelope: %v", env.Type, err)
		}
		out2 := mk()
		if err := DecodeBody(env2, out2); err != nil {
			t.Fatalf("re-decode %s body: %v", env.Type, err)
		}
		a, _ := json.Marshal(out)
		b, _ := json.Marshal(out2)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s body not stable across round trip:\n1st: %s\n2nd: %s", env.Type, a, b)
		}
	})
}

// derefBody unwraps the decode-target pointer into the value type the
// encoder's switch expects.
func derefBody(out any) any {
	switch v := out.(type) {
	case *QueryReq:
		return *v
	case *ProofResp:
		return *v
	case *ProofsResp:
		return *v
	case *PublishReq:
		return *v
	case *RevokeReq:
		return *v
	case *NotifyPush:
		return *v
	case *SubscribeReq:
		return *v
	case *HasReq:
		return *v
	case *HasResp:
		return *v
	case *SyncResp:
		return *v
	case *SubscribeAllResp:
		return *v
	case *SyncSegmentsReq:
		return *v
	case *SyncSegmentsResp:
		return *v
	case *ProveRoleReq:
		return *v
	default:
		return out
	}
}

// FuzzBinaryFrameDecode hammers the raw decoder with adversarial bytes: it
// must never panic, and every length/count it trusts is bounded by the
// frame itself, so a small hostile frame cannot drive a large allocation.
func FuzzBinaryFrameDecode(f *testing.F) {
	f.Add([]byte{binMagic, binVersion, 10, 1, bkNone})
	f.Add([]byte{binMagic, binVersion, 0, 4, 'p', 'i', 'n', 'g', 1, bkNone})
	// A count field claiming 2^32 elements in a five-byte body.
	f.Add([]byte{binMagic, binVersion, 2, 1, bkQueryReq, 0x80, 0x80, 0x80, 0x80, 0x10})
	p, _, _ := fixtureProof(f)
	frame, err := binaryCodecInst.Encode(TProof, 1, ProofResp{Proof: p})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), frame...))
	bufpool.Put(frame)
	f.Fuzz(func(t *testing.T, frame []byte) {
		env, err := binaryCodecInst.Decode(frame)
		if err != nil {
			return
		}
		// Try every typed target: wrong kinds must error cleanly, the right
		// kind must decode without panicking or over-reading.
		for _, out := range []any{
			&QueryReq{}, &ProofResp{}, &ProofsResp{}, &PublishReq{}, &RevokeReq{},
			&NotifyPush{}, &SubscribeReq{}, &HasReq{}, &HasResp{}, &SyncResp{},
			&SubscribeAllResp{}, &SyncSegmentsReq{}, &SyncSegmentsResp{}, &ProveRoleReq{},
		} {
			_ = DecodeBody(env, out)
		}
	})
}
