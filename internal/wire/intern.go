package wire

import (
	"crypto/ed25519"
	"sync"
	"sync/atomic"
)

// Entity interning for the binary decode path.
//
// Proof chains repeat principals heavily: every delegation re-carries its
// issuer's 32-byte ed25519 key and the 64-hex-char entity fingerprints of
// every role namespace. JSON decoding allocates a fresh copy of each
// occurrence; the binary decoder instead resolves them through a
// process-wide memo (the same shared-memo treatment the signature cache
// gives verification results), so a delegation chain quoting one issuer ten
// times decodes to one shared allocation.
//
// Interned values MUST be treated as immutable — keys are by convention
// (they are public key material), strings are by language. The table is
// bounded: at capacity it is reset wholesale, which only costs future
// lookups a miss, never correctness.

// internCap bounds each intern table. Coalitions have bounded principal
// populations; 4096 distinct keys/fingerprints covers far beyond the paper's
// scenarios while capping worst-case memory at a few hundred KiB.
const internCap = 4096

type internTables struct {
	mu      sync.RWMutex
	strings map[string]string
	keys    map[string]ed25519.PublicKey

	hits   atomic.Uint64
	misses atomic.Uint64
}

var interns = internTables{
	strings: make(map[string]string),
	keys:    make(map[string]ed25519.PublicKey),
}

// internString returns a shared string equal to string(b), memoizing new
// values up to the table cap.
func internString(b []byte) string {
	t := &interns
	t.mu.RLock()
	s, ok := t.strings[string(b)] // compiler avoids allocating for the lookup key
	t.mu.RUnlock()
	if ok {
		t.hits.Add(1)
		return s
	}
	t.misses.Add(1)
	s = string(b)
	t.mu.Lock()
	if len(t.strings) >= internCap {
		t.strings = make(map[string]string)
	}
	t.strings[s] = s
	t.mu.Unlock()
	return s
}

// internKey returns a shared ed25519 public key equal to b.
func internKey(b []byte) ed25519.PublicKey {
	if len(b) == 0 {
		return nil
	}
	t := &interns
	t.mu.RLock()
	k, ok := t.keys[string(b)]
	t.mu.RUnlock()
	if ok {
		t.hits.Add(1)
		return k
	}
	t.misses.Add(1)
	k = ed25519.PublicKey(append([]byte(nil), b...))
	t.mu.Lock()
	if len(t.keys) >= internCap {
		t.keys = make(map[string]ed25519.PublicKey)
	}
	t.keys[string(k)] = k
	t.mu.Unlock()
	return k
}
