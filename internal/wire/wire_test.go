package wire

import (
	"bytes"
	"math"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/obs"
)

func fixtureProof(t testing.TB) (*core.Proof, *core.MemDirectory, time.Time) {
	t.Helper()
	now := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	mk := func(name string, b byte) *core.Identity {
		seed := make([]byte, 32)
		for i := range seed {
			seed[i] = b
		}
		id, err := core.IdentityFromSeed(name, seed)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	bigISP, mark, maria := mk("BigISP", 1), mk("Mark", 3), mk("Maria", 5)
	dir := core.NewDirectory(bigISP.Entity(), mark.Entity(), maria.Entity())

	issue := func(issuer *core.Identity, text string) *core.Delegation {
		parsed, err := core.ParseDelegation(text, dir)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		d, err := core.Issue(issuer, parsed.Template, now)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1 := issue(bigISP, "[Mark -> BigISP.memberServices] BigISP")
	d2 := issue(bigISP, "[BigISP.memberServices -> BigISP.member'] BigISP")
	d3 := issue(mark, "[Maria -> BigISP.member with BigISP.quota -= 5] Mark <expiry:2027-01-01T00:00:00Z>")
	sup, err := core.NewProof(core.ProofStep{Delegation: d1}, core.ProofStep{Delegation: d2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProof(core.ProofStep{Delegation: d3, Support: []*core.Proof{sup}})
	if err != nil {
		t.Fatal(err)
	}
	return p, dir, now
}

func TestEnvelopeRoundTrip(t *testing.T) {
	frame, err := Encode(TPing, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != TPing || env.ID != 42 {
		t.Fatalf("env = %+v", env)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Fatal("bad json accepted")
	}
	if _, err := Decode([]byte(`{"id":1}`)); err == nil {
		t.Fatal("missing type accepted")
	}
	env, err := Decode([]byte(`{"type":"ok"}`))
	if err != nil {
		t.Fatal(err)
	}
	var body ErrorResp
	if err := DecodeBody(env, &body); err == nil {
		t.Fatal("empty body decode should fail")
	}
}

// The critical property: a proof survives a wire round trip with its
// signatures still verifying, because delegations sign a canonical encoding
// independent of JSON.
func TestProofSurvivesWireRoundTrip(t *testing.T) {
	p, _, now := fixtureProof(t)
	frame, err := Encode(TProof, 7, ProofResp{Proof: p})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	var resp ProofResp
	if err := DecodeBody(env, &resp); err != nil {
		t.Fatal(err)
	}
	got := resp.Proof
	if err := got.Validate(core.ValidateOptions{At: now}); err != nil {
		t.Fatalf("deserialized proof no longer validates: %v", err)
	}
	if got.Steps[0].Delegation.ID() != p.Steps[0].Delegation.ID() {
		t.Fatal("delegation ID changed across the wire")
	}
	ag, err := got.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	quota := core.AttributeRef{Namespace: p.Steps[0].Delegation.Object.Namespace, Name: "quota"}
	if v := ag.Value(quota, 100); v != 95 {
		t.Fatalf("attribute survived as %v, want 95", v)
	}
}

func TestDelegationFieldsSurviveWire(t *testing.T) {
	p, _, _ := fixtureProof(t)
	d := p.Steps[0].Delegation
	frame, err := Encode(TPublish, 1, PublishReq{Delegation: d, Support: p.Steps[0].Support, TTLSeconds: 30})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	var req PublishReq
	if err := DecodeBody(env, &req); err != nil {
		t.Fatal(err)
	}
	got := req.Delegation
	if got.ID() != d.ID() {
		t.Fatal("ID mismatch")
	}
	if !got.Expiry.Equal(d.Expiry) {
		t.Fatalf("expiry mismatch: %v vs %v", got.Expiry, d.Expiry)
	}
	if got.Kind() != core.KindThirdParty {
		t.Fatal("kind lost")
	}
	if len(req.Support) != 1 || req.Support[0].Len() != 2 {
		t.Fatal("support proofs lost")
	}
	if req.TTLSeconds != 30 {
		t.Fatal("TTL lost")
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("signature lost: %v", err)
	}
}

// Regression: constraints with infinite bases (the default for
// min-collected attributes) must survive JSON, which rejects raw ±Inf.
func TestConstraintWithInfiniteBaseSurvivesWire(t *testing.T) {
	p, _, _ := fixtureProof(t)
	bw := core.AttributeRef{Namespace: p.Steps[0].Delegation.Object.Namespace, Name: "BW"}
	req := QueryReq{
		Subject: p.Subject,
		Object:  p.Object,
		Constraints: []core.Constraint{
			{Attr: bw, Base: math.Inf(1), Minimum: 50},
			{Attr: bw, Base: 100, Minimum: 0.25},
		},
	}
	frame, err := Encode(TQueryDirect, 3, req)
	if err != nil {
		t.Fatalf("encode with Inf base: %v", err)
	}
	env, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	var got QueryReq
	if err := DecodeBody(env, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Constraints) != 2 {
		t.Fatalf("constraints = %d", len(got.Constraints))
	}
	if !math.IsInf(got.Constraints[0].Base, 1) || got.Constraints[0].Minimum != 50 {
		t.Fatalf("constraint 0 = %+v", got.Constraints[0])
	}
	if got.Constraints[1].Base != 100 || got.Constraints[1].Minimum != 0.25 {
		t.Fatalf("constraint 1 = %+v", got.Constraints[1])
	}
}

func TestNotifyPushRoundTrip(t *testing.T) {
	at := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	frame, err := Encode(TNotify, 0, NotifyPush{Delegation: "abc", Kind: "revoked", At: at})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if env.ID != 0 || env.Type != TNotify {
		t.Fatalf("env = %+v", env)
	}
	var push NotifyPush
	if err := DecodeBody(env, &push); err != nil {
		t.Fatal(err)
	}
	if push.Delegation != "abc" || push.Kind != "revoked" || !push.At.Equal(at) {
		t.Fatalf("push = %+v", push)
	}
}

func TestQueryReqTraceIDRoundTrip(t *testing.T) {
	frame, err := Encode(TQueryDirect, 7, QueryReq{TraceID: "abc123def4567890"})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	var req QueryReq
	if err := DecodeBody(env, &req); err != nil {
		t.Fatal(err)
	}
	if req.TraceID != "abc123def4567890" {
		t.Fatalf("trace = %q", req.TraceID)
	}
	// An absent trace ID stays empty (and off the wire entirely).
	frame, err = Encode(TQueryDirect, 8, QueryReq{})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(frame, []byte("traceId")) {
		t.Fatalf("empty trace serialized: %s", frame)
	}
}

func TestStatsRespRoundTrip(t *testing.T) {
	resp := StatsResp{
		Delegations: 3,
		Revoked:     1,
		TTLTracked:  2,
		Watches:     4,
		CacheHits:   10,
		CacheMisses: 5,
		Metrics: obs.Snapshot{
			Counters: map[string]int64{"drbac_server_requests_total": 17},
			Gauges:   map[string]int64{"drbac_wallet_delegations": 3},
			Histograms: map[string]obs.HistogramSnapshot{
				"drbac_wallet_query_seconds": {
					Count: 2, Sum: 0.5,
					Buckets: []obs.BucketCount{{UpperBound: 0.001, Count: 1}, {UpperBound: 1, Count: 2}},
				},
			},
		},
	}
	frame, err := Encode(TOK, 9, resp)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	var got StatsResp
	if err := DecodeBody(env, &got); err != nil {
		t.Fatal(err)
	}
	if got.Delegations != 3 || got.CacheHits != 10 {
		t.Fatalf("summary = %+v", got)
	}
	if got.Metrics.Counters["drbac_server_requests_total"] != 17 {
		t.Fatalf("counters = %+v", got.Metrics.Counters)
	}
	h := got.Metrics.Histograms["drbac_wallet_query_seconds"]
	if h.Count != 2 || h.Sum != 0.5 || len(h.Buckets) != 2 || h.Buckets[1].Count != 2 {
		t.Fatalf("histogram = %+v", h)
	}
}
