package wire

import (
	"encoding/json"
	"fmt"

	"drbac/internal/bufpool"
	"drbac/internal/core"
	"drbac/internal/graph"
)

// Binary envelope framing (CodecBinary), negotiated in the transport
// handshake. Layout:
//
//	byte 0   magic 0xD7 (never collides with '{', so a frame encoded with
//	         the wrong codec is detected immediately)
//	byte 1   version (currently 1)
//	byte 2   message type code; 0 escapes to a length-prefixed type string
//	         so future message types survive this framing unchanged
//	uvarint  envelope ID (0 = unsolicited push)
//	byte     body kind (bkNone / bkJSON / typed)
//	rest     body bytes
//
// Hot message bodies (queries, proofs, publishes, revokes, notifies, sync)
// are hand-rolled binary; everything else (stats, DHT, gossip, traces,
// shard maps, errors) rides as JSON inside the binary envelope — those
// paths are cold, and keeping them JSON means one fallback covers every
// future message without a codec bump.

const (
	binMagic   = 0xD7
	binVersion = 1
)

// Body kinds. bkJSON marks a JSON-marshaled body; greater values name
// hand-rolled binary body layouts. Kinds are protocol constants: never
// renumber, only append.
const (
	bkNone byte = iota
	bkJSON
	bkQueryReq
	bkProofResp
	bkProofsResp
	bkPublishReq
	bkRevokeReq
	bkNotifyPush
	bkSubscribeReq
	bkHasReq
	bkHasResp
	bkSyncResp
	bkSubscribeAllResp
	bkSyncSegmentsReq
	bkSyncSegmentsResp
	bkProveRoleReq

	bkMax = bkProveRoleReq
)

// msgTypeCodes maps message types to their single-byte wire codes. Codes
// are protocol constants: never renumber, only append.
var msgTypeCodes = map[MsgType]byte{
	TPublish:       1,
	TQueryDirect:   2,
	TQuerySubject:  3,
	TQueryObject:   4,
	TSubscribe:     5,
	TUnsubscribe:   6,
	TRevoke:        7,
	TProveRole:     8,
	THas:           9,
	TPing:          10,
	TStats:         11,
	TSync:          12,
	TSubscribeAll:  13,
	TSyncSegments:  14,
	TTrace:         15,
	TShardMap:      16,
	TDHTFindNode:   17,
	TDHTFindValue:  18,
	TDHTStore:      19,
	TGossipPing:    20,
	TGossipPingReq: 21,
	TOK:            32,
	TProof:         33,
	TProofs:        34,
	TError:         35,
	TNotify:        36,
	TPong:          37,
	TClusterHello:  38,
}

var msgTypeNames = func() map[byte]MsgType {
	m := make(map[byte]MsgType, len(msgTypeCodes))
	for t, c := range msgTypeCodes {
		m[c] = t
	}
	return m
}()

// binaryCodec implements Codec with the framing above.
type binaryCodec struct{}

func (binaryCodec) Name() string { return CodecBinary }

func (binaryCodec) Encode(t MsgType, id uint64, body any) ([]byte, error) {
	w := bwriter{buf: bufpool.Get(256)}
	w.u8(binMagic)
	w.u8(binVersion)
	if code, ok := msgTypeCodes[t]; ok {
		w.u8(code)
	} else {
		w.u8(0)
		w.str(string(t))
	}
	w.uvarint(id)

	switch b := body.(type) {
	case nil:
		w.u8(bkNone)
	case QueryReq:
		w.u8(bkQueryReq)
		w.subject(b.Subject)
		w.role(b.Object)
		w.uvarint(uint64(len(b.Constraints)))
		for _, c := range b.Constraints {
			w.constraint(c)
		}
		w.svarint(int64(b.Direction))
		w.str(b.TraceID)
		w.str(b.SpanID)
	case ProofResp:
		w.u8(bkProofResp)
		w.proof(b.Proof)
	case ProofsResp:
		w.u8(bkProofsResp)
		w.proofs(b.Proofs)
	case PublishReq:
		w.u8(bkPublishReq)
		w.delegation(b.Delegation)
		w.proofs(b.Support)
		w.svarint(int64(b.TTLSeconds))
		w.uvarint(b.ShardEpoch)
	case RevokeReq:
		w.u8(bkRevokeReq)
		w.str(string(b.Delegation))
		w.uvarint(b.ShardEpoch)
	case NotifyPush:
		w.u8(bkNotifyPush)
		w.str(string(b.Delegation))
		w.str(b.Kind)
		w.time(b.At)
		w.uvarint(b.Seq)
		if b.Bundle == nil {
			w.bool(false)
		} else {
			w.bool(true)
			w.delegation(b.Bundle.Delegation)
			w.proofs(b.Bundle.Support)
		}
	case SubscribeReq:
		w.u8(bkSubscribeReq)
		w.str(string(b.Delegation))
	case HasReq:
		w.u8(bkHasReq)
		w.str(string(b.Delegation))
	case HasResp:
		w.u8(bkHasResp)
		w.bool(b.Present)
	case SyncResp:
		w.u8(bkSyncResp)
		w.uvarint(b.Seq)
		w.uvarint(uint64(len(b.Bundles)))
		for _, sb := range b.Bundles {
			w.delegation(sb.Delegation)
			w.proofs(sb.Support)
		}
		w.uvarint(uint64(len(b.Revoked)))
		for _, rid := range b.Revoked {
			w.str(string(rid))
		}
	case SubscribeAllResp:
		w.u8(bkSubscribeAllResp)
		w.uvarint(b.Seq)
	case SyncSegmentsReq:
		w.u8(bkSyncSegmentsReq)
		w.uvarint(b.AfterSeq)
	case SyncSegmentsResp:
		w.u8(bkSyncSegmentsResp)
		w.uvarint(b.Seq)
		w.uvarint(uint64(len(b.Segments)))
		for _, seg := range b.Segments {
			w.str(seg.Name)
			w.bool(seg.Sealed)
			w.bytes(seg.Records)
		}
	case ProveRoleReq:
		w.u8(bkProveRoleReq)
		w.role(b.Role)
	default:
		raw, err := json.Marshal(body)
		if err != nil {
			bufpool.Put(w.buf)
			return nil, fmt.Errorf("wire encode %s: %w", t, err)
		}
		w.u8(bkJSON)
		w.buf = append(w.buf, raw...)
	}

	stats.binaryFramesEncoded.Add(1)
	stats.binaryBytesEncoded.Add(uint64(len(w.buf)))
	return w.buf, nil
}

func (binaryCodec) Decode(frame []byte) (Envelope, error) {
	r := breader{buf: frame}
	if magic := r.u8(); r.err == nil && magic != binMagic {
		if magic == '{' {
			return Envelope{}, fmt.Errorf("wire decode: JSON frame on a binary-codec connection")
		}
		return Envelope{}, fmt.Errorf("wire decode: bad binary magic 0x%02x", magic)
	}
	if v := r.u8(); r.err == nil && v != binVersion {
		return Envelope{}, fmt.Errorf("wire decode: unsupported binary version %d", v)
	}
	var t MsgType
	if code := r.u8(); code != 0 {
		name, ok := msgTypeNames[code]
		if !ok && r.err == nil {
			return Envelope{}, fmt.Errorf("wire decode: unknown message type code %d", code)
		}
		t = name
	} else {
		t = MsgType(r.str())
	}
	id := r.uvarint()
	kind := r.u8()
	if r.err != nil {
		return Envelope{}, fmt.Errorf("wire decode: %w", r.err)
	}
	if t == "" {
		return Envelope{}, fmt.Errorf("wire decode: missing type")
	}
	body := frame[r.off:]
	env := Envelope{Type: t, ID: id}
	switch {
	case kind == bkNone:
		if len(body) != 0 {
			return Envelope{}, fmt.Errorf("wire decode: %d trailing bytes after empty body", len(body))
		}
	case kind == bkJSON:
		env.Body = json.RawMessage(body)
	case kind <= bkMax:
		env.Body = json.RawMessage(body)
		env.binKind = kind
	default:
		return Envelope{}, fmt.Errorf("wire decode: unknown body kind %d", kind)
	}
	stats.binaryFramesDecoded.Add(1)
	stats.binaryBytesDecoded.Add(uint64(len(frame)))
	return env, nil
}

// decodeBinaryBody decodes a typed binary body into out. The body-kind tag
// recorded at Decode time must match the Go type the caller asked for; a
// mismatch is a protocol violation, reported before any field is read.
func decodeBinaryBody(env Envelope, out any) error {
	want, ok := binKindFor(out)
	if !ok {
		return fmt.Errorf("wire %s: binary body cannot decode into %T", env.Type, out)
	}
	if want != env.binKind {
		return fmt.Errorf("wire %s: binary body kind %d does not match requested %T", env.Type, env.binKind, out)
	}
	r := breader{buf: []byte(env.Body)}
	switch out := out.(type) {
	case *QueryReq:
		out.Subject = r.subject()
		out.Object = r.role()
		if n := r.count(); n > 0 {
			out.Constraints = make([]core.Constraint, n)
			for i := range out.Constraints {
				out.Constraints[i] = r.constraint()
			}
		}
		out.Direction = graph.Direction(r.svarint())
		out.TraceID = r.str()
		out.SpanID = r.str()
	case *ProofResp:
		out.Proof = r.proof(0)
	case *ProofsResp:
		out.Proofs = r.proofsAt(0)
	case *PublishReq:
		out.Delegation = r.delegation()
		out.Support = r.proofsAt(0)
		out.TTLSeconds = int(r.svarint())
		out.ShardEpoch = r.uvarint()
	case *RevokeReq:
		out.Delegation = core.DelegationID(r.str())
		out.ShardEpoch = r.uvarint()
	case *NotifyPush:
		out.Delegation = core.DelegationID(r.str())
		out.Kind = r.internedStr()
		out.At = r.time()
		out.Seq = r.uvarint()
		if r.bool() {
			out.Bundle = &SyncBundle{Delegation: r.delegation(), Support: r.proofsAt(0)}
		}
	case *SubscribeReq:
		out.Delegation = core.DelegationID(r.str())
	case *HasReq:
		out.Delegation = core.DelegationID(r.str())
	case *HasResp:
		out.Present = r.bool()
	case *SyncResp:
		out.Seq = r.uvarint()
		if n := r.count(); n > 0 {
			out.Bundles = make([]SyncBundle, n)
			for i := range out.Bundles {
				out.Bundles[i] = SyncBundle{Delegation: r.delegation(), Support: r.proofsAt(0)}
			}
		}
		if n := r.count(); n > 0 {
			out.Revoked = make([]core.DelegationID, n)
			for i := range out.Revoked {
				out.Revoked[i] = core.DelegationID(r.str())
			}
		}
	case *SubscribeAllResp:
		out.Seq = r.uvarint()
	case *SyncSegmentsReq:
		out.AfterSeq = r.uvarint()
	case *SyncSegmentsResp:
		out.Seq = r.uvarint()
		if n := r.count(); n > 0 {
			out.Segments = make([]Segment, n)
			for i := range out.Segments {
				out.Segments[i] = Segment{Name: r.str(), Sealed: r.bool(), Records: r.bytes()}
			}
		}
	case *ProveRoleReq:
		out.Role = r.role()
	}
	if err := r.done(); err != nil {
		return fmt.Errorf("wire %s: bad body: %w", env.Type, err)
	}
	return nil
}

// binKindFor maps a decode target type to its body-kind tag.
func binKindFor(out any) (byte, bool) {
	switch out.(type) {
	case *QueryReq:
		return bkQueryReq, true
	case *ProofResp:
		return bkProofResp, true
	case *ProofsResp:
		return bkProofsResp, true
	case *PublishReq:
		return bkPublishReq, true
	case *RevokeReq:
		return bkRevokeReq, true
	case *NotifyPush:
		return bkNotifyPush, true
	case *SubscribeReq:
		return bkSubscribeReq, true
	case *HasReq:
		return bkHasReq, true
	case *HasResp:
		return bkHasResp, true
	case *SyncResp:
		return bkSyncResp, true
	case *SubscribeAllResp:
		return bkSubscribeAllResp, true
	case *SyncSegmentsReq:
		return bkSyncSegmentsReq, true
	case *SyncSegmentsResp:
		return bkSyncSegmentsResp, true
	case *ProveRoleReq:
		return bkProveRoleReq, true
	default:
		return 0, false
	}
}
