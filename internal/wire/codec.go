package wire

import (
	"sync/atomic"

	"drbac/internal/bufpool"
)

// Codec names, mirroring the transport-level negotiation constants (the two
// packages deliberately share no imports in that direction; the names are
// part of the protocol, not of either package).
const (
	// CodecJSON is the original JSON envelope encoding.
	CodecJSON = "json"
	// CodecBinary is the length-prefixed binary envelope encoding.
	CodecBinary = "binary"
)

// Codec encodes and decodes wire envelopes. Implementations must be safe
// for concurrent use; one codec instance serves a whole process.
type Codec interface {
	// Name returns the codec's negotiation name.
	Name() string
	// Encode marshals an envelope with a typed body into a frame. The
	// returned buffer may come from the process buffer pool: the caller
	// owns it and should bufpool.Put it once the frame is sent.
	Encode(t MsgType, id uint64, body any) ([]byte, error)
	// Decode unmarshals a frame. The returned envelope's body may alias
	// the frame; the frame must stay untouched until the body has been
	// decoded (DecodeBody) or abandoned.
	Decode(frame []byte) (Envelope, error)
}

var (
	jsonCodecInst   = jsonCodec{}
	binaryCodecInst = binaryCodec{}
)

// CodecFor resolves a negotiated codec name to its implementation. Unknown
// names fall back to JSON, the protocol baseline — negotiation never lands
// on a name this build does not speak, so the fallback is purely defensive.
func CodecFor(name string) Codec {
	if name == CodecBinary {
		return binaryCodecInst
	}
	return jsonCodecInst
}

// jsonCodec is the original encoding: every frame a JSON Envelope.
type jsonCodec struct{}

func (jsonCodec) Name() string { return CodecJSON }

func (jsonCodec) Encode(t MsgType, id uint64, body any) ([]byte, error) {
	frame, err := Encode(t, id, body)
	if err == nil {
		stats.jsonFramesEncoded.Add(1)
		stats.jsonBytesEncoded.Add(uint64(len(frame)))
	}
	return frame, err
}

func (jsonCodec) Decode(frame []byte) (Envelope, error) {
	env, err := Decode(frame)
	if err == nil {
		stats.jsonFramesDecoded.Add(1)
		stats.jsonBytesDecoded.Add(uint64(len(frame)))
	}
	return env, err
}

// codecStats holds the process-wide codec traffic counters surfaced by
// `drbac stats` (WireStats).
type codecStats struct {
	jsonFramesEncoded   atomic.Uint64
	jsonFramesDecoded   atomic.Uint64
	jsonBytesEncoded    atomic.Uint64
	jsonBytesDecoded    atomic.Uint64
	binaryFramesEncoded atomic.Uint64
	binaryFramesDecoded atomic.Uint64
	binaryBytesEncoded  atomic.Uint64
	binaryBytesDecoded  atomic.Uint64
}

var stats codecStats

// WireStats is the codec section of a StatsResp: process-wide codec frame
// and byte counters, entity-interning effectiveness, and frame buffer pool
// traffic. Like the shared signature cache counters, these cover the whole
// process, not one wallet.
type WireStats struct {
	// ConnCodec is the codec negotiated for the connection that carried the
	// stats request — the one counter here that is per-connection, not
	// process-wide. Filled by the server, empty in a bare StatsSnapshot.
	ConnCodec           string `json:"connCodec,omitempty"`
	JSONFramesEncoded   uint64 `json:"jsonFramesEncoded"`
	JSONFramesDecoded   uint64 `json:"jsonFramesDecoded"`
	JSONBytesEncoded    uint64 `json:"jsonBytesEncoded"`
	JSONBytesDecoded    uint64 `json:"jsonBytesDecoded"`
	BinaryFramesEncoded uint64 `json:"binaryFramesEncoded"`
	BinaryFramesDecoded uint64 `json:"binaryFramesDecoded"`
	BinaryBytesEncoded  uint64 `json:"binaryBytesEncoded"`
	BinaryBytesDecoded  uint64 `json:"binaryBytesDecoded"`
	// InternHits/InternMisses count entity key and fingerprint interning
	// lookups on the binary decode path.
	InternHits   uint64 `json:"internHits"`
	InternMisses uint64 `json:"internMisses"`
	// Pool reports the frame buffer pool's traffic.
	Pool bufpool.Stats `json:"pool"`
}

// StatsSnapshot reads the process-wide codec counters.
func StatsSnapshot() WireStats {
	return WireStats{
		JSONFramesEncoded:   stats.jsonFramesEncoded.Load(),
		JSONFramesDecoded:   stats.jsonFramesDecoded.Load(),
		JSONBytesEncoded:    stats.jsonBytesEncoded.Load(),
		JSONBytesDecoded:    stats.jsonBytesDecoded.Load(),
		BinaryFramesEncoded: stats.binaryFramesEncoded.Load(),
		BinaryFramesDecoded: stats.binaryFramesDecoded.Load(),
		BinaryBytesEncoded:  stats.binaryBytesEncoded.Load(),
		BinaryBytesDecoded:  stats.binaryBytesDecoded.Load(),
		InternHits:          interns.hits.Load(),
		InternMisses:        interns.misses.Load(),
		Pool:                bufpool.Snapshot(),
	}
}
