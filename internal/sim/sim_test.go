package sim

import (
	"testing"

	"drbac/internal/baseline"
	"drbac/internal/revocation"
)

func TestWorldIdentityDeterministic(t *testing.T) {
	w1, w2 := NewWorld(), NewWorld()
	defer w1.Close()
	defer w2.Close()
	if w1.Identity("Alice").ID() != w2.Identity("Alice").ID() {
		t.Fatal("same name should yield the same identity across worlds")
	}
	if w1.Identity("Alice").ID() == w1.Identity("Bob").ID() {
		t.Fatal("different names should yield different identities")
	}
	if w1.Identity("Alice") != w1.Identity("Alice") {
		t.Fatal("Identity should be memoized")
	}
}

func TestWorldIssueAndServe(t *testing.T) {
	w := NewWorld()
	defer w.Close()
	w.Ensure("Org", "User")
	wal, err := w.Serve("wallet.org", "Org")
	if err != nil {
		t.Fatal(err)
	}
	d, err := w.Issue("[User -> Org.member] Org")
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.Publish(d); err != nil {
		t.Fatal(err)
	}
	subj, err := w.Subject("User")
	if err != nil {
		t.Fatal(err)
	}
	role, err := w.Role("Org.member")
	if err != nil {
		t.Fatal(err)
	}
	_ = subj
	_ = role
	if wal.Len() != 1 {
		t.Fatalf("Len = %d", wal.Len())
	}
}

func TestBuildTopologiesEdgeCounts(t *testing.T) {
	tests := []struct {
		name      string
		branching int
		depth     int
		// complete b-ary tree edges: b + b^2 + ... + b^d, plus the goal
		// (out-tree) or subject (in-tree) attachment.
		want int
	}{
		{"b2d2", 2, 2, 2 + 4 + 1},
		{"b3d3", 3, 3, 3 + 9 + 27 + 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := NewWorld()
			defer w.Close()
			out, err := BuildOutTree(w, tt.branching, tt.depth)
			if err != nil {
				t.Fatal(err)
			}
			if out.Edges != tt.want {
				t.Errorf("out-tree edges = %d, want %d", out.Edges, tt.want)
			}
			w2 := NewWorld()
			defer w2.Close()
			in, err := BuildInTree(w2, tt.branching, tt.depth)
			if err != nil {
				t.Fatal(err)
			}
			if in.Edges != tt.want {
				t.Errorf("in-tree edges = %d, want %d", in.Edges, tt.want)
			}
		})
	}
}

func TestBuildTopologyValidation(t *testing.T) {
	w := NewWorld()
	defer w.Close()
	if _, err := BuildOutTree(w, 0, 3); err == nil {
		t.Error("zero branching accepted")
	}
	if _, err := BuildInTree(w, 3, 0); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := BuildConstraintForest(w, 0, 1); err == nil {
		t.Error("zero width accepted")
	}
}

// EXP-S1: adversarial unidirectional search sweeps ~the whole tree;
// the opposite direction walks one chain; bidirectional stays near the
// cheap direction on both topologies.
func TestDirectionalityShape(t *testing.T) {
	points, err := RunDirectionality(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, pt := range points {
		var bad, good int
		switch pt.Topology {
		case "out-tree":
			bad, good = pt.Forward.EdgesExplored, pt.Reverse.EdgesExplored
		case "in-tree":
			bad, good = pt.Reverse.EdgesExplored, pt.Forward.EdgesExplored
		default:
			t.Fatalf("unknown topology %q", pt.Topology)
		}
		if bad < pt.Edges/2 {
			t.Errorf("%s: adversarial direction explored %d of %d edges; expected a near-full sweep",
				pt.Topology, bad, pt.Edges)
		}
		if good >= bad/4 {
			t.Errorf("%s: cheap direction explored %d, adversarial %d; expected >4x gap",
				pt.Topology, good, bad)
		}
		if pt.Bidi.EdgesExplored >= bad/2 {
			t.Errorf("%s: bidirectional explored %d vs adversarial %d; expected big reduction",
				pt.Topology, pt.Bidi.EdgesExplored, bad)
		}
		t.Logf("%s b=%d d=%d edges=%d: fwd=%d rev=%d bidi=%d",
			pt.Topology, pt.Branching, pt.Depth, pt.Edges,
			pt.Forward.EdgesExplored, pt.Reverse.EdgesExplored, pt.Bidi.EdgesExplored)
	}
}

// EXP-S1 growth: the adversarial direction grows exponentially with depth;
// bidirectional grows far slower.
func TestDirectionalityGrowthWithDepth(t *testing.T) {
	prevBad := 0
	for _, depth := range []int{2, 3, 4, 5} {
		points, err := RunDirectionality(3, depth)
		if err != nil {
			t.Fatal(err)
		}
		out := points[0]
		bad := out.Forward.EdgesExplored
		if prevBad > 0 && bad < prevBad*2 {
			t.Errorf("depth %d: forward effort %d did not grow ~exponentially from %d", depth, bad, prevBad)
		}
		prevBad = bad
	}
}

// EXP-S2: monotonicity pruning turns the exponential sweep of failing
// chains into first-edge rejections.
func TestPruningShape(t *testing.T) {
	pt, err := RunPruning(20, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.ProofSatisfies {
		t.Fatal("found proof violates constraints")
	}
	if pt.BranchesPruned != pt.Width-1 {
		t.Errorf("branches pruned = %d, want %d (every bad chain at its first edge)",
			pt.BranchesPruned, pt.Width-1)
	}
	// With pruning: width first-edges + the good chain. Without: every bad
	// chain fully walked.
	if pt.PrunedEdges >= pt.UnprunedEdges/2 {
		t.Errorf("pruned=%d unpruned=%d: expected >2x reduction", pt.PrunedEdges, pt.UnprunedEdges)
	}
	t.Logf("width=%d depth=%d edges=%d pruned=%d unpruned=%d",
		pt.Width, pt.Depth, pt.Edges, pt.PrunedEdges, pt.UnprunedEdges)
}

func TestPruningGrowthWithDepth(t *testing.T) {
	shallow, err := RunPruning(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := RunPruning(10, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Unpruned effort grows with chain depth; pruned effort stays within a
	// small additive factor (only the good chain lengthens).
	if deep.UnprunedEdges-shallow.UnprunedEdges < 9*(12-2) {
		t.Errorf("unpruned growth too small: %d -> %d", shallow.UnprunedEdges, deep.UnprunedEdges)
	}
	if deep.PrunedEdges-shallow.PrunedEdges > 2*(12-2)+2 {
		t.Errorf("pruned growth too large: %d -> %d", shallow.PrunedEdges, deep.PrunedEdges)
	}
}

// EXP-T3/F2: the case study ends with the paper's §5 numbers.
func TestRunCaseStudyOutcomes(t *testing.T) {
	res, err := RunCaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if res.BW != 100 || res.Storage != 30 || res.Hours != 18 {
		t.Fatalf("attributes = BW %v, storage %v, hours %v; want 100, 30, 18",
			res.BW, res.Storage, res.Hours)
	}
	if res.Proof.Len() != 3 {
		t.Fatalf("proof length = %d", res.Proof.Len())
	}
	if res.Stats.WalletsContacted != 2 {
		t.Fatalf("wallets contacted = %d", res.Stats.WalletsContacted)
	}
	if res.Messages == 0 || res.Bytes == 0 {
		t.Fatal("no network cost measured")
	}
}

func TestRunChainDiscoveryScaling(t *testing.T) {
	prevQueries := 0
	for _, hops := range []int{1, 2, 4} {
		pt, err := RunChainDiscovery(hops)
		if err != nil {
			t.Fatalf("hops=%d: %v", hops, err)
		}
		if pt.WalletsContacted != hops {
			t.Errorf("hops=%d: wallets contacted = %d", hops, pt.WalletsContacted)
		}
		if pt.RemoteQueries <= prevQueries {
			t.Errorf("hops=%d: queries (%d) should grow with chain length (prev %d)",
				hops, pt.RemoteQueries, prevQueries)
		}
		prevQueries = pt.RemoteQueries
	}
	if _, err := RunChainDiscovery(0); err == nil {
		t.Error("zero hops accepted")
	}
}

func TestRunWrappers(t *testing.T) {
	results, err := RunRevocation(revocation.Params{
		Clients: 2, Credentials: 2, Steps: 20, PollEvery: 5, CRLEvery: 10, RevokeAt: []int{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("revocation results = %d", len(results))
	}
	d, ph, err := RunSeparability(baseline.Scenario{Partners: 2, Privileges: 2, MembersPerPartner: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.PhantomRoles != 0 || ph.PhantomRoles == 0 {
		t.Fatalf("separability outcomes wrong: %+v %+v", d, ph)
	}
}

// EXP-S5: hierarchical caching keeps home-wallet load flat in the client
// population.
func TestRunProxyExperimentShape(t *testing.T) {
	small, err := RunProxyExperiment(2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunProxyExperiment(8)
	if err != nil {
		t.Fatal(err)
	}
	// Hierarchical home traffic is identical regardless of client count.
	if small.HierHomeMessages != big.HierHomeMessages {
		t.Errorf("hierarchical home load grew with clients: %d -> %d",
			small.HierHomeMessages, big.HierHomeMessages)
	}
	// Flat home traffic grows with clients and exceeds hierarchical.
	if big.FlatHomeMessages <= small.FlatHomeMessages {
		t.Errorf("flat home load did not grow: %d -> %d",
			small.FlatHomeMessages, big.FlatHomeMessages)
	}
	if big.FlatHomeMessages <= big.HierHomeMessages {
		t.Errorf("flat (%d) should exceed hierarchical (%d) at 8 clients",
			big.FlatHomeMessages, big.HierHomeMessages)
	}
	if _, err := RunProxyExperiment(0); err == nil {
		t.Error("zero clients accepted")
	}
}

// EXP-S2b: the modulated-range adjustment saves every wasted fetch on a
// doomed search, at any fanout.
func TestRunRangeAdjustmentShape(t *testing.T) {
	for _, fanout := range []int{2, 8} {
		pt, err := RunRangeAdjustment(fanout)
		if err != nil {
			t.Fatalf("fanout=%d: %v", fanout, err)
		}
		if pt.AdjustedFetched != 0 {
			t.Errorf("fanout=%d: adjusted search fetched %d delegations, want 0",
				fanout, pt.AdjustedFetched)
		}
		if pt.UnadjustedFetched == 0 {
			t.Errorf("fanout=%d: unadjusted search fetched nothing — ablation broken", fanout)
		}
		if pt.AdjustedBytes >= pt.UnadjustedBytes {
			t.Errorf("fanout=%d: adjusted bytes %d not below unadjusted %d",
				fanout, pt.AdjustedBytes, pt.UnadjustedBytes)
		}
	}
	if _, err := RunRangeAdjustment(0); err == nil {
		t.Error("zero fanout accepted")
	}
}

func TestRunCacheCoherenceShape(t *testing.T) {
	pt, err := RunCacheCoherence(4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.CoherentAfterRevoke {
		t.Fatal("revocation did not invalidate the cached proof before the next query")
	}
	if pt.Hits < int64(pt.Queries) {
		t.Fatalf("hits = %d, want >= %d (every measured hot query memoized)", pt.Hits, pt.Queries)
	}
	if pt.Invalidations == 0 {
		t.Fatal("no invalidation counted for the revocation push")
	}
	if pt.HotNanos <= 0 || pt.ColdNanos <= 0 {
		t.Fatalf("latencies not measured: cold=%d hot=%d", pt.ColdNanos, pt.HotNanos)
	}
	if _, err := RunCacheCoherence(0, 10); err == nil {
		t.Fatal("invalid chain accepted")
	}
}
