// EXP-C1 (§12): sharded wallet cluster experiments. RunShardScaling
// measures aggregate publish throughput as the cluster grows from one
// shard to many, RunCrossShardProof checks that a proof assembled across
// shard boundaries is identical in validity to one computed by a single
// wallet holding the whole chain, and RunSplitConvergence splits a shard
// mid-traffic and counts lost mutations (the answer must be zero).
// RunClusterSmoke bundles bounded-size versions of all three for CI.
package sim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"drbac/internal/cluster"
	"drbac/internal/core"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/sigcache"
	"drbac/internal/wallet"
)

// DefaultCommitDelay models the durable-commit latency of a production
// store (WAL append + fsync on commodity disks). MemStore commits in
// nanoseconds, which would make a publish benchmark CPU-bound — on a
// single-core runner, N shards then share one core and nothing scales.
// Real wallet clusters shard precisely to parallelize the commit path,
// so the experiment restores that bottleneck explicitly.
const DefaultCommitDelay = 500 * time.Microsecond

// delayStore wraps a wallet store with a serialized commit delay: the
// lock is held across the sleep, reproducing a single fsync pipeline per
// shard. Sharding parallelizes across stores, never within one.
type delayStore struct {
	wallet.Store
	delay time.Duration
	mu    sync.Mutex
}

func (s *delayStore) PutDelegation(seq uint64, d *core.Delegation, support []*core.Proof) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return s.Store.PutDelegation(seq, d, support)
}

// clusterSim is an N-shard wallet cluster on a World: one served wallet
// per shard (all sharing a signature cache, each behind a delayStore)
// and a gateway routing over the in-memory network.
type clusterSim struct {
	m       *cluster.Map
	gw      *cluster.Wallet
	wallets map[int]*wallet.Wallet
	nodes   map[int]*cluster.Node
}

// startCluster serves `shards` shard wallets on w and a gateway over
// them. The world's Close shuts the servers down; the caller closes gw.
func startCluster(w *World, shards int, commitDelay time.Duration, sc *sigcache.Cache) (*clusterSim, error) {
	groups := make([][]string, shards)
	for i := range groups {
		groups[i] = []string{fmt.Sprintf("shard%d", i)}
	}
	m, err := cluster.Uniform(groups)
	if err != nil {
		return nil, err
	}
	cs := &clusterSim{
		m:       m,
		wallets: make(map[int]*wallet.Wallet),
		nodes:   make(map[int]*cluster.Node),
	}
	for _, s := range m.Shards {
		owner := fmt.Sprintf("shard%d-owner", s.ID)
		wal := wallet.New(wallet.Config{
			Owner:     w.Identity(owner),
			Clock:     w.Clock,
			Directory: w.Dir,
			Store:     &delayStore{Store: wallet.NewMemStore(), delay: commitDelay},
			SigCache:  sc,
		})
		node, err := cluster.NewNode(s.ID, m, nil)
		if err != nil {
			return nil, err
		}
		ln, err := w.Net.Listen(s.Addrs[0], w.Identity(owner))
		if err != nil {
			return nil, err
		}
		srv := remote.ServeOptions(wal, ln, remote.Options{Cluster: node})
		w.mu.Lock()
		w.servers = append(w.servers, srv)
		w.mu.Unlock()
		cs.wallets[s.ID] = wal
		cs.nodes[s.ID] = node
	}
	gw, err := cluster.NewWallet(cluster.WalletConfig{
		Map:      m,
		Dialer:   w.Net.Dialer(w.Identity("gateway")),
		Identity: w.Identity("gateway"),
		Clock:    w.Clock,
	})
	if err != nil {
		return nil, err
	}
	cs.gw = gw
	return cs, nil
}

// ClusterPoint is one shard-count sample of the publish-throughput sweep.
type ClusterPoint struct {
	Shards     int
	Publishes  int
	Workers    int
	Elapsed    time.Duration
	Throughput float64 // aggregate publishes per second
}

// RunShardScaling publishes `publishes` delegations with distinct subject
// entities through a gateway over a `shards`-shard cluster, using a pool
// of concurrent publishers. Delegations are pre-issued and the shared
// signature cache pre-primed, so the timed section measures the routed
// publish path: wire round trip plus the serialized per-shard commit.
func RunShardScaling(shards, publishes, workers int, commitDelay time.Duration) (ClusterPoint, error) {
	pt := ClusterPoint{Shards: shards, Publishes: publishes, Workers: workers}
	w := NewWorld()
	defer w.Close()

	w.Ensure("Org")
	delegs := make([]*core.Delegation, 0, publishes)
	for i := 0; i < publishes; i++ {
		user := fmt.Sprintf("user%04d", i)
		w.Ensure(user)
		d, err := w.Issue(fmt.Sprintf("[%s -> Org.member] Org", user))
		if err != nil {
			return pt, err
		}
		delegs = append(delegs, d)
	}

	sc := sigcache.New(4 * publishes)
	cs, err := startCluster(w, shards, commitDelay, sc)
	if err != nil {
		return pt, err
	}
	defer cs.gw.Close()
	// Warm the shared signature memo so admission checks hit it and the
	// sweep compares commit pipelines, not signature verification.
	core.PrimeDelegations(cs.wallets[0].SigVerifier(), delegs)

	work := make(chan *core.Delegation)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range work {
				if err := cs.gw.Publish(d); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}

	startAt := time.Now()
	for _, d := range delegs {
		work <- d
	}
	close(work)
	wg.Wait()
	pt.Elapsed = time.Since(startAt)
	select {
	case err := <-errs:
		return pt, err
	default:
	}

	stored := 0
	for _, wal := range cs.wallets {
		stored += wal.Stats().Delegations
	}
	if stored != publishes {
		return pt, fmt.Errorf("cluster stored %d delegations, published %d", stored, publishes)
	}
	pt.Throughput = float64(publishes) / pt.Elapsed.Seconds()
	return pt, nil
}

// ClusterProofPoint reports a cross-shard proof-assembly check.
type ClusterProofPoint struct {
	Shards     int
	HomeShards int // distinct shards the chain's links live on
	Identical  bool
	Valid      bool
	Assembly   time.Duration
}

// chainKey identifies a proof by its delegation chain, mirroring the
// gateway's internal dedup key: two proofs with equal keys authorize via
// the same credentials.
func chainKey(p *core.Proof) string {
	key := ""
	for _, st := range p.Steps {
		if st.Delegation != nil {
			key += string(st.Delegation.ID()) + "|"
		}
	}
	return key
}

// RunCrossShardProof publishes a three-link delegation chain whose links
// land on different shards, queries the gateway for the end-to-end proof,
// and compares it against the proof a single wallet holding the whole
// chain computes: same chain, same validity.
func RunCrossShardProof(shards int) (ClusterProofPoint, error) {
	pt := ClusterProofPoint{Shards: shards}
	w := NewWorld()
	defer w.Close()
	w.Ensure("A", "B", "C", "Maria")

	cs, err := startCluster(w, shards, 0, sigcache.New(64))
	if err != nil {
		return pt, err
	}
	defer cs.gw.Close()

	chain := []*core.Delegation{
		w.MustIssue("[Maria -> A.member] A"),
		w.MustIssue("[A.member -> B.guest] B"),
		w.MustIssue("[B.guest -> C.vip] C"),
	}
	homes := make(map[int]bool)
	for _, d := range chain {
		homes[cs.m.OwnerOf(d).ID] = true
		if err := cs.gw.Publish(d); err != nil {
			return pt, err
		}
	}
	pt.HomeShards = len(homes)

	subject, err := w.Subject("Maria")
	if err != nil {
		return pt, err
	}
	object, err := w.Role("C.vip")
	if err != nil {
		return pt, err
	}
	startAt := time.Now()
	got, err := cs.gw.QueryDirect(wallet.Query{Subject: subject, Object: object})
	pt.Assembly = time.Since(startAt)
	if err != nil {
		return pt, fmt.Errorf("cross-shard query: %w", err)
	}

	ref := wallet.New(wallet.Config{Clock: w.Clock, Directory: w.Dir})
	for _, d := range chain {
		if err := ref.Publish(d); err != nil {
			return pt, err
		}
	}
	want, err := ref.QueryDirect(wallet.Query{Subject: subject, Object: object})
	if err != nil {
		return pt, fmt.Errorf("single-wallet query: %w", err)
	}

	pt.Identical = chainKey(got) == chainKey(want)
	opts := core.ValidateOptions{At: w.Clock.Now()}
	pt.Valid = got.Validate(opts) == nil && want.Validate(opts) == nil
	return pt, nil
}

// SplitPoint reports a mid-traffic shard split.
type SplitPoint struct {
	Shards    int // shard count before the split
	Publishes int // total mutations across the three phases
	Moved     int // delegations the split re-homed
	Lost      int // mutations missing from their post-split owner (must be 0)
	Epoch     uint64
}

// RunSplitConvergence splits shard 0 of a `shards`-shard cluster while
// publishes keep flowing — a third before the split starts, a third
// during the filtered changelog replay, a third after cutover — then
// audits every mutation against its post-split owner.
func RunSplitConvergence(ctx context.Context, shards, publishes int) (SplitPoint, error) {
	pt := SplitPoint{Shards: shards, Publishes: publishes}
	w := NewWorld()
	defer w.Close()
	w.Ensure("Org")

	cs, err := startCluster(w, shards, 0, sigcache.New(4*publishes))
	if err != nil {
		return pt, err
	}
	defer cs.gw.Close()

	next := 0
	publish := func(n int) ([]*core.Delegation, error) {
		out := make([]*core.Delegation, 0, n)
		for i := 0; i < n; i++ {
			user := fmt.Sprintf("splituser%03d", next)
			next++
			w.Ensure(user)
			d, err := w.Issue(fmt.Sprintf("[%s -> Org.member] Org", user))
			if err != nil {
				return nil, err
			}
			if err := cs.gw.Publish(d); err != nil {
				return nil, err
			}
			out = append(out, d)
		}
		return out, nil
	}

	batch := publishes / 3
	var all []*core.Delegation
	pre, err := publish(batch)
	if err != nil {
		return pt, err
	}
	all = append(all, pre...)

	// Carve a new shard out of shard 0 by filtered changelog replay.
	newID := shards
	target := wallet.New(wallet.Config{Clock: w.Clock, Directory: w.Dir})
	peers := peer.NewManager(peer.Config{Dialer: w.Net.Dialer(w.Identity("gateway"))})
	defer peers.Close()
	split, err := cluster.StartSplit(cluster.SplitConfig{
		Current:  cs.m,
		SourceID: 0,
		NewID:    newID,
		NewAddrs: []string{fmt.Sprintf("shard%d", newID)},
		Target:   target,
		Dialer:   w.Net.Dialer(w.Identity("gateway")),
		Peers:    peers,
	})
	if err != nil {
		return pt, err
	}

	mid, err := publish(batch)
	if err != nil {
		return pt, err
	}
	all = append(all, mid...)

	if err := split.WaitCaughtUp(ctx, 5*time.Millisecond); err != nil {
		return pt, fmt.Errorf("split never converged: %w", err)
	}

	// Cutover: serve the new shard, adopt the map everywhere, finish.
	node, err := cluster.NewNode(newID, split.NewMap, nil)
	if err != nil {
		return pt, err
	}
	ln, err := w.Net.Listen(fmt.Sprintf("shard%d", newID), w.Identity("gateway"))
	if err != nil {
		return pt, err
	}
	srv := remote.ServeOptions(target, ln, remote.Options{Cluster: node})
	w.mu.Lock()
	w.servers = append(w.servers, srv)
	w.mu.Unlock()
	cs.wallets[newID] = target
	for _, n := range cs.nodes {
		n.Adopt(split.NewMap)
	}
	cs.gw.Router().Adopt(split.NewMap)
	split.Finish()
	pt.Epoch = split.NewMap.Epoch

	post, err := publish(publishes - 2*batch)
	if err != nil {
		return pt, err
	}
	all = append(all, post...)

	pt.Moved = cluster.PruneMoved(cs.wallets[0], split.NewMap, 0)
	for _, d := range all {
		owner := split.NewMap.OwnerOf(d)
		if !cs.wallets[owner.ID].Contains(d.ID()) {
			pt.Lost++
		}
	}
	return pt, nil
}

// ClusterSmokeResult summarizes the bounded CI smoke over a 4-shard
// cluster: routed publishes, an object-query scatter-gather, a
// cross-shard direct proof, and a mid-traffic split.
type ClusterSmokeResult struct {
	Shards       int
	Published    int
	ObjectProofs int
	Proof        ClusterProofPoint
	Split        SplitPoint
}

// RunClusterSmoke is the `make check` / CI smoke: small sizes, no
// injected commit latency, every phase bounded by ctx.
func RunClusterSmoke(ctx context.Context) (ClusterSmokeResult, error) {
	res := ClusterSmokeResult{Shards: 4}
	w := NewWorld()
	defer w.Close()
	w.Ensure("Org")

	cs, err := startCluster(w, res.Shards, 0, sigcache.New(256))
	if err != nil {
		return res, err
	}
	defer cs.gw.Close()

	const members = 12
	for i := 0; i < members; i++ {
		user := fmt.Sprintf("smoke%02d", i)
		w.Ensure(user)
		d, err := w.Issue(fmt.Sprintf("[%s -> Org.member] Org", user))
		if err != nil {
			return res, err
		}
		if err := cs.gw.Publish(d); err != nil {
			return res, err
		}
		res.Published++
	}
	role, err := w.Role("Org.member")
	if err != nil {
		return res, err
	}
	res.ObjectProofs = len(cs.gw.QueryObject(role, nil))
	if res.ObjectProofs != members {
		return res, fmt.Errorf("object scatter returned %d proofs, want %d", res.ObjectProofs, members)
	}
	if st := cs.gw.Router().Stats(); st.Scatters == 0 {
		return res, fmt.Errorf("object query did not scatter")
	}

	res.Proof, err = RunCrossShardProof(res.Shards)
	if err != nil {
		return res, err
	}
	if !res.Proof.Identical || !res.Proof.Valid {
		return res, fmt.Errorf("cross-shard proof check failed: %+v", res.Proof)
	}

	res.Split, err = RunSplitConvergence(ctx, res.Shards, 18)
	if err != nil {
		return res, err
	}
	if res.Split.Lost != 0 {
		return res, fmt.Errorf("split lost %d mutations", res.Split.Lost)
	}
	return res, nil
}
