package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"drbac/internal/core"
	"drbac/internal/discovery"
	"drbac/internal/wallet"
)

// RangePoint is one row of EXP-S2b: the network cost of a doomed
// distributed search with and without the §4.2.3 modulated-attribute-range
// adjustment. The topology puts `fanout` continuation edges (each
// individually generous, none reaching the goal) behind a local prefix
// that has already consumed the attribute budget: an adjusted search lets
// the remote wallet prune them all; an unadjusted one fetches every edge
// before giving up.
type RangePoint struct {
	Fanout int
	// AdjustedFetched / UnadjustedFetched: delegations pulled into the
	// local wallet before concluding no proof exists.
	AdjustedFetched   int
	UnadjustedFetched int
	AdjustedBytes     int64
	UnadjustedBytes   int64
}

// RunRangeAdjustment measures EXP-S2b for one fanout.
func RunRangeAdjustment(fanout int) (RangePoint, error) {
	if fanout < 1 {
		return RangePoint{}, fmt.Errorf("sim: fanout must be positive")
	}
	pt := RangePoint{Fanout: fanout}
	for _, disable := range []bool{false, true} {
		fetched, bytes, err := runRangeConfig(fanout, disable)
		if err != nil {
			return RangePoint{}, err
		}
		if disable {
			pt.UnadjustedFetched, pt.UnadjustedBytes = fetched, bytes
		} else {
			pt.AdjustedFetched, pt.AdjustedBytes = fetched, bytes
		}
	}
	return pt, nil
}

func runRangeConfig(fanout int, disable bool) (fetched int, bytes int64, err error) {
	w := NewWorld()
	defer w.Close()
	w.Ensure("A", "B", "M", "Server")

	home, err := w.Serve("wallet.b", "B")
	if err != nil {
		return 0, 0, err
	}
	// Continuations at B's wallet: every edge A.x -> B.mid_i is generous on
	// its own (BW <= 80 would clear the minimum of 50), but none of them
	// reaches the goal — fetching any of them is pure waste.
	for i := 0; i < fanout; i++ {
		d, err := w.Issue(fmt.Sprintf("[A.x -> B.mid%d with B.BW <= 80] B", i))
		if err != nil {
			return 0, 0, err
		}
		if err := home.Publish(d); err != nil {
			return 0, 0, err
		}
	}

	local := wallet.New(wallet.Config{Owner: w.Identity("Server"), Clock: w.Clock, Directory: w.Dir})
	// The local prefix already caps B.BW at 40 — below the minimum — so no
	// continuation can help.
	prefix, err := w.Issue("[M -> A.x with B.BW <= 40] A")
	if err != nil {
		return 0, 0, err
	}
	if err := local.Publish(prefix); err != nil {
		return 0, 0, err
	}
	agent := discovery.NewAgent(discovery.Config{
		Local:                  local,
		Dialer:                 w.Net.Dialer(w.Identity("Server")),
		DisableRangeAdjustment: disable,
	})
	defer agent.Close()
	subjectAx, err := w.Subject("A.x")
	if err != nil {
		return 0, 0, err
	}
	agent.RegisterTag(subjectAx, core.DiscoveryTag{
		Home: "wallet.b", TTL: 30 * time.Second, Subject: core.SubjectSearch,
	})

	bw := core.AttributeRef{Namespace: w.Identity("B").ID(), Name: "BW"}
	goal, err := w.Role("B.goal")
	if err != nil {
		return 0, 0, err
	}
	subjectM, err := w.Subject("M")
	if err != nil {
		return 0, 0, err
	}
	w.Net.ResetStats()
	var stats discovery.Stats
	_, derr := agent.Discover(context.Background(), wallet.Query{
		Subject:     subjectM,
		Object:      goal,
		Constraints: []core.Constraint{{Attr: bw, Base: math.Inf(1), Minimum: 50}},
	}, discovery.Auto, &stats)
	if derr == nil || !errors.Is(derr, core.ErrNoProof) {
		return 0, 0, fmt.Errorf("doomed search should find no proof, got %v", derr)
	}
	return stats.DelegationsFetched, w.Net.Stats().Bytes, nil
}
