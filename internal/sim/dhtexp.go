// EXP-D1 (§13): decentralized-discovery smoke. RunDHTSmoke boots a
// six-member coalition where nobody holds a static address book: every
// wallet joins the DHT through one bootstrap seed and announces a signed
// provider record for its owner entity. A client then resolves a
// three-wallet delegation chain purely through DHT lookups, after which
// the seed dies and one home wallet moves to a new address — and a
// late-joining client (bootstrapped off a surviving member) must still
// resolve the same chain at the home's new address. `make check` and CI
// run this bounded; it finishes in well under a second on a healthy
// build.
package sim

import (
	"context"
	"fmt"
	"time"

	"drbac/internal/core"
	"drbac/internal/dht"
	"drbac/internal/discovery"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/wallet"
)

// dhtMember is one served coalition member: a wallet whose server also
// answers dht-* requests, plus the node that announces its owner.
type dhtMember struct {
	w     *wallet.Wallet
	node  *dht.Node
	peers *peer.Manager
	srv   *remote.Server
	addr  string
	owner *core.Identity
}

// startDHTMember serves a wallet with a DHT participant at addr. The
// world's Close tears the server down; peers are closed by closeAll.
func startDHTMember(w *World, addr, owner string) (*dhtMember, error) {
	id := w.Identity(owner)
	peers := peer.NewManager(peer.Config{
		Dialer:      w.Net.Dialer(id),
		Clock:       w.Clock,
		CallTimeout: 5 * time.Second,
	})
	node, err := dht.NewNode(dht.Config{
		Identity: id,
		Addr:     addr,
		Peers:    peers,
		Clock:    w.Clock,
		K:        8,
	})
	if err != nil {
		peers.Close()
		return nil, err
	}
	m := &dhtMember{
		w:     wallet.New(wallet.Config{Owner: id, Clock: w.Clock, Directory: w.Dir}),
		node:  node,
		peers: peers,
		addr:  addr,
		owner: id,
	}
	if err := m.serveAt(w, addr); err != nil {
		peers.Close()
		return nil, err
	}
	return m, nil
}

// serveAt (re)starts the member's server, possibly at a new address —
// the leave/rejoin path.
func (m *dhtMember) serveAt(w *World, addr string) error {
	ln, err := w.Net.Listen(addr, m.owner)
	if err != nil {
		return err
	}
	m.addr = addr
	m.srv = remote.ServeOptions(m.w, ln, remote.Options{DHT: m.node, DHTStats: m.node.Stats})
	w.mu.Lock()
	w.servers = append(w.servers, m.srv)
	w.mu.Unlock()
	return nil
}

// dhtClient builds an unserved client-side DHT node (resolution is
// pull-based; the querying side needs no listener).
func dhtClient(w *World, owner string) (*dht.Node, *peer.Manager, error) {
	id := w.Identity(owner)
	peers := peer.NewManager(peer.Config{
		Dialer:      w.Net.Dialer(id),
		Clock:       w.Clock,
		CallTimeout: 5 * time.Second,
	})
	node, err := dht.NewNode(dht.Config{
		Identity: id,
		Addr:     "sim.client.unreachable",
		Peers:    peers,
		Clock:    w.Clock,
		K:        8,
	})
	if err != nil {
		peers.Close()
		return nil, nil, err
	}
	return node, peers, nil
}

// DHTSmokeResult summarizes the bounded CI smoke over a six-member DHT
// coalition with no static address book (§13).
type DHTSmokeResult struct {
	Members          int    // served coalition members, including the seed
	Announced        int    // provider records published at startup
	ChainLen         int    // delegations in the first resolved proof
	WalletsContacted int    // distinct homes reached via DHT-resolved tags
	RejoinAddr       string // the moved home's post-rejoin address
	RejoinChainLen   int    // chain length resolved after seed death + move
}

// RunDHTSmoke is the `make check` / CI smoke behind sim-dht-smoke:
// bootstrap a coalition off one seed, resolve a three-wallet chain with
// zero static tag-home addresses, then keep resolving after the seed
// dies and a home wallet rejoins elsewhere.
func RunDHTSmoke(ctx context.Context) (DHTSmokeResult, error) {
	var res DHTSmokeResult
	w := NewWorld()
	defer w.Close()

	// Six served members: the bootstrap seed, the chain's two homes, and
	// three bystanders that thicken the routing tables.
	layout := []struct{ addr, owner string }{
		{"wallet.seed", "Seed"},
		{"wallet.bigisp", "BigISP"},
		{"wallet.airnet", "AirNet"},
		{"wallet.m3", "Member3"},
		{"wallet.m4", "Member4"},
		{"wallet.m5", "Member5"},
	}
	members := make(map[string]*dhtMember, len(layout))
	defer func() {
		for _, m := range members {
			m.peers.Close()
		}
	}()
	for _, l := range layout {
		m, err := startDHTMember(w, l.addr, l.owner)
		if err != nil {
			return res, fmt.Errorf("serve %s: %w", l.addr, err)
		}
		members[l.owner] = m
		res.Members++
	}
	seed, big, air := members["Seed"], members["BigISP"], members["AirNet"]
	for _, l := range layout[1:] {
		m := members[l.owner]
		if err := m.node.Bootstrap(ctx, []string{seed.addr}); err != nil {
			return res, fmt.Errorf("bootstrap %s: %w", m.addr, err)
		}
	}
	for _, l := range layout {
		m := members[l.owner]
		if err := m.node.Announce(ctx, m.owner, []string{m.addr}); err != nil {
			return res, fmt.Errorf("announce %s: %w", m.addr, err)
		}
		res.Announced++
	}

	// The untagged three-link chain Maria -> BigISP.member ->
	// AirNet.member -> AirNet.access, spread over three wallets. No
	// delegation carries a discovery tag: locating the homes is entirely
	// the DHT's problem.
	w.Ensure("Maria", "Client")
	d1, err := w.Issue("[Maria -> BigISP.member] BigISP")
	if err != nil {
		return res, err
	}
	d2, err := w.Issue("[BigISP.member -> AirNet.member] AirNet")
	if err != nil {
		return res, err
	}
	d3, err := w.Issue("[AirNet.member -> AirNet.access] AirNet")
	if err != nil {
		return res, err
	}
	if err := big.w.Publish(d2); err != nil {
		return res, err
	}
	if err := air.w.Publish(d3); err != nil {
		return res, err
	}
	subject, err := w.Subject("Maria")
	if err != nil {
		return res, err
	}
	object, err := w.Role("AirNet.access")
	if err != nil {
		return res, err
	}
	q := wallet.Query{Subject: subject, Object: object}

	resolveChain := func(clientName, bootstrapAddr string) (*core.Proof, *discovery.Stats, error) {
		node, peers, err := dhtClient(w, clientName)
		if err != nil {
			return nil, nil, err
		}
		defer peers.Close()
		if err := node.Bootstrap(ctx, []string{bootstrapAddr}); err != nil {
			return nil, nil, fmt.Errorf("client bootstrap via %s: %w", bootstrapAddr, err)
		}
		local := wallet.New(wallet.Config{Owner: w.Identity(clientName), Clock: w.Clock, Directory: w.Dir})
		if err := local.Publish(d1); err != nil {
			return nil, nil, err
		}
		a := discovery.NewAgent(discovery.Config{Local: local, Peers: peers, Directory: node})
		defer a.Close()
		var stats discovery.Stats
		proof, err := a.Discover(ctx, q, discovery.Auto, &stats)
		if err != nil {
			return nil, nil, err
		}
		return proof, &stats, nil
	}

	proof, stats, err := resolveChain("Client", seed.addr)
	if err != nil {
		return res, fmt.Errorf("DHT-resolved discovery: %w", err)
	}
	res.ChainLen = len(proof.Delegations())
	res.WalletsContacted = stats.WalletsContacted
	if res.ChainLen < 3 {
		return res, fmt.Errorf("first proof has %d delegations, want the 3-link chain", res.ChainLen)
	}
	if res.WalletsContacted < 2 {
		return res, fmt.Errorf("first run contacted %d wallets, want both homes", res.WalletsContacted)
	}

	// Churn: the bootstrap seed dies, and AirNet's home leaves and
	// rejoins at a new address, re-announcing with a bumped record seq.
	seed.srv.Close()
	air.srv.Close()
	res.RejoinAddr = "wallet.airnet-b"
	if err := air.serveAt(w, res.RejoinAddr); err != nil {
		return res, err
	}
	if err := air.node.Announce(ctx, air.owner, []string{res.RejoinAddr}); err != nil {
		return res, fmt.Errorf("re-announce at %s: %w", res.RejoinAddr, err)
	}

	// A late joiner — bootstrapped off a surviving member, never having
	// seen the seed or the old address — resolves the same chain.
	proof2, stats2, err := resolveChain("Client2", big.addr)
	if err != nil {
		return res, fmt.Errorf("discovery after seed death + home move: %w", err)
	}
	res.RejoinChainLen = len(proof2.Delegations())
	if res.RejoinChainLen < 3 {
		return res, fmt.Errorf("post-churn proof has %d delegations, want the 3-link chain", res.RejoinChainLen)
	}
	contactedNew := false
	for _, ev := range stats2.Trace {
		if ev.Wallet == res.RejoinAddr {
			contactedNew = true
		}
	}
	if !contactedNew {
		return res, fmt.Errorf("post-churn discovery never contacted the rejoined home %s", res.RejoinAddr)
	}
	return res, nil
}
