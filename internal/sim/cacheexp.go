package sim

import (
	"errors"
	"fmt"
	"time"

	"drbac/internal/core"
	"drbac/internal/wallet"
)

// CachePoint is one row of EXP-S6 (§6 coherent caching of validation
// results): repeated direct-query latency with the proof cache on versus
// off over one delegation chain, plus a coherence probe — after revoking a
// mid-chain delegation the very next query must not see the memoized proof.
type CachePoint struct {
	Chain   int // delegation-chain length
	Queries int // repeated identical queries measured

	// ColdNanos / HotNanos: mean per-query latency with the cache disabled
	// (every query re-runs the graph search) versus enabled (memoized).
	ColdNanos int64
	HotNanos  int64

	// Cache counters from the hot run, after the coherence probe.
	Hits          int64
	Misses        int64
	Invalidations int64

	// CoherentAfterRevoke: the query issued immediately after a mid-chain
	// revocation returned no proof instead of the cached one.
	CoherentAfterRevoke bool
}

// RunCacheCoherence measures EXP-S6 for one chain length. Both wallets hold
// the same chain User ⇒ Org.r0 ⇒ … ⇒ Org.r<chain>; the workload repeats the
// same end-to-end direct query.
func RunCacheCoherence(chain, queries int) (CachePoint, error) {
	if chain < 1 || queries < 1 {
		return CachePoint{}, fmt.Errorf("sim: chain and queries must be positive")
	}
	pt := CachePoint{Chain: chain, Queries: queries}

	w := NewWorld()
	defer w.Close()
	w.Ensure("Org", "User")

	texts := make([]string, 0, chain+1)
	texts = append(texts, "[User -> Org.r0] Org")
	for i := 1; i <= chain; i++ {
		texts = append(texts, fmt.Sprintf("[Org.r%d -> Org.r%d] Org", i-1, i))
	}
	delegs := make([]*core.Delegation, len(texts))
	for i, text := range texts {
		d, err := w.Issue(text)
		if err != nil {
			return CachePoint{}, err
		}
		delegs[i] = d
	}

	subject, err := w.Subject("User")
	if err != nil {
		return CachePoint{}, err
	}
	object, err := w.Role(fmt.Sprintf("Org.r%d", chain))
	if err != nil {
		return CachePoint{}, err
	}
	q := wallet.Query{Subject: subject, Object: object}

	populate := func(wal *wallet.Wallet) error {
		for _, d := range delegs {
			if err := wal.Publish(d); err != nil {
				return err
			}
		}
		return nil
	}

	cold := wallet.New(wallet.Config{Clock: w.Clock, Directory: w.Dir, DisableProofCache: true})
	if err := populate(cold); err != nil {
		return CachePoint{}, err
	}
	start := time.Now()
	for i := 0; i < queries; i++ {
		if _, err := cold.QueryDirect(q); err != nil {
			return CachePoint{}, fmt.Errorf("cold query: %w", err)
		}
	}
	pt.ColdNanos = time.Since(start).Nanoseconds() / int64(queries)

	hot := wallet.New(wallet.Config{Clock: w.Clock, Directory: w.Dir})
	if err := populate(hot); err != nil {
		return CachePoint{}, err
	}
	if _, err := hot.QueryDirect(q); err != nil { // prime the cache
		return CachePoint{}, fmt.Errorf("priming query: %w", err)
	}
	start = time.Now()
	for i := 0; i < queries; i++ {
		if _, err := hot.QueryDirect(q); err != nil {
			return CachePoint{}, fmt.Errorf("hot query: %w", err)
		}
	}
	pt.HotNanos = time.Since(start).Nanoseconds() / int64(queries)

	// Coherence probe: revoke a mid-chain delegation; the push must have
	// killed the memoized proof before the next query returns.
	mid := delegs[len(delegs)/2]
	if err := hot.Revoke(mid.ID(), w.Identity("Org").ID()); err != nil {
		return CachePoint{}, err
	}
	_, err = hot.QueryDirect(q)
	pt.CoherentAfterRevoke = errors.Is(err, core.ErrNoProof)

	st := hot.Stats()
	pt.Hits = st.Cache.Hits
	pt.Misses = st.Cache.Misses
	pt.Invalidations = st.Cache.Invalidations
	return pt, nil
}
